(** Unsynchronized bounded FIFO buffer (the bounded-buffer problem's
    resource half).

    The ring enforces its own sequential contract and raises
    {!Busywork.Ill_synchronized} when a synchronizer violates it:

    - [put] on a full ring / [get] on an empty ring;
    - two concurrent [put]s, or two concurrent [get]s.

    One concurrent [put] alongside one concurrent [get] {e is} within the
    contract (head and tail are independent), because the classic
    path-expression solution serializes puts and gets separately but lets
    them overlap each other. Mechanisms that serialize everything satisfy
    the contract trivially. *)

type t

val create : ?work:int -> int -> t
(** [create n] has capacity [n >= 1]. [work] is busy-work per operation
    (default 50). *)

val capacity : t -> int

val put : t -> int -> unit

val get : t -> int

val occupancy : t -> int
(** Number of items currently stored (racy snapshot). *)
