(* The E25 primitive-class abstraction: which atomic operations the
   synchronization substrate may use. Each restricted class has its own
   lock and counting-semaphore construction (functors over {!Regs}
   signatures, instantiated here over {!Regs.Shared}); [with_class]
   scopes class selection over primitive creation exactly like
   {!Fastpath.with_enabled} scopes the E22 tier, and the platform's
   [Mutex]/[Semaphore] facades consult {!selected} at creation time.

   What a class cannot express surfaces as the typed {!Unsupported}
   exception, never as a crash or a silent downgrade — the hierarchy
   scorecard records these as first-class results. *)

type cls = RW | CAS | FAA | LLSC | Native

exception Unsupported of { cls : cls; feature : string; reason : string }

let cls_name = function
  | RW -> "rw"
  | CAS -> "cas"
  | FAA -> "faa"
  | LLSC -> "llsc"
  | Native -> "native"

let cls_of_string = function
  | "rw" -> Some RW
  | "cas" -> Some CAS
  | "faa" -> Some FAA
  | "llsc" -> Some LLSC
  | "native" -> Some Native
  | _ -> None

let restricted = [ RW; CAS; FAA; LLSC ]

let all = restricted @ [ Native ]

let unsupported cls feature reason = raise (Unsupported { cls; feature; reason })

(* ------------------------------------------------------------------ *)
(* Creation-scoped class selection. [Native] is the resting state: no
   restriction, the platform picks its usual tier. *)

let flag = Atomic.make Native

let selected () = match Atomic.get flag with Native -> None | c -> Some c

let with_class c f =
  let prev = Atomic.get flag in
  Atomic.set flag c;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f

(* ------------------------------------------------------------------ *)
(* Production instances: every class over the same SC-atomic registers,
   restricted through the class signatures. *)

module B = Bakery.Make (Regs.Shared)
module C = Caslock.Make (Regs.Shared)
module F = Faalock.Make (Regs.Shared)
module L = Llsc.Make (Regs.Shared)
module T_faa = Ticket_sem.Make (Regs.Shared)
module T_cas = Ticket_sem.Make (Regs.Faa_of_cas (Regs.Shared))
module T_llsc = Ticket_sem.Make (L.Faa_regs)

(* The bakery is a static-process algorithm: per-lock slot assignment
   maps real threads onto register indices. The registry is ordinary
   bookkeeping outside the protocol (the protocol itself never touches
   it while contending), so a stdlib mutex here does not launder an
   unsupported primitive into the RW class. *)
let bakery_slots = 64

type rw_slots = {
  reg_m : Stdlib.Mutex.t;
  tbl : (int, int) Hashtbl.t;
  mutable next_slot : int;
}

let slot_of_self r =
  let tid = Thread.id (Thread.self ()) in
  Stdlib.Mutex.lock r.reg_m;
  let s =
    match Hashtbl.find_opt r.tbl tid with
    | Some s -> s
    | None ->
      if r.next_slot >= bakery_slots then begin
        Stdlib.Mutex.unlock r.reg_m;
        failwith
          (Printf.sprintf
             "Prims: more than %d distinct threads on one RW-class lock"
             bakery_slots)
      end;
      let s = r.next_slot in
      r.next_slot <- s + 1;
      Hashtbl.add r.tbl tid s;
      s
  in
  Stdlib.Mutex.unlock r.reg_m;
  s

let rw_slots () =
  { reg_m = Stdlib.Mutex.create (); tbl = Hashtbl.create 16; next_slot = 0 }

(* ------------------------------------------------------------------ *)
(* Locks: one closure record regardless of class, so the platform mutex
   carries a single [Prim] representation. *)

type lock = {
  lk_cls : cls;
  lk_lock : unit -> unit;
  lk_try : unit -> bool;
  lk_unlock : unit -> unit;
}

let make_lock = function
  | RW ->
    let b = B.create ~bound:4096 ~slots:bakery_slots () in
    let slots = rw_slots () in
    { lk_cls = RW;
      lk_lock = (fun () -> B.lock b ~slot:(slot_of_self slots));
      lk_try = (fun () -> B.try_lock b ~slot:(slot_of_self slots));
      lk_unlock = (fun () -> B.unlock b ~slot:(slot_of_self slots)) }
  | CAS ->
    let l = C.Lock.create () in
    { lk_cls = CAS;
      lk_lock = (fun () -> C.Lock.lock l);
      lk_try = (fun () -> C.Lock.try_lock l);
      lk_unlock = (fun () -> C.Lock.unlock l) }
  | FAA ->
    let l = F.Lock.create () in
    { lk_cls = FAA;
      lk_lock = (fun () -> F.Lock.lock l);
      lk_try = (fun () -> F.Lock.try_lock l);
      lk_unlock = (fun () -> F.Lock.unlock l) }
  | LLSC ->
    let l = L.Lock.create () in
    { lk_cls = LLSC;
      lk_lock = (fun () -> L.Lock.lock l);
      lk_try = (fun () -> L.Lock.try_lock l);
      lk_unlock = (fun () -> L.Lock.unlock l) }
  | Native ->
    unsupported Native "lock"
      "the native class is the platform's own default/fast tier, not a \
       prims construction"

(* ------------------------------------------------------------------ *)
(* Counting semaphores. [`Weak] exists in every class; [`Strong] (FCFS)
   needs an order-assigning read-modify-write, so the RW class rejects
   it with a typed reason — the hierarchy separation the E25 scorecard
   pins. [sm_p_poll expired] is the timed P: it returns [false] only
   after [expired ()] was observed true. *)

type sem = {
  sm_cls : cls;
  sm_p : unit -> unit;
  sm_try : unit -> bool;
  sm_p_poll : (unit -> bool) -> bool;
  sm_v : int -> unit;
  sm_value : unit -> int;
  sm_waiters : unit -> int;
}

(* RW-only weak semaphore: a bakery-guarded counter with an invisible
   pre-wait on the value register. Barging (hence weak): the pre-wait
   carries no order. *)
let rw_sem n =
  let b = B.create ~bound:4096 ~slots:bakery_slots () in
  let slots = rw_slots () in
  let value = Regs.Shared.make n in
  let locked f =
    let s = slot_of_self slots in
    B.lock b ~slot:s;
    let r = f () in
    B.unlock b ~slot:s;
    r
  in
  let try_p () =
    locked (fun () ->
        let v = Regs.Shared.get value in
        if v > 0 then begin
          Regs.Shared.set value (v - 1);
          true
        end
        else false)
  in
  let rec p () =
    Regs.Shared.await ~watch:[| value |] (fun () -> Regs.Shared.get value > 0);
    if not (try_p ()) then p ()
  in
  let rec p_poll expired =
    if try_p () then true
    else if expired () then false
    else begin
      Regs.Shared.await ~watch:[| value |] (fun () ->
          Regs.Shared.get value > 0 || expired ());
      p_poll expired
    end
  in
  ( p,
    try_p,
    p_poll,
    (fun k ->
      locked (fun () -> Regs.Shared.set value (Regs.Shared.get value + k))),
    fun () -> Regs.Shared.get value )

let with_waiters (p, try_p, p_poll, v_n, value) cls =
  (* Blocked-caller bookkeeping for introspection ([waiters]); not part
     of any protocol, so a plain atomic is fine in every class. *)
  let w = Atomic.make 0 in
  let guarded f =
    Atomic.incr w;
    Fun.protect ~finally:(fun () -> Atomic.decr w) f
  in
  { sm_cls = cls;
    sm_p = (fun () -> if not (try_p ()) then guarded p);
    sm_try = try_p;
    sm_p_poll =
      (fun expired ->
        if try_p () then true else guarded (fun () -> p_poll expired));
    sm_v = v_n;
    sm_value = value;
    sm_waiters = (fun () -> Atomic.get w) }

let strong_reason =
  "FCFS grants need an arrival-order-assigning read-modify-write (ticket \
   fetch-and-add); atomic read/write registers only admit barging waits"

let make_sem cls ~fairness n =
  if n < 0 then invalid_arg "Prims.make_sem: negative value";
  match (cls, fairness) with
  | RW, `Strong -> unsupported RW "semaphore.strong" strong_reason
  | RW, `Weak -> with_waiters (rw_sem n) RW
  | CAS, `Weak ->
    let s = C.Sem.create n in
    with_waiters
      ( (fun () -> C.Sem.p s),
        (fun () -> C.Sem.try_p s),
        (fun e -> C.Sem.p_poll s e),
        (fun k -> C.Sem.v_n s k),
        fun () -> C.Sem.value s )
      CAS
  | CAS, `Strong ->
    let s = T_cas.create n in
    with_waiters
      ( (fun () -> T_cas.p s),
        (fun () -> T_cas.try_p s),
        (fun e -> T_cas.p_poll s e),
        (fun k -> T_cas.v_n s k),
        fun () -> T_cas.value s )
      CAS
  | FAA, `Weak ->
    let s = F.Sem.create n in
    with_waiters
      ( (fun () -> F.Sem.p s),
        (fun () -> F.Sem.try_p s),
        (fun e -> F.Sem.p_poll s e),
        (fun k -> F.Sem.v_n s k),
        fun () -> F.Sem.value s )
      FAA
  | FAA, `Strong ->
    let s = T_faa.create n in
    with_waiters
      ( (fun () -> T_faa.p s),
        (fun () -> T_faa.try_p s),
        (fun e -> T_faa.p_poll s e),
        (fun k -> T_faa.v_n s k),
        fun () -> T_faa.value s )
      FAA
  | LLSC, `Weak ->
    let s = L.Sem.create n in
    with_waiters
      ( (fun () -> L.Sem.p s),
        (fun () -> L.Sem.try_p s),
        (fun e -> L.Sem.p_poll s e),
        (fun k -> L.Sem.v_n s k),
        fun () -> L.Sem.value s )
      LLSC
  | LLSC, `Strong ->
    let s = T_llsc.create n in
    with_waiters
      ( (fun () -> T_llsc.p s),
        (fun () -> T_llsc.try_p s),
        (fun e -> T_llsc.p_poll s e),
        (fun k -> T_llsc.v_n s k),
        fun () -> T_llsc.value s )
      LLSC
  | Native, _ ->
    unsupported Native "semaphore"
      "the native class is the platform's own default/fast tier, not a \
       prims construction"
