(** Condition variables, deterministic-run aware.

    Shadows the stdlib [Condition] inside [Sync_platform], pairing with
    the shadowed {!Mutex}: created during a {!Detrt} run it is a virtual
    condition scheduled deterministically, otherwise a system condition.
    Semantics follow the stdlib contract (Mesa-style: a woken waiter
    re-acquires the mutex and must re-check its predicate). *)

type t = Sys of Stdlib.Condition.t | Det of Detrt.cond

val create : unit -> t

val wait : t -> Mutex.t -> unit

val signal : t -> unit

val broadcast : t -> unit
