(** Chrome [trace_event] exporter: load the output in [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}. Each [(label, events)]
    group renders as one process (the label names it), with one named
    thread lane per recording actor — OS threads as [t<id>], virtual
    deterministic-run tasks as [v<id>]. Span kinds become complete
    events with real durations; instant kinds (signal, handoff,
    spurious, abandon) become thread-scoped instants. *)

val to_json : (string * Probe.event list) list -> Sync_metrics.Emit.t

val write_file : string -> (string * Probe.event list) list -> unit
