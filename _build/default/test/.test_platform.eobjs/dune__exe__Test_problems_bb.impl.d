test/test_problems_bb.ml: Alcotest Bb_ccr Bb_csp Bb_evc Bb_harness Bb_intf Bb_mon Bb_path Bb_sem Bb_ser List Spec Sync_problems Sync_taxonomy
