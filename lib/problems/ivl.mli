(** Trace-interval analysis: the machinery behind every checker.

    Workloads record [Request]/[Enter]/[Exit] triples per operation
    invocation (one outstanding invocation per pid at a time). This module
    reassembles them into intervals ordered by grant ([Enter]) time and
    provides the generic violation counters the per-problem checkers are
    built from. All "time" is the trace's global sequence number, so the
    analyses are deterministic given a trace. *)

type interval = {
  pid : int;
  op : string;
  arg : int;       (** argument recorded at [Enter] *)
  ret : int;       (** argument recorded at [Exit] (result, or same arg) *)
  request : int;   (** seq of the [Request] event, [-1] if none recorded *)
  enter : int;
  exit_ : int;
}

val intervals : Sync_platform.Trace.event list -> interval list
(** In [Enter] order. Incomplete invocations (no [Exit]) are dropped.
    @raise Invalid_argument on a malformed trace (e.g. [Exit] without
    [Enter] for that pid). *)

val check_wellformed :
  Sync_platform.Trace.event list -> (unit, string) result
(** Structural validity of a trace: no [Exit] without a matching [Enter],
    no nested [Enter] for one pid, and every [Enter] eventually closed by
    an [Exit]. The empty trace is well-formed. The harness checkers run
    this first, so a truncated or corrupted recording is reported as
    malformed rather than silently passing (e.g. {!intervals} alone would
    drop an unmatched trailing [Enter]). *)

val overlap : interval -> interval -> bool
(** Do the two grant windows overlap in trace order? *)

val exclusion_violations :
  conflicts:(string -> string -> bool) -> interval list -> (interval * interval) list
(** All pairs of overlapping intervals whose operations conflict. *)

val max_concurrency : op:string -> interval list -> int
(** Largest number of simultaneously-active intervals of [op]. *)

val fifo_violations : interval list -> (interval * interval) list
(** Pairs granted out of request order: [b.request < a.request] but
    [a.enter < b.enter]. Only meaningful for staggered workloads whose
    request gaps dominate recording skew. *)

val grant_order : op:string -> interval list -> int list
(** The [arg]s of [op]'s intervals in grant order. *)
