(** Bounded buffer with a Hoare monitor, using the paper's Section-2
    structure: the monitor (synchronizer) is released while the resource
    operation runs. The synchronizer tracks committed items plus
    one-in-flight flags per side, so the buffer's own contract (no two
    concurrent puts, no overfill) is guaranteed without holding the
    monitor across the resource call. *)

open Sync_monitor
open Sync_taxonomy

type t = {
  mon : Monitor.t;
  notfull : Monitor.Cond.t;
  notempty : Monitor.Cond.t;
  capacity : int;
  mutable items : int;    (* completed puts not yet consumed *)
  mutable putting : bool; (* a put holds the buffer's producer side *)
  mutable getting : bool;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "monitor"

let create ~capacity ~put ~get =
  let mon = Monitor.create ~discipline:`Hoare () in
  { mon; notfull = Monitor.Cond.create mon;
    notempty = Monitor.Cond.create mon; capacity; items = 0;
    putting = false; getting = false; res_put = put; res_get = get }

let put t ~pid v =
  Protected.access t.mon
    ~before:(fun () ->
      while t.putting || t.items >= t.capacity do
        Monitor.Cond.wait t.notfull
      done;
      t.putting <- true)
    ~after:(fun () ->
      t.putting <- false;
      t.items <- t.items + 1;
      Monitor.Cond.signal t.notfull;
      Monitor.Cond.signal t.notempty)
    ~abort:(fun () ->
      (* The resource put raised, so no item was stored: release the
         producer side without counting an item. *)
      t.putting <- false;
      Monitor.Cond.signal t.notfull)
    (fun () -> t.res_put ~pid v)

let get t ~pid =
  Protected.access t.mon
    ~before:(fun () ->
      while t.getting || t.items <= 0 do
        Monitor.Cond.wait t.notempty
      done;
      t.getting <- true)
    ~after:(fun () ->
      (* Decrement only once the slot is physically free, so a waiting put
         admitted by [items < capacity] can never overfill the buffer while
         this get is still mid-pop. *)
      t.items <- t.items - 1;
      t.getting <- false;
      Monitor.Cond.signal t.notempty;
      Monitor.Cond.signal t.notfull)
    ~abort:(fun () ->
      (* The resource get raised before popping: the item is still in the
         buffer, so leave the count alone and let another getter claim it. *)
      t.getting <- false;
      Monitor.Cond.signal t.notempty)
    (fun () -> t.res_get ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill",
         [ "while"; "items>=capacity"; "wait(notfull)"; "signal(notfull)" ]);
        ("bb-no-underflow",
         [ "while"; "items<=0"; "wait(notempty)"; "signal(notempty)" ]);
        ("bb-access-exclusion",
         [ "while"; "putting||getting"; "flag"; "wait"; "signal" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:
      [ "items count mirrors buffer occupancy";
        "putting/getting in-flight flags" ]
    ~separation:Meta.Separated ()
