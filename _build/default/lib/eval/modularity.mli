(** Modularity (paper Section 2): does the mechanism support — or even
    enforce — the protected-resource structure (unsynchronized resource +
    synchronizer as separable sub-abstractions)?

    Scored from solution metadata: the declared separation level, the
    number of extra synchronization procedures (each one blurs the
    resource/synchronizer boundary — the paper's complaint about path
    expressions), and the amount of auxiliary synchronization state the
    implementor had to maintain by hand. *)

type row = {
  mechanism : string;
  enforced : int;   (** solutions where the mechanism imposes the structure *)
  separated : int;  (** structure achieved by discipline *)
  blended : int;    (** resource and synchronizer inseparable *)
  sync_procedures : int; (** total extra gate procedures across solutions *)
  aux_state_items : int; (** total auxiliary state declarations *)
  score : float;    (** 0..1; 1 = always enforced, no extra machinery *)
}

val analyze : Registry.entry list -> row list

val pp : Format.formatter -> row list -> unit
