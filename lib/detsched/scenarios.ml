(* The scenario catalog: real mechanism implementations wired into the
   deterministic harness. Each [make] runs inside the deterministic run
   body, so the mechanism's mutexes and conditions are virtual; each
   check feeds the recorded trace to the existing [sync_problems]
   checkers. [expect] records whether exploration is supposed to find
   failing schedules — [Fail] entries are the reproduced anomalies. *)

open Sync_problems

type expectation = Pass | Fail

type entry = { scen : Detsched.t; expect : expectation }

let bb_sized name (module B : Bb_intf.S) ~capacity ~producers ~consumers
    ~items =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf
         "bounded buffer (%s): %d producers x %d items, %d consumers, \
          capacity %d"
         B.mechanism producers items consumers capacity)
    (fun () ->
      let report = ref None in
      { Detsched.body =
          (fun () ->
            report :=
              Some
                (Bb_harness.run (module B) ~capacity ~producers ~consumers
                   ~items_per_producer:items ~work:0 ~seed:1L ()));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Bb_harness.check ~producers r) })

let bb name m = bb_sized name m ~capacity:2 ~producers:2 ~consumers:2 ~items:3

let rw_handoff name (module S : Rw_intf.S) =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf "footnote-3 writer handoff (%s, %s policy)" S.mechanism
         (Rw_intf.policy_to_string S.policy))
    (fun () ->
      let got = ref None in
      { Detsched.body =
          (fun () ->
            got := Some (Rw_harness.det_scenario_writer_handoff (module S) ()));
        check =
          (fun () ->
            match !got with
            | None -> Error "scenario body did not run"
            | Some r -> Rw_harness.det_check_writer_handoff (module S) r) })

let fcfs name (module S : Fcfs_intf.S) ~variant =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf
         "FCFS drain order (%s%s): gated holder, 4 contenders queued in order"
         S.mechanism
         (if variant = "" then "" else ", " ^ variant))
    (fun () ->
      let report = ref None in
      { Detsched.body =
          (fun () -> report := Some (Fcfs_harness.det_run (module S) ~users:4 ()));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Fcfs_harness.check r) })

(* Readers-writers exclusion under the full stress mix: every reader and
   writer goes through the self-checking store, so the scenario machine-
   checks the mutual-exclusion invariant on every explored schedule. The
   instance sizes are exploration knobs: the E26 axis runs shapes whose
   schedule trees naive DFS cannot finish. *)
let rw_excl name (module S : Rw_intf.S) ~readers ~writers ~ops =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf
         "readers-writers exclusion (%s): %d readers x %d writers x %d ops"
         S.mechanism readers writers ops)
    (fun () ->
      let report = ref None in
      { Detsched.body =
          (fun () ->
            report :=
              Some
                (Rw_harness.run_stress (module S) ~backend:`Det ~readers
                   ~writers ~reads_each:ops ~writes_each:ops ~work:0 ()));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Rw_harness.check_exclusion r) })

(* The E19 cancellation storm, parametric in the instance size: aborts
   injected at the semaphore's pre-wait and the first put body, with the
   recovery machinery (rollback/redonate via waitq) checked on every
   surviving operation. The smallest shape is DFS-feasible; larger ones
   are DPOR territory. *)
let storm_bb_sem ?(capacity = 1) ?(producers = 1) ?(consumers = 1)
    ?(items = 2) () =
  let open Sync_platform in
  Detsched.scenario
    ~name:(Printf.sprintf "storm-bb-sem-%dp%dc%di" producers consumers items)
    ~descr:
      (Printf.sprintf
         "cancellation storm (semaphore bb, %dp/%dc, %d items each): abort \
          at semaphore.pre-wait and bb.put.body"
         producers consumers items)
    (fun () ->
      let report = ref None in
      let plan =
        Fault.plan
          [ ("semaphore.pre-wait", Fault.Nth 2); ("bb.put.body", Fault.Nth 1) ]
      in
      { Detsched.body =
          (fun () ->
            report :=
              Some
                (Fault.with_plan plan (fun () ->
                     Bb_harness.run_abort (module Bb_sem) ~backend:`Det
                       ~capacity ~producers ~consumers
                       ~items_per_producer:items ())));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Bb_harness.check_abort ~producers r) })

(* Not a mechanism under test but a harness self-check: opposite lock
   orders, so some schedules deadlock and some do not — DFS must find
   both, and the runtime must report the deadlock rather than hang. *)
let deadlock =
  let open Sync_platform in
  Detsched.scenario ~name:"deadlock-abba"
    ~descr:"two tasks take two locks in opposite orders; some schedules deadlock"
    (fun () ->
      let a = Mutex.create () and b = Mutex.create () in
      (* Raw [Detrt] tasks, not [Process]: the process wrapper's own
         error mutex would add scheduling points and inflate the tree
         this demo exists to enumerate completely. *)
      { Detsched.body =
          (fun () ->
            let t1 =
              Detrt.spawn ~name:"locker-ab" (fun () ->
                  Mutex.lock a;
                  Mutex.lock b;
                  Mutex.unlock b;
                  Mutex.unlock a)
            in
            let t2 =
              Detrt.spawn ~name:"locker-ba" (fun () ->
                  Mutex.lock b;
                  Mutex.lock a;
                  Mutex.unlock a;
                  Mutex.unlock b)
            in
            Detrt.join t1;
            Detrt.join t2);
        check = (fun () -> Ok ()) })

let all : entry list =
  [ { scen = bb "bb-sem" (module Bb_sem); expect = Pass };
    { scen = bb "bb-mon" (module Bb_mon); expect = Pass };
    { scen =
        bb_sized "bb-sem-small" (module Bb_sem) ~capacity:1 ~producers:1
          ~consumers:1 ~items:2;
      expect = Pass };
    { scen =
        rw_excl "rw-mon-excl" (module Rw_mon.Readers_prio) ~readers:2
          ~writers:1 ~ops:1;
      expect = Pass };
    { scen = storm_bb_sem (); expect = Pass };
    { scen = rw_handoff "rw-fig1" (module Rw_path.Fig1); expect = Fail };
    { scen = rw_handoff "rw-fig2" (module Rw_path.Fig2); expect = Pass };
    { scen = rw_handoff "rw-mon" (module Rw_mon.Readers_prio); expect = Pass };
    { scen = rw_handoff "rw-ser" (module Rw_ser.Readers_prio); expect = Pass };
    { scen = fcfs "fcfs-mon-hoare" (module Fcfs_mon) ~variant:"hoare";
      expect = Pass };
    { scen = fcfs "fcfs-mon-mesa" (module Fcfs_mon.Mesa) ~variant:"mesa";
      expect = Pass };
    { scen = fcfs "fcfs-sem" (module Fcfs_sem) ~variant:""; expect = Pass };
    { scen = deadlock; expect = Fail } ]

let find name = List.find_opt (fun e -> e.scen.Detsched.name = name) all
