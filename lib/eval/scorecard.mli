(** One-call rendering of the full evaluation (the paper's Section 5
    deliverable, regenerated from the artifact): expressiveness matrix,
    constraint-independence summary, modularity table, and conformance
    run. *)

type t = {
  matrix : Expressiveness.t;
  discrepancies : (string * Sync_taxonomy.Info.kind * string) list;
  pairings : Independence.pairing list;
  reuse : (string * float) list;
  modularity : Modularity.row list;
  conformance : Conformance.result list;
  robustness : Robustness.row list;
  perf : Perf.row list;
  observability : Observability.row list;
  service : Service_axis.row list;
  hierarchy : Hierarchy_axis.row list;
  scaling : Scaling_axis.t;
  adaptive : Adaptive_axis.t;
}

val build :
  ?run_conformance:bool -> ?run_robustness:bool -> ?run_perf:bool ->
  ?run_observability:bool -> ?run_service:bool -> ?run_hierarchy:bool ->
  ?run_scaling:bool -> ?run_adaptive:bool -> unit -> t
(** Computes everything from {!Registry.all}. [run_conformance] (default
    true) actually executes the workload checks; disable for fast
    metadata-only views. [run_robustness] (default false — it is the
    slowest section; [bloom_eval faults] runs it standalone) adds the
    E19 fault/cancellation matrix. [run_perf] (default false) runs a live
    E20 closed-loop sweep via {!Perf.measure}; [bloom_eval load] drives
    single runs standalone. [run_observability] (default false) adds the
    E21 traced-contention audit via {!Observability.run}; [bloom_eval
    trace] drives full traced runs standalone. [run_service] (default
    false) adds the E24 service-tier scenarios via {!Service_axis.run}
    (spawns real bloom_serve daemons; [bloom_eval serve] standalone).
    [run_hierarchy] (default false) adds the E25 primitive-hierarchy
    grid via {!Hierarchy_axis.run} on its default spec; [bloom_eval
    hierarchy] drives configurable grids standalone. [run_scaling]
    (default false) adds the E23 scalable-lock grids via
    {!Scaling_axis.run} on its default spec; [bloom_eval scaling]
    drives configurable grids standalone. [run_adaptive] (default
    false) adds the E27 self-tuning grid via {!Adaptive_axis.run} on
    its default spec; [bloom_eval adapt] drives configurable grids
    standalone. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json : t -> Sync_metrics.Emit.t
(** The whole scorecard as one deterministic JSON document — what
    [bloom_eval scorecard --json] writes. Sections appear even when
    empty (as [[]]) so consumers can rely on the shape. *)
