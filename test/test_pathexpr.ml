open Sync_pathexpr

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_strings = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let parses src expected =
  let got = Parser.parse src in
  check_bool
    (Printf.sprintf "parse %S" src)
    true
    (Ast.equal_spec got expected)

let test_parse_basics () =
  parses "path read end" [ Ast.Op "read" ];
  parses "path a ; b end" [ Ast.Seq [ Ast.Op "a"; Ast.Op "b" ] ];
  parses "path a , b end" [ Ast.Sel [ Ast.Op "a"; Ast.Op "b" ] ];
  parses "path { read } , write end"
    [ Ast.Sel [ Ast.Conc (Ast.Op "read"); Ast.Op "write" ] ];
  parses "path 3 : (put ; get) end"
    [ Ast.Bounded (3, Ast.Seq [ Ast.Op "put"; Ast.Op "get" ]) ];
  parses "path [ok] go end" [ Ast.Pred ("ok", Ast.Op "go") ]

let test_parse_precedence () =
  (* ',' binds tighter than ';' (hence Figure 1's explicit parens). *)
  parses "path a , b ; c end"
    [ Ast.Seq [ Ast.Sel [ Ast.Op "a"; Ast.Op "b" ]; Ast.Op "c" ] ];
  parses "path a ; b , c end"
    [ Ast.Seq [ Ast.Op "a"; Ast.Sel [ Ast.Op "b"; Ast.Op "c" ] ] ];
  parses "path (a ; b) , c end"
    [ Ast.Sel [ Ast.Seq [ Ast.Op "a"; Ast.Op "b" ]; Ast.Op "c" ] ]

let test_parse_multiple_decls () =
  parses "path a end path b ; c end"
    [ Ast.Op "a"; Ast.Seq [ Ast.Op "b"; Ast.Op "c" ] ]

let test_parse_comments_whitespace () =
  parses "path  -- exclusive writes\n  { read } , write\nend"
    [ Ast.Sel [ Ast.Conc (Ast.Op "read"); Ast.Op "write" ] ]

let test_parse_errors () =
  let fails src =
    match Parser.parse src with
    | exception Parser.Syntax_error _ -> ()
    | _ -> Alcotest.failf "expected syntax error for %S" src
  in
  fails "";
  fails "path end";
  fails "path a";
  fails "a ; b end";
  fails "path a ;; b end";
  fails "path { a end";
  fails "path 0 : (a) end";
  fails "path 2 : a end";
  fails "path [3] a end";
  fails "path a $ b end"

let test_figure1_parses () =
  let fig1 =
    "path writeattempt end \
     path { requestread } , requestwrite end \
     path { read } , (openwrite ; write) end"
  in
  let spec = Parser.parse fig1 in
  check_int "three declarations" 3 (List.length spec);
  Alcotest.(check (list string))
    "ops"
    [ "writeattempt"; "requestread"; "requestwrite"; "read"; "openwrite";
      "write" ]
    (Ast.ops spec)

let test_pp_roundtrip_examples () =
  let roundtrip src =
    let spec = Parser.parse src in
    let printed = Ast.to_string spec in
    check_bool
      (Printf.sprintf "roundtrip %S -> %S" src printed)
      true
      (Ast.equal_spec spec (Parser.parse printed))
  in
  List.iter roundtrip
    [ "path a end";
      "path a ; b ; c end";
      "path a , b , c end";
      "path { a ; b } , c end";
      "path (a ; b) , c end";
      "path 4 : (put ; get) end";
      "path [full] get , [empty] put end";
      "path a end path b end" ]

(* Random ASTs for the printer/parser round-trip property. *)
let gen_ast =
  let open QCheck.Gen in
  let op_name = oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  let rec expr n =
    if n <= 0 then map (fun s -> Ast.Op s) op_name
    else
      frequency
        [ (3, map (fun s -> Ast.Op s) op_name);
          (2, map (fun es -> Ast.Seq es) (list_size (int_range 2 3) (expr (n - 1))));
          (2, map (fun es -> Ast.Sel es) (list_size (int_range 2 3) (expr (n - 1))));
          (1, map (fun e -> Ast.Conc e) (expr (n - 1)));
          (1, map2 (fun k e -> Ast.Bounded (k, e)) (int_range 1 5) (expr (n - 1)));
          (1, map2 (fun p e -> Ast.Pred (p, e)) (oneofl [ "p"; "q" ]) (expr (n - 1)))
        ]
  in
  list_size (int_range 1 3) (expr 3)

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip" ~count:200
    (QCheck.make ~print:Ast.to_string gen_ast)
    (fun spec -> Ast.equal_spec spec (Parser.parse (Ast.to_string spec)))

(* ------------------------------------------------------------------ *)
(* Semantics, on both engines                                          *)

let engines = [ (`Semaphore, "semaphore"); (`Gate, "gate") ]

let with_engines f = List.iter (fun (engine, name) -> f engine name) engines

let test_sequence_blocks () =
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path a ; b end" in
      let b_done = Atomic.make false in
      let runner =
        Testutil.spawn (fun () ->
            Pathexpr.run p "b" (fun () -> Atomic.set b_done true))
      in
      Testutil.never (name ^ ": b before a") (fun () -> Atomic.get b_done);
      Pathexpr.run p "a" (fun () -> ());
      Sync_platform.Process.join runner;
      check_bool (name ^ ": b ran") true (Atomic.get b_done))

let test_cycle_repeats () =
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path a ; b end" in
      for _ = 1 to 3 do
        Pathexpr.run p "a" (fun () -> ());
        Pathexpr.run p "b" (fun () -> ())
      done;
      check_bool (name ^ ": three cycles") true true)

let test_selection_excludes () =
  with_engines (fun engine name ->
      (* path a , b end: one per cycle; a second op waits for the first to
         finish. *)
      let p = Pathexpr.of_string ~engine "path a , b end" in
      let g = Testutil.Gauge.create () in
      let body () =
        Testutil.Gauge.enter g;
        Thread.yield ();
        Testutil.Gauge.leave g
      in
      Testutil.run_all
        [ (fun () -> for _ = 1 to 50 do Pathexpr.run p "a" body done);
          (fun () -> for _ = 1 to 50 do Pathexpr.run p "b" body done) ];
      check_int (name ^ ": exclusive") 1 (Testutil.Gauge.max g))

let test_concurrency_burst () =
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path { a } , b end" in
      let g = Testutil.Gauge.create () in
      let barrier = Sync_platform.Latch.Barrier.create 3 in
      let reader () =
        Pathexpr.run p "a" (fun () ->
            Testutil.Gauge.enter g;
            Sync_platform.Latch.Barrier.await barrier;
            Testutil.Gauge.leave g)
      in
      Testutil.run_all (List.init 3 (fun _ -> reader));
      check_int (name ^ ": burst of three") 3 (Testutil.Gauge.max g))

let test_conc_excludes_alternative () =
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path { a } , b end" in
      let a_holds = Sync_platform.Latch.create 1 in
      let a_entered = Atomic.make false in
      let b_done = Atomic.make false in
      let a_thread =
        Testutil.spawn (fun () ->
            Pathexpr.run p "a" (fun () ->
                Atomic.set a_entered true;
                Sync_platform.Latch.wait a_holds))
      in
      Testutil.eventually "a inside" (fun () -> Atomic.get a_entered);
      let b_thread =
        Testutil.spawn (fun () ->
            Pathexpr.run p "b" (fun () -> Atomic.set b_done true))
      in
      Testutil.never (name ^ ": b overlapped a") (fun () -> Atomic.get b_done);
      Sync_platform.Latch.arrive a_holds;
      Sync_platform.Process.join a_thread;
      Sync_platform.Process.join b_thread;
      check_bool (name ^ ": b ran after") true (Atomic.get b_done))

let test_bounded_window () =
  with_engines (fun engine name ->
      (* Up to 2 puts may run ahead of gets. *)
      let p = Pathexpr.of_string ~engine "path 2 : (put ; get) end" in
      Pathexpr.run p "put" (fun () -> ());
      Pathexpr.run p "put" (fun () -> ());
      let third = Atomic.make false in
      let t =
        Testutil.spawn (fun () ->
            Pathexpr.run p "put" (fun () -> Atomic.set third true))
      in
      Testutil.never (name ^ ": third put slipped through") (fun () ->
          Atomic.get third);
      Pathexpr.run p "get" (fun () -> ());
      Sync_platform.Process.join t;
      check_bool (name ^ ": third put after get") true (Atomic.get third))

let test_get_waits_for_put () =
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path 2 : (put ; get) end" in
      let got = Atomic.make false in
      let t =
        Testutil.spawn (fun () ->
            Pathexpr.run p "get" (fun () -> Atomic.set got true))
      in
      Testutil.never (name ^ ": get on empty") (fun () -> Atomic.get got);
      Pathexpr.run p "put" (fun () -> ());
      Sync_platform.Process.join t;
      check_bool (name ^ ": got") true (Atomic.get got))

let test_multiple_paths_compose () =
  with_engines (fun engine name ->
      (* puts serialized among themselves even while window is open. *)
      let p =
        Pathexpr.of_string ~engine
          "path 4 : (put ; get) end path put end path get end"
      in
      let g = Testutil.Gauge.create () in
      let producer () =
        for _ = 1 to 20 do
          Pathexpr.run p "put" (fun () ->
              Testutil.Gauge.enter g;
              Thread.yield ();
              Testutil.Gauge.leave g)
        done
      in
      let consumer () =
        for _ = 1 to 40 do
          Pathexpr.run p "get" (fun () -> ())
        done
      in
      Testutil.run_all [ producer; producer; consumer ];
      check_int (name ^ ": puts serialized") 1 (Testutil.Gauge.max g))

let test_fifo_selection () =
  (* The longest-waiting process is selected: with two writers parked, the
     first to arrive goes first. *)
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path w end" in
      let j = Testutil.Journal.create () in
      let hold = Sync_platform.Latch.create 1 in
      let inside = Atomic.make false in
      let holder =
        Testutil.spawn (fun () ->
            Pathexpr.run p "w" (fun () ->
                Atomic.set inside true;
                Sync_platform.Latch.wait hold))
      in
      Testutil.eventually "holder inside" (fun () -> Atomic.get inside);
      let mk i =
        let t =
          Testutil.spawn (fun () ->
              Pathexpr.run p "w" (fun () ->
                  Testutil.Journal.add j (string_of_int i)))
        in
        (* Give the spawned thread time to park before starting the next,
           so arrival order is deterministic. *)
        Thread.delay 0.02;
        t
      in
      let ts = List.init 3 mk in
      Sync_platform.Latch.arrive hold;
      Sync_platform.Process.join holder;
      List.iter Sync_platform.Process.join ts;
      check_strings (name ^ ": fifo") [ "0"; "1"; "2" ]
        (Testutil.Journal.entries j))

(* ------------------------------------------------------------------ *)
(* Predicates (gate engine only)                                       *)

let test_predicate_gates () =
  let open_ = ref false in
  let p =
    Pathexpr.of_string ~engine:`Gate
      ~env:[ ("open", fun () -> !open_) ]
      "path [open] a end"
  in
  let ran = Atomic.make false in
  let t =
    Testutil.spawn (fun () -> Pathexpr.run p "a" (fun () -> Atomic.set ran true))
  in
  Testutil.never "ran before predicate" (fun () -> Atomic.get ran);
  (* Mutate the predicate input, then poke via another operation's
     completion: here we flip the flag inside a run of the same system. *)
  open_ := true;
  Pathexpr.run p "a" (fun () -> ());
  Sync_platform.Process.join t;
  check_bool "ran once open" true (Atomic.get ran)

let test_predicate_unsupported_on_semaphore_engine () =
  match
    Pathexpr.of_string ~engine:`Semaphore
      ~env:[ ("p", fun () -> true) ]
      "path [p] a end"
  with
  | exception Pathexpr.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_compile_errors () =
  let unsupported src =
    match Pathexpr.of_string src with
    | exception Pathexpr.Unsupported _ -> ()
    | _ -> Alcotest.failf "expected Unsupported for %S" src
  in
  (* duplicate op in one declaration *)
  unsupported "path a ; a end";
  (* nested bound *)
  unsupported "path a ; 2 : (b) end";
  (* unbound predicate (gate engine accepts the construct) *)
  (match Pathexpr.of_string ~engine:`Gate "path [nope] a end" with
  | exception Pathexpr.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected unbound predicate error")

let test_unknown_operation () =
  let p = Pathexpr.of_string "path a end" in
  Alcotest.check_raises "unknown op" (Pathexpr.Unknown_operation "zz")
    (fun () -> Pathexpr.run p "zz" (fun () -> ()))

let test_body_exception_rolls_back_path () =
  with_engines (fun engine name ->
      let p = Pathexpr.of_string ~engine "path a ; b end" in
      (try Pathexpr.run p "a" (fun () -> failwith "body") with
      | Failure _ -> ());
      (* The abort rolled a back: b must NOT be enabled, and a fresh a
         followed by b must still run — the path state is exactly as if
         the failed a never started. *)
      let b_early = Atomic.make false in
      let t =
        Testutil.spawn (fun () ->
            Pathexpr.run p "b" (fun () -> Atomic.set b_early true))
      in
      Thread.delay 0.05;
      check_bool (name ^ ": b blocked after rollback") false
        (Atomic.get b_early);
      Pathexpr.run p "a" (fun () -> ());
      Sync_platform.Process.join t;
      check_bool (name ^ ": b ran after fresh a") true (Atomic.get b_early))

(* Liveness property: a single-declaration sequential path, executed in
   its textual order by one process, completes two full cycles without
   blocking — on both engines. Random op lists (distinct names). *)
let prop_sequential_paths_live =
  let gen =
    QCheck.make
      ~print:(String.concat ";")
      QCheck.Gen.(
        let names = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
        int_range 1 6 >|= fun n -> List.filteri (fun i _ -> i < n) names)
  in
  QCheck.Test.make ~name:"sequential paths are live" ~count:30 gen
    (fun ops ->
      List.for_all
        (fun engine ->
          let spec =
            [ (match List.map (fun o -> Ast.Op o) ops with
              | [ single ] -> single
              | several -> Ast.Seq several) ]
          in
          let p = Pathexpr.compile ~engine spec in
          let hit = ref 0 in
          for _ = 1 to 2 do
            List.iter (fun o -> Pathexpr.run p o (fun () -> incr hit)) ops
          done;
          !hit = 2 * List.length ops)
        [ `Semaphore; `Gate ])

let test_ops_listing () =
  let p = Pathexpr.of_string "path { read } , write end" in
  Alcotest.(check (list string)) "ops" [ "read"; "write" ] (Pathexpr.ops p);
  check_bool "engine name" true (Pathexpr.engine_name p = "semaphore")

let () =
  Alcotest.run "pathexpr"
    [ ( "parser",
        [ Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "multiple decls" `Quick test_parse_multiple_decls;
          Alcotest.test_case "comments/whitespace" `Quick
            test_parse_comments_whitespace;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "figure 1 parses" `Quick test_figure1_parses;
          Alcotest.test_case "pp roundtrip examples" `Quick
            test_pp_roundtrip_examples;
          Testutil.qcheck_case prop_pp_parse_roundtrip ] );
      ( "semantics",
        [ Alcotest.test_case "sequence blocks" `Quick test_sequence_blocks;
          Alcotest.test_case "cycle repeats" `Quick test_cycle_repeats;
          Alcotest.test_case "selection excludes" `Quick
            test_selection_excludes;
          Alcotest.test_case "concurrency burst" `Quick test_concurrency_burst;
          Alcotest.test_case "conc excludes alternative" `Quick
            test_conc_excludes_alternative;
          Alcotest.test_case "bounded window" `Quick test_bounded_window;
          Alcotest.test_case "get waits for put" `Quick test_get_waits_for_put;
          Alcotest.test_case "multiple paths compose" `Quick
            test_multiple_paths_compose;
          Alcotest.test_case "fifo selection" `Quick test_fifo_selection ] );
      ( "liveness",
        [ Testutil.qcheck_case prop_sequential_paths_live ] );
      ( "extensions",
        [ Alcotest.test_case "predicate gates" `Quick test_predicate_gates;
          Alcotest.test_case "predicates need gate engine" `Quick
            test_predicate_unsupported_on_semaphore_engine ] );
      ( "errors",
        [ Alcotest.test_case "ops listing" `Quick test_ops_listing;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "unknown operation" `Quick test_unknown_operation;
          Alcotest.test_case "body exception rolls back" `Quick
            test_body_exception_rolls_back_path ] ) ]
