(** FCFS with a serializer: the single event queue is FIFO by
    construction, so the priority constraint costs nothing beyond naming
    the queue; the guard only expresses the exclusion constraint. *)

open Sync_serializer
open Sync_taxonomy

type t = {
  ser : Serializer.t;
  q : Serializer.Queue.t;
  users : Serializer.Crowd.t;
  res_use : pid:int -> unit;
}

let mechanism = "serializer"

let create ~use =
  let ser = Serializer.create () in
  { ser; q = Serializer.Queue.create ~name:"arrivals" ser;
    users = Serializer.Crowd.create ~name:"users" ser; res_use = use }

let use t ~pid =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.q ~until:(fun () ->
          Serializer.Crowd.is_empty t.users);
      Serializer.join_crowd t.users ~body:(fun () -> t.res_use ~pid))

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "until"; "empty(users)"; "join_crowd" ]);
        ("fcfs-order", [ "queue"; "FIFO" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Direct); (Info.Request_time, Meta.Direct) ]
    ~separation:Meta.Enforced ()
