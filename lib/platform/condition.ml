module Probe = Sync_trace.Probe

type t = Sys of Stdlib.Condition.t | Det of Detrt.cond

let create () =
  if Detrt.active () then Det (Detrt.cond ())
  else Sys (Stdlib.Condition.create ())

(* Waiting releases the mutex internally, so the holder's Hold span must
   close here (park time is wait time, not hold time) and restart when
   the waiter re-acquires. *)
let close_hold (m : Mutex.t) =
  if m.Mutex.acquired_at <> 0 then begin
    Probe.span Hold ~site:m.Mutex.name ~since:m.Mutex.acquired_at ~arg:0;
    m.Mutex.acquired_at <- 0
  end

let reopen_hold (m : Mutex.t) =
  if Probe.enabled () then m.Mutex.acquired_at <- Probe.now ()

let wait c (m : Mutex.t) =
  close_hold m;
  (match (c, m.Mutex.impl) with
  | Sys c, Mutex.Sys m -> Stdlib.Condition.wait c m
  | Det c, Mutex.Det m -> Detrt.cond_wait c m
  | Sys _, Mutex.Det _ | Det _, Mutex.Sys _ ->
    failwith
      "Condition.wait: condition and mutex from different worlds (one \
       deterministic, one system); create both inside or both outside the \
       deterministic run");
  reopen_hold m

(* Timed wait by bounded polling: stdlib condition variables have no
   timed wait, so [wait_for] releases the mutex, lets someone else run,
   and reacquires — a spurious wakeup per polling step, absorbed by the
   caller's predicate loop exactly like any other spurious wakeup. The
   condition variable itself is not consulted; correctness (never miss a
   state change) follows from re-checking the predicate with the mutex
   held on every iteration. *)
let wait_for c (m : Mutex.t) ~deadline =
  ignore c;
  if Deadline.expired deadline then false
  else begin
    close_hold m;
    (match m.Mutex.impl with
    | Mutex.Sys sm ->
      Stdlib.Mutex.unlock sm;
      Thread.yield ();
      Stdlib.Mutex.lock sm
    | Mutex.Det dm ->
      Detrt.mutex_unlock dm;
      Detrt.yield ();
      Detrt.mutex_lock dm);
    reopen_hold m;
    true
  end

let signal = function
  | Sys c -> Stdlib.Condition.signal c
  | Det c -> Detrt.cond_signal c

let broadcast = function
  | Sys c -> Stdlib.Condition.broadcast c
  | Det c -> Detrt.cond_broadcast c
