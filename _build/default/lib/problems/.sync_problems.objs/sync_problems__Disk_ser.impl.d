lib/problems/disk_ser.ml: Info Meta Serializer Sync_serializer Sync_taxonomy
