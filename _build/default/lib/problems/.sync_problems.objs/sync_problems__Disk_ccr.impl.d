lib/problems/disk_ccr.ml: Fun Heap Info Meta Sync_ccr Sync_platform Sync_taxonomy
