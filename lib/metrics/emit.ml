type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* Integral floats print without an exponent so counts stay readable. *)
    Printf.sprintf "%.0f" f
  else
    (* "%.6g" can produce "1e+06", which is still valid JSON. *)
    Printf.sprintf "%.6g" f

let rec emit b ~pretty ~level v =
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
    Buffer.add_char b '[';
    nl ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char b ',';
          nl ()
        end;
        pad (level + 1);
        emit b ~pretty ~level:(level + 1) x)
      xs;
    nl ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    nl ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          nl ()
        end;
        pad (level + 1);
        escape_string b k;
        Buffer.add_string b (if pretty then ": " else ":");
        emit b ~pretty ~level:(level + 1) x)
      fields;
    nl ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(pretty = true) v =
  let b = Buffer.create 256 in
  emit b ~pretty ~level:0 v;
  Buffer.contents b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let csv_line fields = String.concat "," (List.map csv_field fields)
