(* Bounded polling used by the driven scenario drivers. *)

(* Settle delays give freshly spawned contenders time to park inside the
   mechanism (an event the harness cannot observe portably). The duration
   is env-tunable so CI can trade latency for reliability on loaded
   runners: SYNC_SETTLE_MS overrides every driver's default. *)
let settle_s ?(default = 0.05) () =
  match Sys.getenv_opt "SYNC_SETTLE_MS" with
  | Some ms -> (
    match float_of_string_opt (String.trim ms) with
    | Some v when v > 0.0 -> v /. 1000.0
    | Some _ | None -> default)
  | None -> default

let settle ?default () = Thread.delay (settle_s ?default ())

let until ?(timeout = 10.0) what pred =
  let deadline =
    Int64.add (Sync_platform.Clock.now_ns ())
      (Int64.of_float (timeout *. 1e9))
  in
  let rec loop () =
    if pred () then ()
    else if Sync_platform.Clock.now_ns () >= deadline then
      failwith ("timed out waiting for " ^ what)
    else begin
      Thread.yield ();
      loop ()
    end
  in
  loop ()
