lib/pathexpr/engine.mli:
