lib/taxonomy/meta.mli: Format Info
