(** Workload drivers and checkers for readers-writers.

    Two layers of evidence:

    - {!verify_exclusion}: a free-running stress mix. The self-checking
      {!Sync_resources.Store} catches any reader/writer overlap at the
      resource; the trace additionally confirms that reader concurrency
      really happened (a solution that degraded readers to mutual
      exclusion would pass the store check but fail this one).
    - {b driven scenarios} reproducing the paper's priority arguments
      deterministically. {!scenario_writer_handoff} is Figure 1's
      footnote-3 situation: writer W1 active, writer W2 then reader R
      queue up, W1 leaves — who wins? {!scenario_reader_arrival} probes
      the dual situation: reader R1 active, writer W waiting, reader R2
      arrives — may R2 overtake W? Together the two outcomes identify the
      implemented policy (see {!classify}). *)

open Sync_platform

type outcome = Reader_first | Writer_first

let outcome_to_string = function
  | Reader_first -> "reader-first"
  | Writer_first -> "writer-first"

(* ------------------------------------------------------------------ *)
(* Stress mix                                                          *)

type report = { trace : Trace.event list; store : Sync_resources.Store.t }

let run_stress (module S : Rw_intf.S) ?(backend = `Thread) ?(readers = 4)
    ?(writers = 2) ?(reads_each = 40) ?(writes_each = 10) ?(work = 200) () =
  let trace = Trace.create () in
  let store = Sync_resources.Store.create ~work () in
  let res_read ~pid =
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    let v = Sync_resources.Store.read store in
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ~arg:v ();
    v
  in
  let res_write ~pid =
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Enter ();
    Sync_resources.Store.write store;
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Exit ()
  in
  let t = S.create ~read:res_read ~write:res_write in
  let reader pid () =
    for _ = 1 to reads_each do
      Trace.record trace ~pid ~op:"read" ~phase:Trace.Request ();
      ignore (S.read t ~pid)
    done
  in
  let writer w () =
    let pid = 200 + w in
    for _ = 1 to writes_each do
      Trace.record trace ~pid ~op:"write" ~phase:Trace.Request ();
      S.write t ~pid
    done
  in
  Fun.protect
    ~finally:(fun () -> S.stop t)
    (fun () ->
      Process.run_all ~backend
        (List.init readers (fun pid -> reader pid)
        @ List.init writers (fun w -> writer w)));
  { trace = Trace.events trace; store }

let check_exclusion_events events =
  match Ivl.check_wellformed events with
  | Error _ as e -> e
  | Ok () ->
  let ivls = Ivl.intervals events in
  let conflicts a b = a = "write" || b = "write" in
  match Ivl.exclusion_violations ~conflicts ivls with
  | (a, b) :: _ ->
    Error
      (Printf.sprintf "exclusion violated: %s by pid %d overlaps %s by pid %d"
         a.Ivl.op a.Ivl.pid b.Ivl.op b.Ivl.pid)
  | [] -> Ok ()

let check_exclusion report = check_exclusion_events report.trace

(* Abort-injection variant of the stress mix: each operation body fires a
   fault site before touching the store, so an injected abort loses the
   operation but never corrupts it. Workers treat an abort as a skipped
   operation and continue — the mechanism must isolate the failure; the
   checker then demands the usual wellformedness and exclusion evidence
   from the surviving operations. A [`Poison] mechanism (CSP) makes the
   workers bail instead, recorded in the report. *)

type abort_report = {
  abort_trace : Trace.event list;
  aborted : int;
  poisoned : bool;
}

let run_abort (module S : Rw_intf.S) ?(backend = `Thread) ?(readers = 3)
    ?(writers = 2) ?(reads_each = 20) ?(writes_each = 8) ?(work = 50) () =
  let trace = Trace.create () in
  let store = Sync_resources.Store.create ~work () in
  let res_read ~pid =
    Fault.site "rw.read.body";
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    let v = Sync_resources.Store.read store in
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ~arg:v ();
    v
  in
  let res_write ~pid =
    Fault.site "rw.write.body";
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Enter ();
    Sync_resources.Store.write store;
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Exit ()
  in
  let t = S.create ~read:res_read ~write:res_write in
  let aborted = Atomic.make 0 in
  let poisoned = Atomic.make false in
  let step pid op =
    Trace.record trace ~pid ~op ~phase:Trace.Request ();
    match if op = "read" then ignore (S.read t ~pid) else S.write t ~pid with
    | () -> ()
    | exception Fault.Injected _ -> Atomic.incr aborted
    | exception Sync_csp.Csp.Poisoned _ ->
      Atomic.set poisoned true;
      raise Exit
  in
  let worker pid op n () = try for _ = 1 to n do step pid op done with Exit -> () in
  Fun.protect
    ~finally:(fun () -> try S.stop t with _ -> ())
    (fun () ->
      Process.run_all ~backend
        (List.init readers (fun pid -> worker pid "read" reads_each)
        @ List.init writers (fun w -> worker (200 + w) "write" writes_each)));
  { abort_trace = Trace.events trace;
    aborted = Atomic.get aborted;
    poisoned = Atomic.get poisoned }

let check_abort report = check_exclusion_events report.abort_trace

let verify_exclusion ?backend ?readers ?writers ?reads_each ?writes_each
    (module S : Rw_intf.S) =
  match
    run_stress (module S) ?backend ?readers ?writers ?reads_each ?writes_each
      ()
  with
  | report -> check_exclusion report
  | exception Sync_resources.Busywork.Ill_synchronized msg ->
    Error ("resource contract violated: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Driven scenarios                                                    *)

(* Reader concurrency cannot be asserted statistically on one core, so it
   gets its own driven scenario: with no writers anywhere, a second reader
   must be able to enter while the first is still inside. Every policy
   must pass. *)
let scenario_reader_overlap (module S : Rw_intf.S) =
  let trace = Trace.create () in
  let gate = Latch.create 1 in
  let r1 = 1 and r2 = 2 in
  let res_read ~pid =
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    if pid = r1 then Latch.wait gate;
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ();
    0
  in
  let res_write ~pid =
    ignore pid;
    failwith "no writer in this scenario"
  in
  let t = S.create ~read:res_read ~write:res_write in
  let reader1 =
    Process.spawn ~backend:`Thread (fun () -> ignore (S.read t ~pid:r1))
  in
  Testwait.until "r1 entered" (fun () ->
      List.exists
        (fun (e : Trace.event) -> e.pid = r1 && e.phase = Trace.Enter)
        (Trace.events trace));
  let reader2 =
    Process.spawn ~backend:`Thread (fun () -> ignore (S.read t ~pid:r2))
  in
  let overlapped =
    match
      Testwait.until ~timeout:3.0 "r2 entered while r1 inside" (fun () ->
          List.exists
            (fun (e : Trace.event) -> e.pid = r2 && e.phase = Trace.Enter)
            (Trace.events trace))
    with
    | () -> true
    | exception Failure _ -> false
  in
  Latch.arrive gate;
  List.iter Process.join [ reader1; reader2 ];
  S.stop t;
  if overlapped then Ok ()
  else Error "second reader could not overlap the first: readers serialized"

(* Writer W1 is mid-write; writer W2 then reader R arrive (in that order)
   and park; W1 finishes. Reports who is granted first. Under a correct
   readers-priority policy the reader wins (Courtois: it arrived while no
   reader had been excluded by anything but the active writer); Figure 1
   lets W2 overtake — footnote 3. *)
let scenario_writer_handoff_trace (module S : Rw_intf.S) =
  let trace = Trace.create () in
  let gate = Latch.create 1 in
  let w1 = 200 and w2 = 201 and r = 1 in
  let res_read ~pid =
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ();
    0
  in
  let res_write ~pid =
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Enter ();
    if pid = w1 then Latch.wait gate;
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Exit ()
  in
  let t = S.create ~read:res_read ~write:res_write in
  let first_writer = Process.spawn ~backend:`Thread (fun () -> S.write t ~pid:w1) in
  Testwait.until "w1 entered" (fun () ->
      List.exists
        (fun (e : Trace.event) -> e.pid = w1 && e.phase = Trace.Enter)
        (Trace.events trace));
  let second_writer =
    Process.spawn ~backend:`Thread (fun () -> S.write t ~pid:w2)
  in
  Testwait.settle ();
  let reader = Process.spawn ~backend:`Thread (fun () -> ignore (S.read t ~pid:r)) in
  Testwait.settle ();
  Latch.arrive gate;
  List.iter Process.join [ first_writer; second_writer; reader ];
  S.stop t;
  let after_w1 =
    List.filter
      (fun (e : Trace.event) -> e.phase = Trace.Enter && e.pid <> w1)
      (Trace.events trace)
  in
  let outcome =
    match after_w1 with
    | e :: _ -> if e.pid = r then Reader_first else Writer_first
    | [] -> failwith "scenario_writer_handoff: no grants recorded"
  in
  (outcome, Trace.events trace)

let scenario_writer_handoff m = fst (scenario_writer_handoff_trace m)

(* Deterministic-schedule variant of {!scenario_writer_handoff}: must be
   called inside a [Detrt.run] body. Quiescence replaces the settle
   delays, so the arrival order W1 < W2 < R is exact by construction and
   the winner depends only on the mechanism's own grant decision. *)
let det_scenario_writer_handoff (module S : Rw_intf.S) () =
  let trace = Trace.create () in
  let gate = Latch.create 1 in
  let w1 = 200 and w2 = 201 and r = 1 in
  let res_read ~pid =
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ();
    0
  in
  let res_write ~pid =
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Enter ();
    if pid = w1 then Latch.wait gate;
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Exit ()
  in
  let t = S.create ~read:res_read ~write:res_write in
  let first_writer = Process.spawn (fun () -> S.write t ~pid:w1) in
  Detrt.await_quiescence ();
  let second_writer = Process.spawn (fun () -> S.write t ~pid:w2) in
  Detrt.await_quiescence ();
  let reader = Process.spawn (fun () -> ignore (S.read t ~pid:r)) in
  Detrt.await_quiescence ();
  Latch.arrive gate;
  List.iter Process.join [ first_writer; second_writer; reader ];
  S.stop t;
  let events = Trace.events trace in
  let after_w1 =
    List.filter
      (fun (e : Trace.event) -> e.phase = Trace.Enter && e.pid <> w1)
      events
  in
  match after_w1 with
  | e :: _ -> ((if e.pid = r then Reader_first else Writer_first), events)
  | [] -> failwith "det_scenario_writer_handoff: no grants recorded"

(* Reader R1 is mid-read; writer W arrives and parks; reader R2 arrives.
   May R2 begin (overtaking W)? Readers-priority: yes. Writers-priority
   and FCFS: no. *)
let scenario_reader_arrival (module S : Rw_intf.S) =
  let trace = Trace.create () in
  let gate = Latch.create 1 in
  let r1 = 1 and r2 = 2 and w = 200 in
  let res_read ~pid =
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    if pid = r1 then Latch.wait gate;
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ();
    0
  in
  let res_write ~pid =
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Enter ();
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Exit ()
  in
  let t = S.create ~read:res_read ~write:res_write in
  let reader1 = Process.spawn ~backend:`Thread (fun () -> ignore (S.read t ~pid:r1)) in
  Testwait.until "r1 entered" (fun () ->
      List.exists
        (fun (e : Trace.event) -> e.pid = r1 && e.phase = Trace.Enter)
        (Trace.events trace));
  let writer = Process.spawn ~backend:`Thread (fun () -> S.write t ~pid:w) in
  Testwait.settle ();
  let reader2 = Process.spawn ~backend:`Thread (fun () -> ignore (S.read t ~pid:r2)) in
  Testwait.settle ();
  Latch.arrive gate;
  List.iter Process.join [ reader1; writer; reader2 ];
  S.stop t;
  let grants =
    List.filter
      (fun (e : Trace.event) -> e.phase = Trace.Enter && e.pid <> r1)
      (Trace.events trace)
  in
  match grants with
  | e :: _ -> if e.pid = r2 then Reader_first else Writer_first
  | [] -> failwith "scenario_reader_arrival: no grants recorded"

(* Writer starvation (the paper notes readers-priority "allows writers to
   starve"): keep three staggered readers alive continuously (three, so
   that the instants where every reader is between two reads — when even
   a readers-priority policy would admit the writer — have negligible
   probability); a writer requests midstream. Returns whether the writer
   was admitted before the reader stream ended. Under readers-priority it
   must wait out the whole stream; under FCFS/writers-priority it is
   admitted promptly. *)
let scenario_writer_starvation (module S : Rw_intf.S) =
  let trace = Trace.create () in
  let res_read ~pid =
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Enter ();
    Thread.delay 0.01;
    Trace.record trace ~pid ~op:"read" ~phase:Trace.Exit ();
    0
  in
  let res_write ~pid =
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Enter ();
    Trace.record trace ~pid ~op:"write" ~phase:Trace.Exit ()
  in
  let t = S.create ~read:res_read ~write:res_write in
  let stop = Atomic.make false in
  (* Staggered readers: at least one is always inside. *)
  let reader pid () =
    while not (Atomic.get stop) do
      ignore (S.read t ~pid)
    done
  in
  let r1 = Process.spawn ~backend:`Thread (reader 1) in
  Thread.delay 0.003;
  let r2 = Process.spawn ~backend:`Thread (reader 2) in
  Thread.delay 0.003;
  let r3 = Process.spawn ~backend:`Thread (reader 3) in
  Thread.delay 0.02;
  let writer_done = Atomic.make false in
  let w =
    Process.spawn ~backend:`Thread (fun () ->
        S.write t ~pid:200;
        Atomic.set writer_done true)
  in
  Thread.delay 0.3;
  let starved = not (Atomic.get writer_done) in
  Atomic.set stop true;
  List.iter Process.join [ r1; r2; r3; w ];
  S.stop t;
  starved

(* What the two scenario outcomes must be for each policy. *)
let expected_outcomes = function
  | Rw_intf.Readers_priority -> Some (Reader_first, Reader_first)
  | Rw_intf.Writers_priority -> Some (Writer_first, Writer_first)
  | Rw_intf.Fcfs -> Some (Writer_first, Writer_first)
  | Rw_intf.No_priority -> None (* any outcome is acceptable *)

(* Checker for {!det_scenario_writer_handoff}: trace well-formedness,
   reader/writer exclusion, and the policy's expected winner. *)
let det_check_writer_handoff (module S : Rw_intf.S) (outcome, events) =
  match Ivl.check_wellformed events with
  | Error _ as e -> e
  | Ok () -> (
    let conflicts a b = a = "write" || b = "write" in
    match Ivl.exclusion_violations ~conflicts (Ivl.intervals events) with
    | (a, b) :: _ ->
      Error
        (Printf.sprintf
           "exclusion violated: %s by pid %d overlaps %s by pid %d" a.Ivl.op
           a.Ivl.pid b.Ivl.op b.Ivl.pid)
    | [] -> (
      match expected_outcomes S.policy with
      | None -> Ok ()
      | Some (expected, _) ->
        if outcome = expected then Ok ()
        else
          Error
            (Printf.sprintf "writer-handoff: %s policy expected %s, got %s"
               (Rw_intf.policy_to_string S.policy)
               (outcome_to_string expected)
               (outcome_to_string outcome))))

let verify_policy (module S : Rw_intf.S) =
  match expected_outcomes S.policy with
  | None -> Ok ()
  | Some (exp_handoff, exp_arrival) ->
    let got_handoff = scenario_writer_handoff (module S) in
    if got_handoff <> exp_handoff then
      Error
        (Printf.sprintf "writer-handoff scenario: expected %s, got %s"
           (outcome_to_string exp_handoff)
           (outcome_to_string got_handoff))
    else
      let got_arrival = scenario_reader_arrival (module S) in
      if got_arrival <> exp_arrival then
        Error
          (Printf.sprintf "reader-arrival scenario: expected %s, got %s"
             (outcome_to_string exp_arrival)
             (outcome_to_string got_arrival))
      else Ok ()
