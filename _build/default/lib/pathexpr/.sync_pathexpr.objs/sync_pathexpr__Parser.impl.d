lib/pathexpr/parser.ml: Ast List Printf String
