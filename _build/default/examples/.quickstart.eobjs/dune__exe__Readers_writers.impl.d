examples/readers_writers.ml: Printf Rw_csp Rw_harness Rw_intf Rw_mon Rw_path Rw_ser Sync_platform Sync_problems Sync_resources
