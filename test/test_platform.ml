open Sync_platform

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)

let test_prng_deterministic () =
  let a = Prng.make 42L and b = Prng.make 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let r = Prng.make 7L in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done

let test_prng_split_independent () =
  let a = Prng.make 1L in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 b) in
  check_bool "streams differ" true (xs <> ys)

let test_prng_shuffle_permutation () =
  let r = Prng.make 3L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)

let test_heap_orders () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (Heap.to_list h);
  check_int "length" 5 (Heap.length h)

let test_heap_fifo_ties () =
  (* Equal keys must pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (k, _) (k', _) -> compare k k') () in
  List.iter (Heap.push h) [ (1, "a"); (0, "b"); (1, "c"); (0, "d") ];
  let order = List.map snd (Heap.to_list h) in
  Alcotest.(check (list string)) "fifo ties" [ "b"; "d"; "a"; "c" ] order

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:compare () in
  check_bool "empty" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap sorts like List.sort"
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      Heap.to_list h = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Waitq                                                              *)

let test_waitq_fifo () =
  let lock = Mutex.create () in
  let q : int Waitq.t = Waitq.create () in
  let j = Testutil.Journal.create () in
  let waiter i () =
    Mutex.lock lock;
    Waitq.wait q ~lock i;
    Mutex.unlock lock;
    Testutil.Journal.add j (string_of_int i)
  in
  let spawn_ordered i =
    let t = Testutil.spawn (waiter i) in
    Testutil.eventually "waiter parked" (fun () ->
        Mutex.lock lock;
        let n = Waitq.length q in
        Mutex.unlock lock;
        n = i + 1);
    t
  in
  let ts = List.init 3 spawn_ordered in
  for i = 1 to 3 do
    Mutex.lock lock;
    ignore (Waitq.wake_first q);
    Mutex.unlock lock;
    (* Wait for the woken thread to journal before waking the next, so the
       journal reflects wake order. *)
    Testutil.eventually "woken thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = i)
  done;
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "fifo wake order" [ "0"; "1"; "2" ]
    (Testutil.Journal.entries j)

let test_waitq_wake_min () =
  let lock = Mutex.create () in
  let q : int Waitq.t = Waitq.create () in
  let j = Testutil.Journal.create () in
  let waiter rank () =
    Mutex.lock lock;
    Waitq.wait q ~lock rank;
    Mutex.unlock lock;
    Testutil.Journal.add j (string_of_int rank)
  in
  let ranks = [ 5; 2; 9 ] in
  let ts =
    List.mapi
      (fun i rank ->
        let t = Testutil.spawn (waiter rank) in
        Testutil.eventually "parked" (fun () ->
            Mutex.lock lock;
            let n = Waitq.length q in
            Mutex.unlock lock;
            n = i + 1);
        t)
      ranks
  in
  Mutex.lock lock;
  Alcotest.(check (option int)) "min tag" (Some 2) (Waitq.min_tag q ~cmp:compare);
  Mutex.unlock lock;
  for i = 1 to 3 do
    Mutex.lock lock;
    ignore (Waitq.wake_min q ~cmp:compare);
    Mutex.unlock lock;
    Testutil.eventually "woken thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = i)
  done;
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "priority wake order" [ "2"; "5"; "9" ]
    (Testutil.Journal.entries j)

let test_waitq_wake_matching () =
  let lock = Mutex.create () in
  let q : string Waitq.t = Waitq.create () in
  let j = Testutil.Journal.create () in
  let waiter tag () =
    Mutex.lock lock;
    Waitq.wait q ~lock tag;
    Mutex.unlock lock;
    Testutil.Journal.add j tag
  in
  let ts =
    List.mapi
      (fun i tag ->
        let t = Testutil.spawn (waiter tag) in
        Testutil.eventually "parked" (fun () ->
            Mutex.lock lock;
            let n = Waitq.length q in
            Mutex.unlock lock;
            n = i + 1);
        t)
      [ "w"; "r1"; "r2" ]
  in
  let woken = ref 0 in
  let wake f =
    Mutex.lock lock;
    ignore (Waitq.wake_first_matching q ~f);
    Mutex.unlock lock;
    incr woken;
    let expected = !woken in
    Testutil.eventually "woken thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = expected)
  in
  wake (fun tag -> tag.[0] = 'r');
  wake (fun tag -> tag.[0] = 'r');
  wake (fun _ -> true);
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "matching order" [ "r1"; "r2"; "w" ]
    (Testutil.Journal.entries j)

(* ------------------------------------------------------------------ *)
(* Semaphores                                                         *)

let test_sem_counting_basic () =
  let s = Semaphore.Counting.create 2 in
  Semaphore.Counting.p s;
  Semaphore.Counting.p s;
  check_int "drained" 0 (Semaphore.Counting.value s);
  check_bool "try_p fails" false (Semaphore.Counting.try_p s);
  Semaphore.Counting.v s;
  check_bool "try_p succeeds" true (Semaphore.Counting.try_p s)

let test_sem_strong_fifo () =
  let s = Semaphore.Counting.create ~fairness:`Strong 0 in
  let j = Testutil.Journal.create () in
  let ts =
    List.init 4 (fun i ->
        let t =
          Testutil.spawn (fun () ->
              Semaphore.Counting.p s;
              Testutil.Journal.add j (string_of_int i))
        in
        Testutil.eventually "parked" (fun () ->
            Semaphore.Counting.waiters s = i + 1);
        t)
  in
  for i = 1 to 4 do
    Semaphore.Counting.v s;
    Testutil.eventually "granted thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = i)
  done;
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "fifo grants" [ "0"; "1"; "2"; "3" ]
    (Testutil.Journal.entries j)

let test_sem_mutual_exclusion_stress () =
  let s = Semaphore.Counting.create 1 in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Semaphore.Counting.p s;
      Testutil.Gauge.enter g;
      Thread.yield ();
      Testutil.Gauge.leave g;
      Semaphore.Counting.v s
    done
  in
  Testutil.run_all (List.init 4 (fun _ -> worker));
  check_int "never two inside" 1 (Testutil.Gauge.max g)

let test_sem_binary () =
  let s = Semaphore.Binary.create true in
  Semaphore.Binary.p s;
  check_int "closed" 0 (Semaphore.Binary.value s);
  Semaphore.Binary.v s;
  check_int "open" 1 (Semaphore.Binary.value s);
  Alcotest.check_raises "double v"
    (Invalid_argument "Semaphore.Binary.v: already open") (fun () ->
      Semaphore.Binary.v s)

(* ------------------------------------------------------------------ *)
(* Tsqueue, Latch, Barrier, Clock                                     *)

let test_tsqueue_fifo () =
  let q = Tsqueue.create () in
  List.iter (Tsqueue.push q) [ 1; 2; 3 ];
  check_int "len" 3 (Tsqueue.length q);
  check_int "pop" 1 (Tsqueue.pop q);
  Alcotest.(check (list int)) "drain" [ 2; 3 ] (Tsqueue.drain q);
  check_bool "empty" true (Tsqueue.try_pop q = None)

let test_tsqueue_blocking_pop () =
  let q = Tsqueue.create () in
  let got = Atomic.make 0 in
  let t = Testutil.spawn (fun () -> Atomic.set got (Tsqueue.pop q)) in
  Testutil.never "pop returns early" (fun () -> Atomic.get got <> 0);
  Tsqueue.push q 42;
  Sync_platform.Process.join t;
  check_int "received" 42 (Atomic.get got)

let test_tsqueue_pop_timeout () =
  let q : int Tsqueue.t = Tsqueue.create () in
  check_bool "times out" true
    (Tsqueue.pop_timeout q ~timeout_ns:10_000_000L = None)

let test_latch () =
  let l = Latch.create 3 in
  let done_ = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        Latch.wait l;
        Atomic.set done_ true)
  in
  Latch.arrive l;
  Latch.arrive l;
  Testutil.never "latch released early" (fun () -> Atomic.get done_);
  Latch.arrive l;
  Sync_platform.Process.join t;
  check_bool "released" true (Atomic.get done_);
  Alcotest.check_raises "extra arrive"
    (Invalid_argument "Latch.arrive: already at zero") (fun () ->
      Latch.arrive l)

let test_latch_wait_timeout () =
  let l = Latch.create 1 in
  check_bool "times out" false (Latch.wait_timeout l ~timeout_ns:20_000_000L);
  Latch.arrive l;
  check_bool "succeeds" true (Latch.wait_timeout l ~timeout_ns:20_000_000L)

let test_barrier_aligns () =
  let b = Latch.Barrier.create 3 in
  let counter = Atomic.make 0 in
  let seen_at_barrier = Tsqueue.create () in
  let worker () =
    ignore (Atomic.fetch_and_add counter 1);
    Latch.Barrier.await b;
    Tsqueue.push seen_at_barrier (Atomic.get counter);
    Latch.Barrier.await b
  in
  Testutil.run_all (List.init 3 (fun _ -> worker));
  List.iter
    (fun seen -> check_int "all arrived before any passed" 3 seen)
    (Tsqueue.drain seen_at_barrier)

let test_virtual_clock () =
  let c = Clock.Virtual.create () in
  check_int "starts at 0" 0 (Clock.Virtual.now c);
  let woke = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        Clock.Virtual.sleep_until c 5;
        Atomic.set woke true)
  in
  Testutil.eventually "sleeper registered" (fun () ->
      Clock.Virtual.sleepers c = 1);
  Clock.Virtual.advance c 4;
  Testutil.never "woke too early" (fun () -> Atomic.get woke);
  Clock.Virtual.advance c 1;
  Sync_platform.Process.join t;
  check_bool "woke" true (Atomic.get woke);
  check_int "now" 5 (Clock.Virtual.now c)

(* ------------------------------------------------------------------ *)
(* Process, Trace, Backoff                                            *)

let test_process_propagates_exception () =
  let t = Testutil.spawn (fun () -> failwith "boom") in
  Alcotest.check_raises "join re-raises" (Failure "boom") (fun () ->
      Sync_platform.Process.join t)

let test_process_domain_backend () =
  let hit = Atomic.make false in
  let t = Process.spawn ~backend:`Domain (fun () -> Atomic.set hit true) in
  Process.join t;
  check_bool "domain ran" true (Atomic.get hit)

let test_run_all_first_error () =
  Alcotest.check_raises "first error wins" (Failure "first") (fun () ->
      Testutil.run_all
        [ (fun () -> failwith "first"); (fun () -> failwith "second") ])

let test_trace_records_order () =
  let tr = Trace.create () in
  Trace.record tr ~pid:1 ~op:"read" ~phase:Trace.Request ();
  Trace.record tr ~pid:1 ~op:"read" ~phase:Trace.Enter ();
  Trace.record tr ~pid:1 ~op:"read" ~phase:Trace.Exit ~arg:7 ();
  let es = Trace.events tr in
  check_int "length" 3 (Trace.length tr);
  check_int "seqs dense" 0 (List.nth es 0).Trace.seq;
  check_int "arg kept" 7 (List.nth es 2).Trace.arg;
  Trace.clear tr;
  check_int "cleared" 0 (Trace.length tr)

let test_trace_concurrent_recording () =
  let tr = Trace.create () in
  let worker pid () =
    for _ = 1 to 100 do
      Trace.record tr ~pid ~op:"x" ~phase:Trace.Mark ()
    done
  in
  Testutil.run_all (List.init 4 (fun pid -> worker pid));
  let es = Trace.events tr in
  check_int "all recorded" 400 (List.length es);
  List.iteri (fun i e -> check_int "dense seq" i e.Trace.seq) es

let test_backoff_progresses () =
  let b = Backoff.create () in
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b

let test_backoff_bounds () =
  let rejects label f =
    match f () with
    | (_ : Backoff.t) -> Alcotest.failf "%s: accepted" label
    | exception Invalid_argument _ -> ()
  in
  rejects "min_wait 0" (fun () -> Backoff.create ~min_wait:0 ());
  rejects "min_wait negative" (fun () -> Backoff.create ~min_wait:(-2) ());
  rejects "min_wait not a power of two" (fun () ->
      Backoff.create ~min_wait:3 ());
  rejects "max_wait not a power of two" (fun () ->
      Backoff.create ~max_wait:24 ());
  rejects "max_wait < min_wait" (fun () ->
      Backoff.create ~min_wait:16 ~max_wait:8 ());
  (* Boundary acceptances: 1 = 2^0, and min = max. *)
  Backoff.once (Backoff.create ~min_wait:1 ~max_wait:1 ());
  Backoff.once (Backoff.create ~min_wait:8 ~max_wait:8 ())

(* ------------------------------------------------------------------ *)
(* Clock.Virtual edge cases                                           *)

let test_virtual_clock_edges () =
  let c = Clock.Virtual.create ~start:10 () in
  check_int "starts where asked" 10 (Clock.Virtual.now c);
  (* A deadline already reached never blocks. *)
  Clock.Virtual.sleep_until c 10;
  Clock.Virtual.sleep_until c 3;
  Clock.Virtual.advance c 0;
  check_int "advance 0 is a no-op" 10 (Clock.Virtual.now c);
  (* Several sleepers on the same deadline all wake on one advance. *)
  let woke = Atomic.make 0 in
  let sleepers =
    List.init 3 (fun _ ->
        Testutil.spawn (fun () ->
            Clock.Virtual.sleep_until c 12;
            Atomic.incr woke))
  in
  Testutil.eventually "all parked" (fun () -> Clock.Virtual.sleepers c = 3);
  Clock.Virtual.advance c 1;
  Testutil.never "none woke at 11" (fun () -> Atomic.get woke > 0);
  Clock.Virtual.advance c 1;
  List.iter Sync_platform.Process.join sleepers;
  check_int "all woke at 12" 3 (Atomic.get woke);
  check_int "no sleepers left" 0 (Clock.Virtual.sleepers c)

(* ------------------------------------------------------------------ *)
(* Timed/cancellable waits                                            *)

let test_timed_waits () =
  (* Semaphore: immediate success, then a timeout on an empty one. *)
  let sem = Semaphore.Counting.create 1 in
  check_bool "token available" true
    (Semaphore.Counting.acquire_for sem ~timeout_ns:1_000_000L);
  check_bool "empty times out" false
    (Semaphore.Counting.acquire_for sem ~timeout_ns:2_000_000L);
  Semaphore.Counting.v sem;
  (* Mutex: a contended try_lock_for expires; a free one succeeds. *)
  let m = Mutex.create () in
  let release = Atomic.make false in
  let held = Atomic.make false in
  let holder =
    Testutil.spawn (fun () ->
        Mutex.lock m;
        Atomic.set held true;
        while not (Atomic.get release) do
          Thread.yield ()
        done;
        Mutex.unlock m)
  in
  Testutil.eventually "holder has it" (fun () -> Atomic.get held);
  check_bool "contended lock times out" false
    (Mutex.try_lock_for m ~timeout_ns:2_000_000L);
  Atomic.set release true;
  Sync_platform.Process.join holder;
  check_bool "free lock succeeds" true
    (Mutex.try_lock_for m ~timeout_ns:1_000_000L);
  Mutex.unlock m;
  (* Condition: no signaller, so the predicate loop runs out of
     deadline — with the mutex reacquired (the unlock must be legal). *)
  let c = Condition.create () in
  let dl = Deadline.after_ns 2_000_000L in
  Mutex.lock m;
  while Condition.wait_for c m ~deadline:dl do
    ()
  done;
  check_bool "wait gave up only at the deadline" true (Deadline.expired dl);
  Mutex.unlock m;
  check_bool "past deadline expired" true
    (Deadline.expired (Deadline.after_ns (-1L)));
  check_bool "future deadline pending" false
    (Deadline.expired (Deadline.after_ns 1_000_000_000L))

(* ------------------------------------------------------------------ *)
(* Fault plans and masking                                            *)

let test_fault_triggers_deterministic () =
  let plan =
    Fault.plan [ ("a", Fault.Nth 2); ("b", Fault.Every 3) ]
  in
  let round () =
    let fires site =
      match Fault.site site with
      | () -> false
      | exception Fault.Injected _ -> true
    in
    let a = List.init 4 (fun _ -> fires "a") in
    let b = List.init 6 (fun _ -> fires "b") in
    (a, b)
  in
  let a, b = Fault.with_plan plan round in
  Alcotest.(check (list bool)) "Nth 2 fires exactly the 2nd hit"
    [ false; true; false; false ] a;
  Alcotest.(check (list bool)) "Every 3 fires hits 3 and 6"
    [ false; false; true; false; false; true ] b;
  (* with_plan resets the counters: the same closure replays. *)
  let a', b' = Fault.with_plan plan round in
  Alcotest.(check (list bool)) "Nth replays" a a';
  Alcotest.(check (list bool)) "Every replays" b b'

let test_fault_prob_deterministic () =
  let plan = Fault.plan ~seed:9 [ ("p", Fault.Prob 0.5) ] in
  let round () =
    List.init 64 (fun _ ->
        match Fault.site "p" with
        | () -> false
        | exception Fault.Injected _ -> true)
  in
  let one = Fault.with_plan plan round in
  let two = Fault.with_plan plan round in
  Alcotest.(check (list bool)) "seeded Prob stream replays" one two;
  check_bool "stream is mixed" true
    (List.exists Fun.id one && List.exists (fun x -> not x) one)

let test_fault_mask () =
  check_bool "not masked without a plan" false (Fault.masked ());
  let plan = Fault.plan [ ("m", Fault.Nth 1) ] in
  Fault.with_plan plan (fun () ->
      (* A masked hit neither fires nor consumes the Nth counter... *)
      Fault.mask (fun () ->
          check_bool "masked inside" true (Fault.masked ());
          Fault.mask (fun () ->
              check_bool "mask nests" true (Fault.masked ()));
          check_bool "still masked after inner exit" true (Fault.masked ());
          Fault.site "m");
      check_bool "unmasked outside" false (Fault.masked ());
      (* ... so the first unmasked hit is still hit #1 and fires. *)
      match Fault.site "m" with
      | () -> Alcotest.fail "masked hit consumed the counter"
      | exception Fault.Injected _ -> ())

(* ------------------------------------------------------------------ *)
(* Deadlock watchdog (wait-for graph) unit                             *)

let test_deadlock_find_cycle () =
  Deadlock.enable ();
  Fun.protect ~finally:Deadlock.disable (fun () ->
      let ra = Deadlock.register ~kind:"mutex" ~name:"res-a" () in
      let rb = Deadlock.register ~kind:"mutex" ~name:"res-b" () in
      let stop = Atomic.make false in
      let actor name holds wants =
        Testutil.spawn (fun () ->
            Deadlock.name_self name;
            Deadlock.acquired holds;
            Deadlock.blocked wants;
            while not (Atomic.get stop) do
              Thread.yield ()
            done;
            Deadlock.unblocked ();
            Deadlock.released holds)
      in
      let t1 = actor "proc-a" ra rb in
      let t2 = actor "proc-b" rb ra in
      Testutil.eventually "cycle detected" (fun () ->
          Deadlock.find_cycle () <> None);
      (match Deadlock.find_cycle () with
      | None -> Alcotest.fail "cycle vanished"
      | Some c ->
        let s = Deadlock.cycle_to_string c in
        let mem affix = Astring.String.is_infix ~affix s in
        check_bool "names proc-a" true (mem "proc-a");
        check_bool "names proc-b" true (mem "proc-b");
        check_bool "names res-a" true (mem "res-a");
        check_bool "names res-b" true (mem "res-b"));
      (* The daemon sees it too. *)
      let seen = Atomic.make false in
      let cancel =
        Deadlock.watch ~period_s:0.01
          ~on_cycle:(fun _ -> Atomic.set seen true)
          ()
      in
      Testutil.eventually "watchdog reports" (fun () -> Atomic.get seen);
      cancel ();
      Atomic.set stop true;
      Sync_platform.Process.join t1;
      Sync_platform.Process.join t2;
      Deadlock.reset ();
      check_bool "reset clears the graph" true (Deadlock.find_cycle () = None))

(* ------------------------------------------------------------------ *)
(* Fast-path tier (E22)                                               *)

let test_fastpath_flag () =
  check_bool "off by default" false (Fastpath.enabled ());
  let r =
    Fastpath.with_enabled (fun () ->
        check_bool "on inside" true (Fastpath.enabled ());
        check_bool "active outside Detrt" true (Fastpath.active ());
        17)
  in
  check_int "with_enabled returns f's value" 17 r;
  check_bool "restored" false (Fastpath.enabled ());
  (match Fastpath.with_enabled (fun () -> raise Exit) with
  | exception Exit -> ()
  | _ -> Alcotest.fail "expected Exit");
  check_bool "restored after raise" false (Fastpath.enabled ())

let is_fast_mutex (m : Mutex.t) =
  match m.Mutex.impl with Mutex.Fast _ -> true | _ -> false

let test_fast_mutex_tier_selection () =
  check_bool "default tier without the flag" false
    (is_fast_mutex (Mutex.create ()));
  let m = Fastpath.with_enabled (fun () -> Mutex.create ()) in
  check_bool "fast tier under the flag" true (is_fast_mutex m);
  let sem_tier fairness =
    Fastpath.with_enabled (fun () ->
        Semaphore.Counting.create ~fairness 1)
  in
  (* Only weak semaphores may take the fetch-and-add tier: strong ones
     promise arrival order, which the barging fast path cannot give. *)
  check_int "strong semaphore stays queued (waiters observable)" 0
    (Semaphore.Counting.waiters (sem_tier `Strong));
  let w = sem_tier `Weak in
  Semaphore.Counting.p w;
  check_int "weak fast semaphore accounts value" 0
    (Semaphore.Counting.value w);
  Semaphore.Counting.v w;
  check_int "weak fast semaphore v restores" 1 (Semaphore.Counting.value w)

(* Queue tier (E23): creation-scope selection and precedence between
   the substrate tiers — Det > Prim > Queue > Fast > Sys, decided once
   at [Mutex.create]. *)
module Prims = Sync_prims.Prims
module Queuelock = Sync_prims.Queuelock

let impl_label (m : Mutex.t) =
  match m.Mutex.impl with
  | Mutex.Det _ -> "det"
  | Mutex.Prim _ -> "prim"
  | Mutex.Queue q -> "queue:" ^ Queuelock.kind_name q.Queuelock.qk_kind
  | Mutex.Fast _ -> "fast"
  | Mutex.Sys _ -> "sys"
  | Mutex.Swap _ -> "swap"

let test_queue_tier_precedence () =
  let check_label msg want m = Alcotest.(check string) msg want (impl_label m) in
  check_label "no flag: system tier" "sys" (Mutex.create ());
  Queuelock.with_kind Queuelock.MCS (fun () ->
      check_label "queue flag alone" "queue:mcs" (Mutex.create ());
      Fastpath.with_enabled (fun () ->
          check_label "queue beats fast" "queue:mcs" (Mutex.create ()));
      Prims.with_class Prims.CAS (fun () ->
          check_label "prim class beats queue" "prim" (Mutex.create ()));
      Queuelock.with_kind Queuelock.Ticket (fun () ->
          check_label "inner kind wins" "queue:ticket" (Mutex.create ()));
      check_label "outer kind restored" "queue:mcs" (Mutex.create ()));
  check_label "selection is creation-scoped" "sys" (Mutex.create ());
  Fastpath.with_enabled (fun () ->
      check_label "fast without a queue kind" "fast" (Mutex.create ()));
  (* Each kind maps onto its own protocol. *)
  List.iter
    (fun k ->
      let m = Queuelock.with_kind k (fun () -> Mutex.create ()) in
      check_label (Queuelock.kind_name k) ("queue:" ^ Queuelock.kind_name k) m;
      Mutex.lock m;
      check_bool "held lock declines try_lock" false (Mutex.try_lock m);
      Mutex.unlock m;
      check_bool "free lock takes try_lock" true (Mutex.try_lock m);
      Mutex.unlock m)
    Queuelock.all

(* Mutual exclusion of the adaptive mutex under a parked-waiter storm:
   enough threads that the CAS, spin, and park paths all engage. *)
let test_fast_mutex_exclusion_storm () =
  let m = Fastpath.with_enabled (fun () -> Mutex.create ()) in
  let g = Testutil.Gauge.create () in
  let count = ref 0 in
  let iters = 2_000 in
  let worker () =
    for _ = 1 to iters do
      Mutex.lock m;
      Testutil.Gauge.enter g;
      incr count;
      Testutil.Gauge.leave g;
      Mutex.unlock m
    done
  in
  Process.run_all ~backend:`Thread [ worker; worker; worker; worker ];
  check_int "never two holders" 1 (Testutil.Gauge.max g);
  check_int "no lost increments" (4 * iters) !count

(* Value conservation of the fast weak semaphore: k units, never more
   than k concurrent holders, and every P is matched by its V. *)
let test_fast_weak_sem_conservation () =
  let k = 3 in
  let s =
    Fastpath.with_enabled (fun () ->
        Semaphore.Counting.create ~fairness:`Weak k)
  in
  let g = Testutil.Gauge.create () in
  let iters = 1_000 in
  let worker () =
    for _ = 1 to iters do
      Semaphore.Counting.p s;
      Testutil.Gauge.enter g;
      Testutil.Gauge.leave g;
      Semaphore.Counting.v s
    done
  in
  Process.run_all ~backend:`Thread [ worker; worker; worker; worker ];
  check_bool "at most k concurrent holders" true (Testutil.Gauge.max g <= k);
  check_int "all units returned" k (Semaphore.Counting.value s);
  check_int "no waiters left" 0 (Semaphore.Counting.waiters s)

(* try_p on the fast tier: must honor the value without parking. *)
let test_fast_sem_try_p_and_timeout () =
  let s =
    Fastpath.with_enabled (fun () ->
        Semaphore.Counting.create ~fairness:`Weak 1)
  in
  check_bool "try_p wins the unit" true (Semaphore.Counting.try_p s);
  check_bool "try_p on empty fails" false (Semaphore.Counting.try_p s);
  check_bool "acquire_for on empty times out" false
    (Semaphore.Counting.acquire_for s ~timeout_ns:2_000_000L);
  Semaphore.Counting.v s;
  check_bool "acquire_for succeeds when a unit exists" true
    (Semaphore.Counting.acquire_for s ~timeout_ns:2_000_000L);
  Semaphore.Counting.v s

(* Timed lock on the fast mutex: the backoff poll loop must both expire
   under contention and succeed on a free lock (satellite of E22). *)
let test_fast_mutex_try_lock_for () =
  let m = Fastpath.with_enabled (fun () -> Mutex.create ()) in
  let release = Atomic.make false in
  let held = Atomic.make false in
  let holder =
    Testutil.spawn (fun () ->
        Mutex.lock m;
        Atomic.set held true;
        while not (Atomic.get release) do
          Thread.yield ()
        done;
        Mutex.unlock m)
  in
  Testutil.eventually "holder has it" (fun () -> Atomic.get held);
  check_bool "contended fast lock times out" false
    (Mutex.try_lock_for m ~timeout_ns:2_000_000L);
  Atomic.set release true;
  Process.join holder;
  check_bool "free fast lock succeeds" true
    (Mutex.try_lock_for m ~timeout_ns:1_000_000L);
  check_bool "try_lock while held fails" false (Mutex.try_lock m);
  Mutex.unlock m

(* Conditions paired with a fast mutex: the park/seq protocol must not
   lose wakeups (Mesa contract: spurious allowed, lost not). *)
let test_fast_mutex_condition () =
  Fastpath.with_enabled (fun () ->
      let m = Mutex.create () in
      let c = Condition.create () in
      let ready = ref 0 in
      let woke = Atomic.make 0 in
      let n = 3 in
      let waiters =
        List.init n (fun _ ->
            Testutil.spawn (fun () ->
                Mutex.lock m;
                incr ready;
                while !ready <= n do
                  Condition.wait c m
                done;
                Atomic.incr woke;
                Mutex.unlock m))
      in
      Testutil.eventually "all parked" (fun () ->
          Mutex.lock m;
          let all = !ready = n in
          Mutex.unlock m;
          all);
      Mutex.lock m;
      ready := n + 1;
      Condition.broadcast c;
      Mutex.unlock m;
      List.iter Process.join waiters;
      check_int "broadcast woke everyone" n (Atomic.get woke);
      (* signal wakes at least one parked waiter. *)
      let parked = Atomic.make false and released = Atomic.make false in
      let w =
        Testutil.spawn (fun () ->
            Mutex.lock m;
            Atomic.set parked true;
            while not (Atomic.get released) do
              Condition.wait c m
            done;
            Mutex.unlock m)
      in
      Testutil.eventually "waiter parked" (fun () -> Atomic.get parked);
      Mutex.lock m;
      Atomic.set released true;
      Condition.signal c;
      Mutex.unlock m;
      Process.join w)

let test_waitq_wake_n () =
  let q = Waitq.create () in
  let m = Mutex.create () in
  let woke = Atomic.make 0 in
  let n = 3 in
  let waiters =
    List.init n (fun i ->
        Testutil.spawn (fun () ->
            Mutex.lock m;
            Waitq.wait q ~lock:m i;
            Atomic.incr woke;
            Mutex.unlock m))
  in
  Testutil.eventually "three parked" (fun () -> Waitq.length q = n);
  Mutex.lock m;
  check_int "wake_n reports the released count" 2 (Waitq.wake_n q 2);
  Mutex.unlock m;
  Testutil.eventually "exactly two woke" (fun () -> Atomic.get woke = 2);
  Testutil.never "third stays parked" (fun () -> Atomic.get woke > 2);
  Mutex.lock m;
  check_int "wake_all drains the rest" 1 (Waitq.wake_all q);
  Mutex.unlock m;
  List.iter Process.join waiters;
  check_int "all woke in the end" n (Atomic.get woke)

let test_sem_v_n () =
  (* Strong tier: v_n hands units to parked waiters in FIFO order, one
     signal pass, leftovers to the value. *)
  let s = Semaphore.Counting.create 0 in
  let woke = Atomic.make 0 in
  let waiters =
    List.init 3 (fun _ ->
        Testutil.spawn (fun () ->
            Semaphore.Counting.p s;
            Atomic.incr woke))
  in
  Testutil.eventually "three parked" (fun () ->
      Semaphore.Counting.waiters s = 3);
  Semaphore.Counting.v_n s 0;
  check_int "v_n 0 is a no-op" 3 (Semaphore.Counting.waiters s);
  Semaphore.Counting.v_n s 5;
  List.iter Process.join waiters;
  check_int "all three woke" 3 (Atomic.get woke);
  check_int "leftover units banked" 2 (Semaphore.Counting.value s);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Semaphore.Counting.v_n: negative count") (fun () ->
      Semaphore.Counting.v_n s (-1));
  (* Weak tier: one batched post, value goes up by n. *)
  let w = Semaphore.Counting.create ~fairness:`Weak 0 in
  Semaphore.Counting.v_n w 4;
  check_int "weak v_n posts the batch" 4 (Semaphore.Counting.value w)

(* ------------------------------------------------------------------ *)
(* Timed-wait edges: a zero or negative budget (the "already expired"
   deadline the serve tier sends for spent request budgets) must reject
   a contended acquire immediately — and still take a free one. *)

(* An expired budget must resolve in bounded time; generous margin for
   a loaded 1-core box. *)
let bounded name f =
  let t0 = Clock.now_ns () in
  let r = f () in
  let ms =
    Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) t0) 1_000_000L)
  in
  if ms > 1_000 then
    Alcotest.failf "%s took %dms on an expired budget" name ms;
  r

let test_deadline_expired_edges () =
  check_bool "0ns is born expired" true (Deadline.expired (Deadline.after_ns 0L));
  check_bool "negative is born expired" true
    (Deadline.expired (Deadline.after_ns (-1L)));
  check_bool "min_int does not wrap into the future" true
    (Deadline.expired (Deadline.after_ns Int64.min_int));
  check_bool "never does not expire" false (Deadline.expired Deadline.never);
  check_bool "a generous deadline is live" false
    (Deadline.expired (Deadline.after_s 60.0))

let test_timed_zero_budget () =
  (* Free primitives still succeed with no budget at all... *)
  let m = Mutex.create () in
  check_bool "free mutex, 0 budget" true
    (bounded "free mutex" (fun () -> Mutex.try_lock_for m ~timeout_ns:0L));
  Mutex.unlock m;
  let s = Semaphore.Counting.create 1 in
  check_bool "available unit, 0 budget" true
    (bounded "avail sem" (fun () ->
         Semaphore.Counting.acquire_for s ~timeout_ns:0L));
  let b = Semaphore.Binary.create true in
  check_bool "open binary, 0 budget" true
    (bounded "open binary" (fun () ->
         Semaphore.Binary.acquire_for b ~timeout_ns:0L));
  (* ...while exhausted ones reject immediately, leaving state intact. *)
  check_bool "empty sem, 0 budget" false
    (bounded "empty sem" (fun () ->
         Semaphore.Counting.acquire_for s ~timeout_ns:0L));
  check_bool "empty sem, negative budget" false
    (bounded "negative sem" (fun () ->
         Semaphore.Counting.acquire_for s ~timeout_ns:(-5L)));
  check_int "failed timed P leaves no value" 0 (Semaphore.Counting.value s);
  check_int "failed timed P leaves no waiter" 0 (Semaphore.Counting.waiters s);
  check_bool "closed binary, 0 budget" false
    (bounded "closed binary" (fun () ->
         Semaphore.Binary.acquire_for b ~timeout_ns:0L));
  (* Held mutex: a zero-budget contender must bounce, not park. *)
  Mutex.lock m;
  let contender = ref None in
  Process.join
    (Testutil.spawn (fun () ->
         contender :=
           Some (bounded "held mutex" (fun () ->
                     Mutex.try_lock_for m ~timeout_ns:0L))));
  Alcotest.(check (option bool)) "held mutex, 0 budget" (Some false) !contender;
  (* Expired condition wait: returns false with the lock still held. *)
  let c = Condition.create () in
  check_bool "expired cond wait" false
    (bounded "cond wait" (fun () ->
         Condition.wait_for c m ~deadline:(Deadline.after_ns 0L)));
  let probe = ref None in
  Process.join
    (Testutil.spawn (fun () -> probe := Some (Mutex.try_lock m)));
  Alcotest.(check (option bool)) "lock survives the expired wait"
    (Some false) !probe;
  (* Expired waitq wait: false, lock held, no residual entry to wake. *)
  let q = Waitq.create () in
  check_bool "expired waitq wait" false
    (bounded "waitq wait" (fun () ->
         Waitq.wait_for q ~lock:m ~deadline:(Deadline.after_ns (-1L)) 0));
  check_int "no residual waiter" 0 (Waitq.length q);
  Mutex.unlock m

(* The same contract must hold on the E22 fast tier, whose timed waits
   are CAS/backoff polls rather than condvar parks. *)
let test_fast_timed_zero_budget () =
  Fastpath.with_enabled (fun () ->
      let m = Mutex.create () in
      check_bool "fast free mutex, 0 budget" true
        (bounded "fast free mutex" (fun () ->
             Mutex.try_lock_for m ~timeout_ns:0L));
      Mutex.unlock m;
      let s = Semaphore.Counting.create 0 in
      check_bool "fast empty sem, 0 budget" false
        (bounded "fast empty sem" (fun () ->
             Semaphore.Counting.acquire_for s ~timeout_ns:0L));
      check_bool "fast empty sem, negative budget" false
        (bounded "fast negative sem" (fun () ->
             Semaphore.Counting.acquire_for s ~timeout_ns:(-5L)));
      check_int "fast sem value untouched" 0 (Semaphore.Counting.value s);
      let w = Semaphore.Counting.create ~fairness:`Weak 0 in
      check_bool "fast weak empty sem, 0 budget" false
        (bounded "fast weak sem" (fun () ->
             Semaphore.Counting.acquire_for w ~timeout_ns:0L)))

(* ------------------------------------------------------------------ *)
(* Waitq.wake_n batching properties (the E24 drain/V-storm substrate):
   wake_n releases exactly [min n waiters], FIFO-oldest first, and the
   overshoot wakes nobody twice. *)

let prop_wake_n_releases_min =
  QCheck.Test.make ~name:"wake_n releases exactly min n waiters" ~count:20
    QCheck.(pair (int_range 0 4) (int_range 0 8))
    (fun (parked, n) ->
      let q = Waitq.create () in
      let m = Mutex.create () in
      let woke = Atomic.make 0 in
      let waiters =
        List.init parked (fun i ->
            Testutil.spawn (fun () ->
                Mutex.lock m;
                Waitq.wait q ~lock:m i;
                Atomic.incr woke;
                Mutex.unlock m))
      in
      Testutil.eventually "all parked" (fun () -> Waitq.length q = parked);
      Mutex.lock m;
      let released = Waitq.wake_n q n in
      Mutex.unlock m;
      let expect = min parked n in
      Testutil.eventually "released count woke" (fun () ->
          Atomic.get woke = expect);
      Testutil.never "nobody extra wakes" (fun () -> Atomic.get woke > expect);
      Mutex.lock m;
      let drained = Waitq.wake_all q in
      Mutex.unlock m;
      List.iter Process.join waiters;
      released = expect
      && drained = parked - expect
      && Atomic.get woke = parked
      && Waitq.length q = 0)

let test_wake_n_empty () =
  let q : int Waitq.t = Waitq.create () in
  check_int "wake_n on an empty queue" 0 (Waitq.wake_n q 5);
  check_int "wake_n 0 on an empty queue" 0 (Waitq.wake_n q 0);
  check_int "wake_all on an empty queue" 0 (Waitq.wake_all q)

(* ------------------------------------------------------------------ *)
(* Batched-post storm on real domains: producers feed consumers with
   v_n bursts through the fast tier; every unit must be consumed
   exactly once (conservation) with nothing left parked. *)

let test_fast_v_n_domain_storm () =
  let s = Fastpath.with_enabled (fun () -> Semaphore.Counting.create 0) in
  let consumers = 3 in
  let per_consumer = 200 in
  let total = consumers * per_consumer in
  let consumed = Atomic.make 0 in
  let jobs =
    List.init consumers (fun _ () ->
        for _ = 1 to per_consumer do
          Semaphore.Counting.p s;
          Atomic.incr consumed
        done)
    @ [ (fun () ->
          (* One producer domain posting jittered batch sizes. *)
          let rng = Prng.make 99L in
          let posted = ref 0 in
          while !posted < total do
            let n = min (total - !posted) (1 + Prng.int rng 16) in
            Semaphore.Counting.v_n s n;
            posted := !posted + n;
            if Prng.int rng 4 = 0 then Thread.yield ()
          done) ]
  in
  Process.run_all ~backend:`Domain jobs;
  check_int "every unit consumed exactly once" total (Atomic.get consumed);
  check_int "no residual value" 0 (Semaphore.Counting.value s);
  check_int "no residual waiters" 0 (Semaphore.Counting.waiters s)

let () =
  Alcotest.run "platform"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_permutation ] );
      ( "heap",
        [ Alcotest.test_case "orders" `Quick test_heap_orders;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Testutil.qcheck_case prop_heap_sorts ] );
      ( "waitq",
        [ Alcotest.test_case "fifo" `Quick test_waitq_fifo;
          Alcotest.test_case "wake_min" `Quick test_waitq_wake_min;
          Alcotest.test_case "wake_matching" `Quick test_waitq_wake_matching
        ] );
      ( "semaphore",
        [ Alcotest.test_case "counting basic" `Quick test_sem_counting_basic;
          Alcotest.test_case "strong fifo" `Quick test_sem_strong_fifo;
          Alcotest.test_case "mutual exclusion stress" `Quick
            test_sem_mutual_exclusion_stress;
          Alcotest.test_case "binary" `Quick test_sem_binary ] );
      ( "queues",
        [ Alcotest.test_case "tsqueue fifo" `Quick test_tsqueue_fifo;
          Alcotest.test_case "tsqueue blocking pop" `Quick
            test_tsqueue_blocking_pop;
          Alcotest.test_case "tsqueue pop timeout" `Quick
            test_tsqueue_pop_timeout ] );
      ( "latch",
        [ Alcotest.test_case "latch" `Quick test_latch;
          Alcotest.test_case "wait_timeout" `Quick test_latch_wait_timeout;
          Alcotest.test_case "barrier aligns" `Quick test_barrier_aligns ] );
      ( "clock",
        [ Alcotest.test_case "virtual clock" `Quick test_virtual_clock ] );
      ( "process",
        [ Alcotest.test_case "exception propagates" `Quick
            test_process_propagates_exception;
          Alcotest.test_case "domain backend" `Quick
            test_process_domain_backend;
          Alcotest.test_case "run_all first error" `Quick
            test_run_all_first_error ] );
      ( "trace",
        [ Alcotest.test_case "records in order" `Quick
            test_trace_records_order;
          Alcotest.test_case "concurrent recording" `Quick
            test_trace_concurrent_recording ] );
      ( "backoff",
        [ Alcotest.test_case "progresses" `Quick test_backoff_progresses;
          Alcotest.test_case "bound validation" `Quick test_backoff_bounds ] );
      ( "clock-edges",
        [ Alcotest.test_case "virtual clock edge cases" `Quick
            test_virtual_clock_edges ] );
      ( "timed-waits",
        [ Alcotest.test_case "mutex/semaphore/condition" `Quick
            test_timed_waits ] );
      ( "fault",
        [ Alcotest.test_case "Nth/Every deterministic, with_plan resets"
            `Quick test_fault_triggers_deterministic;
          Alcotest.test_case "seeded Prob replays" `Quick
            test_fault_prob_deterministic;
          Alcotest.test_case "mask suppresses without counting" `Quick
            test_fault_mask ] );
      ( "deadlock",
        [ Alcotest.test_case "find_cycle names the circular wait" `Quick
            test_deadlock_find_cycle ] );
      ( "fastpath",
        [ Alcotest.test_case "flag scoping" `Quick test_fastpath_flag;
          Alcotest.test_case "tier selection" `Quick
            test_fast_mutex_tier_selection;
          Alcotest.test_case "fast mutex exclusion storm" `Quick
            test_fast_mutex_exclusion_storm;
          Alcotest.test_case "fast weak semaphore conservation" `Quick
            test_fast_weak_sem_conservation;
          Alcotest.test_case "fast semaphore try_p/timeout" `Quick
            test_fast_sem_try_p_and_timeout;
          Alcotest.test_case "fast mutex try_lock_for" `Quick
            test_fast_mutex_try_lock_for;
          Alcotest.test_case "fast mutex conditions" `Quick
            test_fast_mutex_condition;
          Alcotest.test_case "waitq wake_n batches" `Quick test_waitq_wake_n;
          Alcotest.test_case "semaphore v_n batches" `Quick test_sem_v_n ] );
      ( "queue-tier",
        [ Alcotest.test_case "tier precedence" `Quick
            test_queue_tier_precedence ] );
      ( "timed-edges",
        [ Alcotest.test_case "deadline expiry edges" `Quick
            test_deadline_expired_edges;
          Alcotest.test_case "zero/negative budgets" `Quick
            test_timed_zero_budget;
          Alcotest.test_case "fast-tier zero budgets" `Quick
            test_fast_timed_zero_budget ] );
      ( "wake-batching",
        [ Testutil.qcheck_case prop_wake_n_releases_min;
          Alcotest.test_case "wake_n empty edges" `Quick test_wake_n_empty;
          Alcotest.test_case "v_n domain storm" `Quick
            test_fast_v_n_domain_storm ] )
    ]
