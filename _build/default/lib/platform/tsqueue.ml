type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
}

let create () =
  { mutex = Mutex.create (); nonempty = Condition.create ();
    queue = Queue.create () }

let push t x =
  Mutex.lock t.mutex;
  Queue.push x t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  let x = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  x

let try_pop t =
  Mutex.lock t.mutex;
  let x = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  x

let pop_timeout t ~timeout_ns =
  let deadline = Int64.add (Clock.now_ns ()) timeout_ns in
  let rec loop () =
    match try_pop t with
    | Some x -> Some x
    | None ->
      if Clock.now_ns () >= deadline then None
      else begin
        Thread.yield ();
        loop ()
      end
  in
  loop ()

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let drain t =
  Mutex.lock t.mutex;
  let xs = List.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  Mutex.unlock t.mutex;
  xs
