(* Deterministic cooperative runtime: virtual tasks (OCaml 5 effect
   fibers) multiplexed on the calling thread. Every scheduling decision —
   which runnable task proceeds, which waiter receives a released mutex —
   is delegated to a single [choose] callback, so a run is a pure function
   of the scenario and the choice sequence: record the choices and any
   interleaving replays byte-for-byte.

   Context-switch points are the blocking primitives themselves
   (mutex lock/unlock, condition wait/signal/broadcast, spawn, join,
   quiescence). Code between two primitive operations executes atomically,
   which is sound for the mechanism implementations because they keep all
   shared state under their low-level locks.

   The runtime optionally narrates a run to an [observe] callback: which
   decision is about to be taken, which task each quantum belongs to, and
   which synchronization object every primitive op touched. The DPOR
   explorer in [sync_detsched] derives its dependency relation from this
   stream. Scheduler state is domain-local, so independent runs may
   proceed in parallel on separate domains (exploration shards). *)

exception Deadlock of string

exception Step_limit of int

(* Observable events. Object identities are per-run ordinals assigned at
   creation; creation order is itself schedule-determined, so ids are
   stable across replays of the same schedule. *)
module Obs = struct
  type objid =
    | Mutex_o of int
    | Cond_o of int
    | Task_o of int
    | Reg_o of int
    | Global

  type op =
    | Lock
    | Try_lock of bool
    | Unlock
    | Wait
    | Signal
    | Broadcast
    | Spawn
    | Join
    | Finish
    | Quiesce
    | Read
    | Write
    | Rmw of bool

  type event =
    | Choice of { kind : [ `Task | `Waiter ]; candidates : int array }
    | Sched of { tid : int; runnable : int array }
    | Op of { tid : int; obj : objid; op : op }

  let objid_to_string = function
    | Mutex_o i -> Printf.sprintf "m%d" i
    | Cond_o i -> Printf.sprintf "c%d" i
    | Task_o i -> Printf.sprintf "t%d" i
    | Reg_o i -> Printf.sprintf "r%d" i
    | Global -> "global"
end

type state = Unstarted | Runnable | Running | Blocked | Quiescing | Done

type task = {
  tid : int;
  tname : string;
  mutable state : state;
  (* The resumption: for Unstarted tasks, starting the body; otherwise
     continuing a captured fiber. Uniformly a thunk so that effects with
     differently-typed continuations share one queue. *)
  mutable resume : (unit -> unit) option;
  mutable t_exn : exn option;
  mutable joiners : task list;
}

type sched = {
  choose : int array -> int;
  observe : (Obs.event -> unit) option;
  max_steps : int;
  mutable runq : task list; (* deterministic FIFO of runnable tasks *)
  mutable quiescers : task list;
  (* Tasks parked in [reg_await], with the object ordinals they watch;
     a write to a watched register makes them runnable again. *)
  mutable regwaiters : (task * int list) list;
  (* Bumped by every register write: [reg_await]'s missed-write guard. *)
  mutable reg_epoch : int;
  mutable all : task list; (* spawn order, newest first *)
  mutable next_tid : int;
  mutable next_oid : int; (* object ordinal for [Obs] identities *)
  mutable steps : int;
  mutable first_exn : exn option;
  mutable limit_hit : bool;
}

(* Domain-local current run / current task, so exploration shards can
   drive independent runs concurrently on separate domains. *)
type dls = { mutable d_sched : sched option; mutable d_task : task option }

let dls_key : dls Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { d_sched = None; d_task = None })

let dls () = Domain.DLS.get dls_key

let active () = Option.is_some (dls ()).d_sched

let in_fiber () = Option.is_some (dls ()).d_task

let self () =
  match (dls ()).d_task with
  | Some t -> t
  | None -> failwith "Detrt: primitive used outside a running task"

let the_sched () =
  match (dls ()).d_sched with
  | Some s -> s
  | None -> failwith "Detrt: no deterministic run in progress"

let[@inline] emit s ev = match s.observe with None -> () | Some f -> f ev

let emit_op s obj op =
  match s.observe with
  | None -> ()
  | Some f ->
    let tid = match (dls ()).d_task with Some t -> t.tid | None -> -1 in
    f (Obs.Op { tid; obj; op })

let fresh_oid () =
  match (dls ()).d_sched with
  | Some s ->
    let o = s.next_oid in
    s.next_oid <- o + 1;
    o
  | None -> -1

type _ Effect.t +=
  | Yield : unit Effect.t
  | Block : unit Effect.t
  | Quiesce : unit Effect.t

let make_runnable s t =
  t.state <- Runnable;
  s.runq <- s.runq @ [ t ]

(* Pick the next runnable task and transfer control to it. Returns only
   when no progress is possible anymore (all done, deadlock, or the step
   limit tripped); the caller's stack then unwinds through the suspended
   handler frames. *)
let next s =
  if s.runq = [] && s.quiescers <> [] then begin
    let qs = s.quiescers in
    s.quiescers <- [];
    List.iter (make_runnable s) qs
  end;
  match s.runq with
  | [] -> () (* run loop over: [run] inspects task states afterwards *)
  | q ->
    s.steps <- s.steps + 1;
    if s.steps > s.max_steps then s.limit_hit <- true
    else begin
      let n = List.length q in
      let idx =
        if n = 1 then begin
          (match s.observe with
          | None -> ()
          | Some f ->
            let t = List.hd q in
            f (Obs.Sched { tid = t.tid; runnable = [| t.tid |] }));
          0
        end
        else begin
          let tids = Array.of_list (List.map (fun t -> t.tid) q) in
          emit s (Obs.Choice { kind = `Task; candidates = tids });
          let i = s.choose tids in
          if i < 0 || i >= n then
            invalid_arg
              (Printf.sprintf "Detrt: strategy chose %d of %d alternatives" i
                 n)
          else begin
            emit s (Obs.Sched { tid = tids.(i); runnable = tids });
            i
          end
        end
      in
      let t = List.nth q idx in
      s.runq <- List.filteri (fun i _ -> i <> idx) q;
      let k =
        match t.resume with
        | Some k ->
          t.resume <- None;
          k
        | None -> failwith "Detrt: runnable task has no continuation"
      in
      t.state <- Running;
      (dls ()).d_task <- Some t;
      k ()
    end

let choose_index s alts =
  let n = Array.length alts in
  if n = 1 then 0
  else begin
    emit s (Obs.Choice { kind = `Waiter; candidates = alts });
    let i = s.choose alts in
    if i < 0 || i >= n then
      invalid_arg
        (Printf.sprintf "Detrt: strategy chose %d of %d alternatives" i n)
    else i
  end

(* Install the scheduler's effect handler around a task body and start
   it. Called from within [next], i.e. on the current handler chain. *)
let exec s t body =
  let open Effect.Deep in
  let finish exn_opt =
    t.state <- Done;
    t.t_exn <- exn_opt;
    (match (exn_opt, s.first_exn) with
    | Some e, None -> s.first_exn <- Some e
    | _ -> ());
    (match s.observe with
    | None -> ()
    | Some f -> f (Obs.Op { tid = t.tid; obj = Obs.Task_o t.tid; op = Obs.Finish }));
    List.iter (make_runnable s) (List.rev t.joiners);
    t.joiners <- [];
    (dls ()).d_task <- None;
    next s
  in
  match_with body ()
    { retc = (fun () -> finish None);
      exnc = (fun e -> finish (Some e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, _) continuation) ->
                t.resume <- Some (fun () -> continue k ());
                make_runnable s t;
                (dls ()).d_task <- None;
                next s)
          | Block ->
            Some
              (fun (k : (a, _) continuation) ->
                t.resume <- Some (fun () -> continue k ());
                t.state <- Blocked;
                (dls ()).d_task <- None;
                next s)
          | Quiesce ->
            Some
              (fun (k : (a, _) continuation) ->
                t.resume <- Some (fun () -> continue k ());
                t.state <- Quiescing;
                s.quiescers <- s.quiescers @ [ t ];
                (dls ()).d_task <- None;
                next s)
          | _ -> None) }

let spawn ?name body =
  let s = the_sched () in
  if not (in_fiber ()) then
    failwith "Detrt.spawn: must be called from inside the deterministic run";
  let tid = s.next_tid in
  s.next_tid <- tid + 1;
  let tname =
    match name with Some n -> n | None -> Printf.sprintf "task-%d" tid
  in
  let t =
    { tid; tname; state = Unstarted; resume = None; t_exn = None;
      joiners = [] }
  in
  t.resume <- Some (fun () -> exec s t body);
  s.all <- t :: s.all;
  make_runnable s t;
  emit_op s Obs.Global Obs.Spawn;
  (* spawning is itself a scheduling point *)
  Effect.perform Yield;
  t

let join t =
  match (dls ()).d_task with
  | None ->
    if t.state <> Done then
      failwith "Detrt.join: task still live after the deterministic run"
  | Some me ->
    emit_op (the_sched ()) (Obs.Task_o t.tid) Obs.Join;
    if t.state <> Done then begin
      t.joiners <- me :: t.joiners;
      Effect.perform Block
    end

let yield () = if in_fiber () then Effect.perform Yield

(* A backend-agnostic "give someone else a chance": the det yield inside
   a run, the preemptive one outside. Used by the timed-wait polling
   loops, which exist in both worlds. *)
let relax () = if in_fiber () then Effect.perform Yield else Thread.yield ()

let self_info () =
  match (dls ()).d_task with Some t -> Some (t.tid, t.tname) | None -> None

let () =
  Deadlock.set_task_provider self_info;
  Fault.set_task_provider (fun () -> Option.map fst (self_info ()));
  Sync_trace.Probe.set_task_provider (fun () -> Option.map fst (self_info ()))

let await_quiescence () =
  if in_fiber () then begin
    emit_op (the_sched ()) Obs.Global Obs.Quiesce;
    Effect.perform Quiesce
  end
  else failwith "Detrt.await_quiescence: outside a deterministic run"

let task_tid t = t.tid

let task_name t = t.tname

(* ------------------------------------------------------------------ *)
(* Deterministic mutexes and condition variables (the det halves of the
   platform's [Mutex]/[Condition] facades). Ownership is handed off
   directly on unlock; the receiving waiter is picked by [choose].      *)

type mutex = {
  mutable owner : task option;
  mutable mwaiters : task list;
  (* Observation ordinal; -1 when created outside a run. *)
  moid : int;
  (* Watchdog resource id; -1 when the watchdog was off at creation
     (instrumentation is then skipped for this mutex). *)
  mid : int;
}

type cond = { mutable cwaiters : task list; coid : int }

let mutex () =
  { owner = None; mwaiters = []; moid = fresh_oid ();
    mid = (if Deadlock.enabled () then Deadlock.register ~kind:"mutex" ()
           else -1) }

let cond () = { cwaiters = []; coid = fresh_oid () }

let pick_waiter s waiters =
  match waiters with
  | [] -> assert false
  | [ w ] -> (w, [])
  | ws ->
    let arr = Array.of_list ws in
    let idx = choose_index s (Array.map (fun t -> t.tid) arr) in
    let w = arr.(idx) in
    (w, List.filteri (fun i _ -> i <> idx) ws)

let mutex_lock m =
  match (dls ()).d_task with
  | None ->
    (* Outside a run (e.g. post-run trace inspection): everything is
       quiesced, locking is a no-op as long as nobody holds the mutex. *)
    if m.owner <> None then
      failwith "Detrt: mutex held after the deterministic run"
  | Some _ ->
    Effect.perform Yield;
    (* still the same task: Yield re-enqueues and resumes us *)
    let t = self () in
    emit_op (the_sched ()) (Obs.Mutex_o m.moid) Obs.Lock;
    (match m.owner with
    | None ->
      m.owner <- Some t;
      if m.mid >= 0 then Deadlock.acquired m.mid
    | Some _ ->
      if m.mid >= 0 then Deadlock.blocked m.mid;
      m.mwaiters <- m.mwaiters @ [ t ];
      Effect.perform Block;
      (* ownership was transferred to us by the releasing task *)
      if m.mid >= 0 then Deadlock.acquired m.mid)

(* Non-blocking acquire. The preceding Yield makes the attempt itself a
   recorded scheduling point, so the outcome is a pure function of the
   schedule and replays deterministically. *)
let mutex_try_lock m =
  match (dls ()).d_task with
  | None -> failwith "Detrt: try_lock outside the deterministic run"
  | Some _ ->
    Effect.perform Yield;
    let t = self () in
    let ok =
      match m.owner with
      | None ->
        m.owner <- Some t;
        if m.mid >= 0 then Deadlock.acquired m.mid;
        true
      | Some _ -> false
    in
    emit_op (the_sched ()) (Obs.Mutex_o m.moid) (Obs.Try_lock ok);
    ok

(* Release [m], handing ownership to a chosen waiter if any. Shared by
   [mutex_unlock] and [cond_wait]. *)
let release_mutex s m =
  match m.mwaiters with
  | [] -> m.owner <- None
  | ws ->
    let w, rest = pick_waiter s ws in
    m.mwaiters <- rest;
    m.owner <- Some w;
    make_runnable s w

let holds m t = match m.owner with Some o -> o == t | None -> false

let mutex_unlock m =
  match (dls ()).d_task with
  | None -> ()
  | Some t ->
    if not (holds m t) then
      failwith "Detrt: mutex unlocked by a task that does not hold it";
    if m.mid >= 0 then Deadlock.released m.mid;
    let s = the_sched () in
    emit_op s (Obs.Mutex_o m.moid) Obs.Unlock;
    release_mutex s m;
    Effect.perform Yield

let cond_wait c m =
  match (dls ()).d_task with
  | None -> failwith "Detrt: Condition.wait outside the deterministic run"
  | Some t ->
    if not (holds m t) then
      failwith "Detrt: Condition.wait without holding the mutex";
    let s = the_sched () in
    emit_op s (Obs.Cond_o c.coid) Obs.Wait;
    emit_op s (Obs.Mutex_o m.moid) Obs.Unlock;
    (* Atomic release-and-park: no scheduling point between enqueueing
       ourselves and releasing the mutex, so signals cannot be lost. *)
    c.cwaiters <- c.cwaiters @ [ t ];
    if m.mid >= 0 then Deadlock.released m.mid;
    release_mutex s m;
    Effect.perform Block;
    (* Signalled: re-acquire like any newcomer (Mesa-style, matching the
       stdlib [Condition] contract the mechanisms are written against). *)
    mutex_lock m

let cond_signal c =
  match (dls ()).d_task with
  | None ->
    if c.cwaiters <> [] then
      failwith "Detrt: Condition.signal with waiters after the run"
  | Some _ ->
    let s = the_sched () in
    emit_op s (Obs.Cond_o c.coid) Obs.Signal;
    (match c.cwaiters with
    | [] -> ()
    | ws ->
      let w, rest = pick_waiter s ws in
      c.cwaiters <- rest;
      make_runnable s w);
    Effect.perform Yield

let cond_broadcast c =
  match (dls ()).d_task with
  | None ->
    if c.cwaiters <> [] then
      failwith "Detrt: Condition.broadcast with waiters after the run"
  | Some _ ->
    let s = the_sched () in
    emit_op s (Obs.Cond_o c.coid) Obs.Broadcast;
    let ws = c.cwaiters in
    c.cwaiters <- [];
    List.iter (make_runnable s) ws;
    Effect.perform Yield

(* ------------------------------------------------------------------ *)
(* Deterministic integer registers (the det face of [Sync_prims.Regs]):
   every access is a scheduling point, so the class-restricted lock and
   semaphore algorithms — whose steps ARE register accesses — expose
   each interleaving to the explorer. [reg_await] is the deterministic
   [Regs.await]: instead of spinning (which would make every schedule
   tree infinite), the task parks and a write to any watched register
   wakes it; a lost wakeup therefore surfaces as a Detrt deadlock, which
   is exactly what the E26 scenarios assert against. *)

type reg = { mutable rval : int; roid : int }

let reg v = { rval = v; roid = fresh_oid () }

let reg_wake s roid =
  match s.regwaiters with
  | [] -> ()
  | ws ->
    let woken, kept =
      List.partition (fun (_, watched) -> List.mem roid watched) ws
    in
    s.regwaiters <- kept;
    List.iter (fun (t, _) -> make_runnable s t) woken

let reg_get r =
  match (dls ()).d_task with
  | None -> r.rval (* post-run inspection *)
  | Some _ ->
    Effect.perform Yield;
    emit_op (the_sched ()) (Obs.Reg_o r.roid) Obs.Read;
    r.rval

let reg_write s r v =
  r.rval <- v;
  s.reg_epoch <- s.reg_epoch + 1;
  reg_wake s r.roid

let reg_set r v =
  match (dls ()).d_task with
  | None -> r.rval <- v
  | Some _ ->
    Effect.perform Yield;
    let s = the_sched () in
    emit_op s (Obs.Reg_o r.roid) Obs.Write;
    reg_write s r v

let reg_cas r seen v =
  match (dls ()).d_task with
  | None -> failwith "Detrt: reg_cas outside the deterministic run"
  | Some _ ->
    Effect.perform Yield;
    let s = the_sched () in
    let ok = r.rval = seen in
    emit_op s (Obs.Reg_o r.roid) (Obs.Rmw ok);
    if ok then reg_write s r v;
    ok

let reg_faa r n =
  match (dls ()).d_task with
  | None -> failwith "Detrt: reg_faa outside the deterministic run"
  | Some _ ->
    Effect.perform Yield;
    let s = the_sched () in
    let old = r.rval in
    emit_op s (Obs.Reg_o r.roid) (Obs.Rmw true);
    reg_write s r (old + n);
    old

let reg_await ~watch pred =
  match (dls ()).d_task with
  | None ->
    if not (pred ()) then
      failwith "Detrt.reg_await: predicate false outside the run"
  | Some _ ->
    let watched = Array.to_list (Array.map (fun r -> r.roid) watch) in
    let rec loop () =
      let s = the_sched () in
      (* Sampled with no scheduling point between here and the park
         decision except [pred]'s own reads: a write landing during the
         check bumps the epoch and forces a re-check, so a waiter never
         parks having missed the write that would have satisfied it. *)
      let e0 = s.reg_epoch in
      if not (pred ()) then begin
        let s = the_sched () in
        if s.reg_epoch <> e0 then loop ()
        else begin
          let t = self () in
          s.regwaiters <- s.regwaiters @ [ (t, watched) ];
          Effect.perform Block;
          loop ()
        end
      end
    in
    loop ()

(* ------------------------------------------------------------------ *)

let run ?(max_steps = 200_000) ?observe ~choose body =
  let d = dls () in
  if active () then failwith "Detrt.run: deterministic runs do not nest";
  let s =
    { choose; observe; max_steps; runq = []; quiescers = [];
      regwaiters = []; reg_epoch = 0; all = [];
      next_tid = 0; next_oid = 0; steps = 0; first_exn = None;
      limit_hit = false }
  in
  d.d_sched <- Some s;
  Fun.protect
    ~finally:(fun () ->
      d.d_sched <- None;
      d.d_task <- None)
    (fun () ->
      let main =
        { tid = 0; tname = "main"; state = Unstarted; resume = None;
          t_exn = None; joiners = [] }
      in
      s.next_tid <- 1;
      s.all <- [ main ];
      main.state <- Running;
      d.d_task <- Some main;
      exec s main body;
      (* The handler chain has fully unwound: classify the outcome. *)
      (match s.first_exn with Some e -> raise e | None -> ());
      if s.limit_hit then raise (Step_limit s.max_steps);
      let stuck = List.filter (fun t -> t.state <> Done) s.all in
      if stuck <> [] then begin
        (* When the watchdog is on, the blocked/holds edges of the stuck
           tasks are still registered: name the circular wait, if any. *)
        let cycle =
          match Deadlock.find_cycle () with
          | Some c -> "; wait-for cycle: " ^ Deadlock.cycle_to_string c
          | None -> ""
        in
        raise
          (Deadlock
             (Printf.sprintf "deadlock: %d task(s) blocked forever: %s%s"
                (List.length stuck)
                (String.concat ", "
                   (List.rev_map
                      (fun t -> Printf.sprintf "%s(#%d)" t.tname t.tid)
                      stuck))
                cycle))
      end;
      s.steps)
