test/test_monitor.mli:
