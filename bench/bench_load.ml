(* E20: the recorded multicore performance baseline.

   Runs the full closed-loop grid behind BENCH_E20.json — every
   full-coverage mechanism x {bounded buffer, readers-writers, FCFS} x
   domain counts {1, 2, 4} — on real OCaml 5 domains, printing the
   throughput/tail table as it goes and writing the machine-readable
   document at the end. The committed BENCH_E20.json is this program's
   output on the reference box; future performance work is judged
   against it.

   Knobs: SYNC_LOAD_MS shortens each cell's steady window (CI uses it);
   the single optional argument (or --out FILE) overrides the output
   path (default bench-load.json, BENCH_E20.json when regenerating the
   committed baseline). *)

let () =
  let out = ref "bench-load.json" in
  let rec parse = function
    | [] -> ()
    | "--out" :: f :: rest -> out := f; parse rest
    | [ f ] when not (String.length f > 0 && f.[0] = '-') -> out := f
    | a :: _ ->
      Printf.eprintf "usage: bench_load [--out FILE | FILE]\n  got %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let spec = Sync_workload.Sweep.default_baseline_spec () in
  Printf.printf
    "E20 baseline: %d mechanisms x %d problems x domains {%s}, %dms \
     steady (+%dms warmup) per cell, closed loop, seed %d\n\
     recommended domains on this box: %d\n\n%!"
    (List.length spec.Sync_workload.Sweep.mechanisms)
    (List.length spec.Sync_workload.Sweep.problems)
    (String.concat ", "
       (List.map string_of_int spec.Sync_workload.Sweep.domain_counts))
    spec.Sync_workload.Sweep.duration_ms spec.Sync_workload.Sweep.warmup_ms
    spec.Sync_workload.Sweep.seed
    (Domain.recommended_domain_count ());
  let rows = ref [] in
  let progress (c : Sync_workload.Sweep.cell) =
    let r = Sync_eval.Perf.row_of_cell c in
    rows := r :: !rows;
    Printf.printf "%-12s %-18s d=%d %12.0f ops/s  p99 %d ns\n%!"
      r.Sync_eval.Perf.mechanism r.Sync_eval.Perf.problem
      r.Sync_eval.Perf.domains r.Sync_eval.Perf.throughput_per_s
      r.Sync_eval.Perf.p99_ns
  in
  match Sync_workload.Sweep.baseline ~progress spec with
  | Error e ->
    Printf.eprintf "baseline failed: %s\n" e;
    exit 1
  | Ok cells ->
    print_newline ();
    Sync_eval.Perf.pp Format.std_formatter (Sync_eval.Perf.of_cells cells);
    Sync_metrics.Emit.write_file !out
      (Sync_workload.Sweep.baseline_to_json spec cells);
    Printf.printf "\nwrote %s (%d cells)\n%!" !out (List.length cells)
