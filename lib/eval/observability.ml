(* E21: the tracing/contention observability axis. One short traced
   closed-loop load per mechanism on the tightest bounded buffer
   (capacity 1, three thread workers) — enough contention that every
   instrumented layer fires — then a structural audit of the recorded
   events: did the mechanism produce operation spans, wait spans, wakes?
   The axis scores the *observability* of each mechanism, not its speed:
   a mechanism whose probes go silent has lost its story. *)

open Sync_metrics
open Sync_workload
module Probe = Sync_trace.Probe
module Profile = Sync_trace.Profile

type row = {
  mechanism : string;
  problem : string;
  events : int;  (* retained events in the snapshot *)
  op_spans : int;
  wait_spans : int;
  wakes : int;  (* signal + handoff instants *)
  spurious : int;
  dropped : int;  (* lost to ring wraparound *)
  failures : int;  (* self-check failures during the traced load *)
  ok : bool;
}

type traced = {
  row : row;
  events : Probe.event list;
  profile : Profile.t;
}

let count f events =
  List.fold_left (fun n (e : Probe.event) -> if f e then n + 1 else n) 0 events

let audit ~mechanism ~problem ~failures events ~dropped =
  let op_spans = count (fun e -> e.Probe.kind = Probe.Op) events in
  let wait_spans = count (fun e -> e.Probe.kind = Probe.Wait) events in
  let wakes =
    count
      (fun e -> e.Probe.kind = Probe.Signal || e.Probe.kind = Probe.Handoff)
      events
  in
  let spurious = count (fun e -> e.Probe.kind = Probe.Spurious) events in
  { mechanism;
    problem;
    events = List.length events;
    op_spans;
    wait_spans;
    wakes;
    spurious;
    dropped;
    failures;
    (* A capacity-1 buffer under three workers must park somebody and
       wake somebody; zero waits or wakes means the mechanism's probes
       are not firing. *)
    ok = failures = 0 && op_spans > 0 && wait_spans > 0 && wakes > 0 }

let trace_one ?(duration_ms = 25) ~problem ~mechanism () =
  let params = { Target.default_params with Target.capacity = 1 } in
  match Target.create ~params ~problem ~mechanism () with
  | Error e -> Error e
  | Ok instance ->
    let cfg =
      { Loadgen.default_config with
        Loadgen.workers = 3;
        backend = `Thread;
        duration_ms;
        warmup_ms = 5 }
    in
    let report, events = Probe.with_tracing (fun () -> Loadgen.run instance cfg) in
    let dropped = Probe.dropped () in
    let failures = report.Report.summary.Summary.total_failures in
    Ok
      { row = audit ~mechanism ~problem ~failures events ~dropped;
        events;
        profile = Profile.of_events ~dropped events }

let run_traced ?duration_ms ?(problem = "bounded-buffer") ?mechanisms () =
  let mechanisms =
    match mechanisms with
    | Some ms -> ms
    | None -> Target.mechanisms ~problem
  in
  List.map
    (fun mechanism ->
      match trace_one ?duration_ms ~problem ~mechanism () with
      | Ok t -> t
      | Error _ ->
        (* No target: an empty, failed row rather than a crash, so the
           scorecard still prints the rest. *)
        { row =
            { mechanism;
              problem;
              events = 0;
              op_spans = 0;
              wait_spans = 0;
              wakes = 0;
              spurious = 0;
              dropped = 0;
              failures = 0;
              ok = false };
          events = [];
          profile = Profile.of_events ~dropped:0 [] })
    mechanisms

let run ?duration_ms ?problem ?mechanisms () =
  List.map (fun t -> t.row) (run_traced ?duration_ms ?problem ?mechanisms ())

let all_ok rows = List.for_all (fun r -> r.ok) rows

let pp ppf rows =
  Format.fprintf ppf "%-12s %-16s %8s %8s %8s %8s %9s %8s %5s@." "mechanism"
    "problem" "events" "ops" "waits" "wakes" "spurious" "dropped" "ok";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %-16s %8d %8d %8d %8d %9d %8d %5s@."
        r.mechanism r.problem r.events r.op_spans r.wait_spans r.wakes
        r.spurious r.dropped
        (if r.ok then "yes" else "NO"))
    rows

let to_json rows =
  Emit.List
    (List.map
       (fun r ->
         Emit.Obj
           [ ("mechanism", Emit.Str r.mechanism);
             ("problem", Emit.Str r.problem);
             ("events", Emit.Int r.events);
             ("op_spans", Emit.Int r.op_spans);
             ("wait_spans", Emit.Int r.wait_spans);
             ("wakes", Emit.Int r.wakes);
             ("spurious", Emit.Int r.spurious);
             ("dropped", Emit.Int r.dropped);
             ("failures", Emit.Int r.failures);
             ("ok", Emit.Bool r.ok) ])
       rows)
