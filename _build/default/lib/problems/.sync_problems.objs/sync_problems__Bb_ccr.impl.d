lib/problems/bb_ccr.ml: Info Meta Sync_ccr Sync_taxonomy
