(* The strong (FCFS) counting semaphore for any class with fetch-and-add
   — natively (FAA), via a CAS retry loop ({!Regs.Faa_of_cas}), or via
   the LL/SC emulation ({!Llsc.Make.Faa_regs}). Two registers:

     [takers]  next turn number; P's [faa] assigns arrival order
     [budget]  initial value + V count (+ timeout donations)

   Turn [k] may pass exactly when [budget > k], so grants happen in
   strict arrival order: FCFS is structural, not scheduled. A timed P
   that gives up cannot un-take its turn (FAA cannot withdraw), so it
   donates one unit — when the budget later reaches its dead turn, the
   donation covers the grant nobody collects; conservation is exact.

   This is the construction atomic read/write registers cannot express
   (no RMW ⇒ no arrival-order assignment without unbounded helper
   state): the RW class rejects [`Strong] with a typed reason. *)

module Make (R : Regs.FAA) = struct
  type t = { takers : R.t; budget : R.t }

  let create n =
    if n < 0 then invalid_arg "Ticket_sem.create: negative value";
    { takers = R.make 0; budget = R.make n }

  let p t =
    let my = R.faa t.takers 1 in
    R.await ~watch:[| t.budget |] (fun () -> R.get t.budget > my)

  let try_p t =
    if R.get t.budget - R.get t.takers <= 0 then false
    else begin
      let my = R.faa t.takers 1 in
      if R.get t.budget > my then true
      else begin
        (* Raced past the budget: donate to cover our dead turn. *)
        ignore (R.faa t.budget 1);
        false
      end
    end

  let p_poll t expired =
    let my = R.faa t.takers 1 in
    R.await
      ~watch:[| t.budget |]
      (fun () -> R.get t.budget > my || expired ());
    if R.get t.budget > my then true
    else begin
      ignore (R.faa t.budget 1);
      false
    end

  let v_n t n = ignore (R.faa t.budget n)

  let value t = R.get t.budget - R.get t.takers
end
