lib/taxonomy/info.ml: Format Int
