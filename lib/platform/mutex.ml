type impl = Sys of Stdlib.Mutex.t | Det of Detrt.mutex

type t = {
  impl : impl;
  (* Watchdog resource id for the Sys half; -1 when the watchdog was off
     at creation. Det mutexes carry their own id inside Detrt. *)
  rid : int;
}

let create () =
  if Detrt.active () then { impl = Det (Detrt.mutex ()); rid = -1 }
  else
    { impl = Sys (Stdlib.Mutex.create ());
      rid =
        (if Deadlock.enabled () then Deadlock.register ~kind:"mutex" ()
         else -1) }

let lock t =
  match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      Stdlib.Mutex.lock m;
      Deadlock.acquired t.rid
    end
    else Stdlib.Mutex.lock m
  | Det m -> Detrt.mutex_lock m

let unlock t =
  match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    Stdlib.Mutex.unlock m
  | Det m -> Detrt.mutex_unlock m

let try_lock t =
  match t.impl with
  | Sys m ->
    let ok = Stdlib.Mutex.try_lock m in
    if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
    ok
  | Det m -> Detrt.mutex_try_lock m

let try_lock_for t ~timeout_ns =
  let deadline = Deadline.after_ns timeout_ns in
  let rec loop () =
    if try_lock t then true
    else if Deadline.expired deadline then false
    else begin
      Detrt.relax ();
      loop ()
    end
  in
  loop ()

let protect m f =
  lock m;
  match f () with
  | v ->
    unlock m;
    v
  | exception e ->
    unlock m;
    raise e
