(** FCFS with a Hoare monitor: the FIFO condition queue carries the
    request-time information; Hoare signalling (no barging) keeps the
    grant order exact. *)

open Sync_monitor
open Sync_taxonomy

type t = {
  mon : Monitor.t;
  turn : Monitor.Cond.t;
  mutable busy : bool;
  res_use : pid:int -> unit;
}

let mechanism = "monitor"

let create ~use =
  let mon = Monitor.create ~discipline:`Hoare () in
  { mon; turn = Monitor.Cond.create mon; busy = false; res_use = use }

let use t ~pid =
  Protected.access t.mon
    ~before:(fun () ->
      (* Wait whenever the resource is busy OR somebody queued earlier is
         still waiting — otherwise a newcomer finding the resource just
         freed could overtake the queue. Under Hoare signalling the
         signalled head proceeds without re-queuing. *)
      if t.busy || Monitor.Cond.queue t.turn then Monitor.Cond.wait t.turn;
      t.busy <- true)
    ~after:(fun () ->
      t.busy <- false;
      Monitor.Cond.signal t.turn)
    (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "busy"; "flag"; "wait(turn)"; "signal(turn)" ]);
        ("fcfs-order", [ "condition"; "queue"; "FIFO"; "queue(turn)" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Direct) ]
    ~aux_state:[ "busy flag" ]
    ~separation:Meta.Separated ()
