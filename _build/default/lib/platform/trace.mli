(** Thread-safe execution trace recorder.

    Every canonical-problem solution is run under a workload that records
    one event per lifecycle phase of each resource access:

    - [Request]: the process has asked for the operation (before blocking);
    - [Enter]: the operation body has started (mutual-exclusion region or
      crowd entered);
    - [Exit]: the operation body has finished;
    - [Mark]: free-form annotation (e.g. a produced item's value).

    The trace checkers (exclusion, priority, FIFO, SCAN order, ...) consume
    the recorded event list; the global sequence number gives a single
    total order consistent with the real-time order of recording. *)

type phase = Request | Enter | Exit | Mark

type event = {
  seq : int;        (** global total order, dense from 0 *)
  time_ns : int64;  (** monotonic wall clock at recording *)
  pid : int;        (** process id assigned by the workload *)
  op : string;      (** operation name, e.g. "read" *)
  phase : phase;
  arg : int;        (** operation argument (track number, item, ...); 0 when unused *)
}

type t

val create : unit -> t

val record : t -> pid:int -> op:string -> phase:phase -> ?arg:int -> unit -> unit

val events : t -> event list
(** Snapshot in sequence order. *)

val length : t -> int

val clear : t -> unit

val pp_phase : Format.formatter -> phase -> unit

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** Dump the whole trace, one event per line. *)
