(** Calibrated busy work.

    Resource operations spin for a configurable number of iterations to
    widen their execution window, so that synchronizer bugs (overlapping
    accesses that should exclude each other) actually manifest as
    {!Ill_synchronized} failures under stress rather than hiding behind
    instantaneous bodies. *)

exception Ill_synchronized of string
(** Raised by a resource when it observes an access pattern its contract
    forbids — the unsynchronized resource's own integrity checks firing
    because a synchronizer admitted conflicting processes. *)

val spin : int -> unit
(** Spin for roughly [n] cheap iterations, with periodic yields so that a
    single-core scheduler interleaves competitors. *)
