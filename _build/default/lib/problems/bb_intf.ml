(** The bounded-buffer problem (local-state information).

    N producers [put] items into a [capacity]-slot FIFO buffer; M
    consumers [get] them. Constraints, per the paper's taxonomy:

    - exclusion: no [put] when the buffer is full (local state);
    - exclusion: no [get] when the buffer is empty (local state);
    - exclusion: buffer operations of the same kind must not overlap
      (synchronization state).

    Solutions receive the {e instrumented, unsynchronized} resource
    operations at creation: [put pid v] / [get pid] perform the actual
    (self-checking) buffer access and record the trace [Enter]/[Exit]
    events. The solution's job is purely the synchronizer half of the
    Section-2 structure. *)

open Sync_taxonomy

let spec =
  Spec.make ~name:"bounded-buffer"
    ~description:
      "producers and consumers share a capacity-bounded FIFO buffer"
    ~ops:[ "put"; "get" ]
    ~constraints:
      [ Constr.make ~id:"bb-no-overfill" ~cls:Constr.Exclusion
          ~info:[ Info.Local_state ]
          ~description:"if buffer full then exclude put";
        Constr.make ~id:"bb-no-underflow" ~cls:Constr.Exclusion
          ~info:[ Info.Local_state ]
          ~description:"if buffer empty then exclude get";
        Constr.make ~id:"bb-access-exclusion" ~cls:Constr.Exclusion
          ~info:[ Info.Sync_state ]
          ~description:
            "if a put (resp. get) is in progress then exclude other puts \
             (resp. gets)" ]

module type S = sig
  type t

  val mechanism : string

  val create :
    capacity:int -> put:(pid:int -> int -> unit) -> get:(pid:int -> int) -> t

  val put : t -> pid:int -> int -> unit

  val get : t -> pid:int -> int

  val stop : t -> unit
  (** Release internal resources (the CSP solution's server process); a
      no-op for the passive mechanisms. *)

  val meta : Meta.t
end
