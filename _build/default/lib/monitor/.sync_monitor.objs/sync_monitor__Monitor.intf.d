lib/monitor/monitor.mli:
