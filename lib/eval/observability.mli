(** E21: the tracing / contention observability axis.

    Runs one short traced closed-loop load per mechanism — three thread
    workers on a capacity-1 bounded buffer, contended enough that every
    instrumented layer fires — and audits the recorded event stream: a
    mechanism is observable when the run produced operation spans, wait
    spans and wake instants with no self-check failures. The axis scores
    what the trace layer can {e see}, complementing E20 (which scores
    what the mechanism can {e do}). *)

type row = {
  mechanism : string;
  problem : string;
  events : int;  (** retained events in the snapshot *)
  op_spans : int;
  wait_spans : int;
  wakes : int;  (** signal + handoff instants *)
  spurious : int;
  dropped : int;  (** events lost to ring wraparound *)
  failures : int;  (** self-check failures during the traced load *)
  ok : bool;
}

type traced = {
  row : row;
  events : Sync_trace.Probe.event list;
  profile : Sync_trace.Profile.t;
}

val trace_one :
  ?duration_ms:int ->
  problem:string ->
  mechanism:string ->
  unit ->
  (traced, string) result
(** One traced load (default 25 ms steady state). The error names an
    unknown problem/mechanism pair. *)

val run_traced :
  ?duration_ms:int ->
  ?problem:string ->
  ?mechanisms:string list ->
  unit ->
  traced list
(** {!trace_one} for every mechanism with a target for [problem]
    (default ["bounded-buffer"]); a mechanism without a target yields an
    empty, failed row instead of an error. *)

val run :
  ?duration_ms:int ->
  ?problem:string ->
  ?mechanisms:string list ->
  unit ->
  row list
(** {!run_traced}, rows only — the scorecard entry point. *)

val all_ok : row list -> bool

val pp : Format.formatter -> row list -> unit

val to_json : row list -> Sync_metrics.Emit.t
