lib/problems/spec.ml: Constr Format Info List Sync_taxonomy
