(** Deadlock watchdog: a wait-for graph over synchronization resources.

    When enabled, the platform primitives (mutexes, semaphores, wait
    queues — and the {!Detrt} virtual mutexes) report who {e holds} and
    who {e waits for} each registered resource. {!find_cycle} then
    detects circular waits and reports them with the blocked processes'
    names, so a wedged run can say {e who} is deadlocked on {e what}
    instead of just hanging.

    The watchdog is entirely passive and disabled by default: every
    instrumentation point is a single atomic read when off. Identity of
    the reporting process is the current {!Detrt} task when inside a
    deterministic run (tasks carry names), otherwise the system thread id
    (name it with {!name_self}). All bookkeeping uses raw stdlib mutexes,
    never the instrumented facades, so the watchdog cannot deadlock
    itself. *)

type rid = int
(** A registered resource (mutex, semaphore, wait queue, ...). Exposed as
    [int] so instrumented structures can store [-1] for "untracked";
    treat it as abstract otherwise. *)

val register : ?kind:string -> ?name:string -> unit -> rid
(** Register a resource; [kind]/[name] only affect cycle reports
    (defaults ["resource"] / ["kind#<id>"]). Cheap; safe when disabled. *)

val enable : unit -> unit
(** Start collecting edges (also clears any stale state). *)

val disable : unit -> unit
(** Stop collecting and drop all edges. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded edges and names, keep the enabled state. Call
    between independent runs that reuse the process. *)

val name_self : string -> unit
(** Name the calling process for cycle reports (threads only; {!Detrt}
    tasks are named at [spawn]). *)

val set_task_provider : (unit -> (int * string) option) -> unit
(** Internal: {!Detrt} registers how to identify the current virtual task
    ([Some (tid, name)] inside a deterministic run). Not for users. *)

(** {1 Instrumentation points} (called by the platform; no-ops when
    disabled) *)

val blocked : rid -> unit
(** The calling process is about to block waiting for [rid]. *)

val unblocked : unit -> unit
(** The calling process is no longer waiting (granted or gave up). *)

val acquired : rid -> unit
(** The calling process now holds [rid] (implies {!unblocked}). *)

val released : rid -> unit
(** The calling process no longer holds [rid]. *)

(** {1 Detection} *)

type cycle = {
  procs : string list;  (** blocked process names, in cycle order *)
  resources : string list;  (** the resources each waits for, same order *)
}

val find_cycle : unit -> cycle option
(** Scan the wait-for graph for a circular wait: process [p0] waits for a
    resource held by [p1], who waits for a resource held by ... [p0].
    Returns [None] when disabled or acyclic. *)

val cycle_to_string : cycle -> string
(** ["a -> mutex#1 -> b -> mutex#0 -> a"]. *)

val watch :
  ?period_s:float -> on_cycle:(cycle -> unit) -> unit -> unit -> unit
(** [watch ~on_cycle ()] starts a daemon thread that polls {!find_cycle}
    every [period_s] (default 0.25s) and reports each newly observed
    cycle once; returns a cancel function. Real-thread workloads only —
    under {!Detrt} the runtime itself reports cycles when stuck. *)
