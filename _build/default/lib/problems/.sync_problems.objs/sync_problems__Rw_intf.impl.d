lib/problems/rw_intf.ml: Constr Info Meta Spec Sync_taxonomy
