(** The exploration axis (E26): bounded exhaustive DFS vs dynamic
    partial-order reduction over the deterministic scenario catalog, at a
    shared schedule budget per row.

    Rows where DFS completes are differential soundness checks — the two
    engines must report the same distinct failure modes, with DPOR
    exploring no more schedules. Rows where only DPOR completes are the
    axis headline: every Mazurkiewicz equivalence class of a schedule
    tree naive DFS cannot finish, with the anomaly set machine-checked
    (footnote-3 writer handoff, E19 cancellation storms). *)

type engine = {
  explored : int;
  complete : bool;
  modes : string list;  (** distinct failure messages, sorted *)
  secs : float;
}

type row = {
  scenario : string;
  budget : int;  (** [max_schedules] shared by both engines *)
  dfs : engine;
  dpor : engine;
  races : int;  (** backtrack points the DPOR analysis planted *)
  workers : int;  (** domains the DPOR run used *)
}

val run :
  ?deep:bool -> ?workers:int -> ?progress:(row -> unit) -> unit -> row list
(** The default matrix is CI-sized (deadlock, small bounded buffer, E19
    storm, footnote-3); [deep] adds frontier shapes for the non-blocking
    deep job. [workers] applies to every row except the storm rows,
    which are pinned to one domain (process-global fault registry). *)

val sound : row list -> bool
(** Every row where DFS completed: DPOR also completed, agreed on the
    failure modes, and explored no more schedules. *)

val pp : Format.formatter -> row list -> unit

val to_json : row list -> Sync_metrics.Emit.t
