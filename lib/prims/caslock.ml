(* CAS-only primitives: a test-and-CAS lock and a CAS-loop counting
   semaphore. The lock state is one register (0 free / 1 held); the
   semaphore value is one register kept non-negative — P consumes a unit
   with a CAS that only runs while a unit is visible, V publishes with a
   CAS-increment retry loop (no fetch-and-add in this class). Both wait
   by [R.await] on the state register, so waits park under the
   deterministic runtime instead of spinning forever. Weak (barging)
   semantics throughout: CAS picks race winners, not queue order. *)

module Make (R : Regs.CAS) = struct
  module Lock = struct
    type t = R.t

    let create () = R.make 0

    let try_lock s = R.get s = 0 && R.cas s 0 1

    let rec lock s =
      if not (try_lock s) then begin
        R.await ~watch:[| s |] (fun () -> R.get s = 0);
        lock s
      end

    let unlock s = R.set s 0
  end

  module Sem = struct
    type t = R.t

    let create n =
      if n < 0 then invalid_arg "Caslock.Sem.create: negative value";
      R.make n

    let rec try_p s =
      let v = R.get s in
      v > 0 && (R.cas s v (v - 1) || try_p s)

    let rec p s =
      if not (try_p s) then begin
        R.await ~watch:[| s |] (fun () -> R.get s > 0);
        p s
      end

    (* Timed P: the wait predicate folds in the caller's deadline so the
       await wakes on either a unit or expiry; a final attempt decides. *)
    let rec p_poll s expired =
      if try_p s then true
      else if expired () then false
      else begin
        R.await ~watch:[| s |] (fun () -> R.get s > 0 || expired ());
        p_poll s expired
      end

    let rec v_n s n =
      let v = R.get s in
      if not (R.cas s v (v + n)) then v_n s n

    let value s = R.get s
  end
end
