module Eventcount = struct
  type t = {
    lock : Mutex.t;
    moved : Condition.t;
    mutable count : int;
    mutable blocked : int;
  }

  let create ?(initial = 0) () =
    { lock = Mutex.create (); moved = Condition.create (); count = initial;
      blocked = 0 }

  let read t =
    Mutex.lock t.lock;
    let n = t.count in
    Mutex.unlock t.lock;
    n

  let advance t =
    Mutex.lock t.lock;
    t.count <- t.count + 1;
    Condition.broadcast t.moved;
    Mutex.unlock t.lock

  let advance_to t n =
    Mutex.lock t.lock;
    if n > t.count then begin
      t.count <- n;
      Condition.broadcast t.moved
    end;
    Mutex.unlock t.lock

  let await t n =
    Mutex.lock t.lock;
    t.blocked <- t.blocked + 1;
    while t.count < n do
      Condition.wait t.moved t.lock
    done;
    t.blocked <- t.blocked - 1;
    Mutex.unlock t.lock

  let waiters t =
    Mutex.lock t.lock;
    let n = t.blocked in
    Mutex.unlock t.lock;
    n
end

module Sequencer = struct
  type t = { lock : Mutex.t; mutable next : int }

  let create () = { lock = Mutex.create (); next = 0 }

  let ticket t =
    Mutex.lock t.lock;
    let n = t.next in
    t.next <- n + 1;
    Mutex.unlock t.lock;
    n
end
