lib/problems/alarm_evc.ml: Eventcount Info Meta Sync_platform Sync_taxonomy
