lib/pathexpr/pathexpr.ml: Ast Compile Engine List Parser
