open Sync_csp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let test_rendezvous () =
  let net = Csp.network () in
  let ch = Csp.Channel.create ~name:"ch" net in
  let got = Atomic.make 0 in
  let receiver = Testutil.spawn (fun () -> Atomic.set got (Csp.recv ch)) in
  Csp.send ch 41;
  Sync_platform.Process.join receiver;
  check_int "value passed" 41 (Atomic.get got)

let test_send_blocks_until_recv () =
  let net = Csp.network () in
  let ch = Csp.Channel.create net in
  let sent = Atomic.make false in
  let sender =
    Testutil.spawn (fun () ->
        Csp.send ch 1;
        Atomic.set sent true)
  in
  Testutil.never "send completed alone" (fun () -> Atomic.get sent);
  check_int "one waiting sender" 1 (Csp.Channel.waiting_senders ch);
  ignore (Csp.recv ch);
  Sync_platform.Process.join sender;
  check_bool "send completed" true (Atomic.get sent)

let test_fifo_senders () =
  let net = Csp.network () in
  let ch = Csp.Channel.create net in
  let ts =
    List.init 3 (fun i ->
        let t = Testutil.spawn (fun () -> Csp.send ch i) in
        Testutil.eventually "sender parked" (fun () ->
            Csp.Channel.waiting_senders ch = i + 1);
        t)
  in
  let received = List.init 3 (fun _ -> Csp.recv ch) in
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2 ] received

let test_try_operations () =
  let net = Csp.network () in
  let ch = Csp.Channel.create net in
  check_bool "try_send with no receiver" false (Csp.try_send ch 1);
  check_bool "try_recv with no sender" true (Csp.try_recv ch = None);
  let sender = Testutil.spawn (fun () -> Csp.send ch 9) in
  Testutil.eventually "sender parked" (fun () ->
      Csp.Channel.waiting_senders ch = 1);
  Alcotest.(check (option int)) "try_recv" (Some 9) (Csp.try_recv ch);
  Sync_platform.Process.join sender

let test_select_ready_case () =
  let net = Csp.network () in
  let a = Csp.Channel.create ~name:"a" net in
  let b = Csp.Channel.create ~name:"b" net in
  let sender = Testutil.spawn (fun () -> Csp.send b 7) in
  Testutil.eventually "sender parked" (fun () ->
      Csp.Channel.waiting_senders b = 1);
  let r =
    Csp.select
      [ Csp.recv_case a (fun v -> `A v); Csp.recv_case b (fun v -> `B v) ]
  in
  Sync_platform.Process.join sender;
  check_bool "picked b" true (r = `B 7)

let test_select_blocks_then_commits_once () =
  let net = Csp.network () in
  let a = Csp.Channel.create net in
  let b = Csp.Channel.create net in
  let result = Atomic.make 0 in
  let chooser =
    Testutil.spawn (fun () ->
        let v =
          Csp.select [ Csp.recv_case a (fun v -> v); Csp.recv_case b (fun v -> v) ]
        in
        Atomic.set result v)
  in
  Testutil.never "select returned early" (fun () -> Atomic.get result <> 0);
  Csp.send a 5;
  Sync_platform.Process.join chooser;
  check_int "committed to a" 5 (Atomic.get result);
  (* The offer on b must be stale: a sender on b still blocks. *)
  check_int "no live receiver on b" 0 (Csp.Channel.waiting_receivers b)

let test_select_send_case () =
  let net = Csp.network () in
  let a = Csp.Channel.create net in
  let receiver = Testutil.spawn (fun () -> ignore (Csp.recv a)) in
  Testutil.eventually "receiver parked" (fun () ->
      Csp.Channel.waiting_receivers a = 1);
  let r = Csp.select [ Csp.send_case a 3 (fun () -> "sent") ] in
  Sync_platform.Process.join receiver;
  Alcotest.(check string) "send case ran" "sent" r

let test_guard_disables () =
  let net = Csp.network () in
  let a = Csp.Channel.create net in
  let b = Csp.Channel.create net in
  let sa = Testutil.spawn (fun () -> Csp.send a 1) in
  let sb = Testutil.spawn (fun () -> Csp.send b 2) in
  Testutil.eventually "both parked" (fun () ->
      Csp.Channel.waiting_senders a = 1 && Csp.Channel.waiting_senders b = 1);
  let r =
    Csp.select
      [ Csp.guard false (Csp.recv_case a (fun v -> v));
        Csp.recv_case b (fun v -> v) ]
  in
  check_int "only enabled case" 2 r;
  ignore (Csp.recv a);
  Sync_platform.Process.join sa;
  Sync_platform.Process.join sb

let test_all_guards_false () =
  let net = Csp.network () in
  let a : int Csp.Channel.t = Csp.Channel.create net in
  match Csp.select [ Csp.guard false (Csp.recv_case a (fun v -> v)) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_producer_consumer_pipeline () =
  let net = Csp.network () in
  let ch = Csp.Channel.create net in
  let out = Sync_platform.Tsqueue.create () in
  let producer () = for i = 1 to 50 do Csp.send ch i done in
  let consumer () =
    for _ = 1 to 50 do
      Sync_platform.Tsqueue.push out (Csp.recv ch)
    done
  in
  Testutil.run_all [ producer; consumer ];
  Alcotest.(check (list int))
    "in order"
    (List.init 50 (fun i -> i + 1))
    (Sync_platform.Tsqueue.drain out)

let test_select_stress_no_duplication () =
  (* Every sent value is received exactly once across two competing
     selecting receivers. *)
  let net = Csp.network () in
  let a = Csp.Channel.create net in
  let b = Csp.Channel.create net in
  let seen = Sync_platform.Tsqueue.create () in
  let n = 40 in
  let receiver () =
    for _ = 1 to n / 2 do
      let v =
        Csp.select [ Csp.recv_case a (fun v -> v); Csp.recv_case b (fun v -> v) ]
      in
      Sync_platform.Tsqueue.push seen v
    done
  in
  let sender_a () = for i = 0 to (n / 2) - 1 do Csp.send a i done in
  let sender_b () = for i = n / 2 to n - 1 do Csp.send b i done in
  Testutil.run_all [ receiver; receiver; sender_a; sender_b ];
  let got = List.sort compare (Sync_platform.Tsqueue.drain seen) in
  Alcotest.(check (list int)) "each value once" (List.init n Fun.id) got

let () =
  Alcotest.run "csp"
    [ ( "channels",
        [ Alcotest.test_case "rendezvous" `Quick test_rendezvous;
          Alcotest.test_case "send blocks" `Quick test_send_blocks_until_recv;
          Alcotest.test_case "fifo senders" `Quick test_fifo_senders;
          Alcotest.test_case "try operations" `Quick test_try_operations;
          Alcotest.test_case "pipeline" `Quick test_producer_consumer_pipeline
        ] );
      ( "select",
        [ Alcotest.test_case "ready case" `Quick test_select_ready_case;
          Alcotest.test_case "blocks then commits once" `Quick
            test_select_blocks_then_commits_once;
          Alcotest.test_case "send case" `Quick test_select_send_case;
          Alcotest.test_case "guard disables" `Quick test_guard_disables;
          Alcotest.test_case "all guards false" `Quick test_all_guards_false;
          Alcotest.test_case "stress no duplication" `Quick
            test_select_stress_no_duplication ] ) ]
