lib/resources/slot.mli:
