(** Fast bounded FIFO buffer: a Vyukov-style MPMC ring with per-slot
    sequence numbers (E22's opt-in fast variant of {!Ring}).

    Same interface and same self-checking philosophy as {!Ring}, but
    built for parallel access: producers and consumers claim positions
    with a CAS and then publish through their own slot's sequence
    number, so a concurrent put and get touch disjoint atomics and any
    number of puts (or gets) may overlap — useful when the fast-path
    tier thins the synchronizer enough that resource-side serialization
    would become the bottleneck.

    Integrity checks (raising {!Busywork.Ill_synchronized}) fall out of
    the slot protocol plus the position counters: a put that finds the
    buffer full by positions was over-admitted, as was a get that finds
    it empty — whereas a slot that is merely awaiting an in-flight
    peer's publish/recycle step is waited on, not reported (claiming a
    position and publishing through the slot are separate steps, so
    benign inversions occur under parallel access). The hot atomics are
    best-effort cache-line padded (OCaml 5.1 cannot pin layout). *)

type t

val create : ?work:int -> int -> t
(** [create n] has capacity [n >= 1]. [work] is busy-work per operation
    (default 50), matching {!Ring.create}. *)

val capacity : t -> int

val put : t -> int -> unit

val get : t -> int

val occupancy : t -> int
(** Number of items currently stored (racy snapshot). *)
