(** The Campbell-Habermann translation of path declarations to
    prologue/epilogue pairs over an {!Engine}.

    Each [path L end] declaration becomes a cyclic token system: a
    semaphore [S] initialized to 1 guards the whole body ([P(S)] as
    outermost prologue, [V(S)] as outermost epilogue, so finishing a
    traversal re-enables the next one);

    - [e1 ; ... ; en] threads fresh 0-initialized semaphores between the
      elements;
    - [e1 , ... , en] gives every alternative the same prologue/epilogue
      (with strong semaphores this realizes longest-waiting selection);
    - [{e}] uses the first-in/last-out counter idiom: only the first
      concurrent entrant runs the outer prologue and only the last one
      leaving runs the outer epilogue;
    - [n : (e)] (whole-body only) initializes [S] to [n];
    - [\[p\] e] prefixes the prologue with a predicate gate (engines
      without predicate support reject it).

    An operation appearing in several declarations accumulates one
    prologue/epilogue pair per declaration, executed in declaration order
    — which is exactly why a process can be "blocked at the second path"
    while holding the first, the behaviour Figure 1 exploits (and that
    footnote 3 shows to be a bug magnet). *)

exception Unsupported of string
(** Construct not supported by the chosen engine, an operation repeated
    within a single declaration, a numeric bound not at the body root, or
    an unbound predicate name. *)

type wrapped = {
  prologue : unit -> unit;
  epilogue : unit -> unit;
  undo : unit -> unit;
      (** Returns exactly the tokens {!prologue} consumed, restoring the
          declaration's state to before the operation started. Distinct
          from {!epilogue}, which {e advances} the path (in a sequence it
          V's the next link, not the one the prologue P'd). Used for abort
          roll-back. *)
}

type table = (string * wrapped list) list
(** For each operation, its wrappers in declaration order. *)

val compile :
  engine:Engine.t -> env:(string * (unit -> bool)) list -> Ast.spec -> table
