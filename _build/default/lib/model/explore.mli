(** Exhaustive interleaving exploration.

    A scenario is a set of processes, each a fixed sequence of atomic
    {!Sysstate.action}s. The explorer walks the full state graph —
    memoizing on (shared state, program counters), so the cost is the
    number of distinct {e states}, not the (exponential) number of
    schedules — and reports:

    - [states]: distinct states visited;
    - [terminals]: states where every process has finished;
    - [deadlocks]: non-terminal states where no action is enabled,
      each with one witness schedule;
    - [violations]: failures of the per-state [invariant] or the
      per-terminal [property], each with a witness schedule.

    Because the walk is exhaustive, an empty [violations]/[deadlocks]
    result is a proof over {b all} schedules of the scenario — the
    complement of what thread-based stress tests can establish. *)

type proc = { name : string; actions : Sysstate.action list }

type witness = string list
(** A schedule: action labels in execution order. *)

type stats = {
  states : int;
  terminals : int;
  deadlocks : (Sysstate.t * witness) list;
  violations : (string * witness) list;
}

val run :
  ?invariant:(Sysstate.t -> string option) ->
  ?property:(Sysstate.t -> string option) ->
  ?max_states:int ->
  init:Sysstate.t -> proc list -> stats
(** [invariant] is checked at every reachable state; [property] at every
    terminal state. [max_states] (default 1_000_000) aborts runaway
    scenarios with [Failure]. *)

val check :
  ?invariant:(Sysstate.t -> string option) ->
  ?property:(Sysstate.t -> string option) ->
  init:Sysstate.t -> proc list -> (stats, string) result
(** Like {!run} but folds deadlocks and violations into [Error] with the
    first witness schedule rendered. *)
