lib/eval/conformance.mli: Format Registry
