lib/model/explore.mli: Sysstate
