(* The robustness axis (E19): how each mechanism behaves when the code it
   synchronizes fails. Two scenario families per mechanism x problem cell:

   - {e aborts} (real threads): deterministic fault plans inject
     exceptions into operation bodies, blocking entries and wakeup paths;
     the existing trace checkers must still pass on the surviving
     operations.
   - {e storms} (deterministic runtime): high-rate probabilistic
     cancellation at every blocking site, explored over seeded random
     schedules and — for the smallest instance — bounded-exhaustive DFS,
     so a racy recovery path cannot hide behind one lucky interleaving.

   Eventcounts are the documented exception: a sequencer ticket is a
   completion obligation (there is no way to return one), so aborts are
   structurally unrecoverable and the row reports that instead of a
   number (see bb_evc.ml and docs/robustness.md). *)

open Sync_platform
open Sync_problems

type row = {
  mechanism : string;
  problem : string;
  scenario : string; (* "aborts" | "storm" *)
  policy : string;
  runs : int;
  recovered : int;
  detail : string;
}

let policy_of = function
  | "semaphore" -> "rollback (solution compensates)"
  | "monitor" ->
    Fault.abort_policy_to_string Sync_monitor.Monitor.abort_policy
  | "serializer" ->
    Fault.abort_policy_to_string Sync_serializer.Serializer.abort_policy
  | "pathexpr" ->
    Fault.abort_policy_to_string Sync_pathexpr.Pathexpr.abort_policy
  | "ccr" -> Fault.abort_policy_to_string Sync_ccr.Ccr.abort_policy
  | "csp" -> Fault.abort_policy_to_string Sync_csp.Csp.abort_policy
  | "eventcount" -> "none (ticket = completion obligation)"
  | _ -> "platform"

(* Every mechanism-internal blocking site; enabling all of them at once is
   harmless (sites that never fire simply contribute no hits). *)
let blocking_sites trigger =
  [ ("waitq.pre-wait", trigger); ("semaphore.pre-wait", trigger);
    ("serializer.pre-wait", trigger); ("ccr.pre-wait", trigger);
    ("csp.pre-wait", trigger) ]

(* The abort matrix runs each plan once; triggers must eventually stop
   firing (consumers retry aborted gets), so no [Always] here. *)
let abort_plans ~body_sites =
  let body t = List.map (fun s -> (s, t)) body_sites in
  [ ("body-nth2", Fault.plan (body (Fault.Nth 2)));
    ("body-every5", Fault.plan (body (Fault.Every 5)));
    ("prewait-every4", Fault.plan (blocking_sites (Fault.Every 4)));
    ("postwake-nth2", Fault.plan [ ("waitq.post-wakeup", Fault.Nth 2) ]);
    ("mixed-prob", Fault.plan ~seed:42
       (body (Fault.Prob 0.05) @ blocking_sites (Fault.Prob 0.04))) ]

let row_of_plans ~mechanism ~problem plans run_plan =
  let failures =
    List.filter_map
      (fun (name, plan) ->
        match run_plan plan with
        | Ok () -> None
        | Error m -> Some (name ^ ": " ^ m)
        | exception Sync_resources.Busywork.Ill_synchronized m ->
          Some (name ^ ": resource contract violated: " ^ m)
        | exception e -> Some (name ^ ": escaped: " ^ Printexc.to_string e))
      plans
  in
  { mechanism; problem; scenario = "aborts";
    policy = policy_of mechanism;
    runs = List.length plans;
    recovered = List.length plans - List.length failures;
    detail =
      (match failures with
      | [] -> "all plans recovered"
      | f :: _ -> f) }

let bb_aborts (mechanism, (module B : Bb_intf.S)) =
  row_of_plans ~mechanism ~problem:"bounded-buffer"
    (abort_plans ~body_sites:[ "bb.put.body"; "bb.get.body" ])
    (fun plan ->
      let r =
        Fault.with_plan plan (fun () ->
            Bb_harness.run_abort (module B) ~capacity:3 ~producers:2
              ~consumers:2 ~items_per_producer:20 ())
      in
      Bb_harness.check_abort ~producers:2 r)

let rw_aborts (mechanism, (module S : Rw_intf.S)) =
  row_of_plans ~mechanism ~problem:"readers-writers"
    (abort_plans ~body_sites:[ "rw.read.body"; "rw.write.body" ])
    (fun plan ->
      let r =
        Fault.with_plan plan (fun () ->
            Rw_harness.run_abort (module S) ~readers:3 ~writers:2
              ~reads_each:15 ~writes_each:6 ())
      in
      Rw_harness.check_abort r)

let fcfs_aborts (mechanism, (module S : Fcfs_intf.S)) =
  row_of_plans ~mechanism ~problem:"fcfs"
    (abort_plans ~body_sites:[ "fcfs.use.body" ])
    (fun plan ->
      let r =
        Fault.with_plan plan (fun () ->
            Fcfs_harness.run_abort (module S) ~users:5 ())
      in
      Fcfs_harness.check_abort r)

let evc_row problem =
  { mechanism = "eventcount"; problem; scenario = "aborts";
    policy = policy_of "eventcount"; runs = 0; recovered = 0;
    detail = "excluded: aborts structurally unrecoverable" }

(* ------------------------------------------------------------------ *)
(* Storms: deterministic-runtime cancellation at every blocking site.  *)

let storm_plan ~seed =
  Fault.plan ~seed
    (blocking_sites (Fault.Prob 0.08) @ [ ("waitq.post-wakeup", Fault.Prob 0.05) ])

let bb_storm_scenario (module B : Bb_intf.S) ~plan_seed =
  Sync_detsched.Detsched.scenario ~name:("storm-bb-" ^ B.mechanism)
    ~descr:"cancellation storm over det schedules"
    (fun () ->
      let report = ref None in
      { Sync_detsched.Detsched.body =
          (fun () ->
            report :=
              Some
                (Fault.with_plan (storm_plan ~seed:plan_seed) (fun () ->
                     Bb_harness.run_abort (module B) ~backend:`Det ~capacity:2
                       ~producers:2 ~consumers:2 ~items_per_producer:4 ())));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Bb_harness.check_abort ~producers:2 r) })

let det_row ~mechanism ~problem ?(runs = 8) ?(max_steps = 200_000) scen =
  let failures = ref [] in
  for seed = 1 to runs do
    match Sync_detsched.Detsched.run_random ~max_steps ~seed scen with
    | v ->
      if not (Sync_detsched.Detsched.verdict_ok v) then
        failures :=
          (seed, Sync_detsched.Detsched.verdict_message v) :: !failures
    | exception e ->
      failures := (seed, "escaped: " ^ Printexc.to_string e) :: !failures
  done;
  { mechanism; problem; scenario = "storm";
    policy = policy_of mechanism;
    runs;
    recovered = runs - List.length !failures;
    detail =
      (match List.rev !failures with
      | [] -> Printf.sprintf "seeds 1-%d clean" runs
      | (seed, m) :: _ -> Printf.sprintf "seed %d: %s" seed m) }

(* The smallest storm instance, searched exhaustively (bounded): a racy
   recovery path in the most-used rollback machinery (semaphore redonate
   via waitq) cannot hide behind scheduling luck. *)
let dfs_storm_row () =
  let scen = Sync_detsched.Scenarios.storm_bb_sem () in
  let r = Sync_detsched.Detsched.explore_dfs ~max_steps:50_000 ~max_schedules:2_000 scen in
  { mechanism = "semaphore"; problem = "bounded-buffer"; scenario = "storm";
    policy = policy_of "semaphore";
    runs = r.Sync_detsched.Detsched.explored;
    recovered = r.Sync_detsched.Detsched.explored - List.length r.Sync_detsched.Detsched.failures;
    detail =
      (match r.Sync_detsched.Detsched.failures with
      | [] ->
        Printf.sprintf "DFS: %d schedules%s, all recovered" r.Sync_detsched.Detsched.explored
          (if r.Sync_detsched.Detsched.complete then " (complete)" else "")
      | (sched, m) :: _ ->
        Printf.sprintf "DFS counterexample %s: %s"
          (Sync_detsched.Detsched.Schedule.to_string sched)
          m) }

(* ------------------------------------------------------------------ *)
(* Platform timed-wait storms: timeouts hammering the timed variants.  *)

(* Final-state probes must run inside [body]: the scenario's [check] runs
   after [Detrt.run] returns, where Det-backed primitives refuse to
   operate. *)
let storm_semaphore =
  Sync_detsched.Detsched.scenario ~name:"storm-semaphore-timed"
    ~descr:"5 tasks x 3 timed acquires on a 2-token semaphore"
    (fun () ->
      let sem = Semaphore.Counting.create 2 in
      let final = ref (-1) in
      { Sync_detsched.Detsched.body =
          (fun () ->
            let tasks =
              List.init 5 (fun _ ->
                  Process.spawn (fun () ->
                      for _ = 1 to 3 do
                        if
                          Semaphore.Counting.acquire_for sem
                            ~timeout_ns:150_000L
                        then begin
                          Detrt.relax ();
                          Semaphore.Counting.v sem
                        end
                        else Detrt.relax ()
                      done))
            in
            List.iter Process.join tasks;
            final := Semaphore.Counting.value sem);
        check =
          (fun () ->
            if !final = 2 then Ok ()
            else Error (Printf.sprintf "token leak: final value %d" !final)) })

let storm_mutex =
  Sync_detsched.Detsched.scenario ~name:"storm-mutex-timed"
    ~descr:"4 tasks x 3 timed lock attempts on one mutex"
    (fun () ->
      let m = Mutex.create () in
      let free = ref false in
      { Sync_detsched.Detsched.body =
          (fun () ->
            let tasks =
              List.init 4 (fun _ ->
                  Process.spawn (fun () ->
                      for _ = 1 to 3 do
                        if Mutex.try_lock_for m ~timeout_ns:200_000L then begin
                          Detrt.relax ();
                          Mutex.unlock m
                        end
                        else Detrt.relax ()
                      done))
            in
            List.iter Process.join tasks;
            if Mutex.try_lock m then begin
              Mutex.unlock m;
              free := true
            end);
        check =
          (fun () ->
            if !free then Ok ()
            else Error "mutex left locked after the storm") })

let storm_condition =
  Sync_detsched.Detsched.scenario ~name:"storm-condition-timed"
    ~descr:"3 waiters poll a flag with timed waits; one setter"
    (fun () ->
      let m = Mutex.create () in
      let c = Condition.create () in
      let flag = ref false in
      let woke = Atomic.make 0 in
      { Sync_detsched.Detsched.body =
          (fun () ->
            let waiters =
              List.init 3 (fun _ ->
                  Process.spawn (fun () ->
                      Mutex.lock m;
                      while not !flag do
                        ignore
                          (Condition.wait_for c m
                             ~deadline:(Deadline.after_ns 100_000L))
                      done;
                      Atomic.incr woke;
                      Mutex.unlock m))
            in
            let setter =
              Process.spawn (fun () ->
                  Detrt.relax ();
                  Mutex.lock m;
                  flag := true;
                  Condition.broadcast c;
                  Mutex.unlock m)
            in
            List.iter Process.join (setter :: waiters));
        check =
          (fun () ->
            if Atomic.get woke = 3 then Ok ()
            else
              Error
                (Printf.sprintf "%d of 3 waiters woke" (Atomic.get woke))) })

(* ------------------------------------------------------------------ *)

let bb_solutions : (string * (module Bb_intf.S)) list =
  [ ("semaphore", (module Bb_sem)); ("monitor", (module Bb_mon));
    ("serializer", (module Bb_ser)); ("pathexpr", (module Bb_path));
    ("csp", (module Bb_csp)); ("ccr", (module Bb_ccr)) ]

let rw_solutions : (string * (module Rw_intf.S)) list =
  [ ("semaphore", (module Rw_sem.Readers_prio_baton));
    ("monitor", (module Rw_mon.Readers_prio));
    ("serializer", (module Rw_ser.Readers_prio));
    ("pathexpr", (module Rw_path.Fig2));
    ("csp", (module Rw_csp.Readers_prio));
    ("ccr", (module Rw_ccr.Readers_prio)) ]

let fcfs_solutions : (string * (module Fcfs_intf.S)) list =
  [ ("semaphore", (module Fcfs_sem)); ("monitor", (module Fcfs_mon));
    ("serializer", (module Fcfs_ser)); ("pathexpr", (module Fcfs_path));
    ("csp", (module Fcfs_csp)); ("ccr", (module Fcfs_ccr)) ]

(* CSP's server runs on a real thread (see bb_csp.ml), so it cannot join
   the deterministic-runtime storms; its cancellation behaviour is covered
   by the threaded abort matrix above. *)
let det_storm_solutions : (string * (module Bb_intf.S)) list =
  [ ("semaphore", (module Bb_sem)); ("monitor", (module Bb_mon));
    ("serializer", (module Bb_ser)); ("pathexpr", (module Bb_path));
    ("ccr", (module Bb_ccr)) ]

let run ?(storm_runs = 8) ?(progress = fun (_ : row) -> ()) () =
  let note f x =
    let r = f x in
    progress r;
    r
  in
  let bb = List.map (note bb_aborts) bb_solutions in
  let evc = note evc_row "bounded-buffer" in
  let rw = List.map (note rw_aborts) rw_solutions in
  let fcfs = List.map (note fcfs_aborts) fcfs_solutions in
  let storms =
    List.map
      (note (fun (mech, (module B : Bb_intf.S)) ->
           det_row ~mechanism:mech ~problem:"bounded-buffer" ~runs:storm_runs
             (bb_storm_scenario (module B) ~plan_seed:7)))
      det_storm_solutions
  in
  let platform =
    List.map
      (note (fun f -> f ()))
      [ dfs_storm_row;
        (fun () ->
          det_row ~mechanism:"platform" ~problem:"semaphore" ~runs:storm_runs
            storm_semaphore);
        (fun () ->
          det_row ~mechanism:"platform" ~problem:"mutex" ~runs:storm_runs
            storm_mutex);
        (fun () ->
          det_row ~mechanism:"platform" ~problem:"condition" ~runs:storm_runs
            storm_condition) ]
  in
  bb @ (evc :: rw) @ fcfs @ storms @ platform

let all_recovered rows =
  List.for_all (fun r -> r.recovered = r.runs) rows

let pp ppf rows =
  Format.fprintf ppf "%-12s %-16s %-7s %-34s %s@." "mechanism" "problem"
    "scen" "abort policy" "recovered";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %-16s %-7s %-34s %d/%d  %s@." r.mechanism
        r.problem r.scenario r.policy r.recovered r.runs r.detail)
    rows
