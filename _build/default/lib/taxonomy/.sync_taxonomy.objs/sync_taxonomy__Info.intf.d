lib/taxonomy/info.mli: Format
