(* CLOCK_MONOTONIC via bechamel's no-alloc C stub: immune to wall-clock
   steps and with true nanosecond resolution, which the latency
   histograms need — gettimeofday floats bottom out around a
   microsecond and made every sub-µs operation record as 0. *)
let now_ns () = Monotonic_clock.now ()

let elapsed_ns t0 = Int64.sub (now_ns ()) t0

module Virtual = struct
  type t = {
    mutex : Mutex.t;
    tick : Condition.t;
    mutable now : int;
    mutable sleepers : int;
  }

  let create ?(start = 0) () =
    { mutex = Mutex.create (); tick = Condition.create (); now = start;
      sleepers = 0 }

  let now t =
    Mutex.lock t.mutex;
    let n = t.now in
    Mutex.unlock t.mutex;
    n

  let advance t n =
    assert (n >= 0);
    Mutex.lock t.mutex;
    t.now <- t.now + n;
    Condition.broadcast t.tick;
    Mutex.unlock t.mutex

  let sleep_until t deadline =
    Mutex.lock t.mutex;
    t.sleepers <- t.sleepers + 1;
    while t.now < deadline do
      Condition.wait t.tick t.mutex
    done;
    t.sleepers <- t.sleepers - 1;
    Mutex.unlock t.mutex

  let sleepers t =
    Mutex.lock t.mutex;
    let n = t.sleepers in
    Mutex.unlock t.mutex;
    n
end
