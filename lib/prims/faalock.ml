(* Fetch-and-add-only primitives: the classic ticket lock and a
   value-netting counting semaphore. The ticket lock is FIFO: [faa] on
   [next] assigns arrival order, [owner] grants it. The semaphore nets
   the value directly — P is one [faa (-1)] that either wins a unit or
   repays it and waits — which makes it weak (barging) and lets the
   value dip negative transiently while a loser repays.

   Taking a ticket is a commitment: fetch-and-add has no withdraw, so
   [Lock.try_lock] only attempts when the lock looks free, and on the
   (rare) lost race it waits out the handful of holders that beat it —
   arrival order bounds that wait by the racers' critical sections. This
   is exactly the expressiveness dent the E25 scorecard documents: a
   truly non-blocking try needs a primitive that can decline (CAS), not
   one that can only commit (FAA). *)

module Make (R : Regs.FAA) = struct
  module Lock = struct
    type t = { next : R.t; owner : R.t }

    let create () = { next = R.make 0; owner = R.make 0 }

    let lock t =
      let my = R.faa t.next 1 in
      R.await ~watch:[| t.owner |] (fun () -> R.get t.owner = my)

    (* Only the holder writes [owner], so the increment is a plain
       read-modify-write of a single-writer register. *)
    let unlock t = R.set t.owner (R.get t.owner + 1)

    let try_lock t =
      if R.get t.next <> R.get t.owner then false
      else begin
        let my = R.faa t.next 1 in
        if R.get t.owner = my then true
        else begin
          (* Lost the race after committing a ticket: wait for the
             racers ahead (bounded by their critical sections), then
             report the acquisition as a success. *)
          R.await ~watch:[| t.owner |] (fun () -> R.get t.owner = my);
          true
        end
      end
  end

  module Sem = struct
    type t = R.t

    let create n =
      if n < 0 then invalid_arg "Faalock.Sem.create: negative value";
      R.make n

    let try_p s =
      if R.faa s (-1) >= 1 then true
      else begin
        ignore (R.faa s 1);
        false
      end

    let rec p s =
      if not (try_p s) then begin
        R.await ~watch:[| s |] (fun () -> R.get s > 0);
        p s
      end

    let rec p_poll s expired =
      if try_p s then true
      else if expired () then false
      else begin
        R.await ~watch:[| s |] (fun () -> R.get s > 0 || expired ());
        p_poll s expired
      end

    let v_n s n = ignore (R.faa s n)

    let value s = R.get s
  end
end
