(** Synchronous message passing with guarded choice, after Hoare's CSP
    [CACM'78] and Dijkstra's guarded commands.

    The paper's Section 6 names these as the constructs its methodology
    should next be applied to; this module is that extension (experiment
    E14). Communication is a rendezvous: [send] and [recv] both block
    until a partner arrives. [select] is the guarded alternative: it
    commits to exactly one ready case, preferring the longest-waiting
    partner on that channel, and evaluating cases in textual order when
    several are ready.

    Channels belong to a {!network}; [select] may only mix channels of one
    network (a single internal lock makes multi-channel commitment
    atomic). *)

exception Poisoned of exn
(** Raised by every operation on a poisoned network; carries the exception
    the network was poisoned with. *)

val abort_policy : Sync_platform.Fault.abort_policy
(** [`Poison]: a rendezvous has no single owner whose unwind could repair
    it — a crashed server would strand every parked client forever — so an
    abort is broadcast to the whole network instead of being repaired
    locally. *)

type network

val network : unit -> network

val poison : network -> exn -> unit
(** [poison net e] marks the network failed (first poisoner wins) and
    wakes every parked sender/receiver/selector, whose operation raises
    [Poisoned e]; subsequent operations fail fast the same way. Servers
    call this from their unwind handler so clients never block on a dead
    peer. Idempotent. *)

val poisoned : network -> exn option
(** The poison, if the network has been poisoned. *)

module Channel : sig
  type 'a t

  val create : ?name:string -> network -> 'a t

  val name : 'a t -> string

  val waiting_senders : 'a t -> int
  (** Parked unmatched senders (introspection for tests). *)

  val waiting_receivers : 'a t -> int
end

val send : 'a Channel.t -> 'a -> unit
(** Block until a receiver takes the value. *)

val recv : 'a Channel.t -> 'a
(** Block until a sender provides a value. *)

val try_send : 'a Channel.t -> 'a -> bool
(** Deliver only if a receiver is already waiting. *)

val try_recv : 'a Channel.t -> 'a option
(** Take only if a sender is already waiting. *)

type 'r case
(** One alternative of a guarded choice producing a value of type ['r]. *)

val recv_case : 'a Channel.t -> ('a -> 'r) -> 'r case

val send_case : 'a Channel.t -> 'a -> (unit -> 'r) -> 'r case

val guard : bool -> 'r case -> 'r case
(** [guard false c] disables [c] for this selection (a Dijkstra guard). *)

val select : 'r case list -> 'r
(** Commit to exactly one enabled, ready case; blocks until one becomes
    ready. The continuation runs after the rendezvous, outside the
    network lock.
    @raise Invalid_argument if every case is disabled. *)
