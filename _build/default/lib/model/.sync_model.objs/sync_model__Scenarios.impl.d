lib/model/scenarios.ml: Explore Fun List Mon Printf Sem Ser Sysstate
