(* Lamport's bakery lock over atomic read/write registers only, with the
   bounded-timestamp fix: a thread whose doorway would mint a ticket
   above [bound] declines it, waits (invisibly — no [choosing], no
   [number]) for the bakery to drain to all-zero, and re-runs the
   doorway. Tickets are therefore bounded by [bound] in every execution,
   at the price of a fairness hiccup on overflow — the drain wait can be
   overtaken — which is the trade the register-overflow paper makes:
   safety and deadlock-freedom are preserved, FCFS holds between any two
   doorways that do not straddle a drain.

   The functor parameter is {!Regs.RW}: the implementation cannot name
   [cas] or [faa], so "read/write registers only" is a typing fact. Slots
   are caller-assigned indices (the classic static-process model);
   {!Prims} maps real threads onto slots, deterministic scenarios pass
   their task index directly. *)

module Make (R : Regs.RW) = struct
  type t = {
    choosing : R.t array;
    number : R.t array;
    bnd : int;
    (* Instrumentation, not protocol state: a racy monotone watermark of
       minted tickets (never exceeds the true maximum, which tests cap
       by [bnd]) and a count of overflow drain-waits taken. *)
    mutable max_ticket : int;
    mutable overflow_stalls : int;
  }

  let create ?(bound = 1024) ~slots () =
    if slots < 1 then invalid_arg "Bakery.create: slots must be >= 1";
    if bound < 2 then invalid_arg "Bakery.create: bound must be >= 2";
    { choosing = Array.init slots (fun _ -> R.make 0);
      number = Array.init slots (fun _ -> R.make 0);
      bnd = bound;
      max_ticket = 0;
      overflow_stalls = 0 }

  let slots t = Array.length t.number

  let bound t = t.bnd

  let max_ticket_seen t = t.max_ticket

  let overflow_stalls t = t.overflow_stalls

  let drained t =
    let ok = ref true in
    for j = 0 to Array.length t.number - 1 do
      if R.get t.number.(j) <> 0 then ok := false
    done;
    !ok

  (* The doorway: announce [choosing], read every number, take max+1.
     On overflow, retreat to invisibility and wait for a drain. *)
  let rec doorway t i =
    R.set t.choosing.(i) 1;
    let m = ref 0 in
    for j = 0 to Array.length t.number - 1 do
      let nj = R.get t.number.(j) in
      if nj > !m then m := nj
    done;
    let tk = !m + 1 in
    if tk > t.bnd then begin
      R.set t.choosing.(i) 0;
      t.overflow_stalls <- t.overflow_stalls + 1;
      R.await ~watch:t.number (fun () -> drained t);
      doorway t i
    end
    else begin
      R.set t.number.(i) tk;
      R.set t.choosing.(i) 0;
      if tk > t.max_ticket then t.max_ticket <- tk;
      tk
    end

  (* Lexicographic (number, slot) priority: [j] yields to us when its
     number is 0, larger than ours, or equal with a larger slot id. *)
  let yields_to t ~tk ~i j =
    let nj = R.get t.number.(j) in
    nj = 0 || nj > tk || (nj = tk && j > i)

  let lock t ~slot:i =
    let tk = doorway t i in
    for j = 0 to Array.length t.number - 1 do
      if j <> i then begin
        R.await
          ~watch:[| t.choosing.(j) |]
          (fun () -> R.get t.choosing.(j) = 0);
        R.await ~watch:[| t.number.(j) |] (fun () -> yields_to t ~tk ~i j)
      end
    done

  (* Non-blocking attempt: the same doorway, then [lock]'s per-slot exit
     conditions checked once each instead of awaited; any miss withdraws
     the ticket. May fail spuriously under contention — the try-lock
     contract — but a [true] return carries the full exclusion proof,
     since it witnessed exactly the conditions [lock] waits for. *)
  let try_lock t ~slot:i =
    R.set t.choosing.(i) 1;
    let m = ref 0 in
    for j = 0 to Array.length t.number - 1 do
      let nj = R.get t.number.(j) in
      if nj > !m then m := nj
    done;
    let tk = !m + 1 in
    if tk > t.bnd then begin
      R.set t.choosing.(i) 0;
      t.overflow_stalls <- t.overflow_stalls + 1;
      false
    end
    else begin
      R.set t.number.(i) tk;
      R.set t.choosing.(i) 0;
      if tk > t.max_ticket then t.max_ticket <- tk;
      let ok = ref true in
      let j = ref 0 in
      let n = Array.length t.number in
      while !ok && !j < n do
        if !j <> i then
          if R.get t.choosing.(!j) <> 0 then ok := false
          else if not (yields_to t ~tk ~i !j) then ok := false;
        incr j
      done;
      if not !ok then R.set t.number.(i) 0;
      !ok
    end

  let unlock t ~slot:i = R.set t.number.(i) 0
end
