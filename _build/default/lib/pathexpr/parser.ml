exception Syntax_error of string

type token =
  | Ident of string
  | Int of int
  | Semi
  | Comma
  | Colon
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Kw_path
  | Kw_end
  | Eof

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Semi -> "';'"
  | Comma -> "','"
  | Colon -> "':'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Kw_path -> "'path'"
  | Kw_end -> "'end'"
  | Eof -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let rec skip i =
    if i >= n then i
    else if src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r'
    then skip (i + 1)
    else if i + 1 < n && src.[i] = '-' && src.[i + 1] = '-' then begin
      let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
      skip (eol (i + 2))
    end
    else i
  in
  let rec lex acc i =
    let i = skip i in
    if i >= n then List.rev ((Eof, i) :: acc)
    else
      let c = src.[i] in
      if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        let word = String.sub src i (j - i) in
        let tok =
          match word with
          | "path" -> Kw_path
          | "end" -> Kw_end
          | _ -> Ident word
        in
        lex ((tok, i) :: acc) j
      end
      else if is_digit c then begin
        let rec stop j = if j < n && is_digit src.[j] then stop (j + 1) else j in
        let j = stop i in
        lex ((Int (int_of_string (String.sub src i (j - i))), i) :: acc) j
      end
      else
        let simple tok = lex ((tok, i) :: acc) (i + 1) in
        match c with
        | ';' -> simple Semi
        | ',' -> simple Comma
        | ':' -> simple Colon
        | '{' -> simple Lbrace
        | '}' -> simple Rbrace
        | '(' -> simple Lparen
        | ')' -> simple Rparen
        | '[' -> simple Lbracket
        | ']' -> simple Rbracket
        | _ ->
          raise
            (Syntax_error
               (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  lex [] 0

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (Eof, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let got, pos = peek st in
  if got = tok then advance st
  else
    raise
      (Syntax_error
         (Printf.sprintf "expected %s %s at offset %d, found %s" what
            (token_to_string tok) pos (token_to_string got)))

let rec parse_expr_st st =
  let first = parse_sel st in
  let rec more acc =
    match peek st with
    | Semi, _ ->
      advance st;
      more (parse_sel st :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ single ] -> single | es -> Ast.Seq es

and parse_sel st =
  let first = parse_primary st in
  let rec more acc =
    match peek st with
    | Comma, _ ->
      advance st;
      more (parse_primary st :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ single ] -> single | es -> Ast.Sel es

and parse_primary st =
  match peek st with
  | Ident name, _ ->
    advance st;
    Ast.Op name
  | Int n, pos ->
    advance st;
    if n < 1 then
      raise
        (Syntax_error
           (Printf.sprintf "numeric bound must be >= 1 at offset %d" pos));
    expect st Colon "after bound";
    expect st Lparen "after ':'";
    let e = parse_expr_st st in
    expect st Rparen "to close bound";
    Ast.Bounded (n, e)
  | Lbrace, _ ->
    advance st;
    let e = parse_expr_st st in
    expect st Rbrace "to close '{'";
    Ast.Conc e
  | Lparen, _ ->
    advance st;
    let e = parse_expr_st st in
    expect st Rparen "to close '('";
    e
  | Lbracket, pos -> (
    advance st;
    match peek st with
    | Ident name, _ ->
      advance st;
      expect st Rbracket "to close '['";
      Ast.Pred (name, parse_primary st)
    | got, _ ->
      raise
        (Syntax_error
           (Printf.sprintf "expected predicate name at offset %d, found %s"
              pos (token_to_string got))))
  | got, pos ->
    raise
      (Syntax_error
         (Printf.sprintf
            "expected an operation, '{', '(', '[' or bound at offset %d, \
             found %s"
            pos (token_to_string got)))

let parse src =
  let st = { toks = tokenize src } in
  let rec decls acc =
    match peek st with
    | Kw_path, _ ->
      advance st;
      let e = parse_expr_st st in
      expect st Kw_end "to close declaration";
      decls (e :: acc)
    | Eof, _ ->
      if acc = [] then
        raise (Syntax_error "expected at least one 'path ... end' declaration");
      List.rev acc
    | got, pos ->
      raise
        (Syntax_error
           (Printf.sprintf "expected 'path' at offset %d, found %s" pos
              (token_to_string got)))
  in
  decls []

let parse_expr src =
  let st = { toks = tokenize src } in
  let e = parse_expr_st st in
  match peek st with
  | Eof, _ -> e
  | got, pos ->
    raise
      (Syntax_error
         (Printf.sprintf "trailing input at offset %d: %s" pos
            (token_to_string got)))
