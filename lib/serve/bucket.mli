(** Token-bucket admission (E24): per-problem rate limiting that sheds
    load with an explicit retry hint instead of queueing unboundedly.

    Tokens refill continuously at [rate_per_s] up to [burst]; each
    admitted request consumes one. When empty, {!try_take} refuses and
    {!retry_after_ms} says how long until a token exists — the value
    the server returns in [Overloaded] replies so clients can back off
    intelligently rather than hammering. *)

type t

val create : rate_per_s:float -> burst:int -> t
(** @raise Invalid_argument unless [rate_per_s > 0] and [burst >= 1]. *)

val try_take : t -> bool
(** Consume one token if available (thread-safe, refills first). *)

val retry_after_ms : t -> int
(** Milliseconds until the next token materialises (>= 1 when empty;
    0 when a token is already available). *)
