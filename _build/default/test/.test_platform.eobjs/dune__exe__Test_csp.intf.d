test/test_csp.mli:
