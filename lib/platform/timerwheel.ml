(* Hierarchical timing wheel (Varghese & Lauck), the E27 alarm
   substrate: [levels] rings of [2^slot_bits] buckets each, where a
   level-[l] slot spans [2^(l*slot_bits)] ticks. Insert and cancel are
   O(1) — compute the level from the relative delay, splice into an
   intrusive doubly-linked bucket. Advancing one tick touches exactly
   one level-0 bucket plus, when a ring wraps, one cascade bucket per
   wrapped level — amortized O(1) per tick and, crucially, independent
   of the number of pending alarms (a binary heap pays O(log n) per
   alarm; bench_load --e27 measures the gap at millions pending).

   Level choice is the smallest level whose span covers the relative
   delay, so a deadline inside the current level-[l] window (whose
   cascade already ran) always lands a level lower and is never late;
   a deadline in the next rotation waits in the ring for the next
   cascade of its slot, which is exactly its window start. Deadlines at
   or beyond [now + horizon] wait on an overflow list that is
   re-examined once per full rotation.

   The structure is single-owner: whoever drives it (the alarm_wheel
   solution, a bench loop) provides exclusion. [tick] allocates
   nothing; it only splices existing nodes. *)

type 'a node = {
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable deadline : int; (* absolute tick; -1 on sentinels *)
  value : 'a option; (* [None] only on sentinels *)
}

type 'a alarm = 'a node

type 'a t = {
  slot_bits : int;
  mask : int;
  nlevels : int;
  horizon : int; (* ticks representable inside the rings *)
  rings : 'a node array array; (* rings.(l).(s) = bucket sentinel *)
  overflow : 'a node;
  mutable now : int;
  mutable pending : int;
}

let sentinel () =
  let rec s = { prev = s; next = s; deadline = -1; value = None } in
  s

let create ?(levels = 4) ?(slot_bits = 8) () =
  if levels < 1 then invalid_arg "Timerwheel.create: need at least 1 level";
  if slot_bits < 1 || levels * slot_bits > 60 then
    invalid_arg "Timerwheel.create: slot_bits out of range";
  let slots = 1 lsl slot_bits in
  { slot_bits;
    mask = slots - 1;
    nlevels = levels;
    horizon = 1 lsl (levels * slot_bits);
    rings =
      Array.init levels (fun _ -> Array.init slots (fun _ -> sentinel ()));
    overflow = sentinel ();
    now = 0;
    pending = 0 }

let now t = t.now

let pending t = t.pending

(* Intrusive splicing. A detached node points at itself, which makes
   [cancel] idempotent and [fired] stateless. *)
let detach n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let detached n = n.next == n

let append_before s n =
  n.prev <- s.prev;
  n.next <- s;
  s.prev.next <- n;
  s.prev <- n

let bucket_for t ~deadline =
  let r = deadline - t.now in
  if r >= t.horizon then t.overflow
  else begin
    let rec level l =
      if r < 1 lsl ((l + 1) * t.slot_bits) then l else level (l + 1)
    in
    let l = level 0 in
    t.rings.(l).((deadline lsr (l * t.slot_bits)) land t.mask)
  end

let place t n = append_before (bucket_for t ~deadline:n.deadline) n

let add t ~delay v =
  let delay = max 1 delay in
  let rec n =
    { prev = n; next = n; deadline = t.now + delay; value = Some v }
  in
  place t n;
  t.pending <- t.pending + 1;
  n

let cancel t n =
  if detached n then false
  else begin
    detach n;
    t.pending <- t.pending - 1;
    true
  end

let fired n = detached n

let deadline n = n.deadline

(* Re-place every node of a cascaded (or overflow) bucket. The chain is
   severed first: overflow nodes still beyond the horizon re-enter the
   same overflow list, and walking a live list while appending to it
   would never terminate. *)
let redistribute t s =
  let first = s.next in
  if first != s then begin
    let last = s.prev in
    s.next <- s;
    s.prev <- s;
    let rec go n =
      let nxt = n.next in
      let stop = n == last in
      n.prev <- n;
      n.next <- n;
      place t n;
      if not stop then go nxt
    in
    go first
  end

let tick t f =
  t.now <- t.now + 1;
  (* Cascade every level whose window begins this tick, lowest first so
     nodes settle level by level; after a full rotation, re-examine the
     overflow list too. Then fire the level-0 bucket. *)
  let rec cascade l =
    if l < t.nlevels then begin
      if t.now land ((1 lsl (l * t.slot_bits)) - 1) = 0 then begin
        redistribute t
          t.rings.(l).((t.now lsr (l * t.slot_bits)) land t.mask);
        cascade (l + 1)
      end
    end
    else if t.now land (t.horizon - 1) = 0 then redistribute t t.overflow
  in
  cascade 1;
  let bucket = t.rings.(0).(t.now land t.mask) in
  let rec fire count =
    let n = bucket.next in
    if n == bucket then count
    else begin
      detach n;
      t.pending <- t.pending - 1;
      (match n.value with Some v -> f n.deadline v | None -> ());
      fire (count + 1)
    end
  in
  fire 0

let advance t ~ticks f =
  let rec go i acc = if i = 0 then acc else go (i - 1) (acc + tick t f) in
  go (max 0 ticks) 0
