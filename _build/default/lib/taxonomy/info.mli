(** The paper's six categories of information that synchronization
    constraints may refer to (Section 3). *)

type kind =
  | Request_type   (** which resource operation is being requested *)
  | Request_time   (** arrival order of requests *)
  | Parameters     (** arguments passed with the request *)
  | Sync_state     (** processes currently accessing the resource *)
  | Local_state    (** state the resource has even without concurrency *)
  | History        (** whether given past events have occurred *)

val all : kind list
(** In the paper's numbering order (1-6). *)

val to_string : kind -> string

val of_string : string -> kind option

val short : kind -> string
(** Column label for matrices, <= 6 chars. *)

val pp : Format.formatter -> kind -> unit

val compare : kind -> kind -> int

val equal : kind -> kind -> bool
