(* Hoare's alarm clock, driven tick by tick.

   Seven sleepers ask for different durations; the driver advances the
   virtual clock and prints who wakes at each tick. The priority-wait
   condition queue (rank = absolute deadline) makes the monitor solution
   a five-liner; the same program runs against the serializer solution to
   show automatic signalling doing the monitor's [signal] work.

     dune exec examples/alarmclock.exe
*)

open Sync_problems

let demo name (module A : Alarm_intf.S) =
  Printf.printf "-- %s --\n%!" name;
  let t = A.create () in
  let durations = [ 3; 1; 4; 1; 5; 2; 3 ] in
  let n = List.length durations in
  let woken = Array.make n false in
  let lock = Mutex.create () in
  let sleepers =
    List.mapi
      (fun i d ->
        let p =
          Sync_platform.Process.spawn ~backend:`Thread (fun () ->
              A.wakeme t ~pid:i d;
              Mutex.lock lock;
              woken.(i) <- true;
              Mutex.unlock lock)
        in
        Thread.delay 0.01;
        p)
      durations
  in
  let horizon = List.fold_left max 0 durations in
  for tick = 1 to horizon do
    A.tick t;
    (* Wait for everyone due by now, then report. *)
    List.iteri
      (fun i d ->
        if d <= tick then
          while
            Mutex.lock lock;
            let w = not woken.(i) in
            Mutex.unlock lock;
            w
          do
            Thread.yield ()
          done)
      durations;
    let due =
      List.filteri (fun i _ -> List.nth durations i = tick)
        (List.mapi (fun i _ -> i) durations)
    in
    Printf.printf "tick %d -> woke sleepers [%s]\n%!" tick
      (String.concat "; " (List.map string_of_int due))
  done;
  List.iter Sync_platform.Process.join sleepers;
  A.stop t

let () =
  demo "monitor (priority condition queue)" (module Alarm_mon);
  demo "serializer (automatic signalling)" (module Alarm_ser);
  demo "CSP (clock server process)" (module Alarm_csp)
