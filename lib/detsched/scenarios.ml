(* The scenario catalog: real mechanism implementations wired into the
   deterministic harness. Each [make] runs inside the deterministic run
   body, so the mechanism's mutexes and conditions are virtual; each
   check feeds the recorded trace to the existing [sync_problems]
   checkers. [expect] records whether exploration is supposed to find
   failing schedules — [Fail] entries are the reproduced anomalies. *)

open Sync_problems

type expectation = Pass | Fail

type entry = { scen : Detsched.t; expect : expectation }

let bb_sized name (module B : Bb_intf.S) ~capacity ~producers ~consumers
    ~items =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf
         "bounded buffer (%s): %d producers x %d items, %d consumers, \
          capacity %d"
         B.mechanism producers items consumers capacity)
    (fun () ->
      let report = ref None in
      { Detsched.body =
          (fun () ->
            report :=
              Some
                (Bb_harness.run (module B) ~capacity ~producers ~consumers
                   ~items_per_producer:items ~work:0 ~seed:1L ()));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Bb_harness.check ~producers r) })

let bb name m = bb_sized name m ~capacity:2 ~producers:2 ~consumers:2 ~items:3

let rw_handoff name (module S : Rw_intf.S) =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf "footnote-3 writer handoff (%s, %s policy)" S.mechanism
         (Rw_intf.policy_to_string S.policy))
    (fun () ->
      let got = ref None in
      { Detsched.body =
          (fun () ->
            got := Some (Rw_harness.det_scenario_writer_handoff (module S) ()));
        check =
          (fun () ->
            match !got with
            | None -> Error "scenario body did not run"
            | Some r -> Rw_harness.det_check_writer_handoff (module S) r) })

let fcfs name (module S : Fcfs_intf.S) ~variant =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf
         "FCFS drain order (%s%s): gated holder, 4 contenders queued in order"
         S.mechanism
         (if variant = "" then "" else ", " ^ variant))
    (fun () ->
      let report = ref None in
      { Detsched.body =
          (fun () -> report := Some (Fcfs_harness.det_run (module S) ~users:4 ()));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Fcfs_harness.check r) })

(* Readers-writers exclusion under the full stress mix: every reader and
   writer goes through the self-checking store, so the scenario machine-
   checks the mutual-exclusion invariant on every explored schedule. The
   instance sizes are exploration knobs: the E26 axis runs shapes whose
   schedule trees naive DFS cannot finish. *)
let rw_excl name (module S : Rw_intf.S) ~readers ~writers ~ops =
  Detsched.scenario ~name
    ~descr:
      (Printf.sprintf
         "readers-writers exclusion (%s): %d readers x %d writers x %d ops"
         S.mechanism readers writers ops)
    (fun () ->
      let report = ref None in
      { Detsched.body =
          (fun () ->
            report :=
              Some
                (Rw_harness.run_stress (module S) ~backend:`Det ~readers
                   ~writers ~reads_each:ops ~writes_each:ops ~work:0 ()));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Rw_harness.check_exclusion r) })

(* The E19 cancellation storm, parametric in the instance size: aborts
   injected at the semaphore's pre-wait and the first put body, with the
   recovery machinery (rollback/redonate via waitq) checked on every
   surviving operation. The smallest shape is DFS-feasible; larger ones
   are DPOR territory. *)
let storm_bb_sem ?(capacity = 1) ?(producers = 1) ?(consumers = 1)
    ?(items = 2) () =
  let open Sync_platform in
  Detsched.scenario
    ~name:(Printf.sprintf "storm-bb-sem-%dp%dc%di" producers consumers items)
    ~descr:
      (Printf.sprintf
         "cancellation storm (semaphore bb, %dp/%dc, %d items each): abort \
          at semaphore.pre-wait and bb.put.body"
         producers consumers items)
    (fun () ->
      let report = ref None in
      let plan =
        Fault.plan
          [ ("semaphore.pre-wait", Fault.Nth 2); ("bb.put.body", Fault.Nth 1) ]
      in
      { Detsched.body =
          (fun () ->
            report :=
              Some
                (Fault.with_plan plan (fun () ->
                     Bb_harness.run_abort (module Bb_sem) ~backend:`Det
                       ~capacity ~producers ~consumers
                       ~items_per_producer:items ())));
        check =
          (fun () ->
            match !report with
            | None -> Error "scenario body did not run"
            | Some r -> Bb_harness.check_abort ~producers r) })

(* ---- E25: class-restricted locks on deterministic registers ----

   The prims functors ([Bakery.Make], [Faalock.Make], [Ticket_sem.Make])
   instantiated over [Detrt]'s recorded registers: every protocol step —
   each read, write, CAS, FAA, and the parked [await] — is a scheduling
   point the explorers control, so DPOR enumerates the algorithms' real
   interleavings, not a lucky subset. Slots are task indices (the classic
   static-process model), no thread registry involved. *)

module Det_regs :
  Sync_prims.Regs.FULL with type t = Sync_platform.Detrt.reg = struct
  open Sync_platform

  type t = Detrt.reg

  let make = Detrt.reg

  let get = Detrt.reg_get

  let set = Detrt.reg_set

  let cas = Detrt.reg_cas

  let faa = Detrt.reg_faa

  let await = Detrt.reg_await
end

module Det_bakery = Sync_prims.Bakery.Make (Det_regs)
module Det_faa = Sync_prims.Faalock.Make (Det_regs)
module Det_ticket_sem = Sync_prims.Ticket_sem.Make (Det_regs)
module Det_queue = Sync_prims.Queuelock.Make (Det_regs)

(* Mutual-exclusion check with a recorded register as the witness: the
   owner register's ops are scheduling points themselves, so if two
   tasks can ever be inside the critical section together, some explored
   schedule interleaves their owner writes and the check trips — no
   hand-placed yields needed. *)
let prim_excl name ~descr ~tasks ~rounds ~(make : tasks:int ->
    (int -> unit) * (int -> unit)) =
  let open Sync_platform in
  Detsched.scenario ~name ~descr (fun () ->
      let viol = ref 0 and entries = ref 0 in
      { Detsched.body =
          (fun () ->
            let lock, unlock = make ~tasks in
            let owner = Det_regs.make 0 in
            let ts =
              List.init tasks (fun i ->
                  Detrt.spawn ~name:(Printf.sprintf "p%d" i) (fun () ->
                      for _ = 1 to rounds do
                        lock i;
                        if Det_regs.get owner <> 0 then incr viol;
                        Det_regs.set owner (i + 1);
                        if Det_regs.get owner <> i + 1 then incr viol;
                        Det_regs.set owner 0;
                        incr entries;
                        unlock i
                      done))
            in
            List.iter Detrt.join ts);
        check =
          (fun () ->
            if !viol > 0 then
              Error (Printf.sprintf "%d exclusion violation(s)" !viol)
            else if !entries <> tasks * rounds then
              Error
                (Printf.sprintf "%d critical sections, expected %d" !entries
                   (tasks * rounds))
            else Ok ()) })

let bakery_excl ~tasks ~rounds =
  prim_excl
    (Printf.sprintf "bakery-excl-%dt%dr" tasks rounds)
    ~descr:
      (Printf.sprintf
         "bakery lock (RW registers, bounded timestamps): %d tasks x %d \
          rounds, exclusion witnessed on a recorded register"
         tasks rounds)
    ~tasks ~rounds
    ~make:(fun ~tasks ->
      let b = Det_bakery.create ~bound:16 ~slots:tasks () in
      ( (fun i -> Det_bakery.lock b ~slot:i),
        fun i -> Det_bakery.unlock b ~slot:i ))

let ticket_excl ~tasks ~rounds =
  prim_excl
    (Printf.sprintf "ticket-excl-%dt%dr" tasks rounds)
    ~descr:
      (Printf.sprintf
         "FAA ticket lock: %d tasks x %d rounds, exclusion witnessed on a \
          recorded register"
         tasks rounds)
    ~tasks ~rounds
    ~make:(fun ~tasks:_ ->
      let l = Det_faa.Lock.create () in
      ((fun _ -> Det_faa.Lock.lock l), fun _ -> Det_faa.Lock.unlock l))

(* E23: the queue locks on the same recorded registers. The spacer
   arrays and the proportional-backoff delay are pure computation —
   invisible to the scheduler — so DPOR explores exactly the protocol's
   register traffic: tail swaps, successor links, handoff stores. A
   dropped handoff (an unlock that never releases its successor's spin
   register) would leave that task parked in [await] forever and
   surface as a deterministic-runtime deadlock on that schedule. *)
let mcs_excl ~tasks ~rounds =
  prim_excl
    (Printf.sprintf "mcs-excl-%dt%dr" tasks rounds)
    ~descr:
      (Printf.sprintf
         "MCS queue lock (local spin, FIFO handoff): %d tasks x %d rounds, \
          exclusion witnessed on a recorded register"
         tasks rounds)
    ~tasks ~rounds
    ~make:(fun ~tasks ->
      let l = Det_queue.Mcs.create ~slots:tasks () in
      ( (fun i -> Det_queue.Mcs.lock l ~slot:i),
        fun i -> Det_queue.Mcs.unlock l ~slot:i ))

let clh_excl ~tasks ~rounds =
  prim_excl
    (Printf.sprintf "clh-excl-%dt%dr" tasks rounds)
    ~descr:
      (Printf.sprintf
         "CLH queue lock (spin on predecessor's node): %d tasks x %d \
          rounds, exclusion witnessed on a recorded register"
         tasks rounds)
    ~tasks ~rounds
    ~make:(fun ~tasks ->
      let l = Det_queue.Clh.create ~slots:tasks () in
      ( (fun i -> Det_queue.Clh.lock l ~slot:i),
        fun i -> Det_queue.Clh.unlock l ~slot:i ))

let qticket_excl ~tasks ~rounds =
  prim_excl
    (Printf.sprintf "qticket-excl-%dt%dr" tasks rounds)
    ~descr:
      (Printf.sprintf
         "proportional-backoff ticket lock: %d tasks x %d rounds, \
          exclusion witnessed on a recorded register"
         tasks rounds)
    ~tasks ~rounds
    ~make:(fun ~tasks:_ ->
      let l = Det_queue.Ticket.create () in
      ( (fun _ -> Det_queue.Ticket.lock l),
        fun _ -> Det_queue.Ticket.unlock l ))

(* ---- E27: the hot-swap tier indirection, modeled ----

   The adaptive tier's retiering protocol over recorded registers: an
   acquire reads the current-cell register, locks that cell, and
   re-checks the register (unlock and retry on a miss); the flipper
   locks the current cell, redirects the register, and unlocks — the
   exact [Mutex.swap_to] protocol. After each flip the flipper itself
   enters the critical section once through the new tier — the E27
   hazard is precisely a stale worker (cell locked, register already
   redirected) overlapping a post-flip entrant, so the minimal
   [tasks:1] instance puts that race on a DPOR-completable tree. The
   cell locks are FAA ticket locks over the same recorded registers —
   the CAS test-and-set alternative's failed-acquire retries explode
   the tree past what any explorer can finish, while the ticket lock's
   acquire is one FAA plus one await. Every protocol step is a
   scheduling point, and the owner-register witness trips if any
   schedule ever lets the old and the new cell admit a holder
   together. [recheck:false] drops the re-check — the protocol's
   load-bearing step — and must be caught. *)
let swap_excl_protocol ~recheck ~tasks ~rounds ~flips =
  let open Sync_platform in
  Detsched.scenario
    ~name:
      (Printf.sprintf "swap-excl%s-%dt%dr%df"
         (if recheck then "" else "-norecheck")
         tasks rounds flips)
    ~descr:
      (Printf.sprintf
         "hot-swap indirection%s: %d tasks x %d rounds through the \
          current-cell register, %d mid-run flip(s); exclusion witnessed \
          on a recorded register"
         (if recheck then "" else " WITHOUT the re-check (broken)")
         tasks rounds flips)
    (fun () ->
      let viol = ref 0 and entries = ref 0 and flipped = ref 0 in
      { Detsched.body =
          (fun () ->
            let cells =
              [| Det_faa.Lock.create (); Det_faa.Lock.create () |]
            in
            let cur = Det_regs.make 0 in
            let lock_cell c = Det_faa.Lock.lock cells.(c) in
            let unlock_cell c = Det_faa.Lock.unlock cells.(c) in
            let rec acquire () =
              let c = Det_regs.get cur in
              lock_cell c;
              if recheck && Det_regs.get cur <> c then begin
                unlock_cell c;
                acquire ()
              end
              else c
            in
            let owner = Det_regs.make 0 in
            let critical id =
              if Det_regs.get owner <> 0 then incr viol;
              Det_regs.set owner id;
              if Det_regs.get owner <> id then incr viol;
              Det_regs.set owner 0;
              incr entries
            in
            let ts =
              List.init tasks (fun i ->
                  Detrt.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
                      for _ = 1 to rounds do
                        let c = acquire () in
                        critical (i + 1);
                        unlock_cell c
                      done))
            in
            let flipper =
              Detrt.spawn ~name:"flipper" (fun () ->
                  for _ = 1 to flips do
                    let c = Det_regs.get cur in
                    lock_cell c;
                    Det_regs.set cur (1 - c);
                    unlock_cell c;
                    incr flipped;
                    (* Enter once through the tier just installed: the
                       schedule where this overlaps a worker that read
                       the register before the flip is the one the
                       re-check exists to kill. *)
                    let c = acquire () in
                    critical (tasks + 1);
                    unlock_cell c
                  done)
            in
            List.iter Detrt.join ts;
            Detrt.join flipper);
        check =
          (fun () ->
            if !viol > 0 then
              Error (Printf.sprintf "%d exclusion violation(s)" !viol)
            else if !entries <> (tasks * rounds) + flips then
              Error
                (Printf.sprintf "%d critical sections, expected %d" !entries
                   ((tasks * rounds) + flips))
            else if !flipped <> flips then
              Error (Printf.sprintf "%d flips, expected %d" !flipped flips)
            else Ok ()) })

let swap_excl ~tasks ~rounds ~flips =
  swap_excl_protocol ~recheck:true ~tasks ~rounds ~flips

let swap_excl_norecheck ~tasks ~rounds ~flips =
  swap_excl_protocol ~recheck:false ~tasks ~rounds ~flips

(* The control experiment: the textbook broken lock (test, then set —
   no atomicity between them). Exploration must find the schedule where
   both tasks pass the test before either sets the flag; with it, the
   exclusion machinery above demonstrably detects real violations. *)
let naive_rw_excl ~tasks ~rounds =
  prim_excl
    (Printf.sprintf "naive-rw-excl-%dt%dr" tasks rounds)
    ~descr:
      (Printf.sprintf
         "BROKEN test-then-set RW lock: %d tasks x %d rounds; exploration \
          must find the exclusion violation"
         tasks rounds)
    ~tasks ~rounds
    ~make:(fun ~tasks:_ ->
      let flag = Det_regs.make 0 in
      ( (fun _ ->
          Det_regs.await ~watch:[| flag |] (fun () ->
              Det_regs.get flag = 0);
          Det_regs.set flag 1),
        fun _ -> Det_regs.set flag 0 ))

(* FCFS ticket-semaphore handoff: budget 1, [tasks] contenders each
   P/critical/V. A lost wakeup — a V whose budget bump fails to wake the
   parked taker whose turn it funds — would leave that task blocked
   forever and surface as a deterministic-runtime deadlock on that
   schedule; the entry expects none exists. *)
let ticket_sem_handoff ~tasks =
  let open Sync_platform in
  Detsched.scenario
    ~name:(Printf.sprintf "ticket-sem-handoff-%dt" tasks)
    ~descr:
      (Printf.sprintf
         "FCFS ticket semaphore (FAA): %d contenders hand one unit along; \
          a lost wakeup would deadlock the run"
         tasks)
    (fun () ->
      let viol = ref 0 and passes = ref 0 in
      { Detsched.body =
          (fun () ->
            let s = Det_ticket_sem.create 1 in
            let owner = Det_regs.make 0 in
            let ts =
              List.init tasks (fun i ->
                  Detrt.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
                      Det_ticket_sem.p s;
                      if Det_regs.get owner <> 0 then incr viol;
                      Det_regs.set owner (i + 1);
                      if Det_regs.get owner <> i + 1 then incr viol;
                      Det_regs.set owner 0;
                      incr passes;
                      Det_ticket_sem.v_n s 1))
            in
            List.iter Detrt.join ts);
        check =
          (fun () ->
            if !viol > 0 then
              Error (Printf.sprintf "%d exclusion violation(s)" !viol)
            else if !passes <> tasks then
              Error (Printf.sprintf "%d passes, expected %d" !passes tasks)
            else Ok ()) })

(* Not a mechanism under test but a harness self-check: opposite lock
   orders, so some schedules deadlock and some do not — DFS must find
   both, and the runtime must report the deadlock rather than hang. *)
let deadlock =
  let open Sync_platform in
  Detsched.scenario ~name:"deadlock-abba"
    ~descr:"two tasks take two locks in opposite orders; some schedules deadlock"
    (fun () ->
      let a = Mutex.create () and b = Mutex.create () in
      (* Raw [Detrt] tasks, not [Process]: the process wrapper's own
         error mutex would add scheduling points and inflate the tree
         this demo exists to enumerate completely. *)
      { Detsched.body =
          (fun () ->
            let t1 =
              Detrt.spawn ~name:"locker-ab" (fun () ->
                  Mutex.lock a;
                  Mutex.lock b;
                  Mutex.unlock b;
                  Mutex.unlock a)
            in
            let t2 =
              Detrt.spawn ~name:"locker-ba" (fun () ->
                  Mutex.lock b;
                  Mutex.lock a;
                  Mutex.unlock a;
                  Mutex.unlock b)
            in
            Detrt.join t1;
            Detrt.join t2);
        check = (fun () -> Ok ()) })

let all : entry list =
  [ { scen = bb "bb-sem" (module Bb_sem); expect = Pass };
    { scen = bb "bb-mon" (module Bb_mon); expect = Pass };
    { scen =
        bb_sized "bb-sem-small" (module Bb_sem) ~capacity:1 ~producers:1
          ~consumers:1 ~items:2;
      expect = Pass };
    { scen =
        rw_excl "rw-mon-excl" (module Rw_mon.Readers_prio) ~readers:2
          ~writers:1 ~ops:1;
      expect = Pass };
    { scen = storm_bb_sem (); expect = Pass };
    { scen = rw_handoff "rw-fig1" (module Rw_path.Fig1); expect = Fail };
    { scen = rw_handoff "rw-fig2" (module Rw_path.Fig2); expect = Pass };
    { scen = rw_handoff "rw-mon" (module Rw_mon.Readers_prio); expect = Pass };
    { scen = rw_handoff "rw-ser" (module Rw_ser.Readers_prio); expect = Pass };
    { scen = fcfs "fcfs-mon-hoare" (module Fcfs_mon) ~variant:"hoare";
      expect = Pass };
    { scen = fcfs "fcfs-mon-mesa" (module Fcfs_mon.Mesa) ~variant:"mesa";
      expect = Pass };
    { scen = fcfs "fcfs-sem" (module Fcfs_sem) ~variant:""; expect = Pass };
    { scen = bakery_excl ~tasks:2 ~rounds:1; expect = Pass };
    { scen = ticket_excl ~tasks:2 ~rounds:2; expect = Pass };
    { scen = mcs_excl ~tasks:2 ~rounds:1; expect = Pass };
    { scen = clh_excl ~tasks:2 ~rounds:1; expect = Pass };
    { scen = qticket_excl ~tasks:2 ~rounds:2; expect = Pass };
    { scen = swap_excl ~tasks:1 ~rounds:1 ~flips:1; expect = Pass };
    { scen = swap_excl_norecheck ~tasks:1 ~rounds:1 ~flips:1; expect = Fail };
    { scen = naive_rw_excl ~tasks:2 ~rounds:1; expect = Fail };
    { scen = ticket_sem_handoff ~tasks:3; expect = Pass };
    { scen = deadlock; expect = Fail } ]

let find name = List.find_opt (fun e -> e.scen.Detsched.name = name) all
