lib/pathexpr/ast.mli: Format
