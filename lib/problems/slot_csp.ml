(** One-slot buffer in message-passing style: the server's {e control
    flow} is the history — it alternates between accepting a put and
    serving a get, so no flag is needed at all. Message passing expresses
    history information as directly as path expressions do. *)

open Sync_csp
open Sync_taxonomy

type t = {
  net : Csp.network;
  put_ch : (int * int) Csp.Channel.t;
  get_ch : (int * int Csp.Channel.t) Csp.Channel.t;
  stop_ch : unit Csp.Channel.t;
  server : Sync_platform.Process.t;
}

let mechanism = "csp"

let create ~put ~get =
  let net = Csp.network () in
  let put_ch = Csp.Channel.create ~name:"slot-put" net in
  let get_ch = Csp.Channel.create ~name:"slot-get" net in
  let stop_ch = Csp.Channel.create ~name:"slot-stop" net in
  let server =
    Sync_platform.Process.spawn ~backend:`Thread (fun () ->
      (* A dead server must not strand parked clients: poison on abort. *)
      try
        let running = ref true in
        while !running do
          (* Empty state: only a put (or stop) is acceptable. *)
          match
            Csp.select
              [ Csp.recv_case put_ch (fun r -> `Put r);
                Csp.recv_case stop_ch (fun () -> `Stop) ]
          with
          | `Stop -> running := false
          | `Put (pid, v) ->
            put ~pid v;
            (* Full state: only a get is acceptable. *)
            let gpid, reply = Csp.recv get_ch in
            Csp.send reply (get ~pid:gpid)
        done
      with e ->
        Csp.poison net e;
        raise e)
  in
  { net; put_ch; get_ch; stop_ch; server }

let put t ~pid v = Csp.send t.put_ch (pid, v)

let get t ~pid =
  let reply = Csp.Channel.create ~name:"slot-reply" t.net in
  Csp.send t.get_ch (pid, reply);
  Csp.recv reply

let stop t =
  Csp.send t.stop_ch ();
  Sync_platform.Process.join t.server

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation", [ "recv(put)"; "then"; "recv(get)"; "loop" ]);
        ("slot-access-exclusion", [ "sequential"; "server"; "process" ]) ]
    ~info_access:[ (Info.History, Meta.Direct); (Info.Sync_state, Meta.Direct) ]
    ~separation:Meta.Enforced ()
