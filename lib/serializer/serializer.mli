(** Serializers [Atkinson-Hewitt'79].

    A serializer is a possession-based region like a monitor, with three
    differences that the paper's evaluation turns on:

    - {b Automatic signalling}: there is no [signal]. A process parks with
      [enqueue q ~until:guard]; whenever possession is released (region
      exit, another [enqueue], or [join_crowd]), the serializer re-evaluates
      the guards of all {e queue heads} and transfers possession to the
      eligible waiter that has been waiting longest. Guards are therefore
      re-checked only at possession-release points, and a resumed process
      may assume its guard holds.
    - {b Queues are strictly FIFO} (or priority-ordered): only the head of
      a queue is eligible to leave it. Processes waiting for {e different}
      conditions can share one queue — this is how serializers dissolve the
      monitor's request-type/request-time conflict (§5.2): order is kept by
      the shared queue, types are distinguished by their guards.
    - {b Crowds} record the processes currently accessing the resource.
      [join_crowd c ~body] adds the caller to [c], releases possession,
      runs [body] (the actual resource operation) outside the serializer,
      then re-gains possession and leaves [c]. Guards typically test
      [Crowd.is_empty]. This both replaces the explicit counts monitors
      need (synchronization-state information) and bakes in the Section-2
      resource/synchronizer structure, avoiding nested-call deadlocks.

    Guards run under the serializer's internal lock: they must be quick,
    non-blocking, and touch only synchronizer state (crowd/queue tests,
    local counters mutated while holding possession). *)

type t

val abort_policy : Sync_platform.Fault.abort_policy
(** [`Propagate]: an abort inside the region or while parked unwinds to
    the caller with possession handed on and queues/crowds consistent. A
    {e guard} that raises is special-cased — guards run in whichever
    process is releasing possession, so instead of failing that innocent
    process the waiter is marked poisoned, woken, and re-raises the
    guard's exception from its own [enqueue] after passing possession
    on. *)

val create : unit -> t

val with_serializer : t -> (unit -> 'a) -> 'a
(** Gain possession (FIFO behind other entrants), run the body, release
    (triggering guard re-evaluation). Exception-safe. *)

val inside : t -> bool
(** Whether the calling context currently holds possession — approximated
    as "some process holds possession"; for assertions in tests. *)

(** FIFO / priority event queues. *)
module Queue : sig
  type serializer := t

  type t

  val create : ?name:string -> serializer -> t

  val name : t -> string

  val length : t -> int

  val is_empty : t -> bool

  val guard_length : t -> int
  (** Like {!length} but without taking the serializer's internal lock —
      for use {e inside guards only}, which already run under that lock
      (taking it again would self-deadlock). *)

  val guard_is_empty : t -> bool
end

(** Crowds: the set of processes currently executing a resource
    operation. *)
module Crowd : sig
  type serializer := t

  type t

  val create : ?name:string -> serializer -> t

  val name : t -> string

  val count : t -> int

  val is_empty : t -> bool
end

val enqueue : ?rank:int -> Queue.t -> until:(unit -> bool) -> unit
(** Must be called with possession. Parks the caller on the queue (ordered
    by [rank], default 0, then arrival; only the head is eligible),
    releases possession, and returns once the guard held at a release
    point and possession was transferred back. *)

val join_crowd : Crowd.t -> body:(unit -> 'a) -> 'a
(** Must be called with possession. Runs [body] outside the serializer as
    a member of the crowd, then re-gains possession. If [body] raises, the
    crowd is still left before the exception propagates. *)
