open Sync_platform

type interval = {
  pid : int;
  op : string;
  arg : int;
  ret : int;
  request : int;
  enter : int;
  exit_ : int;
}

type pending = {
  mutable p_request : int;
  mutable p_enter : int;
  mutable p_arg : int;
}

let intervals events =
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let get_pending pid =
    match Hashtbl.find_opt pending pid with
    | Some p -> p
    | None ->
      let p = { p_request = -1; p_enter = -1; p_arg = 0 } in
      Hashtbl.add pending pid p;
      p
  in
  List.iter
    (fun (e : Trace.event) ->
      match e.phase with
      | Trace.Mark -> ()
      | Trace.Request ->
        let p = get_pending e.pid in
        p.p_request <- e.seq
      | Trace.Enter ->
        let p = get_pending e.pid in
        if p.p_enter >= 0 then
          invalid_arg
            (Printf.sprintf "Ivl.intervals: nested Enter for pid %d" e.pid);
        p.p_enter <- e.seq;
        p.p_arg <- e.arg
      | Trace.Exit ->
        let p = get_pending e.pid in
        if p.p_enter < 0 then
          invalid_arg
            (Printf.sprintf "Ivl.intervals: Exit without Enter for pid %d"
               e.pid);
        out :=
          { pid = e.pid; op = e.op; arg = p.p_arg; ret = e.arg;
            request = p.p_request; enter = p.p_enter; exit_ = e.seq }
          :: !out;
        p.p_enter <- -1;
        p.p_request <- -1)
    events;
  List.sort (fun a b -> compare a.enter b.enter) !out

let check_wellformed events =
  let inside : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let bad = ref None in
  List.iter
    (fun (e : Trace.event) ->
      if !bad = None then
        match e.phase with
        | Trace.Mark | Trace.Request -> ()
        | Trace.Enter ->
          if Hashtbl.mem inside e.pid then
            bad :=
              Some
                (Printf.sprintf "pid %d: Enter %s while still inside %s" e.pid
                   e.op (Hashtbl.find inside e.pid))
          else Hashtbl.add inside e.pid e.op
        | Trace.Exit ->
          if not (Hashtbl.mem inside e.pid) then
            bad :=
              Some
                (Printf.sprintf "pid %d: Exit %s without a matching Enter"
                   e.pid e.op)
          else Hashtbl.remove inside e.pid)
    events;
  match !bad with
  | Some msg -> Error ("malformed trace: " ^ msg)
  | None -> (
    let stuck = Hashtbl.fold (fun pid op acc -> (pid, op) :: acc) inside [] in
    match List.sort compare stuck with
    | [] -> Ok ()
    | (pid, op) :: _ ->
      Error
        (Printf.sprintf
           "malformed trace: pid %d: unmatched Enter for %s (no Exit \
            recorded)"
           pid op))

let overlap a b = a.enter < b.exit_ && b.enter < a.exit_

let exclusion_violations ~conflicts ivls =
  (* Sweep in enter order, keeping the active set. *)
  let rec sweep active acc = function
    | [] -> List.rev acc
    | i :: rest ->
      let active = List.filter (fun a -> a.exit_ > i.enter) active in
      let clashes =
        List.filter (fun a -> conflicts a.op i.op && overlap a i) active
      in
      let acc = List.fold_left (fun acc a -> (a, i) :: acc) acc clashes in
      sweep (i :: active) acc rest
  in
  sweep [] [] ivls

let max_concurrency ~op ivls =
  let points =
    List.concat_map
      (fun i -> if i.op = op then [ (i.enter, 1); (i.exit_, -1) ] else [])
      ivls
  in
  let points = List.sort compare points in
  let _, maxc =
    List.fold_left
      (fun (cur, maxc) (_, d) ->
        let cur = cur + d in
        (cur, max cur maxc))
      (0, 0) points
  in
  maxc

let fifo_violations ivls =
  let with_request = List.filter (fun i -> i.request >= 0) ivls in
  let rec pairs acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let late =
        List.filter (fun b -> b.request < a.request && a.enter < b.enter) rest
      in
      pairs (List.fold_left (fun acc b -> (a, b) :: acc) acc late) rest
  in
  pairs [] with_request

let grant_order ~op ivls =
  List.filter_map (fun i -> if i.op = op then Some i.arg else None) ivls
