(** Conditional critical regions, after Hoare's "Towards a theory of
    parallel programming" and Brinch Hansen's {e Operating System
    Principles} (the paper's reference [6]):

    {v region v when B do S v}

    A shared variable may only be touched inside a region; a region with
    a [when] guard blocks until the guard holds, evaluated under mutual
    exclusion and re-evaluated whenever some region over the same
    variable completes.

    Evaluation notes (this mechanism is scored with the same methodology
    as the paper's three — see the E3 matrix): local state is the one
    category CCRs reach {e directly} (guards read the shared variable);
    everything else — request order, types, parameters, priorities — must
    be encoded in auxiliary fields of the shared variable (tickets,
    counts, flags). There is no ordering guarantee among waiters whose
    guards become true together (wakeup is broadcast + re-check), which
    is why the FCFS solutions below carry explicit ticket fields. *)

val abort_policy : Sync_platform.Fault.abort_policy
(** [`Propagate]: a raising guard or body unwinds to the caller with the
    region lock released, the blocked count restored, and (after a body
    abort) a broadcast so other guards re-test state the aborted body may
    have half-changed. *)

type 'a t
(** A shared variable of type ['a] protected by a critical region. *)

val create : 'a -> 'a t

val region : ?when_:('a -> bool) -> 'a t -> ('a -> 'b) -> 'b
(** [region ~when_ v f] blocks until the guard holds (default: always),
    then runs [f state] under mutual exclusion. Completion re-awakens all
    blocked guards of [v]. Guards must be pure reads of the state. If [f]
    raises, the region is released and waiters are still re-awakened. *)

val await : 'a t -> ('a -> bool) -> unit
(** [await v p] is [region ~when_:p v ignore]: block until [p] holds. *)

val waiters : 'a t -> int
(** Processes currently blocked on guards (racy; for tests). *)
