lib/platform/clock.mli:
