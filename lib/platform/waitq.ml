module Probe = Sync_trace.Probe

type 'a waiter = {
  tag : 'a;
  cond : Condition.t;
  mutable released : bool;
  seq : int;
}

type 'a t = {
  mutable waiters : 'a waiter list; (* arrival order, oldest first *)
  mutable next_seq : int;
  (* Watchdog resource id; -1 when the watchdog was off at creation. *)
  qrid : int;
  name : string; (* trace site for wait/handoff/signal events *)
}

let create ?(name = "waitq") () =
  { waiters = []; next_seq = 0;
    qrid =
      (if Deadlock.enabled () then Deadlock.register ~kind:"waitq" ()
       else -1);
    name }

let length t = List.length t.waiters

let is_empty t = t.waiters = []

let remove t w = t.waiters <- List.filter (fun w' -> w' != w) t.waiters

let enqueue t tag =
  let w =
    { tag; cond = Condition.create (); released = false; seq = t.next_seq }
  in
  t.next_seq <- t.next_seq + 1;
  t.waiters <- t.waiters @ [ w ];
  w

(* The ["waitq.pre-wait"] fault site fires before the caller is enqueued,
   so an injected abort leaves the queue untouched; the caller's own
   unwind (Mutex.protect etc.) releases the mechanism lock.
   ["waitq.post-wakeup"] fires after a wake was consumed: the grant (a
   semaphore unit, monitor ownership, ...) is already ours, so the owner
   mechanism passes [on_abort] to re-route it — called under the lock —
   before the abort propagates. *)
let post_wakeup on_abort =
  match Fault.site "waitq.post-wakeup" with
  | () -> ()
  | exception e ->
    (match on_abort with Some f -> f () | None -> ());
    raise e

let wait ?on_abort t ~lock tag =
  Fault.site "waitq.pre-wait";
  let t0 = Probe.now () in
  let depth = if t0 = 0 then 0 else List.length t.waiters in
  let w = enqueue t tag in
  if t.qrid >= 0 then Deadlock.blocked t.qrid;
  if not w.released then begin
    Condition.wait w.cond lock;
    while not w.released do
      (* Woken but not released: a spurious wakeup, absorbed here. *)
      Probe.instant Spurious ~site:t.name ~arg:0;
      Condition.wait w.cond lock
    done
  end;
  if t.qrid >= 0 then Deadlock.unblocked ();
  Probe.span Wait ~site:t.name ~since:t0 ~arg:depth;
  post_wakeup on_abort

let wait_for ?on_abort t ~lock ~deadline tag =
  Fault.site "waitq.pre-wait";
  let t0 = Probe.now () in
  let depth = if t0 = 0 then 0 else List.length t.waiters in
  let w = enqueue t tag in
  if t.qrid >= 0 then Deadlock.blocked t.qrid;
  let rec park () =
    if w.released then true
    else if Condition.wait_for w.cond lock ~deadline then park ()
    else w.released (* expired: final re-check, under the lock *)
  in
  let granted = park () in
  if t.qrid >= 0 then Deadlock.unblocked ();
  if granted then begin
    Probe.span Wait ~site:t.name ~since:t0 ~arg:depth;
    post_wakeup on_abort;
    true
  end
  else begin
    (* Cancel: unhook ourselves so a waker never picks a gone waiter. *)
    remove t w;
    if t0 <> 0 then Probe.instant Abandon ~site:t.name ~arg:(Probe.now () - t0);
    false
  end

let tags t = List.map (fun w -> w.tag) t.waiters

let release t w =
  remove t w;
  w.released <- true;
  if Probe.enabled () then
    Probe.instant Handoff ~site:t.name ~arg:(List.length t.waiters);
  Condition.signal w.cond

let wake_first t =
  match t.waiters with
  | [] -> false
  | w :: _ ->
    release t w;
    true

let wake_first_matching t ~f =
  match List.find_opt (fun w -> f w.tag) t.waiters with
  | None -> false
  | Some w ->
    release t w;
    true

let select_min t ~cmp =
  match t.waiters with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun best w ->
          let c = cmp w.tag best.tag in
          if c < 0 || (c = 0 && w.seq < best.seq) then w else best)
        first rest
    in
    Some best

let wake_min t ~cmp =
  match select_min t ~cmp with
  | None -> false
  | Some w ->
    release t w;
    true

(* Release up to [n] oldest waiters in one pass: the queue is split
   once, each waiter gets its flag flip + private signal, and a single
   batched Signal instant replaces [n] Handoff instants. V-storms thus
   pay one trace event and no repeated queue rescans. *)
let wake_n t n =
  if n <= 0 then 0
  else begin
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | w :: rest -> split (k - 1) (w :: acc) rest
    in
    let woken, rest = split n [] t.waiters in
    t.waiters <- rest;
    List.iter
      (fun w ->
        w.released <- true;
        Condition.signal w.cond)
      woken;
    let k = List.length woken in
    if k > 0 then Probe.instant Signal ~site:t.name ~arg:k;
    k
  end

let wake_all t = wake_n t max_int

let min_tag t ~cmp =
  match select_min t ~cmp with None -> None | Some w -> Some w.tag
