open Sync_platform

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)

let test_prng_deterministic () =
  let a = Prng.make 42L and b = Prng.make 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let r = Prng.make 7L in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done

let test_prng_split_independent () =
  let a = Prng.make 1L in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 b) in
  check_bool "streams differ" true (xs <> ys)

let test_prng_shuffle_permutation () =
  let r = Prng.make 3L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)

let test_heap_orders () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (Heap.to_list h);
  check_int "length" 5 (Heap.length h)

let test_heap_fifo_ties () =
  (* Equal keys must pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (k, _) (k', _) -> compare k k') () in
  List.iter (Heap.push h) [ (1, "a"); (0, "b"); (1, "c"); (0, "d") ];
  let order = List.map snd (Heap.to_list h) in
  Alcotest.(check (list string)) "fifo ties" [ "b"; "d"; "a"; "c" ] order

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:compare () in
  check_bool "empty" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap sorts like List.sort"
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      Heap.to_list h = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Waitq                                                              *)

let test_waitq_fifo () =
  let lock = Mutex.create () in
  let q : int Waitq.t = Waitq.create () in
  let j = Testutil.Journal.create () in
  let waiter i () =
    Mutex.lock lock;
    Waitq.wait q ~lock i;
    Mutex.unlock lock;
    Testutil.Journal.add j (string_of_int i)
  in
  let spawn_ordered i =
    let t = Testutil.spawn (waiter i) in
    Testutil.eventually "waiter parked" (fun () ->
        Mutex.lock lock;
        let n = Waitq.length q in
        Mutex.unlock lock;
        n = i + 1);
    t
  in
  let ts = List.init 3 spawn_ordered in
  for i = 1 to 3 do
    Mutex.lock lock;
    ignore (Waitq.wake_first q);
    Mutex.unlock lock;
    (* Wait for the woken thread to journal before waking the next, so the
       journal reflects wake order. *)
    Testutil.eventually "woken thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = i)
  done;
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "fifo wake order" [ "0"; "1"; "2" ]
    (Testutil.Journal.entries j)

let test_waitq_wake_min () =
  let lock = Mutex.create () in
  let q : int Waitq.t = Waitq.create () in
  let j = Testutil.Journal.create () in
  let waiter rank () =
    Mutex.lock lock;
    Waitq.wait q ~lock rank;
    Mutex.unlock lock;
    Testutil.Journal.add j (string_of_int rank)
  in
  let ranks = [ 5; 2; 9 ] in
  let ts =
    List.mapi
      (fun i rank ->
        let t = Testutil.spawn (waiter rank) in
        Testutil.eventually "parked" (fun () ->
            Mutex.lock lock;
            let n = Waitq.length q in
            Mutex.unlock lock;
            n = i + 1);
        t)
      ranks
  in
  Mutex.lock lock;
  Alcotest.(check (option int)) "min tag" (Some 2) (Waitq.min_tag q ~cmp:compare);
  Mutex.unlock lock;
  for i = 1 to 3 do
    Mutex.lock lock;
    ignore (Waitq.wake_min q ~cmp:compare);
    Mutex.unlock lock;
    Testutil.eventually "woken thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = i)
  done;
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "priority wake order" [ "2"; "5"; "9" ]
    (Testutil.Journal.entries j)

let test_waitq_wake_matching () =
  let lock = Mutex.create () in
  let q : string Waitq.t = Waitq.create () in
  let j = Testutil.Journal.create () in
  let waiter tag () =
    Mutex.lock lock;
    Waitq.wait q ~lock tag;
    Mutex.unlock lock;
    Testutil.Journal.add j tag
  in
  let ts =
    List.mapi
      (fun i tag ->
        let t = Testutil.spawn (waiter tag) in
        Testutil.eventually "parked" (fun () ->
            Mutex.lock lock;
            let n = Waitq.length q in
            Mutex.unlock lock;
            n = i + 1);
        t)
      [ "w"; "r1"; "r2" ]
  in
  let woken = ref 0 in
  let wake f =
    Mutex.lock lock;
    ignore (Waitq.wake_first_matching q ~f);
    Mutex.unlock lock;
    incr woken;
    let expected = !woken in
    Testutil.eventually "woken thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = expected)
  in
  wake (fun tag -> tag.[0] = 'r');
  wake (fun tag -> tag.[0] = 'r');
  wake (fun _ -> true);
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "matching order" [ "r1"; "r2"; "w" ]
    (Testutil.Journal.entries j)

(* ------------------------------------------------------------------ *)
(* Semaphores                                                         *)

let test_sem_counting_basic () =
  let s = Semaphore.Counting.create 2 in
  Semaphore.Counting.p s;
  Semaphore.Counting.p s;
  check_int "drained" 0 (Semaphore.Counting.value s);
  check_bool "try_p fails" false (Semaphore.Counting.try_p s);
  Semaphore.Counting.v s;
  check_bool "try_p succeeds" true (Semaphore.Counting.try_p s)

let test_sem_strong_fifo () =
  let s = Semaphore.Counting.create ~fairness:`Strong 0 in
  let j = Testutil.Journal.create () in
  let ts =
    List.init 4 (fun i ->
        let t =
          Testutil.spawn (fun () ->
              Semaphore.Counting.p s;
              Testutil.Journal.add j (string_of_int i))
        in
        Testutil.eventually "parked" (fun () ->
            Semaphore.Counting.waiters s = i + 1);
        t)
  in
  for i = 1 to 4 do
    Semaphore.Counting.v s;
    Testutil.eventually "granted thread journaled" (fun () ->
        List.length (Testutil.Journal.entries j) = i)
  done;
  List.iter Sync_platform.Process.join ts;
  Alcotest.(check (list string)) "fifo grants" [ "0"; "1"; "2"; "3" ]
    (Testutil.Journal.entries j)

let test_sem_mutual_exclusion_stress () =
  let s = Semaphore.Counting.create 1 in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Semaphore.Counting.p s;
      Testutil.Gauge.enter g;
      Thread.yield ();
      Testutil.Gauge.leave g;
      Semaphore.Counting.v s
    done
  in
  Testutil.run_all (List.init 4 (fun _ -> worker));
  check_int "never two inside" 1 (Testutil.Gauge.max g)

let test_sem_binary () =
  let s = Semaphore.Binary.create true in
  Semaphore.Binary.p s;
  check_int "closed" 0 (Semaphore.Binary.value s);
  Semaphore.Binary.v s;
  check_int "open" 1 (Semaphore.Binary.value s);
  Alcotest.check_raises "double v"
    (Invalid_argument "Semaphore.Binary.v: already open") (fun () ->
      Semaphore.Binary.v s)

(* ------------------------------------------------------------------ *)
(* Tsqueue, Latch, Barrier, Clock                                     *)

let test_tsqueue_fifo () =
  let q = Tsqueue.create () in
  List.iter (Tsqueue.push q) [ 1; 2; 3 ];
  check_int "len" 3 (Tsqueue.length q);
  check_int "pop" 1 (Tsqueue.pop q);
  Alcotest.(check (list int)) "drain" [ 2; 3 ] (Tsqueue.drain q);
  check_bool "empty" true (Tsqueue.try_pop q = None)

let test_tsqueue_blocking_pop () =
  let q = Tsqueue.create () in
  let got = Atomic.make 0 in
  let t = Testutil.spawn (fun () -> Atomic.set got (Tsqueue.pop q)) in
  Testutil.never "pop returns early" (fun () -> Atomic.get got <> 0);
  Tsqueue.push q 42;
  Sync_platform.Process.join t;
  check_int "received" 42 (Atomic.get got)

let test_tsqueue_pop_timeout () =
  let q : int Tsqueue.t = Tsqueue.create () in
  check_bool "times out" true
    (Tsqueue.pop_timeout q ~timeout_ns:10_000_000L = None)

let test_latch () =
  let l = Latch.create 3 in
  let done_ = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        Latch.wait l;
        Atomic.set done_ true)
  in
  Latch.arrive l;
  Latch.arrive l;
  Testutil.never "latch released early" (fun () -> Atomic.get done_);
  Latch.arrive l;
  Sync_platform.Process.join t;
  check_bool "released" true (Atomic.get done_);
  Alcotest.check_raises "extra arrive"
    (Invalid_argument "Latch.arrive: already at zero") (fun () ->
      Latch.arrive l)

let test_latch_wait_timeout () =
  let l = Latch.create 1 in
  check_bool "times out" false (Latch.wait_timeout l ~timeout_ns:20_000_000L);
  Latch.arrive l;
  check_bool "succeeds" true (Latch.wait_timeout l ~timeout_ns:20_000_000L)

let test_barrier_aligns () =
  let b = Latch.Barrier.create 3 in
  let counter = Atomic.make 0 in
  let seen_at_barrier = Tsqueue.create () in
  let worker () =
    ignore (Atomic.fetch_and_add counter 1);
    Latch.Barrier.await b;
    Tsqueue.push seen_at_barrier (Atomic.get counter);
    Latch.Barrier.await b
  in
  Testutil.run_all (List.init 3 (fun _ -> worker));
  List.iter
    (fun seen -> check_int "all arrived before any passed" 3 seen)
    (Tsqueue.drain seen_at_barrier)

let test_virtual_clock () =
  let c = Clock.Virtual.create () in
  check_int "starts at 0" 0 (Clock.Virtual.now c);
  let woke = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        Clock.Virtual.sleep_until c 5;
        Atomic.set woke true)
  in
  Testutil.eventually "sleeper registered" (fun () ->
      Clock.Virtual.sleepers c = 1);
  Clock.Virtual.advance c 4;
  Testutil.never "woke too early" (fun () -> Atomic.get woke);
  Clock.Virtual.advance c 1;
  Sync_platform.Process.join t;
  check_bool "woke" true (Atomic.get woke);
  check_int "now" 5 (Clock.Virtual.now c)

(* ------------------------------------------------------------------ *)
(* Process, Trace, Backoff                                            *)

let test_process_propagates_exception () =
  let t = Testutil.spawn (fun () -> failwith "boom") in
  Alcotest.check_raises "join re-raises" (Failure "boom") (fun () ->
      Sync_platform.Process.join t)

let test_process_domain_backend () =
  let hit = Atomic.make false in
  let t = Process.spawn ~backend:`Domain (fun () -> Atomic.set hit true) in
  Process.join t;
  check_bool "domain ran" true (Atomic.get hit)

let test_run_all_first_error () =
  Alcotest.check_raises "first error wins" (Failure "first") (fun () ->
      Testutil.run_all
        [ (fun () -> failwith "first"); (fun () -> failwith "second") ])

let test_trace_records_order () =
  let tr = Trace.create () in
  Trace.record tr ~pid:1 ~op:"read" ~phase:Trace.Request ();
  Trace.record tr ~pid:1 ~op:"read" ~phase:Trace.Enter ();
  Trace.record tr ~pid:1 ~op:"read" ~phase:Trace.Exit ~arg:7 ();
  let es = Trace.events tr in
  check_int "length" 3 (Trace.length tr);
  check_int "seqs dense" 0 (List.nth es 0).Trace.seq;
  check_int "arg kept" 7 (List.nth es 2).Trace.arg;
  Trace.clear tr;
  check_int "cleared" 0 (Trace.length tr)

let test_trace_concurrent_recording () =
  let tr = Trace.create () in
  let worker pid () =
    for _ = 1 to 100 do
      Trace.record tr ~pid ~op:"x" ~phase:Trace.Mark ()
    done
  in
  Testutil.run_all (List.init 4 (fun pid -> worker pid));
  let es = Trace.events tr in
  check_int "all recorded" 400 (List.length es);
  List.iteri (fun i e -> check_int "dense seq" i e.Trace.seq) es

let test_backoff_progresses () =
  let b = Backoff.create () in
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b

let () =
  Alcotest.run "platform"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_permutation ] );
      ( "heap",
        [ Alcotest.test_case "orders" `Quick test_heap_orders;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Testutil.qcheck_case prop_heap_sorts ] );
      ( "waitq",
        [ Alcotest.test_case "fifo" `Quick test_waitq_fifo;
          Alcotest.test_case "wake_min" `Quick test_waitq_wake_min;
          Alcotest.test_case "wake_matching" `Quick test_waitq_wake_matching
        ] );
      ( "semaphore",
        [ Alcotest.test_case "counting basic" `Quick test_sem_counting_basic;
          Alcotest.test_case "strong fifo" `Quick test_sem_strong_fifo;
          Alcotest.test_case "mutual exclusion stress" `Quick
            test_sem_mutual_exclusion_stress;
          Alcotest.test_case "binary" `Quick test_sem_binary ] );
      ( "queues",
        [ Alcotest.test_case "tsqueue fifo" `Quick test_tsqueue_fifo;
          Alcotest.test_case "tsqueue blocking pop" `Quick
            test_tsqueue_blocking_pop;
          Alcotest.test_case "tsqueue pop timeout" `Quick
            test_tsqueue_pop_timeout ] );
      ( "latch",
        [ Alcotest.test_case "latch" `Quick test_latch;
          Alcotest.test_case "wait_timeout" `Quick test_latch_wait_timeout;
          Alcotest.test_case "barrier aligns" `Quick test_barrier_aligns ] );
      ( "clock",
        [ Alcotest.test_case "virtual clock" `Quick test_virtual_clock ] );
      ( "process",
        [ Alcotest.test_case "exception propagates" `Quick
            test_process_propagates_exception;
          Alcotest.test_case "domain backend" `Quick
            test_process_domain_backend;
          Alcotest.test_case "run_all first error" `Quick
            test_run_all_first_error ] );
      ( "trace",
        [ Alcotest.test_case "records in order" `Quick
            test_trace_records_order;
          Alcotest.test_case "concurrent recording" `Quick
            test_trace_concurrent_recording ] );
      ( "backoff",
        [ Alcotest.test_case "progresses" `Quick test_backoff_progresses ] )
    ]
