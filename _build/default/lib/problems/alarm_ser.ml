(** Alarm clock with a serializer: sleepers enqueue ranked by deadline and
    guarded by their own captured deadline; each tick is a possession
    round-trip whose release re-evaluates the earliest sleeper — the
    automatic-signalling construct doing all of the monitor's [signal]
    work implicitly. *)

open Sync_serializer
open Sync_taxonomy

type t = {
  ser : Serializer.t;
  q : Serializer.Queue.t;
  mutable now : int;
}

let mechanism = "serializer"

let create () =
  let ser = Serializer.create () in
  { ser; q = Serializer.Queue.create ~name:"sleepers" ser; now = 0 }

let wakeme t ~pid n =
  ignore pid;
  Serializer.with_serializer t.ser (fun () ->
      let deadline = t.now + n in
      if t.now < deadline then
        Serializer.enqueue ~rank:deadline t.q ~until:(fun () ->
            t.now >= deadline))

let tick t = Serializer.with_serializer t.ser (fun () -> t.now <- t.now + 1)

let now t = Serializer.with_serializer t.ser (fun () -> t.now)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline", [ "until now>=deadline" ]);
        ("alarm-order", [ "enqueue rank=deadline" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Local_state, Meta.Direct) ]
    ~aux_state:[ "now counter" ]
    ~separation:Meta.Enforced ()
