lib/resources/ring.ml: Array Atomic Busywork
