lib/resources/disk.ml: Atomic Busywork
