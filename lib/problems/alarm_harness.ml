(** Workload driver and checker for the alarm clock.

    The driver registers a batch of sleepers at virtual time 0 (staggered
    with settle delays so registration completes before the first tick),
    then advances the clock one tick at a time. After every tick it waits
    for exactly the sleepers whose deadlines have passed and verifies no
    other sleeper woke early — an exact, deterministic conformance check
    of both constraints (wake no earlier than the deadline; deadline
    order respected tick by tick). Each sleep is also recorded as a trace
    interval ([Enter] before [wakeme], [Exit] on return) and the trace is
    checked for well-formedness. *)

open Sync_platform

let run_exact (module S : Alarm_intf.S) ?(durations = [ 3; 1; 4; 1; 5; 9; 2 ])
    ?settle () =
  let settle =
    match settle with
    | Some s -> s
    | None -> Testwait.settle_s ~default:0.01 ()
  in
  let trace = Trace.create () in
  let t = S.create () in
  let n = List.length durations in
  let done_ = Array.make n false in
  let done_lock = Mutex.create () in
  let is_done i =
    Mutex.lock done_lock;
    let d = done_.(i) in
    Mutex.unlock done_lock;
    d
  in
  let sleepers =
    List.mapi
      (fun i dur ->
        let p =
          Process.spawn ~backend:`Thread (fun () ->
              Trace.record trace ~pid:i ~op:"sleep" ~phase:Trace.Request
                ~arg:dur ();
              Trace.record trace ~pid:i ~op:"sleep" ~phase:Trace.Enter ~arg:dur
                ();
              S.wakeme t ~pid:i dur;
              Trace.record trace ~pid:i ~op:"sleep" ~phase:Trace.Exit ~arg:dur
                ();
              Mutex.lock done_lock;
              done_.(i) <- true;
              Mutex.unlock done_lock)
        in
        Thread.delay settle;
        p)
      durations
  in
  let horizon = List.fold_left max 0 durations in
  let result = ref (Ok ()) in
  (try
     for tick_no = 1 to horizon do
       S.tick t;
       List.iteri
         (fun i dur ->
           if dur <= tick_no then
             Testwait.until
               (Printf.sprintf "sleeper %d due at %d (tick %d)" i dur tick_no)
               (fun () -> is_done i))
         durations;
       List.iteri
         (fun i dur ->
           if dur > tick_no && is_done i && Result.is_ok !result then
             result :=
               Error
                 (Printf.sprintf
                    "sleeper %d (deadline %d) woke early at tick %d" i dur
                    tick_no))
         durations
     done
   with Failure msg -> result := Error msg);
  List.iter Process.join sleepers;
  S.stop t;
  match !result with
  | Error _ as e -> e
  | Ok () -> Ivl.check_wellformed (Trace.events trace)

let verify ?durations (module S : Alarm_intf.S) =
  match run_exact (module S) ?durations () with
  | r -> r
  | exception e -> Error ("exception: " ^ Printexc.to_string e)

(* A sleeper asking for zero ticks must return without any tick. *)
let verify_zero (module S : Alarm_intf.S) =
  let t = S.create () in
  let woke = ref false in
  let p =
    Process.spawn ~backend:`Thread (fun () ->
        S.wakeme t ~pid:0 0;
        woke := true)
  in
  match Testwait.until ~timeout:3.0 "zero-duration wake" (fun () -> !woke) with
  | () ->
    Process.join p;
    S.stop t;
    Ok ()
  | exception Failure msg ->
    S.stop t;
    Error msg
