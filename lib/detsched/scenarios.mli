(** Catalog of deterministic scenarios over the real mechanism
    implementations: bounded buffer (semaphore, monitor), the footnote-3
    writer-handoff situation (Figure 1 and 2 path expressions, monitor,
    serializer), FCFS drain order (Hoare monitor, Mesa ticket monitor,
    semaphore queue), and a deliberate lock-order-inversion deadlock.
    Entries marked [Fail] are the reproduced anomalies — exploration is
    expected to find failing schedules there and nowhere else. *)

type expectation = Pass | Fail

type entry = { scen : Detsched.t; expect : expectation }

val all : entry list

val find : string -> entry option
