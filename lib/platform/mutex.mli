(** Mutual-exclusion locks, deterministic-run aware.

    This module shadows the stdlib [Mutex] inside [Sync_platform] (and in
    every file that opens it). A mutex created during a {!Detrt} run is a
    virtual-task mutex whose blocking is controlled by the deterministic
    scheduler; anywhere else it is a plain system mutex. Mechanism code is
    written against the ordinary stdlib signature and needs no changes.

    When the {!Deadlock} watchdog is enabled at creation time the mutex
    reports its holder/waiter edges to the wait-for graph.

    The representation is exposed so that {!Condition} can pair det
    conditions with det mutexes; treat it as internal. *)

type impl = Sys of Stdlib.Mutex.t | Det of Detrt.mutex

type t = {
  impl : impl;
  rid : int;
  name : string;
  mutable acquired_at : int;
}

val create : ?name:string -> unit -> t
(** System mutex normally; deterministic mutex inside a {!Detrt} run.
    [name] (default ["mutex"]) is the trace site label: when tracing is
    on, [lock]/[unlock] emit acquire and hold spans against it. *)

val lock : t -> unit

val unlock : t -> unit

val try_lock : t -> bool
(** Non-blocking acquire. Under {!Detrt} the attempt is itself a recorded
    scheduling point, so the outcome replays with the schedule. *)

val try_lock_for : t -> timeout_ns:int64 -> bool
(** [try_lock_for t ~timeout_ns] polls {!try_lock} until it succeeds or
    the monotonic deadline passes; [true] iff the lock was acquired.
    Deterministic under {!Detrt} (the timeout becomes a poll budget, see
    {!Deadline}). *)

val protect : t -> (unit -> 'a) -> 'a
(** [protect m f] runs [f] with [m] held, releasing on any exit. *)
