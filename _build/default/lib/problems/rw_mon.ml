(** Readers-writers with Hoare monitors, one synchronizer per policy.

    - {!Readers_prio} and {!Writers_prio} follow Hoare'74's
      readers-writers style: a readercount plus a writing flag, two
      conditions ([oktoread]/[oktowrite]); the policies differ only in
      whose queue is consulted at release points and in whether arriving
      readers defer to waiting writers — which is the point: under
      monitors the priority constraint is a {e local} edit.
    - {!Fcfs} is the paper's Section-5.2 {b two-stage queue}: request-time
      and request-type information both want the condition queue, so
      arrivals first pass a ticket stage (a priority-wait on their ticket
      number), and only the head of that stage waits on its type-specific
      second-stage condition. *)

open Sync_monitor
open Sync_taxonomy

module Make_readers_prio (D : sig
  val discipline : Monitor.discipline

  val variant : string
end) =
struct
  type t = {
    mon : Monitor.t;
    oktoread : Monitor.Cond.t;
    oktowrite : Monitor.Cond.t;
    mutable readers : int;
    mutable writing : bool;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "monitor"

  let policy = Rw_intf.Readers_priority

  let create ~read ~write =
    let mon = Monitor.create ~discipline:D.discipline () in
    { mon; oktoread = Monitor.Cond.create mon;
      oktowrite = Monitor.Cond.create mon; readers = 0; writing = false;
      res_read = read; res_write = write }

  let read t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        (* Readers never wait unless a writer holds the resource: no test
           of the writer queue here. *)
        while t.writing do
          Monitor.Cond.wait t.oktoread
        done;
        t.readers <- t.readers + 1;
        (* Chain-admit the next queued reader (Hoare's cascade). *)
        Monitor.Cond.signal t.oktoread)
      ~after:(fun () ->
        t.readers <- t.readers - 1;
        if t.readers = 0 then Monitor.Cond.signal t.oktowrite)
      (fun () -> t.res_read ~pid)

  let write t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        while t.writing || t.readers > 0 do
          Monitor.Cond.wait t.oktowrite
        done;
        t.writing <- true)
      ~after:(fun () ->
        t.writing <- false;
        (* Readers first: the priority constraint lives in this line. *)
        if Monitor.Cond.queue t.oktoread then Monitor.Cond.signal t.oktoread
        else Monitor.Cond.signal t.oktowrite)
      (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers" ~variant:D.variant
      ~fragments:
        [ ("rw-exclusion",
           [ "readers"; "writing"; "while writing wait(oktoread)";
             "while writing||readers>0 wait(oktowrite)" ]);
          ("rw-priority",
           [ "if queue(oktoread) signal(oktoread) else signal(oktowrite)" ])
        ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:[ "readers count"; "writing flag" ]
      ~separation:Meta.Separated ()
end

module Readers_prio = Make_readers_prio (struct
  let discipline = `Hoare

  let variant = Rw_intf.policy_to_string Rw_intf.Readers_priority
end)

(* Discipline ablation: the identical synchronizer under Mesa
   signal-and-continue. The while-loop re-checks make it correct, and the
   guards (not the wake order) carry the policy, so even the strict
   handoff scenario still comes out reader-first. *)
module Readers_prio_mesa = Make_readers_prio (struct
  let discipline = `Mesa

  let variant = "readers-priority-mesa"
end)

module Writers_prio = struct
  type t = {
    mon : Monitor.t;
    oktoread : Monitor.Cond.t;
    oktowrite : Monitor.Cond.t;
    mutable readers : int;
    mutable writing : bool;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "monitor"

  let policy = Rw_intf.Writers_priority

  let create ~read ~write =
    let mon = Monitor.create ~discipline:`Hoare () in
    { mon; oktoread = Monitor.Cond.create mon;
      oktowrite = Monitor.Cond.create mon; readers = 0; writing = false;
      res_read = read; res_write = write }

  let read t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        (* Arriving readers defer to waiting writers: the only change
           against the readers-priority variant's exclusion test. *)
        while t.writing || Monitor.Cond.queue t.oktowrite do
          Monitor.Cond.wait t.oktoread
        done;
        t.readers <- t.readers + 1;
        Monitor.Cond.signal t.oktoread)
      ~after:(fun () ->
        t.readers <- t.readers - 1;
        if t.readers = 0 then Monitor.Cond.signal t.oktowrite)
      (fun () -> t.res_read ~pid)

  let write t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        while t.writing || t.readers > 0 do
          Monitor.Cond.wait t.oktowrite
        done;
        t.writing <- true)
      ~after:(fun () ->
        t.writing <- false;
        (* Writers first. *)
        if Monitor.Cond.queue t.oktowrite then Monitor.Cond.signal t.oktowrite
        else Monitor.Cond.signal t.oktoread)
      (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "readers"; "writing"; "while writing wait(oktoread)";
             "while writing||readers>0 wait(oktowrite)" ]);
          ("rw-priority",
           [ "queue(oktowrite) in reader admission";
             "if queue(oktowrite) signal(oktowrite) else signal(oktoread)" ])
        ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:[ "readers count"; "writing flag" ]
      ~separation:Meta.Separated ()
end

module Fcfs = struct
  type t = {
    mon : Monitor.t;
    turn : Monitor.Cond.t;     (* stage 1: tickets, priority-waited *)
    oktoread : Monitor.Cond.t;   (* stage 2, readers (head only) *)
    oktowrite : Monitor.Cond.t;  (* stage 2, writers (head only) *)
    mutable next_ticket : int;
    mutable serving : int;
    mutable readers : int;
    mutable writing : bool;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "monitor"

  let policy = Rw_intf.Fcfs

  let create ~read ~write =
    let mon = Monitor.create ~discipline:`Hoare () in
    { mon; turn = Monitor.Cond.create mon; oktoread = Monitor.Cond.create mon;
      oktowrite = Monitor.Cond.create mon; next_ticket = 0; serving = 0;
      readers = 0; writing = false; res_read = read; res_write = write }

  (* Stage 1: wait until my ticket is served; at most the head proceeds to
     stage 2. *)
  let await_turn t =
    let ticket = t.next_ticket in
    t.next_ticket <- t.next_ticket + 1;
    while ticket <> t.serving do
      Monitor.Cond.wait_pri t.turn ticket
    done

  let advance t =
    t.serving <- t.serving + 1;
    Monitor.Cond.signal t.turn

  let read t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        await_turn t;
        (* Stage 2: I am the admission head; wait for my type's condition
           without letting later arrivals pass (serving is not advanced
           until I am admitted). *)
        while t.writing do
          Monitor.Cond.wait t.oktoread
        done;
        t.readers <- t.readers + 1;
        advance t)
      ~after:(fun () ->
        t.readers <- t.readers - 1;
        if t.readers = 0 then Monitor.Cond.signal t.oktowrite)
      (fun () -> t.res_read ~pid)

  let write t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        await_turn t;
        while t.writing || t.readers > 0 do
          Monitor.Cond.wait t.oktowrite
        done;
        t.writing <- true;
        advance t)
      ~after:(fun () ->
        t.writing <- false;
        Monitor.Cond.signal t.oktoread;
        Monitor.Cond.signal t.oktowrite)
      (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "readers"; "writing"; "while writing wait(oktoread)";
             "while writing||readers>0 wait(oktowrite)" ]);
          ("rw-priority",
           [ "ticket"; "serving"; "wait_pri(turn,ticket)"; "two-stage";
             "advance" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect);
          (Info.Request_time, Meta.Direct) ]
      ~aux_state:
        [ "readers count"; "writing flag"; "ticket dispenser";
          "serving counter" ]
      ~separation:Meta.Separated ()
end
