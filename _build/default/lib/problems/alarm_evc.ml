(** Alarm clock with an eventcount: the clock IS an eventcount — [tick]
    advances it, [wakeme n] awaits value [now + n]. The time parameter is
    consumed directly by [await], the mechanism's native idiom. *)

open Sync_platform.Eventcount
open Sync_taxonomy

type t = { clock : Eventcount.t }

let mechanism = "eventcount"

let create () = { clock = Eventcount.create () }

let wakeme t ~pid n =
  ignore pid;
  Eventcount.await t.clock (Eventcount.read t.clock + n)

let tick t = Eventcount.advance t.clock

let now t = Eventcount.read t.clock

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline", [ "await(clock,now+n)" ]);
        ("alarm-order", [ "eventcount"; "monotone" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Local_state, Meta.Direct) ]
    ~separation:Meta.Separated ()
