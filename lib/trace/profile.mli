(** The contention profiler: aggregate a probe snapshot into per-site
    hold/wait-time histograms (reusing [Sync_metrics.Histogram]) and a
    wake-accounting report — signals issued vs. direct handoffs vs.
    spurious wakes vs. abandoned timed waits, plus the deepest queue
    observed. This is the part of E21 that answers {e why} a mechanism
    behaves as it does under load: where waiters queue, where hold time
    goes, which wakes were wasted. *)

type site_row = {
  site : string;
  kind : Probe.kind;
  count : int;
  total_ns : int;
  hist : Sync_metrics.Histogram.t;
}

type wake_report = {
  signals : int;
  handoffs : int;
  spurious : int;
  abandoned : int;
  flips : int;
  max_queue : int;
}

type t = {
  rows : site_row list;
  wake : wake_report;
  events : int;
  dropped : int;
}

val of_events : ?dropped:int -> Probe.event list -> t

val find_row : t -> site:string -> kind:Probe.kind -> site_row option

val pp : Format.formatter -> t -> unit

val to_json : t -> Sync_metrics.Emit.t
