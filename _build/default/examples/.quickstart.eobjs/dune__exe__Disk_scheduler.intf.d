examples/disk_scheduler.mli:
