(* E20: the recorded multicore performance baseline — plus the E21
   perf-sanity and trace-overhead modes CI runs on every push.

   Default mode runs the full closed-loop grid behind BENCH_E20.json —
   every full-coverage mechanism x {bounded buffer, readers-writers,
   FCFS} x domain counts {1, 2, 4} — on real OCaml 5 domains, printing
   the throughput/tail table as it goes and writing the machine-readable
   document at the end. The committed BENCH_E20.json is this program's
   output on the reference box; future performance work is judged
   against it.

   --sanity BASELINE.json runs a three-cell subset and gates on it:
   any self-check failure fails the run, and so does a cell-to-cell
   throughput *ratio* drifting more than 5x from the committed
   baseline's ratio for the same pair. Ratios, not absolute numbers:
   CI boxes are slower than the reference box in ways that cancel out
   between cells, while a contention regression in one mechanism does
   not. With --e22-baseline BENCH_E22.json the same gate additionally
   covers default-vs-fast tier pairs (E22): a fast-path cell whose
   ratio against its default twin drifts 5x from the committed grid —
   the fast tier silently degrading to (or past) the slow one, or a
   default cell regressing — fails CI the same way.

   --e22 runs the default-vs-fast grid (every cell twice, once per
   platform substrate tier) and writes the side-by-side document
   behind the committed BENCH_E22.json.

   --e25 runs the hardware-primitive hierarchy grid (every mechanism x
   problem cell rebuilt on each restricted atomic class — rw, cas, faa,
   llsc — plus native) and writes the scorecard document behind the
   committed BENCH_E25.json; unsupported cells are typed rows, any
   correctness failure fails the run. With --e25-baseline
   BENCH_E25.json the sanity gate additionally measures a small set of
   supported restricted-class cells and checks their cross-ratios
   against the committed hierarchy grid, so a primitive construction
   that silently collapses (or a native cell that regresses against the
   restricted ones) fails CI like any other drift.

   --e27 runs the self-tuning grid (each problem x arrival-process x
   domain cell on every static tier and on the adaptive tier, where a
   feedback controller retiers hot-swappable mutex sites live from the
   contention probes — tracing enabled for every row so the ratios are
   honest) plus the timer-wheel scaling rows (tick cost at 1k..1M
   pending alarms), and writes the document behind the committed
   BENCH_E27.json. The run fails if any cell misbehaves, if the
   adaptive row falls below the worst static tier anywhere, if the win
   rate against the best static tier drops under 0.8, or if the wheel's
   per-tick cost grows materially with the pending count. With
   --e27-baseline BENCH_E27.json the sanity gate additionally measures
   a default/fast/adaptive triple on one open-loop cell and checks the
   cross-ratios against the committed grid, so a controller regression
   that drags the adaptive tier down fails CI like any other drift.

   --e23 runs the scalable-lock grids (mechanism x problem cells on the
   MCS/CLH/ticket queue-lock tier — absent pairs are typed unsupported
   rows, never 0 ops/s cells — plus the epoch read-mostly
   readers-writers path at 1/2/4 domains under closed-loop think time)
   and writes the document behind the committed BENCH_E23.json; the run
   fails if any measured cell misbehaves or the epoch read throughput
   is not monotonic in the domain count. With --e23-baseline
   BENCH_E23.json the sanity gate additionally measures queue-tier
   cells and checks their cross-ratios against the committed grid.

   --scaling BENCH_E23.json is the blocking scaling-sanity gate: it
   checks the committed epoch rows for strictly increasing read
   throughput 1 -> 2 -> 4 domains, then re-measures the 1- and 4-domain
   epoch cells live and fails unless the 4-domain read throughput is
   strictly above the 1-domain one.

   --ab runs one hot cell twice — tracing disabled, then enabled — and
   reports the throughput delta, plus the disabled path against the
   committed baseline when one is given. The disabled path is the claim
   that matters: probes compiled around one atomic load must cost ~0.

   Knobs: SYNC_LOAD_MS shortens each cell's steady window (CI uses it);
   --out FILE (or a bare FILE argument) overrides the output path
   (default bench-load.json, BENCH_E20.json when regenerating the
   committed baseline). *)

open Sync_workload
module Emit = Sync_metrics.Emit
module Summary = Sync_metrics.Summary
module Probe = Sync_trace.Probe

(* The CI subset: two single-domain FCFS cells with different mechanisms
   (pure synchronizer cost) and one contended 4-domain buffer cell. *)
let sanity_cells =
  [ ("semaphore", "fcfs", 1); ("monitor", "fcfs", 1);
    ("ccr", "bounded-buffer", 4) ]

(* The E22 subset: the same cells on both substrate tiers, so every
   cross-ratio the gate checks includes default-vs-fast pairs. *)
let e22_sanity_cells =
  [ ("semaphore", "fcfs", 1, `Default); ("semaphore", "fcfs", 1, `Fast);
    ("ccr", "bounded-buffer", 4, `Default);
    ("ccr", "bounded-buffer", 4, `Fast) ]

(* The E25 subset: single-domain cells only (contended restricted-class
   cells are preemption-bound on small CI boxes), one per measured
   class, on a mechanism every class supports, plus the native twin the
   ratios anchor on. *)
let e25_sanity_cells =
  [ ("monitor", "fcfs", 1, `Default);
    ("monitor", "fcfs", 1, `Prim Sync_prims.Prims.CAS);
    ("monitor", "fcfs", 1, `Prim Sync_prims.Prims.FAA);
    ("monitor", "fcfs", 1, `Prim Sync_prims.Prims.LLSC) ]

(* The E23 subset: one single-domain cell per queue-lock kind on a
   monitor target (condition waits exercise the park-lot handoff), so
   the cross-ratios compare the three kinds against each other. *)
let e23_sanity_cells =
  [ ("monitor", "bounded-buffer", 1, Sync_prims.Queuelock.MCS);
    ("monitor", "bounded-buffer", 1, Sync_prims.Queuelock.CLH);
    ("monitor", "bounded-buffer", 1, Sync_prims.Queuelock.Ticket) ]

let cell_id (m, p, d) = Printf.sprintf "%s/%s d=%d" m p d

let tiered_id (m, p, d, tier) =
  Printf.sprintf "%s [%s]" (cell_id (m, p, d)) (Target.tier_name tier)

let run_cell ?(tier = `Default) ~duration_ms (mechanism, problem, domains) =
  match Target.create ~tier ~problem ~mechanism () with
  | Error e ->
    Printf.eprintf "sanity: %s\n" e;
    exit 2
  | Ok instance ->
    let cfg =
      { Loadgen.default_config with
        Loadgen.workers = domains;
        backend = `Domain;
        duration_ms;
        warmup_ms = 50 }
    in
    let s = (Loadgen.run instance cfg).Report.summary in
    (s.Summary.throughput_per_s, s.Summary.total_failures)

(* [tier = None] matches rows with no tier field too (the committed
   BENCH_E20.json predates tiers); [Some t] requires an exact match
   (BENCH_E22.json rows always carry one). *)
let baseline_throughput ?tier doc ~cell:(mechanism, problem, domains) =
  let field name r = Emit.member name r in
  let rows = Option.value ~default:Emit.Null (Emit.member "rows" doc) in
  List.find_map
    (fun r ->
      let tier_ok =
        match tier with
        | None -> true
        | Some t -> (
          match field "tier" r with
          | Some (Emit.Str s) -> s = Target.tier_name t
          | _ -> false)
      in
      match (field "mechanism" r, field "problem" r, field "domains" r) with
      | Some (Emit.Str m), Some (Emit.Str p), Some d
        when tier_ok && m = mechanism && p = problem
             && Emit.number d = Some (float_of_int domains) ->
        Option.bind (field "throughput_per_s" r) Emit.number
      | _ -> None)
    (Emit.to_list rows)

(* Supported rows of the committed hierarchy grid (BENCH_E25.json):
   keyed by class name — [`Default] measurements anchor on the
   unrestricted ["native"] rows. Unsupported/failed rows never match, so
   a baseline regenerated on a box where a cell stopped being supported
   surfaces as "missing from baseline", not a silent pass. *)
let e25_baseline_throughput doc ~cell:(mechanism, problem, domains, tier) =
  let cls_name =
    match tier with
    | `Prim c -> Sync_prims.Prims.cls_name c
    | _ -> "native"
  in
  let field name r = Emit.member name r in
  let rows = Option.value ~default:Emit.Null (Emit.member "rows" doc) in
  List.find_map
    (fun r ->
      match
        ( field "class" r, field "mechanism" r, field "problem" r,
          field "domains" r, field "status" r )
      with
      | ( Some (Emit.Str c), Some (Emit.Str m), Some (Emit.Str p), Some d,
          Some (Emit.Str st) )
        when c = cls_name && st = "supported" && m = mechanism && p = problem
             && Emit.number d = Some (float_of_int domains) ->
        Option.bind (field "throughput_per_s" r) Emit.number
      | _ -> None)
    (Emit.to_list rows)

(* Supported rows of the committed E23 queue grid (BENCH_E23.json),
   keyed by queue-lock kind. Typed unsupported rows never match. *)
let e23_baseline_throughput doc ~cell:(mechanism, problem, domains, kind) =
  let kind_name = Sync_prims.Queuelock.kind_name kind in
  let field name r = Emit.member name r in
  let rows = Option.value ~default:Emit.Null (Emit.member "queue_rows" doc) in
  List.find_map
    (fun r ->
      match
        ( field "kind" r, field "mechanism" r, field "problem" r,
          field "domains" r, field "status" r )
      with
      | ( Some (Emit.Str k), Some (Emit.Str m), Some (Emit.Str p), Some d,
          Some (Emit.Str st) )
        when k = kind_name && st = "supported" && m = mechanism && p = problem
             && Emit.number d = Some (float_of_int domains) ->
        Option.bind (field "throughput_per_s" r) Emit.number
      | _ -> None)
    (Emit.to_list rows)

(* Supported rows of the committed E27 adaptive grid (BENCH_E27.json),
   keyed by the full (problem, mechanism, arrival, domains, tier)
   coordinate. Failed rows never match. *)
let e27_baseline_throughput doc ~cell:(problem, mechanism, arrival, domains, tier)
    =
  let field name r = Emit.member name r in
  let rows = Option.value ~default:Emit.Null (Emit.member "rows" doc) in
  List.find_map
    (fun r ->
      match
        ( field "problem" r, field "mechanism" r, field "arrival" r,
          field "domains" r, field "tier" r, field "status" r )
      with
      | ( Some (Emit.Str p), Some (Emit.Str m), Some (Emit.Str a), Some d,
          Some (Emit.Str t), Some (Emit.Str st) )
        when st = "supported" && p = problem && m = mechanism && a = arrival
             && t = tier
             && Emit.number d = Some (float_of_int domains) ->
        Option.bind (field "throughput_per_s" r) Emit.number
      | _ -> None)
    (Emit.to_list rows)

let parse_baseline ~what file =
  try Emit.parse_file file
  with Sys_error e | Emit.Parse_error e ->
    Printf.eprintf "sanity: cannot read %s %s: %s\n" what file e;
    exit 2

(* One measured cell with its committed reference throughput. The gate
   below only ever compares ratios, so the group a cell came from (E20
   triple or E22 tier pair) does not matter. *)
let measure_cells ~failed cells =
  List.map
    (fun (id, run, lookup) ->
      let live, failures = run () in
      let base =
        match lookup () with
        | Some t -> t
        | None ->
          Printf.eprintf "sanity: %s missing from baseline\n" id;
          exit 2
      in
      Printf.printf "  %-34s %12.0f ops/s (baseline %12.0f)%s\n%!" id live
        base
        (if failures > 0 then
           Printf.sprintf "  %d SELF-CHECK FAILURE(S)" failures
         else "");
      if failures > 0 then failed := true;
      (id, live, base))
    cells

let check_drift ~factor ~failed cells =
  List.iteri
    (fun i (ci, li, bi) ->
      List.iteri
        (fun j (cj, lj, bj) ->
          if i < j then begin
            let live_ratio = li /. lj and base_ratio = bi /. bj in
            let drift = live_ratio /. base_ratio in
            let drift = if drift < 1.0 then 1.0 /. drift else drift in
            Printf.printf
              "  ratio %-34s / %-34s live %.3f baseline %.3f drift %.2fx\n%!"
              ci cj live_ratio base_ratio drift;
            if drift > factor then begin
              Printf.printf "    REGRESSION: drift exceeds %.0fx\n%!" factor;
              failed := true
            end
          end)
        cells)
    cells

let sanity ?e22_file ?e23_file ?e25_file ?e27_file baseline_file =
  let doc = parse_baseline ~what:"baseline" baseline_file in
  let duration_ms = Loadgen.duration_from_env ~default:200 in
  Printf.printf "perf sanity vs %s (%d ms per cell)\n%!" baseline_file
    duration_ms;
  let failed = ref false in
  let factor = 5.0 in
  let e20 =
    measure_cells ~failed
      (List.map
         (fun cell ->
           ( cell_id cell,
             (fun () -> run_cell ~duration_ms cell),
             fun () -> baseline_throughput doc ~cell ))
         sanity_cells)
  in
  check_drift ~factor ~failed e20;
  (match e22_file with
  | None -> ()
  | Some file ->
    let e22_doc = parse_baseline ~what:"E22 baseline" file in
    Printf.printf "fast-path sanity vs %s\n%!" file;
    let e22 =
      measure_cells ~failed
        (List.map
           (fun ((m, p, d, tier) as tc) ->
             ( tiered_id tc,
               (fun () -> run_cell ~tier ~duration_ms (m, p, d)),
               fun () ->
                 baseline_throughput ~tier e22_doc ~cell:(m, p, d) ))
           e22_sanity_cells)
    in
    check_drift ~factor ~failed e22);
  (match e25_file with
  | None -> ()
  | Some file ->
    let e25_doc = parse_baseline ~what:"E25 baseline" file in
    Printf.printf "primitive-hierarchy sanity vs %s\n%!" file;
    let e25 =
      measure_cells ~failed
        (List.map
           (fun ((m, p, d, tier) as tc) ->
             ( tiered_id (m, p, d, tier),
               (fun () -> run_cell ~tier ~duration_ms (m, p, d)),
               fun () -> e25_baseline_throughput e25_doc ~cell:tc ))
           e25_sanity_cells)
    in
    check_drift ~factor ~failed e25);
  (match e23_file with
  | None -> ()
  | Some file ->
    let e23_doc = parse_baseline ~what:"E23 baseline" file in
    Printf.printf "queue-lock sanity vs %s\n%!" file;
    let e23 =
      measure_cells ~failed
        (List.map
           (fun ((m, p, d, kind) as tc) ->
             ( tiered_id (m, p, d, `Queue kind),
               (fun () -> run_cell ~tier:(`Queue kind) ~duration_ms (m, p, d)),
               fun () -> e23_baseline_throughput e23_doc ~cell:tc ))
           e23_sanity_cells)
    in
    check_drift ~factor ~failed e23);
  (match e27_file with
  | None -> ()
  | Some file ->
    let e27_doc = parse_baseline ~what:"E27 baseline" file in
    Printf.printf "adaptive-tier sanity vs %s\n%!" file;
    (* One open-loop cell measured on default, fast and adaptive — the
       mini grid the cross-ratio gate reads. The rows come from the E27
       axis itself so the measurement (open loop, tracing on, live
       controller on the adaptive row) matches the committed grid. *)
    let module A = Sync_eval.Adaptive_axis in
    let spec =
      { (A.default_spec ()) with
        A.cells = [ ("bounded-buffer", "semaphore") ];
        arrivals = [ Loadgen.Poisson ];
        domains = [ 2 ];
        static_tiers = [ `Default; `Fast ];
        duration_ms }
    in
    let t = A.run spec in
    let e27 =
      List.map
        (fun (r : A.row) ->
          let id =
            Printf.sprintf "%s/%s %s d=%d [%s]" r.A.problem r.A.mechanism
              (Loadgen.arrival_name r.A.arrival)
              r.A.domains r.A.tier
          in
          (match r.A.status with
          | A.Supported -> ()
          | A.Failed e ->
            Printf.eprintf "sanity: %s failed: %s\n" id e;
            failed := true);
          let base =
            match
              e27_baseline_throughput e27_doc
                ~cell:
                  ( r.A.problem, r.A.mechanism,
                    Loadgen.arrival_name r.A.arrival, r.A.domains, r.A.tier )
            with
            | Some b -> b
            | None ->
              Printf.eprintf "sanity: %s missing from baseline\n" id;
              exit 2
          in
          Printf.printf "  %-40s %12.0f ops/s (baseline %12.0f)\n%!" id
            r.A.throughput_per_s base;
          (id, r.A.throughput_per_s, base))
        t.A.rows
    in
    check_drift ~factor ~failed e27);
  if !failed then begin
    Printf.printf "perf sanity FAILED\n%!";
    exit 1
  end
  else Printf.printf "perf sanity ok\n%!"

(* Tracing A/B: the hottest single-domain cell, best of three windows per
   arm so one scheduling hiccup doesn't decide the number. *)
let ab baseline_file out =
  let cell = ("semaphore", "fcfs", 1) in
  let duration_ms = Loadgen.duration_from_env ~default:200 in
  let best_of n f =
    let rec go n acc =
      if n = 0 then acc
      else begin
        let t, failures = f () in
        if failures > 0 then begin
          Printf.eprintf "ab: %d self-check failure(s)\n" failures;
          exit 1
        end;
        go (n - 1) (Float.max acc t)
      end
    in
    go n 0.0
  in
  Printf.printf "trace A/B on %s (best of 3 x %d ms per arm)\n%!"
    (cell_id cell) duration_ms;
  let off = best_of 3 (fun () -> run_cell ~duration_ms cell) in
  let on =
    best_of 3 (fun () ->
        (* Fresh rings per window: the run only pays for writing events,
           never for an unbounded snapshot. *)
        Probe.reset ();
        Probe.enable ();
        Fun.protect ~finally:Probe.disable (fun () ->
            run_cell ~duration_ms cell))
  in
  let overhead_pct = (off -. on) /. off *. 100.0 in
  Printf.printf
    "  tracing disabled %12.0f ops/s\n  tracing enabled  %12.0f ops/s\n  enabled overhead %.2f%%\n%!"
    off on overhead_pct;
  let baseline_delta =
    match baseline_file with
    | None -> None
    | Some file -> (
      match
        try Some (Emit.parse_file file) with Sys_error _ | Emit.Parse_error _ -> None
      with
      | None -> None
      | Some doc -> (
        match baseline_throughput doc ~cell with
        | None -> None
        | Some base ->
          let d = (base -. off) /. base *. 100.0 in
          Printf.printf "  disabled vs committed baseline: %.2f%%\n%!" d;
          Some d))
  in
  Emit.write_file out
    (Emit.Obj
       [ ( "trace_ab",
           Emit.Obj
             ([ ("cell", Emit.Str (cell_id cell));
                ("duration_ms", Emit.Int duration_ms);
                ("disabled_ops_per_s", Emit.Float off);
                ("enabled_ops_per_s", Emit.Float on);
                ("enabled_overhead_pct", Emit.Float overhead_pct) ]
             @
             match baseline_delta with
             | None -> []
             | Some d -> [ ("disabled_vs_baseline_pct", Emit.Float d) ]) ) ]);
  Printf.printf "wrote %s\n%!" out

let grid out =
  let spec = Sweep.default_baseline_spec () in
  Printf.printf
    "E20 baseline: %d mechanisms x %d problems x domains {%s}, %dms \
     steady (+%dms warmup) per cell, closed loop, seed %d\n\
     recommended domains on this box: %d\n\n%!"
    (List.length spec.Sweep.mechanisms)
    (List.length spec.Sweep.problems)
    (String.concat ", " (List.map string_of_int spec.Sweep.domain_counts))
    spec.Sweep.duration_ms spec.Sweep.warmup_ms spec.Sweep.seed
    (Domain.recommended_domain_count ());
  let progress (c : Sweep.cell) =
    let r = Sync_eval.Perf.row_of_cell c in
    Printf.printf "%-12s %-18s d=%d %12.0f ops/s  p99 %d ns\n%!"
      r.Sync_eval.Perf.mechanism r.Sync_eval.Perf.problem
      r.Sync_eval.Perf.domains r.Sync_eval.Perf.throughput_per_s
      r.Sync_eval.Perf.p99_ns
  in
  match Sweep.baseline ~progress spec with
  | Error e ->
    Printf.eprintf "baseline failed: %s\n" e;
    exit 1
  | Ok cells ->
    print_newline ();
    Sync_eval.Perf.pp Format.std_formatter (Sync_eval.Perf.of_cells cells);
    Sync_metrics.Emit.write_file out (Sweep.baseline_to_json spec cells);
    Printf.printf "\nwrote %s (%d cells)\n%!" out (List.length cells)

(* The E22 default-vs-fast grid: every (mechanism, problem, domains)
   cell twice — stdlib-backed tier, then the contention-adaptive fast
   tier — identical seed and windows, so adjacent rows isolate the
   substrate. *)
let e22_grid out =
  let spec = Sweep.default_e22_spec () in
  Printf.printf
    "E22 default-vs-fast grid: %d mechanisms x %d problems x domains {%s} \
     x 2 tiers, %dms steady (+%dms warmup) per cell, closed loop, seed %d\n\
     recommended domains on this box: %d\n\n%!"
    (List.length spec.Sweep.mechanisms)
    (List.length spec.Sweep.problems)
    (String.concat ", " (List.map string_of_int spec.Sweep.domain_counts))
    spec.Sweep.duration_ms spec.Sweep.warmup_ms spec.Sweep.seed
    (Domain.recommended_domain_count ());
  let progress (c : Sweep.cell) =
    let r = Sync_eval.Perf.row_of_cell c in
    Printf.printf "%-12s %-18s %-8s d=%d %12.0f ops/s  p99 %d ns\n%!"
      r.Sync_eval.Perf.mechanism r.Sync_eval.Perf.problem
      r.Sync_eval.Perf.tier r.Sync_eval.Perf.domains
      r.Sync_eval.Perf.throughput_per_s r.Sync_eval.Perf.p99_ns
  in
  match Sweep.e22 ~progress spec with
  | Error e ->
    Printf.eprintf "E22 grid failed: %s\n" e;
    exit 1
  | Ok cells ->
    (* Print the default -> fast speedup per cell: the number the
       acceptance gate (>= 1.3x on a contended 4-domain cell) reads. *)
    let throughput c =
      c.Sweep.report.Report.summary.Summary.throughput_per_s
    in
    print_newline ();
    List.iter
      (fun c ->
        let r = c.Sweep.report in
        if r.Report.tier = "fast" then
          let twin =
            List.find_opt
              (fun c' ->
                let r' = c'.Sweep.report in
                r'.Report.tier = "default"
                && r'.Report.mechanism = r.Report.mechanism
                && r'.Report.problem = r.Report.problem
                && c'.Sweep.domains = c.Sweep.domains)
              cells
          in
          match twin with
          | Some d when throughput d > 0.0 ->
            Printf.printf "%-12s %-18s d=%d fast/default %.2fx\n%!"
              r.Report.mechanism r.Report.problem c.Sweep.domains
              (throughput c /. throughput d)
          | _ -> ())
      cells;
    Sync_metrics.Emit.write_file out (Sweep.e22_to_json spec cells);
    Printf.printf "\nwrote %s (%d cells)\n%!" out (List.length cells)

(* The E25 hierarchy grid: every mechanism x problem target rebuilt on
   each restricted atomic class and the native substrate, typed
   unsupported rows for inexpressible cells, hard failure on any
   correctness violation. The committed BENCH_E25.json is this mode's
   output on the reference box. *)
let e25_grid out =
  let module H = Sync_eval.Hierarchy_axis in
  let spec = H.default_spec () in
  Printf.printf
    "E25 primitive-hierarchy grid: classes {%s} x %d problems x domains \
     {%s}, %dms steady (+%dms warmup) per cell, closed loop, seed %d\n\
     recommended domains on this box: %d\n\n%!"
    (String.concat ", "
       (List.map Sync_prims.Prims.cls_name spec.H.classes))
    (List.length spec.H.problems)
    (String.concat ", " (List.map string_of_int spec.H.domains))
    spec.H.duration_ms spec.H.warmup_ms spec.H.seed
    (Domain.recommended_domain_count ());
  let progress (r : H.row) =
    Printf.printf "%-7s %-12s %-18s d=%d  %s%s\n%!"
      (Sync_prims.Prims.cls_name r.H.cls)
      r.H.mechanism r.H.problem r.H.domains
      (H.status_string r.H.status)
      (match r.H.status with
      | H.Supported -> Printf.sprintf "  %12.0f ops/s" r.H.throughput_per_s
      | _ -> "")
  in
  let rows = H.run ~progress spec in
  print_newline ();
  H.pp Format.std_formatter rows;
  Emit.write_file out (H.to_json spec rows);
  Printf.printf "\nwrote %s (%d rows)\n%!" out (List.length rows);
  if not (H.all_ok rows) then begin
    Printf.printf "E25 grid has FAILED cells\n%!";
    exit 1
  end

(* The E23 scalable-lock grids: queue-tier cells (typed unsupported
   rows for absent pairs) plus the epoch scaling rows. The committed
   BENCH_E23.json is this mode's output on the reference box. *)
let e23_grid out =
  let module S = Sync_eval.Scaling_axis in
  let spec = S.default_spec () in
  Printf.printf
    "E23 scalable-lock grids: kinds {%s} x %d problems x %d mechanisms x \
     domains {%s}; epoch rows {%s} at domains {%s}, think %d us; %dms \
     steady (+%dms warmup) per cell, closed loop, seed %d\n\
     recommended domains on this box: %d\n\n%!"
    (String.concat ", " (List.map Sync_prims.Queuelock.kind_name spec.S.kinds))
    (List.length spec.S.problems)
    (List.length spec.S.mechanisms)
    (String.concat ", " (List.map string_of_int spec.S.domains))
    (String.concat ", " spec.S.epoch_mechanisms)
    (String.concat ", " (List.map string_of_int spec.S.epoch_domains))
    spec.S.think_us spec.S.duration_ms spec.S.warmup_ms spec.S.seed
    (Domain.recommended_domain_count ());
  let progress_queue (r : S.queue_row) =
    Printf.printf "%-7s %-12s %-18s d=%d  %s%s\n%!"
      (Sync_prims.Queuelock.kind_name r.S.kind)
      r.S.mechanism r.S.problem r.S.domains
      (S.status_string r.S.status)
      (match r.S.status with
      | S.Supported -> Printf.sprintf "  %12.0f ops/s" r.S.throughput_per_s
      | _ -> "")
  in
  let progress_epoch (r : S.epoch_row) =
    Printf.printf "epoch   %-12s d=%d  %s%s\n%!" r.S.e_mechanism r.S.e_domains
      (S.status_string r.S.e_status)
      (match r.S.e_status with
      | S.Supported -> Printf.sprintf "  %12.0f reads/s" r.S.e_read_per_s
      | _ -> "")
  in
  let t = S.run ~progress_queue ~progress_epoch spec in
  print_newline ();
  S.pp Format.std_formatter t;
  Emit.write_file out (S.to_json spec t);
  Printf.printf "\nwrote %s (%d queue rows, %d epoch rows)\n%!" out
    (List.length t.S.queue) (List.length t.S.epoch);
  if not (S.all_ok t) then begin
    Printf.printf "E23 grids have FAILED cells\n%!";
    exit 1
  end;
  if not (S.epoch_monotonic t) then begin
    Printf.printf
      "E23 epoch read throughput is NOT monotonic in the domain count\n%!";
    exit 1
  end

(* E27 wheel scaling: per-tick cost of the hierarchical timer wheel as
   the pending-alarm population grows 1k -> 1M. Every alarm is
   scheduled past the timed window (random deadlines spread over a
   2^24-tick span), so the measured ticks pay empty-bucket scans and
   level cascades but never a firing — the steady-state cost an alarm
   clock holding N sleepers pays per tick. O(1) amortized tick cost
   means the ns/tick column stays flat as pending grows 1000x; a
   scan-all-alarms implementation would show ~1000x. *)
let wheel_tick_ticks = 65_536

let wheel_tick_populations = [ 1_000; 10_000; 100_000; 1_000_000 ]

let wheel_tick_row pending =
  let module W = Sync_platform.Timerwheel in
  let w = W.create () in
  let rng = Random.State.make [| 0x5ca1ab1e + pending |] in
  let span = 1 lsl 24 in
  let warmup_ticks = 1_024 in
  let now_ns () = Int64.to_int (Monotonic_clock.now ()) in
  let t_add = now_ns () in
  for _ = 1 to pending do
    ignore
      (W.add w
         ~delay:(warmup_ticks + wheel_tick_ticks + 1 + Random.State.int rng span)
         ())
  done;
  let add_ns = now_ns () - t_add in
  (* A short untimed advance warms the bucket caches, and a full major
     collection keeps the GC debt of the million fresh alarm records
     from being paid inside the timed window — the timed ticks should
     measure the wheel, not the allocator's past. *)
  ignore (W.advance w ~ticks:warmup_ticks (fun _ () -> ()));
  Gc.full_major ();
  let t0 = now_ns () in
  let fired = W.advance w ~ticks:wheel_tick_ticks (fun _ () -> ()) in
  let tick_ns =
    float_of_int (now_ns () - t0) /. float_of_int wheel_tick_ticks
  in
  if fired <> 0 then begin
    Printf.eprintf "wheel scaling: %d alarms fired inside the timed window\n"
      fired;
    exit 2
  end;
  if W.pending w <> pending then begin
    Printf.eprintf "wheel scaling: pending %d after window, expected %d\n"
      (W.pending w) pending;
    exit 2
  end;
  (pending, float_of_int add_ns /. float_of_int pending, tick_ns)

(* Max/min per-tick cost across the populations: the flatness number
   the committed document records and the grid run gates on. *)
let wheel_tick_rows () =
  let rows = List.map wheel_tick_row wheel_tick_populations in
  let costs = List.map (fun (_, _, t) -> t) rows in
  let mn = List.fold_left Float.min Float.max_float costs in
  let mx = List.fold_left Float.max 0. costs in
  let ratio = if mn > 0. then mx /. mn else Float.infinity in
  (rows, ratio)

let wheel_tick_json rows ratio =
  Emit.Obj
    [ ("ticks_timed", Emit.Int wheel_tick_ticks);
      ("deadline_span_ticks", Emit.Int (1 lsl 24));
      ( "rows",
        Emit.List
          (List.map
             (fun (pending, add_ns, tick_ns) ->
               Emit.Obj
                 [ ("pending", Emit.Int pending);
                   ("add_ns_per_alarm", Emit.Float add_ns);
                   ("tick_ns", Emit.Float tick_ns) ])
             rows) );
      ("tick_cost_max_over_min", Emit.Float ratio) ]

(* The E27 self-tuning grid: every cell on every static tier and on the
   adaptive tier (tracing on throughout; the adaptive rows run under a
   live controller), plus the wheel scaling rows. The committed
   BENCH_E27.json is this mode's output on the reference box. *)
let e27_grid out =
  let module A = Sync_eval.Adaptive_axis in
  let spec = { (A.default_spec ()) with A.domains = [ 1; 2; 4 ] } in
  Printf.printf
    "E27 self-tuning grid: %d cells x arrivals {%s} x domains {%s} x \
     tiers {%s + adaptive}, %dms steady (+%dms warmup) per cell, open loop \
     at %.0f ops/s, tracing on, seed %d\n\
     recommended domains on this box: %d\n\n%!"
    (List.length spec.A.cells)
    (String.concat ", " (List.map Loadgen.arrival_name spec.A.arrivals))
    (String.concat ", " (List.map string_of_int spec.A.domains))
    (String.concat ", " (List.map Target.tier_name spec.A.static_tiers))
    spec.A.duration_ms spec.A.warmup_ms spec.A.rate_per_s spec.A.seed
    (Domain.recommended_domain_count ());
  let progress (r : A.row) =
    Printf.printf "%-16s %-10s %-8s d=%d %-9s %s%s\n%!" r.A.problem
      r.A.mechanism
      (Loadgen.arrival_name r.A.arrival)
      r.A.domains r.A.tier
      (match r.A.status with
      | A.Supported -> Printf.sprintf "%12.0f ops/s" r.A.throughput_per_s
      | A.Failed _ -> "")
      (A.status_string r.A.status |> fun s -> if s = "ok" then "" else "  " ^ s)
  in
  let t = A.run ~progress spec in
  print_newline ();
  A.pp Format.std_formatter t;
  Printf.printf "\nwheel scaling (%d timed ticks per population)\n%!"
    wheel_tick_ticks;
  let wheel_rows, wheel_ratio = wheel_tick_rows () in
  List.iter
    (fun (pending, add_ns, tick_ns) ->
      Printf.printf "  pending %8d  add %7.0f ns/alarm  tick %8.1f ns\n%!"
        pending add_ns tick_ns)
    wheel_rows;
  Printf.printf "  tick cost max/min across populations: %.2fx\n%!"
    wheel_ratio;
  let doc =
    match A.to_json spec t with
    | Emit.Obj fields ->
      Emit.Obj (fields @ [ ("wheel_tick", wheel_tick_json wheel_rows wheel_ratio) ])
    | j -> j
  in
  Emit.write_file out doc;
  Printf.printf "\nwrote %s (%d rows)\n%!" out (List.length t.A.rows);
  let failed = ref false in
  if not (A.all_ok t) then begin
    Printf.printf "E27 grid has FAILED cells\n%!";
    failed := true
  end;
  if not (A.never_worst ~slack:spec.A.never_worst_slack t) then begin
    Printf.printf
      "E27 adaptive tier fell below the worst static tier somewhere\n%!";
    failed := true
  end;
  if A.win_rate ~slack:spec.A.win_slack t < 0.8 then begin
    Printf.printf "E27 adaptive win rate below 0.8\n%!";
    failed := true
  end;
  (* 1000x more alarms for ~flat tick cost; 10x headroom over noise is
     still two orders of magnitude away from a linear scan. *)
  if wheel_ratio > 10.0 then begin
    Printf.printf "E27 wheel tick cost is NOT independent of pending count\n%!";
    failed := true
  end;
  if !failed then exit 1

(* Committed (domains, read_per_s) pairs of the supported epoch rows. *)
let committed_epoch_reads doc =
  let field name r = Emit.member name r in
  let rows = Option.value ~default:Emit.Null (Emit.member "epoch_rows" doc) in
  List.filter_map
    (fun r ->
      match
        ( field "mechanism" r, field "status" r, field "domains" r,
          field "read_per_s" r )
      with
      | ( Some (Emit.Str "epoch"), Some (Emit.Str "supported"), Some d,
          Some rate ) -> (
        match (Emit.number d, Emit.number rate) with
        | Some d, Some rate -> Some (int_of_float d, rate)
        | _ -> None)
      | _ -> None)
    (Emit.to_list rows)
  |> List.sort compare

(* The blocking scaling-sanity gate. Two checks: the committed epoch
   rows must climb strictly with the domain count, and a live 1-vs-4
   domain re-measurement must reproduce the direction (ratio-based, so
   slow CI boxes pass as long as reader entry actually scales). *)
let scaling file =
  let module S = Sync_eval.Scaling_axis in
  let doc = parse_baseline ~what:"E23 baseline" file in
  Printf.printf "scaling sanity vs %s\n%!" file;
  let failed = ref false in
  (match committed_epoch_reads doc with
  | ([] | [ _ ]) ->
    Printf.printf
      "  committed grid has fewer than two supported epoch rows\n%!";
    failed := true
  | (d0, r0) :: rest ->
    List.iter
      (fun (d, r) ->
        Printf.printf "  committed epoch d=%d %12.0f reads/s\n%!" d r)
      ((d0, r0) :: rest);
    let rec check (dp, rp) = function
      | [] -> ()
      | (d, r) :: rest ->
        if r <= rp then begin
          Printf.printf
            "  NOT MONOTONIC: d=%d (%.0f reads/s) <= d=%d (%.0f reads/s)\n%!"
            d r dp rp;
          failed := true
        end;
        check (d, r) rest
    in
    check (d0, r0) rest);
  let dflt = S.default_spec () in
  let spec =
    { dflt with
      S.kinds = [];
      problems = [];
      mechanisms = [];
      epoch_mechanisms = [ "epoch" ];
      epoch_domains = [ 1; 4 ];
      duration_ms = Loadgen.duration_from_env ~default:300 }
  in
  let t = S.run spec in
  let rate d =
    List.find_map
      (fun (r : S.epoch_row) ->
        if r.S.e_domains = d && r.S.e_status = S.Supported then
          Some r.S.e_read_per_s
        else None)
      t.S.epoch
  in
  (match (rate 1, rate 4) with
  | Some r1, Some r4 ->
    Printf.printf
      "  live epoch reads/s  d=1 %12.0f   d=4 %12.0f   ratio %.2fx\n%!" r1 r4
      (r4 /. r1);
    if not (r4 > r1) then begin
      Printf.printf
        "  REGRESSION: 4-domain read throughput not above 1-domain\n%!";
      failed := true
    end
  | _ ->
    List.iter
      (fun (r : S.epoch_row) ->
        Printf.printf "  live epoch d=%d: %s\n%!" r.S.e_domains
          (S.status_string r.S.e_status))
      t.S.epoch;
    failed := true);
  if !failed then begin
    Printf.printf "scaling sanity FAILED\n%!";
    exit 1
  end
  else Printf.printf "scaling sanity ok\n%!"

let () =
  let out = ref "bench-load.json" in
  let sanity_file = ref None in
  let ab_mode = ref false in
  let e22_mode = ref false in
  let e23_mode = ref false in
  let e25_mode = ref false in
  let e27_mode = ref false in
  let baseline_file = ref None in
  let e22_baseline = ref None in
  let e23_baseline = ref None in
  let e25_baseline = ref None in
  let e27_baseline = ref None in
  let scaling_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--out" :: f :: rest ->
      out := f;
      parse rest
    | "--sanity" :: f :: rest ->
      sanity_file := Some f;
      parse rest
    | "--ab" :: rest ->
      ab_mode := true;
      parse rest
    | "--e22" :: rest ->
      e22_mode := true;
      parse rest
    | "--e23" :: rest ->
      e23_mode := true;
      parse rest
    | "--e25" :: rest ->
      e25_mode := true;
      parse rest
    | "--e27" :: rest ->
      e27_mode := true;
      parse rest
    | "--scaling" :: f :: rest ->
      scaling_file := Some f;
      parse rest
    | "--baseline" :: f :: rest ->
      baseline_file := Some f;
      parse rest
    | "--e22-baseline" :: f :: rest ->
      e22_baseline := Some f;
      parse rest
    | "--e23-baseline" :: f :: rest ->
      e23_baseline := Some f;
      parse rest
    | "--e25-baseline" :: f :: rest ->
      e25_baseline := Some f;
      parse rest
    | "--e27-baseline" :: f :: rest ->
      e27_baseline := Some f;
      parse rest
    | [ f ] when not (String.length f > 0 && f.[0] = '-') -> out := f
    | a :: _ ->
      Printf.eprintf
        "usage: bench_load [--out FILE | FILE] [--sanity BASELINE.json \
         [--e22-baseline BENCH_E22.json] [--e23-baseline BENCH_E23.json] \
         [--e25-baseline BENCH_E25.json] [--e27-baseline BENCH_E27.json]] \
         [--scaling BENCH_E23.json] [--ab [--baseline BASELINE.json]] \
         [--e22] [--e23] [--e25] [--e27]\n\
        \  got %S\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!sanity_file, !scaling_file) with
  | Some f, _ ->
    sanity ?e22_file:!e22_baseline ?e23_file:!e23_baseline
      ?e25_file:!e25_baseline ?e27_file:!e27_baseline f
  | None, Some f -> scaling f
  | None, None ->
    if !ab_mode then ab !baseline_file !out
    else if !e22_mode then e22_grid !out
    else if !e23_mode then e23_grid !out
    else if !e25_mode then e25_grid !out
    else if !e27_mode then e27_grid !out
    else grid !out
