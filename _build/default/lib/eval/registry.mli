(** The solution registry: every (problem, mechanism, variant) solution in
    [sync_problems], with its metadata, its problem specification, and a
    machine conformance check.

    This is the mechanized version of the paper's test procedure: TR-211
    evaluated each mechanism by hand against the Section-4.1 test set;
    here {!Entry.verify} actually runs the solution under its problem's
    workloads and checkers. [expect_conformant = false] marks solutions
    that are {e faithful to a published artifact known to be wrong} (the
    Figure 1 path solution, footnote 3) or to a published solution weaker
    than Bloom's constraint reading (Courtois problem 1 under FIFO
    semaphores): for these the check must fail, and the harness treats
    that failure as the expected, paper-confirming outcome. *)

open Sync_taxonomy
open Sync_problems

type entry = {
  meta : Meta.t;
  spec : Spec.t;
  verify : unit -> (unit, string) result;
  expect_conformant : bool;
}

val all : entry list
(** Every registered solution, grouped by problem then mechanism. *)

val mechanisms : string list
(** Mechanism names with full problem coverage, in canonical presentation
    order. *)

val extension_mechanisms : string list
(** Mechanisms evaluated on a subset of the test suite because the rest
    is out of their expressive reach (eventcounts: no state-dependent
    scheduling) — itself a finding of the methodology (E15). *)

val problems : string list
(** Problem names (without variant) in the paper's order. *)

val by_mechanism : string -> entry list

val by_problem : string -> entry list

val find : problem:string -> variant:string -> mechanism:string -> entry option
