module Probe = Sync_trace.Probe

module Eventcount = struct
  type t = {
    lock : Mutex.t;
    moved : Condition.t;
    mutable count : int;
    mutable blocked : int;
  }

  let create ?(initial = 0) () =
    { lock = Mutex.create ~name:"evc.lock" (); moved = Condition.create ();
      count = initial; blocked = 0 }

  let read t =
    Mutex.lock t.lock;
    let n = t.count in
    Mutex.unlock t.lock;
    n

  let advance t =
    Mutex.lock t.lock;
    t.count <- t.count + 1;
    if Probe.enabled () && t.blocked > 0 then
      Probe.instant Signal ~site:"evc" ~arg:t.blocked;
    Condition.broadcast t.moved;
    Mutex.unlock t.lock

  let advance_to t n =
    Mutex.lock t.lock;
    if n > t.count then begin
      t.count <- n;
      if Probe.enabled () && t.blocked > 0 then
        Probe.instant Signal ~site:"evc" ~arg:t.blocked;
      Condition.broadcast t.moved
    end;
    Mutex.unlock t.lock

  let await t n =
    Mutex.lock t.lock;
    t.blocked <- t.blocked + 1;
    if t.count < n then begin
      let t0 = Probe.now () in
      Condition.wait t.moved t.lock;
      while t.count < n do
        (* Broadcast advanced the count, but not far enough for us. *)
        Probe.instant Spurious ~site:"evc" ~arg:0;
        Condition.wait t.moved t.lock
      done;
      Probe.span Wait ~site:"evc" ~since:t0 ~arg:t.blocked
    end;
    t.blocked <- t.blocked - 1;
    Mutex.unlock t.lock

  let waiters t =
    Mutex.lock t.lock;
    let n = t.blocked in
    Mutex.unlock t.lock;
    n
end

module Sequencer = struct
  type t = { lock : Mutex.t; mutable next : int }

  let create () = { lock = Mutex.create ~name:"seq.lock" (); next = 0 }

  let ticket t =
    Mutex.lock t.lock;
    let n = t.next in
    t.next <- n + 1;
    Mutex.unlock t.lock;
    n
end
