lib/platform/backoff.mli:
