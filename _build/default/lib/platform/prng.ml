type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
