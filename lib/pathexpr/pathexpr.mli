(** Path expressions [Campbell-Habermann'74] — the public entry point.

    A {e path system} is compiled from one or more [path ... end]
    declarations; thereafter each resource operation is executed through
    {!run}, which blocks the caller until the operation may begin under
    every declaration and releases successors when it completes. Following
    the paper's Section 5.1 assumption, selection always admits the
    longest-waiting process.

    {[
      let rw = Pathexpr.of_string "path { read } , write end" in
      Pathexpr.run rw "read" (fun () -> ...)   (* concurrent with reads *)
      Pathexpr.run rw "write" (fun () -> ...)  (* exclusive *)
    ]} *)

exception Unsupported of string
(** See {!Compile.Unsupported}; re-exported for users. *)

exception Unknown_operation of string
(** {!run} was given an operation named in no declaration. *)

val abort_policy : Sync_platform.Fault.abort_policy
(** [`Rollback]: if entry aborts while blocked partway through the
    prologues of a multi-declaration operation, or the {e body} raises,
    the tokens consumed by the completed prologues are returned (newest
    first, via {!Compile.wrapped.undo}) so the path state is as if the
    operation never started (see {!run}). *)

type engine_kind = [ `Semaphore | `Gate ]

type t

val compile :
  ?engine:engine_kind -> ?env:(string * (unit -> bool)) list -> Ast.spec -> t
(** [compile spec] builds a fresh path system. [engine] defaults to
    [`Semaphore] (the classic translation); use [`Gate] for specs with
    predicates. [env] binds predicate names. *)

val of_string :
  ?engine:engine_kind -> ?env:(string * (unit -> bool)) list -> string -> t
(** Parse then {!compile}.
    @raise Parser.Syntax_error on malformed input. *)

val run : t -> string -> (unit -> 'a) -> 'a
(** [run t op body] waits until [op] is permitted, runs [body], then
    advances the path state. If [body] raises, the path state is rolled
    back (the operation counts as never having started) and the exception
    is re-raised. *)

val ops : t -> string list
(** Operations named in the spec, in first-appearance order. *)

val spec : t -> Ast.spec

val engine_name : t -> string
