(** FCFS disk access — the {e baseline} the elevator is measured against
    (bench E-disk: arm travel under SCAN vs arrival order). Not a SCAN
    solution; it deliberately ignores the track parameter. *)

open Sync_platform
open Sync_taxonomy

type t = { sem : Semaphore.Counting.t; res_access : pid:int -> int -> unit }

let mechanism = "semaphore-fcfs-baseline"

let create ~tracks ~access =
  ignore tracks;
  { sem = Semaphore.Counting.create ~fairness:`Strong 1; res_access = access }

let access t ~pid track =
  Semaphore.Counting.p t.sem;
  Fun.protect
    ~finally:(fun () -> Semaphore.Counting.v t.sem)
    (fun () -> t.res_access ~pid track)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler" ~variant:"fcfs-baseline"
    ~fragments:
      [ ("disk-exclusion", [ "P(s)"; "V(s)" ]); ("disk-scan-order", []) ]
    ~info_access:
      [ (Info.Parameters, Meta.Unsupported); (Info.Sync_state, Meta.Indirect) ]
    ~separation:Meta.Separated ()
