examples/quickstart.ml: Printf Sync_platform Sync_problems Sync_resources
