lib/eval/modularity.mli: Format Registry
