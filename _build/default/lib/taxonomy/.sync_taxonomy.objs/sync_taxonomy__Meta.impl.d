lib/taxonomy/meta.ml: Format Info Printf String
