lib/resources/busywork.ml: Thread
