examples/pathexpr_tour.ml: Atomic List Printf Sync_pathexpr Sync_platform Thread
