lib/pathexpr/engine.ml: Condition Mutex Semaphore Sync_platform Waitq
