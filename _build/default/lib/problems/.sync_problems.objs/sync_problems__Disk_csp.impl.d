lib/problems/disk_csp.ml: Csp Fun Heap Info Meta Process Sync_csp Sync_platform Sync_taxonomy
