test/test_problems_sched.mli:
