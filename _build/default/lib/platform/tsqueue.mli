(** Thread-safe FIFO queue with blocking and non-blocking removal.

    Used by workload drivers and by the trace collector; unbounded. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Blocks until an element is available. *)

val try_pop : 'a t -> 'a option

val pop_timeout : 'a t -> timeout_ns:int64 -> 'a option
(** Blocks up to [timeout_ns]; [None] on timeout. *)

val length : 'a t -> int

val drain : 'a t -> 'a list
(** Remove and return everything currently queued, oldest first. *)
