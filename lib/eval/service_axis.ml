open Sync_metrics
module Driver = Sync_workload.Serve_driver
module Loadgen = Sync_workload.Loadgen
module Proc = Sync_serve.Proc

type row = {
  scenario : string;
  problem : string;
  ok : int;
  deadline : int;
  overloaded : int;
  conn_failed : int;
  hung : int;
  recovered : int;
  drain_clean : bool;
  passed : bool;
  detail : string;
}

let find_exe () =
  let candidates =
    (match Sys.getenv_opt "SERVE_EXE" with Some p -> [ p ] | None -> [])
    @ [ Filename.concat (Filename.dirname Sys.executable_name) "bloom_serve.exe";
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "../bin/bloom_serve.exe";
        "_build/default/bin/bloom_serve.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> Ok exe
  | None ->
    Error
      (Printf.sprintf "bloom_serve.exe not found (tried %s)"
         (String.concat ", " candidates))

let sock_path scenario =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "bloom-e24-%s-%d.sock" scenario (Unix.getpid ()))

let base_config () =
  let duration_ms = Loadgen.duration_from_env ~default:600 in
  { Driver.default_config with
    connections = 4;
    rate_per_s = 200.0;
    duration_ms;
    warmup_ms = max 50 (duration_ms / 5);
    problem = `Mix }

let failed scenario detail =
  { scenario;
    problem = "mix";
    ok = 0;
    deadline = 0;
    overloaded = 0;
    conn_failed = 0;
    hung = 0;
    recovered = 0;
    drain_clean = false;
    passed = false;
    detail }

let row_of_outcome ~scenario ~recovered ~drain_clean ~extra_ok
    (o : Driver.outcome) =
  let passed = o.hung = 0 && drain_clean && extra_ok in
  { scenario;
    problem = "mix";
    ok = o.ok;
    deadline = o.deadline;
    overloaded = o.overloaded;
    conn_failed = o.conn_failed;
    hung = o.hung;
    recovered;
    drain_clean;
    passed;
    detail =
      (if passed then
         Printf.sprintf "%d ok, %d typed failures, all terminated" o.ok
           (o.deadline + o.overloaded + o.conn_failed + o.bad)
       else
         Printf.sprintf "hung=%d drain_clean=%b recovered=%d" o.hung
           drain_clean recovered) }

(* load / chaos: spawn, drive, SIGTERM, check the drain. *)
let spawn_and_drive ~scenario ~exe ~chaos =
  let sock = sock_path scenario in
  (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
  let args =
    [ "serve"; "--unix"; sock ]
    @ if chaos then [ "--chaos"; "--chaos-seed"; "7" ] else []
  in
  let child = Proc.spawn ~exe ~args in
  if not (Proc.wait_for_socket sock) then begin
    Proc.kill9 child;
    ignore (Proc.wait child);
    failed scenario "daemon never opened its socket"
  end
  else begin
    let _report, outcome =
      Driver.run ~sockaddr:(Unix.ADDR_UNIX sock) (base_config ())
    in
    Proc.sigterm child;
    let drain_clean =
      match Proc.wait child with `Exited 0 -> true | _ -> false
    in
    (* Chaos must not starve the run: demand some successes too. *)
    row_of_outcome ~scenario ~recovered:0 ~drain_clean ~extra_ok:(outcome.ok > 0)
      outcome
  end

let crash_drill ~exe =
  let sock = sock_path "crash" in
  (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
  match Driver.drill ~exe ~sock (base_config ()) with
  | Error msg -> failed "crash" msg
  | Ok d ->
    row_of_outcome ~scenario:"crash" ~recovered:d.ok_after_restart
      ~drain_clean:d.drain_clean
      ~extra_ok:(d.ok_after_restart > 0)
      d.outcome

let run ?(progress = fun _ -> ()) () =
  match find_exe () with
  | Error msg -> [ failed "load" msg ]
  | Ok exe ->
    List.map
      (fun mk ->
        let row = mk () in
        progress row;
        row)
      [ (fun () -> spawn_and_drive ~scenario:"load" ~exe ~chaos:false);
        (fun () -> spawn_and_drive ~scenario:"chaos" ~exe ~chaos:true);
        (fun () -> crash_drill ~exe) ]

let all_ok rows = List.for_all (fun r -> r.passed) rows

let pp ppf rows =
  Format.fprintf ppf "%-8s %-6s %6s %6s %6s %6s %5s %5s %-6s  %s@." "scenario"
    "mix" "ok" "dline" "over" "cfail" "hung" "recov" "drain" "detail";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %-6s %6d %6d %6d %6d %5d %5d %-6s  %s@."
        r.scenario r.problem r.ok r.deadline r.overloaded r.conn_failed r.hung
        r.recovered
        (if r.drain_clean then "clean" else "DIRTY")
        (if r.passed then r.detail else "FAIL: " ^ r.detail))
    rows

let to_json rows =
  Emit.List
    (List.map
       (fun r ->
         Emit.Obj
           [ ("scenario", Emit.Str r.scenario);
             ("problem", Emit.Str r.problem);
             ("ok", Emit.Int r.ok);
             ("deadline", Emit.Int r.deadline);
             ("overloaded", Emit.Int r.overloaded);
             ("conn_failed", Emit.Int r.conn_failed);
             ("hung", Emit.Int r.hung);
             ("recovered", Emit.Int r.recovered);
             ("drain_clean", Emit.Bool r.drain_clean);
             ("passed", Emit.Bool r.passed);
             ("detail", Emit.Str r.detail) ])
       rows)
