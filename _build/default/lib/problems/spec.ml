open Sync_taxonomy

type t = {
  name : string;
  description : string;
  ops : string list;
  constraints : Constr.t list;
  info : Info.kind list;
}

let make ~name ~description ~ops ~constraints =
  let info =
    List.sort_uniq Info.compare
      (List.concat_map (fun c -> c.Constr.info) constraints)
  in
  { name; description; ops; constraints; info }

let find_constraint t id = List.find (fun c -> c.Constr.id = id) t.constraints

let pp ppf t =
  Format.fprintf ppf "%s: %s@." t.name t.description;
  List.iter (fun c -> Format.fprintf ppf "  %a@." Constr.pp c) t.constraints
