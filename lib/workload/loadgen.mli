(** The load engine: drive a {!Target.instance} with concurrent workers
    on real threads or OCaml 5 domains and measure steady-state
    throughput and latency.

    Two loop disciplines:

    - {b closed loop} ([Closed]): each worker issues its next operation
      the moment the previous one completes. Measures the mechanism's
      sustainable capacity at a given concurrency; latency is pure
      service + queueing inside the synchronizer.
    - {b open loop} ([Open_loop]): operations arrive on a schedule
      (Poisson or uniformly spaced) at a configured aggregate rate,
      independent of completions. Latency is measured from the
      {e intended} arrival time, so when the system falls behind, the
      queueing delay appears in the recorded tail instead of being
      silently absorbed — the coordinated-omission correction
      (see docs/workload.md).

    Measurement protocol: workers record into per-worker warmup
    recorders until the coordinator flips the run into its steady-state
    window, then into per-worker steady recorders; the warmup recorders
    are discarded, the steady ones are merged after join. Worker count,
    windows, mode and seed come from {!config}; every run with the same
    seed draws the same arrival/op-mix randomness. *)

type arrival = Poisson | Uniform_spaced

type mode = Closed | Open_loop of { rate_per_s : float; arrival : arrival }

type config = {
  workers : int;  (** concurrent clients (>= 1) *)
  backend : [ `Thread | `Domain ];  (** systhreads or real domains *)
  duration_ms : int;  (** steady-state measurement window *)
  warmup_ms : int;  (** discarded warmup window *)
  mode : mode;
  seed : int;  (** arrival schedules and op-mix draws *)
  think_us : int;
      (** closed-loop think time per operation, microseconds (default
          0). Slept {e outside} the latency window, before each
          operation: models interactive clients that pause between
          requests, so aggregate throughput grows with worker count
          until the synchronizer saturates. Scaling experiments (E23)
          rely on it to keep a 1-vs-N-domain comparison meaningful even
          on hosts with few cores. Ignored in open-loop mode's arrival
          schedule sense — the sleep still happens, so leave it 0
          there. *)
}

val default_config : config
(** 4 domain workers, closed loop, 1000 ms steady after 200 ms warmup,
    seed 42, no think time. *)

val duration_from_env : default:int -> int
(** The [SYNC_LOAD_MS] environment knob (CI shortens runs with it):
    its value when set to a positive integer, [default] otherwise. *)

val run : Target.instance -> config -> Report.t
(** Execute one run and stop the instance. The report's summary covers
    only the steady-state window.
    @raise Invalid_argument on a non-positive worker count, window, or
    open-loop rate. *)
