(* The hot half of the observability layer: a global static flag and
   per-thread ring buffers.

   Contention design mirrors [Sync_metrics.Recorder]: share-nothing. Each
   OS thread (workers are threads or domain mains) records into its own
   ring buffer, found by an indexed slot keyed on the thread id; buffers
   are snapshotted after the traced region quiesces. The ring is a
   struct-of-arrays so one event is a handful of scalar stores into
   preallocated arrays — no per-event allocation.

   Disabled cost is the whole game: every probe entry point reads one
   atomic flag and returns. No closure is built, no optional argument is
   boxed, no clock is read, nothing is allocated — verified by the
   Gc-stat test in test_trace and the A/B cell in bench_load. *)

type kind =
  | Acquire   (* span: blocked entering a lock / region / possession *)
  | Hold      (* span: a lock, monitor or possession was held *)
  | Wait      (* span: parked on a queue or condition; arg = queue depth *)
  | Op        (* span: one mechanism-level operation *)
  | Signal    (* instant: a wake was issued; arg = waiters present *)
  | Handoff   (* instant: grant handed directly to a waiter; arg = left *)
  | Abandon   (* instant: a timed wait gave up; arg = ns spent waiting *)
  | Spurious  (* instant: woken with the awaited predicate still false *)

let kind_to_string = function
  | Acquire -> "acquire"
  | Hold -> "hold"
  | Wait -> "wait"
  | Op -> "op"
  | Signal -> "signal"
  | Handoff -> "handoff"
  | Abandon -> "abandon"
  | Spurious -> "spurious"

let is_span = function
  | Acquire | Hold | Wait | Op -> true
  | Signal | Handoff | Abandon | Spurious -> false

let kind_index = function
  | Acquire -> 0
  | Hold -> 1
  | Wait -> 2
  | Op -> 3
  | Signal -> 4
  | Handoff -> 5
  | Abandon -> 6
  | Spurious -> 7

let kind_of_index =
  [| Acquire; Hold; Wait; Op; Signal; Handoff; Abandon; Spurious |]

(* The static flag. A single atomic load guards every probe; [enabled]
   is the first thing each entry point checks, before any allocation. *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let enable () = Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let default_capacity = 65_536

let capacity = ref default_capacity

let set_capacity n =
  if n < 2 then invalid_arg "Probe.set_capacity: need at least 2 slots";
  capacity := n

(* Per-thread ring buffer. Only the owning thread writes; [pos] counts
   every event ever written, so [pos - cap] events have been overwritten
   once the ring wraps. *)
type buffer = {
  btid : int;
  cap : int;
  bkind : int array;
  bsite : string array;
  bop : string array;
  bt0 : int array;
  bdur : int array;
  barg : int array;
  bactor : int array;
  mutable bop_cur : string;
  mutable pos : int;
}

let make_buffer tid =
  let cap = !capacity in
  { btid = tid; cap;
    bkind = Array.make cap 0;
    bsite = Array.make cap "";
    bop = Array.make cap "";
    bt0 = Array.make cap 0;
    bdur = Array.make cap 0;
    barg = Array.make cap 0;
    bactor = Array.make cap 0;
    bop_cur = ""; pos = 0 }

(* Buffer lookup: a fixed array of atomic slots indexed by thread id.
   The slot is re-verified against the owner's id, so a (rare) index
   collision allocates a fresh buffer for the newcomer instead of
   sharing; the displaced buffer stays reachable through [registry]. *)
let slot_count = 256

let slots =
  Array.init slot_count (fun _ -> Atomic.make (None : buffer option))

let registry_lock = Stdlib.Mutex.create ()

let registry : buffer list ref = ref []

let my_buffer () =
  let tid = Thread.id (Thread.self ()) in
  let slot = slots.(tid land (slot_count - 1)) in
  match Atomic.get slot with
  | Some b when b.btid = tid -> b
  | _ ->
    let b = make_buffer tid in
    Stdlib.Mutex.lock registry_lock;
    registry := b :: !registry;
    Stdlib.Mutex.unlock registry_lock;
    Atomic.set slot (Some b);
    b

(* Actor ids: the OS thread id normally; inside a deterministic run the
   virtual task id, reported by the runtime through the same provider
   pattern Fault/Deadlock use. Virtual actors are encoded negative so a
   timeline can tell the two worlds apart. *)
let task_provider : (unit -> int option) ref = ref (fun () -> None)

let set_task_provider f = task_provider := f

let current_actor b =
  match !task_provider () with Some vt -> -(vt + 1) | None -> b.btid

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let now () = if enabled () then now_ns () else 0

let write b k ~site ~t0 ~dur ~arg =
  let i = b.pos mod b.cap in
  b.bkind.(i) <- kind_index k;
  b.bsite.(i) <- site;
  b.bop.(i) <- b.bop_cur;
  b.bt0.(i) <- t0;
  b.bdur.(i) <- dur;
  b.barg.(i) <- arg;
  b.bactor.(i) <- current_actor b;
  b.pos <- b.pos + 1

let span k ~site ~since ~arg =
  if enabled () && since <> 0 then begin
    let b = my_buffer () in
    write b k ~site ~t0:since ~dur:(now_ns () - since) ~arg
  end

let instant k ~site ~arg =
  if enabled () then begin
    let b = my_buffer () in
    write b k ~site ~t0:(now_ns ()) ~dur:0 ~arg
  end

let set_op name = if enabled () then (my_buffer ()).bop_cur <- name

let reset () =
  Stdlib.Mutex.lock registry_lock;
  registry := [];
  Stdlib.Mutex.unlock registry_lock;
  Array.iter (fun s -> Atomic.set s None) slots

(* -- snapshots ----------------------------------------------------- *)

type event = {
  t0 : int;
  dur : int;
  kind : kind;
  site : string;
  op : string;
  actor : int;
  arg : int;
}

let buffer_events b =
  let n = min b.pos b.cap in
  let start = b.pos - n in
  List.init n (fun j ->
      let i = (start + j) mod b.cap in
      { t0 = b.bt0.(i); dur = b.bdur.(i);
        kind = kind_of_index.(b.bkind.(i));
        site = b.bsite.(i); op = b.bop.(i);
        actor = b.bactor.(i); arg = b.barg.(i) })

let buffers () =
  Stdlib.Mutex.lock registry_lock;
  let bs = !registry in
  Stdlib.Mutex.unlock registry_lock;
  bs

let snapshot () =
  buffers ()
  |> List.concat_map buffer_events
  |> List.sort (fun a b ->
         match compare a.t0 b.t0 with 0 -> compare b.dur a.dur | c -> c)

let total () = List.fold_left (fun acc b -> acc + b.pos) 0 (buffers ())

let dropped () =
  List.fold_left (fun acc b -> acc + max 0 (b.pos - b.cap)) 0 (buffers ())

let with_tracing f =
  reset ();
  enable ();
  match f () with
  | v ->
    disable ();
    let evs = snapshot () in
    (v, evs)
  | exception e ->
    disable ();
    raise e

let actor_label a =
  if a < 0 then Printf.sprintf "v%d" (-a - 1) else Printf.sprintf "t%d" a
