lib/problems/alarm_csp.ml: Csp Heap Info Meta Process Sync_csp Sync_platform Sync_taxonomy
