type t = {
  data : int array;
  cap : int;
  work : int;
  head : int Atomic.t; (* next slot to read; only [get] advances it *)
  tail : int Atomic.t; (* next slot to write; only [put] advances it *)
  putting : bool Atomic.t;
  getting : bool Atomic.t;
}

let create ?(work = 50) cap =
  assert (cap >= 1);
  { data = Array.make cap 0; cap; work; head = Atomic.make 0;
    tail = Atomic.make 0; putting = Atomic.make false;
    getting = Atomic.make false }

let capacity t = t.cap

let fail what = raise (Busywork.Ill_synchronized ("ring: " ^ what))

let put t v =
  if not (Atomic.compare_and_set t.putting false true) then
    fail "concurrent puts";
  let head = Atomic.get t.head and tail = Atomic.get t.tail in
  if tail - head >= t.cap then begin
    Atomic.set t.putting false;
    fail "put on full buffer"
  end;
  Busywork.spin t.work;
  t.data.(tail mod t.cap) <- v;
  Atomic.set t.tail (tail + 1);
  Atomic.set t.putting false

let get t =
  if not (Atomic.compare_and_set t.getting false true) then
    fail "concurrent gets";
  let head = Atomic.get t.head and tail = Atomic.get t.tail in
  if tail - head <= 0 then begin
    Atomic.set t.getting false;
    fail "get on empty buffer"
  end;
  Busywork.spin t.work;
  let v = t.data.(head mod t.cap) in
  Atomic.set t.head (head + 1);
  Atomic.set t.getting false;
  v

let occupancy t = Atomic.get t.tail - Atomic.get t.head
