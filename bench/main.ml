(* The benchmark harness: regenerates the qualitative and
   micro-benchmark evaluation artifacts (DESIGN.md experiment index;
   E1-E19 plus the E21 probe micro-costs) in one run. The E20 grid has
   its own driver (bench_load, behind BENCH_E20.json).

   Part A reprints the qualitative results the paper reports (anomaly
   E1/E2, matrices E3-E5, conformance E6) — computed, not asserted.
   Part B adds the quantitative dimension the paper only gestures at
   ("serializers provide more mechanism ... at more cost"): bechamel
   micro-benchmarks for mechanism overhead (E7, E12) and wall-clock
   throughput tables for the workload problems (E8-E10, E-disk). *)

open Bechamel
open Toolkit

let section title = Printf.printf "\n==== %s ====\n%!" title

(* ------------------------------------------------------------------ *)
(* Part A: qualitative artifacts                                       *)

let part_a () =
  section "E1: footnote-3 anomaly (staged writer handoff)";
  let show name m =
    Printf.printf "%-36s -> %s\n%!" name
      (Sync_problems.Rw_harness.outcome_to_string
         (Sync_problems.Rw_harness.scenario_writer_handoff m))
  in
  show "pathexpr Figure 1 (faithful)" (module Sync_problems.Rw_path.Fig1);
  show "monitor readers-priority" (module Sync_problems.Rw_mon.Readers_prio);
  show "serializer readers-priority"
    (module Sync_problems.Rw_ser.Readers_prio);
  show "semaphore baton readers-priority"
    (module Sync_problems.Rw_sem.Readers_prio_baton);
  show "semaphore Courtois problem 1"
    (module Sync_problems.Rw_sem.Readers_prio);
  show "csp readers-priority" (module Sync_problems.Rw_csp.Readers_prio);

  section "E2: Figure 1 vs Figure 2 modification cost (fragment diff)";
  let pairings = Sync_eval.Independence.analyze Sync_eval.Registry.all in
  let fig_pairs =
    List.filter
      (fun p ->
        p.Sync_eval.Independence.mechanism = "pathexpr"
        && p.Sync_eval.Independence.variant_a = "fig1-readers-priority"
        && p.Sync_eval.Independence.variant_b = "fig2-writers-priority")
      pairings
  in
  Sync_eval.Independence.pp Format.std_formatter fig_pairs;
  print_endline
    "(low similarity on the SHARED exclusion constraint = the paper's\n\
    \ 'a modification to one constraint involves changing the entire\n\
    \ solution')";

  section "E3: expressive-power matrix";
  let card = Sync_eval.Scorecard.build ~run_conformance:false () in
  Sync_eval.Expressiveness.pp Format.std_formatter card.matrix;
  (match card.discrepancies with
  | [] -> print_endline "agrees with the paper's Section-5 conclusions"
  | ds ->
    List.iter
      (fun (m, k, why) ->
        Printf.printf "DISCREPANCY %s/%s: %s\n" m
          (Sync_taxonomy.Info.to_string k)
          why)
      ds);

  section "E4: constraint independence (shared-constraint reuse)";
  Sync_eval.Independence.pp_summary Format.std_formatter card.reuse;

  section "E5: modularity";
  Sync_eval.Modularity.pp Format.std_formatter card.modularity;

  section "E6: conformance matrix (all solutions, machine-checked)";
  let results = Sync_eval.Conformance.run Sync_eval.Registry.all in
  Sync_eval.Conformance.pp Format.std_formatter results;
  match Sync_eval.Conformance.regressions results with
  | [] -> print_endline "no regressions"
  | rs -> Printf.printf "%d REGRESSION(S)\n" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Part B: bechamel micro-benchmarks                                   *)

let ols =
  Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

let cfg =
  Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()

let run_group name tests =
  let grouped = Test.make_grouped ~name tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (k, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "%-44s %12.0f ns/op\n%!" k est
      | Some _ | None -> Printf.printf "%-44s %12s\n%!" k "n/a")
    (List.sort compare rows)

(* E7: uncontended entry/exit cost of each mechanism's critical region. *)
let bench_overhead () =
  section "E7: uncontended critical-region overhead (ns/op)";
  let sem = Sync_platform.Semaphore.Counting.create 1 in
  let weak = Sync_platform.Semaphore.Counting.create ~fairness:`Weak 1 in
  let hoare = Sync_monitor.Monitor.create ~discipline:`Hoare () in
  let mesa = Sync_monitor.Monitor.create ~discipline:`Mesa () in
  let ser = Sync_serializer.Serializer.create () in
  let mutex = Mutex.create () in
  run_group "e7"
    [ Test.make ~name:"stdlib-mutex" (Staged.stage (fun () ->
          Mutex.lock mutex;
          Mutex.unlock mutex));
      Test.make ~name:"semaphore-strong" (Staged.stage (fun () ->
          Sync_platform.Semaphore.Counting.p sem;
          Sync_platform.Semaphore.Counting.v sem));
      Test.make ~name:"semaphore-weak" (Staged.stage (fun () ->
          Sync_platform.Semaphore.Counting.p weak;
          Sync_platform.Semaphore.Counting.v weak));
      Test.make ~name:"monitor-hoare" (Staged.stage (fun () ->
          Sync_monitor.Monitor.with_monitor hoare ignore));
      Test.make ~name:"monitor-mesa" (Staged.stage (fun () ->
          Sync_monitor.Monitor.with_monitor mesa ignore));
      Test.make ~name:"serializer" (Staged.stage (fun () ->
          Sync_serializer.Serializer.with_serializer ser ignore));
      (let ccr = Sync_ccr.Ccr.create () in
       Test.make ~name:"ccr-region" (Staged.stage (fun () ->
           Sync_ccr.Ccr.region ccr ignore)));
      (let seqr = Sync_platform.Eventcount.Sequencer.create () in
       let done_ = Sync_platform.Eventcount.Eventcount.create () in
       Test.make ~name:"eventcount-ticket+await+advance"
         (Staged.stage (fun () ->
              let t = Sync_platform.Eventcount.Sequencer.ticket seqr in
              Sync_platform.Eventcount.Eventcount.await done_ t;
              Sync_platform.Eventcount.Eventcount.advance done_))) ]

(* E12: the two path-expression runtimes on identical specs. *)
let bench_engines () =
  section "E12: path-expression engines (semaphore translation vs gate)";
  let mk engine = Sync_pathexpr.Pathexpr.of_string ~engine "path use end" in
  let sem_engine = mk `Semaphore in
  let gate_engine = mk `Gate in
  let rw_sem = Sync_pathexpr.Pathexpr.of_string "path { read } , write end" in
  run_group "e12"
    [ Test.make ~name:"exclusive-op/semaphore-engine"
        (Staged.stage (fun () ->
             Sync_pathexpr.Pathexpr.run sem_engine "use" ignore));
      Test.make ~name:"exclusive-op/gate-engine"
        (Staged.stage (fun () ->
             Sync_pathexpr.Pathexpr.run gate_engine "use" ignore));
      Test.make ~name:"reader-burst-op/semaphore-engine"
        (Staged.stage (fun () ->
             Sync_pathexpr.Pathexpr.run rw_sem "read" ignore)) ]

(* E10: the two-stage queue's ticket overhead — FCFS admission vs plain
   readers-priority admission on the same monitor skeleton. *)
let bench_two_stage () =
  section "E10: two-stage queue overhead (uncontended read admission)";
  let null_read ~pid = ignore pid; 0 in
  let null_write ~pid = ignore pid in
  let plain =
    Sync_problems.Rw_mon.Readers_prio.create ~read:null_read ~write:null_write
  in
  let two_stage =
    Sync_problems.Rw_mon.Fcfs.create ~read:null_read ~write:null_write
  in
  let ser_fcfs =
    Sync_problems.Rw_ser.Fcfs.create ~read:null_read ~write:null_write
  in
  run_group "e10"
    [ Test.make ~name:"monitor-readers-prio-read"
        (Staged.stage (fun () ->
             ignore (Sync_problems.Rw_mon.Readers_prio.read plain ~pid:0)));
      Test.make ~name:"monitor-two-stage-fcfs-read"
        (Staged.stage (fun () ->
             ignore (Sync_problems.Rw_mon.Fcfs.read two_stage ~pid:0)));
      Test.make ~name:"serializer-single-queue-fcfs-read"
        (Staged.stage (fun () ->
             ignore (Sync_problems.Rw_ser.Fcfs.read ser_fcfs ~pid:0))) ]

(* E8 companion: uncontended put+get pair through each buffer solution. *)
let bench_buffer_pair () =
  section "E8a: bounded-buffer put+get pair, uncontended (ns/op)";
  let pair_test name (module B : Sync_problems.Bb_intf.S) =
    let ring = Sync_resources.Ring.create ~work:0 8 in
    let t =
      B.create ~capacity:8
        ~put:(fun ~pid:_ v -> Sync_resources.Ring.put ring v)
        ~get:(fun ~pid:_ -> Sync_resources.Ring.get ring)
    in
    Test.make ~name
      (Staged.stage (fun () ->
           B.put t ~pid:0 1;
           ignore (B.get t ~pid:0)))
  in
  run_group "e8a"
    [ pair_test "semaphore" (module Sync_problems.Bb_sem);
      pair_test "monitor" (module Sync_problems.Bb_mon);
      pair_test "serializer" (module Sync_problems.Bb_ser);
      pair_test "pathexpr" (module Sync_problems.Bb_path);
      pair_test "csp" (module Sync_problems.Bb_csp);
      pair_test "ccr" (module Sync_problems.Bb_ccr);
      pair_test "eventcount" (module Sync_problems.Bb_evc) ]

(* ------------------------------------------------------------------ *)
(* Part C: wall-clock throughput tables (contended workloads)          *)

let wall f =
  let t0 = Sync_platform.Clock.now_ns () in
  f ();
  Int64.to_float (Sync_platform.Clock.elapsed_ns t0) /. 1e9

let bench_bb_throughput () =
  section "E8b: bounded-buffer throughput, 2 producers + 2 consumers";
  let items = 4000 in
  let run name (module B : Sync_problems.Bb_intf.S) =
    let seconds =
      wall (fun () ->
          match
            Sync_problems.Bb_harness.run
              (module B)
              ~capacity:8 ~producers:2 ~consumers:2
              ~items_per_producer:(items / 2) ~work:0 ~seed:1L ()
          with
          | _report -> ())
    in
    Printf.printf "%-14s %9.0f items/s\n%!" name (float_of_int items /. seconds)
  in
  run "semaphore" (module Sync_problems.Bb_sem);
  run "monitor" (module Sync_problems.Bb_mon);
  run "serializer" (module Sync_problems.Bb_ser);
  run "pathexpr" (module Sync_problems.Bb_path);
  run "csp" (module Sync_problems.Bb_csp);
  run "ccr" (module Sync_problems.Bb_ccr);
  run "eventcount" (module Sync_problems.Bb_evc)

let bench_rw_throughput () =
  section "E9: readers-writers throughput, 4 readers + 1 writer (read-heavy)";
  let run name (module S : Sync_problems.Rw_intf.S) =
    let reads = 2000 and writes = 100 in
    let store = Sync_resources.Store.create ~work:10 () in
    let t =
      S.create
        ~read:(fun ~pid:_ -> Sync_resources.Store.read store)
        ~write:(fun ~pid:_ -> Sync_resources.Store.write store)
    in
    let seconds =
      wall (fun () ->
          Sync_platform.Process.run_all ~backend:`Thread
            (List.init 4 (fun r () ->
                 for _ = 1 to reads / 4 do
                   ignore (S.read t ~pid:r)
                 done)
            @ [ (fun () ->
                  for _ = 1 to writes do
                    S.write t ~pid:200
                  done) ]))
    in
    S.stop t;
    Printf.printf "%-36s %9.0f ops/s\n%!" name
      (float_of_int (reads + writes) /. seconds)
  in
  run "semaphore courtois-1" (module Sync_problems.Rw_sem.Readers_prio);
  run "semaphore baton" (module Sync_problems.Rw_sem.Readers_prio_baton);
  run "monitor readers-prio" (module Sync_problems.Rw_mon.Readers_prio);
  run "monitor fcfs (two-stage)" (module Sync_problems.Rw_mon.Fcfs);
  run "serializer readers-prio (crowds)"
    (module Sync_problems.Rw_ser.Readers_prio);
  run "serializer fcfs (single queue)" (module Sync_problems.Rw_ser.Fcfs);
  run "pathexpr fig1" (module Sync_problems.Rw_path.Fig1);
  run "pathexpr fig2" (module Sync_problems.Rw_path.Fig2);
  run "pathexpr plain" (module Sync_problems.Rw_path.Plain);
  run "csp readers-prio" (module Sync_problems.Rw_csp.Readers_prio);
  run "csp fcfs" (module Sync_problems.Rw_csp.Fcfs);
  run "ccr readers-prio" (module Sync_problems.Rw_ccr.Readers_prio);
  run "ccr fcfs" (module Sync_problems.Rw_ccr.Fcfs)

let bench_starvation () =
  section
    "E16: writer starvation under a continuous overlapping reader stream";
  let show name m =
    Printf.printf "%-36s -> %s\n%!" name
      (if Sync_problems.Rw_harness.scenario_writer_starvation m then
         "writer STARVED for the whole stream"
       else "writer admitted promptly")
  in
  show "monitor readers-priority" (module Sync_problems.Rw_mon.Readers_prio);
  show "monitor fcfs" (module Sync_problems.Rw_mon.Fcfs);
  show "monitor writers-priority" (module Sync_problems.Rw_mon.Writers_prio);
  show "serializer readers-priority"
    (module Sync_problems.Rw_ser.Readers_prio);
  show "serializer fcfs" (module Sync_problems.Rw_ser.Fcfs);
  show "ccr readers-priority" (module Sync_problems.Rw_ccr.Readers_prio);
  show "ccr fcfs" (module Sync_problems.Rw_ccr.Fcfs);
  print_endline
    "(the paper, of readers-priority: 'This specification allows writers \
     to starve.')"

let bench_disk_travel () =
  section "E-disk: arm travel, SCAN vs FCFS (backlogged workload)";
  let run name m =
    let travel, accesses =
      Sync_problems.Disk_harness.run_stress m ~tracks:500 ~workers:8
        ~requests_each:25 ~hold_s:0.002 ~seed:42L ()
    in
    Printf.printf "%-22s travel %6d over %3d accesses (%.1f/access)\n%!" name
      travel accesses
      (float_of_int travel /. float_of_int accesses);
    travel
  in
  let scan = run "monitor SCAN" (module Sync_problems.Disk_mon) in
  let _ = run "serializer SCAN" (module Sync_problems.Disk_ser) in
  let _ = run "semaphore SCAN" (module Sync_problems.Disk_sem) in
  let _ = run "pathexpr SCAN" (module Sync_problems.Disk_path) in
  let _ = run "csp SCAN" (module Sync_problems.Disk_csp) in
  let fcfs = run "FCFS baseline" (module Sync_problems.Disk_fcfs) in
  Printf.printf "SCAN/FCFS travel ratio: %.2f (paper-motivating win)\n%!"
    (float_of_int scan /. float_of_int fcfs)

(* E18: deterministic-scheduler throughput — the cost of one fully
   explored schedule (run + record + trace check) per scenario. This is
   the budget figure behind the DFS/random exploration caps in
   test_detsched: schedules/sec = 1e9 / (ns/op). *)
let bench_detsched () =
  section "E18: deterministic scheduler (ns per explored schedule)";
  let mk name =
    match Sync_detsched.Scenarios.find name with
    | None -> failwith ("unknown scenario " ^ name)
    | Some e ->
      let seed = ref 0 in
      Test.make ~name
        (Staged.stage (fun () ->
             incr seed;
             ignore
               (Sync_detsched.Detsched.run_random ~seed:!seed
                  e.Sync_detsched.Scenarios.scen)))
  in
  run_group "e18"
    [ mk "bb-sem"; mk "bb-mon"; mk "rw-fig1"; mk "fcfs-mon-hoare";
      mk "deadlock-abba" ]

(* E19: robustness — what surviving faults costs. (a) the fault-site
   instrumentation: the uncontended semaphore buffer pair with no plan
   installed (each site is one ref read) vs under a plan that never
   fires (each hit consults the plan), plus the timed acquire variants
   against their plain counterparts. (b) recovery wall-clock: the abort
   workload under the mixed probabilistic plan from the robustness
   matrix, with the post-fault invariants re-checked. *)
let bench_robustness () =
  section "E19a: fault-site and timed-wait overhead (ns/op)";
  let ring = Sync_resources.Ring.create ~work:0 8 in
  let buf =
    Sync_problems.Bb_sem.create ~capacity:8
      ~put:(fun ~pid:_ v -> Sync_resources.Ring.put ring v)
      ~get:(fun ~pid:_ -> Sync_resources.Ring.get ring)
  in
  let pair () =
    Sync_problems.Bb_sem.put buf ~pid:0 1;
    ignore (Sync_problems.Bb_sem.get buf ~pid:0)
  in
  let sem = Sync_platform.Semaphore.Counting.create 1 in
  let mutex = Sync_platform.Mutex.create () in
  run_group "e19a"
    [ Test.make ~name:"bb-sem-pair/no-plan" (Staged.stage pair);
      Test.make ~name:"semaphore-p+v" (Staged.stage (fun () ->
          Sync_platform.Semaphore.Counting.p sem;
          Sync_platform.Semaphore.Counting.v sem));
      Test.make ~name:"semaphore-acquire_for+v" (Staged.stage (fun () ->
          ignore
            (Sync_platform.Semaphore.Counting.acquire_for sem
               ~timeout_ns:1_000_000_000L);
          Sync_platform.Semaphore.Counting.v sem));
      Test.make ~name:"mutex-lock+unlock" (Staged.stage (fun () ->
          Sync_platform.Mutex.lock mutex;
          Sync_platform.Mutex.unlock mutex));
      Test.make ~name:"mutex-try_lock_for+unlock" (Staged.stage (fun () ->
          ignore
            (Sync_platform.Mutex.try_lock_for mutex
               ~timeout_ns:1_000_000_000L);
          Sync_platform.Mutex.unlock mutex)) ];
  let never =
    Sync_platform.Fault.plan
      [ ("semaphore.pre-wait", Sync_platform.Fault.Never);
        ("waitq.pre-wait", Sync_platform.Fault.Never) ]
  in
  Sync_platform.Fault.with_plan never (fun () ->
      run_group "e19a-plan"
        [ Test.make ~name:"bb-sem-pair/never-firing-plan" (Staged.stage pair) ]);

  section "E19b: abort-recovery wall-clock (mixed probabilistic plan)";
  let items = 2000 in
  let mixed =
    Sync_platform.Fault.plan ~seed:42
      [ ("bb.put.body", Sync_platform.Fault.Prob 0.05);
        ("bb.get.body", Sync_platform.Fault.Prob 0.05);
        ("waitq.pre-wait", Sync_platform.Fault.Prob 0.04);
        ("semaphore.pre-wait", Sync_platform.Fault.Prob 0.04);
        ("serializer.pre-wait", Sync_platform.Fault.Prob 0.04);
        ("ccr.pre-wait", Sync_platform.Fault.Prob 0.04);
        ("csp.pre-wait", Sync_platform.Fault.Prob 0.04) ]
  in
  let run name (module B : Sync_problems.Bb_intf.S) =
    let report = ref None in
    let seconds =
      wall (fun () ->
          report :=
            Some
              (Sync_platform.Fault.with_plan mixed (fun () ->
                   Sync_problems.Bb_harness.run_abort
                     (module B)
                     ~capacity:8 ~producers:2 ~consumers:2
                     ~items_per_producer:(items / 2) ())))
    in
    let r = Option.get !report in
    let verdict =
      match Sync_problems.Bb_harness.check_abort ~producers:2 r with
      | Ok () -> "invariants held"
      | Error m -> "INVARIANT FAILURE: " ^ m
    in
    Printf.printf
      "%-14s %9.0f items/s  (%d puts aborted, %d gets aborted; %s)\n%!" name
      (float_of_int items /. seconds)
      r.Sync_problems.Bb_harness.aborted_puts
      r.Sync_problems.Bb_harness.aborted_gets verdict
  in
  run "semaphore" (module Sync_problems.Bb_sem);
  run "monitor" (module Sync_problems.Bb_mon);
  run "serializer" (module Sync_problems.Bb_ser);
  run "pathexpr" (module Sync_problems.Bb_path);
  run "ccr" (module Sync_problems.Bb_ccr)

let bench_fairness_ablation () =
  section "E-ablation: weak vs strong semaphore barging";
  (* One waiter is parked on an empty semaphore; the releaser does V and
     immediately tries to grab the unit back (a barging newcomer). Under
     strong semantics the unit was handed to the queued waiter, so the
     barge always fails; under weak semantics the value is publicly
     visible and the still-running releaser usually steals it — exactly
     why classic FCFS schemes silently assume strong semaphores. *)
  let barges fairness =
    let rounds = 200 in
    let sem = Sync_platform.Semaphore.Counting.create ~fairness 0 in
    let stolen = Atomic.make 0 in
    let stop = Atomic.make false in
    (* A dedicated barger spins on try_p the whole time; any success means
       it consumed a unit that a parked waiter was queued for. *)
    let barger =
      Sync_platform.Process.spawn ~backend:`Thread (fun () ->
          while not (Atomic.get stop) do
            if Sync_platform.Semaphore.Counting.try_p sem then begin
              Atomic.incr stolen;
              Sync_platform.Semaphore.Counting.v sem
            end;
            Thread.yield ()
          done)
    in
    for _ = 1 to rounds do
      let waiter =
        Sync_platform.Process.spawn ~backend:`Thread (fun () ->
            Sync_platform.Semaphore.Counting.p sem)
      in
      while Sync_platform.Semaphore.Counting.waiters sem = 0 do
        Thread.yield ()
      done;
      Sync_platform.Semaphore.Counting.v sem;
      Sync_platform.Process.join waiter
    done;
    Atomic.set stop true;
    Sync_platform.Process.join barger;
    (Atomic.get stolen, rounds)
  in
  let s, n = barges `Strong in
  Printf.printf
    "strong semaphore: barged %3d/%d (guaranteed 0: handoff to queue head)\n%!"
    s n;
  let s, n = barges `Weak in
  Printf.printf
    "weak semaphore:   barged %3d/%d (barging permitted; platform-dependent)\n%!"
    s n;
  (* Hoare vs Mesa barging, deterministic by construction: a waiter waits
     for a token; a barger is already parked at the monitor entry when the
     signaller (inside the monitor) deposits the token and signals. Under
     Hoare the waiter receives the monitor directly and finds the token.
     Under Mesa the woken waiter re-queues BEHIND the barger, which steals
     the token first — the reason Mesa code needs re-check loops. *)
  let mesa_barges discipline =
    let open Sync_monitor in
    let m = Monitor.create ~discipline () in
    let c = Monitor.Cond.create m in
    let token = ref false in
    let waiter_saw = ref false in
    let waiter =
      Sync_platform.Process.spawn ~backend:`Thread (fun () ->
          Monitor.with_monitor m (fun () ->
              Monitor.Cond.wait c;
              waiter_saw := !token;
              token := false))
    in
    while Monitor.Cond.count c = 0 do
      Thread.yield ()
    done;
    let stolen = ref false in
    Monitor.with_monitor m (fun () ->
        let barger =
          Sync_platform.Process.spawn ~backend:`Thread (fun () ->
              Monitor.with_monitor m (fun () ->
                  if !token then begin
                    token := false;
                    stolen := true
                  end))
        in
        (* Barger is parked at the entry while we hold the monitor. *)
        while Monitor.entry_waiters m = 0 do
          Thread.yield ()
        done;
        ignore barger;
        token := true;
        Monitor.Cond.signal c);
    Sync_platform.Process.join waiter;
    (!stolen, !waiter_saw)
  in
  let stolen, saw = mesa_barges `Hoare in
  Printf.printf "Hoare monitor: barger stole token = %b, waiter saw it = %b\n%!"
    stolen saw;
  let stolen, saw = mesa_barges `Mesa in
  Printf.printf "Mesa monitor:  barger stole token = %b, waiter saw it = %b\n%!"
    stolen saw

(* E21: what the trace probes cost. With tracing disabled every probe is
   one atomic load compiled around the instrumented operation, so the
   platform mutex should price within noise of E7's numbers; with tracing
   enabled each op additionally writes its spans into the per-thread ring.
   The enabled rows run inside enable/disable brackets with a fresh ring,
   so nothing here leaks trace state into later sections. *)
let bench_trace_probes () =
  section "E21: trace probe overhead (ns/op, disabled vs enabled)";
  let mutex = Sync_platform.Mutex.create () in
  let sem = Sync_platform.Semaphore.Counting.create 1 in
  run_group "e21-disabled"
    [ Test.make ~name:"platform-mutex/tracing-off" (Staged.stage (fun () ->
          Sync_platform.Mutex.lock mutex;
          Sync_platform.Mutex.unlock mutex));
      Test.make ~name:"semaphore-p+v/tracing-off" (Staged.stage (fun () ->
          Sync_platform.Semaphore.Counting.p sem;
          Sync_platform.Semaphore.Counting.v sem)) ];
  Sync_trace.Probe.reset ();
  Sync_trace.Probe.enable ();
  Fun.protect ~finally:Sync_trace.Probe.disable (fun () ->
      run_group "e21-enabled"
        [ Test.make ~name:"platform-mutex/tracing-on" (Staged.stage (fun () ->
              Sync_platform.Mutex.lock mutex;
              Sync_platform.Mutex.unlock mutex));
          Test.make ~name:"semaphore-p+v/tracing-on" (Staged.stage (fun () ->
              Sync_platform.Semaphore.Counting.p sem;
              Sync_platform.Semaphore.Counting.v sem)) ]);
  let dropped = Sync_trace.Probe.dropped () in
  Sync_trace.Probe.reset ();
  Printf.printf
    "(enabled rows wrote into per-thread rings; %d event(s) dropped on wrap)\n%!"
    dropped

(* E22: the contention-adaptive substrate, uncontended single-thread
   cost. The tier is a creation-time property, so each fast-variant
   primitive is built inside [Fastpath.with_enabled]; the default rows
   are the same operations on the stdlib-backed substrate. The
   contended side of E22 lives in bench_load --e22 (BENCH_E22.json) —
   here we price the fast paths themselves: CAS lock vs pthread lock,
   fetch-and-add V vs locked V, Vyukov ring vs locked ring. *)
let bench_fastpath () =
  section "E22: fast-path substrate, uncontended (default vs fast tier)";
  let fast f = Sync_platform.Fastpath.with_enabled f in
  let dmutex = Sync_platform.Mutex.create () in
  let fmutex = fast (fun () -> Sync_platform.Mutex.create ()) in
  let dweak = Sync_platform.Semaphore.Counting.create ~fairness:`Weak 1 in
  let fweak =
    fast (fun () -> Sync_platform.Semaphore.Counting.create ~fairness:`Weak 1)
  in
  let ring = Sync_resources.Ring.create ~work:0 8 in
  let fring = Sync_resources.Fastring.create ~work:0 8 in
  run_group "e22"
    [ Test.make ~name:"mutex-lock+unlock/default" (Staged.stage (fun () ->
          Sync_platform.Mutex.lock dmutex;
          Sync_platform.Mutex.unlock dmutex));
      Test.make ~name:"mutex-lock+unlock/fast" (Staged.stage (fun () ->
          Sync_platform.Mutex.lock fmutex;
          Sync_platform.Mutex.unlock fmutex));
      Test.make ~name:"weak-semaphore-p+v/default" (Staged.stage (fun () ->
          Sync_platform.Semaphore.Counting.p dweak;
          Sync_platform.Semaphore.Counting.v dweak));
      Test.make ~name:"weak-semaphore-p+v/fast" (Staged.stage (fun () ->
          Sync_platform.Semaphore.Counting.p fweak;
          Sync_platform.Semaphore.Counting.v fweak));
      Test.make ~name:"ring-put+get/default" (Staged.stage (fun () ->
          Sync_resources.Ring.put ring 1;
          ignore (Sync_resources.Ring.get ring)));
      Test.make ~name:"ring-put+get/fast-vyukov" (Staged.stage (fun () ->
          Sync_resources.Fastring.put fring 1;
          ignore (Sync_resources.Fastring.get fring))) ]

let bench_model_proofs () =
  section "E17: staged scenarios model-checked over ALL interleavings";
  List.iter
    (fun (name, v) ->
      Printf.printf "%-28s states=%-5d holds=%b  %s\n%!" name
        v.Sync_model.Scenarios.states v.Sync_model.Scenarios.holds
        v.Sync_model.Scenarios.detail)
    (Sync_model.Scenarios.all ())

let () =
  print_endline
    "Bloom (SOSP'79) 'Evaluating Synchronization Mechanisms' — full \
     experiment regeneration";
  part_a ();
  bench_model_proofs ();
  bench_overhead ();
  bench_engines ();
  bench_two_stage ();
  bench_buffer_pair ();
  bench_bb_throughput ();
  bench_rw_throughput ();
  bench_starvation ();
  bench_disk_travel ();
  bench_fairness_ablation ();
  bench_detsched ();
  bench_robustness ();
  bench_trace_probes ();
  bench_fastpath ();
  print_endline "\nall experiments regenerated"
