lib/resources/store.ml: Atomic Busywork
