lib/problems/bb_intf.ml: Constr Info Meta Spec Sync_taxonomy
