(* One lock per network serializes all channel state, which is what makes a
   multi-channel [select] commit atomically: a parked chooser is a single
   [cell] whose offers sit on several channels; whoever matches one offer
   flips the cell, so every other offer becomes stale and is purged on the
   next scan.

   Abort policy: poison. A rendezvous has no single owner whose unwind
   could repair it — a crashed server would strand every parked client
   forever — so an abort is broadcast: [poison] marks the network and
   wakes every parked cell, whose operation raises [Poisoned]; later
   operations fail fast. *)

open Sync_platform
module Probe = Sync_trace.Probe

exception Poisoned of exn

let abort_policy : Fault.abort_policy = `Poison

type cell = { mutable done_ : bool; cond : Condition.t; seq : int }

type network = {
  lock : Mutex.t;
  mutable next_seq : int; (* arrival order for longest-waiting matching *)
  mutable poison : exn option;
  mutable parked : cell list; (* live parked cells, woken on poison *)
}

let network () =
  { lock = Mutex.create ~name:"csp.lock" (); next_seq = 0; poison = None;
    parked = [] }

let poison net e =
  Mutex.protect net.lock (fun () ->
      if net.poison = None then begin
        net.poison <- Some e;
        if Probe.enabled () then
          Probe.instant Signal ~site:"csp.poison"
            ~arg:(List.length net.parked);
        List.iter (fun c -> Condition.signal c.cond) net.parked
      end)

let poisoned net = Mutex.protect net.lock (fun () -> net.poison)

(* Must hold net.lock. *)
let check_poison net =
  match net.poison with Some e -> raise (Poisoned e) | None -> ()

let fresh_cell net =
  let c = { done_ = false; cond = Condition.create (); seq = net.next_seq } in
  net.next_seq <- net.next_seq + 1;
  c

(* A parked sender: [taken] is called (under the lock) by the receiver that
   accepts the value; it lets a selecting sender record which case won. *)
type 'a send_offer = { s_cell : cell; value : 'a; taken : unit -> unit }

(* A parked receiver: [deliver] stores the value (and the winning case) on
   the receiver side. *)
type 'a recv_offer = { r_cell : cell; deliver : 'a -> unit }

type 'a chan = {
  net : network;
  cname : string;
  csite : string; (* precomputed trace site, "csp:<name>" *)
  mutable senders : 'a send_offer list; (* FIFO, stale entries purged lazily *)
  mutable recvers : 'a recv_offer list;
}

module Channel = struct
  type 'a t = 'a chan

  let create ?(name = "chan") net =
    { net; cname = name; csite = "csp:" ^ name; senders = []; recvers = [] }

  let name c = c.cname

  let live_senders c = List.filter (fun o -> not o.s_cell.done_) c.senders

  let live_recvers c = List.filter (fun o -> not o.r_cell.done_) c.recvers

  let waiting_senders c =
    Mutex.protect c.net.lock (fun () -> List.length (live_senders c))

  let waiting_receivers c =
    Mutex.protect c.net.lock (fun () -> List.length (live_recvers c))
end

let purge c =
  c.senders <- List.filter (fun o -> not o.s_cell.done_) c.senders;
  c.recvers <- List.filter (fun o -> not o.r_cell.done_) c.recvers

let park net ~site ~depth cell =
  net.parked <- cell :: net.parked;
  let t0 = Probe.now () in
  if not cell.done_ && net.poison = None then begin
    Condition.wait cell.cond net.lock;
    while not cell.done_ && net.poison = None do
      Probe.instant Spurious ~site ~arg:0;
      Condition.wait cell.cond net.lock
    done
  end;
  Probe.span Wait ~site ~since:t0 ~arg:depth;
  net.parked <- List.filter (fun c -> c != cell) net.parked;
  if not cell.done_ then begin
    match net.poison with
    | Some e ->
      (* Mark our offers stale so later purges drop them, then fail. *)
      cell.done_ <- true;
      raise (Poisoned e)
    | None -> assert false
  end

(* Under the lock: match against the longest-waiting live counterpart. *)
let pop_sender c =
  purge c;
  match c.senders with
  | [] -> None
  | o :: rest ->
    c.senders <- rest;
    o.s_cell.done_ <- true;
    o.taken ();
    if Probe.enabled () then
      Probe.instant Handoff ~site:c.csite ~arg:(List.length rest);
    Condition.signal o.s_cell.cond;
    Some o.value

let pop_recver c v =
  purge c;
  match c.recvers with
  | [] -> false
  | o :: rest ->
    c.recvers <- rest;
    o.r_cell.done_ <- true;
    o.deliver v;
    if Probe.enabled () then
      Probe.instant Handoff ~site:c.csite ~arg:(List.length rest);
    Condition.signal o.r_cell.cond;
    true

let send c v =
  let net = c.net in
  Mutex.protect net.lock (fun () ->
      check_poison net;
      if not (pop_recver c v) then begin
        Fault.site "csp.pre-wait";
        let depth =
          if Probe.enabled () then List.length c.senders else 0
        in
        let cell = fresh_cell net in
        c.senders <-
          c.senders @ [ { s_cell = cell; value = v; taken = ignore } ];
        park net ~site:c.csite ~depth cell
      end)

let recv c =
  let net = c.net in
  Mutex.protect net.lock (fun () ->
      check_poison net;
      match pop_sender c with
      | Some v -> v
      | None -> (
        Fault.site "csp.pre-wait";
        let depth =
          if Probe.enabled () then List.length c.recvers else 0
        in
        let cell = fresh_cell net in
        let slot = ref None in
        c.recvers <-
          c.recvers @ [ { r_cell = cell; deliver = (fun v -> slot := Some v) } ];
        park net ~site:c.csite ~depth cell;
        match !slot with
        | Some v -> v
        | None -> assert false (* deliver always ran before the wakeup *)))

let try_send c v =
  Mutex.protect c.net.lock (fun () ->
      check_poison c.net;
      pop_recver c v)

let try_recv c =
  Mutex.protect c.net.lock (fun () ->
      check_poison c.net;
      pop_sender c)

type 'r case = {
  enabled : bool;
  net_of : unit -> network;
  (* Try an immediate rendezvous with an already-parked counterpart;
     [Some k] on success. Under the lock. *)
  attempt : unit -> (unit -> 'r) option;
  (* Park an offer bound to the chooser's cell and result slot. Under the
     lock. *)
  post : cell -> (unit -> 'r) option ref -> unit;
}

let recv_case c k =
  { enabled = true;
    net_of = (fun () -> c.net);
    attempt =
      (fun () ->
        match pop_sender c with
        | Some v -> Some (fun () -> k v)
        | None -> None);
    post =
      (fun cell slot ->
        c.recvers <-
          c.recvers
          @ [ { r_cell = cell; deliver = (fun v -> slot := Some (fun () -> k v)) } ]) }

let send_case c v k =
  { enabled = true;
    net_of = (fun () -> c.net);
    attempt = (fun () -> if pop_recver c v then Some k else None);
    post =
      (fun cell slot ->
        c.senders <-
          c.senders
          @ [ { s_cell = cell; value = v; taken = (fun () -> slot := Some k) } ]) }

let guard b case = { case with enabled = case.enabled && b }

let select cases =
  let cases = List.filter (fun c -> c.enabled) cases in
  if cases = [] then invalid_arg "Csp.select: every case is disabled";
  let net = (List.hd cases).net_of () in
  List.iter
    (fun c ->
      if c.net_of () != net then
        invalid_arg "Csp.select: cases span several networks")
    cases;
  let k =
    Mutex.protect net.lock (fun () ->
        check_poison net;
        let rec first_ready = function
          | [] -> None
          | c :: rest -> (
            match c.attempt () with Some k -> Some k | None -> first_ready rest)
        in
        match first_ready cases with
        | Some k -> k
        | None -> (
          Fault.site "csp.pre-wait";
          let cell = fresh_cell net in
          let slot = ref None in
          List.iter (fun c -> c.post cell slot) cases;
          park net ~site:"csp.select" ~depth:(List.length cases) cell;
          match !slot with
          | Some k -> k
          | None -> assert false))
  in
  (* The continuation runs outside the network lock. *)
  k ()
