(** Binary min-heap priority queue.

    Not thread-safe on its own; the synchronization mechanisms embed it
    under their own locks (e.g. monitor priority-condition queues, the
    disk-head scheduler). Ties are broken by insertion order, so equal-key
    elements dequeue FIFO — a property the FCFS checkers rely on. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. Equal keys pop in insertion
    order. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in ascending order; O(n log n), does not modify the heap. *)
