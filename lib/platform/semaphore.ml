module Probe = Sync_trace.Probe

type fairness = [ `Strong | `Weak ]

module Counting = struct
  type t = {
    mutex : Mutex.t;
    fairness : fairness;
    (* Strong: selective-wakeup queue; each waiter is woken exactly once and
       its P is thereby granted (the value was consumed by the waker). *)
    queue : unit Waitq.t;
    (* Weak: ordinary condition broadcast; woken waiters race to re-check. *)
    cond : Condition.t;
    mutable value : int;
    mutable weak_waiters : int;
    (* Watchdog resource id for the weak (condition-loop) path; the strong
       path's edges are reported by the Waitq itself. -1 = watchdog off. *)
    srid : int;
  }

  let create ?(fairness = `Strong) n =
    if n < 0 then invalid_arg "Semaphore.Counting.create: negative value";
    { mutex = Mutex.create ~name:"sem.lock" (); fairness;
      queue = Waitq.create ~name:"sem.q" ();
      cond = Condition.create (); value = n; weak_waiters = 0;
      srid =
        (if Deadlock.enabled () then Deadlock.register ~kind:"semaphore" ()
         else -1) }

  (* A P abort after the wake was consumed would leak the unit of value the
     waker handed us; re-route it to the next waiter (or back to the
     counter) before propagating. *)
  let redonate t () = if not (Waitq.wake_first t.queue) then t.value <- t.value + 1

  let p t =
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        match t.fairness with
        | `Strong ->
          (* A newcomer must not overtake parked waiters even if value > 0:
             strong semantics grant strictly in arrival order. *)
          if t.value > 0 && Waitq.is_empty t.queue then t.value <- t.value - 1
          else Waitq.wait t.queue ~lock:t.mutex () ~on_abort:(redonate t)
        | `Weak -> (
          t.weak_waiters <- t.weak_waiters + 1;
          if t.srid >= 0 then Deadlock.blocked t.srid;
          match
            if t.value = 0 then begin
              let t0 = Probe.now () in
              Condition.wait t.cond t.mutex;
              while t.value = 0 do
                (* Broadcast race lost: another woken waiter took the unit. *)
                Probe.instant Spurious ~site:"sem.cond" ~arg:0;
                Condition.wait t.cond t.mutex
              done;
              Probe.span Wait ~site:"sem.cond" ~since:t0 ~arg:t.weak_waiters
            end
          with
          | () ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            t.value <- t.value - 1
          | exception e ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            raise e))

  let acquire_for t ~timeout_ns =
    let deadline = Deadline.after_ns timeout_ns in
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        match t.fairness with
        | `Strong ->
          if t.value > 0 && Waitq.is_empty t.queue then begin
            t.value <- t.value - 1;
            true
          end
          else
            Waitq.wait_for t.queue ~lock:t.mutex ~deadline ()
              ~on_abort:(redonate t)
        | `Weak -> (
          t.weak_waiters <- t.weak_waiters + 1;
          if t.srid >= 0 then Deadlock.blocked t.srid;
          let rec poll () =
            if t.value > 0 then true
            else if Condition.wait_for t.cond t.mutex ~deadline then poll ()
            else t.value > 0
          in
          match poll () with
          | got ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            if got then t.value <- t.value - 1;
            got
          | exception e ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            raise e))

  let v t =
    Mutex.protect t.mutex (fun () ->
        match t.fairness with
        | `Strong ->
          (* Hand the unit of value directly to the oldest waiter if any. *)
          if not (Waitq.wake_first t.queue) then t.value <- t.value + 1
        | `Weak ->
          t.value <- t.value + 1;
          if Probe.enabled () then
            Probe.instant Signal ~site:"sem.cond" ~arg:t.weak_waiters;
          Condition.signal t.cond)

  let try_p t =
    Mutex.protect t.mutex (fun () ->
        let ok =
          match t.fairness with
          | `Strong -> t.value > 0 && Waitq.is_empty t.queue
          | `Weak -> t.value > 0
        in
        if ok then t.value <- t.value - 1;
        ok)

  let value t = Mutex.protect t.mutex (fun () -> t.value)

  let waiters t =
    Mutex.protect t.mutex (fun () ->
        match t.fairness with
        | `Strong -> Waitq.length t.queue
        | `Weak -> t.weak_waiters)
end

module Binary = struct
  type t = { mutex : Mutex.t; queue : unit Waitq.t; mutable value : int }

  let create open_ =
    { mutex = Mutex.create ~name:"binsem.lock" ();
      queue = Waitq.create ~name:"binsem.q" ();
      value = (if open_ then 1 else 0) }

  let redonate t () = if not (Waitq.wake_first t.queue) then t.value <- 1

  let p t =
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        if t.value = 1 && Waitq.is_empty t.queue then t.value <- 0
        else Waitq.wait t.queue ~lock:t.mutex () ~on_abort:(redonate t))

  let acquire_for t ~timeout_ns =
    let deadline = Deadline.after_ns timeout_ns in
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        if t.value = 1 && Waitq.is_empty t.queue then begin
          t.value <- 0;
          true
        end
        else
          Waitq.wait_for t.queue ~lock:t.mutex ~deadline ()
            ~on_abort:(redonate t))

  let v t =
    Mutex.protect t.mutex (fun () ->
        if t.value = 1 then invalid_arg "Semaphore.Binary.v: already open";
        if not (Waitq.wake_first t.queue) then t.value <- 1)

  let value t = Mutex.protect t.mutex (fun () -> t.value)
end
