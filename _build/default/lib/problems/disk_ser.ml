(** Disk-head scheduling with a serializer: priority enqueue carries the
    track parameter as the rank (ascending for the up queue, inverted for
    the down queue); guards pick the queue matching the sweep direction,
    flipping the sweep when its queue drains. *)

open Sync_serializer
open Sync_taxonomy

type direction = Up | Down

type t = {
  ser : Serializer.t;
  upq : Serializer.Queue.t;
  downq : Serializer.Queue.t;
  users : Serializer.Crowd.t;
  cylmax : int;
  mutable headpos : int;
  mutable direction : direction;
  res_access : pid:int -> int -> unit;
}

let mechanism = "serializer"

let create ~tracks ~access =
  let ser = Serializer.create () in
  { ser;
    upq = Serializer.Queue.create ~name:"upsweep" ser;
    downq = Serializer.Queue.create ~name:"downsweep" ser;
    users = Serializer.Crowd.create ~name:"users" ser;
    cylmax = tracks - 1; headpos = 0; direction = Up; res_access = access }

let access t ~pid track =
  Serializer.with_serializer t.ser (fun () ->
      (* Choose my sweep while holding possession, as the monitor solution
         does on entry. *)
      let up =
        t.headpos < track || (t.headpos = track && t.direction = Up)
      in
      let queue = if up then t.upq else t.downq in
      let rank = if up then track else t.cylmax - track in
      let guard () =
        Serializer.Crowd.is_empty t.users
        &&
        match t.direction with
        | Up -> up || Serializer.Queue.guard_is_empty t.upq
        | Down -> (not up) || Serializer.Queue.guard_is_empty t.downq
      in
      Serializer.enqueue ~rank queue ~until:guard;
      (* Admitted: adopt my sweep and position. *)
      t.direction <- (if up then Up else Down);
      t.headpos <- track;
      Serializer.join_crowd t.users ~body:(fun () -> t.res_access ~pid track))

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler"
    ~fragments:
      [ ("disk-exclusion", [ "empty(users)"; "join_crowd" ]);
        ("disk-scan-order",
         [ "enqueue rank=track"; "enqueue rank=cylmax-track";
           "guard direction"; "guard empty(other-sweep)" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Sync_state, Meta.Direct) ]
    ~aux_state:[ "headpos"; "direction" ]
    ~separation:Meta.Enforced ()
