(* One-slot buffer and FCFS across all five mechanisms. *)
open Sync_problems

let check_result name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let slot_solutions : (string * (module Slot_intf.S)) list =
  [ ("semaphore", (module Slot_sem)); ("monitor", (module Slot_mon));
    ("serializer", (module Slot_ser)); ("pathexpr", (module Slot_path));
    ("csp", (module Slot_csp)); ("ccr", (module Slot_ccr));
    ("eventcount", (module Slot_evc)) ]

let fcfs_solutions : (string * (module Fcfs_intf.S)) list =
  [ ("semaphore", (module Fcfs_sem)); ("monitor", (module Fcfs_mon));
    ("serializer", (module Fcfs_ser)); ("pathexpr", (module Fcfs_path));
    ("csp", (module Fcfs_csp)); ("ccr", (module Fcfs_ccr));
    ("eventcount", (module Fcfs_evc)) ]

let slot_default (name, m) () = check_result name (Slot_harness.verify m)

let slot_single_pair (name, m) () =
  check_result name
    (Slot_harness.verify ~putters:1 ~getters:1 ~items_per_putter:50 m)

let slot_many (name, m) () =
  check_result name
    (Slot_harness.verify ~putters:5 ~getters:5 ~items_per_putter:10 m)

let fcfs_default (name, m) () = check_result name (Fcfs_harness.verify m)

let fcfs_more_users (name, m) () =
  check_result name (Fcfs_harness.verify ~users:8 ~rounds:2 m)

let suite solutions mk =
  List.map
    (fun (name, m) -> Alcotest.test_case name `Quick (mk (name, m)))
    solutions

let () =
  Alcotest.run "problems-small"
    [ ("slot-default", suite slot_solutions slot_default);
      ("slot-1p1c", suite slot_solutions slot_single_pair);
      ("slot-many", suite slot_solutions slot_many);
      ("fcfs-default", suite fcfs_solutions fcfs_default);
      ("fcfs-8users", suite fcfs_solutions fcfs_more_users) ]
