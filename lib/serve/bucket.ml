open Sync_platform

type t = {
  lock : Mutex.t;
  rate_per_s : float;
  burst : float;
  mutable tokens : float;
  mutable last_ns : int64;
}

let create ~rate_per_s ~burst =
  if rate_per_s <= 0.0 then invalid_arg "Bucket.create: rate must be positive";
  if burst < 1 then invalid_arg "Bucket.create: burst must be >= 1";
  { lock = Mutex.create ~name:"serve.bucket" ();
    rate_per_s;
    burst = float_of_int burst;
    tokens = float_of_int burst;
    last_ns = Clock.now_ns () }

let refill t =
  let now = Clock.now_ns () in
  let dt_s = Int64.to_float (Int64.sub now t.last_ns) /. 1e9 in
  if dt_s > 0.0 then begin
    t.tokens <- Float.min t.burst (t.tokens +. (dt_s *. t.rate_per_s));
    t.last_ns <- now
  end

let try_take t =
  Mutex.protect t.lock (fun () ->
      refill t;
      if t.tokens >= 1.0 then begin
        t.tokens <- t.tokens -. 1.0;
        true
      end
      else false)

let retry_after_ms t =
  Mutex.protect t.lock (fun () ->
      refill t;
      if t.tokens >= 1.0 then 0
      else
        let missing = 1.0 -. t.tokens in
        max 1 (int_of_float (ceil (missing /. t.rate_per_s *. 1e3))))
