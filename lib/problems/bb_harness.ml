(** Workload driver and checker for the bounded-buffer problem.

    Values are tagged [pid * 1_000_000 + k] so the checker can verify, per
    producer, that the buffer preserved FIFO order. Correctness evidence:

    - the self-checking {!Sync_resources.Ring} raises [Ill_synchronized]
      on overfill, underflow, or same-side overlap (reported as [Error]);
    - consumed values are exactly the produced values (no loss, no
      duplication);
    - for each producer, its values are consumed in production order. *)

open Sync_platform

type report = {
  trace : Trace.event list;
  produced : int list; (* all values, in a canonical order *)
  consumed : int list; (* in buffer pop order *)
}

let tag ~pid k = (pid * 1_000_000) + k

let producer_of v = v / 1_000_000

let seq_of v = v mod 1_000_000

let run (module B : Bb_intf.S) ?(backend = `Thread) ?(capacity = 4)
    ?(producers = 2) ?(consumers = 2) ?(items_per_producer = 50) ?(work = 30)
    ~seed () =
  ignore seed;
  let trace = Trace.create () in
  let ring = Sync_resources.Ring.create ~work capacity in
  let res_put ~pid v =
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Enter ~arg:v ();
    Sync_resources.Ring.put ring v;
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Exit ~arg:v ()
  in
  let res_get ~pid =
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Enter ();
    let v = Sync_resources.Ring.get ring in
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Exit ~arg:v ();
    v
  in
  let buffer = B.create ~capacity ~put:res_put ~get:res_get in
  let total = producers * items_per_producer in
  let share c =
    (* Consumer c's number of items; shares differ by at most one. *)
    (total / consumers) + (if c < total mod consumers then 1 else 0)
  in
  let produce pid () =
    for k = 1 to items_per_producer do
      let v = tag ~pid k in
      Trace.record trace ~pid ~op:"put" ~phase:Trace.Request ~arg:v ();
      B.put buffer ~pid v
    done
  in
  let consume c () =
    let pid = 100 + c in
    for _ = 1 to share c do
      Trace.record trace ~pid ~op:"get" ~phase:Trace.Request ();
      ignore (B.get buffer ~pid)
    done
  in
  let workers =
    List.init producers (fun pid -> produce pid)
    @ List.init consumers (fun c -> consume c)
  in
  Fun.protect
    ~finally:(fun () -> B.stop buffer)
    (fun () -> Process.run_all ~backend workers);
  let events = Trace.events trace in
  let ivls = Ivl.intervals events in
  let consumed =
    List.filter_map
      (fun i -> if i.Ivl.op = "get" then Some (i.Ivl.enter, i.Ivl.ret) else None)
      ivls
    |> List.sort compare |> List.map snd
  in
  let produced =
    List.concat_map
      (fun pid -> List.init items_per_producer (fun k -> tag ~pid (k + 1)))
      (List.init producers Fun.id)
  in
  { trace = events; produced; consumed }

let check ~producers report =
  match Ivl.check_wellformed report.trace with
  | Error _ as e -> e
  | Ok () ->
  let sorted_eq a b = List.sort compare a = List.sort compare b in
  if not (sorted_eq report.produced report.consumed) then
    Error
      (Printf.sprintf "value conservation violated: %d produced, %d consumed"
         (List.length report.produced)
         (List.length report.consumed))
  else begin
    (* Per-producer FIFO: each producer's values appear in pop order with
       increasing sequence numbers. *)
    let rec check_producer pid =
      if pid >= producers then Ok ()
      else
        let seqs =
          List.filter_map
            (fun v -> if producer_of v = pid then Some (seq_of v) else None)
            report.consumed
        in
        let sorted = List.sort compare seqs in
        if seqs <> sorted then
          Error (Printf.sprintf "producer %d's items reordered" pid)
        else check_producer (pid + 1)
    in
    check_producer 0
  end

(** {1 Abort-injection workload}

    Same shape as {!run}, but executed under a {!Sync_platform.Fault}
    plan: each operation body fires a fault site (["bb.put.body"] /
    ["bb.get.body"]) {e before} touching the ring, and mechanism-internal
    sites (["*.pre-wait"], ["waitq.post-wakeup"], ...) may fire inside
    [B.put]/[B.get] themselves. Producers treat an injected abort as a
    lost item and move on; consumers retry (an aborted get consumed
    nothing). Termination does not depend on counting items — after the
    producers finish, the driver hands each consumer a sentinel through
    the buffer itself. A mechanism with the [`Poison] policy (CSP) makes
    everyone bail out instead, which the report records.

    Body-site triggers must eventually stop firing ([Nth]/[Every]/[Prob],
    not [Always]): consumers retry aborted gets, and the sentinel
    hand-off retries aborted puts. *)

type abort_report = {
  trace : Trace.event list;
  produced_ok : int list; (* values whose put returned normally *)
  consumed : int list; (* real values, in buffer pop order *)
  aborted_puts : int;
  aborted_gets : int;
  poisoned : bool; (* the mechanism poisoned itself (CSP abort policy) *)
}

let sentinel = max_int

let run_abort (module B : Bb_intf.S) ?(backend = `Thread) ?(capacity = 4)
    ?(producers = 2) ?(consumers = 2) ?(items_per_producer = 30) () =
  let trace = Trace.create () in
  let ring = Sync_resources.Ring.create ~work:10 capacity in
  let res_put ~pid v =
    (* Site fires before the ring is touched: an aborted put stored
       nothing, so the trace has no Enter and the value counts as lost. *)
    if v <> sentinel then Fault.site "bb.put.body";
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Enter ~arg:v ();
    Sync_resources.Ring.put ring v;
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Exit ~arg:v ()
  in
  let res_get ~pid =
    Fault.site "bb.get.body";
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Enter ();
    let v = Sync_resources.Ring.get ring in
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Exit ~arg:v ();
    v
  in
  let buffer = B.create ~capacity ~put:res_put ~get:res_get in
  let produced_ok = Array.make producers [] in
  let aborted_puts = Atomic.make 0 in
  let aborted_gets = Atomic.make 0 in
  let poisoned = Atomic.make false in
  let produce pid () =
    try
      for k = 1 to items_per_producer do
        let v = tag ~pid k in
        Trace.record trace ~pid ~op:"put" ~phase:Trace.Request ~arg:v ();
        match B.put buffer ~pid v with
        | () -> produced_ok.(pid) <- v :: produced_ok.(pid)
        | exception Fault.Injected _ -> Atomic.incr aborted_puts
        | exception Sync_csp.Csp.Poisoned _ ->
          Atomic.set poisoned true;
          raise Exit
      done
    with Exit -> ()
  in
  let consume c () =
    let pid = 100 + c in
    let rec loop () =
      Trace.record trace ~pid ~op:"get" ~phase:Trace.Request ();
      match B.get buffer ~pid with
      | v -> if v <> sentinel then loop ()
      | exception Fault.Injected _ ->
        Atomic.incr aborted_gets;
        loop ()
      | exception Sync_csp.Csp.Poisoned _ -> Atomic.set poisoned true
    in
    loop ()
  in
  Fun.protect
    (* A poisoned mechanism may fail its own stop protocol; that is part
       of the abort contract, not a harness error. *)
    ~finally:(fun () -> try B.stop buffer with _ -> ())
    (fun () ->
      let prods =
        List.init producers (fun pid -> Process.spawn ~backend (produce pid))
      in
      let cons =
        List.init consumers (fun c -> Process.spawn ~backend (consume c))
      in
      List.iter Process.join prods;
      for i = 0 to consumers - 1 do
        let pid = 900 + i in
        let rec put_sentinel () =
          match B.put buffer ~pid sentinel with
          | () -> ()
          | exception Fault.Injected _ -> put_sentinel ()
          | exception Sync_csp.Csp.Poisoned _ -> Atomic.set poisoned true
        in
        put_sentinel ()
      done;
      List.iter Process.join cons);
  let events = Trace.events trace in
  let consumed =
    List.filter_map
      (fun i ->
        if i.Ivl.op = "get" && i.Ivl.ret <> sentinel then
          Some (i.Ivl.enter, i.Ivl.ret)
        else None)
      (Ivl.intervals events)
    |> List.sort compare |> List.map snd
  in
  { trace = events;
    produced_ok =
      List.concat_map (fun l -> List.rev l) (Array.to_list produced_ok);
    consumed;
    aborted_puts = Atomic.get aborted_puts;
    aborted_gets = Atomic.get aborted_gets;
    poisoned = Atomic.get poisoned }

let check_abort ~producers report =
  match Ivl.check_wellformed report.trace with
  | Error _ as e -> e
  | Ok () ->
    let fifo () =
      let rec check_producer pid =
        if pid >= producers then Ok ()
        else
          let seqs =
            List.filter_map
              (fun v -> if producer_of v = pid then Some (seq_of v) else None)
              report.consumed
          in
          if seqs <> List.sort compare seqs then
            Error (Printf.sprintf "producer %d's items reordered" pid)
          else check_producer (pid + 1)
      in
      check_producer 0
    in
    if report.poisoned then begin
      (* Poisoned runs may drop in-flight items, but must never invent or
         duplicate one. *)
      let dup =
        List.length report.consumed
        <> List.length (List.sort_uniq compare report.consumed)
      in
      if dup then Error "poisoned run duplicated a value"
      else if
        List.exists
          (fun v -> not (List.mem v report.produced_ok))
          report.consumed
      then Error "poisoned run consumed a value never produced"
      else fifo ()
    end
    else if
      List.sort compare report.produced_ok <> List.sort compare report.consumed
    then
      Error
        (Printf.sprintf
           "conservation violated under aborts: %d put ok, %d consumed"
           (List.length report.produced_ok)
           (List.length report.consumed))
    else fifo ()

let verify ?backend ?(capacity = 4) ?(producers = 2) ?(consumers = 2)
    ?(items_per_producer = 50) (module B : Bb_intf.S) =
  match
    run (module B) ?backend ~capacity ~producers ~consumers
      ~items_per_producer ~seed:7L ()
  with
  | report -> check ~producers report
  | exception Sync_resources.Busywork.Ill_synchronized msg ->
    Error ("resource contract violated: " ^ msg)
