(* The two additional mechanisms: conditional critical regions and
   eventcounts/sequencers — primitive-level semantics. *)

open Sync_platform

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Conditional critical regions                                        *)

module Ccr = Sync_ccr.Ccr

let test_ccr_mutual_exclusion () =
  let v = Ccr.create (ref 0) in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Ccr.region v (fun _ ->
          Testutil.Gauge.enter g;
          Thread.yield ();
          Testutil.Gauge.leave g)
    done
  in
  Testutil.run_all [ worker; worker; worker ];
  check_int "exclusive" 1 (Testutil.Gauge.max g)

let test_ccr_guard_blocks_until_true () =
  let v = Ccr.create (ref false) in
  let entered = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        Ccr.region ~when_:(fun s -> !s) v (fun _ -> Atomic.set entered true))
  in
  Testutil.never "entered with false guard" (fun () -> Atomic.get entered);
  check_int "one blocked" 1 (Ccr.waiters v);
  Ccr.region v (fun s -> s := true);
  Sync_platform.Process.join t;
  check_bool "entered" true (Atomic.get entered)

let test_ccr_guard_sees_latest_state () =
  (* Several consumers with token guards: exactly as many pass as tokens
     granted; guards re-checked under exclusion so no over-admission. *)
  let v = Ccr.create (ref 0) in
  let consumed = Atomic.make 0 in
  let consumer () =
    Ccr.region ~when_:(fun s -> !s > 0) v (fun s ->
        decr s;
        ignore (Atomic.fetch_and_add consumed 1))
  in
  let ts = List.init 4 (fun _ -> Testutil.spawn consumer) in
  Testutil.eventually "all parked" (fun () -> Ccr.waiters v = 4);
  Ccr.region v (fun s -> s := 2);
  Testutil.eventually "two consumed" (fun () -> Atomic.get consumed = 2);
  Testutil.never "over-admission" (fun () -> Atomic.get consumed > 2);
  Ccr.region v (fun s -> s := 2);
  List.iter Sync_platform.Process.join ts;
  check_int "all consumed" 4 (Atomic.get consumed)

let test_ccr_exception_releases () =
  let v = Ccr.create () in
  (try Ccr.region v (fun () -> failwith "boom") with Failure _ -> ());
  Ccr.region v (fun () -> ())

let test_ccr_await () =
  let v = Ccr.create (ref 0) in
  let woke = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        Ccr.await v (fun s -> !s >= 3);
        Atomic.set woke true)
  in
  Ccr.region v (fun s -> s := 2);
  Testutil.never "woke early" (fun () -> Atomic.get woke);
  Ccr.region v (fun s -> s := 3);
  Sync_platform.Process.join t;
  check_bool "woke" true (Atomic.get woke)

(* ------------------------------------------------------------------ *)
(* Eventcounts and sequencers                                          *)

module E = Eventcount.Eventcount
module Seq_ = Eventcount.Sequencer

let test_eventcount_monotone () =
  let e = E.create () in
  check_int "initial" 0 (E.read e);
  E.advance e;
  E.advance e;
  check_int "advanced" 2 (E.read e);
  E.advance_to e 5;
  check_int "jumped" 5 (E.read e);
  E.advance_to e 3;
  check_int "monotone" 5 (E.read e)

let test_eventcount_await () =
  let e = E.create () in
  let woke = Atomic.make false in
  let t =
    Testutil.spawn (fun () ->
        E.await e 3;
        Atomic.set woke true)
  in
  E.advance e;
  E.advance e;
  Testutil.never "woke below threshold" (fun () -> Atomic.get woke);
  check_int "one waiter" 1 (E.waiters e);
  E.advance e;
  Sync_platform.Process.join t;
  check_bool "woke at threshold" true (Atomic.get woke)

let test_eventcount_await_past () =
  let e = E.create ~initial:10 () in
  E.await e 5 (* already satisfied: returns immediately *)

let test_eventcount_wakes_all_due () =
  let e = E.create () in
  let woke = Atomic.make 0 in
  let ts =
    List.init 3 (fun i ->
        Testutil.spawn (fun () ->
            E.await e (i + 1);
            ignore (Atomic.fetch_and_add woke 1)))
  in
  Testutil.eventually "all parked" (fun () -> E.waiters e = 3);
  E.advance_to e 2;
  Testutil.eventually "two woke" (fun () -> Atomic.get woke = 2);
  Testutil.never "third woke early" (fun () -> Atomic.get woke > 2);
  E.advance e;
  List.iter Sync_platform.Process.join ts;
  check_int "all woke" 3 (Atomic.get woke)

let test_sequencer_unique_ordered () =
  let s = Seq_.create () in
  let got = Tsqueue.create () in
  Testutil.run_all
    (List.init 4 (fun _ () ->
         for _ = 1 to 25 do
           Tsqueue.push got (Seq_.ticket s)
         done));
  let tickets = List.sort compare (Tsqueue.drain got) in
  Alcotest.(check (list int)) "dense unique" (List.init 100 Fun.id) tickets

let () =
  Alcotest.run "extensions"
    [ ( "ccr",
        [ Alcotest.test_case "mutual exclusion" `Quick
            test_ccr_mutual_exclusion;
          Alcotest.test_case "guard blocks" `Quick
            test_ccr_guard_blocks_until_true;
          Alcotest.test_case "no over-admission" `Quick
            test_ccr_guard_sees_latest_state;
          Alcotest.test_case "exception releases" `Quick
            test_ccr_exception_releases;
          Alcotest.test_case "await" `Quick test_ccr_await ] );
      ( "eventcount",
        [ Alcotest.test_case "monotone" `Quick test_eventcount_monotone;
          Alcotest.test_case "await" `Quick test_eventcount_await;
          Alcotest.test_case "await past" `Quick test_eventcount_await_past;
          Alcotest.test_case "wakes all due" `Quick
            test_eventcount_wakes_all_due;
          Alcotest.test_case "sequencer unique ordered" `Quick
            test_sequencer_unique_ordered ] ) ]
