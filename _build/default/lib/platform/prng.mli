(** Deterministic splittable pseudo-random number generator.

    Workload generators need reproducible randomness that is independent of
    the global [Random] state and can be split per-process so that
    concurrent generators do not contend or correlate. This is a SplitMix64
    implementation. *)

type t

val make : int64 -> t
(** [make seed] creates a generator from a 64-bit seed. *)

val split : t -> t
(** [split t] returns a statistically independent generator and advances
    [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
