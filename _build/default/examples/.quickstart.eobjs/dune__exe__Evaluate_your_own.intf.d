examples/evaluate_your_own.mli:
