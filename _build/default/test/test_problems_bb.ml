open Sync_problems

let solutions : (string * (module Bb_intf.S)) list =
  [ ("semaphore", (module Bb_sem)); ("monitor", (module Bb_mon));
    ("serializer", (module Bb_ser)); ("pathexpr", (module Bb_path));
    ("csp", (module Bb_csp)); ("ccr", (module Bb_ccr));
    ("eventcount", (module Bb_evc)) ]

let check_result name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let test_default (name, m) () = check_result name (Bb_harness.verify m)

let test_capacity_one (name, m) () =
  check_result name (Bb_harness.verify ~capacity:1 ~items_per_producer:20 m)

let test_many_workers (name, m) () =
  check_result name
    (Bb_harness.verify ~capacity:3 ~producers:4 ~consumers:3
       ~items_per_producer:25 m)

let test_single_producer_consumer (name, m) () =
  check_result name
    (Bb_harness.verify ~producers:1 ~consumers:1 ~items_per_producer:100 m)

let suite mk = List.map (fun (name, m) ->
    Alcotest.test_case name `Quick (mk (name, m)))
    solutions

let test_meta_constraints_covered () =
  (* Every solution must tag an implementation fragment for every
     constraint in the problem spec. *)
  List.iter
    (fun (name, m) ->
      let module B = (val m : Bb_intf.S) in
      List.iter
        (fun c ->
          let id = c.Sync_taxonomy.Constr.id in
          if not (List.mem_assoc id B.meta.Sync_taxonomy.Meta.fragments) then
            Alcotest.failf "%s: missing fragment for %s" name id)
        Bb_intf.spec.Spec.constraints)
    solutions

let () =
  Alcotest.run "problems-bb"
    [ ("default", suite test_default);
      ("capacity-1", suite test_capacity_one);
      ("many-workers", suite test_many_workers);
      ("spsc", suite test_single_producer_consumer);
      ( "meta",
        [ Alcotest.test_case "constraints covered" `Quick
            test_meta_constraints_covered ] ) ]
