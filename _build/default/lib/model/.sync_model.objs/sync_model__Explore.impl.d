lib/model/explore.ml: Array Hashtbl List Printf String Sysstate
