(* The E27 feedback controller: close the loop from the E21 contention
   profiler to the tier knobs the platform now exposes.

   A low-frequency sampler thread reads the live probe rings
   (Probe.live_snapshot — the seqlock path, never a torn slot), folds
   the events newer than its previous sample into per-site wait/hold
   statistics, and drives two actuators:

   - per-site tier: Mutex.swap_to through the hot-swap indirection.
     The policy is a wait/hold ratio classifier with hysteresis — a
     site must vote for the same non-current tier on [hysteresis]
     consecutive samples before the controller flips it, so a single
     noisy window cannot thrash a site between tiers.

   - global spin-vs-park: Mutex.set_spin_rounds (live) and
     Backoff.set_limits (creation-scoped), steered by the observed
     median-ish wait scale. Short waits earn more spinning before the
     park; long waits cut the spin budget toward an immediate park.

   The controller never blocks workers: sampling copies rings, and
   swap_to's only wait is the old cell's drain (one critical section).
   Every flip is also visible in the exported Chrome trace as a Flip
   instant against the site (emitted by Mutex.swap_to itself). *)

module Probe = Sync_trace.Probe
module Mutex = Sync_platform.Mutex
module Backoff = Sync_prims.Backoff
module Queuelock = Sync_prims.Queuelock

type policy = {
  sample_every_ms : int;
  min_samples : int;  (* acquires per site per window before deciding *)
  fast_below : float;  (* wait/hold ratio below which -> `Fast *)
  queue_above : float;  (* wait/hold ratio above which -> `Queue *)
  queue_min_wait_ns : float;
      (* absolute mean-wait floor for a `Queue vote: a high ratio over
         sub-microsecond waits is short-hold handoff overhead, which
         the CAS fast path serves better; a local-spin queue there only
         buys oversubscription stalls *)
  hysteresis : int;  (* consecutive agreeing samples before a flip *)
  queue_kind : Queuelock.kind;  (* which queue lock the hot tier uses *)
  tune_spin : bool;
  spin_cutoff_ns : float;  (* mean wait below this favours spinning *)
  revert_factor : float;
      (* post-flip probation: revert if mean wait grows past this *)
}

let default_policy =
  { sample_every_ms = 10;
    min_samples = 32;
    fast_below = 0.5;
    queue_above = 4.0;
    queue_min_wait_ns = 20_000.0;
    hysteresis = 2;
    queue_kind = Queuelock.MCS;
    tune_spin = true;
    spin_cutoff_ns = 5_000.0;
    revert_factor = 1.5 }

(* Per-site statistics for one sampling window. *)
type stats = {
  mutable acquires : int;
  mutable wait_ns : int;
  mutable holds : int;
  mutable hold_ns : int;
}

let fold_window ~since events =
  let table : (string, stats) Hashtbl.t = Hashtbl.create 16 in
  let get site =
    match Hashtbl.find_opt table site with
    | Some s -> s
    | None ->
      let s = { acquires = 0; wait_ns = 0; holds = 0; hold_ns = 0 } in
      Hashtbl.add table site s;
      s
  in
  List.iter
    (fun (e : Probe.event) ->
      if e.t0 > since then
        match e.kind with
        | Probe.Acquire ->
          let s = get e.site in
          s.acquires <- s.acquires + 1;
          s.wait_ns <- s.wait_ns + e.dur
        | Probe.Hold ->
          let s = get e.site in
          s.holds <- s.holds + 1;
          s.hold_ns <- s.hold_ns + e.dur
        | _ -> ())
    events;
  table

(* One classification: the wait/hold ratio is a load index for the
   site. Waiting a small fraction of the hold time means the CAS fast
   path wins (uncontended); waiting several multiples of it means
   handoff dominates and a local-spin FIFO queue is the scalable
   choice; in between, the default system mutex is the safe middle. *)
let classify p (s : stats) : Mutex.tier option =
  if s.acquires < p.min_samples then None
  else begin
    let wait = float_of_int s.wait_ns /. float_of_int s.acquires in
    let hold =
      float_of_int s.hold_ns /. float_of_int (max 1 s.holds)
    in
    let ratio = wait /. Float.max 1.0 hold in
    Some
      (if ratio >= p.queue_above then
         if wait >= p.queue_min_wait_ns then `Queue p.queue_kind
         else `Fast
       else if ratio <= p.fast_below then `Fast
       else `Sys)
  end

type decision = {
  d_site : string;
  d_tier : Mutex.tier;
  d_wait_ns : float;  (* mean wait that drove the vote *)
  d_ratio : float;
}

(* Post-flip probation state: the pre-flip window is the baseline the
   flipped tier must not regress. *)
type trial = {
  tr_prev : Mutex.tier;  (* tier to fall back to *)
  tr_wait : float;  (* pre-flip mean wait *)
  tr_acquires : int;  (* pre-flip window's acquire count *)
  mutable tr_age : int;  (* windows since the flip *)
}

let probation_grace = 3
(* Windows a trial may stay below the sample floor before the acquire
   count itself becomes the verdict: a tier so bad the site stops
   turning over (a spin queue starving its own waker) never produces a
   full window, so waiting for one would make exactly the worst flips
   permanent. *)

type t = {
  policy : policy;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
  log_m : Stdlib.Mutex.t;
  mutable log : decision list;  (* newest first, guarded by log_m *)
  mutable samples : int;  (* sampling iterations completed *)
  (* sampler-thread state *)
  streak : (string, Mutex.tier * int) Hashtbl.t;
  probation : (string, trial) Hashtbl.t;
      (* every flip is a trial until a post-flip window confirms it *)
  banned : (string * Mutex.tier, unit) Hashtbl.t;
      (* tiers a probation already rejected for a site — the wait/hold
         ratio cannot see "the flip itself made waits worse" (it keeps
         voting the same way), so rejected trials must not repeat *)
  site_flips : (string, int) Hashtbl.t;
      (* executed flips per site: each one doubles the streak the next
         flip needs, damping tier ping-pong on a noisy boundary *)
  mutable cursor : Probe.cursor;  (* consumption frontier over the rings *)
  saved_limits : int * int;
  saved_spin : int;
}

let decisions t =
  Stdlib.Mutex.lock t.log_m;
  let l = List.rev t.log in
  Stdlib.Mutex.unlock t.log_m;
  l

let samples t = t.samples

let flips t = List.length (decisions t)

(* Global spin steering: compare the mean wait across every swappable
   site to the cutoff. Short waits double the spin budget (capped);
   long waits halve it and tighten the backoff saturation so threads
   park sooner. Both knobs recover when the regime changes back. *)
let steer_spin p table =
  let total_w = ref 0 and total_n = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      total_w := !total_w + s.wait_ns;
      total_n := !total_n + s.acquires)
    table;
  if !total_n >= p.min_samples then begin
    let mean = float_of_int !total_w /. float_of_int !total_n in
    let cur = Mutex.spin_rounds () in
    if mean <= p.spin_cutoff_ns then begin
      Mutex.set_spin_rounds (min 16 (max 1 (cur * 2)));
      Backoff.set_limits ~min_wait:16 ~max_wait:4096
    end
    else begin
      Mutex.set_spin_rounds (cur / 2);
      Backoff.set_limits ~min_wait:16 ~max_wait:1024
    end
  end

let sample_once t =
  let p = t.policy in
  let events, cursor = Probe.live_read t.cursor in
  t.cursor <- cursor;
  (* The cursor already bounds the read to fresh events, so the fold
     keeps everything. *)
  let table = fold_window ~since:min_int events in
  let log_decision d =
    Stdlib.Mutex.lock t.log_m;
    t.log <- d :: t.log;
    Stdlib.Mutex.unlock t.log_m
  in
  let mean_wait (s : stats) =
    float_of_int s.wait_ns /. float_of_int (max 1 s.acquires)
  in
  let mean_ratio (s : stats) =
    mean_wait s
    /. Float.max 1.0
         (float_of_int s.hold_ns /. float_of_int (max 1 s.holds))
  in
  let execute_flip site name (s : stats) want =
    let from = Mutex.current_tier site in
    if Mutex.swap_to site want then begin
      Hashtbl.replace t.site_flips name
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.site_flips name));
      (* Every flip is a trial judged against the deciding window. *)
      (match from with
      | Some prev ->
        Hashtbl.replace t.probation name
          { tr_prev = prev; tr_wait = mean_wait s;
            tr_acquires = s.acquires; tr_age = 0 }
      | None -> ());
      log_decision
        { d_site = name; d_tier = want; d_wait_ns = mean_wait s;
          d_ratio = mean_ratio s }
    end
  in
  let judge_trial site name (tr : trial) s_opt =
    tr.tr_age <- tr.tr_age + 1;
    let acquires =
      match s_opt with Some s -> s.acquires | None -> 0
    in
    (* Two ways a trial fails: a full window whose waits regressed past
       the baseline, or — when the flipped tier is so bad the site
       stops turning over and no window ever fills — an acquire count
       that collapsed relative to a busy baseline. *)
    let verdict =
      match s_opt with
      | Some s when s.acquires >= p.min_samples ->
        Some (mean_wait s > tr.tr_wait *. p.revert_factor)
      | _ when tr.tr_age >= probation_grace ->
        Some
          (tr.tr_acquires >= p.min_samples
          && acquires * 4 < tr.tr_acquires)
      | _ -> None
    in
    match verdict with
    | None -> ()
    | Some regressed ->
      Hashtbl.remove t.probation name;
      if regressed then (
        match Mutex.current_tier site with
        | Some bad ->
          Hashtbl.replace t.banned (name, bad) ();
          if Mutex.swap_to site tr.tr_prev then
            let wait =
              match s_opt with Some s -> mean_wait s | None -> 0.
            in
            let ratio =
              match s_opt with Some s -> mean_ratio s | None -> 0.
            in
            log_decision
              { d_site = name; d_tier = tr.tr_prev; d_wait_ns = wait;
                d_ratio = ratio }
        | None -> ())
  in
  List.iter
    (fun site ->
      let name = site.Mutex.name in
      let s_opt = Hashtbl.find_opt table name in
      match Hashtbl.find_opt t.probation name with
      | Some tr ->
        (* Probation verdict instead of classification: the ratio
           signal cannot see that a flip itself made waits worse — a
           worse tier produces the same vote even harder. *)
        Hashtbl.remove t.streak name;
        judge_trial site name tr s_opt
      | None -> (
        match s_opt with
        | None -> Hashtbl.remove t.streak name
        | Some s -> (
          match classify p s with
          | None -> Hashtbl.remove t.streak name
          | Some want ->
            if
              Mutex.current_tier site = Some want
              || Hashtbl.mem t.banned (name, want)
            then Hashtbl.remove t.streak name
            else begin
              let n =
                match Hashtbl.find_opt t.streak name with
                | Some (w, n) when w = want -> n + 1
                | _ -> 1
              in
              (* Each executed flip doubles the streak the next one
                 needs: a site oscillating across a classifier boundary
                 settles instead of ping-ponging tiers. *)
              let flips_so_far =
                Option.value ~default:0 (Hashtbl.find_opt t.site_flips name)
              in
              let need = p.hysteresis * (1 lsl min 6 flips_so_far) in
              if n >= need then begin
                Hashtbl.remove t.streak name;
                execute_flip site name s want
              end
              else Hashtbl.replace t.streak name (want, n)
            end)))
    (Mutex.swap_sites ());
  if p.tune_spin then steer_spin p table;
  t.samples <- t.samples + 1

let make policy =
  { policy;
    stop_flag = Atomic.make false;
    thread = None;
    log_m = Stdlib.Mutex.create ();
    log = [];
    samples = 0;
    streak = Hashtbl.create 16;
    probation = Hashtbl.create 16;
    banned = Hashtbl.create 16;
    site_flips = Hashtbl.create 16;
    cursor = Probe.start_cursor;
    saved_limits = Backoff.limits ();
    saved_spin = Mutex.spin_rounds () }

let create ?(policy = default_policy) () = make policy

let start ?(policy = default_policy) () =
  let t = make policy in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get t.stop_flag) do
          Thread.delay (float_of_int policy.sample_every_ms /. 1e3);
          if not (Atomic.get t.stop_flag) then sample_once t
        done)
      ()
  in
  t.thread <- Some th;
  t

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with
  | Some th ->
    Thread.join th;
    t.thread <- None
  | None -> ());
  (* Leave the process as found: the tuned globals are experiment
     state, not configuration. *)
  let min_wait, max_wait = t.saved_limits in
  Backoff.set_limits ~min_wait ~max_wait;
  Mutex.set_spin_rounds t.saved_spin

let with_controller ?policy f =
  let t = start ?policy () in
  match f () with
  | v ->
    stop t;
    (v, t)
  | exception e ->
    stop t;
    raise e
