(** Synchronization constraints (Section 3): every scheme decomposes into
    exclusion constraints ("if condition then exclude process A") and
    priority constraints ("if condition then A has priority over B"),
    whose conditions draw on the six {!Info.kind} categories. A problem
    specification is a named set of such constraints; solutions tag the
    code fragments implementing each constraint so the ease-of-use
    analysis (constraint independence, Section 4.2) can compare them
    across problems and mechanisms. *)

type cls = Exclusion | Priority

type t = {
  id : string;  (** stable identifier, e.g. "rw-exclusion" *)
  cls : cls;
  info : Info.kind list;  (** information the condition refers to *)
  description : string;   (** the constraint in the paper's if-then form *)
}

val make :
  id:string -> cls:cls -> info:Info.kind list -> description:string -> t

val cls_to_string : cls -> string

val pp : Format.formatter -> t -> unit
