lib/platform/prng.mli:
