lib/monitor/protected.ml: Monitor
