(** Bounded buffer with path expressions:

    {v path N : (put ; get) end  path put end  path get end v}

    The numeric bound keeps puts at most [N] ahead of gets (Flon-Habermann
    [10]); the two singleton paths serialize puts among themselves and
    gets among themselves, while still allowing one put to overlap one get
    (which the ring's contract permits). Note how the "buffer not full /
    not empty" local-state conditions are never consulted: the path
    encodes them as token counts — history information — which is exactly
    the paper's observation that paths reach local state only indirectly. *)

open Sync_taxonomy

type t = {
  sys : Sync_pathexpr.Pathexpr.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "pathexpr"

let spec_for ~capacity =
  let open Sync_pathexpr.Ast in
  [ Bounded (capacity, Seq [ Op "put"; Op "get" ]); Op "put"; Op "get" ]

let create ~capacity ~put ~get =
  { sys = Sync_pathexpr.Pathexpr.compile (spec_for ~capacity);
    res_put = put; res_get = get }

let put t ~pid v =
  Sync_pathexpr.Pathexpr.run t.sys "put" (fun () -> t.res_put ~pid v)

let get t ~pid = Sync_pathexpr.Pathexpr.run t.sys "get" (fun () -> t.res_get ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "path"; "N:(put;get)"; "end" ]);
        ("bb-no-underflow", [ "path"; "N:(put;get)"; "end" ]);
        ("bb-access-exclusion",
         [ "path"; "put"; "end"; "path"; "get"; "end" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[]
    ~separation:Meta.Enforced ()
