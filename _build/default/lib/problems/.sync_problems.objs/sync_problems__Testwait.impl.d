lib/problems/testwait.ml: Int64 Sync_platform Thread
