(** Bounded buffer with eventcounts and sequencers — the flagship
    Reed-Kanodia example. Two sequencers order producers and consumers;
    two eventcounts ([produced]/[consumed]) encode both the capacity
    window and the data dependency, with no mutual-exclusion primitive
    anywhere: producer [t] may run once [consumed >= t - capacity + 1]
    and all earlier puts finished ([produced >= t]). *)

open Sync_platform.Eventcount
open Sync_taxonomy

type t = {
  capacity : int;
  producers : Sync_platform.Eventcount.Sequencer.t;
  consumers : Sync_platform.Eventcount.Sequencer.t;
  produced : Eventcount.t;
  consumed : Eventcount.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "eventcount"

let create ~capacity ~put ~get =
  { capacity;
    producers = Sequencer.create ();
    consumers = Sequencer.create ();
    produced = Eventcount.create ();
    consumed = Eventcount.create ();
    res_put = put; res_get = get }

(* Abort safety: none — a sequencer ticket is a {e completion obligation}.
   Once [ticket] is drawn, every later holder waits for this turn's
   [advance]; there is no way to return a ticket, so a body abort either
   wedges the pipeline (never advance) or mis-announces an item that was
   never stored (advance anyway). The robustness harness therefore never
   injects body faults through this solution, and the scorecard reports
   eventcounts as abort-intolerant — the price of doing all coordination
   through monotonic history counts (see docs/robustness.md). *)

let put t ~pid v =
  let ticket = Sequencer.ticket t.producers in
  Eventcount.await t.produced ticket; (* my turn among producers *)
  Eventcount.await t.consumed (ticket - t.capacity + 1); (* space *)
  t.res_put ~pid v;
  Eventcount.advance t.produced

let get t ~pid =
  let ticket = Sequencer.ticket t.consumers in
  Eventcount.await t.consumed ticket; (* my turn among consumers *)
  Eventcount.await t.produced (ticket + 1); (* item exists *)
  let v = t.res_get ~pid in
  Eventcount.advance t.consumed;
  v

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "await(consumed,ticket-capacity+1)" ]);
        ("bb-no-underflow", [ "await(produced,ticket+1)" ]);
        ("bb-access-exclusion",
         [ "await(produced,ticket)"; "await(consumed,ticket)"; "sequencer" ])
      ]
    ~info_access:
      [ (Info.Local_state, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "produced/consumed eventcounts mirror buffer occupancy" ]
    ~separation:Meta.Separated ()
