(* E25 primitive-class substrate tests: LL/SC emulation semantics
   (including the ABA tag-wraparound edge), bakery bounded timestamps
   and ordering, exclusion/conservation storms for every restricted
   class through the [Prims] factories, the pinned typed rejection of
   strong semaphores on the RW class, and the creation-scoped backoff
   spin-vs-yield decision. *)

open Sync_prims
module Platform = Sync_platform
module L = Llsc.Make (Regs.Shared)
module B = Bakery.Make (Regs.Shared)

(* ---------------------------------------------------------------- *)
(* LL/SC emulation                                                  *)
(* ---------------------------------------------------------------- *)

(* A stale reservation's SC must fail when any successful SC
   intervened — except the ABA escape: after exactly a multiple of
   [2^tag_bits] intervening successful SCs, if the value field also
   matches the reservation, the packed word has cycled back and the
   stale SC succeeds. With [tag_bits = 3] the period is 8. *)
let prop_sc_stale_iff =
  QCheck.Test.make ~count:200 ~name:"llsc: stale sc fails iff tag or value moved"
    QCheck.(triple (int_bound 32) (int_bound 100) bool)
    (fun (n, v0, restore) ->
      let c = L.create ~tag_bits:3 v0 in
      let r, seen = L.ll c in
      assert (seen = v0);
      (* n intervening successful SCs; the last one either restores the
         reserved value or lands on a different one. *)
      for k = 1 to n do
        let v = if k = n && not restore then v0 + 1 else if k mod 2 = 0 then v0 else v0 + 1 in
        L.store c v
      done;
      let final = L.peek c in
      let expect = n mod 8 = 0 && final = v0 in
      let got = L.sc c r (v0 + 7) in
      if got then L.store c v0;
      got = expect)

(* Pin the wraparound edge deterministically: with [tag_bits = 2] the
   tag period is 4, so a same-value stale SC fails after 1..3
   intervening SCs and succeeds after exactly 4. *)
let test_aba_wraparound () =
  for n = 1 to 8 do
    let c = L.create ~tag_bits:2 5 in
    Alcotest.(check int) "tag_bits" 2 (L.tag_bits c);
    let r, _ = L.ll c in
    for _ = 1 to n do
      (* each pair of stores is two successful SCs ending back at 5 *)
      L.store c 6;
      L.store c 5
    done;
    (* 2n intervening SCs, value restored: ABA escape iff 2n mod 4 = 0 *)
    let expect = 2 * n mod 4 = 0 in
    Alcotest.(check bool)
      (Printf.sprintf "stale sc after %d same-value SCs" (2 * n))
      expect
      (L.sc c r 9)
  done

(* Single-threaded model check: a fresh ll/sc pair always succeeds and
   the cell tracks a plain int reference through a random op mix. *)
let prop_llsc_model =
  let op =
    QCheck.(
      oneof
        [ map (fun v -> `Store (v land 0xFF)) (int_bound 255);
          map (fun v -> `Sc (v land 0xFF)) (int_bound 255);
          always `Peek ])
  in
  QCheck.Test.make ~count:100 ~name:"llsc: single-thread fresh sc never fails"
    QCheck.(list_of_size Gen.(int_range 1 40) op)
    (fun ops ->
      let c = L.create ~tag_bits:4 0 in
      let model = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Store v ->
              L.store c v;
              model := v;
              true
          | `Sc v ->
              let r, seen = L.ll c in
              let ok = seen = !model && L.sc c r v in
              if ok then model := v;
              ok
          | `Peek -> L.peek c = !model)
        ops)

let test_llsc_lock_sem () =
  let l = L.Lock.create () in
  L.Lock.lock l;
  Alcotest.(check bool) "locked: try fails" false (L.Lock.try_lock l);
  L.Lock.unlock l;
  Alcotest.(check bool) "free: try succeeds" true (L.Lock.try_lock l);
  L.Lock.unlock l;
  let s = L.Sem.create 2 in
  Alcotest.(check int) "sem value" 2 (L.Sem.value s);
  L.Sem.p s;
  Alcotest.(check bool) "try_p" true (L.Sem.try_p s);
  Alcotest.(check bool) "try_p empty" false (L.Sem.try_p s);
  Alcotest.(check bool) "p_poll expired" false (L.Sem.p_poll s (fun () -> true));
  L.Sem.v_n s 2;
  Alcotest.(check int) "sem restored" 2 (L.Sem.value s)

(* ---------------------------------------------------------------- *)
(* Bakery: bounded timestamps and doorway ordering                  *)
(* ---------------------------------------------------------------- *)

(* Doorways that do not straddle a drain are FCFS: successive doorways
   on distinct slots (single thread, no releases between) mint strictly
   increasing tickets 1..k, all within the bound; after a full drain the
   next doorway starts over at 1. *)
let prop_bakery_doorway_order =
  QCheck.Test.make ~count:100 ~name:"bakery: doorway tickets ordered and bounded"
    QCheck.(pair (int_range 2 6) (int_range 2 64))
    (fun (slots, bound) ->
      let b = B.create ~bound ~slots () in
      let k = min slots bound in
      let tickets = List.init k (fun i -> B.doorway b i) in
      let increasing =
        List.for_all2 (fun tk i -> tk = i + 1) tickets (List.init k Fun.id)
      in
      for i = 0 to k - 1 do
        B.unlock b ~slot:i
      done;
      let after_drain = B.doorway b 0 in
      B.unlock b ~slot:0;
      increasing && B.max_ticket_seen b <= bound && after_drain = 1)

(* Overflow handling, pinned: with bound 2 and two live tickets, a
   third doorway would mint 3 — try_lock must decline (typed as a
   failed attempt, counted as an overflow stall) rather than exceed the
   bound; after the drain it succeeds at ticket 1. *)
let test_bakery_overflow_bounded () =
  let b = B.create ~bound:2 ~slots:3 () in
  Alcotest.(check int) "first ticket" 1 (B.doorway b 0);
  Alcotest.(check int) "second ticket" 2 (B.doorway b 1);
  Alcotest.(check bool) "overflowing try_lock declines" false (B.try_lock b ~slot:2);
  Alcotest.(check int) "one overflow stall" 1 (B.overflow_stalls b);
  Alcotest.(check int) "bound respected" 2 (B.max_ticket_seen b);
  B.unlock b ~slot:0;
  B.unlock b ~slot:1;
  Alcotest.(check bool) "post-drain try_lock" true (B.try_lock b ~slot:2);
  Alcotest.(check int) "restarted at 1 (still bounded)" 2 (B.max_ticket_seen b);
  B.unlock b ~slot:2

(* Concurrent bakery storm with a small bound: exclusion holds, every
   entry lands, and no minted ticket ever exceeds the bound even when
   overflow drains are forced. *)
let test_bakery_bounded_storm () =
  let tasks = 4 and rounds = 150 and bound = 8 in
  let b = B.create ~bound ~slots:tasks () in
  let gauge = Testutil.Gauge.create () in
  let entries = ref 0 in
  Testutil.run_all
    (List.init tasks (fun i () ->
         for _ = 1 to rounds do
           B.lock b ~slot:i;
           Testutil.Gauge.enter gauge;
           incr entries;
           Testutil.Gauge.leave gauge;
           B.unlock b ~slot:i
         done));
  Alcotest.(check int) "mutual exclusion" 1 (Testutil.Gauge.max gauge);
  Alcotest.(check int) "all entries" (tasks * rounds) !entries;
  Alcotest.(check bool)
    (Printf.sprintf "tickets bounded (saw %d)" (B.max_ticket_seen b))
    true
    (B.max_ticket_seen b <= bound)

(* ---------------------------------------------------------------- *)
(* Factory storms: every restricted class                           *)
(* ---------------------------------------------------------------- *)

let lock_storm cls () =
  let lk = Prims.make_lock cls in
  let tasks = 4 and rounds = 200 in
  let gauge = Testutil.Gauge.create () in
  let entries = ref 0 in
  Testutil.run_all
    (List.init tasks (fun i () ->
         for r = 1 to rounds do
           (* odd tasks mix in try_lock attempts *)
           if i land 1 = 1 && r land 3 = 0 then begin
             let rec attempt () = if not (lk.Prims.lk_try ()) then attempt () in
             attempt ()
           end
           else lk.Prims.lk_lock ();
           Testutil.Gauge.enter gauge;
           incr entries;
           Testutil.Gauge.leave gauge;
           lk.Prims.lk_unlock ()
         done));
  Alcotest.(check int) "mutual exclusion" 1 (Testutil.Gauge.max gauge);
  Alcotest.(check int) "all entries" (tasks * rounds) !entries

let sem_storm cls fairness () =
  let permits = 2 in
  let sm = Prims.make_sem cls ~fairness permits in
  let tasks = 4 and rounds = 150 in
  let gauge = Testutil.Gauge.create () in
  Testutil.run_all
    (List.init tasks (fun _ () ->
         for _ = 1 to rounds do
           sm.Prims.sm_p ();
           Testutil.Gauge.enter gauge;
           Thread.yield ();
           Testutil.Gauge.leave gauge;
           sm.Prims.sm_v 1
         done));
  Alcotest.(check bool)
    (Printf.sprintf "never above %d permits (saw %d)" permits
       (Testutil.Gauge.max gauge))
    true
    (Testutil.Gauge.max gauge <= permits);
  Alcotest.(check int) "permits conserved" permits (sm.Prims.sm_value ())

(* A P that times out must neither lose nor mint a permit: from an
   empty semaphore, an expired poll returns false, and exactly one
   subsequent V yields exactly one acquirable unit — even on the FCFS
   ticket semaphore, where the abandoned turn is covered by a donated
   unit. *)
let sem_poll_conservation cls fairness () =
  let sm = Prims.make_sem cls ~fairness 0 in
  Alcotest.(check bool) "expired poll" false (sm.Prims.sm_p_poll (fun () -> true));
  sm.Prims.sm_v 1;
  Alcotest.(check bool) "unit available" true (sm.Prims.sm_try ());
  Alcotest.(check bool) "exactly one unit" false (sm.Prims.sm_try ());
  sm.Prims.sm_v 1;
  Alcotest.(check int) "value restored" 1 (sm.Prims.sm_value ())

(* ---------------------------------------------------------------- *)
(* Pinned typed rejection: RW x strong semaphore                    *)
(* ---------------------------------------------------------------- *)

let test_rw_strong_rejected () =
  (match Prims.make_sem Prims.RW ~fairness:`Strong 1 with
  | _ -> Alcotest.fail "RW strong semaphore was not rejected"
  | exception Prims.Unsupported { cls; feature; _ } ->
      Alcotest.(check string) "class" "rw" (Prims.cls_name cls);
      Alcotest.(check string) "feature" "semaphore.strong" feature);
  (* The same rejection must surface through the platform facade: the
     default Counting semaphore is FCFS, so creating one in an RW scope
     is a typed error, never a crash or a silent downgrade. *)
  (match
     Prims.with_class Prims.RW (fun () -> Platform.Semaphore.Counting.create 1)
   with
  | _ -> Alcotest.fail "platform strong semaphore was not rejected on RW"
  | exception Prims.Unsupported { feature; _ } ->
      Alcotest.(check string) "platform feature" "semaphore.strong" feature);
  (* A weak one is expressible and works. *)
  let s =
    Prims.with_class Prims.RW (fun () ->
        Platform.Semaphore.Counting.create ~fairness:`Weak 1)
  in
  Platform.Semaphore.Counting.p s;
  Alcotest.(check bool) "empty" false (Platform.Semaphore.Counting.try_p s);
  Platform.Semaphore.Counting.v s;
  Alcotest.(check bool) "refilled" true (Platform.Semaphore.Counting.try_p s);
  Platform.Semaphore.Counting.v s

let test_native_rejected () =
  match Prims.make_lock Prims.Native with
  | _ -> Alcotest.fail "Native has no prims construction"
  | exception Prims.Unsupported _ -> ()

(* ---------------------------------------------------------------- *)
(* Backoff: creation-scoped spin-vs-yield decision                  *)
(* ---------------------------------------------------------------- *)

let test_backoff_creation_scoped () =
  let spin = Backoff.create ~multicore:true () in
  let yield = Backoff.create ~multicore:false () in
  Alcotest.(check bool) "override true" true (Backoff.multicore spin);
  Alcotest.(check bool) "override false" false (Backoff.multicore yield);
  (* The default probes the machine at create time, not once per
     process: it must agree with the probe result right now. *)
  let probe = Domain.recommended_domain_count () > 1 in
  Alcotest.(check bool) "default matches probe" probe
    (Backoff.multicore (Backoff.create ()));
  (* Both flavours make progress through saturation and reset. *)
  List.iter
    (fun b ->
      for _ = 1 to 20 do
        Backoff.once b
      done;
      Backoff.reset b;
      Backoff.once b)
    [ spin; yield ]

(* The E27 actuator: [set_limits] retunes the defaults new backoffs
   are created with; it is creation-scoped (like the multicore probe),
   validated, and [with_limits] restores on any exit. *)
let test_backoff_set_limits () =
  let orig_min, orig_max = Backoff.limits () in
  Fun.protect
    ~finally:(fun () ->
      Backoff.set_limits ~min_wait:orig_min ~max_wait:orig_max)
    (fun () ->
      Backoff.set_limits ~min_wait:4 ~max_wait:64;
      Alcotest.(check (pair int int)) "retuned" (4, 64) (Backoff.limits ());
      (* explicit bounds still win over the retuned defaults *)
      ignore (Backoff.create ~min_wait:2 ~max_wait:2 ());
      Alcotest.(check (pair int int))
        "explicit create leaves defaults" (4, 64) (Backoff.limits ());
      (* invalid bounds are rejected and leave the defaults in place *)
      List.iter
        (fun (mn, mx) ->
          match Backoff.set_limits ~min_wait:mn ~max_wait:mx with
          | () -> Alcotest.failf "accepted min=%d max=%d" mn mx
          | exception Invalid_argument _ ->
            Alcotest.(check (pair int int))
              "defaults survive rejection" (4, 64) (Backoff.limits ()))
        [ (0, 64); (3, 64); (64, 4); (4, 96); (-8, 8) ];
      (* with_limits scopes the override and restores on raise *)
      let inside = Backoff.with_limits ~min_wait:8 ~max_wait:8 Backoff.limits in
      Alcotest.(check (pair int int)) "scoped" (8, 8) inside;
      Alcotest.(check (pair int int)) "restored" (4, 64) (Backoff.limits ());
      (match
         Backoff.with_limits ~min_wait:16 ~max_wait:32 (fun () ->
             raise Exit)
       with
      | () -> Alcotest.fail "Exit swallowed"
      | exception Exit ->
        Alcotest.(check (pair int int))
          "restored on raise" (4, 64) (Backoff.limits ()));
      (* a backoff created under the new limits still makes progress *)
      let b = Backoff.create () in
      for _ = 1 to 20 do
        Backoff.once b
      done;
      Backoff.reset b;
      Backoff.once b)

(* ---------------------------------------------------------------- *)
(* Hierarchy axis: structure and JSON shape on a tiny grid          *)
(* ---------------------------------------------------------------- *)

module H = Sync_eval.Hierarchy_axis
module Emit = Sync_metrics.Emit

let tiny_spec ~classes ~mechanisms =
  {
    H.classes;
    problems = [ "fcfs" ];
    mechanisms = Some mechanisms;
    domains = [ 1 ];
    duration_ms = 40;
    warmup_ms = 10;
    seed = 7;
  }

let test_hierarchy_tiny_grid () =
  let rows =
    H.run (tiny_spec ~classes:[ Prims.RW; Prims.CAS ] ~mechanisms:[ "monitor" ])
  in
  Alcotest.(check int) "one row per class" 2 (List.length rows);
  Alcotest.(check bool) "no failures" true (H.all_ok rows);
  List.iter
    (fun r ->
      (match r.H.status with
      | H.Supported -> ()
      | s -> Alcotest.failf "monitor cell not supported: %s" (H.status_string s));
      Alcotest.(check int) "measured domain count" 1 r.H.domains;
      Alcotest.(check bool) "made progress" true (r.H.throughput_per_s > 0.))
    rows

(* The committed-snapshot shape: an unsupported cell collapses to one
   domains=0 row whose JSON carries the status discriminator and the
   typed feature; the document round-trips through the Emit parser. *)
let test_hierarchy_json_snapshot () =
  let spec = tiny_spec ~classes:[ Prims.RW ] ~mechanisms:[ "semaphore" ] in
  let rows = H.run spec in
  Alcotest.(check int) "probe collapses the domain axis" 1 (List.length rows);
  let r = List.hd rows in
  (match r.H.status with
  | H.Unsupported { feature; _ } ->
      Alcotest.(check string) "typed feature" "semaphore.strong" feature
  | s -> Alcotest.failf "expected unsupported, got %s" (H.status_string s));
  Alcotest.(check int) "unsupported row has no domains" 0 r.H.domains;
  Alcotest.(check bool) "unsupported is still all_ok" true (H.all_ok rows);
  let doc = Emit.to_string ~pretty:true (H.to_json spec rows) in
  let parsed = Emit.parse doc in
  (match Emit.member "experiment" parsed with
  | Some (Emit.Str e) -> Alcotest.(check string) "experiment tag" "E25" e
  | _ -> Alcotest.fail "missing experiment tag");
  match Emit.member "rows" parsed with
  | Some rows_json ->
      let cells = Emit.to_list rows_json in
      Alcotest.(check int) "one cell" 1 (List.length cells);
      let cell = List.hd cells in
      List.iter
        (fun key ->
          if Emit.member key cell = None then
            Alcotest.failf "snapshot row missing %S" key)
        [ "class"; "problem"; "mechanism"; "status"; "feature" ]
  | None -> Alcotest.fail "missing rows"

let () =
  let qc = Testutil.qcheck_case in
  Alcotest.run "prims"
    [
      ( "llsc",
        [
          qc prop_sc_stale_iff;
          Alcotest.test_case "aba tag wraparound edge" `Quick test_aba_wraparound;
          qc prop_llsc_model;
          Alcotest.test_case "lock and sem basics" `Quick test_llsc_lock_sem;
        ] );
      ( "bakery",
        [
          qc prop_bakery_doorway_order;
          Alcotest.test_case "overflow stays bounded" `Quick
            test_bakery_overflow_bounded;
          Alcotest.test_case "bounded-ticket storm" `Quick
            test_bakery_bounded_storm;
        ] );
      ( "locks",
        [
          Alcotest.test_case "rw exclusion storm" `Quick (lock_storm Prims.RW);
          Alcotest.test_case "cas exclusion storm" `Quick (lock_storm Prims.CAS);
          Alcotest.test_case "faa exclusion storm" `Quick (lock_storm Prims.FAA);
          Alcotest.test_case "llsc exclusion storm" `Quick
            (lock_storm Prims.LLSC);
        ] );
      ( "sems",
        [
          Alcotest.test_case "rw weak conservation" `Quick
            (sem_storm Prims.RW `Weak);
          Alcotest.test_case "cas strong conservation" `Quick
            (sem_storm Prims.CAS `Strong);
          Alcotest.test_case "faa strong conservation" `Quick
            (sem_storm Prims.FAA `Strong);
          Alcotest.test_case "llsc strong conservation" `Quick
            (sem_storm Prims.LLSC `Strong);
          Alcotest.test_case "cas weak conservation" `Quick
            (sem_storm Prims.CAS `Weak);
          Alcotest.test_case "faa poll conservation" `Quick
            (sem_poll_conservation Prims.FAA `Strong);
          Alcotest.test_case "llsc poll conservation" `Quick
            (sem_poll_conservation Prims.LLSC `Strong);
          Alcotest.test_case "rw poll conservation" `Quick
            (sem_poll_conservation Prims.RW `Weak);
        ] );
      ( "rejection",
        [
          Alcotest.test_case "rw strong semaphore is typed" `Quick
            test_rw_strong_rejected;
          Alcotest.test_case "native has no construction" `Quick
            test_native_rejected;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "creation-scoped decision" `Quick
            test_backoff_creation_scoped;
          Alcotest.test_case "set_limits retunes the defaults" `Quick
            test_backoff_set_limits;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "tiny grid measures" `Quick
            test_hierarchy_tiny_grid;
          Alcotest.test_case "json snapshot shape" `Quick
            test_hierarchy_json_snapshot;
        ] );
    ]
