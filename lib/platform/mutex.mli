(** Mutual-exclusion locks, deterministic-run aware.

    This module shadows the stdlib [Mutex] inside [Sync_platform] (and in
    every file that opens it). A mutex created during a {!Detrt} run is a
    virtual-task mutex whose blocking is controlled by the deterministic
    scheduler; anywhere else it is a plain system mutex. Mechanism code is
    written against the ordinary stdlib signature and needs no changes.

    The representation is exposed so that {!Condition} can pair det
    conditions with det mutexes; treat it as internal. *)

type t = Sys of Stdlib.Mutex.t | Det of Detrt.mutex

val create : unit -> t
(** System mutex normally; deterministic mutex inside a {!Detrt} run. *)

val lock : t -> unit

val unlock : t -> unit

val try_lock : t -> bool
(** Unsupported (raises) on deterministic mutexes: [try_lock]'s result
    would be an unrecorded scheduling decision. *)

val protect : t -> (unit -> 'a) -> 'a
(** [protect m f] runs [f] with [m] held, releasing on any exit. *)
