(* The self-checking resources and the trace-interval analyses: these are
   the measurement instruments, so they get direct tests — including that
   they FIRE on bad synchronization, not only stay quiet on good. *)

open Sync_resources
open Sync_platform

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let expect_ill f =
  match f () with
  | exception Busywork.Ill_synchronized _ -> ()
  | _ -> Alcotest.fail "expected Ill_synchronized"

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)

let test_ring_fifo () =
  let r = Ring.create ~work:0 3 in
  Ring.put r 1;
  Ring.put r 2;
  check_int "occupancy" 2 (Ring.occupancy r);
  check_int "fifo" 1 (Ring.get r);
  Ring.put r 3;
  check_int "fifo" 2 (Ring.get r);
  check_int "fifo" 3 (Ring.get r);
  check_int "empty" 0 (Ring.occupancy r)

let test_ring_overflow_underflow () =
  let r = Ring.create ~work:0 1 in
  expect_ill (fun () -> Ring.get r);
  Ring.put r 7;
  expect_ill (fun () -> Ring.put r 8);
  check_int "value intact" 7 (Ring.get r)

let test_ring_detects_concurrent_puts () =
  (* See test_store_detects_read_write_overlap: domains give real
     preemption, so concurrent puts reliably overlap. *)
  let detected = ref false in
  (try
     for _ = 1 to 5 do
       let r = Ring.create ~work:2_000_000 8 in
       Process.run_all ~backend:`Domain
         [ (fun () -> for i = 1 to 3 do Ring.put r i done);
           (fun () -> for i = 1 to 3 do Ring.put r (10 + i) done) ]
     done
   with Busywork.Ill_synchronized _ -> detected := true);
  check_bool "detected a race" true !detected

(* ------------------------------------------------------------------ *)
(* Fastring (Vyukov MPMC ring, the E22 fast-tier buffer)               *)

let test_fastring_fifo () =
  let r = Fastring.create ~work:0 3 in
  check_int "capacity" 3 (Fastring.capacity r);
  Fastring.put r 1;
  Fastring.put r 2;
  check_int "occupancy" 2 (Fastring.occupancy r);
  check_int "fifo" 1 (Fastring.get r);
  Fastring.put r 3;
  check_int "fifo" 2 (Fastring.get r);
  check_int "fifo" 3 (Fastring.get r);
  check_int "empty" 0 (Fastring.occupancy r)

let test_fastring_overflow_underflow () =
  let r = Fastring.create ~work:0 1 in
  expect_ill (fun () -> Fastring.get r);
  Fastring.put r 7;
  expect_ill (fun () -> Fastring.put r 8);
  check_int "value intact" 7 (Fastring.get r)

(* Unlike Ring, overlapping puts are the Fastring's design point: with
   counting semaphores doing the admission (the intended bounded-buffer
   shape) the slot protocol must conserve every element under genuinely
   parallel producers and consumers. *)
let test_fastring_parallel_conservation () =
  let n = 500 in
  let cap = 8 in
  let r = Fastring.create ~work:0 cap in
  let free = Semaphore.Counting.create ~fairness:`Weak cap in
  let items = Semaphore.Counting.create ~fairness:`Weak 0 in
  let got = Array.make (2 * n) 0 in
  let sum = Atomic.make 0 in
  let producer base () =
    for i = 1 to n do
      Semaphore.Counting.p free;
      Fastring.put r (base + i);
      Semaphore.Counting.v items
    done
  in
  let consumer () =
    for _ = 1 to n do
      Semaphore.Counting.p items;
      let v = Fastring.get r in
      Semaphore.Counting.v free;
      got.(Atomic.fetch_and_add sum 1) <- v
    done
  in
  Process.run_all ~backend:`Domain
    [ producer 0; producer 10_000; consumer; consumer ];
  check_int "everything consumed" (2 * n) (Atomic.get sum);
  check_int "drained" 0 (Fastring.occupancy r);
  let seen = Array.sub got 0 (2 * n) in
  Array.sort compare seen;
  let expect =
    Array.init (2 * n) (fun i ->
        if i < n then i + 1 else 10_000 + (i - n) + 1)
  in
  Alcotest.(check (array int)) "every element exactly once" expect seen

let prop_fastring_sequential_fifo =
  QCheck.Test.make ~name:"fastring behaves as FIFO queue"
    QCheck.(list small_nat)
    (fun xs ->
      let xs = List.filteri (fun i _ -> i < 30) xs in
      let r = Fastring.create ~work:0 (max 1 (List.length xs)) in
      List.iter (Fastring.put r) xs;
      List.map (fun _ -> Fastring.get r) xs = xs)

let prop_ring_sequential_fifo =
  QCheck.Test.make ~name:"ring behaves as FIFO queue"
    QCheck.(list small_nat)
    (fun xs ->
      let xs = List.filteri (fun i _ -> i < 30) xs in
      let r = Ring.create ~work:0 (max 1 (List.length xs)) in
      List.iter (Ring.put r) xs;
      List.map (fun _ -> Ring.get r) xs = xs)

(* ------------------------------------------------------------------ *)
(* Store / Disk / Slot                                                 *)

let test_store_versioning () =
  let s = Store.create ~work:0 () in
  check_int "initial" 0 (Store.read s);
  Store.write s;
  Store.write s;
  check_int "versioned" 2 (Store.read s);
  check_int "reads counted" 2 (Store.reads s);
  check_int "writes counted" 2 (Store.writes s)

let test_store_detects_read_write_overlap () =
  (* Threads share the runtime lock and Thread.yield is not guaranteed to
     interleave two CPU-bound loops, so drive the conflicting accesses
     from two DOMAINS: the kernel preempts them mid-operation and the
     store's contract check fires. *)
  let detected = ref false in
  (try
     for _ = 1 to 5 do
       let s = Store.create ~work:2_000_000 () in
       Process.run_all ~backend:`Domain
         [ (fun () -> for _ = 1 to 3 do ignore (Store.read s) done);
           (fun () -> for _ = 1 to 3 do Store.write s done) ]
     done
   with Busywork.Ill_synchronized _ -> detected := true);
  check_bool "detected" true !detected

let test_store_allows_concurrent_reads () =
  let s = Store.create ~work:200 () in
  (* Concurrent reads are within contract: must never raise. *)
  Process.run_all ~backend:`Thread
    (List.init 4 (fun _ () ->
         for _ = 1 to 20 do
           ignore (Store.read s)
         done))

let test_disk_travel_accounting () =
  let d = Disk.create ~work:0 ~tracks:100 () in
  Disk.access d 10;
  Disk.access d 30;
  Disk.access d 20;
  check_int "position" 20 (Disk.position d);
  check_int "travel 10+20+10" 40 (Disk.travel d);
  check_int "count" 3 (Disk.accesses d);
  Alcotest.check_raises "range"
    (Invalid_argument "Disk.access: track out of range") (fun () ->
      Disk.access d 100)

let test_slot_contract () =
  let s = Slot.create ~work:0 () in
  expect_ill (fun () -> Slot.get s);
  Slot.put s 5;
  check_bool "full" true (Slot.is_full s);
  expect_ill (fun () -> Slot.put s 6);
  check_int "value" 5 (Slot.get s);
  check_bool "empty" false (Slot.is_full s)

(* ------------------------------------------------------------------ *)
(* Interval analysis                                                   *)

open Sync_problems

let ev seq pid op phase arg =
  { Trace.seq; time_ns = Int64.of_int seq; pid; op; phase; arg }

let test_intervals_basic () =
  let events =
    [ ev 0 1 "read" Trace.Request 0; ev 1 1 "read" Trace.Enter 0;
      ev 2 2 "write" Trace.Request 0; ev 3 1 "read" Trace.Exit 7;
      ev 4 2 "write" Trace.Enter 0; ev 5 2 "write" Trace.Exit 0 ]
  in
  let ivls = Ivl.intervals events in
  check_int "two intervals" 2 (List.length ivls);
  let first = List.hd ivls in
  check_int "request seq" 0 first.Ivl.request;
  check_int "ret" 7 first.Ivl.ret;
  check_bool "no overlap" false (Ivl.overlap first (List.nth ivls 1))

let test_exclusion_violations_detected () =
  let events =
    [ ev 0 1 "write" Trace.Enter 0; ev 1 2 "write" Trace.Enter 0;
      ev 2 1 "write" Trace.Exit 0; ev 3 2 "write" Trace.Exit 0 ]
  in
  let ivls = Ivl.intervals events in
  check_int "one violation" 1
    (List.length (Ivl.exclusion_violations ~conflicts:(fun _ _ -> true) ivls))

let test_exclusion_respects_conflict_relation () =
  let events =
    [ ev 0 1 "read" Trace.Enter 0; ev 1 2 "read" Trace.Enter 0;
      ev 2 1 "read" Trace.Exit 0; ev 3 2 "read" Trace.Exit 0 ]
  in
  let ivls = Ivl.intervals events in
  let conflicts a b = a = "write" || b = "write" in
  check_int "reads may overlap" 0
    (List.length (Ivl.exclusion_violations ~conflicts ivls));
  check_int "max concurrency" 2 (Ivl.max_concurrency ~op:"read" ivls)

let test_fifo_violations () =
  let events =
    [ ev 0 1 "use" Trace.Request 0; ev 1 2 "use" Trace.Request 0;
      ev 2 2 "use" Trace.Enter 0; ev 3 2 "use" Trace.Exit 0;
      ev 4 1 "use" Trace.Enter 0; ev 5 1 "use" Trace.Exit 0 ]
  in
  let ivls = Ivl.intervals events in
  check_int "one inversion" 1 (List.length (Ivl.fifo_violations ivls));
  Alcotest.(check (list int)) "grant order args" [ 0; 0 ]
    (Ivl.grant_order ~op:"use" ivls)

let test_malformed_trace_rejected () =
  let events = [ ev 0 1 "x" Trace.Exit 0 ] in
  match Ivl.intervals events with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "resources"
    [ ( "ring",
        [ Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "overflow/underflow" `Quick
            test_ring_overflow_underflow;
          Alcotest.test_case "detects concurrent puts" `Quick
            test_ring_detects_concurrent_puts;
          Testutil.qcheck_case prop_ring_sequential_fifo ] );
      ( "fastring",
        [ Alcotest.test_case "fifo" `Quick test_fastring_fifo;
          Alcotest.test_case "overflow/underflow" `Quick
            test_fastring_overflow_underflow;
          Alcotest.test_case "parallel conservation" `Quick
            test_fastring_parallel_conservation;
          Testutil.qcheck_case prop_fastring_sequential_fifo ] );
      ( "store",
        [ Alcotest.test_case "versioning" `Quick test_store_versioning;
          Alcotest.test_case "detects overlap" `Quick
            test_store_detects_read_write_overlap;
          Alcotest.test_case "allows concurrent reads" `Quick
            test_store_allows_concurrent_reads ] );
      ( "disk",
        [ Alcotest.test_case "travel accounting" `Quick
            test_disk_travel_accounting ] );
      ("slot", [ Alcotest.test_case "contract" `Quick test_slot_contract ]);
      ( "intervals",
        [ Alcotest.test_case "basic" `Quick test_intervals_basic;
          Alcotest.test_case "exclusion detected" `Quick
            test_exclusion_violations_detected;
          Alcotest.test_case "conflict relation" `Quick
            test_exclusion_respects_conflict_relation;
          Alcotest.test_case "fifo violations" `Quick test_fifo_violations;
          Alcotest.test_case "malformed rejected" `Quick
            test_malformed_trace_rejected ] ) ]
