lib/problems/bb_evc.ml: Eventcount Info Meta Sequencer Sync_platform Sync_taxonomy
