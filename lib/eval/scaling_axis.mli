(** E23: the scalable-lock tier, measured — the scaling axis.

    Two grids. The {e queue grid} rebuilds mechanism x problem load
    targets with every platform mutex a local-spin queue lock
    ({!Sync_prims.Queuelock}: MCS, CLH, proportional-backoff ticket)
    and measures each cell with the E20 workload engine; a pair the
    engine does not offer yields a typed [Unsupported] row — never a
    silent skip or a fake 0 ops/s. The {e epoch rows} drive the
    readers-writers database on the {!Sync_problems.Rw_epoch}
    read-mostly path (plus reference mechanisms) at increasing domain
    counts under closed-loop think time; the committed rows are what
    the scaling-sanity CI gate holds to monotonically increasing read
    throughput. *)

type status =
  | Supported
  | Unsupported of { feature : string; reason : string }
      (** typed: the pair/class cannot be measured, and why *)
  | Failed of string  (** a measured cell misbehaved — gates CI *)

type queue_row = {
  kind : Sync_prims.Queuelock.kind;
  problem : string;
  mechanism : string;
  domains : int;  (** 0 on probe-time dead rows *)
  status : status;
  throughput_per_s : float;
  p50_ns : int;
  p99_ns : int;
}

type epoch_row = {
  e_mechanism : string;  (** ["epoch"] or a serializing reference *)
  e_domains : int;
  e_think_us : int;
  e_read_pct : int;
  e_status : status;
  e_read_per_s : float;  (** read-op completions per second *)
  e_throughput_per_s : float;
  e_p50_ns : int;
  e_p99_ns : int;
}

type t = { queue : queue_row list; epoch : epoch_row list }

val empty : t

val is_empty : t -> bool

type spec = {
  kinds : Sync_prims.Queuelock.kind list;
  problems : string list;
  mechanisms : string list;
      (** fixed list: pairs the engine lacks become typed rows *)
  domains : int list;
  epoch_mechanisms : string list;
  epoch_domains : int list;
  think_us : int;  (** closed-loop think time for the epoch rows *)
  read_pct : int;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
}

val default_spec : unit -> spec
(** All three kinds; bounded-buffer + readers-writers over
    semaphore/monitor/ccr/eventcount/epoch (the last two exercising the
    typed-unsupported path); epoch rows at 1/2/4 domains, 500 us think
    time, 95% reads; duration honors [SYNC_LOAD_MS] (default 150 ms). *)

val run :
  ?progress_queue:(queue_row -> unit) -> ?progress_epoch:(epoch_row -> unit) ->
  spec -> t

val all_ok : t -> bool
(** No [Failed] row anywhere (typed [Unsupported] rows are fine). *)

val epoch_monotonic : t -> bool
(** The tentpole claim on measured rows: the ["epoch"] rows' read
    throughput strictly increases across their sorted domain counts
    (false when fewer than two supported epoch rows exist). *)

val status_string : status -> string

val pp : Format.formatter -> t -> unit

val queue_row_to_json : queue_row -> Sync_metrics.Emit.t

val epoch_row_to_json : epoch_row -> Sync_metrics.Emit.t

val rows_to_json : t -> Sync_metrics.Emit.t
(** Just the two row lists — the scorecard section shape. *)

val to_json : spec -> t -> Sync_metrics.Emit.t
(** The full committed-artifact envelope ([BENCH_E23.json]):
    experiment, knobs, [epoch_monotonic], and both row lists. *)
