test/test_platform.ml: Alcotest Array Atomic Backoff Clock Fun Heap Latch List Mutex Prng Process QCheck QCheck_alcotest Semaphore String Sync_platform Testutil Thread Trace Tsqueue Waitq
