open Sync_metrics
open Sync_workload
module Prims = Sync_prims.Prims

type status =
  | Supported
  | Unsupported of { feature : string; reason : string }
  | Failed of string

type row = {
  cls : Prims.cls;
  problem : string;
  mechanism : string;
  domains : int;
  status : status;
  throughput_per_s : float;
  p50_ns : int;
  p99_ns : int;
}

type spec = {
  classes : Prims.cls list;
  problems : string list;
  mechanisms : string list option;
  domains : int list;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
}

let default_spec () =
  { classes = Prims.all;
    problems = [ "bounded-buffer"; "fcfs"; "readers-writers" ];
    mechanisms = None;
    domains = [ 1; 4 ];
    duration_ms = Loadgen.duration_from_env ~default:100;
    warmup_ms = 30;
    seed = 42 }

let mechanisms_of spec ~problem =
  match spec.mechanisms with
  | None -> Target.mechanisms ~problem
  | Some ms -> List.filter (fun m -> List.mem m (Target.mechanisms ~problem)) ms

let dead_row ~cls ~problem ~mechanism ~domains status =
  { cls; problem; mechanism; domains; status;
    throughput_per_s = 0.; p50_ns = 0; p99_ns = 0 }

(* One measured cell. The class restriction is a creation-time property
   (Target builds the whole solution under [Prims.with_class]), so an
   inexpressible primitive surfaces as {!Prims.Unsupported} from
   [Target.create] — before any worker runs — and is a typed result.
   Anything the self-checking resources throw mid-run (overlap,
   FIFO-order violations) is a correctness failure of the class's
   construction and lands in [Failed]. *)
let measure_cell spec ~cls ~problem ~mechanism ~domains =
  let base =
    { Loadgen.workers = domains; backend = `Domain;
      duration_ms = spec.duration_ms; warmup_ms = spec.warmup_ms;
      mode = Loadgen.Closed; seed = spec.seed; think_us = 0 }
  in
  match Target.create ~tier:(`Prim cls) ~problem ~mechanism () with
  | exception Prims.Unsupported { feature; reason; _ } ->
    dead_row ~cls ~problem ~mechanism ~domains
      (Unsupported { feature; reason })
  | Error e -> dead_row ~cls ~problem ~mechanism ~domains (Failed e)
  | Ok inst -> (
    match Loadgen.run inst base with
    | report ->
      let s = report.Report.summary in
      if s.Summary.total_failures > 0 then
        dead_row ~cls ~problem ~mechanism ~domains
          (Failed (Printf.sprintf "%d op failures" s.Summary.total_failures))
      else
        let q f = Summary.overall_quantile s f in
        { cls; problem; mechanism; domains; status = Supported;
          throughput_per_s = s.Summary.throughput_per_s;
          p50_ns = q (fun o -> o.Summary.p50_ns);
          p99_ns = q (fun o -> o.Summary.p99_ns) }
    | exception Prims.Unsupported { feature; reason; _ } ->
      dead_row ~cls ~problem ~mechanism ~domains
        (Unsupported { feature; reason })
    | exception e ->
      dead_row ~cls ~problem ~mechanism ~domains
        (Failed (Printexc.to_string e)))

let run ?(progress = ignore) spec =
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun problem ->
          List.concat_map
            (fun mechanism ->
              (* Probe support once per class x pair: a rejected build
                 yields a single typed row (domains 0) instead of one
                 per domain count. *)
              match
                Target.create ~tier:(`Prim cls) ~problem ~mechanism ()
              with
              | exception Prims.Unsupported { feature; reason; _ } ->
                let r =
                  dead_row ~cls ~problem ~mechanism ~domains:0
                    (Unsupported { feature; reason })
                in
                progress r;
                [ r ]
              | Error e ->
                let r =
                  dead_row ~cls ~problem ~mechanism ~domains:0 (Failed e)
                in
                progress r;
                [ r ]
              | Ok probe ->
                probe.Target.stop ();
                List.map
                  (fun domains ->
                    let r =
                      measure_cell spec ~cls ~problem ~mechanism ~domains
                    in
                    progress r;
                    r)
                  spec.domains)
            (mechanisms_of spec ~problem))
        spec.problems)
    spec.classes

let all_ok rows =
  List.for_all (fun r -> match r.status with Failed _ -> false | _ -> true)
    rows

let status_string = function
  | Supported -> "ok"
  | Unsupported { feature; _ } -> "unsupported: " ^ feature
  | Failed e -> "FAILED: " ^ e

let cls_doc = function
  | Prims.RW -> "atomic read/write registers only (bakery)"
  | Prims.CAS -> "compare-and-swap only"
  | Prims.FAA -> "fetch-and-add only (ticket)"
  | Prims.LLSC -> "LL/SC emulated from CAS with ABA tags"
  | Prims.Native -> "unrestricted platform substrate"

let pp ppf rows =
  let by_cls c = List.filter (fun r -> r.cls = c) rows in
  List.iter
    (fun c ->
      match by_cls c with
      | [] -> ()
      | cr ->
        Format.fprintf ppf "class %-6s — %s@." (Prims.cls_name c) (cls_doc c);
        Format.fprintf ppf "  %-16s %-12s %7s %12s %9s %9s  %s@." "problem"
          "mechanism" "domains" "ops/s" "p50 ns" "p99 ns" "status";
        List.iter
          (fun r ->
            match r.status with
            | Supported ->
              Format.fprintf ppf "  %-16s %-12s %7d %12.0f %9d %9d  %s@."
                r.problem r.mechanism r.domains r.throughput_per_s r.p50_ns
                r.p99_ns (status_string r.status)
            | _ ->
              Format.fprintf ppf "  %-16s %-12s %7s %12s %9s %9s  %s@."
                r.problem r.mechanism "-" "-" "-" "-" (status_string r.status))
          cr;
        Format.fprintf ppf "@.")
    Prims.all

let row_to_json r =
  Emit.Obj
    ([ ("class", Emit.Str (Prims.cls_name r.cls));
       ("problem", Emit.Str r.problem);
       ("mechanism", Emit.Str r.mechanism);
       ("domains", Emit.Int r.domains) ]
    @ (match r.status with
      | Supported ->
        [ ("status", Emit.Str "supported");
          ("throughput_per_s", Emit.Float r.throughput_per_s);
          ("p50_ns", Emit.Int r.p50_ns); ("p99_ns", Emit.Int r.p99_ns) ]
      | Unsupported { feature; reason } ->
        [ ("status", Emit.Str "unsupported"); ("feature", Emit.Str feature);
          ("reason", Emit.Str reason) ]
      | Failed e -> [ ("status", Emit.Str "failed"); ("error", Emit.Str e) ]))

let to_json spec rows =
  Emit.Obj
    [ ("experiment", Emit.Str "E25");
      ("description",
       Emit.Str
         "hardware-primitive hierarchy: every mechanism x problem target \
          run unmodified on restricted atomic classes (rw/cas/faa/llsc \
          vs native); unsupported cells carry typed reasons");
      ("mode", Emit.Str "closed");
      ("backend", Emit.Str "domain");
      ("duration_ms", Emit.Int spec.duration_ms);
      ("warmup_ms", Emit.Int spec.warmup_ms);
      ("seed", Emit.Int spec.seed);
      ("ocaml", Emit.Str Sys.ocaml_version);
      ("recommended_domains", Emit.Int (Domain.recommended_domain_count ()));
      ("classes",
       Emit.List
         (List.map (fun c -> Emit.Str (Prims.cls_name c)) spec.classes));
      ("problems", Emit.List (List.map (fun p -> Emit.Str p) spec.problems));
      ("domain_counts", Emit.List (List.map (fun d -> Emit.Int d) spec.domains));
      ("rows", Emit.List (List.map row_to_json rows)) ]
