lib/platform/process.mli:
