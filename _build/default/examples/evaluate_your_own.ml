(* Evaluating YOUR mechanism with Bloom's methodology.

   The library's evaluation machinery is ordinary code: implement a
   solution module, attach metadata, and run the same checkers the
   registry uses. This example evaluates two home-made readers-writers
   "mechanisms":

   - [Big_lock]: a single mutex around everything. Safe — but the
     reader-overlap scenario exposes that it cannot express the
     exclusion constraint's concurrency half (readers serialized).
   - [Broken_rwlock]: a hand-rolled reader/writer lock with a classic
     check-then-act race. The self-checking store catches the overlap.

     dune exec examples/evaluate_your_own.exe
*)

open Sync_problems

(* A "mechanism" that serializes everything. *)
module Big_lock : Rw_intf.S = struct
  type t = {
    lock : Mutex.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "big-lock"

  let policy = Rw_intf.No_priority

  let create ~read ~write =
    { lock = Mutex.create (); res_read = read; res_write = write }

  let read t ~pid =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> t.res_read ~pid)

  let write t ~pid =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Sync_taxonomy.Meta.make ~mechanism:"big-lock" ~problem:"readers-writers"
      ~variant:"none"
      ~fragments:[ ("rw-exclusion", [ "lock"; "unlock" ]); ("rw-priority", []) ]
      ~info_access:[]
      ~separation:Sync_taxonomy.Meta.Separated ()
end

(* A racy reader/writer lock: the reader counts itself in WITHOUT holding
   the mutex while checking the writer flag — check-then-act. *)
module Broken_rwlock : Rw_intf.S = struct
  type t = {
    readers : int Atomic.t;
    writing : bool Atomic.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "broken-rwlock"

  let policy = Rw_intf.No_priority

  let create ~read ~write =
    { readers = Atomic.make 0; writing = Atomic.make false;
      res_read = read; res_write = write }

  let read t ~pid =
    (* BUG: a writer can set [writing] between this check and the
       increment becoming visible to it. *)
    while Atomic.get t.writing do
      Thread.yield ()
    done;
    (* The sleep stands in for the preemption a loaded multicore machine
       provides for free: the check above is stale by the next line. *)
    Thread.delay 0.0005;
    Atomic.incr t.readers;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.readers)
      (fun () -> t.res_read ~pid)

  let write t ~pid =
    while not (Atomic.compare_and_set t.writing false true) do
      Thread.yield ()
    done;
    (* BUG: checks readers once instead of excluding new arrivals. *)
    while Atomic.get t.readers > 0 do
      Thread.yield ()
    done;
    Fun.protect
      ~finally:(fun () -> Atomic.set t.writing false)
      (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Sync_taxonomy.Meta.make ~mechanism:"broken-rwlock"
      ~problem:"readers-writers" ~variant:"none"
      ~fragments:
        [ ("rw-exclusion", [ "writing"; "flag"; "readers"; "count" ]);
          ("rw-priority", []) ]
      ~info_access:[]
      ~separation:Sync_taxonomy.Meta.Blended ()
end

let evaluate name (m : (module Rw_intf.S)) =
  Printf.printf "\n== evaluating %s ==\n%!" name;
  (* A race needs the right interleaving: give the stress several rounds
     to find one before declaring the mechanism clean. *)
  let rec stress round =
    if round > 8 then print_endline "exclusion stress:       pass (8 rounds)"
    else
      match
        Rw_harness.verify_exclusion ~readers:4 ~writers:4 ~reads_each:50
          ~writes_each:50 m
      with
      | Ok () -> stress (round + 1)
      | Error msg ->
        Printf.printf "exclusion stress:       FAIL in round %d (%s)\n%!"
          round msg
  in
  stress 1;
  match Rw_harness.scenario_reader_overlap m with
  | Ok () -> print_endline "reader concurrency:     pass"
  | Error msg -> Printf.printf "reader concurrency:     FAIL (%s)\n%!" msg

let () =
  print_endline
    "Bloom's method, applied to two homemade readers-writers mechanisms.\n\
     A correct mechanism passes both checks (compare: monitor below).";
  evaluate "monitor readers-priority (reference)" (module Rw_mon.Readers_prio);
  evaluate "big-lock (safe but cannot express reader concurrency)"
    (module Big_lock);
  evaluate "broken-rwlock (check-then-act race)" (module Broken_rwlock);
  print_endline
    "\nThe big lock is caught by the reader-overlap scenario (it cannot\n\
     express the concurrency half of the exclusion constraint); the racy\n\
     lock is caught by the self-checking resource under stress."
