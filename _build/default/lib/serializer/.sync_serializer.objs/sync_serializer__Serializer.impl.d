lib/serializer/serializer.ml: Condition List Mutex
