(** The E27 alarm clock at scale: a {!Sync_platform.Timerwheel} behind
    one platform mutex and one condition.

    The classic solutions (monitor priority wait, semaphore schedules)
    pay O(log n) or worse per tick or per sleeper; the wheel's tick
    cost is O(1) and independent of the number of pending alarms, so
    this solution holds millions of sleepers without the clock driver
    falling behind. [tick] fires the due bucket, stamping each
    sleeper's flag, and broadcasts once; sleepers re-check their own
    flag (Mesa style). The mutex is a named site ("alarm-wheel.lock"),
    so the adaptive controller can retier it under load.

    Carried as an alarm-clock solution (mechanism "wheel") the same
    way the epoch rw lock rides readers-writers: not one of the
    paper's mechanisms, but registry-resolvable so conformance and the
    load grid drive it through standard plumbing. *)

open Sync_platform
open Sync_taxonomy

type t = {
  m : Mutex.t;
  fired : Condition.t;
  wheel : bool ref Timerwheel.t;
}

let mechanism = "wheel"

let create () =
  { m = Mutex.create ~name:"alarm-wheel.lock" ();
    fired = Condition.create ();
    (* 3 x 6-bit levels: 262144-tick horizon, tiny rings — plenty for
       virtual-clock conformance runs and load drives alike. *)
    wheel = Timerwheel.create ~levels:3 ~slot_bits:6 () }

let wakeme t ~pid n =
  ignore pid;
  if n > 0 then begin
    Mutex.lock t.m;
    let woke = ref false in
    ignore (Timerwheel.add t.wheel ~delay:n woke);
    while not !woke do
      Condition.wait t.fired t.m
    done;
    Mutex.unlock t.m
  end

let tick t =
  Mutex.lock t.m;
  let fired = Timerwheel.tick t.wheel (fun _deadline woke -> woke := true) in
  if fired > 0 then Condition.broadcast t.fired;
  Mutex.unlock t.m

let now t = Mutex.protect t.m (fun () -> Timerwheel.now t.wheel)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline",
         [ "wheel.add(delay=n)"; "while not woke"; "wait(fired)" ]);
        ("alarm-order",
         [ "bucket(deadline)"; "tick fires due bucket only";
           "broadcast+recheck" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Local_state, Meta.Direct) ]
    ~aux_state:[ "hierarchical timer wheel"; "per-sleeper woke flag" ]
    ~separation:Meta.Separated ()
