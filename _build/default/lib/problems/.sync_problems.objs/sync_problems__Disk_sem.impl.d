lib/problems/disk_sem.ml: Fun Heap Info Meta Semaphore Sync_platform Sync_taxonomy
