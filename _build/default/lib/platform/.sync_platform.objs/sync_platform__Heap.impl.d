lib/platform/heap.ml: Array List
