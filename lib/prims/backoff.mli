(** Exponential backoff for contended retry loops.

    A [Backoff.t] tracks how long the current thread has been spinning on a
    contended location. Each call to {!once} spins for a bounded, randomized
    number of iterations and doubles the bound, yielding to the scheduler
    once the bound saturates. This is the standard contention-management
    substrate used by the spin-based primitives in this library.

    Whether spinning can help at all is a property of the machine at the
    moment the contended loop starts: on a single core the peer cannot
    run while we spin, so {!once} goes straight to [Thread.yield]. That
    decision is made per backoff at {!create} time (re-reading
    [Domain.recommended_domain_count]), not once per process, so tests
    that pin domains — and long-lived processes whose affinity changes —
    get the right behaviour for each loop. [?multicore] overrides the
    probe for tests. *)

type t

val create : ?multicore:bool -> ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] returns a fresh backoff in its initial (shortest) state.
    [min_wait] and [max_wait] bound the spin count; both must be positive
    powers of two with [min_wait <= max_wait], and default to the
    process-wide {!limits}, read at this call. [multicore] defaults to
    [Domain.recommended_domain_count () > 1], probed at this call.
    @raise Invalid_argument on invalid spin bounds. *)

val set_limits : min_wait:int -> max_wait:int -> unit
(** Retune the default spin bounds used by {!create} when none are
    passed explicitly. Creation-scoped exactly like the multicore
    probe: backoffs created after the call see the new bounds, ones
    already spinning are unaffected — so the adaptive controller (and
    tests) can tune spin-vs-park behaviour without a rebuild.
    @raise Invalid_argument on invalid spin bounds. *)

val limits : unit -> int * int
(** The current default [(min_wait, max_wait)] pair. *)

val with_limits : min_wait:int -> max_wait:int -> (unit -> 'a) -> 'a
(** Run a thunk with {!set_limits} applied, restoring the previous
    defaults afterwards (even on exception). *)

val multicore : t -> bool
(** The spin-vs-yield decision this backoff was created with. *)

val once : t -> unit
(** Spin (or yield, once saturated or single-core) and escalate. *)

val reset : t -> unit
(** Return the backoff to its initial state (call after a successful
    acquisition). *)
