test/test_pathexpr.mli:
