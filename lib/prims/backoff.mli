(** Exponential backoff for contended retry loops.

    A [Backoff.t] tracks how long the current thread has been spinning on a
    contended location. Each call to {!once} spins for a bounded, randomized
    number of iterations and doubles the bound, yielding to the scheduler
    once the bound saturates. This is the standard contention-management
    substrate used by the spin-based primitives in this library.

    Whether spinning can help at all is a property of the machine at the
    moment the contended loop starts: on a single core the peer cannot
    run while we spin, so {!once} goes straight to [Thread.yield]. That
    decision is made per backoff at {!create} time (re-reading
    [Domain.recommended_domain_count]), not once per process, so tests
    that pin domains — and long-lived processes whose affinity changes —
    get the right behaviour for each loop. [?multicore] overrides the
    probe for tests. *)

type t

val create : ?multicore:bool -> ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] returns a fresh backoff in its initial (shortest) state.
    [min_wait] and [max_wait] bound the spin count; both must be positive
    powers of two with [min_wait <= max_wait]. [multicore] defaults to
    [Domain.recommended_domain_count () > 1], probed at this call.
    @raise Invalid_argument on invalid spin bounds. *)

val multicore : t -> bool
(** The spin-vs-yield decision this backoff was created with. *)

val once : t -> unit
(** Spin (or yield, once saturated or single-core) and escalate. *)

val reset : t -> unit
(** Return the backoff to its initial state (call after a successful
    acquisition). *)
