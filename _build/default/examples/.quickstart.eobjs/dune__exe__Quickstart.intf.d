examples/quickstart.mli:
