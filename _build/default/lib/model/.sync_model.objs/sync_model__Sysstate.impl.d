lib/model/sysstate.ml: List
