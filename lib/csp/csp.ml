(* One lock per network serializes all channel state, which is what makes a
   multi-channel [select] commit atomically: a parked chooser is a single
   [cell] whose offers sit on several channels; whoever matches one offer
   flips the cell, so every other offer becomes stale and is purged on the
   next scan. *)

open Sync_platform

type cell = { mutable done_ : bool; cond : Condition.t; seq : int }

type network = {
  lock : Mutex.t;
  mutable next_seq : int; (* arrival order for longest-waiting matching *)
}

let network () = { lock = Mutex.create (); next_seq = 0 }

let fresh_cell net =
  let c = { done_ = false; cond = Condition.create (); seq = net.next_seq } in
  net.next_seq <- net.next_seq + 1;
  c

(* A parked sender: [taken] is called (under the lock) by the receiver that
   accepts the value; it lets a selecting sender record which case won. *)
type 'a send_offer = { s_cell : cell; value : 'a; taken : unit -> unit }

(* A parked receiver: [deliver] stores the value (and the winning case) on
   the receiver side. *)
type 'a recv_offer = { r_cell : cell; deliver : 'a -> unit }

type 'a chan = {
  net : network;
  cname : string;
  mutable senders : 'a send_offer list; (* FIFO, stale entries purged lazily *)
  mutable recvers : 'a recv_offer list;
}

module Channel = struct
  type 'a t = 'a chan

  let create ?(name = "chan") net =
    { net; cname = name; senders = []; recvers = [] }

  let name c = c.cname

  let live_senders c = List.filter (fun o -> not o.s_cell.done_) c.senders

  let live_recvers c = List.filter (fun o -> not o.r_cell.done_) c.recvers

  let waiting_senders c =
    Mutex.lock c.net.lock;
    let n = List.length (live_senders c) in
    Mutex.unlock c.net.lock;
    n

  let waiting_receivers c =
    Mutex.lock c.net.lock;
    let n = List.length (live_recvers c) in
    Mutex.unlock c.net.lock;
    n
end

let purge c =
  c.senders <- List.filter (fun o -> not o.s_cell.done_) c.senders;
  c.recvers <- List.filter (fun o -> not o.r_cell.done_) c.recvers

let park net cell =
  while not cell.done_ do
    Condition.wait cell.cond net.lock
  done

(* Under the lock: match against the longest-waiting live counterpart. *)
let pop_sender c =
  purge c;
  match c.senders with
  | [] -> None
  | o :: rest ->
    c.senders <- rest;
    o.s_cell.done_ <- true;
    o.taken ();
    Condition.signal o.s_cell.cond;
    Some o.value

let pop_recver c v =
  purge c;
  match c.recvers with
  | [] -> false
  | o :: rest ->
    c.recvers <- rest;
    o.r_cell.done_ <- true;
    o.deliver v;
    Condition.signal o.r_cell.cond;
    true

let send c v =
  let net = c.net in
  Mutex.lock net.lock;
  if pop_recver c v then Mutex.unlock net.lock
  else begin
    let cell = fresh_cell net in
    c.senders <- c.senders @ [ { s_cell = cell; value = v; taken = ignore } ];
    park net cell;
    Mutex.unlock net.lock
  end

let recv c =
  let net = c.net in
  Mutex.lock net.lock;
  match pop_sender c with
  | Some v ->
    Mutex.unlock net.lock;
    v
  | None ->
    let cell = fresh_cell net in
    let slot = ref None in
    c.recvers <-
      c.recvers @ [ { r_cell = cell; deliver = (fun v -> slot := Some v) } ];
    park net cell;
    Mutex.unlock net.lock;
    (match !slot with
    | Some v -> v
    | None -> assert false (* deliver always ran before the wakeup *))

let try_send c v =
  Mutex.lock c.net.lock;
  let ok = pop_recver c v in
  Mutex.unlock c.net.lock;
  ok

let try_recv c =
  Mutex.lock c.net.lock;
  let r = pop_sender c in
  Mutex.unlock c.net.lock;
  r

type 'r case = {
  enabled : bool;
  net_of : unit -> network;
  (* Try an immediate rendezvous with an already-parked counterpart;
     [Some k] on success. Under the lock. *)
  attempt : unit -> (unit -> 'r) option;
  (* Park an offer bound to the chooser's cell and result slot. Under the
     lock. *)
  post : cell -> (unit -> 'r) option ref -> unit;
}

let recv_case c k =
  { enabled = true;
    net_of = (fun () -> c.net);
    attempt =
      (fun () ->
        match pop_sender c with
        | Some v -> Some (fun () -> k v)
        | None -> None);
    post =
      (fun cell slot ->
        c.recvers <-
          c.recvers
          @ [ { r_cell = cell; deliver = (fun v -> slot := Some (fun () -> k v)) } ]) }

let send_case c v k =
  { enabled = true;
    net_of = (fun () -> c.net);
    attempt = (fun () -> if pop_recver c v then Some k else None);
    post =
      (fun cell slot ->
        c.senders <-
          c.senders
          @ [ { s_cell = cell; value = v; taken = (fun () -> slot := Some k) } ]) }

let guard b case = { case with enabled = case.enabled && b }

let select cases =
  let cases = List.filter (fun c -> c.enabled) cases in
  if cases = [] then invalid_arg "Csp.select: every case is disabled";
  let net = (List.hd cases).net_of () in
  List.iter
    (fun c ->
      if c.net_of () != net then
        invalid_arg "Csp.select: cases span several networks")
    cases;
  Mutex.lock net.lock;
  let rec first_ready = function
    | [] -> None
    | c :: rest -> (
      match c.attempt () with Some k -> Some k | None -> first_ready rest)
  in
  match first_ready cases with
  | Some k ->
    Mutex.unlock net.lock;
    k ()
  | None ->
    let cell = fresh_cell net in
    let slot = ref None in
    List.iter (fun c -> c.post cell slot) cases;
    park net cell;
    Mutex.unlock net.lock;
    (match !slot with
    | Some k -> k ()
    | None -> assert false)
