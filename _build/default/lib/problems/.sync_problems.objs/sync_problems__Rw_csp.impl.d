lib/problems/rw_csp.ml: Csp Info Meta Rw_intf Sync_csp Sync_platform Sync_taxonomy
