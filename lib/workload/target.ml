open Sync_platform
open Sync_problems

type op = { name : string; run : rng:Prng.t -> pid:int -> unit }

type selection = Cycle | Weighted of int array

type tier =
  [ `Default
  | `Fast
  | `Prim of Sync_prims.Prims.cls
  | `Queue of Sync_prims.Queuelock.kind
  | `Adaptive ]

let tier_name = function
  | `Default -> "default"
  | `Fast -> "fast"
  | `Prim c -> Sync_prims.Prims.cls_name c
  | `Queue k -> Sync_prims.Queuelock.kind_name k
  | `Adaptive -> "adaptive"

type instance = {
  meta : Sync_taxonomy.Meta.t;
  tier : string;
  ops : op array;
  selection : selection;
  stop : unit -> unit;
}

type params = {
  capacity : int;
  work : int;
  read_pct : int;
  tracks : int;
  hot_pct : int;
}

let default_params =
  { capacity = 8; work = 0; read_pct = 90; tracks = 256; hot_pct = 0 }

let bb (module B : Bb_intf.S) tier p =
  (* The fast tier swaps the single-put/single-get self-checking ring
     for the Vyukov MPMC one: same bounded-FIFO contract and the same
     raise-on-violation integrity checks, but put and get touch
     disjoint atomics, so the resource itself never re-serializes what
     the thinner fast-path synchronizer lets through. *)
  let put, get =
    match tier with
    | `Default | `Prim _ | `Queue _ | `Adaptive ->
      (* The adaptive tier keeps the standard self-checking ring: it
         retiers the locks around the resource, not the resource. *)
      let ring = Sync_resources.Ring.create ~work:p.work p.capacity in
      ( (fun ~pid:_ v -> Sync_resources.Ring.put ring v),
        fun ~pid:_ -> Sync_resources.Ring.get ring )
    | `Fast ->
      let ring = Sync_resources.Fastring.create ~work:p.work p.capacity in
      ( (fun ~pid:_ v -> Sync_resources.Fastring.put ring v),
        fun ~pid:_ -> Sync_resources.Fastring.get ring )
  in
  let t = B.create ~capacity:p.capacity ~put ~get in
  { meta = B.meta;
    tier = tier_name tier;
    ops =
      [| { name = "put";
           run = (fun ~rng ~pid -> B.put t ~pid (Prng.int rng 1_000_000)) };
         { name = "get"; run = (fun ~rng:_ ~pid -> ignore (B.get t ~pid)) } |];
    selection = Cycle;
    stop = (fun () -> B.stop t) }

let slot (module S : Slot_intf.S) tier p =
  let cell = Sync_resources.Slot.create ~work:p.work () in
  let t =
    S.create
      ~put:(fun ~pid:_ v -> Sync_resources.Slot.put cell v)
      ~get:(fun ~pid:_ -> Sync_resources.Slot.get cell)
  in
  { meta = S.meta;
    tier = tier_name tier;
    ops =
      [| { name = "put";
           run = (fun ~rng ~pid -> S.put t ~pid (Prng.int rng 1_000_000)) };
         { name = "get"; run = (fun ~rng:_ ~pid -> ignore (S.get t ~pid)) } |];
    selection = Cycle;
    stop = (fun () -> S.stop t) }

let fcfs (module F : Fcfs_intf.S) tier p =
  (* The FCFS resource is pure busywork plus its own overlap check (the
     harness's idiom): a synchronizer that admits two users concurrently
     trips Ill_synchronized here rather than posting a fake number. *)
  let busy = Atomic.make false in
  let use ~pid:_ =
    if not (Atomic.compare_and_set busy false true) then
      raise (Sync_resources.Busywork.Ill_synchronized "fcfs-load: overlap");
    Sync_resources.Busywork.spin p.work;
    Atomic.set busy false
  in
  let t = F.create ~use in
  { meta = F.meta;
    tier = tier_name tier;
    ops = [| { name = "use"; run = (fun ~rng:_ ~pid -> F.use t ~pid) } |];
    selection = Cycle;
    stop = (fun () -> F.stop t) }

let rw (module R : Rw_intf.S) tier p =
  let store = Sync_resources.Store.create ~work:p.work () in
  let t =
    R.create
      ~read:(fun ~pid:_ -> Sync_resources.Store.read store)
      ~write:(fun ~pid:_ -> Sync_resources.Store.write store)
  in
  { meta = R.meta;
    tier = tier_name tier;
    ops =
      [| { name = "read"; run = (fun ~rng:_ ~pid -> ignore (R.read t ~pid)) };
         { name = "write"; run = (fun ~rng:_ ~pid -> R.write t ~pid) } |];
    selection = Weighted [| p.read_pct; 100 - p.read_pct |];
    stop = (fun () -> R.stop t) }

let disk (module D : Disk_intf.S) tier p =
  let d = Sync_resources.Disk.create ~work:p.work ~tracks:p.tracks () in
  let t =
    D.create ~tracks:p.tracks
      ~access:(fun ~pid:_ track -> Sync_resources.Disk.access d track)
  in
  let pick_track rng =
    if p.hot_pct > 0 && Prng.int rng 100 < p.hot_pct then
      Prng.int rng (max 1 (p.tracks / 10))
    else Prng.int rng p.tracks
  in
  { meta = D.meta;
    tier = tier_name tier;
    ops =
      [| { name = "access";
           run = (fun ~rng ~pid -> D.access t ~pid (pick_track rng)) } |];
    selection = Cycle;
    stop = (fun () -> D.stop t) }

(* Alarm clock under load (E27): the instance embeds the virtual-clock
   driver — a dedicated ticker advancing the clock every ~20 us until
   [stop] — so workers drive [wakeme] with small tick counts and the
   measured operation is a full sleep/wake round trip through the
   solution's synchronization. The historical objection (wall-clock
   load measures the driver) is priced in: every tier pays the same
   ticker, so tier-to-tier ratios isolate the synchronizer, which is
   what the E27 grid compares. The ticker runs on its own domain, not a
   systhread: on the spawning domain it would share one runtime lock
   with whatever else lives there (the E27 controller's sampler in
   particular), and any long slice of that thread would stall the clock
   itself — skewing the very tier comparison the target exists for. *)
let alarm (module A : Alarm_intf.S) tier p =
  ignore p;
  let t = A.create () in
  let stopped = Atomic.make false in
  let ticker =
    Domain.spawn
      (fun () ->
        while not (Atomic.get stopped) do
          A.tick t;
          Thread.delay 2e-5
        done)
  in
  { meta = A.meta;
    tier = tier_name tier;
    ops =
      [| { name = "wakeme";
           run = (fun ~rng ~pid -> A.wakeme t ~pid (1 + Prng.int rng 3)) } |];
    selection = Cycle;
    stop =
      (fun () ->
        Atomic.set stopped true;
        Domain.join ticker;
        A.stop t) }

(* The catalog. Readers-writers drives each mechanism's readers-priority
   registration — for semaphores the baton solution (the conformant one),
   for path expressions the paper's Figure 1 (faithful: it violates only
   the priority constraint, never exclusion, so it is safe to load). *)
let table : (string * (string * (tier -> params -> instance)) list) list =
  [ ( "bounded-buffer",
      [ ("semaphore", bb (module Bb_sem)); ("monitor", bb (module Bb_mon));
        ("serializer", bb (module Bb_ser)); ("pathexpr", bb (module Bb_path));
        ("csp", bb (module Bb_csp)); ("ccr", bb (module Bb_ccr));
        ("eventcount", bb (module Bb_evc)) ] );
    ( "fcfs",
      [ ("semaphore", fcfs (module Fcfs_sem));
        ("monitor", fcfs (module Fcfs_mon));
        ("serializer", fcfs (module Fcfs_ser));
        ("pathexpr", fcfs (module Fcfs_path));
        ("csp", fcfs (module Fcfs_csp)); ("ccr", fcfs (module Fcfs_ccr));
        ("eventcount", fcfs (module Fcfs_evc)) ] );
    ( "readers-writers",
      [ ("semaphore", rw (module Rw_sem.Readers_prio_baton));
        ("monitor", rw (module Rw_mon.Readers_prio));
        ("serializer", rw (module Rw_ser.Readers_prio));
        ("pathexpr", rw (module Rw_path.Fig1));
        ("csp", rw (module Rw_csp.Readers_prio));
        ("ccr", rw (module Rw_ccr.Readers_prio));
        (* E23: the epoch read-mostly path, only meaningful for this
           problem (its whole point is scaling reader entry). *)
        ("epoch", rw (module Rw_epoch.Read_mostly)) ] );
    ( "disk-scheduler",
      [ ("semaphore", disk (module Disk_sem));
        ("monitor", disk (module Disk_mon));
        ("serializer", disk (module Disk_ser));
        ("pathexpr", disk (module Disk_path));
        ("csp", disk (module Disk_csp)); ("ccr", disk (module Disk_ccr)) ] );
    ( "one-slot-buffer",
      [ ("semaphore", slot (module Slot_sem));
        ("monitor", slot (module Slot_mon));
        ("serializer", slot (module Slot_ser));
        ("pathexpr", slot (module Slot_path));
        ("csp", slot (module Slot_csp)); ("ccr", slot (module Slot_ccr));
        ("eventcount", slot (module Slot_evc)) ] );
    (* E27: alarm clock with an embedded ticker (see [alarm] above).
       "wheel" is the timer-wheel solution whose tick cost is
       independent of pending alarms; "monitor" rides along as the
       classic priority-wait baseline. *)
    ( "alarm-clock",
      [ ("monitor", alarm (module Alarm_mon));
        ("wheel", alarm (module Alarm_wheel)) ] ) ]

let problems = List.map fst table

let mechanisms ~problem =
  match List.assoc_opt problem table with
  | None -> []
  | Some ms -> List.map fst ms

let create ?(params = default_params) ?(tier = `Default) ~problem ~mechanism
    () =
  if params.read_pct < 0 || params.read_pct > 100 then
    Error "read_pct must be in 0..100"
  else if params.capacity < 1 then Error "capacity must be >= 1"
  else if params.tracks < 2 then Error "tracks must be >= 2"
  else
    match List.assoc_opt problem table with
    | None ->
      Error
        (Printf.sprintf "unknown problem %S (try: %s)" problem
           (String.concat ", " problems))
    | Some ms -> (
      match List.assoc_opt mechanism ms with
      | None ->
        Error
          (Printf.sprintf "no %S target for %S (try: %s)" mechanism problem
             (String.concat ", " (List.map fst ms)))
      | Some build -> (
        (* The fast tier is a creation-time property of the platform
           primitives: build the whole solution (including any CSP
           server processes it spawns) with the flag on, then restore.
           Workers created later by the load generator see whatever
           tier the instance was built with. *)
        match tier with
        | `Default -> Ok (build tier params)
        | `Fast -> Ok (Fastpath.with_enabled (fun () -> build tier params))
        | `Prim c ->
          (* E25: every primitive the solution creates — including any
             created by CSP server processes it spawns here — builds on
             the restricted atomic class. [`Prim Native] is the explicit
             no-restriction scope (same substrate as [`Default], labeled
             "native" in reports). The construction itself can raise
             {!Sync_prims.Prims.Unsupported} (e.g. RW x FCFS semaphore);
             callers that grid over classes catch it as a typed result. *)
          Ok (Sync_prims.Prims.with_class c (fun () -> build tier params))
        | `Queue k ->
          (* E23: every platform mutex the solution creates is a queue
             lock of kind [k] (MCS, CLH, or proportional-backoff
             ticket); counting semaphores fall back to the FAA prim
             constructions, which share the FIFO spirit. *)
          Ok (Sync_prims.Queuelock.with_kind k (fun () -> build tier params))
        | `Adaptive ->
          (* E27: every platform mutex the solution creates carries the
             hot-swap indirection and is registered as a retierable
             site. The caller (adaptive axis, bench grid) starts a
             controller over [Mutex.swap_sites ()] after this returns —
             the scope keeps its registry on exit for exactly that. *)
          Ok (Mutex.with_swappable (fun () -> build tier params))))
