(** The alarm-clock problem (request-parameter information: time values),
    after Hoare'74.

    [wakeme n] blocks the caller for [n] ticks of a driver-advanced
    virtual clock; [tick] is invoked by the clock driver. The priority
    constraint orders waiters by their computed deadline — an arithmetic
    function of the request argument, which again wants priority queues
    (monitors), guard predicates over captured arguments (serializers),
    or explicit schedules (semaphores, paths). *)

open Sync_taxonomy

let spec =
  Spec.make ~name:"alarm-clock"
    ~description:"processes sleep until a requested number of clock ticks \
                  has elapsed"
    ~ops:[ "wakeme"; "tick" ]
    ~constraints:
      [ Constr.make ~id:"alarm-deadline" ~cls:Constr.Exclusion
          ~info:[ Info.Parameters; Info.Local_state ]
          ~description:
            "if now < request-time + n then exclude the sleeper's wakeup";
        Constr.make ~id:"alarm-order" ~cls:Constr.Priority
          ~info:[ Info.Parameters ]
          ~description:
            "if A's deadline precedes B's then A wakes no later than B" ]

module type S = sig
  type t

  val mechanism : string

  val create : unit -> t

  val wakeme : t -> pid:int -> int -> unit
  (** Block for [n >= 0] ticks from now. *)

  val tick : t -> unit
  (** Advance the clock by one tick (single driver thread). *)

  val now : t -> int

  val stop : t -> unit

  val meta : Meta.t
end
