(** FCFS with a path expression: [path use end] serializes, and — under
    the paper's Section 5.1 assumption that selection admits the
    longest-waiting process — the implicit semaphore queue supplies the
    request-time ordering. Without that assumption the scheme is not
    expressible in the classic dialect, which is exactly the paper's
    point about request-time information in paths. *)

open Sync_taxonomy

type t = { sys : Sync_pathexpr.Pathexpr.t; res_use : pid:int -> unit }

let mechanism = "pathexpr"

let create ~use =
  { sys = Sync_pathexpr.Pathexpr.of_string "path use end"; res_use = use }

let use t ~pid =
  Sync_pathexpr.Pathexpr.run t.sys "use" (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "path"; "use"; "end" ]);
        ("fcfs-order", [ "longest-waiting"; "selection"; "assumption" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Indirect) ]
    ~separation:Meta.Enforced ()
