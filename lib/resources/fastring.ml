open Sync_platform

(* Vyukov-style bounded MPMC ring: every slot carries its own sequence
   number. For slot [i] (0-based position [pos], [i = pos mod cap]):

   - [seq = pos]       the slot is free for the enqueue at [pos];
   - [seq = pos + 1]   the slot holds the element for the dequeue at
                       [pos];
   - advancing a lap adds [cap].

   Producers and consumers claim positions with a CAS on [enq]/[deq]
   and then operate on their slot privately — no shared lock, and a
   put and a get touch different atomics unless the ring is empty or
   full. Payload writes are plain stores published by the atomic seq
   store (atomics are the synchronization points of the OCaml memory
   model).

   Like {!Ring}, this is a *self-checking* resource: the slot protocol
   doubles as the integrity check. In a correct bounded-buffer run a
   put is only admitted when its slot's previous element has been
   consumed (the mechanism's own counting guarantees it), so a put
   that finds its slot still occupied — or a get that finds its slot
   still empty — means the synchronizer admitted an overfull put or an
   empty get, and the ring raises [Ill_synchronized] instead of
   blocking.

   OCaml 5.1 has no [Atomic.make_contended], so "cache-line padding"
   is best-effort: each hot atomic is allocated interleaved with a
   dead one-line block that stays reachable from the record, keeping
   the cells on distinct lines at least until the GC moves them. *)

type t = {
  cap : int;
  work : int;
  seqs : int Atomic.t array; (* per-slot sequence numbers *)
  data : int array; (* payloads; guarded by the slot protocol *)
  enq : int Atomic.t; (* next enqueue position *)
  deq : int Atomic.t; (* next dequeue position *)
  pads : int array array; (* keeps the padding blocks live; never read *)
}

(* 15 words + header ≈ 128 bytes between consecutive hot cells. *)
let pad_words = 15

let create ?(work = 50) cap =
  assert (cap >= 1);
  let pads = ref [] in
  let padded v =
    let a = Atomic.make v in
    pads := Array.make pad_words 0 :: !pads;
    a
  in
  let enq = padded 0 in
  let deq = padded 0 in
  let seqs = Array.init cap padded in
  { cap; work; seqs; data = Array.make cap 0; enq; deq;
    pads = Array.of_list !pads }

let capacity t = t.cap

let fail what = raise (Busywork.Ill_synchronized ("fastring: " ^ what))

(* A slot that is not ready (dif < 0) is not automatically a contract
   violation: with several producers (or consumers) in flight, position
   claiming and slot publishing are separate steps, so our slot's peer
   may simply not have published/recycled yet. The opposite position
   counter disambiguates: if by positions the buffer really is full
   (resp. empty), the synchronizer over-admitted and we raise;
   otherwise we wait for the in-flight peer. *)

let put t v =
  let b = Backoff.create () in
  let rec claim () =
    let pos = Atomic.get t.enq in
    let slot = t.seqs.(pos mod t.cap) in
    let dif = Atomic.get slot - pos in
    if dif = 0 then
      (* With cap = 1 the slot protocol is ambiguous here: seq = pos
         both for "free for this lap" and "still holds last lap's
         element" (the states coincide exactly when cap divides 1), so
         check fullness by positions instead. *)
      if t.cap = 1 && pos - Atomic.get t.deq >= t.cap then
        fail "put on full buffer"
      else if Atomic.compare_and_set t.enq pos (pos + 1) then (pos, slot)
      else begin
        Backoff.once b;
        claim ()
      end
    else if dif < 0 then
      if Atomic.get t.enq <> pos then claim () (* raced; re-read *)
      else if pos - Atomic.get t.deq >= t.cap then
        (* The slot still holds the element from a full lap ago: the
           synchronizer admitted a put with the buffer full. *)
        fail "put on full buffer"
      else begin
        (* A consumer claimed the slot's last-lap element but has not
           recycled it yet; wait for it. *)
        Backoff.once b;
        claim ()
      end
    else begin
      (* Another producer claimed [pos] between our reads; catch up. *)
      Backoff.once b;
      claim ()
    end
  in
  let pos, slot = claim () in
  Busywork.spin t.work;
  t.data.(pos mod t.cap) <- v;
  Atomic.set slot (pos + 1)

let get t =
  let b = Backoff.create () in
  let rec claim () =
    let pos = Atomic.get t.deq in
    let slot = t.seqs.(pos mod t.cap) in
    let dif = Atomic.get slot - (pos + 1) in
    if dif = 0 then
      if Atomic.compare_and_set t.deq pos (pos + 1) then (pos, slot)
      else begin
        Backoff.once b;
        claim ()
      end
    else if dif < 0 then
      if Atomic.get t.deq <> pos then claim () (* raced; re-read *)
      else if pos >= Atomic.get t.enq then
        (* No element was ever admitted at the head: the synchronizer
           admitted a get on an empty buffer. *)
        fail "get on empty buffer"
      else begin
        (* A producer claimed the head position but has not published
           its element yet; wait for it. *)
        Backoff.once b;
        claim ()
      end
    else begin
      Backoff.once b;
      claim ()
    end
  in
  let pos, slot = claim () in
  Busywork.spin t.work;
  let v = t.data.(pos mod t.cap) in
  Atomic.set slot (pos + t.cap);
  v

let occupancy t = Atomic.get t.enq - Atomic.get t.deq
