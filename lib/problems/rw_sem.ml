(** Readers-writers with semaphores: the three Courtois-Heymans-Parnas
    solutions [CACM'71].

    - {!Readers_prio}: problem 1 — readcount under [mutex], first reader
      locks [w], last reader releases it. Readers joining an active batch
      never wait; writers can starve.
    - {!Writers_prio}: problem 2 — the five-semaphore construction; a
      waiting writer blocks the reader turnstile [r], so readers queue
      while any writer is pending.
    - {!Fcfs}: a strong-semaphore {e service turnstile} in front of
      problem 1: every request passes through [service] in arrival order
      and releases it only once admitted, so admission is FCFS while
      readers still overlap. *)

open Sync_platform
open Sync_taxonomy

module Sem = Semaphore.Counting

module Readers_prio = struct
  type t = {
    mutex : Sem.t;
    w : Sem.t;
    mutable readcount : int;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "semaphore"

  let policy = Rw_intf.Readers_priority

  let create ~read ~write =
    { mutex = Sem.create 1; w = Sem.create 1; readcount = 0; res_read = read;
      res_write = write }

  let read t ~pid =
    Sem.p t.mutex;
    t.readcount <- t.readcount + 1;
    if t.readcount = 1 then Sem.p t.w;
    Sem.v t.mutex;
    let v = t.res_read ~pid in
    Sem.p t.mutex;
    t.readcount <- t.readcount - 1;
    if t.readcount = 0 then Sem.v t.w;
    Sem.v t.mutex;
    v

  let write t ~pid =
    Sem.p t.w;
    t.res_write ~pid;
    Sem.v t.w

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:"readers-priority-courtois"
      ~fragments:
        [ ("rw-exclusion",
           [ "readcount"; "if readcount=1 P(w)"; "if readcount=0 V(w)";
             "P(w)"; "V(w)" ]);
          ("rw-priority",
           [ "batch-join"; "readcount>0 admits readers without P(w)" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:[ "readcount mirrors the set of active readers" ]
      ~separation:Meta.Separated ()
end

(* Courtois problem 1 gives readers priority only by batch-joining: at a
   writer's release, a FIFO semaphore hands the resource to whichever
   process queued on [w] first — possibly a second writer ahead of a
   waiting reader. Bloom's reading of the specification ("if both readers
   and writers are waiting, readers have priority") needs the scheduling
   decision made at release time, which bare semaphores can only express
   by {e passing the baton} (explicit delayed-counts plus private
   semaphores) — a measure of how much auxiliary machinery the mechanism
   forces for a release-time priority constraint. *)
module Readers_prio_baton = struct
  type t = {
    e : Sem.t; (* protects all counters; the baton *)
    r : Sem.t; (* delayed readers, released one by one *)
    w : Sem.t; (* delayed writers *)
    mutable nr : int; (* active readers *)
    mutable nw : int; (* active writers, 0 or 1 *)
    mutable dr : int; (* delayed readers *)
    mutable dw : int; (* delayed writers *)
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "semaphore"

  let policy = Rw_intf.Readers_priority

  let create ~read ~write =
    { e = Sem.create 1; r = Sem.create 0; w = Sem.create 0; nr = 0; nw = 0;
      dr = 0; dw = 0; res_read = read; res_write = write }

  (* Pass the baton: waiting readers always first (readers priority). The
     waker updates state on behalf of the woken process. *)
  let signal t =
    if t.nw = 0 && t.dr > 0 then begin
      t.dr <- t.dr - 1;
      t.nr <- t.nr + 1;
      Sem.v t.r
    end
    else if t.nw = 0 && t.nr = 0 && t.dw > 0 then begin
      t.dw <- t.dw - 1;
      t.nw <- 1;
      Sem.v t.w
    end
    else Sem.v t.e

  (* Abort safety: the delayed counts are anonymous, so once a process
     has registered itself in [dr]/[dw] there is no way to cancel its
     wait — a waker may already have promoted it and banked a wake on its
     private semaphore. The registration-to-wake window and the release
     protocol therefore run masked (see docs/robustness.md: this
     uncancellability is a property of the baton technique itself); the
     entry [P(e)] and the resource body stay injectable, with the release
     protocol as the body's compensation. *)
  let read t ~pid =
    Sem.p t.e;
    Fault.mask (fun () ->
        if t.nw = 1 then begin
          t.dr <- t.dr + 1;
          Sem.v t.e;
          Sem.p t.r (* woken with nr already incremented *)
        end
        else t.nr <- t.nr + 1;
        signal t);
    let finish () =
      Fault.mask (fun () ->
          Sem.p t.e;
          t.nr <- t.nr - 1;
          signal t)
    in
    match t.res_read ~pid with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e

  let write t ~pid =
    Sem.p t.e;
    Fault.mask (fun () ->
        if t.nw = 1 || t.nr > 0 then begin
          t.dw <- t.dw + 1;
          Sem.v t.e;
          Sem.p t.w (* woken with nw already set *)
        end
        else t.nw <- 1;
        Sem.v t.e);
    let finish () =
      Fault.mask (fun () ->
          Sem.p t.e;
          t.nw <- 0;
          signal t)
    in
    match t.res_write ~pid with
    | () -> finish ()
    | exception e ->
      finish ();
      raise e

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "nr"; "nw"; "if nw=1 delay reader"; "if nw=1||nr>0 delay writer"
           ]);
          ("rw-priority",
           [ "signal:"; "if nw=0&&dr>0 pass-to-reader";
             "else-if nr=0&&dw>0 pass-to-writer"; "dr"; "dw"; "baton" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:
        [ "nr/nw active counts"; "dr/dw delayed counts";
          "r/w private wake semaphores"; "baton discipline on e" ]
      ~separation:Meta.Separated ()
end

module Writers_prio = struct
  type t = {
    mutex1 : Sem.t; (* protects readcount *)
    mutex2 : Sem.t; (* protects writecount *)
    mutex3 : Sem.t; (* at most one reader inside the r-turnstile *)
    r : Sem.t;      (* reader turnstile, held while writers pending *)
    w : Sem.t;      (* the resource *)
    mutable readcount : int;
    mutable writecount : int;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "semaphore"

  let policy = Rw_intf.Writers_priority

  let create ~read ~write =
    { mutex1 = Sem.create 1; mutex2 = Sem.create 1; mutex3 = Sem.create 1;
      r = Sem.create 1; w = Sem.create 1; readcount = 0; writecount = 0;
      res_read = read; res_write = write }

  let read t ~pid =
    Sem.p t.mutex3;
    Sem.p t.r;
    Sem.p t.mutex1;
    t.readcount <- t.readcount + 1;
    if t.readcount = 1 then Sem.p t.w;
    Sem.v t.mutex1;
    Sem.v t.r;
    Sem.v t.mutex3;
    let v = t.res_read ~pid in
    Sem.p t.mutex1;
    t.readcount <- t.readcount - 1;
    if t.readcount = 0 then Sem.v t.w;
    Sem.v t.mutex1;
    v

  let write t ~pid =
    Sem.p t.mutex2;
    t.writecount <- t.writecount + 1;
    if t.writecount = 1 then Sem.p t.r;
    Sem.v t.mutex2;
    Sem.p t.w;
    t.res_write ~pid;
    Sem.v t.w;
    Sem.p t.mutex2;
    t.writecount <- t.writecount - 1;
    if t.writecount = 0 then Sem.v t.r;
    Sem.v t.mutex2

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "readcount"; "if readcount=1 P(w)"; "if readcount=0 V(w)";
             "P(w)"; "V(w)" ]);
          ("rw-priority",
           [ "writecount"; "if writecount=1 P(r)"; "if writecount=0 V(r)";
             "P(mutex3)"; "P(r)"; "V(r)"; "V(mutex3)" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:
        [ "readcount mirrors the set of active readers";
          "writecount mirrors the set of pending writers" ]
      ~separation:Meta.Separated ()
end

module Fcfs = struct
  type t = {
    service : Sem.t; (* strong FIFO turnstile: admission order *)
    mutex : Sem.t;
    w : Sem.t;
    mutable readcount : int;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "semaphore"

  let policy = Rw_intf.Fcfs

  let create ~read ~write =
    { service = Sem.create ~fairness:`Strong 1; mutex = Sem.create 1;
      w = Sem.create 1; readcount = 0; res_read = read; res_write = write }

  let read t ~pid =
    Sem.p t.service;
    Sem.p t.mutex;
    t.readcount <- t.readcount + 1;
    if t.readcount = 1 then Sem.p t.w;
    Sem.v t.mutex;
    Sem.v t.service;
    let v = t.res_read ~pid in
    Sem.p t.mutex;
    t.readcount <- t.readcount - 1;
    if t.readcount = 0 then Sem.v t.w;
    Sem.v t.mutex;
    v

  let write t ~pid =
    Sem.p t.service;
    Sem.p t.w;
    Sem.v t.service;
    t.res_write ~pid;
    Sem.v t.w

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "readcount"; "if readcount=1 P(w)"; "if readcount=0 V(w)";
             "P(w)"; "V(w)" ]);
          ("rw-priority", [ "P(service)"; "V(service)"; "strong"; "FIFO" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect);
          (Info.Request_time, Meta.Direct) ]
      ~aux_state:[ "readcount mirrors the set of active readers" ]
      ~separation:Meta.Separated ()
end
