lib/platform/latch.ml: Clock Condition Int64 Mutex Thread
