(** The served Bloom problems (E24), deadline-aware.

    Four of the paper's six problems, recast as long-lived services:

    - {b queue}: the bounded buffer as a queue service — strong
      semaphores guard slots/items, exactly the textbook split;
    - {b sched}: the disk-head scheduler as a request scheduler — one
      head, seeks serialized by a mutex, service time proportional to
      the seek distance;
    - {b timer}: the alarm clock as a timer service — a ticker thread
      advances a virtual tick under a mutex and broadcasts; sleepers
      wait on the condition;
    - {b kv}: readers-writers as a KV store — a condition-based RW
      lock, reads share, writes exclude.

    Deadline propagation is the robustness core: {!handle} receives the
    request's {e absolute} deadline and threads the remaining budget
    into every blocking acquire — [Semaphore.acquire_for] (queue),
    [Mutex.try_lock_for] (sched), [Condition.wait_for] (timer, kv) —
    so a slow lock becomes a typed [Deadline_exceeded] reply instead of
    a stalled connection. An already-expired deadline fast-rejects
    before touching any synchronizer (see the timeout-0 edge tests in
    test_platform). *)

type config = {
  queue_capacity : int;  (** bounded-buffer slots (default 64) *)
  tracks : int;  (** disk cylinders (default 256) *)
  tick_ms : int;  (** virtual-tick period for the timer (default 2) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** Builds the four backends and starts the timer's ticker thread. *)

val handle : t -> deadline_end_ns:int64 -> Wire.req -> Wire.reply
(** Serve one request; never blocks past the deadline. A
    [deadline_end_ns] at or before now fast-rejects with
    [Deadline_exceeded] without a syscall-level wait. *)

val queue_length : t -> int
(** Items currently queued (tests). *)

val stop : t -> unit
(** Stop the ticker and release waiters; {!handle} afterwards replies
    [Shutting_down]. Idempotent. *)
