(* Property-based conformance: random workload shapes through the full
   harnesses. Counts are modest because each case runs a real concurrent
   workload, but each case exercises a different parameter corner. *)

open Sync_problems

let ok name = function
  | Ok () -> true
  | Error msg ->
    QCheck.Test.fail_reportf "%s: %s" name msg

(* Bounded buffer: random capacity / worker mix / item counts, one
   property per mechanism family to keep failures attributable. *)
let bb_prop name (m : (module Bb_intf.S)) =
  QCheck.Test.make ~name:("bb random workloads: " ^ name) ~count:6
    QCheck.(
      quad (int_range 1 6) (int_range 1 3) (int_range 1 3) (int_range 4 24))
    (fun (capacity, producers, consumers, items_per_producer) ->
      ok name
        (Bb_harness.verify ~capacity ~producers ~consumers
           ~items_per_producer m))

(* Disk SCAN conformance on random batches (distinct tracks, none equal
   to the staged head position so the expected order is unambiguous). *)
let scan_prop name (m : (module Disk_intf.S)) =
  let gen =
    QCheck.make
      ~print:(fun l -> String.concat ";" (List.map string_of_int l))
      QCheck.Gen.(
        let track = oneof [ int_range 0 48; int_range 52 99 ] in
        list_size (int_range 3 8) track >|= List.sort_uniq compare)
  in
  QCheck.Test.make ~name:("disk SCAN random batches: " ^ name) ~count:6 gen
    (fun batch ->
      QCheck.assume (batch <> []);
      ok name (Disk_harness.verify_scan ~batch m))

(* Alarm clock: random duration multisets, exact tick-by-tick check. *)
let alarm_prop name (m : (module Alarm_intf.S)) =
  QCheck.Test.make ~name:("alarm random durations: " ^ name) ~count:6
    QCheck.(list_of_size (Gen.int_range 1 7) (int_range 1 6))
    (fun durations -> ok name (Alarm_harness.verify ~durations m))

(* One-slot buffer: random putter/getter mixes. *)
let slot_prop name (m : (module Slot_intf.S)) =
  QCheck.Test.make ~name:("slot random workloads: " ^ name) ~count:6
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (putters, getters) ->
      ok name (Slot_harness.verify ~putters ~getters ~items_per_putter:8 m))

let () =
  Alcotest.run "property-workloads"
    [ ( "bounded-buffer",
        List.map Testutil.qcheck_case
          [ bb_prop "monitor" (module Bb_mon);
            bb_prop "serializer" (module Bb_ser);
            bb_prop "pathexpr" (module Bb_path);
            bb_prop "ccr" (module Bb_ccr);
            bb_prop "eventcount" (module Bb_evc) ] );
      ( "disk-scan",
        List.map Testutil.qcheck_case
          [ scan_prop "monitor" (module Disk_mon);
            scan_prop "serializer" (module Disk_ser);
            scan_prop "semaphore" (module Disk_sem);
            scan_prop "ccr" (module Disk_ccr) ] );
      ( "alarm",
        List.map Testutil.qcheck_case
          [ alarm_prop "monitor" (module Alarm_mon);
            alarm_prop "serializer" (module Alarm_ser);
            alarm_prop "eventcount" (module Alarm_evc);
            alarm_prop "ccr" (module Alarm_ccr) ] );
      ( "one-slot",
        List.map Testutil.qcheck_case
          [ slot_prop "pathexpr" (module Slot_path);
            slot_prop "csp" (module Slot_csp);
            slot_prop "eventcount" (module Slot_evc) ] ) ]
