open Sync_platform

type sem = { p : unit -> unit; v : unit -> unit }

type t = {
  name : string;
  make_sem : int -> sem;
  pred_gate : ((unit -> bool) -> unit) option;
  poke : unit -> unit;
}

let semaphore () =
  let make_sem n =
    let s = Semaphore.Counting.create ~fairness:`Strong n in
    { p = (fun () -> Semaphore.Counting.p s);
      v = (fun () -> Semaphore.Counting.v s) }
  in
  { name = "semaphore"; make_sem; pred_gate = None; poke = (fun () -> ()) }

let gate () =
  let lock = Mutex.create ~name:"path.lock" () in
  let changed = Condition.create () in
  let make_sem n =
    let tokens = ref n in
    let q : unit Waitq.t = Waitq.create ~name:"path.gate" () in
    let p () =
      Mutex.protect lock (fun () ->
          if !tokens > 0 && Waitq.is_empty q then decr tokens
          else
            (* A token handed to an aborting waiter is re-donated, so a
               path counter never loses a unit to an injected crash. *)
            Waitq.wait q ~lock ()
              ~on_abort:(fun () ->
                if not (Waitq.wake_first q) then incr tokens))
    in
    let v () =
      Mutex.protect lock (fun () ->
          (* Hand the token directly to the oldest waiter, preserving
             FIFO. *)
          if not (Waitq.wake_first q) then incr tokens;
          Condition.broadcast changed)
    in
    { p; v }
  in
  let pred_gate f =
    Mutex.protect lock (fun () ->
        if not (f ()) then begin
          let t0 = Sync_trace.Probe.now () in
          Condition.wait changed lock;
          while not (f ()) do
            Sync_trace.Probe.instant Spurious ~site:"path.pred" ~arg:0;
            Condition.wait changed lock
          done;
          Sync_trace.Probe.span Wait ~site:"path.pred" ~since:t0 ~arg:0
        end)
  in
  let poke () =
    Mutex.protect lock (fun () -> Condition.broadcast changed)
  in
  { name = "gate"; make_sem; pred_gate = Some pred_gate; poke }
