type t = {
  mutex : Mutex.t;
  zero : Condition.t;
  mutable pending : int;
}

let create n =
  assert (n >= 0);
  { mutex = Mutex.create (); zero = Condition.create (); pending = n }

let arrive t =
  Mutex.lock t.mutex;
  if t.pending = 0 then begin
    Mutex.unlock t.mutex;
    invalid_arg "Latch.arrive: already at zero"
  end;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.zero;
  Mutex.unlock t.mutex

let wait t =
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.zero t.mutex
  done;
  Mutex.unlock t.mutex

let wait_timeout t ~timeout_ns =
  let deadline = Int64.add (Clock.now_ns ()) timeout_ns in
  let rec loop () =
    Mutex.lock t.mutex;
    let done_ = t.pending = 0 in
    Mutex.unlock t.mutex;
    if done_ then true
    else if Clock.now_ns () >= deadline then false
    else begin
      Thread.yield ();
      loop ()
    end
  in
  loop ()

let pending t =
  Mutex.lock t.mutex;
  let n = t.pending in
  Mutex.unlock t.mutex;
  n

module Barrier = struct
  type t = {
    mutex : Mutex.t;
    turn : Condition.t;
    parties : int;
    mutable arrived : int;
    mutable generation : int;
  }

  let create parties =
    assert (parties >= 1);
    { mutex = Mutex.create (); turn = Condition.create (); parties;
      arrived = 0; generation = 0 }

  let await t =
    Mutex.lock t.mutex;
    let gen = t.generation in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      t.arrived <- 0;
      t.generation <- t.generation + 1;
      Condition.broadcast t.turn
    end
    else
      while t.generation = gen do
        Condition.wait t.turn t.mutex
      done;
    Mutex.unlock t.mutex
end
