(* The compact text timeline: one line per event, time-ordered, offsets
   rebased to the first event. Made for terminal reading of a detsched
   replay — a printed E18 seed replays into this instead of a mute
   pass/fail — but works on any snapshot. *)

let pp ppf events =
  match events with
  | [] -> Format.fprintf ppf "(no events)@."
  | first :: _ ->
    let base =
      List.fold_left
        (fun acc (e : Probe.event) -> min acc e.t0)
        first.Probe.t0 events
    in
    List.iter
      (fun (e : Probe.event) ->
        let off_us = float_of_int (e.t0 - base) /. 1e3 in
        let dur =
          if Probe.is_span e.kind then Printf.sprintf "%8dns" e.dur
          else "        -"
        in
        let op = if e.op = "" then "" else " [" ^ e.op ^ "]" in
        Format.fprintf ppf "%10.1fus %-4s %-8s %-26s %s arg=%d%s@." off_us
          (Probe.actor_label e.actor)
          (Probe.kind_to_string e.kind)
          e.site dur e.arg op)
      events

let to_string events = Format.asprintf "%a" pp events
