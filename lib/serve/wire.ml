type req =
  | Ping
  | Q_put of string
  | Q_get
  | S_seek of int
  | T_sleep of int
  | K_get of string
  | K_put of string * string

type reply =
  | Ok of string
  | Overloaded of { retry_after_ms : int }
  | Deadline_exceeded
  | Bad_request of string
  | Shutting_down

let max_frame = 65536

let version = 1

let problem_of_req = function
  | Ping -> "ping"
  | Q_put _ | Q_get -> "queue"
  | S_seek _ -> "sched"
  | T_sleep _ -> "timer"
  | K_get _ | K_put _ -> "kv"

let op_name = function
  | Ping -> "ping"
  | Q_put _ -> "put"
  | Q_get -> "get"
  | S_seek _ -> "seek"
  | T_sleep _ -> "sleep"
  | K_get _ -> "kv.get"
  | K_put _ -> "kv.put"

(* -- payload codecs ------------------------------------------------ *)

let put_i32 b v = Buffer.add_int32_be b (Int32.of_int v)

let get_i32 s off = Int32.to_int (String.get_int32_be s off)

let opcode = function
  | Ping -> 0
  | Q_put _ -> 1
  | Q_get -> 2
  | S_seek _ -> 3
  | T_sleep _ -> 4
  | K_get _ -> 5
  | K_put _ -> 6

let header_len = 1 + 1 + 8 (* version, opcode, deadline *)

let encode_request ~deadline_ns req =
  let b = Buffer.create 32 in
  Buffer.add_uint8 b version;
  Buffer.add_uint8 b (opcode req);
  Buffer.add_int64_be b deadline_ns;
  (match req with
  | Ping | Q_get -> ()
  | Q_put item -> Buffer.add_string b item
  | S_seek track -> put_i32 b track
  | T_sleep ticks -> put_i32 b ticks
  | K_get key -> Buffer.add_string b key
  | K_put (key, value) ->
    Buffer.add_uint16_be b (String.length key);
    Buffer.add_string b key;
    Buffer.add_string b value);
  Buffer.contents b

let rest s = String.sub s header_len (String.length s - header_len)

let decode_request s =
  let len = String.length s in
  if len < header_len then Error "request: short header"
  else if Char.code s.[0] <> version then
    Error (Printf.sprintf "request: unknown version %d" (Char.code s.[0]))
  else begin
    let deadline_ns = String.get_int64_be s 2 in
    let body = len - header_len in
    match Char.code s.[1] with
    | 0 -> if body = 0 then Ok (deadline_ns, Ping) else Error "ping: trailing bytes"
    | 1 -> Ok (deadline_ns, Q_put (rest s))
    | 2 -> if body = 0 then Ok (deadline_ns, Q_get) else Error "get: trailing bytes"
    | 3 ->
      if body = 4 then Ok (deadline_ns, S_seek (get_i32 s header_len))
      else Error "seek: want a 4-byte track"
    | 4 ->
      if body = 4 then Ok (deadline_ns, T_sleep (get_i32 s header_len))
      else Error "sleep: want a 4-byte tick count"
    | 5 -> Ok (deadline_ns, K_get (rest s))
    | 6 ->
      if body < 2 then Error "kv.put: short key length"
      else begin
        let klen = String.get_uint16_be s header_len in
        if body < 2 + klen then Error "kv.put: key longer than payload"
        else
          let key = String.sub s (header_len + 2) klen in
          let value =
            String.sub s (header_len + 2 + klen) (body - 2 - klen)
          in
          Ok (deadline_ns, K_put (key, value))
      end
    | op -> Error (Printf.sprintf "request: unknown opcode %d" op)
  end

let encode_reply r =
  let b = Buffer.create 16 in
  Buffer.add_uint8 b version;
  (match r with
  | Ok payload ->
    Buffer.add_uint8 b 0;
    Buffer.add_string b payload
  | Overloaded { retry_after_ms } ->
    Buffer.add_uint8 b 1;
    put_i32 b retry_after_ms
  | Deadline_exceeded -> Buffer.add_uint8 b 2
  | Bad_request msg ->
    Buffer.add_uint8 b 3;
    Buffer.add_string b msg
  | Shutting_down -> Buffer.add_uint8 b 4);
  Buffer.contents b

let decode_reply s =
  let len = String.length s in
  if len < 2 then Error "reply: short header"
  else if Char.code s.[0] <> version then
    Error (Printf.sprintf "reply: unknown version %d" (Char.code s.[0]))
  else
    let body () = String.sub s 2 (len - 2) in
    match Char.code s.[1] with
    | 0 -> Ok (Ok (body ()))
    | 1 ->
      if len = 6 then Ok (Overloaded { retry_after_ms = get_i32 s 2 })
      else Error "overloaded: want a 4-byte retry hint"
    | 2 -> if len = 2 then Ok Deadline_exceeded else Error "deadline: trailing bytes"
    | 3 -> Ok (Bad_request (body ()))
    | 4 -> if len = 2 then Ok Shutting_down else Error "shutdown: trailing bytes"
    | st -> Error (Printf.sprintf "reply: unknown status %d" st)

(* -- framing ------------------------------------------------------- *)

type read_error =
  | Eof
  | Truncated
  | Oversized of int
  | Timeout
  | Conn_error of string

let read_error_to_string = function
  | Eof -> "eof"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Timeout -> "receive timeout"
  | Conn_error e -> "connection error: " ^ e

(* Fill [want] bytes or say why we could not. A zero-byte read at
   offset 0 is a clean close; later it means the peer died mid-frame.
   EAGAIN/EWOULDBLOCK surface the socket's SO_RCVTIMEO as [Timeout];
   resets (ECONNRESET, EPIPE) are the peer vanishing mid-frame. *)
let read_exactly fd buf want ~at_boundary =
  let rec go off =
    if off = want then Result.Ok ()
    else
      match Unix.read fd buf off (want - off) with
      | 0 -> Error (if off = 0 && at_boundary then Eof else Truncated)
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error Timeout
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Error (if off = 0 && at_boundary then Eof else Truncated)
      | exception Unix.Unix_error (e, _, _) ->
        Error (Conn_error (Unix.error_message e))
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exactly fd hdr 4 ~at_boundary:true with
  | Error e -> Error e
  | Result.Ok () ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      match read_exactly fd payload len ~at_boundary:false with
      | Error e -> Error e
      | Result.Ok () -> Result.Ok (Bytes.unsafe_to_string payload)
    end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg (Printf.sprintf "Wire.write_frame: %d > max_frame" len);
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  let rec send off =
    if off < 4 + len then
      send (off + Unix.write fd b off (4 + len - off))
  in
  send 0
