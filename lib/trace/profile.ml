open Sync_metrics

(* Aggregate a snapshot into the two artifacts the contention questions
   need: per-(site, kind) duration histograms for the span kinds (where
   does hold time go, how long do waiters queue) and a wake-accounting
   report (how many wakes were issued, how many were direct handoffs,
   how many woke a process whose predicate was still false, how many
   timed waits walked away). *)

type site_row = {
  site : string;
  kind : Probe.kind;
  count : int;
  total_ns : int;
  hist : Histogram.t;
}

type wake_report = {
  signals : int;
  handoffs : int;
  spurious : int;
  abandoned : int;
  flips : int;  (** tier flips recorded by the adaptive controller *)
  max_queue : int;  (** deepest queue observed at any park or wake *)
}

type t = {
  rows : site_row list;  (** spans, grouped by site then kind *)
  wake : wake_report;
  events : int;
  dropped : int;
}

let of_events ?(dropped = 0) events =
  let spans : (string * Probe.kind, site_row) Hashtbl.t = Hashtbl.create 32 in
  let signals = ref 0 and handoffs = ref 0 in
  let spurious = ref 0 and abandoned = ref 0 in
  let flips = ref 0 and max_queue = ref 0 in
  List.iter
    (fun (e : Probe.event) ->
      match e.kind with
      | Acquire | Hold | Wait | Op ->
        let key = (e.site, e.kind) in
        let row =
          match Hashtbl.find_opt spans key with
          | Some r -> r
          | None ->
            let r =
              { site = e.site; kind = e.kind; count = 0; total_ns = 0;
                hist = Histogram.create () }
            in
            Hashtbl.replace spans key r;
            r
        in
        Histogram.record row.hist e.dur;
        Hashtbl.replace spans key
          { row with count = row.count + 1; total_ns = row.total_ns + e.dur };
        if e.kind = Wait then max_queue := max !max_queue e.arg
      | Signal ->
        incr signals;
        max_queue := max !max_queue e.arg
      | Handoff ->
        incr handoffs;
        max_queue := max !max_queue e.arg
      | Spurious -> incr spurious
      | Abandon -> incr abandoned
      | Flip -> incr flips)
    events;
  let rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) spans []
    |> List.sort (fun a b ->
           match compare a.site b.site with
           | 0 -> compare a.kind b.kind
           | c -> c)
  in
  { rows;
    wake =
      { signals = !signals; handoffs = !handoffs; spurious = !spurious;
        abandoned = !abandoned; flips = !flips; max_queue = !max_queue };
    events = List.length events;
    dropped }

let find_row t ~site ~kind =
  List.find_opt (fun r -> r.site = site && r.kind = kind) t.rows

let pp ppf t =
  Format.fprintf ppf "%-28s %-8s %9s %12s %10s %10s %10s@." "site" "kind"
    "count" "total ms" "mean ns" "p99 ns" "max ns";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %-8s %9d %12.3f %10.0f %10d %10d@." r.site
        (Probe.kind_to_string r.kind)
        r.count
        (float_of_int r.total_ns /. 1e6)
        (Histogram.mean r.hist)
        (Histogram.quantile r.hist 0.99)
        (Histogram.max_value r.hist))
    t.rows;
  Format.fprintf ppf
    "wakes: %d signals, %d handoffs, %d spurious, %d abandoned, %d tier \
     flips; deepest queue %d; %d events (%d dropped)@."
    t.wake.signals t.wake.handoffs t.wake.spurious t.wake.abandoned
    t.wake.flips t.wake.max_queue t.events t.dropped

let to_json t =
  Emit.Obj
    [ ("events", Emit.Int t.events);
      ("dropped", Emit.Int t.dropped);
      ("sites",
       Emit.List
         (List.map
            (fun r ->
              Emit.Obj
                [ ("site", Emit.Str r.site);
                  ("kind", Emit.Str (Probe.kind_to_string r.kind));
                  ("count", Emit.Int r.count);
                  ("total_ns", Emit.Int r.total_ns);
                  ("mean_ns", Emit.Float (Histogram.mean r.hist));
                  ("p50_ns", Emit.Int (Histogram.quantile r.hist 0.5));
                  ("p99_ns", Emit.Int (Histogram.quantile r.hist 0.99));
                  ("max_ns", Emit.Int (Histogram.max_value r.hist)) ])
            t.rows));
      ("wake",
       Emit.Obj
         [ ("signals", Emit.Int t.wake.signals);
           ("handoffs", Emit.Int t.wake.handoffs);
           ("spurious", Emit.Int t.wake.spurious);
           ("abandoned", Emit.Int t.wake.abandoned);
           ("flips", Emit.Int t.wake.flips);
           ("max_queue", Emit.Int t.wake.max_queue) ]) ]
