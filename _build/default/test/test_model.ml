(* The exhaustive-interleaving model checker (E17): explorer mechanics,
   the pure semaphore/monitor semantics, and the three staged-scenario
   proofs. *)

open Sync_model
open Sysstate

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Semaphore model: exclusion + FIFO over ALL interleavings            *)

let cs_proc ~me =
  { Explore.name = me;
    actions =
      [ (let r = Sem.request "s" ~me in
         (* Fuse the request with its ghost mark so "request order" is
            well-defined. *)
         act (me ^ ":request+mark") (fun t ->
             r.apply (log_event t ("req:" ^ me))));
        Sem.acquire "s" ~me;
        act (me ^ ":cs-in") (fun t ->
            let t = log_event t ("got:" ^ me) in
            set_int t "in_cs" (int_of t "in_cs" + 1));
        act (me ^ ":cs-out") (fun t -> set_int t "in_cs" (int_of t "in_cs" - 1));
        Sem.v "s" ] }

let test_sem_exclusion_all_interleavings () =
  let init = init ~sems:[ ("s", 1) ] ~ints:[ ("in_cs", 0) ] () in
  match
    Explore.check ~init
      ~invariant:(fun t ->
        if int_of t "in_cs" > 1 then Some "two processes in the section"
        else None)
      [ cs_proc ~me:"A"; cs_proc ~me:"B"; cs_proc ~me:"C" ]
  with
  | Ok stats ->
    check_bool "explored something" true (stats.Explore.states > 10)
  | Error msg -> Alcotest.fail msg

let test_sem_fifo_all_interleavings () =
  let init = init ~sems:[ ("s", 1) ] ~ints:[ ("in_cs", 0) ] () in
  let project prefix log =
    List.filter_map
      (fun e ->
        if String.length e > 4 && String.sub e 0 4 = prefix then
          Some (String.sub e 4 (String.length e - 4))
        else None)
      log
  in
  match
    Explore.check ~init
      ~property:(fun t ->
        let log = logged t in
        if project "req:" log = project "got:" log then None
        else Some "grant order diverged from request order")
      [ cs_proc ~me:"A"; cs_proc ~me:"B"; cs_proc ~me:"C" ]
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_explorer_finds_classic_deadlock () =
  let grab a b me =
    { Explore.name = me;
      actions = Sem.p a ~me @ Sem.p b ~me @ [ Sem.v b; Sem.v a ] }
  in
  let init = init ~sems:[ ("a", 1); ("b", 1) ] () in
  let stats = Explore.run ~init [ grab "a" "b" "P"; grab "b" "a" "Q" ] in
  check_bool "deadlock found" true (stats.Explore.deadlocks <> []);
  check_bool "some schedules complete" true (stats.Explore.terminals > 0)

let test_invariant_violation_reported () =
  let init = init ~ints:[ ("x", 0) ] () in
  let p =
    { Explore.name = "P";
      actions = [ act "P:bump" (fun t -> set_int t "x" 1) ] }
  in
  let stats =
    Explore.run ~init
      ~invariant:(fun t -> if int_of t "x" = 1 then Some "x hit 1" else None)
      [ p ]
  in
  check_int "one violation" 1 (List.length stats.Explore.violations)

(* ------------------------------------------------------------------ *)
(* Monitor model: Hoare no-barging over ALL interleavings              *)

let test_monitor_no_barging_all_interleavings () =
  let init =
    init ~mons:[ "M" ] ~conds:[ ("M", [ "c" ]) ] ~ints:[ ("token", 0) ] ()
  in
  let waiter =
    { Explore.name = "W";
      actions =
        Mon.enter "M" ~me:"W"
        @ Mon.wait "M" ~cond:"c" ~me:"W"
        @ [ act "W:observe" (fun t ->
                log_event t ("saw:" ^ string_of_int (int_of t "token")));
            Mon.exit "M" ~me:"W" ] }
  in
  let signaller =
    let gated =
      match Mon.enter "M" ~me:"S" with
      | [ req; acq ] ->
        [ { req with
            guard = (fun t -> Mon.waiting_on t "M" ~cond:"c" "W" && req.guard t)
          };
          acq ]
      | _ -> assert false
    in
    { Explore.name = "S";
      actions =
        gated
        @ [ act "S:deposit" (fun t -> set_int t "token" 1) ]
        @ Mon.signal "M" ~cond:"c" ~me:"S"
        @ [ Mon.exit "M" ~me:"S" ] }
  in
  let thief =
    { Explore.name = "T";
      actions =
        Mon.enter "M" ~me:"T"
        @ [ act "T:steal" (fun t ->
                if int_of t "token" = 1 then
                  log_event (set_int t "token" 0) "stole"
                else t);
            Mon.exit "M" ~me:"T" ] }
  in
  match
    Explore.check ~init
      ~property:(fun t ->
        if List.mem "saw:1" (logged t) then None
        else Some "the waiter lost the token to a barger")
      [ waiter; signaller; thief ]
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* The staged-scenario proofs (E17)                                    *)

let scenario name verdict_fn expect_holds () =
  let v = verdict_fn () in
  check_bool
    (Printf.sprintf "%s: %s" name v.Scenarios.detail)
    expect_holds v.Scenarios.holds;
  check_bool "non-trivial exploration" true (v.Scenarios.states > 10);
  check_int "single canonical completion" 1 v.Scenarios.terminals

let () =
  Alcotest.run "model"
    [ ( "explorer",
        [ Alcotest.test_case "semaphore exclusion, all interleavings" `Quick
            test_sem_exclusion_all_interleavings;
          Alcotest.test_case "semaphore FIFO, all interleavings" `Quick
            test_sem_fifo_all_interleavings;
          Alcotest.test_case "classic AB/BA deadlock found" `Quick
            test_explorer_finds_classic_deadlock;
          Alcotest.test_case "invariant violations reported" `Quick
            test_invariant_violation_reported;
          Alcotest.test_case "monitor no-barging, all interleavings" `Quick
            test_monitor_no_barging_all_interleavings ] );
      ( "staged-proofs",
        [ Alcotest.test_case "fig1 anomaly unavoidable" `Quick
            (scenario "fig1" Scenarios.fig1_anomaly_unavoidable true);
          Alcotest.test_case "monitor readers-priority schedule-independent"
            `Quick
            (scenario "monitor-rp" Scenarios.monitor_readers_priority_correct
               true);
          Alcotest.test_case "release-policy flip provably flips outcome"
            `Quick
            (scenario "monitor-flip" Scenarios.monitor_release_policy_flip
               true);
          Alcotest.test_case "courtois-1 anomaly structural" `Quick
            (scenario "courtois1" Scenarios.courtois1_anomaly_unavoidable true);
          Alcotest.test_case "baton rewrite schedule-independent" `Quick
            (scenario "baton" Scenarios.baton_readers_priority_correct true);
          Alcotest.test_case "serializer readers-priority schedule-independent"
            `Quick
            (scenario "serializer"
               Scenarios.serializer_readers_priority_correct true) ] ) ]
