lib/taxonomy/constr.mli: Format Info
