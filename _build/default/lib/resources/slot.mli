(** Unsynchronized one-slot buffer (the history-information problem's
    resource half, after Campbell-Habermann).

    The slot's sequential contract is strict alternation: [put] only into
    an empty slot, [get] only from a full one, never concurrently.
    Violations raise {!Busywork.Ill_synchronized}. *)

type t

val create : ?work:int -> unit -> t

val put : t -> int -> unit

val get : t -> int

val is_full : t -> bool
