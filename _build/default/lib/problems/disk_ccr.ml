(** Disk-head scheduling with conditional critical regions.

    A guard can test the waiter's own parameter against the shared state,
    but it cannot rank itself against the {e other} waiters' parameters —
    so, as with bare semaphores, the SCAN decision needs explicit pending
    heaps in the shared variable, and each leaver nominates the next
    request by id. *)

open Sync_platform
open Sync_taxonomy

type pending = { dest : int; id : int }

type direction = Up | Down

type shared = {
  upq : pending Heap.t;
  downq : pending Heap.t;
  mutable next_id : int;
  mutable granted : int option; (* id nominated by the last leaver *)
  mutable busy : bool;
  mutable headpos : int;
  mutable direction : direction;
}

type t = { v : shared Sync_ccr.Ccr.t; res_access : pid:int -> int -> unit }

let mechanism = "ccr"

let create ~tracks ~access =
  ignore tracks;
  { v =
      Sync_ccr.Ccr.create
        { upq = Heap.create ~cmp:(fun a b -> compare a.dest b.dest) ();
          downq = Heap.create ~cmp:(fun a b -> compare b.dest a.dest) ();
          next_id = 0; granted = None; busy = false; headpos = 0;
          direction = Up };
    res_access = access }

let access t ~pid track =
  let immediate, id =
    Sync_ccr.Ccr.region t.v (fun s ->
        let id = s.next_id in
        s.next_id <- id + 1;
        if not s.busy then begin
          s.busy <- true;
          s.headpos <- track;
          (true, id)
        end
        else begin
          let entry = { dest = track; id } in
          if s.headpos < track || (s.headpos = track && s.direction = Up)
          then Heap.push s.upq entry
          else Heap.push s.downq entry;
          (false, id)
        end)
  in
  if not immediate then
    Sync_ccr.Ccr.region t.v
      ~when_:(fun s -> s.granted = Some id)
      (fun s -> s.granted <- None);
  Fun.protect
    ~finally:(fun () ->
      Sync_ccr.Ccr.region t.v (fun s ->
          let next =
            match s.direction with
            | Up -> (
              match Heap.pop s.upq with
              | Some w -> Some w
              | None ->
                s.direction <- Down;
                Heap.pop s.downq)
            | Down -> (
              match Heap.pop s.downq with
              | Some w -> Some w
              | None ->
                s.direction <- Up;
                Heap.pop s.upq)
          in
          match next with
          | Some w ->
            s.headpos <- w.dest;
            s.granted <- Some w.id
          | None -> s.busy <- false))
    (fun () -> t.res_access ~pid track)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler"
    ~fragments:
      [ ("disk-exclusion", [ "busy"; "flag"; "when granted=id" ]);
        ("disk-scan-order",
         [ "upq"; "downq"; "heaps"; "leaver-nominates-next"; "headpos";
           "direction" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:
      [ "pending-request heaps ordered by track"; "granted-id cell";
        "headpos"; "direction"; "busy flag" ]
    ~separation:Meta.Separated ()
