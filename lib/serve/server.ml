open Sync_platform
module Probe = Sync_trace.Probe

type addr = Unix_sock of string | Tcp of int

type config = {
  addr : addr;
  workers : int;
  accept_queue : int;
  bucket_rate : float;
  bucket_burst : int;
  grace_ms : int;
  default_deadline_ns : int64;
  chaos : Chaos.config option;
  service : Service.config;
}

let default_config addr =
  { addr;
    workers = 8;
    accept_queue = 64;
    bucket_rate = 2000.0;
    bucket_burst = 256;
    grace_ms = 2000;
    default_deadline_ns = 250_000_000L;
    chaos = None;
    service = Service.default_config }

type stats = {
  accepted : int;
  shed : int;
  served : int;
  overloaded : int;
  deadline_exceeded : int;
  bad_request : int;
  chaos_resets : int;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  service : Service.t;
  buckets : (string * Bucket.t) list;
  (* bounded dispatch queue: slots = free depth, ready = queued conns *)
  conns : (int * Unix.file_descr) Queue.t;
  active : (int, Unix.file_descr) Hashtbl.t;  (* in-flight, per conn id *)
  q_lock : Mutex.t;
  slots : Semaphore.Counting.t;
  ready : Semaphore.Counting.t;
  draining : bool Atomic.t;
  live_workers : int Atomic.t;
  next_conn : int Atomic.t;
  (* stats *)
  s_accepted : int Atomic.t;
  s_shed : int Atomic.t;
  s_served : int Atomic.t;
  s_overloaded : int Atomic.t;
  s_deadline : int Atomic.t;
  s_bad : int Atomic.t;
  s_chaos : int Atomic.t;
  mutable acceptor : Thread.t option;
  mutable pool : Thread.t list;
}

let sockaddr t = t.sockaddr

let draining t = Atomic.get t.draining

let stats t =
  { accepted = Atomic.get t.s_accepted;
    shed = Atomic.get t.s_shed;
    served = Atomic.get t.s_served;
    overloaded = Atomic.get t.s_overloaded;
    deadline_exceeded = Atomic.get t.s_deadline;
    bad_request = Atomic.get t.s_bad;
    chaos_resets = Atomic.get t.s_chaos }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* -- per-connection request loop ----------------------------------- *)

let reply_stat t (r : Wire.reply) =
  Atomic.incr t.s_served;
  match r with
  | Wire.Overloaded _ -> Atomic.incr t.s_overloaded
  | Wire.Deadline_exceeded -> Atomic.incr t.s_deadline
  | Wire.Bad_request _ -> Atomic.incr t.s_bad
  | Wire.Ok _ | Wire.Shutting_down -> ()

let bucket_for t problem = List.assoc_opt problem t.buckets

(* One request: decode, admit, execute against the service with the
   propagated deadline, reply. Returns [false] when the connection is
   done (EOF, torn frame, protocol error we cannot recover from). *)
let serve_request t chaos conn_id fd =
  match Chaos.on_read chaos (fun () -> Wire.read_frame fd) with
  | `Dropped -> true (* request lost inside the server; client times out *)
  | `Data (Error Wire.Timeout) ->
    (* Idle connection: the server-side receive timeout fired. Keep the
       connection unless a drain is in progress — the periodic timeout
       is what lets a drain reclaim workers parked on idle clients. *)
    not (Atomic.get t.draining)
  | `Data (Error (Wire.Eof | Wire.Truncated | Wire.Conn_error _)) -> false
  | `Data (Error (Wire.Oversized _)) ->
    (* Oversized advertisement: refuse and hang up — the stream cannot
       be resynchronized past an unread body. *)
    (try Chaos.on_write chaos fd (Wire.encode_reply (Wire.Bad_request "oversized frame"))
     with Unix.Unix_error _ -> ());
    Atomic.incr t.s_bad;
    false
  | `Data (Ok payload) -> (
    match Wire.decode_request payload with
    | Error msg ->
      reply_stat t (Wire.Bad_request msg);
      Chaos.on_write chaos fd (Wire.encode_reply (Wire.Bad_request msg));
      true
    | Ok (budget_ns, req) ->
      let budget_ns =
        if Int64.compare budget_ns 0L > 0 then budget_ns
        else t.cfg.default_deadline_ns
      in
      let deadline_end_ns = Int64.add (Clock.now_ns ()) budget_ns in
      let reply =
        if Atomic.get t.draining then Wire.Shutting_down
        else
          match bucket_for t (Wire.problem_of_req req) with
          | Some b when not (Bucket.try_take b) ->
            Wire.Overloaded { retry_after_ms = Bucket.retry_after_ms b }
          | _ ->
            (* Server-side request span: op label + one Op span per
               request, so a traced run shows the service tier next to
               the synchronizer's own acquire/wait spans. *)
            let t0 = Probe.now () in
            if t0 <> 0 then Probe.set_op (Wire.op_name req);
            let r = Service.handle t.service ~deadline_end_ns req in
            Probe.span Op ~site:"serve.request" ~since:t0 ~arg:conn_id;
            r
      in
      reply_stat t reply;
      Chaos.on_write chaos fd (Wire.encode_reply reply);
      (* After a drain-time reply the connection closes: clients see a
         typed answer, then EOF, and re-resolve elsewhere. *)
      not (Atomic.get t.draining))

let serve_conn t conn_id fd =
  let chaos =
    match t.cfg.chaos with
    | None -> Chaos.disabled
    | Some cfg -> Chaos.create cfg ~conn_id
  in
  let rec loop () = if serve_request t chaos conn_id fd then loop () in
  (match loop () with
  | () -> ()
  | exception Chaos.Injected_reset _ -> Atomic.incr t.s_chaos
  | exception Unix.Unix_error _ -> ());
  close_quiet fd

(* -- acceptor and workers ------------------------------------------ *)

let shed t fd =
  Atomic.incr t.s_shed;
  (try
     Wire.write_frame fd
       (Wire.encode_reply
          (Wire.Overloaded { retry_after_ms = 20 + (Atomic.get t.s_shed mod 30) }))
   with Unix.Unix_error _ -> ());
  close_quiet fd

let acceptor_loop t () =
  Deadlock.name_self "serve-acceptor";
  (* Closing an fd does NOT wake a thread already blocked in accept(2)
     on it, so a blocking accept would wedge the drain's join forever.
     Poll instead: select with a short timeout, re-checking the drain
     flag between waits; accept only fires when a connection is
     already pending. *)
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listener ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | [], _, _ -> loop ()
      | _ -> accept_one ()
  and accept_one () =
    match Unix.accept t.listener with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* listener closed: drain started *)
    | exception
        Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      loop ()
    | fd, _peer ->
      if Atomic.get t.draining then begin
        close_quiet fd;
        loop ()
      end
      else begin
        Atomic.incr t.s_accepted;
        if Semaphore.Counting.try_p t.slots then begin
          Mutex.protect t.q_lock (fun () ->
              Queue.push (Atomic.fetch_and_add t.next_conn 1, fd) t.conns);
          Semaphore.Counting.v t.ready;
          loop ()
        end
        else begin
          (* Bounded accept queue full: shed with a typed reply. *)
          shed t fd;
          loop ()
        end
      end
  in
  loop ()

let worker_loop t w () =
  Deadlock.name_self (Printf.sprintf "serve-worker-%d" w);
  let rec loop () =
    Semaphore.Counting.p t.ready;
    let next =
      Mutex.protect t.q_lock (fun () ->
          if Queue.is_empty t.conns then None else Some (Queue.pop t.conns))
    in
    match next with
    | None -> () (* poison: drain posted ready units with no conns *)
    | Some (conn_id, fd) ->
      Semaphore.Counting.v t.slots;
      (* A 100 ms receive timeout bounds how long this worker can sit
         on an idle connection — the drain poll interval. *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.1
       with Unix.Unix_error _ -> ());
      Mutex.protect t.q_lock (fun () -> Hashtbl.replace t.active conn_id fd);
      serve_conn t conn_id fd;
      Mutex.protect t.q_lock (fun () -> Hashtbl.remove t.active conn_id);
      loop ()
  in
  loop ();
  ignore (Atomic.fetch_and_add t.live_workers (-1))

(* -- lifecycle ------------------------------------------------------ *)

let bind_listener = function
  | Unix_sock path ->
    if Sys.file_exists path then (try Unix.unlink path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let sa = Unix.ADDR_UNIX path in
    Unix.bind fd sa;
    Unix.listen fd 128;
    (fd, sa)
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let sa = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
    Unix.bind fd sa;
    Unix.listen fd 128;
    let sa = Unix.getsockname fd in
    (fd, sa)

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.accept_queue < 1 then
    invalid_arg "Server.start: accept_queue must be >= 1";
  let listener, sa = bind_listener cfg.addr in
  let t =
    { cfg;
      listener;
      sockaddr = sa;
      service = Service.create ~config:cfg.service ();
      buckets =
        List.map
          (fun p ->
            (p, Bucket.create ~rate_per_s:cfg.bucket_rate ~burst:cfg.bucket_burst))
          [ "queue"; "sched"; "timer"; "kv" ];
      conns = Queue.create ();
      active = Hashtbl.create 16;
      q_lock = Mutex.create ~name:"serve.dispatch" ();
      slots = Semaphore.Counting.create cfg.accept_queue;
      ready = Semaphore.Counting.create 0;
      draining = Atomic.make false;
      live_workers = Atomic.make cfg.workers;
      next_conn = Atomic.make 0;
      s_accepted = Atomic.make 0;
      s_shed = Atomic.make 0;
      s_served = Atomic.make 0;
      s_overloaded = Atomic.make 0;
      s_deadline = Atomic.make 0;
      s_bad = Atomic.make 0;
      s_chaos = Atomic.make 0;
      acceptor = None;
      pool = [] }
  in
  t.acceptor <- Some (Thread.create (acceptor_loop t) ());
  t.pool <- List.init cfg.workers (fun w -> Thread.create (worker_loop t w) ());
  t

let drain t =
  if Atomic.exchange t.draining true then true
  else begin
    (* 1. Stop accepting: close the listener, join the acceptor. *)
    close_quiet t.listener;
    (match t.cfg.addr with
    | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (* 2. Wake the whole pool in one batched post. Workers drain the
       queued connections first (those hold real ready units), then the
       poison units find an empty queue and each worker exits. *)
    Semaphore.Counting.v_n t.ready (List.length t.pool);
    (* 3. Grace period: wait for the pool to drain in-flight requests. *)
    let grace = Deadline.after_ns (Int64.of_int (t.cfg.grace_ms * 1_000_000)) in
    let rec await () =
      if Atomic.get t.live_workers = 0 then true
      else if Deadline.expired grace then false
      else begin
        Thread.delay 0.005;
        await ()
      end
    in
    let clean = await () in
    if not clean then begin
      (* 4. Escalation (E19): a drain that outlives its grace period is
         diagnosed before we give up — if the watchdog sees a wait
         cycle it is printed with process and resource names. *)
      (match Deadlock.find_cycle () with
      | Some cycle ->
        Printf.eprintf "bloom_serve: stuck drain, wait cycle: %s\n%!"
          (Deadlock.cycle_to_string cycle)
      | None ->
        Printf.eprintf
          "bloom_serve: stuck drain (%d worker(s) still live after %d ms, no \
           wait cycle found)\n\
           %!"
          (Atomic.get t.live_workers) t.cfg.grace_ms);
      (* Force-close queued and in-flight connections so blocked reads
         fail and the stuck workers can unwind. *)
      Mutex.protect t.q_lock (fun () ->
          Queue.iter (fun (_, fd) -> close_quiet fd) t.conns;
          Queue.clear t.conns;
          Hashtbl.iter (fun _ fd -> close_quiet fd) t.active)
    end;
    Service.stop t.service;
    if clean then List.iter Thread.join t.pool;
    clean
  end
