(** FCFS with a conditional critical region: CCR wakeup is an unordered
    broadcast-and-recheck, so request-time information has to be encoded
    as an explicit ticket pair in the shared variable — the textbook
    illustration that CCRs reach request order only indirectly. *)

open Sync_taxonomy

type shared = {
  mutable next : int;
  mutable serving : int;
  (* Tickets whose holder aborted while waiting: the server-side advance
     skips them, so one abandoned ticket cannot wedge everyone behind it. *)
  mutable abandoned : int list;
}

type t = { v : shared Sync_ccr.Ccr.t; res_use : pid:int -> unit }

let mechanism = "ccr"

let create ~use =
  { v = Sync_ccr.Ccr.create { next = 0; serving = 0; abandoned = [] };
    res_use = use }

let rec skip_abandoned s =
  if List.mem s.serving s.abandoned then begin
    s.abandoned <- List.filter (fun k -> k <> s.serving) s.abandoned;
    s.serving <- s.serving + 1;
    skip_abandoned s
  end

let advance s =
  s.serving <- s.serving + 1;
  skip_abandoned s

let use t ~pid =
  let ticket =
    Sync_ccr.Ccr.region t.v (fun s ->
        let n = s.next in
        s.next <- n + 1;
        n)
  in
  match Sync_ccr.Ccr.await t.v (fun s -> s.serving = ticket) with
  | exception e ->
    (* Aborted while queued: retire the ticket so the line keeps moving.
       The compensation region has no guard, hence no injection site. *)
    Sync_ccr.Ccr.region t.v (fun s ->
        if s.serving = ticket then advance s
        else s.abandoned <- ticket :: s.abandoned);
    raise e
  | () ->
    Fun.protect
      ~finally:(fun () -> Sync_ccr.Ccr.region t.v advance)
      (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "when"; "serving=ticket" ]);
        ("fcfs-order", [ "ticket"; "serving"; "counters" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Indirect) ]
    ~aux_state:[ "ticket dispenser"; "serving counter" ]
    ~separation:Meta.Separated ()
