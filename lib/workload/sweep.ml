open Sync_metrics

type cell = { domains : int; report : Report.t }

let default_domain_counts () =
  List.sort_uniq compare (1 :: 2 :: 4 :: [ Domain.recommended_domain_count () ])

let run ?params ?(progress = ignore) ~problem ~mechanism ~base ~domain_counts
    () =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match Target.create ?params ~problem ~mechanism () with
      | Error e -> Error e
      | Ok instance ->
        let report =
          Loadgen.run instance { base with Loadgen.workers = n }
        in
        let cell = { domains = n; report } in
        progress cell;
        go (cell :: acc) rest)
  in
  go [] domain_counts

let cell_row c =
  let s = c.report.Report.summary in
  let q f = Summary.overall_quantile s f in
  Emit.Obj
    [ ("mechanism", Emit.Str c.report.Report.mechanism);
      ("problem", Emit.Str c.report.Report.problem);
      ("variant", Emit.Str c.report.Report.variant);
      ("domains", Emit.Int c.domains);
      ("throughput_per_s", Emit.Float s.Summary.throughput_per_s);
      ("total_ops", Emit.Int s.Summary.total_ops);
      ("total_failures", Emit.Int s.Summary.total_failures);
      ("p50_ns", Emit.Int (q (fun o -> o.Summary.p50_ns)));
      ("p95_ns", Emit.Int (q (fun o -> o.Summary.p95_ns)));
      ("p99_ns", Emit.Int (q (fun o -> o.Summary.p99_ns)));
      ("p999_ns", Emit.Int (q (fun o -> o.Summary.p999_ns)));
      ("max_ns", Emit.Int (q (fun o -> o.Summary.max_ns)));
      ("per_op",
       match Summary.to_json s with
       | Emit.Obj fields -> List.assoc "per_op" fields
       | _ -> Emit.Null) ]

let sweep_to_json ~problem ~mechanism ~base cells =
  Emit.Obj
    [ ("problem", Emit.Str problem);
      ("mechanism", Emit.Str mechanism);
      ("mode",
       Emit.Str
         (match base.Loadgen.mode with
         | Loadgen.Closed -> "closed"
         | Loadgen.Open_loop _ -> "open"));
      ("duration_ms", Emit.Int base.Loadgen.duration_ms);
      ("warmup_ms", Emit.Int base.Loadgen.warmup_ms);
      ("seed", Emit.Int base.Loadgen.seed);
      ("cells", Emit.List (List.map cell_row cells)) ]

type baseline_spec = {
  mechanisms : string list;
  problems : string list;
  domain_counts : int list;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  params : Target.params;
}

let default_baseline_spec () =
  { mechanisms = [ "semaphore"; "monitor"; "serializer"; "pathexpr"; "csp";
                   "ccr" ];
    problems = [ "bounded-buffer"; "readers-writers"; "fcfs" ];
    domain_counts = [ 1; 2; 4 ];
    duration_ms = Loadgen.duration_from_env ~default:150;
    warmup_ms = 50;
    seed = 42;
    params = Target.default_params }

let baseline_config spec =
  { Loadgen.workers = 1; backend = `Domain; duration_ms = spec.duration_ms;
    warmup_ms = spec.warmup_ms; mode = Loadgen.Closed; seed = spec.seed }

exception Baseline_failure of string

let baseline ?progress spec =
  let base = baseline_config spec in
  try
    Ok
      (List.concat_map
         (fun problem ->
           List.concat_map
             (fun mechanism ->
               match
                 run ~params:spec.params ?progress ~problem ~mechanism ~base
                   ~domain_counts:spec.domain_counts ()
               with
               | Error e ->
                 raise
                   (Baseline_failure
                      (Printf.sprintf "%s@%s: %s" problem mechanism e))
               | Ok cells -> cells)
             spec.mechanisms)
         spec.problems)
  with Baseline_failure e -> Error e

let baseline_to_json spec cells =
  Emit.Obj
    [ ("experiment", Emit.Str "E20");
      ("description",
       Emit.Str
         "multicore workload baseline: closed-loop throughput and latency \
          quantiles per mechanism per problem per domain count");
      ("mode", Emit.Str "closed");
      ("backend", Emit.Str "domain");
      ("duration_ms", Emit.Int spec.duration_ms);
      ("warmup_ms", Emit.Int spec.warmup_ms);
      ("seed", Emit.Int spec.seed);
      ("ocaml", Emit.Str Sys.ocaml_version);
      ("recommended_domains", Emit.Int (Domain.recommended_domain_count ()));
      ("mechanisms", Emit.List (List.map (fun m -> Emit.Str m) spec.mechanisms));
      ("problems", Emit.List (List.map (fun p -> Emit.Str p) spec.problems));
      ("domain_counts",
       Emit.List (List.map (fun d -> Emit.Int d) spec.domain_counts));
      ("rows", Emit.List (List.map cell_row cells)) ]
