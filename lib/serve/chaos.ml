open Sync_platform

type action = Pass | Drop | Delay_ms of int | Truncate of int | Reset

type config = {
  seed : int;
  drop : float;
  delay : float;
  delay_ms : int;
  truncate : float;
  reset : float;
}

let default_config ?(seed = 0) () =
  { seed; drop = 0.02; delay = 0.05; delay_ms = 5; truncate = 0.01;
    reset = 0.02 }

type state = { cfg : config; rng : Prng.t; mutable log : string list }

type t = Off | On of state

let disabled = Off

(* The stream must depend on both halves: same seed, different
   connections => different (but individually reproducible) faults. *)
let create cfg ~conn_id =
  let mix =
    Int64.add
      (Int64.mul (Int64.of_int cfg.seed) 0x9E3779B97F4A7C15L)
      (Int64.of_int (conn_id + 1))
  in
  On { cfg; rng = Prng.make mix; log = [] }

let active = function Off -> false | On _ -> true

exception Injected_reset of string

let log_action st s = st.log <- s :: st.log

let trace = function Off -> [] | On st -> List.rev st.log

(* One decision: the E19 registry gets first refusal (a planned
   injection is a reset at exactly that hit), then the seeded draw.
   The draw happens on every hit, planned or not, so installing a
   fault plan does not shift the seeded stream. *)
let decide st ~site ~write =
  let registry_fired =
    match Fault.site site with () -> false | exception Fault.Injected _ -> true
  in
  let c = st.cfg in
  let u = Prng.float st.rng 1.0 in
  if registry_fired then Reset
  else if u < c.drop then Drop
  else if u < c.drop +. c.delay then Delay_ms c.delay_ms
  else if write && u < c.drop +. c.delay +. c.truncate then
    Truncate (1 + Prng.int st.rng 3)
  else if u < c.drop +. c.delay +. c.truncate +. c.reset then Reset
  else Pass

let on_read t read =
  match t with
  | Off -> `Data (read ())
  | On st -> (
    match decide st ~site:"serve.conn.read" ~write:false with
    | Pass ->
      log_action st "r:pass";
      `Data (read ())
    | Delay_ms ms ->
      log_action st (Printf.sprintf "r:delay%d" ms);
      Thread.delay (float_of_int ms /. 1e3);
      `Data (read ())
    | Drop ->
      (* Read and discard: the request is lost inside the server; the
         client's deadline is its only recourse. *)
      log_action st "r:drop";
      ignore (read ());
      `Dropped
    | Truncate _ | Reset ->
      log_action st "r:reset";
      raise (Injected_reset "serve.conn.read"))

let on_write t fd payload =
  match t with
  | Off -> Wire.write_frame fd payload
  | On st -> (
    match decide st ~site:"serve.conn.write" ~write:true with
    | Pass ->
      log_action st "w:pass";
      Wire.write_frame fd payload
    | Delay_ms ms ->
      log_action st (Printf.sprintf "w:delay%d" ms);
      Thread.delay (float_of_int ms /. 1e3);
      Wire.write_frame fd payload
    | Drop -> log_action st "w:drop"
    | Truncate k ->
      log_action st (Printf.sprintf "w:trunc%d" k);
      (* A torn frame: ship the first k bytes of the *framed* message
         raw, then reset. The peer reads a length it can never fill. *)
      let framed = Bytes.create (4 + String.length payload) in
      Bytes.set_int32_be framed 0 (Int32.of_int (String.length payload));
      Bytes.blit_string payload 0 framed 4 (String.length payload);
      let k = min k (Bytes.length framed) in
      (try ignore (Unix.write fd framed 0 k) with Unix.Unix_error _ -> ());
      raise (Injected_reset "serve.conn.write")
    | Reset ->
      log_action st "w:reset";
      raise (Injected_reset "serve.conn.write"))
