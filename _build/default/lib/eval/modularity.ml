open Sync_taxonomy

type row = {
  mechanism : string;
  enforced : int;
  separated : int;
  blended : int;
  sync_procedures : int;
  aux_state_items : int;
  score : float;
}

let analyze entries =
  List.map
    (fun mech ->
      let mine =
        List.filter (fun e -> e.Registry.meta.Meta.mechanism = mech) entries
      in
      let count sep =
        List.length
          (List.filter (fun e -> e.Registry.meta.Meta.separation = sep) mine)
      in
      let enforced = count Meta.Enforced in
      let separated = count Meta.Separated in
      let blended = count Meta.Blended in
      let sync_procedures =
        List.fold_left
          (fun n e ->
            n + List.length e.Registry.meta.Meta.sync_procedures)
          0 mine
      in
      let aux_state_items =
        List.fold_left
          (fun n e -> n + List.length e.Registry.meta.Meta.aux_state)
          0 mine
      in
      let n = List.length mine in
      let score =
        if n = 0 then 0.0
        else begin
          (* Structure: enforced counts full, disciplined-separation half,
             blended zero; each synchronization procedure costs. *)
          let structure =
            (float_of_int enforced +. (0.5 *. float_of_int separated))
            /. float_of_int n
          in
          let proc_penalty =
            float_of_int sync_procedures /. float_of_int (4 * n)
          in
          Float.max 0.0 (structure -. proc_penalty)
        end
      in
      { mechanism = mech; enforced; separated; blended; sync_procedures;
        aux_state_items; score })
    (Registry.mechanisms @ Registry.extension_mechanisms)

let pp ppf rows =
  Format.fprintf ppf "%-12s %8s %9s %7s %9s %9s %6s@." "mechanism" "enforced"
    "separated" "blended" "syncprocs" "aux-state" "score";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %8d %9d %7d %9d %9d %6.2f@." r.mechanism
        r.enforced r.separated r.blended r.sync_procedures r.aux_state_items
        r.score)
    rows
