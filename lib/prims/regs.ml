(* Restricted shared-register signatures: the compile-time form of the
   E25 primitive classes. Every class algorithm in this library is a
   functor over one of these module types, so "the bakery lock uses only
   atomic reads and writes" is not a code-review claim but a typing
   fact — [Bakery.Make] cannot name [cas] or [faa] because its parameter
   signature does not have them.

   [await ~watch pred] is the blocking counterpart of a read: wait until
   [pred ()] holds, where [pred] only reads registers in [watch]. It
   carries no synchronization power of its own (it is expressible as a
   read loop); it exists so that implementations can choose how to burn
   the wait — exponential backoff on real hardware, a parked virtual
   task under the deterministic runtime, where a spin loop would make
   the schedule tree infinite. *)

module type RW = sig
  type t

  val make : int -> t

  val get : t -> int

  val set : t -> int -> unit

  val await : watch:t array -> (unit -> bool) -> unit
  (** Block until [pred ()] is true. [pred] must be level-triggered
      (re-checkable at any time) and read only registers in [watch]. *)
end

module type CAS = sig
  include RW

  val cas : t -> int -> int -> bool
  (** [cas r seen v] installs [v] iff the current value is [seen]. *)
end

module type FAA = sig
  include RW

  val faa : t -> int -> int
  (** [faa r n] adds [n] and returns the {e previous} value. *)
end

module type FULL = sig
  include RW

  val cas : t -> int -> int -> bool

  val faa : t -> int -> int
end

(* The production instance: OCaml [Atomic] registers (SC atomics), with
   a backoff-spin await. Restricting this one module through the
   signatures above yields every class's substrate. *)
module Shared : FULL with type t = int Atomic.t = struct
  type t = int Atomic.t

  let make = Atomic.make

  let get = Atomic.get

  let set = Atomic.set

  let cas = Atomic.compare_and_set

  let faa = Atomic.fetch_and_add

  let await ~watch:_ pred =
    if not (pred ()) then begin
      let b = Backoff.create () in
      while not (pred ()) do
        Backoff.once b
      done
    end
end

(* CAS is universal: fetch-and-add is a CAS retry loop. Lets the strong
   (FIFO ticket) semaphore run on the CAS class without a separate
   implementation. *)
module Faa_of_cas (R : CAS) : FAA with type t = R.t = struct
  include R

  let rec faa r n =
    let v = R.get r in
    if R.cas r v (v + n) then v else faa r n
end
