(** Condition variables, deterministic-run aware.

    Shadows the stdlib [Condition] inside [Sync_platform], pairing with
    the shadowed {!Mutex}: created during a {!Detrt} run it is a virtual
    condition scheduled deterministically, otherwise a system condition.
    Semantics follow the stdlib contract (Mesa-style: a woken waiter
    re-acquires the mutex and must re-check its predicate).

    Real-thread conditions work with both mutex tiers: waits under a
    default (Sys) mutex use the stdlib condition variable directly,
    while waits under an adaptive (Fast) mutex park on a private
    sequence-numbered lot inside the condition. The dispatch happens
    per [wait], on the mutex the caller passes, so a condition created
    at any time pairs correctly with either tier. Signals may wake
    fast-tier waiters spuriously (the lot is level-triggered); callers
    already absorb that with their predicate loops. *)

type t

val create : unit -> t

val wait : t -> Mutex.t -> unit

val wait_for : t -> Mutex.t -> deadline:Deadline.t -> bool
(** Timed wait, by bounded polling (stdlib conditions cannot time out):
    releases the mutex, yields, reacquires, and returns [true] — a
    spurious wakeup per polling step — or returns [false] immediately,
    with the mutex still held, once [deadline] has expired. Always call
    in a predicate loop:
    [while not p && Condition.wait_for c m ~deadline do () done; p].
    Deterministic under {!Detrt}. *)

val signal : t -> unit

val broadcast : t -> unit
