type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* Integral floats print without an exponent so counts stay readable. *)
    Printf.sprintf "%.0f" f
  else
    (* "%.6g" can produce "1e+06", which is still valid JSON. *)
    Printf.sprintf "%.6g" f

let rec emit b ~pretty ~level v =
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
    Buffer.add_char b '[';
    nl ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char b ',';
          nl ()
        end;
        pad (level + 1);
        emit b ~pretty ~level:(level + 1) x)
      xs;
    nl ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    nl ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          nl ()
        end;
        pad (level + 1);
        escape_string b k;
        Buffer.add_string b (if pretty then ": " else ":");
        emit b ~pretty ~level:(level + 1) x)
      fields;
    nl ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(pretty = true) v =
  let b = Buffer.create 256 in
  emit b ~pretty ~level:0 v;
  Buffer.contents b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')

(* -- minimal JSON reader ------------------------------------------- *)

(* Enough of RFC 8259 to read back this module's own output (and any
   committed artifact like BENCH_E20.json): objects, arrays, strings
   with escapes (\uXXXX decoded to UTF-8; surrogate pairs are out of
   scope for our ASCII artifacts), numbers, booleans, null. Kept here so
   the CI perf-sanity gate needs no external JSON dependency. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let add_utf8 b c =
    if c < 0x80 then Buffer.add_char b (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'u' ->
          advance ();
          add_utf8 b (hex4 ())
        | _ -> fail "bad escape");
        go ())
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit)
    in
    if is_int then
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number")
    else
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let csv_line fields = String.concat "," (List.map csv_field fields)
