lib/problems/alarm_ccr.ml: Info Meta Sync_ccr Sync_taxonomy
