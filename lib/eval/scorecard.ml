type t = {
  matrix : Expressiveness.t;
  discrepancies : (string * Sync_taxonomy.Info.kind * string) list;
  pairings : Independence.pairing list;
  reuse : (string * float) list;
  modularity : Modularity.row list;
  conformance : Conformance.result list;
  robustness : Robustness.row list;
}

let build ?(run_conformance = true) ?(run_robustness = false) () =
  let entries = Registry.all in
  let matrix = Expressiveness.matrix entries in
  let pairings = Independence.analyze entries in
  { matrix;
    discrepancies = Expressiveness.agrees_with_paper matrix;
    pairings;
    reuse = Independence.shared_constraint_reuse pairings;
    modularity = Modularity.analyze entries;
    conformance = (if run_conformance then Conformance.run entries else []);
    robustness = (if run_robustness then Robustness.run () else []) }

let pp ppf t =
  Format.fprintf ppf "== E3: expressive power (mechanism x information) ==@.";
  Expressiveness.pp ppf t.matrix;
  (match t.discrepancies with
  | [] ->
    Format.fprintf ppf
      "matrix agrees with the paper's Section-5 conclusions@."
  | ds ->
    List.iter
      (fun (mech, kind, why) ->
        Format.fprintf ppf "DISCREPANCY %s/%s: %s@." mech
          (Sync_taxonomy.Info.to_string kind)
          why)
      ds);
  Format.fprintf ppf "@.== E4: constraint independence ==@.";
  Independence.pp_summary ppf t.reuse;
  Format.fprintf ppf "@.== E5: modularity ==@.";
  Modularity.pp ppf t.modularity;
  if t.conformance <> [] then begin
    Format.fprintf ppf "@.== E6: conformance (all solutions, all checks) ==@.";
    Conformance.pp ppf t.conformance;
    (match Conformance.regressions t.conformance with
    | [] -> Format.fprintf ppf "no regressions@."
    | rs -> Format.fprintf ppf "%d REGRESSION(S)@." (List.length rs))
  end;
  if t.robustness <> [] then begin
    Format.fprintf ppf "@.== E19: robustness (faults, cancellation, timeouts) ==@.";
    Robustness.pp ppf t.robustness;
    if Robustness.all_recovered t.robustness then
      Format.fprintf ppf "all runs recovered@."
    else Format.fprintf ppf "ROBUSTNESS FAILURE(S)@."
  end

let to_string t = Format.asprintf "%a" pp t
