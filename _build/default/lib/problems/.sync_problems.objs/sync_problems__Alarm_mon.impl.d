lib/problems/alarm_mon.ml: Info Meta Monitor Sync_monitor Sync_taxonomy
