lib/taxonomy/constr.ml: Format Info
