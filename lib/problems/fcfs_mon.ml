(** FCFS with a Hoare monitor: the FIFO condition queue carries the
    request-time information; Hoare signalling (no barging) keeps the
    grant order exact. *)

open Sync_monitor
open Sync_taxonomy

type t = {
  mon : Monitor.t;
  turn : Monitor.Cond.t;
  mutable busy : bool;
  res_use : pid:int -> unit;
}

let mechanism = "monitor"

let create ~use =
  let mon = Monitor.create ~discipline:`Hoare () in
  { mon; turn = Monitor.Cond.create mon; busy = false; res_use = use }

let use t ~pid =
  Protected.access t.mon
    ~before:(fun () ->
      (* Wait whenever the resource is busy OR somebody queued earlier is
         still waiting — otherwise a newcomer finding the resource just
         freed could overtake the queue. Under Hoare signalling the
         signalled head proceeds without re-queuing. *)
      if t.busy || Monitor.Cond.queue t.turn then Monitor.Cond.wait t.turn;
      t.busy <- true)
    ~after:(fun () ->
      t.busy <- false;
      Monitor.Cond.signal t.turn)
    (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "busy"; "flag"; "wait(turn)"; "signal(turn)" ]);
        ("fcfs-order", [ "condition"; "queue"; "FIFO"; "queue(turn)" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Direct) ]
    ~aux_state:[ "busy flag" ]
    ~separation:Meta.Separated ()

(** Mesa variant. Signal-and-continue wakes are advisory: a signalled
    waiter re-enters through the ordinary entry queue and can find that a
    newcomer (or another woken waiter) claimed the resource first, so the
    FIFO condition queue alone can no longer carry the grant order. The
    request-time information must be materialized as explicit state — a
    ticket counter — and every waiter re-checks its turn in a while loop.
    Same problem, same mechanism family, strictly more auxiliary state:
    the paper's point about where signalling disciplines push the
    ordering information. *)
module Mesa = struct
  type t = {
    mon : Monitor.t;
    turn : Monitor.Cond.t;
    mutable busy : bool;
    mutable next_ticket : int;
    mutable next_serve : int;
    res_use : pid:int -> unit;
  }

  let mechanism = "monitor"

  let create ~use =
    let mon = Monitor.create ~discipline:`Mesa () in
    { mon;
      turn = Monitor.Cond.create mon;
      busy = false;
      next_ticket = 0;
      next_serve = 0;
      res_use = use }

  let use t ~pid =
    Protected.access t.mon
      ~before:(fun () ->
        let my = t.next_ticket in
        t.next_ticket <- my + 1;
        while t.busy || t.next_serve <> my do
          Monitor.Cond.wait t.turn
        done;
        t.busy <- true)
      ~after:(fun () ->
        t.busy <- false;
        t.next_serve <- t.next_serve + 1;
        (* Mesa: wake everyone; only the holder of the served ticket
           passes its re-check, the rest go back to sleep. *)
        Monitor.Cond.broadcast t.turn)
      (fun () -> t.res_use ~pid)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"fcfs" ~variant:"mesa"
      ~fragments:
        [ ("fcfs-exclusion",
           [ "busy"; "flag"; "wait(turn)"; "broadcast(turn)" ]);
          ("fcfs-order", [ "ticket"; "counter"; "while"; "re-check" ]) ]
      ~info_access:
        [ (Info.Sync_state, Meta.Indirect);
          (Info.Request_time, Meta.Indirect) ]
      ~aux_state:[ "busy flag"; "ticket counters" ]
      ~separation:Meta.Separated ()
end
