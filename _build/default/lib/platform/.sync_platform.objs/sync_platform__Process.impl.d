lib/platform/process.ml: Domain List Mutex Option Thread
