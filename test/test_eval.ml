(* The mechanized methodology itself: registry hygiene, matrix agreement
   with the paper, independence metric properties, modularity ordering. *)
open Sync_eval
open Sync_taxonomy

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Registry hygiene                                                    *)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> Meta.id e.Registry.meta) Registry.all in
  let dups =
    List.filter (fun id -> List.length (List.filter (( = ) id) ids) > 1) ids
  in
  Alcotest.(check (list string)) "no duplicate ids" [] dups

let test_registry_covers_matrix () =
  (* Every canonical problem has a solution under every mechanism. *)
  List.iter
    (fun problem ->
      List.iter
        (fun mech ->
          let hit =
            List.exists
              (fun e ->
                e.Registry.meta.Meta.problem = problem
                && e.Registry.meta.Meta.mechanism = mech)
              Registry.all
          in
          check_bool (problem ^ "@" ^ mech) true hit)
        Registry.mechanisms)
    Registry.problems

let test_fragments_cover_spec_constraints () =
  List.iter
    (fun e ->
      List.iter
        (fun c ->
          check_bool
            (Meta.id e.Registry.meta ^ " implements " ^ c.Constr.id)
            true
            (List.mem_assoc c.Constr.id e.Registry.meta.Meta.fragments))
        e.Registry.spec.Sync_problems.Spec.constraints)
    Registry.all

let test_info_access_covers_spec_info () =
  (* Every information category a problem exercises must be classified by
     each of its solutions. *)
  List.iter
    (fun e ->
      List.iter
        (fun kind ->
          check_bool
            (Meta.id e.Registry.meta ^ " classifies "
            ^ Info.to_string kind)
            true
            (List.mem_assoc kind e.Registry.meta.Meta.info_access))
        e.Registry.spec.Sync_problems.Spec.info)
    Registry.all

let test_expected_anomalies_are_exactly_two () =
  let anomalies =
    List.filter (fun e -> not e.Registry.expect_conformant) Registry.all
  in
  Alcotest.(check (list string))
    "documented anomalies"
    [ "readers-writers/readers-priority-courtois@semaphore";
      "readers-writers/fig1-readers-priority@pathexpr" ]
    (List.map (fun e -> Meta.id e.Registry.meta) anomalies)

(* ------------------------------------------------------------------ *)
(* Expressiveness (E3)                                                 *)

let test_matrix_agrees_with_paper () =
  let m = Expressiveness.matrix Registry.all in
  match Expressiveness.agrees_with_paper m with
  | [] -> ()
  | (mech, kind, why) :: _ ->
    Alcotest.failf "matrix disagrees: %s/%s: %s" mech (Info.to_string kind)
      why

let test_matrix_pathexpr_parameters_unsupported () =
  let m = Expressiveness.matrix Registry.all in
  let cells = List.assoc "pathexpr" m in
  match (List.assoc Info.Parameters cells).Expressiveness.level with
  | Some Meta.Unsupported -> ()
  | other ->
    Alcotest.failf "expected unsupported, got %s"
      (match other with
      | None -> "none"
      | Some l -> Meta.support_to_string l)

let test_matrix_csp_all_direct () =
  let m = Expressiveness.matrix Registry.all in
  let cells = List.assoc "csp" m in
  List.iter
    (fun (kind, cell) ->
      match cell.Expressiveness.level with
      | Some Meta.Direct -> ()
      | _ -> Alcotest.failf "csp %s not direct" (Info.to_string kind))
    cells

(* ------------------------------------------------------------------ *)
(* Independence (E4)                                                   *)

let test_jaccard_basics () =
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Independence.jaccard [] []);
  Alcotest.(check (float 1e-9)) "identical" 1.0
    (Independence.jaccard [ "a"; "b" ] [ "a"; "b" ]);
  Alcotest.(check (float 1e-9)) "disjoint" 0.0
    (Independence.jaccard [ "a" ] [ "b" ]);
  Alcotest.(check (float 1e-9)) "one of three" (1.0 /. 3.0)
    (Independence.jaccard [ "a"; "b" ] [ "a"; "c" ]);
  (* multiset: duplicates matter *)
  Alcotest.(check (float 1e-9)) "multiset" 0.5
    (Independence.jaccard [ "a"; "a" ] [ "a" ])

let prop_jaccard_symmetric =
  QCheck.Test.make ~name:"jaccard symmetric"
    QCheck.(pair (list (string_of_size Gen.(int_range 1 3)))
              (list (string_of_size Gen.(int_range 1 3))))
    (fun (a, b) ->
      Float.abs (Independence.jaccard a b -. Independence.jaccard b a)
      < 1e-9)

let prop_jaccard_bounded =
  QCheck.Test.make ~name:"jaccard in [0,1]"
    QCheck.(pair (list (string_of_size Gen.(int_range 1 3)))
              (list (string_of_size Gen.(int_range 1 3))))
    (fun (a, b) ->
      let j = Independence.jaccard a b in
      j >= 0.0 && j <= 1.0)

let prop_jaccard_reflexive =
  QCheck.Test.make ~name:"jaccard reflexive"
    QCheck.(list (string_of_size Gen.(int_range 1 3)))
    (fun a -> Independence.jaccard a a = 1.0)

let test_reuse_reproduces_paper_ordering () =
  let reuse =
    Independence.shared_constraint_reuse (Independence.analyze Registry.all)
  in
  let get m = List.assoc m reuse in
  check_bool "monitor fully reuses exclusion" true (get "monitor" > 0.99);
  check_bool "serializer fully reuses exclusion" true
    (get "serializer" > 0.99);
  check_bool "csp fully reuses exclusion" true (get "csp" > 0.99);
  check_bool "pathexpr rewrites exclusion" true (get "pathexpr" < 0.7);
  check_bool "monitor beats pathexpr" true (get "monitor" > get "pathexpr")

(* ------------------------------------------------------------------ *)
(* Modularity (E5)                                                     *)

let test_modularity_ordering () =
  let rows = Modularity.analyze Registry.all in
  let score m =
    (List.find (fun r -> r.Modularity.mechanism = m) rows).Modularity.score
  in
  check_bool "serializer enforces structure" true (score "serializer" > 0.9);
  check_bool "csp enforces structure" true (score "csp" > 0.9);
  check_bool "pathexpr scores worst of the paper's three" true
    (score "pathexpr" < score "monitor"
    && score "pathexpr" < score "serializer")

let test_pathexpr_needs_sync_procedures () =
  let rows = Modularity.analyze Registry.all in
  let row m = List.find (fun r -> r.Modularity.mechanism = m) rows in
  check_bool "pathexpr has sync procedures" true
    ((row "pathexpr").Modularity.sync_procedures > 0);
  List.iter
    (fun m ->
      Alcotest.(check int)
        (m ^ " needs no sync procedures")
        0
        (row m).Modularity.sync_procedures)
    [ "semaphore"; "monitor"; "serializer"; "csp" ]

(* ------------------------------------------------------------------ *)
(* Conformance plumbing (E6) — using a tiny synthetic registry so the
   test stays fast; the full run is exercised by the bench harness.     *)

let synthetic ~ok ~expect =
  { Registry.meta =
      Meta.make ~mechanism:"fake" ~problem:"fake"
        ~variant:(Printf.sprintf "ok=%b,expect=%b" ok expect)
        ~fragments:[] ~info_access:[] ~separation:Meta.Separated ();
    spec = Sync_problems.Fcfs_intf.spec;
    verify = (fun () -> if ok then Ok () else Error "synthetic failure");
    expect_conformant = expect }

let test_conformance_outcomes () =
  let results =
    Conformance.run
      [ synthetic ~ok:true ~expect:true; synthetic ~ok:false ~expect:true;
        synthetic ~ok:false ~expect:false; synthetic ~ok:true ~expect:false ]
  in
  let outcomes = List.map (fun r -> r.Conformance.outcome) results in
  (match outcomes with
  | [ Conformance.Conformant; Conformance.Nonconformant _;
      Conformance.Expected_anomaly _; Conformance.Unexpected_pass ] ->
    ()
  | _ -> Alcotest.fail "unexpected outcome classification");
  Alcotest.(check int) "two regressions" 2
    (List.length (Conformance.regressions results))

let test_scorecard_renders () =
  let card = Scorecard.build ~run_conformance:false () in
  let s = Scorecard.to_string card in
  check_bool "mentions E3" true
    (Astring.String.is_infix ~affix:"expressive power" s
     || String.length s > 0)

let () =
  Alcotest.run "eval"
    [ ( "registry",
        [ Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "covers problem x mechanism" `Quick
            test_registry_covers_matrix;
          Alcotest.test_case "fragments cover constraints" `Quick
            test_fragments_cover_spec_constraints;
          Alcotest.test_case "info access covers spec info" `Quick
            test_info_access_covers_spec_info;
          Alcotest.test_case "documented anomalies" `Quick
            test_expected_anomalies_are_exactly_two ] );
      ( "expressiveness",
        [ Alcotest.test_case "agrees with paper" `Quick
            test_matrix_agrees_with_paper;
          Alcotest.test_case "pathexpr parameters unsupported" `Quick
            test_matrix_pathexpr_parameters_unsupported;
          Alcotest.test_case "csp all direct" `Quick test_matrix_csp_all_direct
        ] );
      ( "independence",
        [ Alcotest.test_case "jaccard basics" `Quick test_jaccard_basics;
          Testutil.qcheck_case prop_jaccard_symmetric;
          Testutil.qcheck_case prop_jaccard_bounded;
          Testutil.qcheck_case prop_jaccard_reflexive;
          Alcotest.test_case "reuse reproduces paper ordering" `Quick
            test_reuse_reproduces_paper_ordering ] );
      ( "modularity",
        [ Alcotest.test_case "ordering" `Quick test_modularity_ordering;
          Alcotest.test_case "pathexpr sync procedures" `Quick
            test_pathexpr_needs_sync_procedures ] );
      ( "conformance",
        [ Alcotest.test_case "outcome classification" `Quick
            test_conformance_outcomes;
          Alcotest.test_case "scorecard renders" `Quick test_scorecard_renders
        ] ) ]
