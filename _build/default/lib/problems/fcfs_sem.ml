(** FCFS with a strong (queued) semaphore: arrival order {e is} the grant
    order, so the whole scheme is one P/V pair. The request-time
    information lives entirely in the semaphore's blocked queue — which is
    why the scheme collapses if the semaphore is weak (see the fairness
    ablation bench). *)

open Sync_platform
open Sync_taxonomy

type t = { sem : Semaphore.Counting.t; res_use : pid:int -> unit }

let mechanism = "semaphore"

let create ~use =
  { sem = Semaphore.Counting.create ~fairness:`Strong 1; res_use = use }

let use t ~pid =
  Semaphore.Counting.p t.sem;
  Fun.protect
    ~finally:(fun () -> Semaphore.Counting.v t.sem)
    (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "P(s)"; "V(s)" ]);
        ("fcfs-order", [ "strong"; "semaphore"; "queue" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Direct) ]
    ~separation:Meta.Separated ()
