(** The load engine: drive a {!Target.instance} with concurrent workers
    on real threads or OCaml 5 domains and measure steady-state
    throughput and latency.

    Two loop disciplines:

    - {b closed loop} ([Closed]): each worker issues its next operation
      the moment the previous one completes. Measures the mechanism's
      sustainable capacity at a given concurrency; latency is pure
      service + queueing inside the synchronizer.
    - {b open loop} ([Open_loop]): operations arrive on a schedule
      (Poisson or uniformly spaced) at a configured aggregate rate,
      independent of completions. Latency is measured from the
      {e intended} arrival time, so when the system falls behind, the
      queueing delay appears in the recorded tail instead of being
      silently absorbed — the coordinated-omission correction
      (see docs/workload.md).

    Measurement protocol: workers record into per-worker warmup
    recorders until the coordinator flips the run into its steady-state
    window, then into per-worker steady recorders; the warmup recorders
    are discarded, the steady ones are merged after join. Worker count,
    windows, mode and seed come from {!config}; every run with the same
    seed draws the same arrival/op-mix randomness. *)

type arrival =
  | Poisson  (** memoryless arrivals at the nominal rate *)
  | Uniform_spaced  (** deterministic, evenly spaced arrivals *)
  | Diurnal
      (** Poisson modulated by a slow sinusoid (E27): the instantaneous
          rate swings between roughly 0.1x and 1.9x nominal over a
          100 ms period, so the contention regime — and therefore the
          best tier — changes within a single run. *)
  | Bursty
      (** two-state mixture (E27): occasional long gaps, dense bursts
          between them; same nominal rate, far higher variance. *)

type mode = Closed | Open_loop of { rate_per_s : float; arrival : arrival }

val arrival_name : arrival -> string
(** ["poisson"], ["uniform"], ["diurnal"], ["bursty"] — the report's
    arrival labels. *)

val arrival_of_string : string -> arrival option

val diurnal_period_ms : int
(** Period of the diurnal sinusoid (100 ms). *)

val diurnal_amplitude : float
(** Amplitude of the diurnal rate swing (0.9). *)

val burst_gap_p : float
(** Probability an arrival opens a long gap in the bursty mixture. *)

val burst_gap_scale : float
(** Gap length as a multiple of the nominal mean inter-arrival. *)

val burst_dense_scale : float
(** In-burst inter-arrival as a multiple of the nominal mean. *)

type config = {
  workers : int;  (** concurrent clients (>= 1) *)
  backend : [ `Thread | `Domain ];  (** systhreads or real domains *)
  duration_ms : int;  (** steady-state measurement window *)
  warmup_ms : int;  (** discarded warmup window *)
  mode : mode;
  seed : int;  (** arrival schedules and op-mix draws *)
  think_us : int;
      (** closed-loop think time per operation, microseconds (default
          0). Slept {e outside} the latency window, before each
          operation: models interactive clients that pause between
          requests, so aggregate throughput grows with worker count
          until the synchronizer saturates. Scaling experiments (E23)
          rely on it to keep a 1-vs-N-domain comparison meaningful even
          on hosts with few cores. Ignored in open-loop mode's arrival
          schedule sense — the sleep still happens, so leave it 0
          there. *)
}

val default_config : config
(** 4 domain workers, closed loop, 1000 ms steady after 200 ms warmup,
    seed 42, no think time. *)

val duration_from_env : default:int -> int
(** The [SYNC_LOAD_MS] environment knob (CI shortens runs with it):
    its value when set to a positive integer, [default] otherwise. *)

val run : Target.instance -> config -> Report.t
(** Execute one run and stop the instance. The report's summary covers
    only the steady-state window.
    @raise Invalid_argument on a non-positive worker count, window, or
    open-loop rate. *)
