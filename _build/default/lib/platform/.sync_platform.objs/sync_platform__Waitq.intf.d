lib/platform/waitq.mli: Mutex
