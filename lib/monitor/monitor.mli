(** Hoare monitors [Hoare'74], with the Mesa signalling variant.

    A monitor is a mutual-exclusion region plus {e condition} queues. This
    implementation follows the semantics the paper's analysis depends on:

    - {b Hoare (signal-and-wait)} — the default. [signal] on a non-empty
      condition immediately transfers the monitor to the longest-waiting
      (or highest-priority) waiter; the signaller is parked on the {e
      urgent} queue and resumes, still inside the monitor, before any
      process blocked at the entry. A signalled waiter may therefore assume
      the condition it waited for still holds — no re-check loop.
    - {b Mesa (signal-and-continue)} — selected with [create ~discipline:
      `Mesa]. [signal] merely makes a waiter runnable; it re-enters through
      the ordinary entry queue, so waiters must re-test their predicate in
      a [while] loop.

    Entry, urgent and condition queues are all FIFO (longest waiting
    first); conditions additionally support Hoare's {e priority wait}
    ([wait_pri]), which the disk-head scheduler and alarm-clock monitors
    require for request-parameter information. *)

type discipline = [ `Hoare | `Mesa ]

val abort_policy : Sync_platform.Fault.abort_policy
(** [`Propagate]: an abort raised inside (or while entering) the monitor
    unwinds past {!with_monitor}, re-granting ownership on the way out;
    queues and the busy flag are left consistent. Every ownership-carrying
    wake (entry, urgent, Hoare condition transfer) re-grants the monitor
    if the woken process aborts before running. *)

type t
(** A monitor instance. *)

val create : ?discipline:discipline -> unit -> t

val discipline : t -> discipline

val enter : t -> unit
(** Acquire the monitor, queueing FIFO behind current entrants. Re-entry by
    the holder is a programming error and deadlocks (as in the original
    construct; see the nested-call experiment E11). *)

val exit : t -> unit
(** Release the monitor: the urgent queue has absolute priority over the
    entry queue. *)

val with_monitor : t -> (unit -> 'a) -> 'a
(** [with_monitor m f] brackets [f] with {!enter}/{!exit}, releasing on
    exception. *)

val entry_waiters : t -> int
(** Processes blocked at the entry (racy; introspection for tests). *)

(** Condition variables belonging to a monitor. All operations must be
    called while inside the owning monitor. *)
module Cond : sig
  type monitor := t

  type t

  val create : monitor -> t

  val wait : t -> unit
  (** Release the monitor and park FIFO on this condition. *)

  val wait_pri : t -> int -> unit
  (** Hoare's priority wait: park with an integer rank; [signal] wakes the
      smallest rank first (ties FIFO). *)

  val signal : t -> unit
  (** Wake one waiter per the monitor's discipline; no-op when empty. *)

  val broadcast : t -> unit
  (** Mesa-style wake-all. Under the Hoare discipline this is realized as a
      cascade of signal-and-waits and is rarely what a Hoare-style solution
      wants; it exists for the Mesa suites. *)

  val queue : t -> bool
  (** Hoare's [queue] primitive: is anybody waiting? *)

  val count : t -> int

  val min_rank : t -> int option
  (** Smallest rank among priority waiters ([None] if empty); lets the
      disk-scheduler monitor inspect the nearest pending track. *)
end
