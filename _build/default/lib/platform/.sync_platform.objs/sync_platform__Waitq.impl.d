lib/platform/waitq.ml: Condition List
