(** Unsynchronized readable/writable store (the readers-writers database's
    resource half).

    Contract, checked at runtime ({!Busywork.Ill_synchronized} on
    violation): any number of concurrent [read]s, but a [write] excludes
    both readers and other writers. [read] returns the store's version;
    [write] increments it. *)

type t

val create : ?work:int -> unit -> t

val read : t -> int

val write : t -> unit

val version : t -> int

val reads : t -> int
(** Total completed reads. *)

val writes : t -> int
