(** Primitive classes: which atomic operations the synchronization
    substrate may use (E25).

    The platform's [Mutex]/[Semaphore] facades consult {!selected} at
    creation time (the same creation-scoped plumbing as the E22
    [Fastpath] tier) and, when a restricted class is selected, build on
    this module's per-class constructions:

    - {b RW} — atomic read/write registers only: Lamport's bakery lock
      with the bounded-timestamp fix; a bakery-guarded weak counting
      semaphore. Strong (FCFS) semaphores are {e rejected} (typed).
    - {b CAS} — compare-and-swap only: test-and-CAS lock, CAS-loop weak
      semaphore; strong semaphore via a CAS-synthesized ticket.
    - {b FAA} — fetch-and-add only: ticket lock, value-netting weak
      semaphore, native FIFO ticket semaphore.
    - {b LLSC} — load-linked/store-conditional, emulated from CAS with
      ABA tagging ({!Llsc}); locks and semaphores built only from the
      emulation.
    - {b Native} — no restriction: the platform's own default/fast
      tiers. {!selected} reports [None]; the factories reject it.

    Classes that cannot express a primitive raise {!Unsupported} with a
    typed reason — the hierarchy scorecard records these as results,
    never as crashes. *)

type cls = RW | CAS | FAA | LLSC | Native

exception Unsupported of { cls : cls; feature : string; reason : string }
(** A class cannot express a requested primitive (e.g. [RW] ×
    strong/FCFS semaphore). [feature] is a stable machine-readable
    label like ["semaphore.strong"]. *)

val cls_name : cls -> string
(** ["rw"], ["cas"], ["faa"], ["llsc"], ["native"] — report labels. *)

val cls_of_string : string -> cls option

val restricted : cls list
(** [[RW; CAS; FAA; LLSC]] — the classes with prims constructions. *)

val all : cls list
(** {!restricted} plus [Native]. *)

val selected : unit -> cls option
(** The restricted class a primitive created right now should build on;
    [None] when unrestricted ([Native]). The platform checks its
    deterministic runtime first, so [Detrt] always outranks this. *)

val with_class : cls -> (unit -> 'a) -> 'a
(** [with_class c f] runs [f] with class [c] selected, restoring the
    previous selection on any exit. [with_class Native] is an explicit
    "no restriction" scope. *)

(** A class-restricted mutual-exclusion lock, as closures so the
    platform mutex carries one representation for every class. *)
type lock = {
  lk_cls : cls;
  lk_lock : unit -> unit;
  lk_try : unit -> bool;
      (** Non-blocking attempt; may fail spuriously (RW), and on FAA may
          briefly wait out a lost race — fetch-and-add cannot withdraw a
          committed ticket (see docs/hierarchy.md). *)
  lk_unlock : unit -> unit;
}

val make_lock : cls -> lock
(** @raise Unsupported for [Native]. RW-class locks assign bakery slots
    per calling thread (at most 64 distinct threads per lock). *)

(** A class-restricted counting semaphore. [sm_p_poll expired] is the
    timed P: it returns [false] only after observing [expired ()] true,
    and conservation holds on that path (an abandoned FIFO turn is
    covered by a donated unit). *)
type sem = {
  sm_cls : cls;
  sm_p : unit -> unit;
  sm_try : unit -> bool;
  sm_p_poll : (unit -> bool) -> bool;
  sm_v : int -> unit;
  sm_value : unit -> int;
  sm_waiters : unit -> int;  (** callers inside a blocking P (racy). *)
}

val make_sem : cls -> fairness:[ `Strong | `Weak ] -> int -> sem
(** @raise Unsupported for [RW] × [`Strong] (typed: FCFS needs an
    order-assigning RMW) and for [Native].
    @raise Invalid_argument on a negative initial value. *)
