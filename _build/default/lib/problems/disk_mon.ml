(** Hoare'74's disk-head scheduler monitor, verbatim in structure: two
    priority-wait conditions, one per sweep direction. The priority
    constraint over the request {e parameter} maps directly onto the rank
    argument of [wait_pri] — the construct the paper credits monitors
    with ("priority queues provide a means for using most needed
    information from arguments"). *)

open Sync_monitor
open Sync_taxonomy

type direction = Up | Down

type t = {
  mon : Monitor.t;
  upsweep : Monitor.Cond.t;   (* rank = destination track *)
  downsweep : Monitor.Cond.t; (* rank = cylmax - destination track *)
  cylmax : int;
  mutable headpos : int;
  mutable direction : direction;
  mutable busy : bool;
  res_access : pid:int -> int -> unit;
}

let mechanism = "monitor"

let create ~tracks ~access =
  let mon = Monitor.create ~discipline:`Hoare () in
  { mon; upsweep = Monitor.Cond.create mon;
    downsweep = Monitor.Cond.create mon; cylmax = tracks - 1; headpos = 0;
    direction = Up; busy = false; res_access = access }

let request t dest =
  if t.busy then begin
    if t.headpos < dest || (t.headpos = dest && t.direction = Up) then
      Monitor.Cond.wait_pri t.upsweep dest
    else Monitor.Cond.wait_pri t.downsweep (t.cylmax - dest)
  end;
  t.busy <- true;
  t.headpos <- dest

let release t =
  t.busy <- false;
  match t.direction with
  | Up ->
    if Monitor.Cond.queue t.upsweep then Monitor.Cond.signal t.upsweep
    else begin
      t.direction <- Down;
      Monitor.Cond.signal t.downsweep
    end
  | Down ->
    if Monitor.Cond.queue t.downsweep then Monitor.Cond.signal t.downsweep
    else begin
      t.direction <- Up;
      Monitor.Cond.signal t.upsweep
    end

let access t ~pid track =
  Protected.access t.mon
    ~before:(fun () -> request t track)
    ~after:(fun () -> release t)
    (fun () -> t.res_access ~pid track)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler"
    ~fragments:
      [ ("disk-exclusion", [ "busy"; "flag"; "wait_pri"; "signal" ]);
        ("disk-scan-order",
         [ "wait_pri(upsweep,dest)"; "wait_pri(downsweep,cylmax-dest)";
           "direction"; "headpos" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "headpos"; "direction"; "busy flag" ]
    ~separation:Meta.Separated ()
