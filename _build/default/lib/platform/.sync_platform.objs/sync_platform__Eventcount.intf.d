lib/platform/eventcount.mli:
