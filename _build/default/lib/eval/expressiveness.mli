(** Expressive power (paper Section 4.1, conclusions in Section 5):
    for each mechanism and each of the six information categories, how
    directly can constraints refer to that information?

    The matrix is {e derived from the artifact}, not asserted: each
    registered solution's metadata records how it accessed each category
    (through a construct of the mechanism, through user-maintained
    auxiliary state or synchronization procedures, or not at all), and a
    mechanism's cell is the best level any of its solutions achieved —
    "can the mechanism express it" is an existential claim. *)

open Sync_taxonomy

type cell = {
  level : Meta.support option;
      (** [None]: no registered solution exercises this category. *)
  evidence : string list;  (** solution ids achieving [level] *)
}

type t = (string * (Info.kind * cell) list) list
(** Row per mechanism, in {!Registry.mechanisms} order. *)

val matrix : Registry.entry list -> t

val paper_expectation : (string * (Info.kind * Meta.support) list) list
(** The Section-5 qualitative conclusions, transcribed: what the matrix
    should broadly show for the three mechanisms the paper analyzed. Used
    by EXPERIMENTS.md and the E3 conformance test. *)

val agrees_with_paper : t -> (string * Info.kind * string) list
(** Discrepancies between the computed matrix and {!paper_expectation}
    (empty = full agreement); each is (mechanism, kind, explanation). *)

val pp : Format.formatter -> t -> unit
(** Render as the E3 table. *)
