(** Unsynchronized moving-head disk (the disk-scheduler problem's resource
    half).

    [access t track] seeks the arm to [track] (accumulating travel
    distance) and performs the transfer. Accesses must be mutually
    exclusive; overlap raises {!Busywork.Ill_synchronized}. The
    accumulated {!travel} is the figure of merit schedulers minimize. *)

type t

val create : ?work:int -> tracks:int -> unit -> t
(** Track numbers are [0 .. tracks-1]. *)

val tracks : t -> int

val access : t -> int -> unit
(** @raise Invalid_argument on an out-of-range track. *)

val position : t -> int
(** Current arm position. *)

val travel : t -> int
(** Total arm travel so far. *)

val accesses : t -> int
