test/test_domains.ml: Alcotest Atomic Domain List Process Semaphore Sync_csp Sync_monitor Sync_pathexpr Sync_platform Sync_problems Sync_resources Sync_serializer Testutil
