test/test_problems_rw.mli:
