type support = Direct | Indirect | Unsupported

type separation = Separated | Blended | Enforced

type t = {
  mechanism : string;
  problem : string;
  variant : string;
  fragments : (string * string list) list;
  info_access : (Info.kind * support) list;
  aux_state : string list;
  sync_procedures : string list;
  separation : separation;
}

let make ~mechanism ~problem ?(variant = "default") ~fragments ~info_access
    ?(aux_state = []) ?(sync_procedures = []) ~separation () =
  { mechanism; problem; variant; fragments; info_access; aux_state;
    sync_procedures; separation }

let support_to_string = function
  | Direct -> "direct"
  | Indirect -> "indirect"
  | Unsupported -> "unsupported"

let support_symbol = function
  | Direct -> "D"
  | Indirect -> "I"
  | Unsupported -> "-"

let separation_to_string = function
  | Separated -> "separated"
  | Blended -> "blended"
  | Enforced -> "enforced"

let id t = Printf.sprintf "%s/%s@%s" t.problem t.variant t.mechanism

let pp ppf t =
  Format.fprintf ppf "%s: separation=%s aux=[%s] procs=[%s]" (id t)
    (separation_to_string t.separation)
    (String.concat "; " t.aux_state)
    (String.concat "; " t.sync_procedures)
