(* Readers-writers, four ways — and the paper's footnote-3 anomaly live.

   Part 1 runs the same read-heavy workload against the monitor,
   serializer, path-expression (Figure 1) and CSP readers-priority
   solutions, printing completed operations per solution.

   Part 2 stages the handoff scenario from the paper's footnote 3:
   writer W1 is mid-write, writer W2 and then reader R queue up, W1
   leaves. Correct readers-priority admits R; the faithful Figure 1 path
   solution admits W2 — reproducing the published bug deterministically.

     dune exec examples/readers_writers.exe
*)

open Sync_problems

let run_workload name (module S : Rw_intf.S) =
  let store = Sync_resources.Store.create ~work:100 () in
  let t =
    S.create
      ~read:(fun ~pid:_ -> Sync_resources.Store.read store)
      ~write:(fun ~pid:_ -> Sync_resources.Store.write store)
  in
  let reader pid () = for _ = 1 to 50 do ignore (S.read t ~pid) done in
  let writer pid () = for _ = 1 to 10 do S.write t ~pid done in
  Sync_platform.Process.run_all ~backend:`Thread
    [ reader 1; reader 2; reader 3; writer 200; writer 201 ];
  S.stop t;
  Printf.printf "%-28s reads=%3d writes=%2d version=%d\n%!" name
    (Sync_resources.Store.reads store)
    (Sync_resources.Store.writes store)
    (Sync_resources.Store.version store)

let () =
  print_endline "-- part 1: the same workload under four mechanisms --";
  run_workload "monitor (readers-priority)" (module Rw_mon.Readers_prio);
  run_workload "serializer (readers-priority)" (module Rw_ser.Readers_prio);
  run_workload "path expressions (Figure 1)" (module Rw_path.Fig1);
  run_workload "CSP (readers-priority)" (module Rw_csp.Readers_prio);
  print_endline "";
  print_endline "-- part 2: footnote 3, deterministically --";
  print_endline
    "staging: W1 mid-write; W2 queues, then R queues; W1 releases";
  let show name m =
    Printf.printf "%-28s -> %s\n%!" name
      (Rw_harness.outcome_to_string (Rw_harness.scenario_writer_handoff m))
  in
  show "monitor" (module Rw_mon.Readers_prio);
  show "serializer" (module Rw_ser.Readers_prio);
  show "CSP" (module Rw_csp.Readers_prio);
  show "Figure 1 (paths)" (module Rw_path.Fig1);
  print_endline
    "Figure 1 is writer-first: the second writer overtakes the waiting\n\
     reader, exactly the violation Bloom reports in footnote 3."
