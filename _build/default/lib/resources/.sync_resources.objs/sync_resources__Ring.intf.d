lib/resources/ring.mli:
