(** Hierarchical timing wheel (Varghese–Lauck) — the E27 alarm
    substrate.

    [levels] cascading rings of [2^slot_bits] buckets; a level-[l]
    slot spans [2^(l*slot_bits)] ticks, so the default 4 × 8-bit wheel
    covers a horizon of [2^32] ticks. {!add} and {!cancel} are O(1)
    (intrusive doubly-linked buckets); {!tick} is amortized O(1) and
    independent of the number of pending alarms — the property that
    lets an alarm-clock hold millions of sleepers (compare
    {!Heap}'s O(log n) per alarm).

    Single-owner by design: the caller (the [alarm_wheel] solution, a
    bench loop) serializes all calls. Deadlines beyond the horizon wait
    on an overflow list re-examined once per full rotation. *)

type 'a t

type 'a alarm
(** A pending alarm (the wheel's intrusive node). *)

val create : ?levels:int -> ?slot_bits:int -> unit -> 'a t
(** Default [levels = 4], [slot_bits = 8]. The horizon —
    the largest representable relative delay — is
    [2^(levels * slot_bits)] ticks.
    @raise Invalid_argument if [levels < 1], [slot_bits < 1] or the
    horizon would not fit an int. *)

val add : 'a t -> delay:int -> 'a -> 'a alarm
(** Schedule a payload [delay] ticks from {!now} (clamped to at least
    1: an alarm can never fire in the tick that set it, matching the
    alarm-clock semantics). O(1). *)

val cancel : 'a t -> 'a alarm -> bool
(** Unlink a pending alarm; [false] if it already fired or was already
    cancelled. O(1), idempotent. *)

val tick : 'a t -> (int -> 'a -> unit) -> int
(** Advance one tick, firing every alarm due exactly now: the callback
    receives (deadline, payload) in bucket FIFO order. Returns the
    number fired. *)

val advance : 'a t -> ticks:int -> (int -> 'a -> unit) -> int
(** [tick] repeatedly; returns the total number fired. *)

val now : 'a t -> int
(** Ticks elapsed since creation. *)

val pending : 'a t -> int
(** Alarms currently scheduled (added, not yet fired or cancelled). *)

val fired : 'a alarm -> bool
(** The alarm is no longer pending (fired or cancelled). *)

val deadline : 'a alarm -> int
(** The absolute tick the alarm was scheduled for. *)
