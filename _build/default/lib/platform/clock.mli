(** Time sources.

    Two clocks are provided: the monotonic wall clock used for tracing and
    benchmarking, and a {e virtual} clock used by time-driven problems (the
    alarm-clock problem of Hoare'74) so that tests advance time explicitly
    instead of sleeping. *)

val now_ns : unit -> int64
(** Monotonic wall-clock time in nanoseconds. *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns t0] is [now_ns () - t0]. *)

(** A virtual clock: an integer tick counter advanced explicitly.

    Waiters may block until the clock reaches an absolute tick. [advance]
    wakes every waiter whose deadline has been reached. This models the
    hardware tick interrupt that drives Hoare's alarm-clock monitor. *)
module Virtual : sig
  type t

  val create : ?start:int -> unit -> t

  val now : t -> int
  (** Current tick count. *)

  val advance : t -> int -> unit
  (** [advance t n] adds [n >= 0] ticks and wakes eligible sleepers. *)

  val sleep_until : t -> int -> unit
  (** Block the calling thread until [now t >= deadline]. Returns
      immediately if the deadline has already passed. *)

  val sleepers : t -> int
  (** Number of threads currently blocked in {!sleep_until} (for tests). *)
end
