(** Bounded buffer with a conditional critical region: the two
    local-state constraints are literally the [when] guards — CCRs'
    strongest category — while the in-flight flags replicate the monitor
    solution's synchronization state by hand. *)

open Sync_taxonomy

type shared = {
  capacity : int;
  mutable items : int;
  mutable putting : bool;
  mutable getting : bool;
}

type t = {
  v : shared Sync_ccr.Ccr.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "ccr"

let create ~capacity ~put ~get =
  { v =
      Sync_ccr.Ccr.create
        { capacity; items = 0; putting = false; getting = false };
    res_put = put; res_get = get }

let put t ~pid value =
  Sync_ccr.Ccr.region t.v
    ~when_:(fun s -> (not s.putting) && s.items < s.capacity)
    (fun s -> s.putting <- true);
  t.res_put ~pid value;
  Sync_ccr.Ccr.region t.v (fun s ->
      s.putting <- false;
      s.items <- s.items + 1)

let get t ~pid =
  Sync_ccr.Ccr.region t.v
    ~when_:(fun s -> (not s.getting) && s.items > 0)
    (fun s -> s.getting <- true);
  let value = t.res_get ~pid in
  Sync_ccr.Ccr.region t.v (fun s ->
      s.items <- s.items - 1;
      s.getting <- false);
  value

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "when"; "items<capacity" ]);
        ("bb-no-underflow", [ "when"; "items>0" ]);
        ("bb-access-exclusion", [ "when"; "not putting"; "not getting" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "items count"; "putting/getting in-flight flags" ]
    ~separation:Meta.Separated ()
