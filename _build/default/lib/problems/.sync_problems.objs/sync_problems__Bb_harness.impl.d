lib/problems/bb_harness.ml: Bb_intf Fun Ivl List Printf Process Sync_platform Sync_resources Trace
