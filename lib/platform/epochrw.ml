(* Epoch-based read-mostly readers-writers lock (E23). The serializing
   design (one counter under a mutex) makes every reader entry a write
   to one shared cache line; here each reader publishes its presence in
   a private padded slot, so uncontended read entry/exit is two stores
   to the reader's own line and read throughput scales with domains.

   Per-slot protocol word: a monotonically increasing epoch counter,
   odd while the slot's thread is inside a read section, even when
   idle. Writers serialize on [wm], raise the [wr] intent flag, then
   wait out the grace period: for every slot sampled odd, wait until
   its counter moves (the reader left — values only grow, so the wait
   cannot be fooled by a later section of the same slot). SC atomics
   give the usual disjunction: a reader's publish and [wr] check versus
   the writer's [wr] store and slot scan cannot both miss, so either
   the writer observes the reader and waits, or the reader observes
   [wr], retreats (bumping back to even), and backs off until the
   writer is done.

   Non-reentrant on the read side (the parity trick breaks on nesting);
   at most [slots] distinct reader threads per lock, assigned through
   the same out-of-protocol registry as the queue locks. Readers never
   block writers indefinitely only by finishing their sections; new
   readers are barred while a writer is in progress, but between
   back-to-back writers readers may slip in — no priority claim beyond
   exclusion is made. *)

type t = {
  slots : int Atomic.t array;
  pads : int array array;
  wr : int Atomic.t;
  wm : Stdlib.Mutex.t;
  reg_m : Stdlib.Mutex.t;
  tbl : (int, int) Hashtbl.t;
  mutable next_slot : int;
}

let pad_words = Sync_prims.Queuelock.pad_words

let create ?(slots = 64) () =
  let pads = Array.make (slots + 1) [||] in
  let mk i =
    let r = Atomic.make 0 in
    pads.(i) <- Array.make pad_words 0;
    r
  in
  let wr = mk slots in
  { slots = Array.init slots (fun i -> mk i);
    pads;
    wr;
    wm = Stdlib.Mutex.create ();
    reg_m = Stdlib.Mutex.create ();
    tbl = Hashtbl.create 16;
    next_slot = 0 }

let slot_of_self t =
  let tid = Thread.id (Thread.self ()) in
  Stdlib.Mutex.lock t.reg_m;
  let s =
    match Hashtbl.find_opt t.tbl tid with
    | Some s -> s
    | None ->
      let n = Array.length t.slots in
      if t.next_slot >= n then begin
        Stdlib.Mutex.unlock t.reg_m;
        failwith
          (Printf.sprintf
             "Epochrw: more than %d distinct reader threads on one lock" n)
      end;
      let s = t.next_slot in
      t.next_slot <- s + 1;
      Hashtbl.add t.tbl tid s;
      s
  in
  Stdlib.Mutex.unlock t.reg_m;
  s

let read_lock t =
  let s = slot_of_self t in
  let slot = t.slots.(s) in
  let rec enter () =
    let e = Atomic.get slot in
    Atomic.set slot (e + 1);
    (* Published (odd). SC order: if the writer's [wr] store precedes
       this check, we retreat; otherwise our publish precedes its scan
       and it waits for us. *)
    if Atomic.get t.wr = 1 then begin
      Atomic.set slot (e + 2);
      let b = Backoff.create () in
      while Atomic.get t.wr = 1 do
        Backoff.once b
      done;
      enter ()
    end
  in
  enter ()

let read_unlock t =
  let slot = t.slots.(slot_of_self t) in
  Atomic.set slot (Atomic.get slot + 1)

let write_lock t =
  Stdlib.Mutex.lock t.wm;
  Atomic.set t.wr 1;
  (* Grace period: every slot observed mid-section must move on before
     the writer may touch the resource. Each wait is on that slot's
     own line; settled slots cost one read. *)
  Array.iter
    (fun slot ->
      let v = Atomic.get slot in
      if v land 1 = 1 then begin
        let b = Backoff.create () in
        while Atomic.get slot = v do
          Backoff.once b
        done
      end)
    t.slots

let write_unlock t =
  Atomic.set t.wr 0;
  Stdlib.Mutex.unlock t.wm

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

(* Introspection for tests: how many slots are currently mid-section,
   and whether a writer holds the intent flag. *)
let readers t =
  Array.fold_left
    (fun acc slot -> if Atomic.get slot land 1 = 1 then acc + 1 else acc)
    0 t.slots

let writer_active t = Atomic.get t.wr = 1
