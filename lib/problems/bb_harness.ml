(** Workload driver and checker for the bounded-buffer problem.

    Values are tagged [pid * 1_000_000 + k] so the checker can verify, per
    producer, that the buffer preserved FIFO order. Correctness evidence:

    - the self-checking {!Sync_resources.Ring} raises [Ill_synchronized]
      on overfill, underflow, or same-side overlap (reported as [Error]);
    - consumed values are exactly the produced values (no loss, no
      duplication);
    - for each producer, its values are consumed in production order. *)

open Sync_platform

type report = {
  trace : Trace.event list;
  produced : int list; (* all values, in a canonical order *)
  consumed : int list; (* in buffer pop order *)
}

let tag ~pid k = (pid * 1_000_000) + k

let producer_of v = v / 1_000_000

let seq_of v = v mod 1_000_000

let run (module B : Bb_intf.S) ?(backend = `Thread) ?(capacity = 4)
    ?(producers = 2) ?(consumers = 2) ?(items_per_producer = 50) ?(work = 30)
    ~seed () =
  ignore seed;
  let trace = Trace.create () in
  let ring = Sync_resources.Ring.create ~work capacity in
  let res_put ~pid v =
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Enter ~arg:v ();
    Sync_resources.Ring.put ring v;
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Exit ~arg:v ()
  in
  let res_get ~pid =
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Enter ();
    let v = Sync_resources.Ring.get ring in
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Exit ~arg:v ();
    v
  in
  let buffer = B.create ~capacity ~put:res_put ~get:res_get in
  let total = producers * items_per_producer in
  let share c =
    (* Consumer c's number of items; shares differ by at most one. *)
    (total / consumers) + (if c < total mod consumers then 1 else 0)
  in
  let produce pid () =
    for k = 1 to items_per_producer do
      let v = tag ~pid k in
      Trace.record trace ~pid ~op:"put" ~phase:Trace.Request ~arg:v ();
      B.put buffer ~pid v
    done
  in
  let consume c () =
    let pid = 100 + c in
    for _ = 1 to share c do
      Trace.record trace ~pid ~op:"get" ~phase:Trace.Request ();
      ignore (B.get buffer ~pid)
    done
  in
  let workers =
    List.init producers (fun pid -> produce pid)
    @ List.init consumers (fun c -> consume c)
  in
  Fun.protect
    ~finally:(fun () -> B.stop buffer)
    (fun () -> Process.run_all ~backend workers);
  let events = Trace.events trace in
  let ivls = Ivl.intervals events in
  let consumed =
    List.filter_map
      (fun i -> if i.Ivl.op = "get" then Some (i.Ivl.enter, i.Ivl.ret) else None)
      ivls
    |> List.sort compare |> List.map snd
  in
  let produced =
    List.concat_map
      (fun pid -> List.init items_per_producer (fun k -> tag ~pid (k + 1)))
      (List.init producers Fun.id)
  in
  { trace = events; produced; consumed }

let check ~producers report =
  match Ivl.check_wellformed report.trace with
  | Error _ as e -> e
  | Ok () ->
  let sorted_eq a b = List.sort compare a = List.sort compare b in
  if not (sorted_eq report.produced report.consumed) then
    Error
      (Printf.sprintf "value conservation violated: %d produced, %d consumed"
         (List.length report.produced)
         (List.length report.consumed))
  else begin
    (* Per-producer FIFO: each producer's values appear in pop order with
       increasing sequence numbers. *)
    let rec check_producer pid =
      if pid >= producers then Ok ()
      else
        let seqs =
          List.filter_map
            (fun v -> if producer_of v = pid then Some (seq_of v) else None)
            report.consumed
        in
        let sorted = List.sort compare seqs in
        if seqs <> sorted then
          Error (Printf.sprintf "producer %d's items reordered" pid)
        else check_producer (pid + 1)
    in
    check_producer 0
  end

let verify ?backend ?(capacity = 4) ?(producers = 2) ?(consumers = 2)
    ?(items_per_producer = 50) (module B : Bb_intf.S) =
  match
    run (module B) ?backend ~capacity ~producers ~consumers
      ~items_per_producer ~seed:7L ()
  with
  | report -> check ~producers report
  | exception Sync_resources.Busywork.Ill_synchronized msg ->
    Error ("resource contract violated: " ^ msg)
