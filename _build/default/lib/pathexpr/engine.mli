(** Runtime primitive layer for compiled path expressions.

    The Campbell-Habermann translation reduces a path declaration to P/V
    operations on counting semaphores plus counters. Two engines provide
    those primitives:

    - {!semaphore}: each semaphore is an independent strong (FIFO)
      counting semaphore — the classic translation target. Predicates are
      unsupported (historically they postdate this implementation).
    - {!gate}: all semaphores of one compiled system share a central lock;
      FIFO grant order, plus Andler-style predicate gates re-evaluated at
      every release point and at every operation completion ({!poke}).

    Both engines grant P strictly in arrival order, realizing the paper's
    extra assumption that selection chooses the longest-waiting process. *)

type sem = { p : unit -> unit; v : unit -> unit }

type t = {
  name : string;
  make_sem : int -> sem;
  pred_gate : ((unit -> bool) -> unit) option;
      (** Block until the predicate holds; [None] if unsupported. *)
  poke : unit -> unit;
      (** Notify predicate waiters that observable state may have
          changed. *)
}

val semaphore : unit -> t
(** A fresh classic-translation engine instance. *)

val gate : unit -> t
(** A fresh central-lock engine instance with predicate support. *)
