exception Injected of string

type trigger = Never | Always | Nth of int | Every of int | Prob of float

type plan = {
  rules : (string * trigger) list;
  seed : int;
  (* Everything below is guarded by [guard]: sites may be hit from many
     threads. A raw stdlib mutex, not the platform facade, so that fault
     bookkeeping itself never becomes a scheduling point or a fault
     site. *)
  guard : Stdlib.Mutex.t;
  counts : (string, int) Hashtbl.t;
  mutable rng : Prng.t;
  mutable fired : int;
}

let plan ?(seed = 0) rules =
  { rules; seed; guard = Stdlib.Mutex.create ();
    counts = Hashtbl.create 16; rng = Prng.make (Int64.of_int seed);
    fired = 0 }

(* The installed plan. A plain ref: real-thread workloads install a plan
   once around the whole run, and deterministic runs are single-carrier,
   so installation itself needs no synchronization. *)
let current : plan option ref = ref None

let active () = Option.is_some !current

(* Per-actor mask. Release/commit-side code — everything that runs after
   an operation's effect has been committed, plus abort-recovery paths —
   runs under [mask], so injection can never strike where the mechanism
   has no way left to restore consistency. The moral equivalent of
   disabling thread cancellation inside a cleanup handler. Actors are
   keyed the same way the deadlock watchdog keys processes: virtual task
   id inside a deterministic run, OS thread id otherwise. *)
type actor = Vtask of int | Osthr of int

let task_provider : (unit -> int option) ref = ref (fun () -> None)

let set_task_provider f = task_provider := f

let self_actor () =
  match !task_provider () with
  | Some tid -> Vtask tid
  | None -> Osthr (Thread.id (Thread.self ()))

let mask_guard = Stdlib.Mutex.create ()

let mask_depth : (actor, int) Hashtbl.t = Hashtbl.create 16

let masked () =
  if !current = None then false
  else begin
    Stdlib.Mutex.lock mask_guard;
    let m = Hashtbl.mem mask_depth (self_actor ()) in
    Stdlib.Mutex.unlock mask_guard;
    m
  end

let mask f =
  let k = self_actor () in
  Stdlib.Mutex.lock mask_guard;
  Hashtbl.replace mask_depth k
    (1 + Option.value (Hashtbl.find_opt mask_depth k) ~default:0);
  Stdlib.Mutex.unlock mask_guard;
  Fun.protect f ~finally:(fun () ->
      Stdlib.Mutex.lock mask_guard;
      (match Hashtbl.find_opt mask_depth k with
      | Some n when n > 1 -> Hashtbl.replace mask_depth k (n - 1)
      | _ -> Hashtbl.remove mask_depth k);
      Stdlib.Mutex.unlock mask_guard)

let with_plan p f =
  let prev = !current in
  Stdlib.Mutex.lock p.guard;
  Hashtbl.reset p.counts;
  p.rng <- Prng.make (Int64.of_int p.seed);
  p.fired <- 0;
  Stdlib.Mutex.unlock p.guard;
  current := Some p;
  Fun.protect ~finally:(fun () -> current := prev) f

let site name =
  match !current with
  | None -> ()
  | Some _ when masked () -> ()
  (* Masked hits neither fire nor count: [Nth]/[Every] counters range
     over injectable hits only, so a plan's decisions do not shift when a
     mechanism routes more of its internals through masked regions. *)
  | Some p ->
    let fire =
      Stdlib.Mutex.lock p.guard;
      let n = (match Hashtbl.find_opt p.counts name with
               | Some n -> n
               | None -> 0) + 1 in
      Hashtbl.replace p.counts name n;
      let fire =
        match List.assoc_opt name p.rules with
        | None | Some Never -> false
        | Some Always -> true
        | Some (Nth k) -> n = k
        | Some (Every k) -> k > 0 && n mod k = 0
        | Some (Prob q) -> Prng.float p.rng 1.0 < q
      in
      if fire then p.fired <- p.fired + 1;
      Stdlib.Mutex.unlock p.guard;
      fire
    in
    if fire then raise (Injected name)

let hits p =
  Stdlib.Mutex.lock p.guard;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.counts [] in
  Stdlib.Mutex.unlock p.guard;
  List.sort compare l

let fired p =
  Stdlib.Mutex.lock p.guard;
  let n = p.fired in
  Stdlib.Mutex.unlock p.guard;
  n

type abort_policy = [ `Propagate | `Poison | `Rollback ]

let abort_policy_to_string = function
  | `Propagate -> "propagate"
  | `Poison -> "poison"
  | `Rollback -> "rollback"
