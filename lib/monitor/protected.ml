(* [after]/[abort] run masked: once [op]'s effect is committed (or being
   compensated), the bookkeeping that reconciles the synchronizer with it
   must not itself be abortable — an injection there would leave flags and
   counts pointing at an effect that already happened. *)
let access m ~before ~after ?abort op =
  Monitor.with_monitor m before;
  match op () with
  | v ->
    Sync_platform.Fault.mask (fun () -> Monitor.with_monitor m after);
    v
  | exception e ->
    Sync_platform.Fault.mask (fun () ->
        Monitor.with_monitor m
          (match abort with Some f -> f | None -> after));
    raise e

let access_inside m op = Monitor.with_monitor m op
