open Sync_platform

type sem = { p : unit -> unit; v : unit -> unit }

type t = {
  name : string;
  make_sem : int -> sem;
  pred_gate : ((unit -> bool) -> unit) option;
  poke : unit -> unit;
}

let semaphore () =
  let make_sem n =
    let s = Semaphore.Counting.create ~fairness:`Strong n in
    { p = (fun () -> Semaphore.Counting.p s);
      v = (fun () -> Semaphore.Counting.v s) }
  in
  { name = "semaphore"; make_sem; pred_gate = None; poke = (fun () -> ()) }

let gate () =
  let lock = Mutex.create () in
  let changed = Condition.create () in
  let make_sem n =
    let tokens = ref n in
    let q : unit Waitq.t = Waitq.create () in
    let p () =
      Mutex.lock lock;
      if !tokens > 0 && Waitq.is_empty q then decr tokens
      else Waitq.wait q ~lock ();
      Mutex.unlock lock
    in
    let v () =
      Mutex.lock lock;
      (* Hand the token directly to the oldest waiter, preserving FIFO. *)
      if not (Waitq.wake_first q) then incr tokens;
      Condition.broadcast changed;
      Mutex.unlock lock
    in
    { p; v }
  in
  let pred_gate f =
    Mutex.lock lock;
    while not (f ()) do
      Condition.wait changed lock
    done;
    Mutex.unlock lock
  in
  let poke () =
    Mutex.lock lock;
    Condition.broadcast changed;
    Mutex.unlock lock
  in
  { name = "gate"; make_sem; pred_gate = Some pred_gate; poke }
