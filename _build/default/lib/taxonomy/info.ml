type kind =
  | Request_type
  | Request_time
  | Parameters
  | Sync_state
  | Local_state
  | History

let all =
  [ Request_type; Request_time; Parameters; Sync_state; Local_state; History ]

let to_string = function
  | Request_type -> "request-type"
  | Request_time -> "request-time"
  | Parameters -> "parameters"
  | Sync_state -> "sync-state"
  | Local_state -> "local-state"
  | History -> "history"

let of_string = function
  | "request-type" -> Some Request_type
  | "request-time" -> Some Request_time
  | "parameters" -> Some Parameters
  | "sync-state" -> Some Sync_state
  | "local-state" -> Some Local_state
  | "history" -> Some History
  | _ -> None

let short = function
  | Request_type -> "type"
  | Request_time -> "time"
  | Parameters -> "param"
  | Sync_state -> "sync"
  | Local_state -> "local"
  | History -> "hist"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let index = function
  | Request_type -> 0
  | Request_time -> 1
  | Parameters -> 2
  | Sync_state -> 3
  | Local_state -> 4
  | History -> 5

let compare a b = Int.compare (index a) (index b)

let equal a b = index a = index b
