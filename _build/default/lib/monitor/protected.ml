let access m ~before ~after op =
  Monitor.with_monitor m before;
  match op () with
  | v ->
    Monitor.with_monitor m after;
    v
  | exception e ->
    Monitor.with_monitor m after;
    raise e

let access_inside m op = Monitor.with_monitor m op
