open Sync_platform
open Sync_metrics
module Probe = Sync_trace.Probe

(* E27 adds the two shapes a self-tuning controller has to survive:
   [Diurnal] modulates a Poisson process with a slow sinusoid (rate
   swings between ~0.1x and ~1.9x of nominal over [diurnal_period_ms]),
   so the best tier changes during the run; [Bursty] is a two-state
   mixture — occasional long gaps, dense bursts between them — with the
   same nominal rate but a far higher variance, the classic trigger for
   spin-vs-park mistuning. *)
type arrival = Poisson | Uniform_spaced | Diurnal | Bursty

let arrival_name = function
  | Poisson -> "poisson"
  | Uniform_spaced -> "uniform"
  | Diurnal -> "diurnal"
  | Bursty -> "bursty"

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "uniform" -> Some Uniform_spaced
  | "diurnal" -> Some Diurnal
  | "bursty" -> Some Bursty
  | _ -> None

let diurnal_period_ms = 100

let diurnal_amplitude = 0.9

(* Bursty mixture: a 1-in-10 draw opens a gap 6.4x the nominal mean;
   the rest arrive at 0.4x. Expectation 0.1*6.4 + 0.9*0.4 = 1.0 keeps
   the aggregate rate honest while the variance explodes. *)
let burst_gap_p = 0.1

let burst_gap_scale = 6.4

let burst_dense_scale = 0.4

type mode = Closed | Open_loop of { rate_per_s : float; arrival : arrival }

type config = {
  workers : int;
  backend : [ `Thread | `Domain ];
  duration_ms : int;
  warmup_ms : int;
  mode : mode;
  seed : int;
  think_us : int;
}

let default_config =
  { workers = 4; backend = `Domain; duration_ms = 1000; warmup_ms = 200;
    mode = Closed; seed = 42; think_us = 0 }

let duration_from_env ~default =
  match Sys.getenv_opt "SYNC_LOAD_MS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some ms when ms > 0 -> ms
    | _ -> default)
  | None -> default

(* Phases. Workers look the phase up after each completed operation and
   file the sample accordingly; the coordinator owns the transitions. *)
let warmup = 0

let steady = 1

let finished = 2

let validate cfg =
  if cfg.workers < 1 then invalid_arg "Loadgen.run: workers must be >= 1";
  if cfg.duration_ms < 1 then invalid_arg "Loadgen.run: duration must be >= 1ms";
  if cfg.warmup_ms < 0 then invalid_arg "Loadgen.run: negative warmup";
  match cfg.mode with
  | Open_loop { rate_per_s; _ } when rate_per_s <= 0.0 ->
    invalid_arg "Loadgen.run: open-loop rate must be positive"
  | _ -> ()

let validate_target (target : Target.instance) =
  (match target.Target.selection with
  | Target.Weighted ws when Array.fold_left ( + ) 0 ws <= 0 ->
    invalid_arg "Loadgen.run: weighted selection with no weight"
  | _ -> ());
  if Array.length target.Target.ops = 0 then
    invalid_arg "Loadgen.run: target with no ops"

let run (target : Target.instance) cfg =
  validate cfg;
  validate_target target;
  let ops = target.Target.ops in
  let nops = Array.length ops in
  let op_names = Array.map (fun o -> o.Target.name) ops in
  let phase = Atomic.make warmup in
  (* recorders.(w).(warmup|steady): strictly per-worker single-writer. *)
  let recorders =
    Array.init cfg.workers (fun _ ->
        [| Recorder.create ~ops:op_names (); Recorder.create ~ops:op_names () |])
  in
  let base_rng = Prng.make (Int64.of_int cfg.seed) in
  let rngs = Array.init cfg.workers (fun _ -> Prng.split base_rng) in
  (* Open loop: each worker carries 1/workers of the aggregate rate. *)
  let mean_ia_ns =
    match cfg.mode with
    | Closed -> 0.0
    | Open_loop { rate_per_s; _ } ->
      1e9 *. float_of_int cfg.workers /. rate_per_s
  in
  let worker w () =
    let rng = rngs.(w) in
    let recs = recorders.(w) in
    let start_ns = Clock.now_ns () in
    let next_arrival = ref start_ns in
    (* Exponential inter-arrival: -mean * ln(1 - U), U in [0,1). *)
    let exp_draw mean =
      let u = Prng.float rng 1.0 in
      -.mean *. log (1.0 -. u)
    in
    let interarrival () =
      match cfg.mode with
      | Closed -> 0L
      | Open_loop { arrival = Uniform_spaced; _ } ->
        Int64.of_float mean_ia_ns
      | Open_loop { arrival = Poisson; _ } ->
        Int64.of_float (exp_draw mean_ia_ns)
      | Open_loop { arrival = Diurnal; _ } ->
        (* Sinusoid-modulated Poisson: the instantaneous rate follows
           1 + A*sin(2*pi*t/period), evaluated at the intended arrival
           time so the shape is schedule-driven, not execution-driven. *)
        let t_ns =
          Int64.to_float (Int64.sub !next_arrival start_ns)
        in
        let phase =
          2.0 *. Float.pi *. t_ns /. (float_of_int diurnal_period_ms *. 1e6)
        in
        let factor = 1.0 +. (diurnal_amplitude *. sin phase) in
        Int64.of_float (exp_draw (mean_ia_ns /. Float.max 0.05 factor))
      | Open_loop { arrival = Bursty; _ } ->
        let scale =
          if Prng.float rng 1.0 < burst_gap_p then burst_gap_scale
          else burst_dense_scale
        in
        Int64.of_float (exp_draw (mean_ia_ns *. scale))
    in
    let rec wait_until ns =
      let now = Clock.now_ns () in
      if Int64.compare now ns >= 0 || Atomic.get phase >= finished then ()
      else begin
        if Int64.compare (Int64.sub ns now) 2_000_000L > 0 then
          Thread.delay 0.001
        else Thread.yield ();
        wait_until ns
      end
    in
    let run_one i =
      (* Closed-loop think time: sleep outside the latency window, so
         each worker issues roughly 1/(think+service) ops/s and adding
         workers raises aggregate throughput until the resource
         saturates — the classic interactive-client model, and the knob
         that lets a scaling experiment mean something even when the
         host serializes runnable threads. *)
      if cfg.think_us > 0 then Thread.delay (float_of_int cfg.think_us /. 1e6);
      let start =
        match cfg.mode with
        | Closed -> Clock.now_ns ()
        | Open_loop _ ->
          let s = !next_arrival in
          next_arrival := Int64.add s (interarrival ());
          wait_until s;
          (* Latency counts from the intended arrival: falling behind
             schedule surfaces as queueing delay, not omitted samples. *)
          s
      in
      let t0 = Probe.now () in
      if t0 <> 0 then Probe.set_op op_names.(i);
      match ops.(i).Target.run ~rng ~pid:w with
      | () ->
        Probe.span Op ~site:"workload.op" ~since:t0 ~arg:i;
        let ph = Atomic.get phase in
        if ph <= steady then
          Recorder.record recs.(ph) ~op:i
            ~ns:(Int64.to_int (Int64.sub (Clock.now_ns ()) start))
      | exception _ ->
        let ph = Atomic.get phase in
        if ph <= steady then Recorder.record_failure recs.(ph) ~op:i
    in
    let pick_weighted =
      match target.Target.selection with
      | Target.Cycle -> fun () -> 0
      | Target.Weighted ws ->
        let total = Array.fold_left ( + ) 0 ws in
        fun () ->
          let r = Prng.int rng total in
          let rec go i acc =
            let acc = acc + ws.(i) in
            if r < acc then i else go (i + 1) acc
          in
          go 0 0
    in
    while Atomic.get phase < finished do
      match target.Target.selection with
      | Target.Cycle ->
        (* The whole cycle runs before the stop check: per-worker op
           balance is the liveness invariant for put/get problems. *)
        for i = 0 to nops - 1 do
          run_one i
        done
      | Target.Weighted _ -> run_one (pick_weighted ())
    done
  in
  let handles =
    List.init cfg.workers (fun w ->
        Process.spawn ~name:(Printf.sprintf "load-%d" w)
          ~backend:(cfg.backend :> Process.backend)
          (worker w))
  in
  if cfg.warmup_ms > 0 then Thread.delay (float_of_int cfg.warmup_ms /. 1e3);
  Atomic.set phase steady;
  let t0 = Clock.now_ns () in
  Thread.delay (float_of_int cfg.duration_ms /. 1e3);
  Atomic.set phase finished;
  let t1 = Clock.now_ns () in
  List.iter Process.join handles;
  target.Target.stop ();
  let merged =
    Recorder.merge (Array.to_list (Array.map (fun r -> r.(steady)) recorders))
  in
  let summary = Summary.of_recorder ~elapsed_ns:(Int64.sub t1 t0) merged in
  let meta = target.Target.meta in
  { Report.problem = meta.Sync_taxonomy.Meta.problem;
    variant = meta.Sync_taxonomy.Meta.variant;
    mechanism = meta.Sync_taxonomy.Meta.mechanism;
    tier = target.Target.tier;
    workers = cfg.workers;
    backend = (match cfg.backend with `Thread -> "thread" | `Domain -> "domain");
    mode = (match cfg.mode with Closed -> "closed" | Open_loop _ -> "open");
    rate_per_s =
      (match cfg.mode with
      | Closed -> None
      | Open_loop { rate_per_s; _ } -> Some rate_per_s);
    arrival =
      (match cfg.mode with
      | Closed -> None
      | Open_loop { arrival; _ } -> Some (arrival_name arrival));
    duration_ms = cfg.duration_ms;
    warmup_ms = cfg.warmup_ms;
    seed = cfg.seed;
    summary }
