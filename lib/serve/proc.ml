type t = { pid : int; mutable reaped : [ `Exited of int | `Signaled of int ] option }

let spawn ~exe ~args =
  let argv = Array.of_list (exe :: args) in
  let pid = Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr in
  { pid; reaped = None }

let pid t = t.pid

let signal_quiet t s =
  if t.reaped = None then
    try Unix.kill t.pid s with Unix.Unix_error _ -> ()

let sigterm t = signal_quiet t Sys.sigterm

let kill9 t = signal_quiet t Sys.sigkill

let wait ?(timeout_s = 10.0) t =
  match t.reaped with
  | Some r -> (r :> [ `Exited of int | `Signaled of int | `Timeout ])
  | None ->
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec poll () =
      match Unix.waitpid [ Unix.WNOHANG ] t.pid with
      | 0, _ ->
        if Unix.gettimeofday () >= deadline then `Timeout
        else begin
          Thread.delay 0.01;
          poll ()
        end
      | _, Unix.WEXITED c ->
        t.reaped <- Some (`Exited c);
        `Exited c
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
        t.reaped <- Some (`Signaled s);
        `Signaled s
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        t.reaped <- Some (`Exited 0);
        `Exited 0
    in
    poll ()

let wait_for_socket ?(timeout_s = 5.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    let ready =
      Sys.file_exists path
      &&
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let ok =
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ok
    in
    if ready then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      poll ()
    end
  in
  poll ()
