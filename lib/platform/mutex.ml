module Probe = Sync_trace.Probe
module Prims = Sync_prims.Prims
module Queuelock = Sync_prims.Queuelock

(* Adaptive (futex-style) mutex state: a single atomic int.
   0 = unlocked; 1 = locked, no waiter ever parked since last unlock;
   2 = locked, and some thread may be parked (or about to park) on [pc].
   Lock is a CAS 0->1; on failure a bounded randomized spin, then a
   park loop that pessimistically exchanges in 2 so the eventual
   unlocker knows a signal is owed. Unlock exchanges in 0 and signals
   only when the old state was 2 — the uncontended round trip is two
   atomic operations and never touches [pm]/[pc]. *)
type fast = {
  state : int Atomic.t;
  pm : Stdlib.Mutex.t;
  pc : Stdlib.Condition.t;
}

type impl =
  | Sys of Stdlib.Mutex.t
  | Det of Detrt.mutex
  | Fast of fast
  | Prim of Prims.lock
  | Queue of Queuelock.lock

type t = {
  impl : impl;
  (* Watchdog resource id for the Sys/Fast halves; -1 when the watchdog
     was off at creation. Det mutexes carry their own id inside Detrt. *)
  rid : int;
  name : string;
  (* Timestamp of the last successful acquire by the current holder; 0
     when tracing is off. Written only under the lock, so plain mutable
     is safe. Condition.wait resets it when the waiter re-acquires. *)
  mutable acquired_at : int;
}

let create ?(name = "mutex") () =
  if Detrt.active () then
    { impl = Det (Detrt.mutex ()); rid = -1; name; acquired_at = 0 }
  else
    let impl =
      (* Precedence: Det (above) > Prim (E25 class restriction) > Queue
         (E23 scalable-lock tier) > Fast (E22 adaptive tier) > Sys. *)
      match Prims.selected () with
      | Some c -> Prim (Prims.make_lock c)
      | None -> (
        match Queuelock.selected () with
        | Some k -> Queue (Queuelock.make_lock k)
        | None ->
        if Fastpath.active () then
          Fast
            { state = Atomic.make 0;
              pm = Stdlib.Mutex.create ();
              pc = Stdlib.Condition.create () }
        else Sys (Stdlib.Mutex.create ()))
    in
    { impl;
      rid =
        (if Deadlock.enabled () then Deadlock.register ~kind:"mutex" ()
         else -1);
      name;
      acquired_at = 0 }

(* How many backoff rounds to spin before parking. Backoff doubles its
   randomized spin bound each round, so this covers short critical
   sections without burning a core when the holder is descheduled. On a
   single-core machine the holder cannot run while we spin, so the only
   useful move is to park straight away (pthread mutexes make the same
   call: their adaptive spin is conditional on SMP). Yield-until-free
   is NOT an option here: with one thread per domain, [Thread.yield]
   skips the reschedule entirely (nobody else waits on the domain's
   master lock), so a yield loop degenerates into a hot spin. *)
let spin_rounds = if Domain.recommended_domain_count () > 1 then 8 else 0

let fast_lock_raw f =
  if not (Atomic.compare_and_set f.state 0 1) then begin
    (* Bounded spin: cheap loads with exponential backoff between CAS
       retries, so brief contention never pays a futex round trip. *)
    let b = Backoff.create () in
    let rec spin n =
      n > 0
      && ((Atomic.get f.state = 0 && Atomic.compare_and_set f.state 0 1)
         ||
         (Backoff.once b;
          spin (n - 1)))
    in
    if not (spin spin_rounds) then begin
      (* Park. From here on we advertise 2 (waiters present): whoever
         unlocks while the state is 2 must signal. The exchange both
         attempts the acquire and publishes the pessimistic state. *)
      let rec park () =
        if Atomic.exchange f.state 2 <> 0 then begin
          Stdlib.Mutex.lock f.pm;
          (* Re-check under [pm]: unlock signals under [pm], so either
             the state already left 2 (no sleep) or the signal cannot
             fire before we are actually waiting. Spurious wakeups just
             re-run the exchange. *)
          if Atomic.get f.state = 2 then Stdlib.Condition.wait f.pc f.pm;
          Stdlib.Mutex.unlock f.pm;
          park ()
        end
      in
      park ()
    end
  end

let fast_unlock_raw f =
  if Atomic.exchange f.state 0 = 2 then begin
    Stdlib.Mutex.lock f.pm;
    Stdlib.Condition.signal f.pc;
    Stdlib.Mutex.unlock f.pm
  end

let lock t =
  let t0 = Probe.now () in
  (match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      Stdlib.Mutex.lock m;
      Deadlock.acquired t.rid
    end
    else Stdlib.Mutex.lock m
  | Fast f ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      fast_lock_raw f;
      Deadlock.acquired t.rid
    end
    else fast_lock_raw f
  | Prim p ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      p.Prims.lk_lock ();
      Deadlock.acquired t.rid
    end
    else p.Prims.lk_lock ()
  | Queue q ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      q.Queuelock.qk_lock ();
      Deadlock.acquired t.rid
    end
    else q.Queuelock.qk_lock ()
  | Det m -> Detrt.mutex_lock m);
  if t0 <> 0 then begin
    Probe.span Acquire ~site:t.name ~since:t0 ~arg:0;
    t.acquired_at <- Probe.now ()
  end

let unlock t =
  if t.acquired_at <> 0 then begin
    Probe.span Hold ~site:t.name ~since:t.acquired_at ~arg:0;
    t.acquired_at <- 0
  end;
  match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    Stdlib.Mutex.unlock m
  | Fast f ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    fast_unlock_raw f
  | Prim p ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    p.Prims.lk_unlock ()
  | Queue q ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    q.Queuelock.qk_unlock ()
  | Det m -> Detrt.mutex_unlock m

let try_lock t =
  let ok =
    match t.impl with
    | Sys m ->
      let ok = Stdlib.Mutex.try_lock m in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Fast f ->
      let ok = Atomic.compare_and_set f.state 0 1 in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Prim p ->
      let ok = p.Prims.lk_try () in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Queue q ->
      let ok = q.Queuelock.qk_try () in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Det m -> Detrt.mutex_try_lock m
  in
  if ok then begin
    (* A successful try_lock is a zero-wait acquire; emit the span so
       profiled acquire counts include try-lock users. *)
    let n = Probe.now () in
    if n <> 0 then begin
      Probe.span Acquire ~site:t.name ~since:n ~arg:0;
      t.acquired_at <- n
    end
  end;
  ok

let try_lock_for t ~timeout_ns =
  let deadline = Deadline.after_ns timeout_ns in
  match t.impl with
  | Det _ ->
    (* Deterministic runs: every poll must be a scheduling point the
       recorded schedule controls, so no wall-clock backoff here. *)
    let rec loop () =
      if try_lock t then true
      else if Deadline.expired deadline then false
      else begin
        Detrt.relax ();
        loop ()
      end
    in
    loop ()
  | Sys _ | Fast _ | Prim _ | Queue _ ->
    (* Queue-tier timed attempts poll [try_lock] too: the queue locks'
       try never publishes a waiter node, so a timeout cannot strand a
       wakeup in the FIFO queue. *)
    let b = Backoff.create () in
    let rec loop () =
      if try_lock t then true
      else if Deadline.expired deadline then false
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()

let protect m f =
  lock m;
  match f () with
  | v ->
    unlock m;
    v
  | exception e ->
    unlock m;
    raise e
