(** Ease of use as constraint independence (paper Section 4.2).

    The paper's test: take two problems that share some constraints but
    differ in others (the readers-priority / writers-priority / FCFS
    readers-writers trio), and compare how each shared constraint is
    implemented in the two solutions. If a mechanism lets constraints be
    implemented independently, the shared constraint's implementation is
    (near-)identical across the pair and a policy change touches only the
    priority fragment; if not — path expressions being the paper's
    example, where "a modification to one constraint involves changing
    the entire solution" — the shared fragment is rewritten too.

    Fragment similarity is measured as the Jaccard index over the
    canonical token multisets each solution registers per constraint. *)

type pairing = {
  mechanism : string;
  problem : string;
  variant_a : string;
  variant_b : string;
  constraint_id : string;
  similarity : float; (** 1.0 = identical implementation *)
}

val jaccard : string list -> string list -> float
(** Multiset Jaccard index; [1.0] for two empty fragments. *)

val analyze : Registry.entry list -> pairing list
(** All same-mechanism, same-problem variant pairs, one pairing per
    constraint id both solutions implement. *)

val shared_constraint_reuse : pairing list -> (string * float) list
(** Per mechanism: mean similarity of the {e exclusion}-class shared
    constraints across variant pairs — the paper's independence measure.
    (Priority constraints differ by specification, so they are excluded
    from the reuse score.) *)

val pp : Format.formatter -> pairing list -> unit

val pp_summary : Format.formatter -> (string * float) list -> unit
