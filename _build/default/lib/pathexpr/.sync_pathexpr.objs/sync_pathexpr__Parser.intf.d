lib/pathexpr/parser.mli: Ast
