lib/pathexpr/ast.ml: Format Hashtbl List String
