exception Unsupported = Compile.Unsupported

exception Unknown_operation of string

type engine_kind = [ `Semaphore | `Gate ]

type t = {
  spec : Ast.spec;
  table : Compile.table;
  engine : Engine.t;
}

let compile ?(engine = `Semaphore) ?(env = []) spec =
  let engine =
    match engine with `Semaphore -> Engine.semaphore () | `Gate -> Engine.gate ()
  in
  { spec; table = Compile.compile ~engine ~env spec; engine }

let of_string ?engine ?env src = compile ?engine ?env (Parser.parse src)

let abort_policy : Sync_platform.Fault.abort_policy = `Rollback

let run t op body =
  match List.assoc_opt op t.table with
  | None -> raise (Unknown_operation op)
  | Some wrappers ->
    let t0 = Sync_trace.Probe.now () in
    (* Roll back on abort: whether a prologue aborts partway (e.g. while
       blocked on the second of several path counters) or the body raises,
       return the tokens the completed prologues consumed — newest first —
       so the expression's state is as if the operation never started.
       [entered] is accumulated in reverse, which is the unwind order.
       Prologues are the acquire phase and stay injectable; epilogues
       (commit) and undo (recovery) run masked — a crash there cannot be
       compensated, only completed. *)
    let entered = ref [] in
    let unwind () =
      Sync_platform.Fault.mask (fun () ->
          List.iter (fun w -> w.Compile.undo ()) !entered;
          t.engine.Engine.poke ())
    in
    (try
       List.iter
         (fun w ->
           w.Compile.prologue ();
           entered := w :: !entered)
         wrappers
     with e ->
       unwind ();
       raise e);
    (match body () with
    | v ->
      Sync_platform.Fault.mask (fun () ->
          List.iter (fun w -> w.Compile.epilogue ()) wrappers;
          t.engine.Engine.poke ());
      Sync_trace.Probe.span Op ~site:"pathexpr.op" ~since:t0 ~arg:0;
      v
    | exception e ->
      unwind ();
      raise e)

let ops t = List.map fst t.table

let spec t = t.spec

let engine_name t = t.engine.Engine.name
