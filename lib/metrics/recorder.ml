type t = {
  ops : string array;
  hists : Histogram.t array;
  fail_counts : int array;
}

let create ~ops () =
  if Array.length ops = 0 then invalid_arg "Recorder.create: no ops";
  { ops = Array.copy ops;
    hists = Array.init (Array.length ops) (fun _ -> Histogram.create ());
    fail_counts = Array.make (Array.length ops) 0 }

let op_names t = Array.copy t.ops

let record t ~op ~ns = Histogram.record t.hists.(op) ns

let record_failure t ~op = t.fail_counts.(op) <- t.fail_counts.(op) + 1

let ops_recorded t =
  Array.fold_left (fun acc h -> acc + Histogram.count h) 0 t.hists

let failures t = Array.fold_left ( + ) 0 t.fail_counts

let op_count t ~op = Histogram.count t.hists.(op)

let op_failures t ~op = t.fail_counts.(op)

let hist t ~op = t.hists.(op)

let merge = function
  | [] -> invalid_arg "Recorder.merge: empty list"
  | first :: rest ->
    let out = create ~ops:first.ops () in
    let add src =
      if src.ops <> out.ops then invalid_arg "Recorder.merge: ops mismatch";
      Array.iteri
        (fun i h -> Histogram.merge_into ~into:out.hists.(i) h)
        src.hists;
      Array.iteri
        (fun i n -> out.fail_counts.(i) <- out.fail_counts.(i) + n)
        src.fail_counts
    in
    add first;
    List.iter add rest;
    out
