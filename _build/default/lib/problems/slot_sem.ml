(** One-slot buffer with semaphores: the alternation is encoded in two
    binary token streams ([may_put]/[may_get]) that hand the turn back
    and forth — history kept as token state. *)

open Sync_platform
open Sync_taxonomy

type t = {
  may_put : Semaphore.Counting.t;
  may_get : Semaphore.Counting.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "semaphore"

let create ~put ~get =
  { may_put = Semaphore.Counting.create 1;
    may_get = Semaphore.Counting.create 0;
    res_put = put; res_get = get }

let put t ~pid v =
  Semaphore.Counting.p t.may_put;
  t.res_put ~pid v;
  Semaphore.Counting.v t.may_get

let get t ~pid =
  Semaphore.Counting.p t.may_get;
  let v = t.res_get ~pid in
  Semaphore.Counting.v t.may_put;
  v

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation",
         [ "P(may_put)"; "V(may_get)"; "P(may_get)"; "V(may_put)" ]);
        ("slot-access-exclusion", [ "token"; "handoff" ]) ]
    ~info_access:
      [ (Info.History, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "turn tokens encode which operation happened last" ]
    ~separation:Meta.Separated ()
