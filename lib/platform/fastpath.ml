(* One process-wide switch, consulted at primitive *creation* time only.
   Keeping the decision out of the hot paths means a default-tier mutex
   costs exactly what it did before this module existed, and a fast-tier
   mutex never re-checks the flag while locking. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* Deterministic runs must stay deterministic: inside [Detrt.run] the
   scheduler owns every blocking decision, so the adaptive tier — whose
   whole point is to race CAS attempts against real parallel threads —
   is forced off no matter what the flag says. *)
let active () = Atomic.get enabled_flag && not (Detrt.active ())

let with_enabled f =
  let prev = Atomic.get enabled_flag in
  Atomic.set enabled_flag true;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag prev) f
