lib/platform/semaphore.ml: Condition Mutex Waitq
