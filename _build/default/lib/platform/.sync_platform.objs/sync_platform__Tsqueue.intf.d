lib/platform/tsqueue.mli:
