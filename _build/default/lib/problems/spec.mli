(** Problem specifications: the paper's Section 4.1 test set.

    Each canonical problem is described by its operations, its constraint
    set (in the paper's if-condition-then form, classified by
    {!Sync_taxonomy.Constr.cls}), and the information categories its
    constraints refer to — which is precisely why it is in the test set. *)

open Sync_taxonomy

type t = {
  name : string;
  description : string;
  ops : string list;
  constraints : Constr.t list;
  info : Info.kind list;  (** categories this problem was chosen to cover *)
}

val make :
  name:string -> description:string -> ops:string list ->
  constraints:Constr.t list -> t
(** [info] is derived as the union of the constraints' info lists. *)

val find_constraint : t -> string -> Constr.t
(** @raise Not_found on an unknown constraint id. *)

val pp : Format.formatter -> t -> unit
