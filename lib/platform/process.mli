(** Process abstraction: spawn concurrent activities on a chosen backend.

    The paper's subjects are blocking-semantics constructs, whose behaviour
    depends on interleaving rather than physical parallelism. We therefore
    run "processes" as OCaml systhreads by default (cheap, preemptive), and
    as OCaml 5 domains when true parallelism is wanted (dedicated test
    suites and benches). The two backends expose one interface so every
    solution and workload is backend-agnostic. *)

type backend = [ `Thread | `Domain | `Det ]

type t
(** A running process handle. *)

val default_backend : backend ref
(** Backend used when [spawn] is not given one; initially [`Thread]. *)

val mode : unit -> backend
(** The backend the next [spawn] will effectively use: [`Det] whenever a
    {!Detrt} deterministic run is in progress, [!default_backend]
    otherwise. *)

val spawn : ?name:string -> ?backend:backend -> (unit -> unit) -> t
(** Start [f] concurrently. Any exception escaping [f] is captured and
    re-raised by {!join}. Inside a {!Detrt} run the [backend] argument is
    overridden: processes always spawn as deterministic virtual tasks
    ([`Det]), so the scenario drivers work unchanged under controlled
    scheduling. [name] labels the process in {!Deadlock} watchdog cycle
    reports (det tasks are named natively; thread/domain processes
    register the name with the watchdog when it is enabled). *)

val join : t -> unit
(** Wait for completion; re-raises the process's escaped exception, if
    any. *)

val run_all : ?backend:backend -> (unit -> unit) list -> unit
(** Spawn every function, then join them all. If several fail, the first
    (by list position) exception is re-raised after all joins complete. *)

val parallelism_available : unit -> int
(** Domains the runtime recommends ([Domain.recommended_domain_count]). *)
