lib/problems/rw_path.ml: Info Meta Rw_intf Sync_pathexpr Sync_taxonomy
