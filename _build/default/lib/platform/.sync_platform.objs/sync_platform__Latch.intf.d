lib/platform/latch.mli:
