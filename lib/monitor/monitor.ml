open Sync_platform
module Probe = Sync_trace.Probe

type discipline = [ `Hoare | `Mesa ]

let abort_policy : Fault.abort_policy = `Propagate

(* One low-level lock protects all queues and the [busy] flag. Waking a
   thread parked on [entry] or [urgent] transfers monitor ownership to it
   ([busy] stays true). Waking a thread parked on a condition transfers
   ownership under the Hoare discipline only; under Mesa the woken thread
   re-acquires through the entry path.

   Exception safety: every wake that transfers ownership pairs with an
   [on_abort] that re-grants the monitor, so a process aborting between
   being woken and running leaves [busy]/queues consistent (abort policy:
   propagate). *)
type t = {
  lock : Mutex.t;
  disc : discipline;
  mutable busy : bool;
  entry : unit Waitq.t;
  urgent : unit Waitq.t;
}

let create ?(discipline = `Hoare) () =
  { lock = Mutex.create ~name:"monitor.lock" (); disc = discipline;
    busy = false;
    entry = Waitq.create ~name:"monitor.entry" ();
    urgent = Waitq.create ~name:"monitor.urgent" () }

let discipline t = t.disc

(* Must hold t.lock. Urgent waiters (parked signallers) beat the entry
   queue, per Hoare'74. *)
let grant t =
  if Waitq.wake_first t.urgent then ()
  else if Waitq.wake_first t.entry then ()
  else t.busy <- false

let enter t =
  let t0 = Probe.now () in
  Mutex.protect t.lock (fun () ->
      if t.busy then
        Waitq.wait t.entry ~lock:t.lock () ~on_abort:(fun () -> grant t)
      else t.busy <- true);
  Probe.span Acquire ~site:"monitor" ~since:t0 ~arg:0

(* Must hold t.lock; the caller does NOT own the monitor (its grant was
   passed on when it began waiting or signalling). Re-acquires through
   the entry queue before an abort propagates, so the caller's unwind
   always runs as owner — the condition-variable contract (POSIX
   reacquires the lock even for a cancelled wait). Masked: recovery is
   not an injection point. *)
let reacquire t =
  Fault.mask (fun () ->
      if t.busy then
        Waitq.wait t.entry ~lock:t.lock () ~on_abort:(fun () -> grant t)
      else t.busy <- true)

let exit t = Mutex.protect t.lock (fun () -> grant t)

let with_monitor t f =
  enter t;
  let h0 = Probe.now () in
  match f () with
  | v ->
    Probe.span Hold ~site:"monitor" ~since:h0 ~arg:0;
    exit t;
    v
  | exception e ->
    Probe.span Hold ~site:"monitor" ~since:h0 ~arg:0;
    exit t;
    raise e

let entry_waiters t = Mutex.protect t.lock (fun () -> Waitq.length t.entry)

module Cond = struct
  type monitor = t

  type t = { mon : monitor; q : int Waitq.t }

  let create mon = { mon; q = Waitq.create ~name:"monitor.cond" () }

  let rank_cmp = (compare : int -> int -> int)

  let wait_pri c rank =
    let m = c.mon in
    Mutex.protect m.lock (fun () ->
        grant m;
        match
          match m.disc with
          | `Hoare ->
            (* The wake we consumed was a Hoare handoff (ownership plus
               the signalled predicate): pass both to the next waiter of
               the same condition — solutions that signal exactly (e.g.
               an [if]-guarded turn queue) rely on the wake not being
               lost — else release the monitor. *)
            Waitq.wait c.q ~lock:m.lock rank ~on_abort:(fun () ->
                if not (Waitq.wake_min c.q ~cmp:rank_cmp) then grant m)
          | `Mesa ->
            (* Mesa wakes are advisory, but still wake exactly one
               process: re-route a consumed-then-aborted wake so a
               true-guard waiter is not left unwoken. *)
            Waitq.wait c.q ~lock:m.lock rank ~on_abort:(fun () ->
                ignore (Waitq.wake_min c.q ~cmp:rank_cmp));
            (* Signal-and-continue: compete for the monitor again. *)
            if m.busy then
              Waitq.wait m.entry ~lock:m.lock () ~on_abort:(fun () -> grant m)
            else m.busy <- true
        with
        | () -> ()
        | exception e ->
          (* The wait aborted after this process gave the monitor away;
             its unwind (Protected, with_monitor) will exit as owner, so
             get ownership back before the abort surfaces. *)
          reacquire m;
          raise e)

  let wait c = wait_pri c 0

  let signal c =
    let m = c.mon in
    Mutex.protect m.lock (fun () ->
        if not (Waitq.is_empty c.q) then begin
          if Probe.enabled () then
            Probe.instant Signal ~site:"monitor.cond" ~arg:(Waitq.length c.q);
          match m.disc with
          | `Hoare -> (
            (* Transfer the monitor to the chosen waiter; park on urgent. *)
            ignore (Waitq.wake_min c.q ~cmp:rank_cmp);
            match
              Waitq.wait m.urgent ~lock:m.lock () ~on_abort:(fun () -> grant m)
            with
            | () -> ()
            | exception e ->
              reacquire m;
              raise e)
          | `Mesa -> ignore (Waitq.wake_min c.q ~cmp:rank_cmp)
        end)

  let broadcast c =
    let m = c.mon in
    match m.disc with
    | `Mesa ->
      Mutex.protect m.lock (fun () -> ignore (Waitq.wake_all c.q))
    | `Hoare ->
      (* Cascade of signal-and-waits through the waiters present NOW: a
         woken waiter that re-waits gets a fresh (younger) queue position,
         so waking the oldest [n] times reaches exactly the original
         waiters and the cascade terminates even if they all re-wait. *)
      let n = Mutex.protect m.lock (fun () -> Waitq.length c.q) in
      for _ = 1 to n do
        Mutex.protect m.lock (fun () ->
            if not (Waitq.is_empty c.q) then begin
              ignore (Waitq.wake_min c.q ~cmp:rank_cmp);
              match
                Waitq.wait m.urgent ~lock:m.lock ()
                  ~on_abort:(fun () -> grant m)
              with
              | () -> ()
              | exception e ->
                reacquire m;
                raise e
            end)
      done

  let queue c =
    let m = c.mon in
    Mutex.protect m.lock (fun () -> not (Waitq.is_empty c.q))

  let count c =
    let m = c.mon in
    Mutex.protect m.lock (fun () -> Waitq.length c.q)

  let min_rank c =
    let m = c.mon in
    Mutex.protect m.lock (fun () -> Waitq.min_tag c.q ~cmp:rank_cmp)
end
