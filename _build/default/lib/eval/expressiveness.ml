open Sync_taxonomy

type cell = { level : Meta.support option; evidence : string list }

type t = (string * (Info.kind * cell) list) list

let rank = function
  | Meta.Direct -> 2
  | Meta.Indirect -> 1
  | Meta.Unsupported -> 0

let better a b = if rank a >= rank b then a else b

let matrix entries =
  List.map
    (fun mech ->
      let mine =
        List.filter
          (fun e -> e.Registry.meta.Meta.mechanism = mech)
          entries
      in
      let cells =
        List.map
          (fun kind ->
            let hits =
              List.filter_map
                (fun e ->
                  match
                    List.assoc_opt kind e.Registry.meta.Meta.info_access
                  with
                  | Some lvl -> Some (lvl, Meta.id e.Registry.meta)
                  | None -> None)
                mine
            in
            let level =
              List.fold_left
                (fun acc (lvl, _) ->
                  match acc with
                  | None -> Some lvl
                  | Some best -> Some (better best lvl))
                None hits
            in
            let evidence =
              match level with
              | None -> []
              | Some best ->
                List.filter_map
                  (fun (lvl, id) -> if lvl = best then Some id else None)
                  hits
            in
            (kind, { level; evidence }))
          Info.all
      in
      (mech, cells))
    (Registry.mechanisms @ Registry.extension_mechanisms)

(* Section-5 conclusions, transcribed. The paper analyzed path
   expressions, monitors and serializers; rows for the semaphore baseline
   and the CSP extension are our own application of the method and have
   no paper counterpart. *)
let paper_expectation =
  [ ( "pathexpr",
      [ (Info.Request_type, Meta.Direct);
        (Info.Request_time, Meta.Indirect);
        (Info.Parameters, Meta.Unsupported);
        (Info.Sync_state, Meta.Indirect);
        (Info.Local_state, Meta.Indirect);
        (Info.History, Meta.Direct) ] );
    ( "monitor",
      [ (Info.Request_type, Meta.Direct);
        (Info.Request_time, Meta.Direct);
        (Info.Parameters, Meta.Direct);
        (Info.Sync_state, Meta.Indirect);
        (Info.Local_state, Meta.Direct);
        (Info.History, Meta.Indirect) ] );
    ( "serializer",
      [ (Info.Request_type, Meta.Direct);
        (Info.Request_time, Meta.Direct);
        (Info.Parameters, Meta.Direct);
        (Info.Sync_state, Meta.Direct);
        (Info.Local_state, Meta.Direct);
        (Info.History, Meta.Indirect) ] ) ]

let agrees_with_paper t =
  List.concat_map
    (fun (mech, expected_cells) ->
      match List.assoc_opt mech t with
      | None -> [ (mech, Info.Request_type, "mechanism missing from matrix") ]
      | Some cells ->
        List.filter_map
          (fun (kind, expected) ->
            match List.assoc_opt kind cells with
            | Some { level = Some got; _ } when got = expected -> None
            | Some { level = Some got; _ } ->
              Some
                ( mech, kind,
                  Printf.sprintf "paper says %s, artifact shows %s"
                    (Meta.support_to_string expected)
                    (Meta.support_to_string got) )
            | Some { level = None; _ } | None ->
              Some (mech, kind, "no solution exercises this category"))
          expected_cells)
    paper_expectation

let pp ppf t =
  Format.fprintf ppf "%-12s" "mechanism";
  List.iter (fun k -> Format.fprintf ppf " %6s" (Info.short k)) Info.all;
  Format.fprintf ppf "@.";
  List.iter
    (fun (mech, cells) ->
      Format.fprintf ppf "%-12s" mech;
      List.iter
        (fun (_, cell) ->
          let sym =
            match cell.level with
            | None -> "?"
            | Some lvl -> Meta.support_symbol lvl
          in
          Format.fprintf ppf " %6s" sym)
        cells;
      Format.fprintf ppf "@.")
    t;
  Format.fprintf ppf
    "(D = direct construct, I = via auxiliary state / synchronization \
     procedures, - = not expressible, ? = not exercised)@."
