lib/problems/alarm_harness.ml: Alarm_intf Array List Mutex Printexc Printf Process Result Sync_platform Testwait Thread
