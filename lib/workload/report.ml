open Sync_metrics

type t = {
  problem : string;
  variant : string;
  mechanism : string;
  tier : string;
  workers : int;
  backend : string;
  mode : string;
  rate_per_s : float option;
  arrival : string option;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  summary : Summary.t;
}

let pp ppf t =
  Format.fprintf ppf "%s/%s@%s%s: %d %s worker(s), %s loop" t.problem
    t.variant t.mechanism
    (if t.tier = "default" then "" else " [" ^ t.tier ^ "]")
    t.workers t.backend t.mode;
  (match t.rate_per_s with
  | Some r ->
    Format.fprintf ppf " @@ %.0f/s %s arrivals" r
      (Option.value t.arrival ~default:"?")
  | None -> ());
  Format.fprintf ppf ", warmup %dms, measured %dms, seed %d@." t.warmup_ms
    t.duration_ms t.seed;
  Summary.pp ppf t.summary

let to_json t =
  Emit.Obj
    [ ("problem", Emit.Str t.problem);
      ("variant", Emit.Str t.variant);
      ("mechanism", Emit.Str t.mechanism);
      ("tier", Emit.Str t.tier);
      ("workers", Emit.Int t.workers);
      ("backend", Emit.Str t.backend);
      ("mode", Emit.Str t.mode);
      ("rate_per_s",
       match t.rate_per_s with Some r -> Emit.Float r | None -> Emit.Null);
      ("arrival",
       match t.arrival with Some a -> Emit.Str a | None -> Emit.Null);
      ("duration_ms", Emit.Int t.duration_ms);
      ("warmup_ms", Emit.Int t.warmup_ms);
      ("seed", Emit.Int t.seed);
      ("summary", Summary.to_json t.summary) ]

let write_json path t = Emit.write_file path (to_json t)

let csv_header =
  "mechanism,problem,variant,tier,workers,backend,mode," ^ Summary.csv_header

let csv_rows t =
  Summary.csv_rows
    ~label:
      [ t.mechanism; t.problem; t.variant; t.tier; string_of_int t.workers;
        t.backend; t.mode ]
    t.summary
