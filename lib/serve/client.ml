open Sync_platform

type t = { cfd : Unix.file_descr; mutable open_ : bool }

let connect sa =
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sa with
  | () -> Ok { cfd = fd; open_ = true }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

let fd t = t.cfd

type error = [ `Closed | `Timeout | `Fail of string ]

let error_to_string = function
  | `Closed -> "closed"
  | `Timeout -> "timeout"
  | `Fail m -> "fail: " ^ m

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.cfd with Unix.Unix_error _ -> ()
  end

let request t ~deadline_ns req =
  if not t.open_ then Error `Closed
  else begin
    (* Reply must land within the budget plus slack; a lost reply (crash,
       chaos drop) then fails typed instead of blocking forever. *)
    let budget_s = Int64.to_float deadline_ns /. 1e9 in
    (try Unix.setsockopt_float t.cfd Unix.SO_RCVTIMEO (budget_s +. 0.25)
     with Unix.Unix_error _ -> ());
    match Wire.write_frame t.cfd (Wire.encode_request ~deadline_ns req) with
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Error `Closed
    | exception Unix.Unix_error (e, _, _) -> Error (`Fail (Unix.error_message e))
    | () -> (
      match Wire.read_frame t.cfd with
      | Error (Wire.Eof | Wire.Truncated) -> Error `Closed
      | Error Wire.Timeout -> Error `Timeout
      | Error (Wire.Oversized n) ->
        Error (`Fail (Printf.sprintf "oversized reply (%d)" n))
      | Error (Wire.Conn_error m) -> Error (`Fail m)
      | Ok payload -> (
        match Wire.decode_reply payload with
        | Ok r -> Ok r
        | Error m -> Error (`Fail m)))
  end

let backoff_ms ~rng ~attempt ~base_ms ~cap_ms =
  let attempt = min attempt 16 (* 2^16 * base overflows nothing, caps anyway *) in
  let ceiling = min cap_ms (base_ms * (1 lsl attempt)) in
  let ceiling = max 1 ceiling in
  1 + Prng.int rng ceiling
