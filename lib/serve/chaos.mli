(** Connection-level chaos (E24): seeded byte-level faults on the
    server's read/write sites, replayable by seed.

    Two injection paths compose at every site:

    - the {b seeded layer}: each connection derives a private
      {!Sync_platform.Prng} stream from [(config.seed, conn_id)] and
      draws one action per site hit, so a whole chaotic run replays
      byte-for-byte from its seed — connection by connection,
      independent of scheduling;
    - the {b E19 fault registry}: every decision first hits the named
      {!Sync_platform.Fault} sites ["serve.conn.read"] /
      ["serve.conn.write"], so deterministic plans
      ([Fault.plan [("serve.conn.write", Nth 3)]]) can force a reset at
      an exact protocol step, exactly like the in-process abort sites.

    Actions model the classic failure menu: [Drop] loses the frame
    (reads: the request is read then discarded, so the client only
    learns via its deadline; writes: the reply is never sent), [Delay]
    holds the frame for a few milliseconds, [Truncate] sends a prefix
    of the frame and hard-closes (the peer sees a torn frame), [Reset]
    hard-closes immediately. *)

type action = Pass | Drop | Delay_ms of int | Truncate of int | Reset

type config = {
  seed : int;
  drop : float;  (** probability a frame is silently lost *)
  delay : float;  (** probability a frame is held [delay_ms] *)
  delay_ms : int;
  truncate : float;  (** probability a write sends a prefix then closes *)
  reset : float;  (** probability the connection is hard-closed *)
}

val default_config : ?seed:int -> unit -> config
(** A lively but survivable mix (a few percent per class), seed 0 by
    default. *)

type t
(** Per-connection chaos state. *)

val disabled : t
(** Never acts (and never consults the fault registry). *)

val create : config -> conn_id:int -> t

val active : t -> bool

exception Injected_reset of string
(** Raised by {!on_read}/{!on_write} when the drawn (or fault-planned)
    action kills the connection; payload names the site. The server
    maps it to a hard close. *)

val on_read : t -> (unit -> 'a) -> [ `Data of 'a | `Dropped ]
(** Run the framed read under the connection's chaos policy: possibly
    delayed; [`Dropped] when the read result must be discarded.
    @raise Injected_reset when the connection is to be reset. *)

val on_write : t -> Unix.file_descr -> string -> unit
(** Write one frame under the chaos policy (drop / delay / truncate /
    reset); a truncating write sends the prefix raw — deliberately torn
    — then raises. @raise Injected_reset on truncate and reset. *)

val trace : t -> string list
(** Actions taken so far on this connection, oldest first — the
    replayable failure trace ("w:reset", "r:delay12", ...). Empty for
    {!disabled}. *)
