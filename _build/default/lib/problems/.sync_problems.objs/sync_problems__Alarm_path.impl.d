lib/problems/alarm_path.ml: Heap Info Meta Semaphore Sync_pathexpr Sync_platform Sync_taxonomy
