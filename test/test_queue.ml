(* E23 scalable-lock tier: FIFO handoff of the queue locks read off a
   logged register substrate, exclusion storms, timed-wait abandonment
   through the platform mutex, and the epoch read-mostly lock's grace
   period and writer exclusion. *)

open Sync_platform
open Sync_problems
module Queuelock = Sync_prims.Queuelock

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_result name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

(* ------------------------------------------------------------------ *)
(* A {!Sync_prims.Regs.FULL} instance over SC atomics that journals
   every successful RMW commit (register uid, committing thread,
   installed value). The journal mutex is held across the atomic op,
   so journal order IS commit order — which lets the FIFO property
   read queue-arrival order straight off the protocol's own
   tail/ticket register instead of trusting wall-clock timing. *)

module Logged_regs = struct
  type commit = { uid : int; tid : int; rmw : [ `Cas | `Faa ]; installed : int }

  let jm = Stdlib.Mutex.create ()

  let journal : commit list ref = ref []

  let next_uid = ref 0

  let reset () =
    Stdlib.Mutex.lock jm;
    journal := [];
    next_uid := 0;
    Stdlib.Mutex.unlock jm

  let commits () =
    Stdlib.Mutex.lock jm;
    let l = List.rev !journal in
    Stdlib.Mutex.unlock jm;
    l

  type t = { uid : int; a : int Atomic.t }

  let make v =
    Stdlib.Mutex.lock jm;
    let uid = !next_uid in
    incr next_uid;
    Stdlib.Mutex.unlock jm;
    { uid; a = Atomic.make v }

  let get r = Atomic.get r.a

  let set r v = Atomic.set r.a v

  let record uid rmw installed =
    let tid = Thread.id (Thread.self ()) in
    journal := { uid; tid; rmw; installed } :: !journal

  let cas r seen v =
    Stdlib.Mutex.lock jm;
    let ok = Atomic.compare_and_set r.a seen v in
    if ok then record r.uid `Cas v;
    Stdlib.Mutex.unlock jm;
    ok

  let faa r n =
    Stdlib.Mutex.lock jm;
    let prev = Atomic.fetch_and_add r.a n in
    record r.uid `Faa (prev + n);
    Stdlib.Mutex.unlock jm;
    prev

  let await ~watch:_ pred =
    while not (pred ()) do
      Thread.yield ()
    done
end

module QL = Queuelock.Make (Logged_regs)

(* ------------------------------------------------------------------ *)
(* FIFO handoff. Every queue lock's enqueue point is one committed RMW
   on the first register it creates (uid 0): the MCS/CLH tail swap, or
   the ticket FAA. FIFO means the sequence of threads committing there
   equals the sequence of threads subsequently entering the critical
   section — exactly, over the whole storm. *)

(* Which uid-0 commits are arrivals: MCS unlock also CASes the tail
   (installing 0, queue-empty), so those are filtered; CLH and Ticket
   touch uid 0 only on the lock path. *)
let arrival_filter kind (c : Logged_regs.commit) =
  c.uid = 0
  && match kind with Queuelock.MCS -> c.installed <> 0 | _ -> true

let fifo_storm kind =
  Logged_regs.reset ();
  let threads = 4 and rounds = 50 in
  let lock, unlock =
    match kind with
    | Queuelock.MCS ->
      let l = QL.Mcs.create ~slots:threads () in
      ((fun slot -> QL.Mcs.lock l ~slot), fun slot -> QL.Mcs.unlock l ~slot)
    | Queuelock.CLH ->
      let l = QL.Clh.create ~slots:threads () in
      ((fun slot -> QL.Clh.lock l ~slot), fun slot -> QL.Clh.unlock l ~slot)
    | Queuelock.Ticket ->
      let l = QL.Ticket.create () in
      ((fun _ -> QL.Ticket.lock l), fun _ -> QL.Ticket.unlock l)
  in
  let g = Testutil.Gauge.create () in
  (* Written only inside the critical section the lock itself guards. *)
  let acquisitions = ref [] in
  let worker i () =
    let p = Prng.make (Int64.of_int (0xE23 + i)) in
    for _ = 1 to rounds do
      lock i;
      Testutil.Gauge.enter g;
      acquisitions := Thread.id (Thread.self ()) :: !acquisitions;
      Testutil.Gauge.leave g;
      unlock i;
      (* Seeded jitter so arrival patterns vary across rounds. *)
      if Prng.int p 4 = 0 then Thread.yield ()
    done
  in
  Process.run_all ~backend:`Thread (List.init threads worker);
  check_int "never two holders" 1 (Testutil.Gauge.max g);
  let arrivals =
    List.filter_map
      (fun c -> if arrival_filter kind c then Some c.Logged_regs.tid else None)
      (Logged_regs.commits ())
  in
  check_int "one enqueue commit per acquisition" (threads * rounds)
    (List.length arrivals);
  Alcotest.(check (list int)) "CS entry order equals enqueue order" arrivals
    (List.rev !acquisitions)

let test_fifo_mcs () = fifo_storm Queuelock.MCS

let test_fifo_clh () = fifo_storm Queuelock.CLH

let test_fifo_ticket () = fifo_storm Queuelock.Ticket

(* ------------------------------------------------------------------ *)
(* Timed-wait abandonment through the platform mutex. The queue tier's
   [try_lock] never publishes a waiter node, so a timed-out caller
   leaves no stale queue entry behind: after the holder releases, a
   full storm of plain acquisitions must run to completion (a leaked
   node would deadlock the FIFO chain = a lost wakeup). *)

let abandonment_storm kind =
  let m = Queuelock.with_kind kind (fun () -> Mutex.create ()) in
  check_bool "queue tier selected" true
    (match m.Mutex.impl with
    | Mutex.Queue q -> q.Queuelock.qk_kind = kind
    | _ -> false);
  Mutex.lock m;
  let failures = Atomic.make 0 in
  let attempts =
    List.init 3 (fun _ ->
        Testutil.spawn (fun () ->
            if not (Mutex.try_lock_for m ~timeout_ns:(Testutil.ns_of_s 0.02))
            then Atomic.incr failures))
  in
  List.iter Process.join attempts;
  check_int "timed attempts expired while held" 3 (Atomic.get failures);
  Mutex.unlock m;
  let count = ref 0 in
  let iters = 200 in
  let worker () =
    for _ = 1 to iters do
      Mutex.lock m;
      incr count;
      Mutex.unlock m
    done
  in
  Process.run_all ~backend:`Thread [ worker; worker; worker; worker ];
  check_int "no lost wakeups after abandonment" (4 * iters) !count;
  check_bool "free lock still takes try_lock" true (Mutex.try_lock m);
  Mutex.unlock m

let test_abandon_mcs () = abandonment_storm Queuelock.MCS

let test_abandon_clh () = abandonment_storm Queuelock.CLH

let test_abandon_ticket () = abandonment_storm Queuelock.Ticket

(* ------------------------------------------------------------------ *)
(* Epoch read-mostly lock (E23). *)

(* Grace period: a writer that has raised intent must not proceed while
   any slot is mid-section, and must be admitted once the reader
   leaves. *)
let test_epoch_grace_period () =
  let t = Epochrw.create () in
  Epochrw.read_lock t;
  check_int "one reader in-slot" 1 (Epochrw.readers t);
  let entered = Atomic.make false in
  let w =
    Testutil.spawn (fun () ->
        Epochrw.write_lock t;
        Atomic.set entered true;
        Epochrw.write_unlock t)
  in
  Testutil.eventually "writer raises intent" (fun () ->
      Epochrw.writer_active t);
  Testutil.never "writer entered over a live reader" (fun () ->
      Atomic.get entered);
  Epochrw.read_unlock t;
  Testutil.eventually "writer admitted after the grace period" (fun () ->
      Atomic.get entered);
  Process.join w;
  check_int "no readers left" 0 (Epochrw.readers t);
  check_bool "intent cleared" false (Epochrw.writer_active t)

(* Reader retreat: a reader arriving during a write section parks until
   the writer leaves. *)
let test_epoch_reader_blocked_by_writer () =
  let t = Epochrw.create () in
  Epochrw.write_lock t;
  let entered = Atomic.make false in
  let r =
    Testutil.spawn (fun () ->
        Epochrw.read_lock t;
        Atomic.set entered true;
        Epochrw.read_unlock t)
  in
  Testutil.never "reader entered during the write" (fun () ->
      Atomic.get entered);
  Epochrw.write_unlock t;
  Testutil.eventually "reader admitted after the write" (fun () ->
      Atomic.get entered);
  Process.join r;
  check_int "drained" 0 (Epochrw.readers t)

(* Seeded storm: writers exclude each other and never run over an
   in-section reader. *)
let test_epoch_storm () =
  let t = Epochrw.create () in
  let wg = Testutil.Gauge.create () in
  let rg = Testutil.Gauge.create () in
  let overlap = Atomic.make false in
  let reader i () =
    let p = Prng.make (Int64.of_int (100 + i)) in
    for _ = 1 to 300 do
      Epochrw.with_read t (fun () ->
          Testutil.Gauge.enter rg;
          Testutil.Gauge.leave rg);
      if Prng.int p 8 = 0 then Thread.yield ()
    done
  in
  let writer i () =
    let p = Prng.make (Int64.of_int (200 + i)) in
    for _ = 1 to 60 do
      Epochrw.with_write t (fun () ->
          Testutil.Gauge.enter wg;
          if Testutil.Gauge.current rg > 0 then Atomic.set overlap true;
          Testutil.Gauge.leave wg);
      if Prng.int p 4 = 0 then Thread.yield ()
    done
  in
  Process.run_all ~backend:`Thread (List.init 4 reader @ List.init 2 writer);
  check_int "one writer at a time" 1 (Testutil.Gauge.max wg);
  check_bool "no reader inside a write section" false (Atomic.get overlap);
  check_int "all slots drained" 0 (Epochrw.readers t)

(* The Rw_epoch mechanism through the shared readers-writers harness:
   the same exclusion stress and reader-overlap scenario every other
   mechanism passes. *)
let test_rw_epoch_exclusion () =
  check_result "epoch exclusion"
    (Rw_harness.verify_exclusion ~readers:6 ~writers:3 ~reads_each:25
       ~writes_each:8
       (module Rw_epoch.Read_mostly))

let test_rw_epoch_reader_overlap () =
  check_result "epoch reader overlap"
    (Rw_harness.scenario_reader_overlap (module Rw_epoch.Read_mostly))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "queue"
    [ ( "fifo-handoff",
        [ Alcotest.test_case "mcs" `Quick test_fifo_mcs;
          Alcotest.test_case "clh" `Quick test_fifo_clh;
          Alcotest.test_case "ticket" `Quick test_fifo_ticket ] );
      ( "abandonment",
        [ Alcotest.test_case "mcs" `Quick test_abandon_mcs;
          Alcotest.test_case "clh" `Quick test_abandon_clh;
          Alcotest.test_case "ticket" `Quick test_abandon_ticket ] );
      ( "epoch",
        [ Alcotest.test_case "grace period" `Quick test_epoch_grace_period;
          Alcotest.test_case "reader blocked by writer" `Quick
            test_epoch_reader_blocked_by_writer;
          Alcotest.test_case "storm" `Quick test_epoch_storm;
          Alcotest.test_case "harness exclusion" `Quick
            test_rw_epoch_exclusion;
          Alcotest.test_case "harness reader overlap" `Quick
            test_rw_epoch_reader_overlap ] ) ]
