(** Compact text timeline of a probe snapshot: one line per event with
    a rebased microsecond offset, actor lane, kind, site, duration and
    argument. The visual form of a deterministic-schedule replay
    ([bloom_eval explore SCENARIO --replay SCHEDULE]). *)

val pp : Format.formatter -> Probe.event list -> unit

val to_string : Probe.event list -> string
