examples/pathexpr_tour.mli:
