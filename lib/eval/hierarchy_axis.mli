(** The hardware-primitive hierarchy axis (E25).

    Herlihy's hierarchy ranks atomic primitives by what they can build;
    this axis measures the question on the repo's own mechanisms. Every
    registered mechanism x problem load target is rebuilt with the
    platform's mutexes and counting semaphores constructed from one
    restricted atomic class ({!Sync_prims.Prims}) — read/write registers
    (Lamport bakery with the bounded-timestamp fix), CAS only, FAA only
    (ticket), or LL/SC emulated from CAS with ABA tags — and driven by
    the E20 workload engine, against the unrestricted native substrate.

    Each grid cell records one of three {e typed} outcomes: supported
    (with measured throughput and latency), unsupported (the class
    cannot express a primitive the mechanism needs — e.g. read/write
    registers cannot grant FCFS semaphore wakeups, which take an
    order-assigning RMW), or failed (the construction ran but a
    self-checking resource caught a correctness violation). A complete
    scorecard has zero failures: inexpressibility is a result, a crash
    is a bug. *)

module Prims = Sync_prims.Prims

type status =
  | Supported
  | Unsupported of { feature : string; reason : string }
      (** the class rejected a primitive at construction, typed
          ({!Prims.Unsupported}) *)
  | Failed of string  (** ran but violated a resource check, or errored *)

type row = {
  cls : Prims.cls;
  problem : string;
  mechanism : string;
  domains : int;  (** worker domains; [0] on unsupported/probe rows *)
  status : status;
  throughput_per_s : float;  (** [0.] unless [Supported] *)
  p50_ns : int;
  p99_ns : int;
}

type spec = {
  classes : Prims.cls list;
  problems : string list;
  mechanisms : string list option;
      (** [None] = every mechanism the workload engine offers for each
          problem; [Some ms] filters to those *)
  domains : int list;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
}

val default_spec : unit -> spec
(** All five classes x {bounded-buffer, fcfs, readers-writers} x all
    mechanisms x domain counts [1; 4]; steady window from
    [SYNC_LOAD_MS] (default 100 ms), closed loop on domains. *)

val run : ?progress:(row -> unit) -> spec -> row list
(** Run the grid class-major (then problem, mechanism, domain count).
    Support is probed once per class x pair: a rejected construction
    yields a single [Unsupported] row with [domains = 0] instead of one
    per domain count. Never raises on a cell: every outcome is a row. *)

val all_ok : row list -> bool
(** No [Failed] rows. [Unsupported] is a valid scorecard outcome. *)

val status_string : status -> string

val pp : Format.formatter -> row list -> unit
(** Human scorecard, grouped by class. *)

val row_to_json : row -> Sync_metrics.Emit.t

val to_json : spec -> row list -> Sync_metrics.Emit.t
(** The committed [BENCH_E25.json] document: grid metadata plus one row
    per cell with a ["status"] discriminator. *)
