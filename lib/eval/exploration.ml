(* The exploration axis (E26): naive bounded DFS vs dynamic partial-order
   reduction over the scenario catalog, at a shared schedule budget per
   row. Where both engines complete, the row is a soundness check (the
   distinct failure modes must agree and DPOR must have explored no more
   schedules); where only DPOR completes, the row is the point of the
   axis — full coverage of a schedule tree naive DFS cannot finish, with
   the anomaly set (or its absence) machine-checked over every
   equivalence class. *)

module D = Sync_detsched.Detsched
module Scenarios = Sync_detsched.Scenarios

type engine = {
  explored : int;
  complete : bool;
  modes : string list; (* distinct failure messages *)
  secs : float;
}

type row = {
  scenario : string;
  budget : int; (* max_schedules, same for both engines *)
  dfs : engine;
  dpor : engine;
  races : int; (* backtrack points the DPOR analysis planted *)
  workers : int;
}

let distinct_modes failures = List.sort_uniq compare (List.map snd failures)

(* Failure-mode comparison needs the caps off; the budgets here keep the
   failing-schedule counts far below this. *)
let max_failures = 1_000_000

let measure ?(workers = 1) ~budget sc =
  let d = D.explore_dfs ~max_schedules:budget ~max_failures sc in
  let p = D.explore_dpor ~max_schedules:budget ~max_failures ~workers sc in
  { scenario = sc.D.name;
    budget;
    dfs =
      { explored = d.D.explored; complete = d.D.complete;
        modes = distinct_modes d.D.failures; secs = d.D.secs };
    dpor =
      { explored = p.D.explored; complete = p.D.complete;
        modes = distinct_modes p.D.failures; secs = p.D.secs };
    races = p.D.races;
    workers = p.D.workers }

let catalog name ~budget ?workers () =
  match Scenarios.find name with
  | Some e -> measure ?workers ~budget e.Scenarios.scen
  | None -> invalid_arg ("Exploration.run: no catalog scenario " ^ name)

(* The default matrix stays CI-sized; [deep] adds shapes that push the
   engine to (and past) its frontier and is meant for the non-blocking
   dpor-deep job. The storm rows keep [workers = 1] regardless: the
   fault registry is process-global (see {!Sync_detsched.Scenarios}). *)
let run ?(deep = false) ?(workers = 1) ?(progress = fun (_ : row) -> ()) () =
  let note r =
    progress r;
    r
  in
  let w = max 1 workers in
  let base =
    [ (fun () -> catalog "deadlock-abba" ~budget:10_000 ~workers:w ());
      (fun () -> catalog "bb-sem-small" ~budget:30_000 ~workers:w ());
      (fun () -> catalog "storm-bb-sem-1p1c2i" ~budget:8_000 ());
      (fun () -> catalog "rw-fig1" ~budget:50_000 ~workers:w ()) ]
  in
  let deep_rows =
    [ (fun () -> catalog "rw-ser" ~budget:50_000 ~workers:w ());
      (fun () -> catalog "rw-fig2" ~budget:50_000 ~workers:w ());
      (fun () -> catalog "rw-mon-excl" ~budget:100_000 ~workers:w ());
      (fun () ->
        measure ~workers:1 ~budget:60_000
          (Scenarios.storm_bb_sem ~items:3 ()));
      (fun () ->
        measure ~workers:w ~budget:100_000
          (Scenarios.bb_sized "bb-sem-1p1c3i" (module Sync_problems.Bb_sem)
             ~capacity:1 ~producers:1 ~consumers:1 ~items:3)) ]
  in
  List.map
    (fun f -> note (f ()))
    (if deep then base @ deep_rows else base)

(* Soundness over a row list: wherever the ground truth exists (DFS
   completed), DPOR must agree on the failure modes, must also have
   completed, and must not have explored more schedules. *)
let sound rows =
  List.for_all
    (fun r ->
      (not r.dfs.complete)
      || (r.dpor.complete
         && r.dpor.modes = r.dfs.modes
         && r.dpor.explored <= r.dfs.explored))
    rows

let verdict r =
  if r.dfs.complete && r.dpor.complete then
    if r.dpor.modes = r.dfs.modes && r.dpor.explored <= r.dfs.explored then
      "agree"
    else "DISAGREE"
  else if r.dpor.complete then "dpor-only"
  else "both-bounded"

let pp ppf rows =
  Format.fprintf ppf "%-22s %9s %16s %16s %7s %6s  %s@." "scenario" "budget"
    "dfs" "dpor" "races" "speed" "verdict";
  List.iter
    (fun r ->
      let eng e =
        Format.asprintf "%d%s" e.explored
          (if e.complete then " full" else " part")
      in
      let reduction =
        if r.dfs.complete && r.dpor.explored > 0 then
          Format.asprintf "%.0fx"
            (float_of_int r.dfs.explored /. float_of_int r.dpor.explored)
        else "-"
      in
      Format.fprintf ppf "%-22s %9d %16s %16s %7d %6s  %s%s@." r.scenario
        r.budget (eng r.dfs) (eng r.dpor) r.races reduction (verdict r)
        (match r.dpor.modes with
        | [] -> ""
        | ms -> "  [" ^ String.concat " | " ms ^ "]"))
    rows

let to_json rows =
  let open Sync_metrics.Emit in
  let eng e =
    Obj
      [ ("explored", Int e.explored); ("complete", Bool e.complete);
        ("failure_modes", List (List.map (fun m -> Str m) e.modes));
        ("secs", Float e.secs) ]
  in
  Obj
    [ ("experiment", Str "E26");
      ( "rows",
        List
          (List.map
             (fun r ->
               Obj
                 [ ("scenario", Str r.scenario); ("budget", Int r.budget);
                   ("dfs", eng r.dfs); ("dpor", eng r.dpor);
                   ("races", Int r.races); ("workers", Int r.workers);
                   ("verdict", Str (verdict r)) ])
             rows) ) ]
