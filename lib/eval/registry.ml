open Sync_taxonomy
open Sync_problems

type entry = {
  meta : Meta.t;
  spec : Spec.t;
  verify : unit -> (unit, string) result;
  expect_conformant : bool;
}

let ( >>> ) a b () = match a () with Ok () -> b () | Error _ as e -> e

let bb (module B : Bb_intf.S) =
  { meta = B.meta; spec = Bb_intf.spec;
    verify =
      (fun () -> Bb_harness.verify (module B))
      >>> (fun () -> Bb_harness.verify ~capacity:1 ~items_per_producer:20 (module B))
      >>> (fun () ->
            Bb_harness.verify ~capacity:3 ~producers:3 ~consumers:2
              ~items_per_producer:30 (module B));
    expect_conformant = true }

let slot (module S : Slot_intf.S) =
  { meta = S.meta; spec = Slot_intf.spec;
    verify =
      (fun () -> Slot_harness.verify (module S))
      >>> (fun () ->
            Slot_harness.verify ~putters:1 ~getters:1 ~items_per_putter:40
              (module S));
    expect_conformant = true }

let fcfs (module F : Fcfs_intf.S) =
  { meta = F.meta; spec = Fcfs_intf.spec;
    verify = (fun () -> Fcfs_harness.verify (module F));
    expect_conformant = true }

let rw ?(expect_conformant = true) (module R : Rw_intf.S) =
  { meta = R.meta; spec = Rw_intf.spec R.policy;
    verify =
      (fun () -> Rw_harness.verify_exclusion (module R))
      >>> (fun () -> Rw_harness.scenario_reader_overlap (module R))
      >>> (fun () -> Rw_harness.verify_policy (module R));
    expect_conformant }

let disk ?(scan = true) (module D : Disk_intf.S) =
  { meta = D.meta; spec = Disk_intf.spec;
    verify =
      (if scan then (fun () -> Disk_harness.verify_scan (module D))
       else fun () -> Ok ())
      >>> (fun () -> Disk_harness.verify_stress (module D));
    expect_conformant = true }

let alarm (module A : Alarm_intf.S) =
  { meta = A.meta; spec = Alarm_intf.spec;
    verify =
      (fun () -> Alarm_harness.verify (module A))
      >>> (fun () -> Alarm_harness.verify ~durations:[ 2; 2; 1; 1; 3; 3 ] (module A))
      >>> (fun () -> Alarm_harness.verify_zero (module A));
    expect_conformant = true }

let all =
  [ (* bounded buffer *)
    bb (module Bb_sem); bb (module Bb_mon); bb (module Bb_ser);
    bb (module Bb_path); bb (module Bb_csp);
    (* FCFS *)
    fcfs (module Fcfs_sem); fcfs (module Fcfs_mon); fcfs (module Fcfs_ser);
    fcfs (module Fcfs_path); fcfs (module Fcfs_csp);
    (* readers-writers *)
    { (rw (module Rw_sem.Readers_prio)) with expect_conformant = false };
    rw (module Rw_sem.Readers_prio_baton);
    rw (module Rw_sem.Writers_prio);
    rw (module Rw_sem.Fcfs);
    rw (module Rw_mon.Readers_prio);
    rw (module Rw_mon.Readers_prio_mesa);
    rw (module Rw_mon.Writers_prio);
    rw (module Rw_mon.Fcfs);
    rw (module Rw_ser.Readers_prio);
    rw (module Rw_ser.Writers_prio);
    rw (module Rw_ser.Fcfs);
    { (rw (module Rw_path.Fig1)) with expect_conformant = false };
    rw (module Rw_path.Fig2);
    rw (module Rw_path.Plain);
    rw (module Rw_csp.Readers_prio);
    rw (module Rw_csp.Fcfs);
    (* E23 scalable tier: the epoch read-mostly path, carried as a
       readers-writers solution so the scaling axis can run it through
       the same harness and registry plumbing as the paper mechanisms.
       It is NOT in [mechanisms] — the taxonomy axes compare the
       paper's six (plus eventcounts); this entry exists for coverage
       resolution and the E23 scaling experiment. *)
    rw (module Rw_epoch.Read_mostly);
    (* disk scheduler *)
    disk (module Disk_sem); disk (module Disk_mon); disk (module Disk_ser);
    disk (module Disk_path); disk (module Disk_csp);
    disk ~scan:false (module Disk_fcfs);
    (* alarm clock *)
    alarm (module Alarm_sem); alarm (module Alarm_mon);
    alarm (module Alarm_ser); alarm (module Alarm_path);
    alarm (module Alarm_csp);
    (* E27 scale tier: the hierarchical timer wheel, carried as an
       alarm-clock solution exactly like the epoch rw entry above — not
       one of the paper's mechanisms, but registry-resolvable so the
       same conformance harness certifies it and the load grid can
       drive it at millions of pending alarms. *)
    alarm (module Alarm_wheel);
    (* one-slot buffer *)
    slot (module Slot_sem); slot (module Slot_mon); slot (module Slot_ser);
    slot (module Slot_path); slot (module Slot_csp);
    (* conditional critical regions: full coverage *)
    bb (module Bb_ccr); fcfs (module Fcfs_ccr);
    rw (module Rw_ccr.Readers_prio);
    rw (module Rw_ccr.Writers_prio);
    rw (module Rw_ccr.Fcfs);
    disk (module Disk_ccr); alarm (module Alarm_ccr); slot (module Slot_ccr);
    (* eventcounts & sequencers: partial coverage by design (E15) — no
       construct for state-dependent scheduling, so readers-writers
       policies and SCAN are out of reach without embedding a server *)
    bb (module Bb_evc); fcfs (module Fcfs_evc); slot (module Slot_evc);
    alarm (module Alarm_evc) ]

let mechanisms =
  [ "semaphore"; "monitor"; "serializer"; "pathexpr"; "csp"; "ccr" ]

let extension_mechanisms = [ "eventcount" ]

let problems =
  [ "bounded-buffer"; "fcfs"; "readers-writers"; "disk-scheduler";
    "alarm-clock"; "one-slot-buffer" ]

let by_mechanism name =
  List.filter (fun e -> e.meta.Meta.mechanism = name) all

let by_problem name = List.filter (fun e -> e.meta.Meta.problem = name) all

let find ~problem ~variant ~mechanism =
  List.find_opt
    (fun e ->
      e.meta.Meta.problem = problem
      && e.meta.Meta.variant = variant
      && e.meta.Meta.mechanism = mechanism)
    all
