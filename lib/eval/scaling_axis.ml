(* E23: the scalable-lock tier, measured. Two grids in one axis:

   - the {e queue grid}: mechanism x problem load targets rebuilt with
     every platform mutex a local-spin queue lock (MCS / CLH /
     proportional-backoff ticket), driven exactly like the E25
     hierarchy cells. A mechanism x problem pair the workload engine
     does not offer is a {e typed} [Unsupported] row, not a silent skip
     and not a fake 0 ops/s cell — the convention E25 set for
     inexpressible primitives, extended here to absent targets;

   - the {e epoch rows}: the readers-writers database on the
     {!Sync_problems.Rw_epoch} read-mostly path at increasing domain
     counts, with closed-loop think time so the comparison measures
     reader-entry scalability rather than how many times one core can
     run the same critical section. The committed rows are what the
     scaling-sanity CI gate checks for monotonic read throughput. *)

open Sync_metrics
open Sync_workload
module Prims = Sync_prims.Prims
module Queuelock = Sync_prims.Queuelock

type status =
  | Supported
  | Unsupported of { feature : string; reason : string }
  | Failed of string

type queue_row = {
  kind : Queuelock.kind;
  problem : string;
  mechanism : string;
  domains : int;
  status : status;
  throughput_per_s : float;
  p50_ns : int;
  p99_ns : int;
}

type epoch_row = {
  e_mechanism : string;
  e_domains : int;
  e_think_us : int;
  e_read_pct : int;
  e_status : status;
  e_read_per_s : float;
  e_throughput_per_s : float;
  e_p50_ns : int;
  e_p99_ns : int;
}

type t = { queue : queue_row list; epoch : epoch_row list }

let empty = { queue = []; epoch = [] }

let is_empty t = t.queue = [] && t.epoch = []

type spec = {
  kinds : Queuelock.kind list;
  problems : string list;
  mechanisms : string list;
  domains : int list;
  epoch_mechanisms : string list;
  epoch_domains : int list;
  think_us : int;
  read_pct : int;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
}

(* The default grid keeps one mechanism per construct family plus the
   two partial-coverage rows that exercise the typed-unsupported path
   (eventcount has no readers-writers target; epoch has nothing but).
   The epoch rows carry a think time because on a host with few cores a
   think-free closed loop saturates at one worker and the domain axis
   measures nothing. *)
let default_spec () =
  { kinds = Queuelock.all;
    problems = [ "bounded-buffer"; "readers-writers" ];
    mechanisms = [ "semaphore"; "monitor"; "ccr"; "eventcount"; "epoch" ];
    domains = [ 1; 4 ];
    epoch_mechanisms = [ "epoch"; "semaphore" ];
    epoch_domains = [ 1; 2; 4 ];
    think_us = 500;
    read_pct = 95;
    duration_ms = Loadgen.duration_from_env ~default:150;
    warmup_ms = 50;
    seed = 42 }

let dead_row ~kind ~problem ~mechanism ~domains status =
  { kind; problem; mechanism; domains; status;
    throughput_per_s = 0.; p50_ns = 0; p99_ns = 0 }

let queue_cell spec ~kind ~problem ~mechanism ~domains =
  let base =
    { Loadgen.workers = domains; backend = `Domain;
      duration_ms = spec.duration_ms; warmup_ms = spec.warmup_ms;
      mode = Loadgen.Closed; seed = spec.seed; think_us = 0 }
  in
  match Target.create ~tier:(`Queue kind) ~problem ~mechanism () with
  | exception Prims.Unsupported { feature; reason; _ } ->
    dead_row ~kind ~problem ~mechanism ~domains (Unsupported { feature; reason })
  | Error e -> dead_row ~kind ~problem ~mechanism ~domains (Failed e)
  | Ok inst -> (
    match Loadgen.run inst base with
    | report ->
      let s = report.Report.summary in
      if s.Summary.total_failures > 0 then
        dead_row ~kind ~problem ~mechanism ~domains
          (Failed (Printf.sprintf "%d op failures" s.Summary.total_failures))
      else
        let q f = Summary.overall_quantile s f in
        { kind; problem; mechanism; domains; status = Supported;
          throughput_per_s = s.Summary.throughput_per_s;
          p50_ns = q (fun o -> o.Summary.p50_ns);
          p99_ns = q (fun o -> o.Summary.p99_ns) }
    | exception Prims.Unsupported { feature; reason; _ } ->
      dead_row ~kind ~problem ~mechanism ~domains
        (Unsupported { feature; reason })
    | exception e ->
      dead_row ~kind ~problem ~mechanism ~domains
        (Failed (Printexc.to_string e)))

let run_queue ?(progress = ignore) spec =
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun problem ->
          let offered = Target.mechanisms ~problem in
          List.concat_map
            (fun mechanism ->
              if not (List.mem mechanism offered) then begin
                (* The bench grid's honest answer for an absent pair:
                   a typed reason, never a 0 ops/s row. *)
                let r =
                  dead_row ~kind ~problem ~mechanism ~domains:0
                    (Unsupported
                       { feature = "load-target";
                         reason =
                           Printf.sprintf "no %s target for %s" mechanism
                             problem })
                in
                progress r;
                [ r ]
              end
              else
                List.map
                  (fun domains ->
                    let r = queue_cell spec ~kind ~problem ~mechanism ~domains in
                    progress r;
                    r)
                  spec.domains)
            spec.mechanisms)
        spec.problems)
    spec.kinds

let dead_epoch_row ~mechanism ~domains spec status =
  { e_mechanism = mechanism; e_domains = domains; e_think_us = spec.think_us;
    e_read_pct = spec.read_pct; e_status = status; e_read_per_s = 0.;
    e_throughput_per_s = 0.; e_p50_ns = 0; e_p99_ns = 0 }

let epoch_cell spec ~mechanism ~domains =
  let base =
    { Loadgen.workers = domains; backend = `Domain;
      duration_ms = spec.duration_ms; warmup_ms = spec.warmup_ms;
      mode = Loadgen.Closed; seed = spec.seed; think_us = spec.think_us }
  in
  let params = { Target.default_params with read_pct = spec.read_pct } in
  match Target.create ~params ~problem:"readers-writers" ~mechanism () with
  | Error e -> dead_epoch_row ~mechanism ~domains spec (Failed e)
  | Ok inst -> (
    match Loadgen.run inst base with
    | report ->
      let s = report.Report.summary in
      if s.Summary.total_failures > 0 then
        dead_epoch_row ~mechanism ~domains spec
          (Failed (Printf.sprintf "%d op failures" s.Summary.total_failures))
      else
        let q f = Summary.overall_quantile s f in
        let read_per_s =
          match
            List.find_opt (fun o -> o.Summary.op = "read") s.Summary.per_op
          with
          | Some o ->
            float_of_int o.Summary.count
            *. 1e9
            /. Int64.to_float s.Summary.elapsed_ns
          | None -> 0.
        in
        { e_mechanism = mechanism; e_domains = domains;
          e_think_us = spec.think_us; e_read_pct = spec.read_pct;
          e_status = Supported; e_read_per_s = read_per_s;
          e_throughput_per_s = s.Summary.throughput_per_s;
          e_p50_ns = q (fun o -> o.Summary.p50_ns);
          e_p99_ns = q (fun o -> o.Summary.p99_ns) }
    | exception e ->
      dead_epoch_row ~mechanism ~domains spec (Failed (Printexc.to_string e)))

let run_epoch ?(progress = ignore) spec =
  List.concat_map
    (fun mechanism ->
      List.map
        (fun domains ->
          let r = epoch_cell spec ~mechanism ~domains in
          progress r;
          r)
        spec.epoch_domains)
    spec.epoch_mechanisms

let run ?progress_queue ?progress_epoch spec =
  { queue = run_queue ?progress:progress_queue spec;
    epoch = run_epoch ?progress:progress_epoch spec }

let queue_ok r = match r.status with Failed _ -> false | _ -> true

let epoch_ok r = match r.e_status with Failed _ -> false | _ -> true

let all_ok t = List.for_all queue_ok t.queue && List.for_all epoch_ok t.epoch

(* The tentpole claim, checked on measured rows: the epoch path's read
   throughput strictly increases with the domain count. Only the
   ["epoch"] rows are held to it — reference mechanisms ride along for
   the side-by-side, serializing as they please. *)
let epoch_monotonic t =
  let rows =
    List.filter (fun r -> r.e_mechanism = "epoch" && r.e_status = Supported)
      t.epoch
    |> List.sort (fun a b -> compare a.e_domains b.e_domains)
  in
  match rows with
  | [] | [ _ ] -> false
  | first :: rest ->
    let rec strictly_up prev = function
      | [] -> true
      | r :: rest ->
        r.e_read_per_s > prev.e_read_per_s && strictly_up r rest
    in
    strictly_up first rest

let status_string = function
  | Supported -> "ok"
  | Unsupported { feature; _ } -> "unsupported: " ^ feature
  | Failed e -> "FAILED: " ^ e

let pp ppf t =
  let by_kind k = List.filter (fun r -> r.kind = k) t.queue in
  List.iter
    (fun k ->
      match by_kind k with
      | [] -> ()
      | kr ->
        Format.fprintf ppf "queue lock %-7s@." (Queuelock.kind_name k);
        Format.fprintf ppf "  %-16s %-12s %7s %12s %9s %9s  %s@." "problem"
          "mechanism" "domains" "ops/s" "p50 ns" "p99 ns" "status";
        List.iter
          (fun r ->
            match r.status with
            | Supported ->
              Format.fprintf ppf "  %-16s %-12s %7d %12.0f %9d %9d  %s@."
                r.problem r.mechanism r.domains r.throughput_per_s r.p50_ns
                r.p99_ns (status_string r.status)
            | _ ->
              Format.fprintf ppf "  %-16s %-12s %7s %12s %9s %9s  %s@."
                r.problem r.mechanism "-" "-" "-" "-" (status_string r.status))
          kr;
        Format.fprintf ppf "@.")
    Queuelock.all;
  if t.epoch <> [] then begin
    Format.fprintf ppf "epoch read-mostly scaling (readers-writers)@.";
    Format.fprintf ppf "  %-12s %7s %8s %8s %12s %12s  %s@." "mechanism"
      "domains" "think_us" "read%" "reads/s" "ops/s" "status";
    List.iter
      (fun r ->
        match r.e_status with
        | Supported ->
          Format.fprintf ppf "  %-12s %7d %8d %8d %12.0f %12.0f  %s@."
            r.e_mechanism r.e_domains r.e_think_us r.e_read_pct r.e_read_per_s
            r.e_throughput_per_s
            (status_string r.e_status)
        | _ ->
          Format.fprintf ppf "  %-12s %7d %8s %8s %12s %12s  %s@."
            r.e_mechanism r.e_domains "-" "-" "-" "-"
            (status_string r.e_status))
      t.epoch;
    Format.fprintf ppf "  epoch read throughput monotonic 1..n: %b@."
      (epoch_monotonic t)
  end

let status_json = function
  | Supported -> [ ("status", Emit.Str "supported") ]
  | Unsupported { feature; reason } ->
    [ ("status", Emit.Str "unsupported"); ("feature", Emit.Str feature);
      ("reason", Emit.Str reason) ]
  | Failed e -> [ ("status", Emit.Str "failed"); ("error", Emit.Str e) ]

let queue_row_to_json r =
  Emit.Obj
    ([ ("kind", Emit.Str (Queuelock.kind_name r.kind));
       ("problem", Emit.Str r.problem);
       ("mechanism", Emit.Str r.mechanism);
       ("domains", Emit.Int r.domains) ]
    @ status_json r.status
    @
    match r.status with
    | Supported ->
      [ ("throughput_per_s", Emit.Float r.throughput_per_s);
        ("p50_ns", Emit.Int r.p50_ns); ("p99_ns", Emit.Int r.p99_ns) ]
    | _ -> [])

let epoch_row_to_json r =
  Emit.Obj
    ([ ("mechanism", Emit.Str r.e_mechanism);
       ("domains", Emit.Int r.e_domains);
       ("think_us", Emit.Int r.e_think_us);
       ("read_pct", Emit.Int r.e_read_pct) ]
    @ status_json r.e_status
    @
    match r.e_status with
    | Supported ->
      [ ("read_per_s", Emit.Float r.e_read_per_s);
        ("throughput_per_s", Emit.Float r.e_throughput_per_s);
        ("p50_ns", Emit.Int r.e_p50_ns); ("p99_ns", Emit.Int r.e_p99_ns) ]
    | _ -> [])

let rows_to_json t =
  Emit.Obj
    [ ("queue_rows", Emit.List (List.map queue_row_to_json t.queue));
      ("epoch_rows", Emit.List (List.map epoch_row_to_json t.epoch)) ]

let to_json spec t =
  Emit.Obj
    [ ("experiment", Emit.Str "E23");
      ("description",
       Emit.Str
         "scalable-lock tier: mechanism x problem targets on MCS/CLH/ticket \
          queue locks (absent pairs are typed unsupported cells), plus the \
          epoch read-mostly readers-writers path at increasing domain \
          counts with closed-loop think time");
      ("mode", Emit.Str "closed");
      ("backend", Emit.Str "domain");
      ("duration_ms", Emit.Int spec.duration_ms);
      ("warmup_ms", Emit.Int spec.warmup_ms);
      ("seed", Emit.Int spec.seed);
      ("think_us", Emit.Int spec.think_us);
      ("read_pct", Emit.Int spec.read_pct);
      ("ocaml", Emit.Str Sys.ocaml_version);
      ("recommended_domains", Emit.Int (Domain.recommended_domain_count ()));
      ("kinds",
       Emit.List
         (List.map (fun k -> Emit.Str (Queuelock.kind_name k)) spec.kinds));
      ("problems", Emit.List (List.map (fun p -> Emit.Str p) spec.problems));
      ("mechanisms",
       Emit.List (List.map (fun m -> Emit.Str m) spec.mechanisms));
      ("epoch_mechanisms",
       Emit.List (List.map (fun m -> Emit.Str m) spec.epoch_mechanisms));
      ("domain_counts", Emit.List (List.map (fun d -> Emit.Int d) spec.domains));
      ("epoch_domain_counts",
       Emit.List (List.map (fun d -> Emit.Int d) spec.epoch_domains));
      ("epoch_monotonic", Emit.Bool (epoch_monotonic t));
      ("queue_rows", Emit.List (List.map queue_row_to_json t.queue));
      ("epoch_rows", Emit.List (List.map epoch_row_to_json t.epoch)) ]
