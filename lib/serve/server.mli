(** The bloom_serve daemon core (E24): accept, admit, dispatch, drain.

    Architecture: one acceptor thread feeds accepted connections into a
    {e bounded} dispatch queue (two strong semaphores around a FIFO —
    the queue depth is the admission controller's first gate); a fixed
    pool of worker threads each serves one connection at a time,
    request by request. When the dispatch queue is full the acceptor
    sheds: it writes one [Overloaded] reply with a retry hint and
    closes, so clients always get a typed answer instead of a SYN
    backlog stall. Per-problem token buckets gate individual requests
    the same way.

    Graceful drain ({!drain}, or SIGTERM via bloom_serve): the listener
    closes, queued connections are still served, workers finish their
    in-flight request, reply, and hang up; the worker pool is woken in
    one batched [Semaphore.v_n] post (the E22 batching substrate). If
    the drain exceeds its grace period the E19 deadlock watchdog is
    consulted and any named wait-cycle is reported before the server
    gives up and force-closes — a stuck drain is diagnosed, not hung.

    Chaos: when configured, every connection gets a {!Chaos} stream
    seeded by [(seed, conn_id)]; byte-level faults are replayable by
    seed and forceable via the E19 fault plan sites. *)

type addr = Unix_sock of string | Tcp of int

type config = {
  addr : addr;
  workers : int;  (** connection-serving threads = max concurrent conns *)
  accept_queue : int;  (** dispatch queue bound; beyond it, shed *)
  bucket_rate : float;  (** per-problem token refill, tokens/s *)
  bucket_burst : int;
  grace_ms : int;  (** drain grace before watchdog escalation *)
  default_deadline_ns : int64;  (** budget for requests that send 0 *)
  chaos : Chaos.config option;
  service : Service.config;
}

val default_config : addr -> config
(** 8 workers, accept queue 64, 2000 tokens/s burst 256, 2 s grace,
    250 ms default deadline, no chaos. *)

type stats = {
  accepted : int;
  shed : int;  (** connections refused by the bounded accept queue *)
  served : int;  (** requests answered (any typed reply) *)
  overloaded : int;  (** [Overloaded] replies (bucket or queue shed) *)
  deadline_exceeded : int;
  bad_request : int;
  chaos_resets : int;  (** connections killed by the chaos layer *)
}

type t

val start : config -> t
(** Bind, listen and spawn acceptor + workers (+ the service ticker).
    @raise Unix.Unix_error when the address cannot be bound. *)

val sockaddr : t -> Unix.sockaddr

val stats : t -> stats

val draining : t -> bool

val drain : t -> bool
(** Graceful stop; see above. Blocks until workers exit or the grace
    period (plus escalation) elapses. [true] iff the pool drained
    within the grace period (no escalation) — bloom_serve turns this
    into its exit status, which is what the drill's [drain_clean]
    checks. Idempotent ([true] on repeat calls). *)
