(* The measurement layer under the measurement layer: histograms,
   recorders, summaries and JSON emission (lib/metrics), plus the
   workload engine's target catalog and a thread-backed load smoke.
   Property tests pin the invariants the E20 numbers rest on: quantiles
   are monotone and within the documented relative-error bound, merge is
   lossless and commutative, and no recorded operation is ever dropped
   on the way to a summary. *)

open Sync_metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- histogram units ---------------------------------------------- *)

let test_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "q0.5" 0 (Histogram.quantile h 0.5);
  check_int "min" 0 (Histogram.min_value h);
  check_int "max" 0 (Histogram.max_value h);
  Alcotest.(check (float 0.)) "mean" 0. (Histogram.mean h)

let test_single_value () =
  let h = Histogram.create () in
  Histogram.record h 12345;
  check_int "count" 1 (Histogram.count h);
  List.iter
    (fun q -> check_int (Printf.sprintf "q%.3f" q) 12345 (Histogram.quantile h q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  check_int "min" 12345 (Histogram.min_value h);
  check_int "max" 12345 (Histogram.max_value h)

let test_small_values_exact () =
  (* below 2^sub_bits the buckets are unit-width: quantiles are exact *)
  let h = Histogram.create () in
  for v = 0 to 31 do Histogram.record h v done;
  check_int "median of 0..31" 15 (Histogram.quantile h 0.5);
  check_int "q1.0" 31 (Histogram.quantile h 1.0);
  check_int "q0" 0 (Histogram.quantile h 0.0)

let test_known_distribution () =
  (* 1..10_000: true quantile q is q*10_000; bucketed answer must be
     within the documented 2^-sub_bits ≈ 3.2% relative error *)
  let h = Histogram.create () in
  for v = 1 to 10_000 do Histogram.record h v done;
  List.iter
    (fun q ->
      let true_q = q *. 10_000. in
      let got = float_of_int (Histogram.quantile h q) in
      let rel = Float.abs (got -. true_q) /. true_q in
      if rel > 0.04 then
        Alcotest.failf "q%.2f: got %.0f, want ~%.0f (rel err %.3f)" q got
          true_q rel)
    [ 0.50; 0.90; 0.95; 0.99 ];
  check_int "count" 10_000 (Histogram.count h);
  check_int "exact max" 10_000 (Histogram.max_value h);
  check_int "exact min" 1 (Histogram.min_value h)

let test_negative_clamps () =
  let h = Histogram.create () in
  Histogram.record h (-7);
  check_int "count" 1 (Histogram.count h);
  check_int "clamped to 0" 0 (Histogram.quantile h 1.0)

let test_buckets_conserve () =
  let h = Histogram.create () in
  List.iter (fun v -> Histogram.record h v)
    [ 0; 1; 31; 32; 33; 1000; 1_000_000; max_int ];
  let total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0
      (Histogram.nonempty_buckets h)
  in
  check_int "bucket counts sum to count" (Histogram.count h) total;
  List.iter
    (fun (lo, hi, _) -> check_bool "lo <= hi" true (lo <= hi))
    (Histogram.nonempty_buckets h)

(* -- histogram properties ----------------------------------------- *)

let value_gen =
  (* span the interesting ranges: sub-linear, mid, and huge *)
  QCheck.Gen.(
    oneof
      [ int_range 0 64; int_range 0 100_000;
        map abs (int_range 0 max_int) ])

let values_arb =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (int_range 1 500) value_gen)

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  h

let rec nondecreasing = function
  | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
  | _ -> true

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200 values_arb
    (fun values ->
      let h = hist_of values in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ] in
      nondecreasing (List.map (Histogram.quantile h) qs))

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantiles stay within recorded min/max" ~count:200
    values_arb (fun values ->
      let h = hist_of values in
      List.for_all
        (fun q ->
          let v = Histogram.quantile h q in
          v >= Histogram.min_value h && v <= Histogram.max_value h)
        [ 0.0; 0.5; 0.99; 1.0 ])

let pair_arb = QCheck.pair values_arb values_arb

let prop_merge_commutes =
  QCheck.Test.make ~name:"merge commutative + lossless" ~count:200 pair_arb
    (fun (xs, ys) ->
      let ab = Histogram.merge (hist_of xs) (hist_of ys) in
      let ba = Histogram.merge (hist_of ys) (hist_of xs) in
      let both = hist_of (xs @ ys) in
      Histogram.count ab = Histogram.count ba
      && Histogram.count ab = List.length xs + List.length ys
      && Histogram.nonempty_buckets ab = Histogram.nonempty_buckets ba
      && Histogram.nonempty_buckets ab = Histogram.nonempty_buckets both
      && Histogram.min_value ab = Histogram.min_value both
      && Histogram.max_value ab = Histogram.max_value both)

let prop_merge_counts_conserved =
  QCheck.Test.make ~name:"merge conserves counts and sums" ~count:200 pair_arb
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      let m = Histogram.merge a b in
      let n = Histogram.count m in
      n = Histogram.count a + Histogram.count b
      && Float.abs
           ((Histogram.mean m *. float_of_int n)
           -. (Histogram.mean a *. float_of_int (Histogram.count a))
           -. (Histogram.mean b *. float_of_int (Histogram.count b)))
         < 1e-3 *. Float.max 1. (Histogram.mean m *. float_of_int n))

(* -- recorder + summary ------------------------------------------- *)

let test_recorder_merge () =
  let ops = [| "put"; "get" |] in
  let mk records fails =
    let r = Recorder.create ~ops () in
    List.iter (fun (op, ns) -> Recorder.record r ~op ~ns) records;
    List.iter (fun op -> Recorder.record_failure r ~op) fails;
    r
  in
  let r1 = mk [ (0, 100); (0, 200); (1, 50) ] [ 1 ] in
  let r2 = mk [ (1, 75); (0, 300) ] [ 0; 1 ] in
  let m = Recorder.merge [ r1; r2 ] in
  check_int "ops" 5 (Recorder.ops_recorded m);
  check_int "failures" 3 (Recorder.failures m);
  check_int "put count" 3 (Recorder.op_count m ~op:0);
  check_int "get count" 2 (Recorder.op_count m ~op:1);
  check_int "put failures" 1 (Recorder.op_failures m ~op:0);
  check_int "get failures" 2 (Recorder.op_failures m ~op:1);
  (* inputs untouched *)
  check_int "r1 untouched" 3 (Recorder.ops_recorded r1)

let test_recorder_merge_mismatch () =
  let a = Recorder.create ~ops:[| "x" |] () in
  let b = Recorder.create ~ops:[| "y" |] () in
  Alcotest.check_raises "mismatched ops"
    (Invalid_argument "Recorder.merge: ops mismatch") (fun () ->
      ignore (Recorder.merge [ a; b ]))

let test_summary_conserves () =
  let r = Recorder.create ~ops:[| "a"; "b" |] () in
  for i = 1 to 100 do Recorder.record r ~op:(i mod 2) ~ns:(i * 10) done;
  Recorder.record_failure r ~op:0;
  let s = Summary.of_recorder ~elapsed_ns:1_000_000_000L r in
  check_int "total_ops" 100 s.Summary.total_ops;
  check_int "total_failures" 1 s.Summary.total_failures;
  check_int "per-op counts sum" 100
    (List.fold_left (fun acc o -> acc + o.Summary.count) 0 s.Summary.per_op);
  (* 100 ops over exactly 1s *)
  Alcotest.(check (float 0.01)) "throughput" 100. s.Summary.throughput_per_s;
  List.iter
    (fun o ->
      check_bool "ladder monotone" true
        (o.Summary.min_ns <= o.Summary.p50_ns
        && o.Summary.p50_ns <= o.Summary.p95_ns
        && o.Summary.p95_ns <= o.Summary.p99_ns
        && o.Summary.p99_ns <= o.Summary.p999_ns
        && o.Summary.p999_ns <= o.Summary.max_ns))
    s.Summary.per_op

(* -- multi-domain recorder contention ----------------------------- *)

let test_parallel_recorders () =
  (* the share-nothing design under real parallelism: one recorder per
     domain, no synchronization, merged counts must be exact *)
  let domains = 4 and per_domain = 25_000 in
  let ops = [| "op" |] in
  let recorders = Array.init domains (fun _ -> Recorder.create ~ops ()) in
  Sync_platform.Process.run_all ~backend:`Domain
    (List.init domains (fun d () ->
         let r = recorders.(d) in
         for i = 1 to per_domain do
           Recorder.record r ~op:0 ~ns:(i land 1023)
         done));
  let m = Recorder.merge (Array.to_list recorders) in
  check_int "no recordings lost" (domains * per_domain)
    (Recorder.ops_recorded m);
  check_int "histogram agrees" (domains * per_domain)
    (Histogram.count (Recorder.hist m ~op:0))

(* -- emission ------------------------------------------------------ *)

let test_emit_json () =
  let doc =
    Emit.(Obj
      [ ("s", Str "a\"b\\c\nd");
        ("i", Int (-3));
        ("f", Float 1.5);
        ("nan", Float Float.nan);
        ("inf", Float Float.infinity);
        ("l", List [ Bool true; Null ]) ])
  in
  check_string "compact json"
    "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"f\":1.5,\"nan\":null,\"inf\":null,\"l\":[true,null]}"
    (Emit.to_string ~pretty:false doc)

let test_emit_csv () =
  check_string "quoting" "plain,\"has,comma\",\"has\"\"quote\""
    (Emit.csv_line [ "plain"; "has,comma"; "has\"quote" ])

(* -- workload engine ----------------------------------------------- *)

let test_registry_coverage () =
  (* every load target must be a registered, verified solution *)
  match Sync_eval.Perf.coverage_errors () with
  | [] -> ()
  | errs -> Alcotest.failf "%s" (String.concat "; " errs)

let run_smoke mode =
  match
    Sync_workload.Target.create ~problem:"bounded-buffer"
      ~mechanism:"semaphore" ()
  with
  | Error e -> Alcotest.failf "target: %s" e
  | Ok instance ->
    let cfg =
      { Sync_workload.Loadgen.workers = 2; backend = `Thread;
        duration_ms = 60; warmup_ms = 20; mode; seed = 7; think_us = 0 }
    in
    let report = Sync_workload.Loadgen.run instance cfg in
    let s = report.Sync_workload.Report.summary in
    check_bool "made progress" true (s.Summary.total_ops > 0);
    check_int "no failures" 0 s.Summary.total_failures;
    check_bool "throughput positive" true (s.Summary.throughput_per_s > 0.);
    (* the JSON document round-trips through the emitter *)
    let json =
      Emit.to_string (Sync_workload.Report.to_json report)
    in
    check_bool "json mentions throughput" true
      (Astring.String.is_infix ~affix:"throughput_per_s" json)

let test_loadgen_closed () = run_smoke Sync_workload.Loadgen.Closed

let test_loadgen_open () =
  run_smoke
    (Sync_workload.Loadgen.Open_loop
       { rate_per_s = 5_000.; arrival = Sync_workload.Loadgen.Poisson })

let test_loadgen_rejects () =
  match
    Sync_workload.Target.create ~problem:"bounded-buffer"
      ~mechanism:"semaphore" ()
  with
  | Error e -> Alcotest.failf "target: %s" e
  | Ok instance ->
    let bad =
      { Sync_workload.Loadgen.default_config with workers = 0 }
    in
    (match Sync_workload.Loadgen.run instance bad with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "worker count 0 accepted");
    instance.Sync_workload.Target.stop ()

let test_target_unknown () =
  (match Sync_workload.Target.create ~problem:"nope" ~mechanism:"monitor" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown problem accepted");
  match
    Sync_workload.Target.create ~problem:"bounded-buffer" ~mechanism:"nope" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mechanism accepted"

let () =
  Alcotest.run "metrics"
    [ ( "histogram",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single value" `Quick test_single_value;
          Alcotest.test_case "small values exact" `Quick
            test_small_values_exact;
          Alcotest.test_case "known distribution" `Quick
            test_known_distribution;
          Alcotest.test_case "negative clamps" `Quick test_negative_clamps;
          Alcotest.test_case "buckets conserve" `Quick test_buckets_conserve ] );
      ( "histogram-properties",
        [ Testutil.qcheck_case prop_quantile_monotone;
          Testutil.qcheck_case prop_quantile_bounds;
          Testutil.qcheck_case prop_merge_commutes;
          Testutil.qcheck_case prop_merge_counts_conserved ] );
      ( "recorder",
        [ Alcotest.test_case "merge" `Quick test_recorder_merge;
          Alcotest.test_case "merge mismatch" `Quick
            test_recorder_merge_mismatch;
          Alcotest.test_case "summary conserves" `Quick test_summary_conserves;
          Alcotest.test_case "parallel recorders (domains)" `Quick
            test_parallel_recorders ] );
      ( "emit",
        [ Alcotest.test_case "json" `Quick test_emit_json;
          Alcotest.test_case "csv" `Quick test_emit_csv ] );
      ( "workload",
        [ Alcotest.test_case "registry coverage" `Quick test_registry_coverage;
          Alcotest.test_case "closed-loop smoke" `Quick test_loadgen_closed;
          Alcotest.test_case "open-loop smoke" `Quick test_loadgen_open;
          Alcotest.test_case "rejects bad config" `Quick test_loadgen_rejects;
          Alcotest.test_case "unknown pair" `Quick test_target_unknown ] ) ]
