open Sync_metrics

(* Chrome trace_event JSON (the "JSON Array Format" chrome://tracing and
   Perfetto load). Each traced run becomes one "process"; actors become
   "threads" under it, named through metadata events. Spans are complete
   events (ph "X"), instants are thread-scoped instant events (ph "i").
   Timestamps are microsecond floats, rebased to the earliest event so
   the viewer opens at t=0. Everything goes through [Emit], so string
   escaping is shared with (and tested like) the other JSON artifacts. *)

(* Chrome tids must be non-negative; virtual actors are encoded negative
   by [Probe], so give them a disjoint positive band. *)
let tid_of_actor a = if a < 0 then 1_000_000 + (-a - 1) else a

let args_json (e : Probe.event) =
  let base = [ ("arg", Emit.Int e.arg) ] in
  if e.op = "" then base else ("op", Emit.Str e.op) :: base

let event_json ~pid ~base (e : Probe.event) =
  let common =
    [ ("name", Emit.Str e.site);
      ("cat", Emit.Str (Probe.kind_to_string e.kind));
      ("ts", Emit.Float (float_of_int (e.t0 - base) /. 1e3));
      ("pid", Emit.Int pid);
      ("tid", Emit.Int (tid_of_actor e.actor));
      ("args", Emit.Obj (args_json e)) ]
  in
  if Probe.is_span e.kind then
    Emit.Obj
      (("ph", Emit.Str "X")
       :: ("dur", Emit.Float (float_of_int e.dur /. 1e3))
       :: common)
  else Emit.Obj (("ph", Emit.Str "i") :: ("s", Emit.Str "t") :: common)

let metadata ~pid ~name ~tid ~value =
  Emit.Obj
    [ ("ph", Emit.Str "M"); ("name", Emit.Str name); ("pid", Emit.Int pid);
      ("tid", Emit.Int tid); ("args", Emit.Obj [ ("name", Emit.Str value) ]) ]

(* [groups] pairs a process label (e.g. "monitor@bounded-buffer") with
   that run's snapshot. *)
let to_json groups =
  let base =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left
          (fun acc (e : Probe.event) -> min acc e.t0)
          acc evs)
      max_int groups
  in
  let base = if base = max_int then 0 else base in
  let events =
    List.concat
      (List.mapi
         (fun i (label, evs) ->
           let pid = i + 1 in
           let actors =
             List.sort_uniq compare
               (List.map (fun (e : Probe.event) -> e.actor) evs)
           in
           metadata ~pid ~name:"process_name" ~tid:0 ~value:label
           :: List.map
                (fun a ->
                  metadata ~pid ~name:"thread_name" ~tid:(tid_of_actor a)
                    ~value:(Probe.actor_label a))
                actors
           @ List.map (event_json ~pid ~base) evs)
         groups)
  in
  Emit.Obj
    [ ("traceEvents", Emit.List events); ("displayTimeUnit", Emit.Str "ns") ]

let write_file path groups = Emit.write_file path (to_json groups)
