(** Abstract syntax of path expressions.

    The core dialect is Campbell-Habermann [7]: operation names, sequencing
    [;], selection [,], concurrency [{e}], and cyclic repetition (the
    [path ... end] pair). Two historical extensions are included:

    - [Bounded (n, e)] — the numeric operator of Flon-Habermann [10],
      [n : (e)], allowing [n] traversals of [e] to be in progress at once
      (a bounded buffer is [path n : (put ; get) end]); restricted by the
      compiler to the whole body of a declaration.
    - [Pred (name, e)] — Andler-style predicates [2]: [e] may begin only
      when the named predicate (bound to a closure at compile time) holds.

    Precedence, loosest to tightest: [;] then [,] then primaries, so
    [a , b ; c] parses as [(a , b) ; c] — which is why Figure 1 of the
    paper must parenthesize [(openwrite ; write)] inside a selection. *)

type t =
  | Op of string
  | Seq of t list  (** at least two elements *)
  | Sel of t list  (** at least two alternatives *)
  | Conc of t      (** [{e}]: a burst of concurrent traversals *)
  | Bounded of int * t  (** [n : (e)] *)
  | Pred of string * t  (** [\[name\] e] *)

type spec = t list
(** One element per [path ... end] declaration; an operation may appear in
    several declarations and is then constrained by all of them, traversing
    their prologues in declaration order. *)

val ops : spec -> string list
(** All operation names, in first-appearance order, without duplicates. *)

val predicates : spec -> string list
(** All predicate names, in first-appearance order, without duplicates. *)

val pp : Format.formatter -> t -> unit
(** Prints with minimal parentheses; [pp_spec] round-trips through
    {!Parser.parse}. *)

val pp_spec : Format.formatter -> spec -> unit

val to_string : spec -> string

val equal : t -> t -> bool

val equal_spec : spec -> spec -> bool
