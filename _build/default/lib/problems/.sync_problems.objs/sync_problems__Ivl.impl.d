lib/problems/ivl.ml: Hashtbl List Printf Sync_platform Trace
