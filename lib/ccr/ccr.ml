open Sync_platform

type 'a t = {
  lock : Mutex.t;
  changed : Condition.t;
  state : 'a;
  mutable blocked : int;
}

let create state =
  { lock = Mutex.create (); changed = Condition.create (); state;
    blocked = 0 }

let region ?when_ t f =
  Mutex.lock t.lock;
  (match when_ with
  | None -> ()
  | Some guard ->
    t.blocked <- t.blocked + 1;
    while not (guard t.state) do
      Condition.wait t.changed t.lock
    done;
    t.blocked <- t.blocked - 1);
  let finish () =
    (* Any region body may have changed the state: re-test every guard. *)
    Condition.broadcast t.changed;
    Mutex.unlock t.lock
  in
  match f t.state with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let await t p = region ~when_:p t ignore

let waiters t =
  Mutex.lock t.lock;
  let n = t.blocked in
  Mutex.unlock t.lock;
  n
