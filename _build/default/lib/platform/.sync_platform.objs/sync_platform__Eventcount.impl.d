lib/platform/eventcount.ml: Condition Mutex
