(* Readers-writers: exclusion stress + driven policy scenarios for every
   mechanism/policy pair, including the deterministic reproduction of the
   paper's footnote-3 anomaly in the Figure 1 path solution (E1). *)
open Sync_problems

let check_result name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

(* mechanism/variant, module, whether the policy scenarios should PASS
   (Fig1 is faithful to the paper and therefore must FAIL them). *)
let solutions : (string * (module Rw_intf.S) * bool) list =
  [ (* Courtois problem 1 batch-joins readers but lets a FIFO semaphore
       hand a writer-release to an earlier-queued second writer, so it
       fails Bloom's strict reading of readers-priority. *)
    ("sem/readers-prio-courtois", (module Rw_sem.Readers_prio), false);
    ("sem/readers-prio-baton", (module Rw_sem.Readers_prio_baton), true);
    ("sem/writers-prio", (module Rw_sem.Writers_prio), true);
    ("sem/fcfs", (module Rw_sem.Fcfs), true);
    ("mon/readers-prio", (module Rw_mon.Readers_prio), true);
    ("mon/readers-prio-mesa", (module Rw_mon.Readers_prio_mesa), true);
    ("mon/writers-prio", (module Rw_mon.Writers_prio), true);
    ("mon/fcfs", (module Rw_mon.Fcfs), true);
    ("ser/readers-prio", (module Rw_ser.Readers_prio), true);
    ("ser/writers-prio", (module Rw_ser.Writers_prio), true);
    ("ser/fcfs", (module Rw_ser.Fcfs), true);
    ("path/fig1", (module Rw_path.Fig1), false);
    ("path/fig2", (module Rw_path.Fig2), true);
    ("path/plain", (module Rw_path.Plain), true);
    ("csp/readers-prio", (module Rw_csp.Readers_prio), true);
    ("csp/fcfs", (module Rw_csp.Fcfs), true);
    ("ccr/readers-prio", (module Rw_ccr.Readers_prio), true);
    ("ccr/writers-prio", (module Rw_ccr.Writers_prio), true);
    ("ccr/fcfs", (module Rw_ccr.Fcfs), true) ]

let exclusion_tests =
  List.map
    (fun (name, m, _) ->
      Alcotest.test_case name `Quick (fun () ->
          check_result name (Rw_harness.verify_exclusion m)))
    solutions

let heavier_exclusion_tests =
  List.map
    (fun (name, m, _) ->
      Alcotest.test_case name `Quick (fun () ->
          check_result name
            (Rw_harness.verify_exclusion ~readers:6 ~writers:3 ~reads_each:25
               ~writes_each:8 m)))
    solutions

let policy_tests =
  List.map
    (fun (name, m, should_pass) ->
      Alcotest.test_case name `Quick (fun () ->
          match (Rw_harness.verify_policy m, should_pass) with
          | Ok (), true -> ()
          | Error msg, true -> Alcotest.failf "%s: %s" name msg
          | Error _, false -> () (* the documented Figure 1 anomaly *)
          | Ok (), false ->
            Alcotest.failf
              "%s: expected the footnote-3 anomaly but the scenario passed"
              name))
    solutions

(* The anomaly itself, stated positively: in Figure 1 the second writer
   overtakes the waiting reader (paper footnote 3). *)
let test_fig1_footnote3 () =
  match Rw_harness.scenario_writer_handoff (module Rw_path.Fig1) with
  | Rw_harness.Writer_first -> ()
  | Rw_harness.Reader_first ->
    Alcotest.fail "Figure 1 behaved as correct readers-priority?!"

(* And the contrast: the monitor and serializer readers-priority solutions
   hand the resource to the reader in the identical situation. *)
let test_correct_solutions_contrast () =
  List.iter
    (fun (name, m) ->
      match Rw_harness.scenario_writer_handoff m with
      | Rw_harness.Reader_first -> ()
      | Rw_harness.Writer_first ->
        Alcotest.failf "%s: writer overtook the waiting reader" name)
    [ ("mon", (module Rw_mon.Readers_prio : Rw_intf.S));
      ("ser", (module Rw_ser.Readers_prio));
      ("sem-baton", (module Rw_sem.Readers_prio_baton));
      ("csp", (module Rw_csp.Readers_prio)) ]

(* E16: the paper notes readers-priority "allows writers to starve"; the
   FCFS and writers-priority policies must not. *)
let starvation_cases =
  [ ("mon/readers-prio", (module Rw_mon.Readers_prio : Rw_intf.S), true);
    ("mon/writers-prio", (module Rw_mon.Writers_prio), false);
    ("mon/fcfs", (module Rw_mon.Fcfs), false);
    ("ser/readers-prio", (module Rw_ser.Readers_prio), true);
    ("ser/fcfs", (module Rw_ser.Fcfs), false);
    ("ccr/readers-prio", (module Rw_ccr.Readers_prio), true);
    ("ccr/fcfs", (module Rw_ccr.Fcfs), false) ]

let starvation_tests =
  List.map
    (fun (name, m, expect_starved) ->
      Alcotest.test_case name `Quick (fun () ->
          let starved = Rw_harness.scenario_writer_starvation m in
          Alcotest.(check bool)
            (name ^ ": writer starved")
            expect_starved starved))
    starvation_cases

let overlap_tests =
  List.map
    (fun (name, m, _) ->
      Alcotest.test_case name `Quick (fun () ->
          check_result name (Rw_harness.scenario_reader_overlap m)))
    solutions

let () =
  Alcotest.run "problems-rw"
    [ ("exclusion", exclusion_tests);
      ("reader-overlap", overlap_tests);
      ("exclusion-heavy", heavier_exclusion_tests);
      ("policy-scenarios", policy_tests);
      ("starvation", starvation_tests);
      ( "footnote-3",
        [ Alcotest.test_case "fig1 anomaly reproduced" `Quick
            test_fig1_footnote3;
          Alcotest.test_case "correct solutions contrast" `Quick
            test_correct_solutions_contrast ] ) ]
