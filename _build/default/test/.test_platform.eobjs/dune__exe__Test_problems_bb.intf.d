test/test_problems_bb.mli:
