type t = Sys of Stdlib.Condition.t | Det of Detrt.cond

let create () =
  if Detrt.active () then Det (Detrt.cond ())
  else Sys (Stdlib.Condition.create ())

let wait c (m : Mutex.t) =
  match (c, m) with
  | Sys c, Mutex.Sys m -> Stdlib.Condition.wait c m
  | Det c, Mutex.Det m -> Detrt.cond_wait c m
  | Sys _, Mutex.Det _ | Det _, Mutex.Sys _ ->
    failwith
      "Condition.wait: condition and mutex from different worlds (one \
       deterministic, one system); create both inside or both outside the \
       deterministic run"

let signal = function
  | Sys c -> Stdlib.Condition.signal c
  | Det c -> Detrt.cond_signal c

let broadcast = function
  | Sys c -> Stdlib.Condition.broadcast c
  | Det c -> Detrt.cond_broadcast c
