examples/evaluate_your_own.ml: Atomic Fun Mutex Printf Rw_harness Rw_intf Rw_mon Sync_problems Sync_taxonomy Thread
