(** The paper's Section-2 structuring method for monitor-protected
    resources.

    A shared resource is three modules: the {e unsynchronized resource},
    a {e monitor} acting as synchronizer, and the {e shared-resource}
    module whose operations invoke monitor operations before and after each
    resource operation — with the monitor {b released} while the resource
    operation runs. Users hold only the shared resource.

    This structure is what defuses the nested-monitor-call problem
    [Lister'77]: because the monitor is released before the (possibly
    itself monitor-protected) resource operation is invoked, a wait inside
    the inner level cannot strand the outer monitor. {!access_inside} is
    the naive structure — resource operation executed while holding the
    monitor — kept so the deadlock can be demonstrated (experiment E11). *)

val access :
  Monitor.t -> before:(unit -> unit) -> after:(unit -> unit) ->
  ?abort:(unit -> unit) -> (unit -> 'a) -> 'a
(** [access m ~before ~after op] runs [before] inside [m] (it may wait on
    conditions of [m]), releases [m], runs [op], re-enters [m] to run
    [after] (it typically signals), and returns [op]'s result. If [op]
    raises, [abort] (defaulting to [after]) runs inside [m] before the
    exception propagates, so synchronization state cannot leak. Pass
    [abort] when [after] {e commits} the operation (e.g. bumps an item
    count): the abort path must instead roll back what [before] claimed,
    since the resource operation did not happen. *)

val access_inside : Monitor.t -> (unit -> 'a) -> 'a
(** The naive, deadlock-prone structure: [op] runs while holding the
    monitor. Exists only as the E11 counter-example. *)
