lib/platform/heap.mli:
