type 'a waiter = {
  tag : 'a;
  cond : Condition.t;
  mutable released : bool;
  seq : int;
}

type 'a t = {
  mutable waiters : 'a waiter list; (* arrival order, oldest first *)
  mutable next_seq : int;
}

let create () = { waiters = []; next_seq = 0 }

let length t = List.length t.waiters

let is_empty t = t.waiters = []

let wait t ~lock tag =
  let w =
    { tag; cond = Condition.create (); released = false; seq = t.next_seq }
  in
  t.next_seq <- t.next_seq + 1;
  t.waiters <- t.waiters @ [ w ];
  while not w.released do
    Condition.wait w.cond lock
  done

let tags t = List.map (fun w -> w.tag) t.waiters

let release t w =
  t.waiters <- List.filter (fun w' -> w' != w) t.waiters;
  w.released <- true;
  Condition.signal w.cond

let wake_first t =
  match t.waiters with
  | [] -> false
  | w :: _ ->
    release t w;
    true

let wake_first_matching t ~f =
  match List.find_opt (fun w -> f w.tag) t.waiters with
  | None -> false
  | Some w ->
    release t w;
    true

let select_min t ~cmp =
  match t.waiters with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun best w ->
          let c = cmp w.tag best.tag in
          if c < 0 || (c = 0 && w.seq < best.seq) then w else best)
        first rest
    in
    Some best

let wake_min t ~cmp =
  match select_min t ~cmp with
  | None -> false
  | Some w ->
    release t w;
    true

let wake_all t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter
    (fun w ->
      w.released <- true;
      Condition.signal w.cond)
    ws;
  List.length ws

let min_tag t ~cmp =
  match select_min t ~cmp with None -> None | Some w -> Some w.tag
