(** Immutable statistics snapshot of a finished (or merged) run window:
    throughput over the measured wall-clock window plus the standard
    latency quantile ladder per operation. This is the exchange format
    between the workload engine, the CLI/bench JSON artifacts, and the
    scorecard's performance axis. *)

type op_stats = {
  op : string;
  count : int;
  failures : int;
  mean_ns : float;
  min_ns : int;
  p50_ns : int;
  p90_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

type t = {
  elapsed_ns : int64;  (** measured steady-state window *)
  total_ops : int;
  total_failures : int;
  throughput_per_s : float;  (** successful ops / elapsed *)
  per_op : op_stats list;  (** in recorder op order *)
}

val of_recorder : elapsed_ns:int64 -> Recorder.t -> t

val overall_quantile : t -> (op_stats -> int) -> int
(** Worst (largest) of the given per-op quantile across ops — the
    conservative "tail of the run" figure used in compact tables. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table: one row per op plus a totals line. *)

val to_json : t -> Emit.t

val csv_header : string
(** Header matching {!csv_rows}. *)

val csv_rows : label:string list -> t -> string list
(** One CSV record per op, each prefixed by the caller's [label] fields
    (e.g. mechanism/problem/domain count). *)
