(** Epoch-based read-mostly readers-writers lock (E23).

    Each reader thread publishes its presence in a private, cache-line
    padded slot — a monotonically increasing epoch counter, odd while
    the reader is inside a section. Uncontended read entry/exit touches
    only that slot's line, so read throughput scales with domain count
    instead of serializing on a shared reader counter. Writers
    serialize on an internal mutex, raise a write-intent flag, then
    wait out a grace period: every slot sampled odd must move before
    the writer proceeds. Readers that observe the intent flag retreat
    and back off, so writers are not starved by a stream of new
    readers.

    Constraints: the read side is non-reentrant (the slot parity trick
    breaks on nesting); at most [slots] distinct reader threads may
    ever use one lock (slot assignment is a thread-id registry outside
    the protocol, like {!Sync_prims.Queuelock}); real threads only —
    this path is about cache traffic, which {!Detrt} virtual tasks do
    not model. Policy is no-priority: exclusion is guaranteed, no
    ordering beyond it. *)

type t

val create : ?slots:int -> unit -> t
(** New lock with capacity for [slots] (default 64) distinct reader
    threads. Writer capacity is unbounded. *)

val read_lock : t -> unit
(** Enter a read section. Spins (with backoff) only while a writer is
    in progress; otherwise two plain stores on the caller's own slot. *)

val read_unlock : t -> unit
(** Leave a read section entered by the same thread. *)

val write_lock : t -> unit
(** Acquire exclusive access: serialize with other writers, bar new
    readers, and wait for every in-flight reader to leave. *)

val write_unlock : t -> unit
(** Release exclusive access and re-admit readers. *)

val with_read : t -> (unit -> 'a) -> 'a
(** [with_read t f] runs [f] inside a read section, releasing on any
    exit. *)

val with_write : t -> (unit -> 'a) -> 'a
(** [with_write t f] runs [f] with exclusive access, releasing on any
    exit. *)

val readers : t -> int
(** Number of slots currently mid-section (introspection for tests). *)

val writer_active : t -> bool
(** Whether a writer currently holds the intent flag (introspection
    for tests). *)
