lib/eval/expressiveness.mli: Format Info Meta Registry Sync_taxonomy
