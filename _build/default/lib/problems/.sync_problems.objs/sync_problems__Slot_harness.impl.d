lib/problems/slot_harness.ml: Fun Ivl List Printf Process Slot_intf Sync_platform Sync_resources Trace
