open Sync_platform

let abort_policy : Fault.abort_policy = `Propagate

type 'a t = {
  lock : Mutex.t;
  changed : Condition.t;
  state : 'a;
  mutable blocked : int;
}

let create state =
  { lock = Mutex.create (); changed = Condition.create (); state;
    blocked = 0 }

let region ?when_ t f =
  Mutex.protect t.lock (fun () ->
      (match when_ with
      | None -> ()
      | Some guard -> (
        Fault.site "ccr.pre-wait";
        t.blocked <- t.blocked + 1;
        match
          while not (guard t.state) do
            Condition.wait t.changed t.lock
          done
        with
        | () -> t.blocked <- t.blocked - 1
        | exception e ->
          (* A raising guard (or injected abort while blocked) must not
             leave the blocked count over-stated. *)
          t.blocked <- t.blocked - 1;
          raise e));
      match f t.state with
      | v ->
        (* Any region body may have changed the state: re-test every
           guard, also when the body aborted partway through a change. *)
        Condition.broadcast t.changed;
        v
      | exception e ->
        Condition.broadcast t.changed;
        raise e)

let await t p = region ~when_:p t ignore

let waiters t = Mutex.protect t.lock (fun () -> t.blocked)
