lib/problems/slot_mon.ml: Info Meta Monitor Protected Sync_monitor Sync_taxonomy
