(** Workload driver and checker for the FCFS problem.

    Checking grant order against request order from a free-running
    concurrent trace is unsound (recording and queue arrival can be
    reordered by scheduling noise), so the driver builds a deterministic
    queue instead: a distinguished {e holder} occupies the resource
    (its resource body blocks on a latch), the driver then launches the
    contenders one at a time — recording each [Request] itself, in launch
    order, and giving each a settle delay to park — and finally releases
    the holder. The checker requires the drain order to equal the launch
    order, plus mutual exclusion from both the trace and the resource's
    own overlap check. *)

open Sync_platform

type report = { trace : Trace.event list }

let holder_pid = 999

let run (module S : Fcfs_intf.S) ?(users = 5) ?(rounds = 3) ?(work = 100)
    ?settle () =
  let settle =
    match settle with
    | Some s -> s
    | None -> Testwait.settle_s ~default:0.01 ()
  in
  let trace = Trace.create () in
  let busy = Atomic.make false in
  let gate = ref (Latch.create 1) in
  let res_use ~pid =
    Trace.record trace ~pid ~op:"use" ~phase:Trace.Enter ();
    if not (Atomic.compare_and_set busy false true) then
      raise (Sync_resources.Busywork.Ill_synchronized "fcfs: overlap");
    if pid = holder_pid then Latch.wait !gate
    else Sync_resources.Busywork.spin work;
    Atomic.set busy false;
    Trace.record trace ~pid ~op:"use" ~phase:Trace.Exit ()
  in
  let t = S.create ~use:res_use in
  Fun.protect
    ~finally:(fun () -> S.stop t)
    (fun () ->
      for _ = 1 to rounds do
        gate := Latch.create 1;
        let holder = Process.spawn ~backend:`Thread (fun () ->
            S.use t ~pid:holder_pid)
        in
        Thread.delay settle;
        let contenders =
          List.init users (fun pid ->
              Trace.record trace ~pid ~op:"use" ~phase:Trace.Request ();
              let c = Process.spawn ~backend:`Thread (fun () ->
                  S.use t ~pid)
              in
              Thread.delay settle;
              c)
        in
        Latch.arrive !gate;
        Process.join holder;
        List.iter Process.join contenders
      done);
  { trace = Trace.events trace }

(* Deterministic-schedule variant of {!run}: one round, with quiescence
   in place of the settle delays — each contender is fully parked in the
   mechanism's queue before the next is launched, so the request order is
   exact and the drain order depends only on the mechanism. Must be
   called inside a [Detrt.run] body. *)
let det_run (module S : Fcfs_intf.S) ?(users = 4) () =
  let trace = Trace.create () in
  let gate = Latch.create 1 in
  let res_use ~pid =
    Trace.record trace ~pid ~op:"use" ~phase:Trace.Enter ();
    if pid = holder_pid then Latch.wait gate;
    Trace.record trace ~pid ~op:"use" ~phase:Trace.Exit ()
  in
  let t = S.create ~use:res_use in
  Fun.protect
    ~finally:(fun () -> S.stop t)
    (fun () ->
      let holder = Process.spawn (fun () -> S.use t ~pid:holder_pid) in
      Detrt.await_quiescence ();
      let contenders =
        List.init users (fun pid ->
            Trace.record trace ~pid ~op:"use" ~phase:Trace.Request ();
            let c = Process.spawn (fun () -> S.use t ~pid) in
            Detrt.await_quiescence ();
            c)
      in
      Latch.arrive gate;
      Process.join holder;
      List.iter Process.join contenders);
  { trace = Trace.events trace }

(* Abort-injection variant of {!run}: one staged round where the body
   fault site ["fcfs.use.body"] may abort a contender's use (the holder is
   exempt — it anchors the staging), and mechanism-internal sites may
   abort a parked contender out of the queue. An aborted contender simply
   drops out; the drain must still be FIFO over the survivors, exclusive,
   and complete. *)

type abort_report = {
  abort_trace : Trace.event list;
  users : int;
  aborted : int;
  poisoned : bool;
}

let run_abort (module S : Fcfs_intf.S) ?(users = 5) ?settle () =
  let settle =
    match settle with
    | Some s -> s
    | None -> Testwait.settle_s ~default:0.01 ()
  in
  let trace = Trace.create () in
  let busy = Atomic.make false in
  let gate = Latch.create 1 in
  let res_use ~pid =
    if pid <> holder_pid then Fault.site "fcfs.use.body";
    Trace.record trace ~pid ~op:"use" ~phase:Trace.Enter ();
    if not (Atomic.compare_and_set busy false true) then
      raise (Sync_resources.Busywork.Ill_synchronized "fcfs: overlap");
    if pid = holder_pid then Latch.wait gate
    else Sync_resources.Busywork.spin 100;
    Atomic.set busy false;
    Trace.record trace ~pid ~op:"use" ~phase:Trace.Exit ()
  in
  let t = S.create ~use:res_use in
  let aborted = Atomic.make 0 in
  let poisoned = Atomic.make false in
  Fun.protect
    ~finally:(fun () -> try S.stop t with _ -> ())
    (fun () ->
      let holder =
        Process.spawn ~backend:`Thread (fun () ->
            try S.use t ~pid:holder_pid
            with Sync_csp.Csp.Poisoned _ -> Atomic.set poisoned true)
      in
      Thread.delay settle;
      let contenders =
        List.init users (fun pid ->
            Trace.record trace ~pid ~op:"use" ~phase:Trace.Request ();
            let c =
              Process.spawn ~backend:`Thread (fun () ->
                  match S.use t ~pid with
                  | () -> ()
                  | exception Fault.Injected _ -> Atomic.incr aborted
                  | exception Sync_csp.Csp.Poisoned _ ->
                    Atomic.set poisoned true)
            in
            Thread.delay settle;
            c)
      in
      Latch.arrive gate;
      Process.join holder;
      List.iter Process.join contenders);
  { abort_trace = Trace.events trace;
    users;
    aborted = Atomic.get aborted;
    poisoned = Atomic.get poisoned }

let check_abort report =
  match Ivl.check_wellformed report.abort_trace with
  | Error _ as e -> e
  | Ok () ->
    let ivls = Ivl.intervals report.abort_trace in
    (match Ivl.exclusion_violations ~conflicts:(fun _ _ -> true) ivls with
    | _ :: _ -> Error "mutual exclusion violated"
    | [] -> (
      let completed =
        List.length (List.filter (fun i -> i.Ivl.pid <> holder_pid) ivls)
      in
      if
        (not report.poisoned)
        && completed <> report.users - report.aborted
      then
        Error
          (Printf.sprintf
             "lost contenders: %d completed of %d launched (%d aborted)"
             completed report.users report.aborted)
      else
        match Ivl.fifo_violations ivls with
        | [] -> Ok ()
        | (a, b) :: _ ->
          Error
            (Printf.sprintf
               "FCFS violated among survivors: pid %d (request %d) granted \
                before pid %d (request %d)"
               a.Ivl.pid a.Ivl.request b.Ivl.pid b.Ivl.request)))

let check report =
  match Ivl.check_wellformed report.trace with
  | Error _ as e -> e
  | Ok () ->
  let ivls = Ivl.intervals report.trace in
  match Ivl.exclusion_violations ~conflicts:(fun _ _ -> true) ivls with
  | _ :: _ -> Error "mutual exclusion violated"
  | [] -> (
    match Ivl.fifo_violations ivls with
    | [] -> Ok ()
    | (a, b) :: _ ->
      Error
        (Printf.sprintf
           "FCFS violated: pid %d (request %d) granted before pid %d \
            (request %d)"
           a.Ivl.pid a.Ivl.request b.Ivl.pid b.Ivl.request))

let verify ?users ?rounds ?settle (module S : Fcfs_intf.S) =
  match run (module S) ?users ?rounds ?settle () with
  | report -> check report
  | exception Sync_resources.Busywork.Ill_synchronized msg ->
    Error ("resource contract violated: " ^ msg)
