lib/ccr/ccr.ml: Condition Mutex
