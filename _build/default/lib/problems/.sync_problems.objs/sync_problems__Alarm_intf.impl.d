lib/problems/alarm_intf.ml: Constr Info Meta Spec Sync_taxonomy
