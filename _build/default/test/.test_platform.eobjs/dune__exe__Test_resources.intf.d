test/test_resources.mli:
