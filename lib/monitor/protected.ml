(* [after]/[abort] run masked: once [op]'s effect is committed (or being
   compensated), the bookkeeping that reconciles the synchronizer with it
   must not itself be abortable — an injection there would leave flags and
   counts pointing at an effect that already happened. *)
let access m ~before ~after ?abort op =
  let t0 = Sync_trace.Probe.now () in
  Monitor.with_monitor m before;
  match op () with
  | v ->
    Sync_platform.Fault.mask (fun () -> Monitor.with_monitor m after);
    Sync_trace.Probe.span Op ~site:"protected.access" ~since:t0 ~arg:0;
    v
  | exception e ->
    Sync_platform.Fault.mask (fun () ->
        Monitor.with_monitor m
          (match abort with Some f -> f | None -> after));
    raise e

let access_inside m op = Monitor.with_monitor m op
