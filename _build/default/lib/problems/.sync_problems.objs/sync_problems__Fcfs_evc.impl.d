lib/problems/fcfs_evc.ml: Eventcount Fun Info Meta Sequencer Sync_platform Sync_taxonomy
