lib/csp/csp.ml: Condition List Mutex
