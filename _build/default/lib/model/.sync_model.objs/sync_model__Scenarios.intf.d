lib/model/scenarios.mli:
