(** Log-bucketed latency histogram (HDR-histogram style).

    Values (nanoseconds, non-negative ints) are binned into log-linear
    buckets: exact below [2^sub_bits], then [2^sub_bits] linear
    sub-buckets per power of two, giving a bounded relative error of
    [2^-sub_bits] (≈ 3% at the default precision of 5 bits) across the
    whole 63-bit range with a fixed ~1.9k-bucket footprint. This is the
    shape every serious latency recorder uses: constant-time record,
    constant memory, quantiles by bucket walk, and exact lossless merge
    (bucket boundaries are identical for equal precision).

    A histogram is {b single-writer}: one worker records into its own
    histogram with no synchronization (that is what makes the hot path a
    handful of arithmetic ops and one array increment), and histograms
    are merged after the workers quiesce. Cross-thread mutation of one
    histogram is a caller bug. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 5, range 1..10) sets the per-power-of-two
    sub-bucket precision; relative quantile error is bounded by
    [2^-sub_bits]. *)

val record : t -> int -> unit
(** Record one value. Negative values clamp to 0. Constant time. *)

val record_n : t -> int -> int -> unit
(** [record_n t v n] records [v] with multiplicity [n >= 0]. *)

val count : t -> int
(** Total recorded values. *)

val min_value : t -> int
(** Exact smallest recorded value; 0 on an empty histogram. *)

val max_value : t -> int
(** Exact largest recorded value; 0 on an empty histogram. *)

val mean : t -> float
(** Exact arithmetic mean (sums are kept outside the buckets); 0 on an
    empty histogram. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: an upper bound of the bucket holding
    the value of rank [ceil (q * count)], clamped to the exact recorded
    [min_value]/[max_value]. Within the precision bound of the true
    quantile. 0 on an empty histogram. Monotone in [q]. *)

val merge_into : into:t -> t -> unit
(** Add every recorded value of the source into [into]. Lossless: the
    result is indistinguishable from having recorded both value streams
    into one histogram.
    @raise Invalid_argument if the precisions differ. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' recordings (inputs untouched). *)

val copy : t -> t

val nonempty_buckets : t -> (int * int * int) list
(** [(lo, hi, count)] per occupied bucket, ascending; the bucket holds
    recorded values [v] with [lo <= v <= hi]. Counts sum to {!count}. *)
