lib/eval/registry.mli: Meta Spec Sync_problems Sync_taxonomy
