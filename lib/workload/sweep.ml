open Sync_metrics

type cell = { domains : int; report : Report.t }

let default_domain_counts () =
  List.sort_uniq compare (1 :: 2 :: 4 :: [ Domain.recommended_domain_count () ])

let run ?params ?tier ?(progress = ignore) ~problem ~mechanism ~base
    ~domain_counts () =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match Target.create ?params ?tier ~problem ~mechanism () with
      | Error e -> Error e
      | Ok instance ->
        let report =
          Loadgen.run instance { base with Loadgen.workers = n }
        in
        let cell = { domains = n; report } in
        progress cell;
        go (cell :: acc) rest)
  in
  go [] domain_counts

let cell_row c =
  let s = c.report.Report.summary in
  let q f = Summary.overall_quantile s f in
  Emit.Obj
    [ ("mechanism", Emit.Str c.report.Report.mechanism);
      ("problem", Emit.Str c.report.Report.problem);
      ("variant", Emit.Str c.report.Report.variant);
      ("tier", Emit.Str c.report.Report.tier);
      ("domains", Emit.Int c.domains);
      ("throughput_per_s", Emit.Float s.Summary.throughput_per_s);
      ("total_ops", Emit.Int s.Summary.total_ops);
      ("total_failures", Emit.Int s.Summary.total_failures);
      ("p50_ns", Emit.Int (q (fun o -> o.Summary.p50_ns)));
      ("p95_ns", Emit.Int (q (fun o -> o.Summary.p95_ns)));
      ("p99_ns", Emit.Int (q (fun o -> o.Summary.p99_ns)));
      ("p999_ns", Emit.Int (q (fun o -> o.Summary.p999_ns)));
      ("max_ns", Emit.Int (q (fun o -> o.Summary.max_ns)));
      ("per_op",
       match Summary.to_json s with
       | Emit.Obj fields -> List.assoc "per_op" fields
       | _ -> Emit.Null) ]

let sweep_to_json ~problem ~mechanism ~base cells =
  Emit.Obj
    [ ("problem", Emit.Str problem);
      ("mechanism", Emit.Str mechanism);
      ("mode",
       Emit.Str
         (match base.Loadgen.mode with
         | Loadgen.Closed -> "closed"
         | Loadgen.Open_loop _ -> "open"));
      ("duration_ms", Emit.Int base.Loadgen.duration_ms);
      ("warmup_ms", Emit.Int base.Loadgen.warmup_ms);
      ("seed", Emit.Int base.Loadgen.seed);
      ("cells", Emit.List (List.map cell_row cells)) ]

type baseline_spec = {
  mechanisms : string list;
  problems : string list;
  domain_counts : int list;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  params : Target.params;
}

let default_baseline_spec () =
  { mechanisms = [ "semaphore"; "monitor"; "serializer"; "pathexpr"; "csp";
                   "ccr" ];
    problems = [ "bounded-buffer"; "readers-writers"; "fcfs" ];
    domain_counts = [ 1; 2; 4 ];
    duration_ms = Loadgen.duration_from_env ~default:150;
    warmup_ms = 50;
    seed = 42;
    params = Target.default_params }

let baseline_config spec =
  { Loadgen.workers = 1; backend = `Domain; duration_ms = spec.duration_ms;
    warmup_ms = spec.warmup_ms; mode = Loadgen.Closed; seed = spec.seed;
    think_us = 0 }

exception Baseline_failure of string

let baseline ?progress spec =
  let base = baseline_config spec in
  try
    Ok
      (List.concat_map
         (fun problem ->
           List.concat_map
             (fun mechanism ->
               match
                 run ~params:spec.params ?progress ~problem ~mechanism ~base
                   ~domain_counts:spec.domain_counts ()
               with
               | Error e ->
                 raise
                   (Baseline_failure
                      (Printf.sprintf "%s@%s: %s" problem mechanism e))
               | Ok cells -> cells)
             spec.mechanisms)
         spec.problems)
  with Baseline_failure e -> Error e

(* ------------------------------------------------------------------ *)
(* E22: the default-vs-fast substrate grid. Same machinery as the E20
   baseline, but every (problem, mechanism, domains) cell is run twice
   — once per tier — with identical seed and windows, so the committed
   grid holds side-by-side rows and the ratio between adjacent cells
   is the measured substrate win. *)

let default_e22_spec () =
  let b = default_baseline_spec () in
  (* Eventcounts ride along: they are not part of the six-mechanism E20
     grid, but their barging wakeups are exactly the shape the fast
     substrate rewards, so the E22 grid records them wherever the
     workload engine offers a target. *)
  { b with
    mechanisms = b.mechanisms @ [ "eventcount" ];
    domain_counts = [ 1; 4 ] }

let e22 ?progress ?(tiers = [ `Default; `Fast ]) spec =
  let base = baseline_config spec in
  try
    Ok
      (List.concat_map
         (fun problem ->
           let offered = Target.mechanisms ~problem in
           List.concat_map
             (fun mechanism ->
               (* Unlike the E20 baseline, the E22 grid tolerates a
                  mechanism with partial problem coverage (eventcount has
                  no readers-writers target): absent pairs are skipped,
                  anything else still fails the whole grid. *)
               if not (List.mem mechanism offered) then []
               else
                 List.concat_map
                   (fun tier ->
                     match
                       run ~params:spec.params ~tier ?progress ~problem
                         ~mechanism ~base ~domain_counts:spec.domain_counts ()
                     with
                     | Error e ->
                       raise
                         (Baseline_failure
                            (Printf.sprintf "%s@%s[%s]: %s" problem mechanism
                               (Target.tier_name tier) e))
                     | Ok cells -> cells)
                   tiers)
             spec.mechanisms)
         spec.problems)
  with Baseline_failure e -> Error e

let e22_to_json spec cells =
  Emit.Obj
    [ ("experiment", Emit.Str "E22");
      ("description",
       Emit.Str
         "contention-adaptive platform fast paths: the E20 grid run on \
          both substrate tiers (default stdlib-backed vs fast \
          CAS/spin-then-park) with identical seeds and windows; adjacent \
          tier rows of one cell measure the substrate, not the mechanism");
      ("mode", Emit.Str "closed");
      ("backend", Emit.Str "domain");
      ("duration_ms", Emit.Int spec.duration_ms);
      ("warmup_ms", Emit.Int spec.warmup_ms);
      ("seed", Emit.Int spec.seed);
      ("ocaml", Emit.Str Sys.ocaml_version);
      ("recommended_domains", Emit.Int (Domain.recommended_domain_count ()));
      ("tiers", Emit.List [ Emit.Str "default"; Emit.Str "fast" ]);
      ("mechanisms", Emit.List (List.map (fun m -> Emit.Str m) spec.mechanisms));
      ("problems", Emit.List (List.map (fun p -> Emit.Str p) spec.problems));
      ("domain_counts",
       Emit.List (List.map (fun d -> Emit.Int d) spec.domain_counts));
      ("rows", Emit.List (List.map cell_row cells)) ]

let baseline_to_json spec cells =
  Emit.Obj
    [ ("experiment", Emit.Str "E20");
      ("description",
       Emit.Str
         "multicore workload baseline: closed-loop throughput and latency \
          quantiles per mechanism per problem per domain count");
      ("mode", Emit.Str "closed");
      ("backend", Emit.Str "domain");
      ("duration_ms", Emit.Int spec.duration_ms);
      ("warmup_ms", Emit.Int spec.warmup_ms);
      ("seed", Emit.Int spec.seed);
      ("ocaml", Emit.Str Sys.ocaml_version);
      ("recommended_domains", Emit.Int (Domain.recommended_domain_count ()));
      ("mechanisms", Emit.List (List.map (fun m -> Emit.Str m) spec.mechanisms));
      ("problems", Emit.List (List.map (fun p -> Emit.Str p) spec.problems));
      ("domain_counts",
       Emit.List (List.map (fun d -> Emit.Int d) spec.domain_counts));
      ("rows", Emit.List (List.map cell_row cells)) ]
