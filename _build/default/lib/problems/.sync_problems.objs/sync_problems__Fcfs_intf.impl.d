lib/problems/fcfs_intf.ml: Constr Info Meta Spec Sync_taxonomy
