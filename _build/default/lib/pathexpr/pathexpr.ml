exception Unsupported = Compile.Unsupported

exception Unknown_operation of string

type engine_kind = [ `Semaphore | `Gate ]

type t = {
  spec : Ast.spec;
  table : Compile.table;
  engine : Engine.t;
}

let compile ?(engine = `Semaphore) ?(env = []) spec =
  let engine =
    match engine with `Semaphore -> Engine.semaphore () | `Gate -> Engine.gate ()
  in
  { spec; table = Compile.compile ~engine ~env spec; engine }

let of_string ?engine ?env src = compile ?engine ?env (Parser.parse src)

let run t op body =
  match List.assoc_opt op t.table with
  | None -> raise (Unknown_operation op)
  | Some wrappers ->
    List.iter (fun w -> w.Compile.prologue ()) wrappers;
    let finish () =
      List.iter (fun w -> w.Compile.epilogue ()) wrappers;
      t.engine.Engine.poke ()
    in
    (match body () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let ops t = List.map fst t.table

let spec t = t.spec

let engine_name t = t.engine.Engine.name
