(** Readers-writers with path expressions — the paper's own Figures.

    - {!Fig1} is the Figure 1 readers-priority solution, transcribed
      {e faithfully, bug included}: footnote 3 observes that a second
      writer can overtake a reader that arrived while the first writer
      was still writing, so the solution does not actually implement the
      Courtois readers-priority specification. The scenario driver in
      {!Rw_harness} reproduces that anomaly deterministically (E1).
    - {!Fig2} is the Figure 2 writers-priority solution.
    - {!Plain} is [path {read} , write end]: the exclusion constraint
      alone, no priority guarantee — what the mechanism expresses without
      synchronization procedures.

    The extra operations ([writeattempt], [requestread], ...) are the
    paper's {e synchronization procedures}: gates with empty bodies (or
    bodies that only invoke the next gate), introduced because paths
    cannot state priority directly. Their nesting is what encodes the
    priorities — and what entangles the constraints (Section 5.1.2). *)

open Sync_taxonomy
module P = Sync_pathexpr.Pathexpr

module Fig1 = struct
  type t = { sys : P.t; res_read : pid:int -> int; res_write : pid:int -> unit }

  let mechanism = "pathexpr"

  let policy = Rw_intf.Readers_priority

  let paths =
    "path writeattempt end \
     path { requestread } , requestwrite end \
     path { read } , (openwrite ; write) end"

  let create ~read ~write =
    { sys = P.of_string paths; res_read = read; res_write = write }

  (* READ = begin requestread end; requestread = begin read end *)
  let read t ~pid =
    P.run t.sys "requestread" (fun () ->
        P.run t.sys "read" (fun () -> t.res_read ~pid))

  (* WRITE = begin writeattempt ; write end;
     writeattempt = begin requestwrite end;
     requestwrite = begin openwrite end

     Abort safety: the two top-level runs are SEQUENCED, so once
     [openwrite] has committed, the paths owe one [write]; if the second
     run aborts, that obligation must be retired with an empty write or
     the [(openwrite ; write)] sequence never drains. Nested runs (the
     attempt chain) need nothing: an inner abort unwinds each enclosing
     run's own rollback. The retire run is masked — it is recovery, not
     an injection point. *)
  let write t ~pid =
    P.run t.sys "writeattempt" (fun () ->
        P.run t.sys "requestwrite" (fun () ->
            P.run t.sys "openwrite" (fun () -> ())));
    match P.run t.sys "write" (fun () -> t.res_write ~pid) with
    | () -> ()
    | exception e ->
      Sync_platform.Fault.mask (fun () ->
          P.run t.sys "write" (fun () -> ()));
      raise e

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:"fig1-readers-priority"
      ~fragments:
        [ ("rw-exclusion",
           [ "path"; "{read},(openwrite;write)"; "end" ]);
          ("rw-priority",
           [ "path"; "writeattempt"; "end"; "path";
             "{requestread},requestwrite"; "end"; "requestread=begin read";
             "requestwrite=begin openwrite"; "writeattempt=begin requestwrite"
           ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
      ~sync_procedures:
        [ "writeattempt"; "requestread"; "requestwrite"; "openwrite" ]
      ~separation:Meta.Blended ()
end

module Fig2 = struct
  type t = { sys : P.t; res_read : pid:int -> int; res_write : pid:int -> unit }

  let mechanism = "pathexpr"

  let policy = Rw_intf.Writers_priority

  let paths =
    "path readattempt end \
     path requestread , { requestwrite } end \
     path { openread ; read } , write end"

  let create ~read ~write =
    { sys = P.of_string paths; res_read = read; res_write = write }

  (* READ = begin readattempt ; read end;
     readattempt = begin requestread end;
     requestread = begin openread end

     Abort safety: as in {!Fig1.write} — [openread] commits an entry into
     [{ openread ; read }], so an abort of the sequenced second run must
     retire the owed [read] (masked) or the group never drains and
     writers starve. The paper's synchronization procedures entangle not
     just the constraints (Section 5.1.2) but the abort handling too. *)
  let read t ~pid =
    P.run t.sys "readattempt" (fun () ->
        P.run t.sys "requestread" (fun () ->
            P.run t.sys "openread" (fun () -> ())));
    match P.run t.sys "read" (fun () -> t.res_read ~pid) with
    | v -> v
    | exception e ->
      Sync_platform.Fault.mask (fun () ->
          ignore (P.run t.sys "read" (fun () -> 0)));
      raise e

  (* WRITE = begin requestwrite end; requestwrite = begin write end *)
  let write t ~pid =
    P.run t.sys "requestwrite" (fun () ->
        P.run t.sys "write" (fun () -> t.res_write ~pid))

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:"fig2-writers-priority"
      ~fragments:
        [ ("rw-exclusion",
           [ "path"; "{openread;read},write"; "end" ]);
          ("rw-priority",
           [ "path"; "readattempt"; "end"; "path";
             "requestread,{requestwrite}"; "end"; "readattempt=begin \
              requestread"; "requestread=begin openread";
             "requestwrite=begin write" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
      ~sync_procedures:[ "readattempt"; "requestread"; "openread" ]
      ~separation:Meta.Blended ()
end

module Plain = struct
  type t = { sys : P.t; res_read : pid:int -> int; res_write : pid:int -> unit }

  let mechanism = "pathexpr"

  let policy = Rw_intf.No_priority

  let paths = "path { read } , write end"

  let create ~read ~write =
    { sys = P.of_string paths; res_read = read; res_write = write }

  let read t ~pid = P.run t.sys "read" (fun () -> t.res_read ~pid)

  let write t ~pid = P.run t.sys "write" (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers" ~variant:"no-priority"
      ~fragments:
        [ ("rw-exclusion", [ "path"; "{read},write"; "end" ]);
          ("rw-priority", []) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
      ~separation:Meta.Enforced ()
end
