lib/problems/slot_sem.ml: Info Meta Semaphore Sync_platform Sync_taxonomy
