exception Unsupported of string

type wrapped = {
  prologue : unit -> unit;
  epilogue : unit -> unit;
  undo : unit -> unit;
}

type table = (string * wrapped list) list

(* Mutable accumulation: op -> wrapped list in reverse declaration order,
   plus per-declaration duplicate detection. *)
type acc = {
  tbl : (string, wrapped list) Hashtbl.t;
  mutable order : string list; (* first-appearance order, reversed *)
  mutable in_decl : string list; (* ops seen in the current declaration *)
}

let add acc name w =
  if List.mem name acc.in_decl then
    raise
      (Unsupported
         (Printf.sprintf
            "operation %S appears twice in one path declaration" name));
  acc.in_decl <- name :: acc.in_decl;
  (match Hashtbl.find_opt acc.tbl name with
  | None ->
    acc.order <- name :: acc.order;
    Hashtbl.add acc.tbl name [ w ]
  | Some ws -> Hashtbl.replace acc.tbl name (w :: ws))

(* [undo] must return exactly the tokens [pro] consumed — the inverse of
   the prologue, NOT the epilogue: in a sequence the epilogue V's the
   {e next} link, which would advance the path as if the operation had
   completed, while undo V's the link the prologue P'd, restoring the
   state to before the operation started. *)
let rec comp (engine : Engine.t) env acc e ~pro ~epi ~undo =
  match e with
  | Ast.Op name -> add acc name { prologue = pro; epilogue = epi; undo }
  | Ast.Seq es ->
    let n = List.length es in
    let links = Array.init (n - 1) (fun _ -> engine.make_sem 0) in
    List.iteri
      (fun i e ->
        let pro = if i = 0 then pro else links.(i - 1).Engine.p in
        let epi = if i = n - 1 then epi else links.(i).Engine.v in
        let undo = if i = 0 then undo else links.(i - 1).Engine.v in
        comp engine env acc e ~pro ~epi ~undo)
      es
  | Ast.Sel es -> List.iter (fun e -> comp engine env acc e ~pro ~epi ~undo) es
  | Ast.Conc e ->
    let m = engine.make_sem 1 in
    let active = ref 0 in
    (* [m] is internal bookkeeping (the first-in/last-out bracket), not a
       cancellation point: its P/V run masked so an injected abort cannot
       lose the bracket token. The group-level [pro] IS the acquire wait
       — it stays injectable, with local compensation (it blocks while
       holding [m], so an abort must put the bracket back itself). *)
    let mask = Sync_platform.Fault.mask in
    let pro' () =
      mask m.Engine.p;
      incr active;
      (if !active = 1 then
         match pro () with
         | () -> ()
         | exception e ->
           decr active;
           mask m.Engine.v;
           raise e);
      mask m.Engine.v
    in
    let epi' () =
      mask m.Engine.p;
      decr active;
      if !active = 0 then epi ();
      mask m.Engine.v
    in
    let undo' () =
      mask m.Engine.p;
      decr active;
      if !active = 0 then undo ();
      mask m.Engine.v
    in
    comp engine env acc e ~pro:pro' ~epi:epi' ~undo:undo'
  | Ast.Bounded _ ->
    raise
      (Unsupported
         "a numeric bound is only allowed as the entire body of a path \
          declaration")
  | Ast.Pred (name, e) -> (
    match engine.pred_gate with
    | None ->
      raise
        (Unsupported
           (Printf.sprintf
              "predicate [%s]: engine %S has no predicate support" name
              engine.name))
    | Some gate -> (
      match List.assoc_opt name env with
      | None ->
        raise (Unsupported (Printf.sprintf "unbound predicate %S" name))
      | Some f ->
        comp engine env acc e
          ~pro:(fun () ->
            gate f;
            pro ())
          ~epi ~undo))

let compile_decl engine env acc decl =
  acc.in_decl <- [];
  let bound, body =
    match decl with Ast.Bounded (n, e) -> (n, e) | e -> (1, e)
  in
  let s = engine.Engine.make_sem bound in
  comp engine env acc body ~pro:s.Engine.p ~epi:s.Engine.v ~undo:s.Engine.v

let compile ~engine ~env spec =
  let acc = { tbl = Hashtbl.create 16; order = []; in_decl = [] } in
  List.iter (compile_decl engine env acc) spec;
  List.rev_map
    (fun name -> (name, List.rev (Hashtbl.find acc.tbl name)))
    acc.order
