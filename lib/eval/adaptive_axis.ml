(* E27: self-tuning synchronization, measured. One grid: for each
   problem x arrival-process x domain-count cell, the same load target
   is run on every static tier (default / fast / queue) and once on the
   adaptive tier, where each platform mutex is a hot-swappable site the
   feedback controller retiers live from the contention probes. Probe
   tracing is enabled for {e every} row — the controller needs it, so
   the static rows pay the same observation overhead and the
   tier-to-tier ratios stay honest (the [traced] field records it).

   The axis's claims, both computed over measured cells only:

   - {e never worst}: the adaptive row never falls below the worst
     static tier (with a small noise allowance) — the blocking CI gate;
   - {e win rate}: the fraction of cells where the adaptive row matches
     or beats the {e best} static tier — the headline the committed
     BENCH_E27.json tracks at 0.8. *)

open Sync_metrics
open Sync_workload
module Queuelock = Sync_prims.Queuelock
module Probe = Sync_trace.Probe
module Controller = Sync_adaptive.Controller

type status = Supported | Failed of string

type row = {
  problem : string;
  mechanism : string;
  arrival : Loadgen.arrival;
  domains : int;
  tier : string;
  status : status;
  throughput_per_s : float;
  p50_ns : int;
  p99_ns : int;
  flips : int;  (* controller flips during the run; 0 on static rows *)
}

type t = { rows : row list }

let empty = { rows = [] }

let is_empty t = t.rows = []

type spec = {
  cells : (string * string) list;  (* problem, mechanism *)
  static_tiers : Target.tier list;
  arrivals : Loadgen.arrival list;
  domains : int list;
  rate_per_s : float;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  never_worst_slack : float;  (* noise allowance on the blocking claim *)
  win_slack : float;  (* "matches best" allowance on the win rate *)
}

(* The default grid holds one producer/consumer, one read-mostly and
   one timer-driven problem under arrival processes whose contention
   regime differs (steady, slowly swinging, bursty) — the situations a
   static tier choice cannot serve all of at once. The window is longer
   than the other axes' defaults because the claims are steady-state
   ones: the controller spends its first three or four sampling windows
   observing and flipping, and a window short enough to be dominated by
   that ramp-up measures the transition, not the tuned system. *)
let default_spec () =
  { cells =
      [ ("bounded-buffer", "semaphore"); ("readers-writers", "monitor");
        ("alarm-clock", "wheel") ];
    static_tiers = [ `Default; `Fast; `Queue Queuelock.MCS ];
    arrivals = [ Loadgen.Poisson; Loadgen.Diurnal; Loadgen.Bursty ];
    domains = [ 4 ];
    rate_per_s = 20_000.;
    duration_ms = Loadgen.duration_from_env ~default:350;
    warmup_ms = 50;
    seed = 42;
    never_worst_slack = 0.85;
    (* "Matches the best static tier" tolerates 10%: the hot-swap
       indirection costs a few percent on every acquire, and cell noise
       on a small box is the same order — the claim separates "picked
       the right tier" from "lost to it outright". *)
    win_slack = 0.9 }

let dead_row ~problem ~mechanism ~arrival ~domains ~tier status =
  { problem; mechanism; arrival; domains; tier; status;
    throughput_per_s = 0.; p50_ns = 0; p99_ns = 0; flips = 0 }

let tier_label : Target.tier -> string = Target.tier_name

let cell spec ~problem ~mechanism ~arrival ~domains ~(tier : Target.tier) =
  let cfg =
    { Loadgen.workers = domains; backend = `Domain;
      duration_ms = spec.duration_ms; warmup_ms = spec.warmup_ms;
      mode = Loadgen.Open_loop { rate_per_s = spec.rate_per_s; arrival };
      seed = spec.seed; think_us = 0 }
  in
  let tier_s = tier_label tier in
  let dead = dead_row ~problem ~mechanism ~arrival ~domains ~tier:tier_s in
  match Target.create ~tier ~problem ~mechanism () with
  | Error e -> dead (Failed e)
  | exception e -> dead (Failed (Printexc.to_string e))
  | Ok inst -> (
    let go () =
      match tier with
      | `Adaptive ->
        let report, ctrl =
          Controller.with_controller (fun () -> Loadgen.run inst cfg)
        in
        (report, Controller.flips ctrl)
      | _ -> (Loadgen.run inst cfg, 0)
    in
    match Probe.with_tracing go with
    | (report, flips), _events ->
      let s = report.Report.summary in
      if s.Summary.total_failures > 0 then
        dead
          (Failed (Printf.sprintf "%d op failures" s.Summary.total_failures))
      else
        let q f = Summary.overall_quantile s f in
        { problem; mechanism; arrival; domains; tier = tier_s;
          status = Supported; throughput_per_s = s.Summary.throughput_per_s;
          p50_ns = q (fun o -> o.Summary.p50_ns);
          p99_ns = q (fun o -> o.Summary.p99_ns); flips }
    | exception e -> dead (Failed (Printexc.to_string e)))

let run ?(progress = ignore) spec =
  let rows =
    List.concat_map
      (fun (problem, mechanism) ->
        List.concat_map
          (fun arrival ->
            List.concat_map
              (fun domains ->
                List.map
                  (fun tier ->
                    let r =
                      cell spec ~problem ~mechanism ~arrival ~domains ~tier
                    in
                    progress r;
                    r)
                  (spec.static_tiers @ [ `Adaptive ]))
              spec.domains)
          spec.arrivals)
      spec.cells
  in
  { rows }

let row_ok r = match r.status with Failed _ -> false | Supported -> true

let all_ok t = List.for_all row_ok t.rows

(* Group rows into comparison cells: same problem/arrival/domains,
   different tier. Only fully measured groups participate in claims. *)
let groups t =
  let key r = (r.problem, r.mechanism, r.arrival, r.domains) in
  let keys =
    List.sort_uniq compare (List.map key (List.filter row_ok t.rows))
  in
  List.filter_map
    (fun k ->
      let rs = List.filter (fun r -> row_ok r && key r = k) t.rows in
      let adaptive = List.find_opt (fun r -> r.tier = "adaptive") rs in
      let static = List.filter (fun r -> r.tier <> "adaptive") rs in
      match (adaptive, static) with
      | Some a, _ :: _ -> Some (a, static)
      | _ -> None)
    keys

let never_worst ?slack t =
  let gs = groups t in
  gs <> []
  && List.for_all
       (fun ((a : row), static) ->
         let slack =
           match slack with
           | Some s -> s
           | None -> 0.85 (* default_spec's never_worst_slack *)
         in
         let worst =
           List.fold_left
             (fun acc r -> Float.min acc r.throughput_per_s)
             Float.max_float static
         in
         a.throughput_per_s >= worst *. slack)
       gs

let win_rate ?(slack = 0.95) t =
  match groups t with
  | [] -> 0.
  | gs ->
    let wins =
      List.length
        (List.filter
           (fun ((a : row), static) ->
             let best =
               List.fold_left
                 (fun acc r -> Float.max acc r.throughput_per_s)
                 0. static
             in
             a.throughput_per_s >= best *. slack)
           gs)
    in
    float_of_int wins /. float_of_int (List.length gs)

let total_flips t =
  List.fold_left (fun acc r -> acc + r.flips) 0 t.rows

let status_string = function
  | Supported -> "ok"
  | Failed e -> "FAILED: " ^ e

let pp ppf t =
  Format.fprintf ppf "  %-16s %-10s %-8s %7s %-9s %12s %9s %9s %6s  %s@."
    "problem" "mechanism" "arrival" "domains" "tier" "ops/s" "p50 ns"
    "p99 ns" "flips" "status";
  List.iter
    (fun r ->
      match r.status with
      | Supported ->
        Format.fprintf ppf
          "  %-16s %-10s %-8s %7d %-9s %12.0f %9d %9d %6d  %s@." r.problem
          r.mechanism
          (Loadgen.arrival_name r.arrival)
          r.domains r.tier r.throughput_per_s r.p50_ns r.p99_ns r.flips
          (status_string r.status)
      | Failed _ ->
        Format.fprintf ppf
          "  %-16s %-10s %-8s %7d %-9s %12s %9s %9s %6s  %s@." r.problem
          r.mechanism
          (Loadgen.arrival_name r.arrival)
          r.domains r.tier "-" "-" "-" "-" (status_string r.status))
    t.rows;
  Format.fprintf ppf
    "  adaptive never below worst static: %b   win rate vs best static: \
     %.2f   flips: %d@."
    (never_worst t) (win_rate t) (total_flips t)

let row_to_json r =
  Emit.Obj
    ([ ("problem", Emit.Str r.problem);
       ("mechanism", Emit.Str r.mechanism);
       ("arrival", Emit.Str (Loadgen.arrival_name r.arrival));
       ("domains", Emit.Int r.domains); ("tier", Emit.Str r.tier) ]
    @ (match r.status with
      | Supported -> [ ("status", Emit.Str "supported") ]
      | Failed e ->
        [ ("status", Emit.Str "failed"); ("error", Emit.Str e) ])
    @
    match r.status with
    | Supported ->
      [ ("throughput_per_s", Emit.Float r.throughput_per_s);
        ("p50_ns", Emit.Int r.p50_ns); ("p99_ns", Emit.Int r.p99_ns);
        ("flips", Emit.Int r.flips) ]
    | _ -> [])

let rows_to_json t =
  Emit.Obj
    [ ("rows", Emit.List (List.map row_to_json t.rows));
      ("never_worst", Emit.Bool (never_worst t));
      ("win_rate", Emit.Float (win_rate t));
      ("flips", Emit.Int (total_flips t)) ]

let to_json spec t =
  Emit.Obj
    [ ("experiment", Emit.Str "E27");
      ("description",
       Emit.Str
         "self-tuning tier: each problem x arrival x domain cell run on \
          every static platform tier and on the adaptive tier, where a \
          feedback controller retiers hot-swappable mutex sites live from \
          the contention probes; probe tracing on for every row");
      ("mode", Emit.Str "open");
      ("backend", Emit.Str "domain");
      ("traced", Emit.Bool true);
      ("rate_per_s", Emit.Float spec.rate_per_s);
      ("duration_ms", Emit.Int spec.duration_ms);
      ("warmup_ms", Emit.Int spec.warmup_ms);
      ("seed", Emit.Int spec.seed);
      ("never_worst_slack", Emit.Float spec.never_worst_slack);
      ("win_slack", Emit.Float spec.win_slack);
      ("ocaml", Emit.Str Sys.ocaml_version);
      ("recommended_domains", Emit.Int (Domain.recommended_domain_count ()));
      ("cells",
       Emit.List
         (List.map
            (fun (p, m) -> Emit.List [ Emit.Str p; Emit.Str m ])
            spec.cells));
      ("static_tiers",
       Emit.List (List.map (fun s -> Emit.Str (tier_label s)) spec.static_tiers));
      ("arrivals",
       Emit.List
         (List.map (fun a -> Emit.Str (Loadgen.arrival_name a)) spec.arrivals));
      ("domain_counts", Emit.List (List.map (fun d -> Emit.Int d) spec.domains));
      ("never_worst", Emit.Bool (never_worst ~slack:spec.never_worst_slack t));
      ("win_rate", Emit.Float (win_rate ~slack:spec.win_slack t));
      ("flips", Emit.Int (total_flips t));
      ("rows", Emit.List (List.map row_to_json t.rows)) ]
