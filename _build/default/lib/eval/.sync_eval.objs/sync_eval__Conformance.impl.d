lib/eval/conformance.ml: Format List Meta Printexc Registry Sync_taxonomy
