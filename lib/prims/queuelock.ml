(* The E23 scalable-lock tier: queue locks with local spinning. The E22
   adaptive mutex funnels every contending waiter through one cache
   line (the state word), so each handoff invalidates every spinner;
   the locks here give each waiter its own padded register to spin on
   and hand the lock off FIFO, so a release touches exactly one
   waiter's line. Like the E25 classes they are functors over {!Regs},
   so the same protocol code runs on SC atomics in production and on
   {!Detrt} recorded registers for DPOR certification.

   All three are static-process algorithms in the bakery mould: MCS and
   CLH map threads onto per-lock slot indices via an out-of-protocol
   registry (the protocol itself never reads it while contending); the
   ticket lock needs no slots at all. None are reentrant. *)

(* Cache-line spacing for the per-slot spin registers: OCaml 5.1 has no
   [Atomic.make_contended], so we reuse the Fastring idiom — allocate a
   live spacer block after each register so neighbouring registers land
   on different lines (minor-heap allocation is sequential). *)
let pad_words = 15

module Make (R : Regs.FULL) = struct
  let reg_maker pads =
    let k = ref 0 in
    fun v ->
      let r = R.make v in
      pads.(!k) <- Array.make pad_words 0;
      incr k;
      r

  (* Mellor-Crummey/Scott. The queue is implicit: [tail] names the last
     slot's node (slot+1; 0 = empty), each node carries a [next] link
     filled in by its successor and a [locked] flag its owner spins on.
     The tail exchange is a CAS loop — still one committed RMW per
     arrival, so FIFO order is the order of successful installs. *)
  module Mcs = struct
    type t = {
      tail : R.t;
      next : R.t array;
      locked : R.t array;
      pads : int array array;
    }

    let create ?(slots = 64) () =
      let pads = Array.make ((2 * slots) + 1) [||] in
      let reg = reg_maker pads in
      let tail = reg 0 in
      let next = Array.init slots (fun _ -> reg 0) in
      let locked = Array.init slots (fun _ -> reg 0) in
      { tail; next; locked; pads }

    let rec swap_tail t v =
      let seen = R.get t.tail in
      if R.cas t.tail seen v then seen else swap_tail t v

    let lock t ~slot =
      R.set t.next.(slot) 0;
      R.set t.locked.(slot) 1;
      let pred = swap_tail t (slot + 1) in
      if pred <> 0 then begin
        R.set t.next.(pred - 1) (slot + 1);
        R.await ~watch:[| t.locked.(slot) |] (fun () ->
            R.get t.locked.(slot) = 0)
      end

    (* Genuinely non-blocking: a failed CAS means the queue was
       non-empty and nothing was published, so a timed-out caller never
       leaves a node behind (no lost wakeups on abandonment). *)
    let try_lock t ~slot =
      R.set t.next.(slot) 0;
      R.set t.locked.(slot) 1;
      R.cas t.tail 0 (slot + 1)

    let unlock t ~slot =
      if R.get t.next.(slot) = 0 then
        if not (R.cas t.tail (slot + 1) 0) then
          (* A successor has swapped the tail but not yet linked in;
             its store to our [next] is imminent. *)
          R.await ~watch:[| t.next.(slot) |] (fun () ->
              R.get t.next.(slot) <> 0);
      let s = R.get t.next.(slot) in
      if s <> 0 then R.set t.locked.(s - 1) 0
  end

  (* Craig/Landin/Hagersten. Waiters spin on their {e predecessor's}
     node; on release a thread abandons its node to the successor and
     adopts its predecessor's freed node for the next acquisition, so
     [slots + 1] nodes suffice forever. [my_node]/[my_pred] are plain
     owner-only bookkeeping, not protocol registers. *)
  module Clh = struct
    type t = {
      tail : R.t;
      nodes : R.t array;
      my_node : int array;
      my_pred : int array;
      pads : int array array;
    }

    let create ?(slots = 64) () =
      let pads = Array.make (slots + 2) [||] in
      let reg = reg_maker pads in
      let tail = reg 0 in
      let nodes = Array.init (slots + 1) (fun _ -> reg 0) in
      (* Node 0 starts released at the tail; slot [s] owns node [s+1]. *)
      { tail; nodes; my_node = Array.init slots (fun s -> s + 1);
        my_pred = Array.make slots 0; pads }

    let rec swap_tail t v =
      let seen = R.get t.tail in
      if R.cas t.tail seen v then seen else swap_tail t v

    let lock t ~slot =
      let n = t.my_node.(slot) in
      R.set t.nodes.(n) 1;
      let pred = swap_tail t n in
      t.my_pred.(slot) <- pred;
      R.await ~watch:[| t.nodes.(pred) |] (fun () -> R.get t.nodes.(pred) = 0)

    (* Once a node's owner released it (set it 0), only the successor
       that installs itself behind it may claim it — so if the tail
       node reads released and the CAS then succeeds, the lock is ours
       with no wait. On CAS failure nobody ever saw our node: withdraw
       it and report failure. *)
    let try_lock t ~slot =
      let p = R.get t.tail in
      if R.get t.nodes.(p) <> 0 then false
      else begin
        let n = t.my_node.(slot) in
        R.set t.nodes.(n) 1;
        if R.cas t.tail p n then begin
          t.my_pred.(slot) <- p;
          true
        end
        else begin
          R.set t.nodes.(n) 0;
          false
        end
      end

    let unlock t ~slot =
      let n = t.my_node.(slot) in
      t.my_node.(slot) <- t.my_pred.(slot);
      R.set t.nodes.(n) 0
  end

  (* Ticket lock with proportional backoff. Arrival order is the FAA on
     [next]; the wait is metered by queue distance — a waiter [d]
     tickets from the front burns a delay proportional to [d] between
     polls (the holders ahead must each finish a critical section
     before its turn, so polling sooner only generates coherence
     traffic). The delay is pure computation — no register reads — so
     under {!Detrt} it adds no scheduling points; after a bounded
     number of polls the wait hands off to [await] (backoff spin in
     production, a parked virtual task deterministically). *)
  module Ticket = struct
    type t = { next : R.t; owner : R.t; pads : int array array }

    let create () =
      let pads = Array.make 2 [||] in
      let reg = reg_maker pads in
      let next = reg 0 in
      let owner = reg 0 in
      { next; owner; pads }

    let poll_rounds = 4

    let spin_quantum = 48

    let delay d =
      for _ = 1 to d * spin_quantum do
        ignore (Sys.opaque_identity d)
      done

    let lock t =
      let my = R.faa t.next 1 in
      let rec poll n =
        let cur = R.get t.owner in
        cur = my
        || n > 0
           && begin
                delay (my - cur);
                poll (n - 1)
              end
      in
      if not (poll poll_rounds) then
        R.await ~watch:[| t.owner |] (fun () -> R.get t.owner = my)

    (* CAS on [next] instead of a committed FAA ticket: the attempt can
       decline, so this is a true non-blocking try — the expressiveness
       dent the FAA-only {!Faalock} documents does not apply here. *)
    let try_lock t =
      let cur = R.get t.owner in
      R.get t.next = cur && R.cas t.next cur (cur + 1)

    (* Only the holder writes [owner]: a single-writer increment. *)
    let unlock t = R.set t.owner (R.get t.owner + 1)
  end
end

(* ------------------------------------------------------------------ *)
(* Kind selection, scoped over primitive creation exactly like
   {!Prims.with_class} / [Fastpath.with_enabled]. Precedence against
   the other tiers is decided in the platform mutex (Det > Prim >
   Queue > Fast > Sys). *)

type kind = MCS | CLH | Ticket

let kind_name = function MCS -> "mcs" | CLH -> "clh" | Ticket -> "ticket"

let kind_of_string = function
  | "mcs" -> Some MCS
  | "clh" -> Some CLH
  | "ticket" -> Some Ticket
  | _ -> None

let all = [ MCS; CLH; Ticket ]

let flag : kind option Atomic.t = Atomic.make None

let selected () = Atomic.get flag

let with_kind k f =
  let prev = Atomic.get flag in
  Atomic.set flag (Some k);
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f

(* ------------------------------------------------------------------ *)
(* Production instances over SC atomics, behind one closure record so
   the platform mutex carries a single [Queue] representation. *)

module Q = Make (Regs.Shared)

let queue_slots = 64

(* Per-lock thread -> slot assignment for the slot-indexed locks; the
   same out-of-protocol registry idiom as the E25 bakery. *)
type q_slots = {
  reg_m : Stdlib.Mutex.t;
  tbl : (int, int) Hashtbl.t;
  mutable next_slot : int;
}

let slot_of_self r =
  let tid = Thread.id (Thread.self ()) in
  Stdlib.Mutex.lock r.reg_m;
  let s =
    match Hashtbl.find_opt r.tbl tid with
    | Some s -> s
    | None ->
      if r.next_slot >= queue_slots then begin
        Stdlib.Mutex.unlock r.reg_m;
        failwith
          (Printf.sprintf
             "Queuelock: more than %d distinct threads on one queue lock"
             queue_slots)
      end;
      let s = r.next_slot in
      r.next_slot <- s + 1;
      Hashtbl.add r.tbl tid s;
      s
  in
  Stdlib.Mutex.unlock r.reg_m;
  s

let q_slots () =
  { reg_m = Stdlib.Mutex.create (); tbl = Hashtbl.create 16; next_slot = 0 }

type lock = {
  qk_kind : kind;
  qk_lock : unit -> unit;
  qk_try : unit -> bool;
  qk_unlock : unit -> unit;
}

let make_lock = function
  | MCS ->
    let l = Q.Mcs.create ~slots:queue_slots () in
    let slots = q_slots () in
    { qk_kind = MCS;
      qk_lock = (fun () -> Q.Mcs.lock l ~slot:(slot_of_self slots));
      qk_try = (fun () -> Q.Mcs.try_lock l ~slot:(slot_of_self slots));
      qk_unlock = (fun () -> Q.Mcs.unlock l ~slot:(slot_of_self slots)) }
  | CLH ->
    let l = Q.Clh.create ~slots:queue_slots () in
    let slots = q_slots () in
    { qk_kind = CLH;
      qk_lock = (fun () -> Q.Clh.lock l ~slot:(slot_of_self slots));
      qk_try = (fun () -> Q.Clh.try_lock l ~slot:(slot_of_self slots));
      qk_unlock = (fun () -> Q.Clh.unlock l ~slot:(slot_of_self slots)) }
  | Ticket ->
    let l = Q.Ticket.create () in
    { qk_kind = Ticket;
      qk_lock = (fun () -> Q.Ticket.lock l);
      qk_try = (fun () -> Q.Ticket.try_lock l);
      qk_unlock = (fun () -> Q.Ticket.unlock l) }
