(* Deterministic-schedule exploration over the [Detrt] runtime: recorded
   schedules, replay, seeded random walk, PCT-style priority fuzzing,
   bounded exhaustive DFS, and greedy shrinking. A scenario instantiates
   the real mechanism implementation inside the run body (so every mutex
   and condition it creates dispatches to the virtual runtime) and checks
   its recorded trace afterwards with the existing checkers. *)

open Sync_platform

module Schedule = struct
  type entry = { alts : int; chosen : int }

  type t = entry array

  let length = Array.length

  let choices t = Array.map (fun e -> e.chosen) t

  let to_string t =
    if Array.length t = 0 then "-"
    else
      String.concat ","
        (Array.to_list
           (Array.map (fun e -> Printf.sprintf "%d/%d" e.chosen e.alts) t))

  let of_string s =
    let s = String.trim s in
    if s = "" || s = "-" then [||]
    else
      String.split_on_char ',' s
      |> List.map (fun tok ->
             match String.split_on_char '/' (String.trim tok) with
             | [ c; a ] -> { chosen = int_of_string c; alts = int_of_string a }
             | _ -> invalid_arg ("Schedule.of_string: bad token " ^ tok))
      |> Array.of_list
end

type outcome = {
  schedule : Schedule.t;
  steps : int;
  result : (unit, exn) result;
}

type instance = {
  body : unit -> unit;
  check : unit -> (unit, string) result;
}

type t = { name : string; descr : string; make : unit -> instance }

let scenario ~name ~descr make = { name; descr; make }

type verdict = { outcome : outcome; verdict : (unit, string) result }

let verdict_ok v = Result.is_ok v.verdict

let verdict_message v = match v.verdict with Ok () -> "ok" | Error m -> m

(* ------------------------------------------------------------------ *)
(* Pickers: every strategy is just a function from the candidate array
   to the index to run. [Detrt] only consults it when at least two
   alternatives exist, so recorded schedules contain no forced moves.   *)

type pick = int array -> int

let random_pick ~seed : pick =
  let g = Prng.make (Int64.of_int seed) in
  fun alts -> Prng.int g (Array.length alts)

(* PCT-style fuzzing [Burckhardt et al., ASPLOS'10]: each task gets a
   random priority on first sight; the highest-priority candidate runs.
   At [change_points] pre-sampled decision indices the current leader is
   demoted below everything, forcing the rare orderings that a uniform
   random walk visits with vanishing probability. *)
let pct_pick ?(change_points = 3) ?(horizon = 512) ~seed () : pick =
  let g = Prng.make (Int64.of_int seed) in
  let prio : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let change_at =
    let a = Array.init change_points (fun _ -> Prng.int g (max 1 horizon)) in
    Array.sort compare a;
    a
  in
  let next_change = ref 0 in
  let step = ref 0 in
  let p tid = Option.value (Hashtbl.find_opt prio tid) ~default:0 in
  let argmax alts =
    let best = ref 0 in
    Array.iteri (fun i tid -> if p tid > p alts.(!best) then best := i) alts;
    !best
  in
  fun alts ->
    Array.iter
      (fun tid ->
        if not (Hashtbl.mem prio tid) then
          Hashtbl.add prio tid (change_points + 1 + Prng.int g 1_000_000))
      alts;
    while !next_change < change_points && change_at.(!next_change) <= !step do
      let leader = alts.(argmax alts) in
      Hashtbl.replace prio leader (change_points - !next_change);
      incr next_change
    done;
    incr step;
    argmax alts

(* Byte-for-byte replay of a recorded schedule. Decisions beyond the end
   default to alternative 0; a mismatch in the number of alternatives
   means the scenario is not deterministic (or the schedule belongs to a
   different scenario) and fails loudly under [strict]. *)
let replay_pick ?(strict = true) (sched : Schedule.t) : pick =
  let i = ref 0 in
  fun alts ->
    let n = Array.length alts in
    let k = !i in
    incr i;
    if k >= Array.length sched then 0
    else begin
      let e = sched.(k) in
      if e.Schedule.alts <> n && strict then
        failwith
          (Printf.sprintf
             "Detsched.replay: schedule diverged at decision %d (recorded %d \
              alternatives, run offers %d)"
             k e.Schedule.alts n);
      if e.Schedule.chosen >= n then n - 1 else e.Schedule.chosen
    end

(* Replay from bare choice values (used by DFS prefixes and shrinking):
   like [replay_pick ~strict:false] but without recorded alternative
   counts. *)
let choices_pick (cs : int array) : pick =
  let i = ref 0 in
  fun alts ->
    let n = Array.length alts in
    let k = !i in
    incr i;
    if k >= Array.length cs then 0
    else if cs.(k) >= n then n - 1
    else cs.(k)

(* ------------------------------------------------------------------ *)
(* Running                                                              *)

let run_raw ?max_steps ~(pick : pick) body : outcome =
  let rev = ref [] in
  let count = ref 0 in
  let choose alts =
    let i = pick alts in
    rev := { Schedule.alts = Array.length alts; chosen = i } :: !rev;
    incr count;
    i
  in
  let sched () = Array.of_list (List.rev !rev) in
  match Detrt.run ?max_steps ~choose body with
  | steps -> { schedule = sched (); steps; result = Ok () }
  | exception e -> { schedule = sched (); steps = !count; result = Error e }

let run ?max_steps ~pick sc : verdict =
  let inst = ref None in
  let body () =
    let i = sc.make () in
    inst := Some i;
    i.body ()
  in
  let outcome = run_raw ?max_steps ~pick body in
  let verdict =
    match outcome.result with
    | Error e -> Error (Printexc.to_string e)
    | Ok () -> (
      match !inst with
      | Some i -> i.check ()
      | None -> Error "scenario instance was never created")
  in
  { outcome; verdict }

let run_random ?max_steps ~seed sc = run ?max_steps ~pick:(random_pick ~seed) sc

let run_pct ?max_steps ?change_points ?horizon ~seed sc =
  run ?max_steps ~pick:(pct_pick ?change_points ?horizon ~seed ()) sc

let replay ?max_steps ?strict sc sched =
  run ?max_steps ~pick:(replay_pick ?strict sched) sc

type sample_report = { runs : int; failure : (int * verdict) option }

let sample ?max_steps ?(runs = 100) ?(base_seed = 0) ?(strategy = `Random) sc =
  let picker seed =
    match strategy with
    | `Random -> random_pick ~seed
    | `Pct -> pct_pick ~seed ()
  in
  let rec go i =
    if i >= runs then { runs; failure = None }
    else
      let seed = base_seed + i in
      let v = run ?max_steps ~pick:(picker seed) sc in
      if verdict_ok v then go (i + 1)
      else { runs = i + 1; failure = Some (seed, v) }
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Bounded exhaustive search: stateless-model-checking style. Each run
   is replayed from a choice prefix (alternative 0 beyond it); after the
   run, every untaken alternative at or beyond the prefix length opens a
   new branch. The worklist is a stack with deepest branches first, so
   the frontier stays small. *)

type dfs_report = {
  explored : int;
  complete : bool;
  failures : (Schedule.t * string) list;
  deepest : int;
}

let explore_dfs ?max_steps ?(max_schedules = 10_000) ?(max_failures = 10) sc =
  let worklist = ref [ [||] ] in
  let explored = ref 0 in
  let failures = ref [] in
  let deepest = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match !worklist with
    | [] -> continue_ := false
    | _ when !explored >= max_schedules -> continue_ := false
    | prefix :: rest ->
      worklist := rest;
      let v = run ?max_steps ~pick:(choices_pick prefix) sc in
      incr explored;
      let sched = v.outcome.schedule in
      deepest := max !deepest (Array.length sched);
      (match v.verdict with
      | Error m ->
        if List.length !failures < max_failures then
          failures := (sched, m) :: !failures
      | Ok () -> ());
      (* Decisions below the prefix length were forced by the prefix;
         their siblings are enqueued when the ancestor run is expanded. *)
      let plen = Array.length prefix in
      let ext = ref [] in
      for i = plen to Array.length sched - 1 do
        let e = sched.(i) in
        for c = e.Schedule.chosen + 1 to e.Schedule.alts - 1 do
          let p =
            Array.append (Schedule.choices (Array.sub sched 0 i)) [| c |]
          in
          ext := p :: !ext
        done
      done;
      worklist := !ext @ !worklist
  done;
  { explored = !explored;
    complete = !worklist = [];
    failures = List.rev !failures;
    deepest = !deepest }

(* ------------------------------------------------------------------ *)
(* Greedy shrinking: first find the shortest failing prefix (everything
   beyond a prefix defaults to alternative 0), then zero out remaining
   non-default choices one at a time until a fixpoint. The result is a
   canonical failing schedule with as few non-default decisions as this
   local search can reach within [budget] replays. *)

type shrink_report = { shrunk : Schedule.t; message : string; attempts : int }

let shrink ?max_steps ?(budget = 300) sc (failing : Schedule.t) =
  let attempts = ref 0 in
  let fails cs =
    if !attempts >= budget then None
    else begin
      incr attempts;
      let v = run ?max_steps ~pick:(choices_pick cs) sc in
      match v.verdict with
      | Error m -> Some m
      | Ok () -> None
    end
  in
  let best = ref (Schedule.choices failing) in
  let best_msg =
    match fails !best with
    | Some m -> ref m
    | None -> invalid_arg "Detsched.shrink: the given schedule does not fail"
  in
  (try
     for len = 0 to Array.length !best - 1 do
       match fails (Array.sub !best 0 len) with
       | Some m ->
         best := Array.sub !best 0 len;
         best_msg := m;
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to Array.length !best - 1 do
      if !best.(i) <> 0 then begin
        let cand = Array.copy !best in
        cand.(i) <- 0;
        match fails cand with
        | Some m ->
          best := cand;
          best_msg := m;
          changed := true
        | None -> ()
      end
    done
  done;
  (* Trailing zeros are the replay default: drop them, then re-run once
     to rebuild the canonical schedule with alternative counts. *)
  let n = ref (Array.length !best) in
  while !n > 0 && !best.(!n - 1) = 0 do
    decr n
  done;
  let final = Array.sub !best 0 !n in
  incr attempts;
  let v = run ?max_steps ~pick:(choices_pick final) sc in
  match v.verdict with
  | Error m -> { shrunk = v.outcome.schedule; message = m; attempts = !attempts }
  | Ok () -> { shrunk = failing; message = !best_msg; attempts = !attempts }
