(** Workload driver and checker for the one-slot buffer.

    Several putters and getters contend; the checker verifies strict
    alternation (from the trace's [Enter] order), value pass-through
    (each get returns the value of the immediately preceding put), and the
    {!Sync_resources.Slot} contract (which catches overlap and
    out-of-turn access at the resource itself). *)

open Sync_platform

type report = { trace : Trace.event list }

let run (module S : Slot_intf.S) ?(putters = 3) ?(getters = 3)
    ?(items_per_putter = 20) ?(work = 30) () =
  let trace = Trace.create () in
  let slot = Sync_resources.Slot.create ~work () in
  let res_put ~pid v =
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Enter ~arg:v ();
    Sync_resources.Slot.put slot v;
    Trace.record trace ~pid ~op:"put" ~phase:Trace.Exit ~arg:v ()
  in
  let res_get ~pid =
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Enter ();
    let v = Sync_resources.Slot.get slot in
    Trace.record trace ~pid ~op:"get" ~phase:Trace.Exit ~arg:v ();
    v
  in
  let buffer = S.create ~put:res_put ~get:res_get in
  let total = putters * items_per_putter in
  let share g =
    (total / getters) + (if g < total mod getters then 1 else 0)
  in
  let putter pid () =
    for k = 1 to items_per_putter do
      let v = (pid * 1_000_000) + k in
      Trace.record trace ~pid ~op:"put" ~phase:Trace.Request ~arg:v ();
      S.put buffer ~pid v
    done
  in
  let getter g () =
    let pid = 100 + g in
    for _ = 1 to share g do
      Trace.record trace ~pid ~op:"get" ~phase:Trace.Request ();
      ignore (S.get buffer ~pid)
    done
  in
  let workers =
    List.init putters (fun pid -> putter pid)
    @ List.init getters (fun g -> getter g)
  in
  Fun.protect
    ~finally:(fun () -> S.stop buffer)
    (fun () -> Process.run_all ~backend:`Thread workers);
  { trace = Trace.events trace }

let check report =
  match Ivl.check_wellformed report.trace with
  | Error _ as e -> e
  | Ok () ->
  let ivls = Ivl.intervals report.trace in
  (* Strict alternation in grant order, starting with put. *)
  let rec alternation expected carried = function
    | [] -> Ok ()
    | i :: rest ->
      if i.Ivl.op <> expected then
        Error
          (Printf.sprintf "expected %s at seq %d, found %s" expected
             i.Ivl.enter i.Ivl.op)
      else if i.Ivl.op = "get" && i.Ivl.ret <> carried then
        Error
          (Printf.sprintf "get returned %d but last put stored %d" i.Ivl.ret
             carried)
      else
        let carried = if i.Ivl.op = "put" then i.Ivl.arg else carried in
        let expected = if i.Ivl.op = "put" then "get" else "put" in
        alternation expected carried rest
  in
  alternation "put" 0 ivls

let verify ?putters ?getters ?items_per_putter (module S : Slot_intf.S) =
  match run (module S) ?putters ?getters ?items_per_putter () with
  | report -> check report
  | exception Sync_resources.Busywork.Ill_synchronized msg ->
    Error ("resource contract violated: " ^ msg)
