lib/pathexpr/compile.ml: Array Ast Engine Hashtbl List Printf
