(** Child-process control for the multi-process drills: spawn a real
    bloom_serve daemon, SIGTERM it for a graceful drain, or [kill -9]
    it mid-load to exercise client recovery (the E24 Service axis). *)

type t

val spawn : exe:string -> args:string list -> t
(** [Unix.create_process] with inherited stdio. [args] excludes argv0. *)

val pid : t -> int

val sigterm : t -> unit

val kill9 : t -> unit

val wait : ?timeout_s:float -> t -> [ `Exited of int | `Signaled of int | `Timeout ]
(** Reap the child (polling; default 10 s). Safe to call after the
    child is already gone. *)

val wait_for_socket : ?timeout_s:float -> string -> bool
(** Poll until a Unix-domain socket at [path] accepts connections
    (default 5 s); the "daemon is up" barrier for drivers and tests. *)
