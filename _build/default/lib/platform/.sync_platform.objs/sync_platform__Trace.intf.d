lib/platform/trace.mli: Format
