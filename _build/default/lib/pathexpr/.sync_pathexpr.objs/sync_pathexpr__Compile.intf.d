lib/pathexpr/compile.mli: Ast Engine
