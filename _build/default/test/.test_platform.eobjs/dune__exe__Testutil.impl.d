test/testutil.ml: Alcotest Atomic Clock Int64 List Mutex Process Sync_platform Thread
