test/test_problems_rw.ml: Alcotest List Rw_ccr Rw_csp Rw_harness Rw_intf Rw_mon Rw_path Rw_sem Rw_ser Sync_problems
