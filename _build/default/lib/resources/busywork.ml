exception Ill_synchronized of string

let sink = ref 0

let spin n =
  for i = 1 to n do
    sink := !sink + i;
    if i land 15 = 0 then Thread.yield ()
  done
