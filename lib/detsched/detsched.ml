(* Deterministic-schedule exploration over the [Detrt] runtime: recorded
   schedules, replay, seeded random walk, PCT-style priority fuzzing,
   bounded exhaustive DFS, and greedy shrinking. A scenario instantiates
   the real mechanism implementation inside the run body (so every mutex
   and condition it creates dispatches to the virtual runtime) and checks
   its recorded trace afterwards with the existing checkers. *)

open Sync_platform

module Schedule = struct
  type entry = { alts : int; chosen : int }

  type t = entry array

  let length = Array.length

  let choices t = Array.map (fun e -> e.chosen) t

  let to_string t =
    if Array.length t = 0 then "-"
    else
      String.concat ","
        (Array.to_list
           (Array.map (fun e -> Printf.sprintf "%d/%d" e.chosen e.alts) t))

  let of_string s =
    let s = String.trim s in
    if s = "" || s = "-" then [||]
    else
      String.split_on_char ',' s
      |> List.map (fun tok ->
             let bad () =
               invalid_arg
                 ("Schedule.of_string: bad token \"" ^ String.trim tok ^ "\"")
             in
             match String.split_on_char '/' (String.trim tok) with
             | [ c; a ] -> (
               match (int_of_string_opt c, int_of_string_opt a) with
               | Some chosen, Some alts when chosen >= 0 && alts > chosen ->
                 { chosen; alts }
               | _ -> bad ())
             | _ -> bad ())
      |> Array.of_list
end

type outcome = {
  schedule : Schedule.t;
  steps : int;
  result : (unit, exn) result;
}

type instance = {
  body : unit -> unit;
  check : unit -> (unit, string) result;
}

type t = { name : string; descr : string; make : unit -> instance }

let scenario ~name ~descr make = { name; descr; make }

type verdict = { outcome : outcome; verdict : (unit, string) result }

let verdict_ok v = Result.is_ok v.verdict

let verdict_message v = match v.verdict with Ok () -> "ok" | Error m -> m

(* ------------------------------------------------------------------ *)
(* Pickers: every strategy is just a function from the candidate array
   to the index to run. [Detrt] only consults it when at least two
   alternatives exist, so recorded schedules contain no forced moves.   *)

type pick = int array -> int

let random_pick ~seed : pick =
  let g = Prng.make (Int64.of_int seed) in
  fun alts -> Prng.int g (Array.length alts)

(* PCT-style fuzzing [Burckhardt et al., ASPLOS'10]: each task gets a
   random priority on first sight; the highest-priority candidate runs.
   At [change_points] pre-sampled decision indices the current leader is
   demoted below everything, forcing the rare orderings that a uniform
   random walk visits with vanishing probability. *)
let pct_pick ?(change_points = 3) ?(horizon = 512) ~seed () : pick =
  let g = Prng.make (Int64.of_int seed) in
  let prio : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let change_at =
    let a = Array.init change_points (fun _ -> Prng.int g (max 1 horizon)) in
    Array.sort compare a;
    a
  in
  let next_change = ref 0 in
  let step = ref 0 in
  let p tid = Option.value (Hashtbl.find_opt prio tid) ~default:0 in
  let argmax alts =
    let best = ref 0 in
    Array.iteri (fun i tid -> if p tid > p alts.(!best) then best := i) alts;
    !best
  in
  fun alts ->
    Array.iter
      (fun tid ->
        if not (Hashtbl.mem prio tid) then
          Hashtbl.add prio tid (change_points + 1 + Prng.int g 1_000_000))
      alts;
    while !next_change < change_points && change_at.(!next_change) <= !step do
      let leader = alts.(argmax alts) in
      Hashtbl.replace prio leader (change_points - !next_change);
      incr next_change
    done;
    incr step;
    argmax alts

(* Byte-for-byte replay of a recorded schedule. Decisions beyond the end
   default to alternative 0; a mismatch in the number of alternatives
   means the scenario is not deterministic (or the schedule belongs to a
   different scenario) and fails loudly under [strict]. *)
let replay_pick ?(strict = true) (sched : Schedule.t) : pick =
  let i = ref 0 in
  fun alts ->
    let n = Array.length alts in
    let k = !i in
    incr i;
    if k >= Array.length sched then 0
    else begin
      let e = sched.(k) in
      if e.Schedule.alts <> n && strict then
        failwith
          (Printf.sprintf
             "Detsched.replay: schedule diverged at decision %d (recorded %d \
              alternatives, run offers %d)"
             k e.Schedule.alts n);
      if e.Schedule.chosen >= n then n - 1 else e.Schedule.chosen
    end

(* Replay from bare choice values (used by DFS prefixes and shrinking):
   like [replay_pick ~strict:false] but without recorded alternative
   counts. *)
let choices_pick (cs : int array) : pick =
  let i = ref 0 in
  fun alts ->
    let n = Array.length alts in
    let k = !i in
    incr i;
    if k >= Array.length cs then 0
    else if cs.(k) >= n then n - 1
    else cs.(k)

(* ------------------------------------------------------------------ *)
(* Running                                                              *)

let run_raw ?max_steps ?observe ~(pick : pick) body : outcome =
  let rev = ref [] in
  let count = ref 0 in
  let choose alts =
    let i = pick alts in
    rev := { Schedule.alts = Array.length alts; chosen = i } :: !rev;
    incr count;
    i
  in
  let sched () = Array.of_list (List.rev !rev) in
  match Detrt.run ?max_steps ?observe ~choose body with
  | steps -> { schedule = sched (); steps; result = Ok () }
  | exception e -> { schedule = sched (); steps = !count; result = Error e }

let run ?max_steps ?observe ~pick sc : verdict =
  let inst = ref None in
  let body () =
    let i = sc.make () in
    inst := Some i;
    i.body ()
  in
  let outcome = run_raw ?max_steps ?observe ~pick body in
  let verdict =
    match outcome.result with
    | Error e -> Error (Printexc.to_string e)
    | Ok () -> (
      match !inst with
      | Some i -> i.check ()
      | None -> Error "scenario instance was never created")
  in
  { outcome; verdict }

let run_random ?max_steps ~seed sc = run ?max_steps ~pick:(random_pick ~seed) sc

let run_pct ?max_steps ?change_points ?horizon ~seed sc =
  run ?max_steps ~pick:(pct_pick ?change_points ?horizon ~seed ()) sc

let replay ?max_steps ?strict sc sched =
  run ?max_steps ~pick:(replay_pick ?strict sched) sc

type sample_report = {
  runs : int;
  strategy : [ `Random | `Pct ];
  failure : (int * verdict) option;
}

let sample ?max_steps ?(runs = 100) ?(base_seed = 0) ?(strategy = `Random) sc =
  let picker seed =
    match strategy with
    | `Random -> random_pick ~seed
    | `Pct -> pct_pick ~seed ()
  in
  let rec go i =
    if i >= runs then { runs; strategy; failure = None }
    else
      let seed = base_seed + i in
      let v = run ?max_steps ~pick:(picker seed) sc in
      if verdict_ok v then go (i + 1)
      else { runs = i + 1; strategy; failure = Some (seed, v) }
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Bounded exhaustive search: stateless-model-checking style. Each run
   is replayed from a choice prefix (alternative 0 beyond it); after the
   run, every untaken alternative at or beyond the prefix length opens a
   new branch. The worklist is a stack with deepest branches first, so
   the frontier stays small. *)

type dfs_report = {
  explored : int;
  complete : bool;
  failures : (Schedule.t * string) list;
  deepest : int;
  secs : float;
  per_sec : float;
}

let explore_dfs ?max_steps ?(max_schedules = 10_000) ?(max_failures = 10) sc =
  let t0 = Clock.now_ns () in
  let worklist = ref [ [||] ] in
  let explored = ref 0 in
  let failures = ref [] in
  let nfail = ref 0 in
  let deepest = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match !worklist with
    | [] -> continue_ := false
    | _ when !explored >= max_schedules -> continue_ := false
    | prefix :: rest ->
      worklist := rest;
      let v = run ?max_steps ~pick:(choices_pick prefix) sc in
      incr explored;
      let sched = v.outcome.schedule in
      deepest := max !deepest (Array.length sched);
      (match v.verdict with
      | Error m ->
        if !nfail < max_failures then begin
          failures := (sched, m) :: !failures;
          incr nfail
        end
      | Ok () -> ());
      (* Decisions below the prefix length were forced by the prefix;
         their siblings are enqueued when the ancestor run is expanded. *)
      let plen = Array.length prefix in
      let ext = ref [] in
      for i = plen to Array.length sched - 1 do
        let e = sched.(i) in
        for c = e.Schedule.chosen + 1 to e.Schedule.alts - 1 do
          let p =
            Array.append (Schedule.choices (Array.sub sched 0 i)) [| c |]
          in
          ext := p :: !ext
        done
      done;
      worklist := !ext @ !worklist
  done;
  let secs = Int64.to_float (Clock.elapsed_ns t0) /. 1e9 in
  ({ explored = !explored;
     complete = !worklist = [];
     failures = List.rev !failures;
     deepest = !deepest;
     secs;
     per_sec = float_of_int !explored /. Float.max secs 1e-9 }
    : dfs_report)

(* ------------------------------------------------------------------ *)
(* Greedy shrinking: first find the shortest failing prefix (everything
   beyond a prefix defaults to alternative 0), then zero out remaining
   non-default choices one at a time until a fixpoint. The result is a
   canonical failing schedule with as few non-default decisions as this
   local search can reach within [budget] replays. *)

type shrink_report = { shrunk : Schedule.t; message : string; attempts : int }

let shrink ?max_steps ?(budget = 300) sc (failing : Schedule.t) =
  let attempts = ref 0 in
  let fails cs =
    if !attempts >= budget then None
    else begin
      incr attempts;
      let v = run ?max_steps ~pick:(choices_pick cs) sc in
      match v.verdict with
      | Error m -> Some m
      | Ok () -> None
    end
  in
  let best = ref (Schedule.choices failing) in
  let best_msg =
    match fails !best with
    | Some m -> ref m
    | None -> invalid_arg "Detsched.shrink: the given schedule does not fail"
  in
  (try
     for len = 0 to Array.length !best - 1 do
       match fails (Array.sub !best 0 len) with
       | Some m ->
         best := Array.sub !best 0 len;
         best_msg := m;
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to Array.length !best - 1 do
      if !best.(i) <> 0 then begin
        let cand = Array.copy !best in
        cand.(i) <- 0;
        match fails cand with
        | Some m ->
          best := cand;
          best_msg := m;
          changed := true
        | None -> ()
      end
    done
  done;
  (* Trailing zeros are the replay default: drop them, then re-run once
     to rebuild the canonical schedule with alternative counts. *)
  let n = ref (Array.length !best) in
  while !n > 0 && !best.(!n - 1) = 0 do
    decr n
  done;
  let final = Array.sub !best 0 !n in
  incr attempts;
  let v = run ?max_steps ~pick:(choices_pick final) sc in
  match v.verdict with
  | Error m -> { shrunk = v.outcome.schedule; message = m; attempts = !attempts }
  | Ok () -> { shrunk = failing; message = !best_msg; attempts = !attempts }

(* ------------------------------------------------------------------ *)
(* Dynamic partial-order reduction (Flanagan–Godefroid-style, with sleep
   sets). The unit of reordering is the {e quantum}: everything a task
   executes between two scheduler dispatches, which the runtime's [Obs]
   stream delimits with [Sched] events and annotates with the object ids
   every primitive op touched. Two quanta are dependent iff they touch a
   common object (or either performs a scheduler-global op — spawn or
   quiescence). After each run the engine computes vector clocks over the
   quantum sequence, finds reversible races (dependent quanta of distinct
   tasks with no happens-before chain between them), and plants backtrack
   points at the earlier quantum's decision frame; sleep sets prune
   branches whose first transition was already explored from the same
   node and has met nothing dependent since. Exploration restarts from
   mutated frame stacks (decision -> dictated task id), so a schedule
   prefix replays exactly and only the frontier beyond it is free. *)

type dpor_report = {
  explored : int;
  complete : bool;
  failures : (Schedule.t * string) list;
  deepest : int;
  races : int;
  redundant : int;
  workers : int;
  secs : float;
  per_sec : float;
}

module Dpor = struct
  module Obs = Detrt.Obs
  module ISet = Set.Make (Int)

  exception Diverged of string

  (* A sleeping task id together with the objects its already-explored
     transition touched: the entry wakes (is dropped) as soon as any
     executed quantum is dependent with it. *)
  type sleeper = { s_tid : int; s_objs : Obs.objid list }

  (* One decision of the explored run. Task frames carry persistent
     backtrack/sleep state across re-executions; waiter frames (which
     waiter receives an unlock/signal) are always fully expanded — the
     pick changes synchronization outcomes by construction, so no
     independence argument applies. *)
  type frame = {
    f_kind : [ `Task | `Waiter ];
    f_cands : int array;
    mutable f_chosen : int; (* task id dictated on the next replay *)
    mutable f_backtrack : ISet.t;
    mutable f_done : ISet.t;
    mutable f_sleep : sleeper list;
    mutable f_objs : Obs.objid list; (* objs of the chosen quantum *)
  }

  type quantum = {
    q_proc : int;
    q_dec : int; (* decision index that dispatched it; -1 when forced *)
    q_enabled : int array;
    mutable q_objs : Obs.objid list;
    mutable q_seq : int; (* per-task sequence number (vector-clock row) *)
  }

  let dependent objs1 objs2 =
    List.mem Obs.Global objs1
    || List.mem Obs.Global objs2
    || List.exists (fun o -> List.mem o objs2) objs1

  (* Execute one run: decisions below the stack are dictated by the
     frames, decisions beyond it extend the stack, preferring tasks not
     in the current sleep set. Returns the verdict, the quantum sequence,
     the full frame stack and the count of sleep-redundant extensions. *)
  let run_one ?max_steps sc (stack : frame array) =
    let n_stack = Array.length stack in
    let dec_i = ref 0 in
    let pending = ref None in
    let new_frames = ref [] in
    let quanta_rev = ref [] in
    let q_open = ref None in
    let dec_for_sched = ref (-1) in
    let online_sleep = ref [] in
    let unconsumed = ref [] in
    let redundant = ref 0 in
    let close_quantum () =
      match !q_open with
      | None -> ()
      | Some q ->
        quanta_rev := q :: !quanta_rev;
        unconsumed := q :: !unconsumed;
        q_open := None
    in
    let sync_sleep () =
      List.iter
        (fun q ->
          if q.q_objs <> [] then
            online_sleep :=
              List.filter
                (fun sl -> not (dependent sl.s_objs q.q_objs))
                !online_sleep)
        (List.rev !unconsumed);
      unconsumed := []
    in
    let observe ev =
      match ev with
      | Obs.Choice { kind = `Task; _ } ->
        close_quantum ();
        pending := Some `Task
      | Obs.Choice { kind = `Waiter; _ } -> pending := Some `Waiter
      | Obs.Sched { tid; runnable } ->
        close_quantum ();
        let dec = !dec_for_sched in
        dec_for_sched := -1;
        q_open :=
          Some
            { q_proc = tid; q_dec = dec; q_enabled = runnable; q_objs = [];
              q_seq = 0 }
      | Obs.Op { tid; obj; _ } ->
        let q =
          match !q_open with
          | Some q -> q
          | None ->
            (* ops of the main task before its first dispatch *)
            let q =
              { q_proc = tid; q_dec = -1; q_enabled = [| tid |]; q_objs = [];
                q_seq = 0 }
            in
            q_open := Some q;
            q
        in
        if not (List.mem obj q.q_objs) then q.q_objs <- obj :: q.q_objs
    in
    let pick alts =
      let kind =
        match !pending with
        | Some k ->
          pending := None;
          k
        | None -> raise (Diverged "choose without a Choice event")
      in
      let d = !dec_i in
      incr dec_i;
      let tid =
        if d < n_stack then begin
          let f = stack.(d) in
          if f.f_kind <> kind || f.f_cands <> alts then
            raise
              (Diverged (Printf.sprintf "replayed decision %d changed shape" d));
          (if kind = `Task then begin
             online_sleep := f.f_sleep;
             unconsumed := []
           end);
          f.f_chosen
        end
        else begin
          match kind with
          | `Waiter ->
            let tid = alts.(0) in
            new_frames :=
              { f_kind = `Waiter; f_cands = Array.copy alts; f_chosen = tid;
                f_backtrack =
                  Array.fold_left (fun s t -> ISet.add t s) ISet.empty alts;
                f_done = ISet.empty; f_sleep = []; f_objs = [] }
              :: !new_frames;
            tid
          | `Task ->
            sync_sleep ();
            let asleep t =
              List.exists (fun sl -> sl.s_tid = t) !online_sleep
            in
            let tid =
              match Array.find_opt (fun t -> not (asleep t)) alts with
              | Some t -> t
              | None ->
                (* every candidate's next transition was already explored
                   from an equivalent state: the branch is redundant, but
                   we must still run it to completion to stay replayable *)
                incr redundant;
                alts.(0)
            in
            new_frames :=
              { f_kind = `Task; f_cands = Array.copy alts; f_chosen = tid;
                f_backtrack = ISet.singleton tid; f_done = ISet.empty;
                f_sleep = !online_sleep; f_objs = [] }
              :: !new_frames;
            tid
        end
      in
      if kind = `Task then dec_for_sched := d;
      let rec find i =
        if i >= Array.length alts then
          raise
            (Diverged
               (Printf.sprintf "dictated task %d not runnable at decision %d"
                  tid d))
        else if alts.(i) = tid then i
        else find (i + 1)
      in
      find 0
    in
    let v = run ?max_steps ~observe ~pick sc in
    close_quantum ();
    (match v.outcome.result with
    | Error (Diverged msg) ->
      failwith ("Detsched.explore_dpor: scenario is not deterministic: " ^ msg)
    | _ -> ());
    let frames =
      Array.append stack (Array.of_list (List.rev !new_frames))
    in
    (v, Array.of_list (List.rev !quanta_rev), frames, !redundant)

  (* Post-run analysis: vector clocks over the quantum sequence, then
     reversible-race detection. For a race (j, i) the candidate witnesses
     are, per Flanagan–Godefroid, the tasks enabled at j's decision that
     either are i's task or have a later quantum happens-before i; when
     none is enabled the whole frontier is expanded. Returns how many
     backtrack points were planted. Races whose decision frame lies below
     [pin] belong to another exploration shard and are discarded — sound
     because the pinned levels are fully expanded across shards. *)
  let analyze ~pin (frames : frame array) (quanta : quantum array) =
    let n = Array.length quanta in
    let ntids =
      let m = ref 1 in
      Array.iter
        (fun q ->
          m := max !m (q.q_proc + 1);
          Array.iter (fun t -> m := max !m (t + 1)) q.q_enabled)
        quanta;
      !m
    in
    let vcs = Array.make n [||] in
    let proc_vc = Array.make ntids [||] in
    let obj_vc : (Obs.objid, int array) Hashtbl.t = Hashtbl.create 32 in
    let all_vc = Array.make ntids 0 in
    let last_global = ref (-1) in
    let last_global_vc = ref [||] in
    let last_touch : (Obs.objid, int) Hashtbl.t = Hashtbl.create 32 in
    let seq = Array.make ntids 0 in
    let join dst src =
      if src <> [||] then
        Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src
    in
    (* [hb j k]: quantum [j] happens-before quantum [k] (for j < k). *)
    let hb j k = vcs.(k).(quanta.(j).q_proc) >= quanta.(j).q_seq in
    let planted = ref 0 in
    for i = 0 to n - 1 do
      let q = quanta.(i) in
      let has_global = List.mem Obs.Global q.q_objs in
      q.q_seq <- seq.(q.q_proc) + 1;
      seq.(q.q_proc) <- q.q_seq;
      let vc = Array.make ntids 0 in
      join vc proc_vc.(q.q_proc);
      List.iter
        (fun o ->
          match Hashtbl.find_opt obj_vc o with
          | Some v -> join vc v
          | None -> ())
        q.q_objs;
      if has_global then join vc all_vc else join vc !last_global_vc;
      vc.(q.q_proc) <- q.q_seq;
      vcs.(i) <- vc;
      (* candidate race partners: the latest earlier quantum per shared
         object, plus — for scheduler-global quanta — the immediately
         preceding quantum and the latest global one. *)
      let partners = ref ISet.empty in
      List.iter
        (fun o ->
          match Hashtbl.find_opt last_touch o with
          | Some j when quanta.(j).q_proc <> q.q_proc ->
            partners := ISet.add j !partners
          | _ -> ())
        q.q_objs;
      if has_global && i > 0 && quanta.(i - 1).q_proc <> q.q_proc then
        partners := ISet.add (i - 1) !partners;
      if !last_global >= 0 && quanta.(!last_global).q_proc <> q.q_proc then
        partners := ISet.add !last_global !partners;
      ISet.iter
        (fun j ->
          (* the race is reversible iff no happens-before chain passes
             strictly between j and i *)
          let chained = ref false in
          for k = j + 1 to i - 1 do
            if (not !chained) && hb j k && hb k i then chained := true
          done;
          if not !chained then begin
            let qj = quanta.(j) in
            let d = qj.q_dec in
            if d >= pin && d >= 0 && Array.length qj.q_enabled > 1 then begin
              let f = frames.(d) in
              let witness p =
                p = q.q_proc
                ||
                let ok = ref false in
                for k = j + 1 to i - 1 do
                  if (not !ok) && quanta.(k).q_proc = p && hb k i then
                    ok := true
                done;
                !ok
              in
              let enabled = Array.to_list qj.q_enabled in
              let to_add =
                match List.filter witness enabled with
                | [] -> enabled
                | es -> if List.mem q.q_proc es then [ q.q_proc ] else [ List.hd es ]
              in
              List.iter
                (fun p ->
                  if not (ISet.mem p f.f_backtrack) then begin
                    f.f_backtrack <- ISet.add p f.f_backtrack;
                    incr planted
                  end)
                to_add
            end
          end)
        !partners;
      List.iter
        (fun o ->
          Hashtbl.replace last_touch o i;
          Hashtbl.replace obj_vc o vc)
        q.q_objs;
      join all_vc vc;
      if has_global then begin
        last_global := i;
        last_global_vc := vc
      end;
      proc_vc.(q.q_proc) <- vc
    done;
    !planted

  type acc = {
    mutable a_explored : int;
    mutable a_complete : bool;
    mutable a_failures : (Schedule.t * string) list; (* newest first *)
    mutable a_nfail : int;
    mutable a_deepest : int;
    mutable a_races : int;
    mutable a_redundant : int;
  }

  (* The exploration loop for one shard: run, analyze, then sweep the
     frame stack bottom-up for the deepest frame with a pending backtrack
     task that is neither done nor asleep, truncate there and re-run.
     [budget] is the explored-schedule budget shared across shards. *)
  let explore_from ?max_steps ~max_schedules ~max_failures ~pin ~budget sc
      init_stack =
    let a =
      { a_explored = 0; a_complete = true; a_failures = []; a_nfail = 0;
        a_deepest = 0; a_races = 0; a_redundant = 0 }
    in
    let stack = ref init_stack in
    let running = ref true in
    while !running do
      if Atomic.fetch_and_add budget 1 >= max_schedules then begin
        a.a_complete <- false;
        running := false
      end
      else begin
        let v, quanta, frames, red = run_one ?max_steps sc !stack in
        a.a_explored <- a.a_explored + 1;
        a.a_redundant <- a.a_redundant + red;
        a.a_deepest <- max a.a_deepest (Array.length v.outcome.schedule);
        (match v.verdict with
        | Error m when a.a_nfail < max_failures ->
          a.a_failures <- (v.outcome.schedule, m) :: a.a_failures;
          a.a_nfail <- a.a_nfail + 1
        | _ -> ());
        Array.iter
          (fun q -> if q.q_dec >= 0 then frames.(q.q_dec).f_objs <- q.q_objs)
          quanta;
        a.a_races <- a.a_races + analyze ~pin frames quanta;
        let next_stack = ref None in
        let i = ref (Array.length frames - 1) in
        while !next_stack = None && !i >= pin do
          let f = frames.(!i) in
          f.f_done <- ISet.add f.f_chosen f.f_done;
          (if
             f.f_kind = `Task
             && not (List.exists (fun sl -> sl.s_tid = f.f_chosen) f.f_sleep)
           then
             f.f_sleep <- { s_tid = f.f_chosen; s_objs = f.f_objs } :: f.f_sleep);
          let blocked =
            match f.f_kind with
            | `Waiter -> f.f_done
            | `Task ->
              List.fold_left
                (fun s sl -> ISet.add sl.s_tid s)
                f.f_done f.f_sleep
          in
          let waiting = ISet.diff f.f_backtrack blocked in
          if not (ISet.is_empty waiting) then begin
            f.f_chosen <- ISet.min_elt waiting;
            f.f_objs <- [];
            next_stack := Some (Array.sub frames 0 (!i + 1))
          end
          else decr i
        done;
        match !next_stack with
        | Some st -> stack := st
        | None -> running := false
      end
    done;
    a
end

let explore_dpor ?max_steps ?(max_schedules = 10_000) ?(max_failures = 10)
    ?(workers = 1) sc =
  let t0 = Clock.now_ns () in
  let finish ~probe ~workers accs =
    let explored = ref probe in
    let complete = ref true in
    let failures = ref [] in
    let deepest = ref 0 in
    let races = ref 0 in
    let redundant = ref 0 in
    List.iter
      (fun (a : Dpor.acc) ->
        explored := !explored + a.a_explored;
        complete := !complete && a.a_complete;
        failures := !failures @ List.rev a.a_failures;
        deepest := max !deepest a.a_deepest;
        races := !races + a.a_races;
        redundant := !redundant + a.a_redundant)
      accs;
    let failures =
      if List.length !failures > max_failures then
        List.filteri (fun i _ -> i < max_failures) !failures
      else !failures
    in
    let secs = Int64.to_float (Clock.elapsed_ns t0) /. 1e9 in
    { explored = !explored;
      complete = !complete;
      failures;
      deepest = !deepest;
      races = !races;
      redundant = !redundant;
      workers;
      secs;
      per_sec = float_of_int !explored /. Float.max secs 1e-9 }
  in
  let budget = Atomic.make 0 in
  if workers <= 1 then
    let a =
      Dpor.explore_from ?max_steps ~max_schedules ~max_failures ~pin:0 ~budget
        sc [||]
    in
    finish ~probe:0 ~workers:1 [ a ]
  else begin
    (* Probe run: discover the top-level frontier, then hand each root
       candidate to a shard with that first decision pinned. The root is
       thereby fully expanded, so races crossing shard boundaries need no
       backtrack points (every alternative root choice is explored). *)
    let v0, _, frames0, _ = Dpor.run_one ?max_steps sc [||] in
    if Array.length frames0 = 0 then
      (* no decisions at all: the tree is a single schedule *)
      let a =
        { Dpor.a_explored = 1; a_complete = true;
          a_failures =
            (match v0.verdict with
            | Error m -> [ (v0.outcome.schedule, m) ]
            | Ok () -> []);
          a_nfail = 0; a_deepest = Array.length v0.outcome.schedule;
          a_races = 0; a_redundant = 0 }
      in
      finish ~probe:0 ~workers:1 [ a ]
    else begin
      let root = frames0.(0) in
      let shards =
        Array.map
          (fun tid ->
            [| { Dpor.f_kind = root.f_kind; f_cands = Array.copy root.f_cands;
                 f_chosen = tid; f_backtrack = Dpor.ISet.singleton tid;
                 f_done = Dpor.ISet.empty; f_sleep = []; f_objs = [] } |])
          root.f_cands
      in
      let results = Array.make (Array.length shards) None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < Array.length shards then begin
            results.(i) <-
              Some
                (Dpor.explore_from ?max_steps ~max_schedules ~max_failures
                   ~pin:1 ~budget sc shards.(i));
            loop ()
          end
        in
        loop ()
      in
      let nw = min workers (Array.length shards) in
      let handles =
        List.init nw (fun w ->
            Process.spawn ~name:(Printf.sprintf "dpor-%d" w) ~backend:`Domain
              worker)
      in
      List.iter Process.join handles;
      let accs = Array.to_list results |> List.filter_map Fun.id in
      finish ~probe:1 ~workers:nw accs
    end
  end
