lib/problems/disk_intf.ml: Constr Info Meta Spec Sync_taxonomy
