(** One-slot buffer with eventcounts: the [puts]/[gets] counters ARE the
    history — put number [k] waits for get number [k-1], get number [k]
    waits for put number [k]. *)

open Sync_platform.Eventcount
open Sync_taxonomy

type t = {
  putters : Sequencer.t;
  getters : Sequencer.t;
  puts : Eventcount.t; (* completed puts *)
  gets : Eventcount.t; (* completed gets *)
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "eventcount"

let create ~put ~get =
  { putters = Sequencer.create ();
    getters = Sequencer.create ();
    puts = Eventcount.create ();
    gets = Eventcount.create ();
    res_put = put; res_get = get }

let put t ~pid v =
  let k = Sequencer.ticket t.putters in
  Eventcount.await t.gets k; (* slot emptied k times before put #k *)
  t.res_put ~pid v;
  Eventcount.advance t.puts

let get t ~pid =
  let k = Sequencer.ticket t.getters in
  Eventcount.await t.puts (k + 1); (* put #k completed *)
  let v = t.res_get ~pid in
  Eventcount.advance t.gets;
  v

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation", [ "await(gets,k)"; "await(puts,k+1)" ]);
        ("slot-access-exclusion", [ "sequencer"; "alternation-window" ]) ]
    ~info_access:
      [ (Info.History, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
    ~separation:Meta.Separated ()
