test/test_pathexpr.ml: Alcotest Ast Atomic List Parser Pathexpr Printf QCheck QCheck_alcotest String Sync_pathexpr Sync_platform Testutil Thread
