(** One-slot buffer with a conditional critical region: history as the
    [full] flag tested by the guards. *)

open Sync_taxonomy

type shared = { mutable full : bool; mutable busy : bool }

type t = {
  v : shared Sync_ccr.Ccr.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "ccr"

let create ~put ~get =
  { v = Sync_ccr.Ccr.create { full = false; busy = false };
    res_put = put; res_get = get }

let put t ~pid value =
  Sync_ccr.Ccr.region t.v
    ~when_:(fun s -> (not s.busy) && not s.full)
    (fun s -> s.busy <- true);
  t.res_put ~pid value;
  Sync_ccr.Ccr.region t.v (fun s ->
      s.busy <- false;
      s.full <- true)

let get t ~pid =
  Sync_ccr.Ccr.region t.v
    ~when_:(fun s -> (not s.busy) && s.full)
    (fun s -> s.busy <- true);
  let value = t.res_get ~pid in
  Sync_ccr.Ccr.region t.v (fun s ->
      s.busy <- false;
      s.full <- false);
  value

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation", [ "when full"; "when not full" ]);
        ("slot-access-exclusion", [ "when not busy" ]) ]
    ~info_access:
      [ (Info.History, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "full flag records whether put happened last"; "busy flag" ]
    ~separation:Meta.Separated ()
