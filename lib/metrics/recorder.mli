(** Per-worker metrics recorder: one latency histogram and one success /
    failure counter pair per operation.

    The contention design is share-nothing rather than lock-clever: the
    load generator allocates {b one recorder per worker}, each worker
    records only into its own (a plain array increment — no CAS, no lock,
    no false sharing with other workers' counters beyond allocation
    luck), and the recorders are {!merge}d after the workers have been
    joined. That makes the measurement path cheap enough to time
    individual sub-microsecond operations without perturbing them, which
    is the whole game when comparing mechanism overheads. *)

type t

val create : ops:string array -> unit -> t
(** A recorder for the given operation names (index order is the record
    index order). [ops] must be non-empty. *)

val op_names : t -> string array

val record : t -> op:int -> ns:int -> unit
(** Record one completed operation [op] (index into [ops]) with the
    given latency. *)

val record_failure : t -> op:int -> unit
(** Count an operation that raised instead of completing. *)

val ops_recorded : t -> int
(** Total successful operations across all ops. *)

val failures : t -> int

val op_count : t -> op:int -> int

val op_failures : t -> op:int -> int

val hist : t -> op:int -> Histogram.t
(** The live histogram for [op] (not a copy). *)

val merge : t list -> t
(** Fold a non-empty list of quiesced recorders (identical op arrays)
    into a fresh one; inputs are not modified.
    @raise Invalid_argument on an empty list or mismatched ops. *)
