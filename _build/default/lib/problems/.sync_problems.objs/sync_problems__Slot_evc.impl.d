lib/problems/slot_evc.ml: Eventcount Info Meta Sequencer Sync_platform Sync_taxonomy
