(* bloom-eval: command-line front end for the mechanized evaluation.

   Each subcommand regenerates one of the paper's evaluation artifacts
   (see DESIGN.md's experiment index): the expressiveness matrix (E3),
   the constraint-independence analysis (E2/E4), the modularity table
   (E5), the conformance run (E6), the footnote-3 anomaly demo (E1), and
   the nested-monitor-call demonstration (E11). *)

open Cmdliner

let ppf = Format.std_formatter

let list_cmd =
  let doc = "List every registered solution (problem/variant@mechanism)." in
  let run () =
    List.iter
      (fun (e : Sync_eval.Registry.entry) ->
        Format.fprintf ppf "%s@." (Sync_taxonomy.Meta.id e.meta))
      Sync_eval.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let matrix_cmd =
  let doc = "Print the expressive-power matrix (experiment E3)." in
  let run () =
    let card = Sync_eval.Scorecard.build ~run_conformance:false () in
    Sync_eval.Expressiveness.pp ppf card.matrix;
    match card.discrepancies with
    | [] ->
      Format.fprintf ppf
        "@.The matrix agrees with the paper's Section-5 conclusions.@."
    | ds ->
      List.iter
        (fun (mech, kind, why) ->
          Format.fprintf ppf "DISCREPANCY %s/%s: %s@." mech
            (Sync_taxonomy.Info.to_string kind)
            why)
        ds;
      exit 1
  in
  Cmd.v (Cmd.info "matrix" ~doc) Term.(const run $ const ())

let independence_cmd =
  let doc =
    "Print constraint-independence pairings and the per-mechanism reuse \
     summary (experiments E2/E4)."
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"show every pairing")
  in
  let run verbose =
    let pairings = Sync_eval.Independence.analyze Sync_eval.Registry.all in
    if verbose then Sync_eval.Independence.pp ppf pairings;
    Sync_eval.Independence.pp_summary ppf
      (Sync_eval.Independence.shared_constraint_reuse pairings)
  in
  Cmd.v (Cmd.info "independence" ~doc) Term.(const run $ verbose)

let modularity_cmd =
  let doc = "Print the modularity table (experiment E5)." in
  let run () =
    Sync_eval.Modularity.pp ppf
      (Sync_eval.Modularity.analyze Sync_eval.Registry.all)
  in
  Cmd.v (Cmd.info "modularity" ~doc) Term.(const run $ const ())

let conformance_cmd =
  let doc =
    "Run every solution's machine checks and print the conformance matrix \
     (experiment E6). Exits non-zero on regressions."
  in
  let run () =
    let results = Sync_eval.Conformance.run Sync_eval.Registry.all in
    Sync_eval.Conformance.pp ppf results;
    match Sync_eval.Conformance.regressions results with
    | [] -> Format.fprintf ppf "no regressions@."
    | rs ->
      Format.fprintf ppf "%d regression(s)@." (List.length rs);
      exit 1
  in
  Cmd.v (Cmd.info "conformance" ~doc) Term.(const run $ const ())

let scorecard_cmd =
  let doc =
    "Print the full scorecard (E3 + E4 + E5 + E6, and E19/E20 on request)."
  in
  let fast =
    Arg.(value & flag
         & info [ "fast" ] ~doc:"skip the conformance run (metadata only)")
  in
  let robustness =
    Arg.(value & flag
         & info [ "robustness" ]
             ~doc:"also run the E19 fault/cancellation matrix (slow; \
                   standalone as $(b,bloom_eval faults))")
  in
  let perf =
    Arg.(value & flag
         & info [ "perf" ]
             ~doc:"also run a live E20 closed-loop performance sweep \
                   (window from $(b,SYNC_LOAD_MS); standalone single runs \
                   via $(b,bloom_eval load))")
  in
  let observability =
    Arg.(value & flag
         & info [ "observability" ]
             ~doc:"also run the E21 traced-contention audit (short traced \
                   load per mechanism; full traces via $(b,bloom_eval \
                   trace))")
  in
  let service =
    Arg.(value & flag
         & info [ "service" ]
             ~doc:"also run the E24 service-tier scenarios (spawns real \
                   bloom_serve daemons; standalone as $(b,bloom_eval \
                   serve))")
  in
  let hierarchy =
    Arg.(value & flag
         & info [ "hierarchy" ]
             ~doc:"also run the E25 primitive-hierarchy grid (every \
                   mechanism x problem on restricted atomic classes; \
                   standalone as $(b,bloom_eval hierarchy))")
  in
  let scaling =
    Arg.(value & flag
         & info [ "scaling" ]
             ~doc:"also run the E23 scalable-lock grids (queue-lock tier \
                   plus epoch readers-writers scaling; standalone as \
                   $(b,bloom_eval scaling))")
  in
  let adaptive =
    Arg.(value & flag
         & info [ "adaptive" ]
             ~doc:"also run the E27 self-tuning grid (adaptive tier vs \
                   every static tier under steady/diurnal/bursty arrivals; \
                   standalone as $(b,bloom_eval adapt))")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"also write the whole scorecard as a JSON document")
  in
  let run fast robustness perf observability service hierarchy scaling
      adaptive json =
    let card =
      Sync_eval.Scorecard.build ~run_conformance:(not fast)
        ~run_robustness:robustness ~run_perf:perf
        ~run_observability:observability ~run_service:service
        ~run_hierarchy:hierarchy ~run_scaling:scaling ~run_adaptive:adaptive ()
    in
    Sync_eval.Scorecard.pp ppf card;
    (match json with
    | None -> ()
    | Some file ->
      Sync_metrics.Emit.write_file file (Sync_eval.Scorecard.to_json card);
      Format.fprintf ppf "@.wrote %s@." file);
    if
      Sync_eval.Conformance.regressions card.conformance <> []
      || not (Sync_eval.Robustness.all_recovered card.robustness)
      || not (Sync_eval.Observability.all_ok card.observability)
      || not (Sync_eval.Service_axis.all_ok card.service)
      || not (Sync_eval.Hierarchy_axis.all_ok card.hierarchy)
      || not (Sync_eval.Scaling_axis.all_ok card.scaling)
      || not (Sync_eval.Adaptive_axis.all_ok card.adaptive)
    then exit 1
  in
  Cmd.v (Cmd.info "scorecard" ~doc)
    Term.(const run $ fast $ robustness $ perf $ observability $ service
          $ hierarchy $ scaling $ adaptive $ json)

let load_cmd =
  let doc =
    "Drive one mechanism x problem pair with the multicore load engine \
     (experiment E20): concurrent workers on real domains (or threads), \
     closed or open loop, latency histograms over the steady-state window. \
     With $(b,--sweep), re-run across increasing domain counts."
  in
  let open Sync_workload in
  let mechanism =
    Arg.(required & opt (some string) None
         & info [ "mechanism" ] ~docv:"MECHANISM"
             ~doc:"semaphore | monitor | serializer | pathexpr | csp | ccr \
                   (eventcount for the buffer problems)")
  in
  let problem =
    Arg.(required & opt (some string) None
         & info [ "problem" ] ~docv:"PROBLEM"
             ~doc:"bounded-buffer | one-slot-buffer | readers-writers | \
                   fcfs | disk-scheduler")
  in
  let domains =
    Arg.(value & opt int 4
         & info [ "domains"; "workers" ] ~docv:"N"
             ~doc:"concurrent workers (each is a domain, or a thread with \
                   $(b,--backend thread))")
  in
  let duration_ms =
    Arg.(value & opt (some int) None
         & info [ "duration-ms" ] ~docv:"MS"
             ~doc:"steady-state window (default: $(b,SYNC_LOAD_MS) or 1000)")
  in
  let warmup_ms =
    Arg.(value & opt int 200 & info [ "warmup-ms" ] ~docv:"MS"
           ~doc:"discarded warmup window")
  in
  let mode_arg =
    Arg.(value & opt string "closed" & info [ "mode" ] ~docv:"MODE"
           ~doc:"closed | open")
  in
  let rate =
    Arg.(value & opt float 50_000. & info [ "rate" ] ~docv:"OPS_PER_S"
           ~doc:"open loop: total offered arrival rate")
  in
  let arrival_arg =
    Arg.(value & opt string "poisson" & info [ "arrival" ] ~docv:"DIST"
           ~doc:"open loop: poisson | uniform | diurnal | bursty")
  in
  let backend_arg =
    Arg.(value & opt string "domain" & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"domain | thread")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"arrival schedules and op-mix draws")
  in
  let capacity =
    Arg.(value & opt int Target.default_params.capacity
         & info [ "capacity" ] ~docv:"N" ~doc:"bounded-buffer slots")
  in
  let work =
    Arg.(value & opt int Target.default_params.work
         & info [ "work" ] ~docv:"N"
             ~doc:"busywork iterations inside each resource body")
  in
  let read_pct =
    Arg.(value & opt int Target.default_params.read_pct
         & info [ "read-pct" ] ~docv:"PCT"
             ~doc:"readers-writers read share, 0..100")
  in
  let tracks =
    Arg.(value & opt int Target.default_params.tracks
         & info [ "tracks" ] ~docv:"N" ~doc:"disk cylinders")
  in
  let hot_pct =
    Arg.(value & opt int Target.default_params.hot_pct
         & info [ "hot-pct" ] ~docv:"PCT"
             ~doc:"disk skew: share of requests aimed at the first tenth \
                   of the tracks")
  in
  let think_us_arg =
    Arg.(value & opt int 0
         & info [ "think-us" ] ~docv:"US"
             ~doc:"closed-loop think time per operation, microseconds, \
                   slept outside the latency window (E23 scaling runs)")
  in
  let sweep =
    Arg.(value & flag
         & info [ "sweep" ]
             ~doc:"run a domain-scaling sweep (1, 2, 4, all recommended \
                   cores) instead of a single run; $(b,--domains) is \
                   ignored")
  in
  let tier_arg =
    Arg.(value & opt string "default"
         & info [ "tier" ] ~docv:"TIER"
             ~doc:"platform substrate: $(b,default) for the stdlib-backed \
                   tier, $(b,fast) for the contention-adaptive fast paths \
                   (E22: adaptive mutex, fetch-and-add weak semaphore, \
                   Vyukov bounded buffer), a restricted atomic class \
                   (E25: $(b,rw), $(b,cas), $(b,faa), $(b,llsc), \
                   $(b,native)), a local-spin queue lock kind (E23: \
                   $(b,mcs), $(b,clh), $(b,ticket)), or $(b,adaptive) \
                   (E27: hot-swappable sites the feedback controller \
                   retiers live; implies probe tracing)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the run (or sweep) as a JSON document")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"print per-op CSV rows instead \
                                             of the human table")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"record structured sync events during the run (E21) and \
                   write them as a Chrome trace_event JSON file \
                   (chrome://tracing, Perfetto); also prints the \
                   contention profile. Not compatible with $(b,--sweep).")
  in
  let fail msg =
    Format.fprintf ppf "%s@." msg;
    exit 2
  in
  let run mechanism problem domains duration_ms warmup_ms mode_arg rate
      arrival_arg backend_arg seed capacity work read_pct tracks hot_pct
      think_us sweep tier_arg json csv trace_out =
    let tier =
      match tier_arg with
      | "default" -> `Default
      | "fast" -> `Fast
      | "adaptive" -> `Adaptive
      | s -> (
        match Sync_prims.Queuelock.kind_of_string s with
        | Some k -> `Queue k
        | None -> (
          match Sync_prims.Prims.cls_of_string s with
          | Some c -> `Prim c
          | None ->
            fail
              (Printf.sprintf
                 "unknown tier %S (default | fast | rw | cas | faa | llsc | \
                  native | mcs | clh | ticket | adaptive)"
                 s)))
    in
    let arrival =
      match Loadgen.arrival_of_string arrival_arg with
      | Some a -> a
      | None ->
        fail
          (Printf.sprintf
             "unknown arrival %S (poisson | uniform | diurnal | bursty)"
             arrival_arg)
    in
    let mode =
      match mode_arg with
      | "closed" -> Loadgen.Closed
      | "open" -> Loadgen.Open_loop { rate_per_s = rate; arrival }
      | s -> fail (Printf.sprintf "unknown mode %S (closed | open)" s)
    in
    let backend =
      match backend_arg with
      | "domain" -> `Domain
      | "thread" -> `Thread
      | s -> fail (Printf.sprintf "unknown backend %S (domain | thread)" s)
    in
    let duration_ms =
      match duration_ms with
      | Some ms -> ms
      | None -> Loadgen.duration_from_env ~default:1000
    in
    let params =
      { Target.capacity; work; read_pct; tracks; hot_pct }
    in
    let base =
      { Loadgen.workers = domains; backend; duration_ms; warmup_ms; mode;
        seed; think_us }
    in
    if sweep && trace_out <> None then
      fail "--trace records a single run; drop --sweep";
    (match tier with
    | `Adaptive when sweep ->
      fail "--tier adaptive drives a live controller; drop --sweep"
    | _ -> ());
    if sweep then begin
      let domain_counts = Sweep.default_domain_counts () in
      let progress (c : Sweep.cell) =
        Format.fprintf ppf "%a@." Report.pp c.Sweep.report
      in
      match
        Sweep.run ~params ~tier ~progress ~problem ~mechanism ~base
          ~domain_counts ()
      with
      | Error e -> fail e
      | Ok cells ->
        (match json with
        | None -> ()
        | Some file ->
          Sync_metrics.Emit.write_file file
            (Sweep.sweep_to_json ~problem ~mechanism ~base cells);
          Format.fprintf ppf "wrote %s@." file)
    end
    else
      match Target.create ~params ~tier ~problem ~mechanism () with
      | Error e -> fail e
      | Ok instance ->
        let flips = ref 0 in
        let decisions = ref [] in
        let samples = ref 0 in
        let go () =
          let exec () =
            try Loadgen.run instance base
            with Invalid_argument m -> fail ("invalid config: " ^ m)
          in
          match tier with
          | `Adaptive ->
            let r, ctrl = Sync_adaptive.Controller.with_controller exec in
            flips := Sync_adaptive.Controller.flips ctrl;
            decisions := Sync_adaptive.Controller.decisions ctrl;
            samples := Sync_adaptive.Controller.samples ctrl;
            r
          | _ -> exec ()
        in
        (* The adaptive controller reads the live probe rings, so the
           run is traced even without --trace. *)
        let traced =
          trace_out <> None
          || match tier with `Adaptive -> true | _ -> false
        in
        let report, events =
          if traced then Sync_trace.Probe.with_tracing go else (go (), [])
        in
        (match tier with
        | `Adaptive ->
          Format.fprintf ppf
            "adaptive controller: %d tier flip(s) over %d sample(s)@." !flips
            !samples;
          List.iter
            (fun (d : Sync_adaptive.Controller.decision) ->
              Format.fprintf ppf
                "  flip %-24s -> %-8s (wait %.0f ns, wait/hold %.2f)@."
                d.Sync_adaptive.Controller.d_site
                (Sync_platform.Mutex.tier_name
                   d.Sync_adaptive.Controller.d_tier)
                d.Sync_adaptive.Controller.d_wait_ns
                d.Sync_adaptive.Controller.d_ratio)
            !decisions
        | _ -> ());
        if csv then begin
          print_endline Report.csv_header;
          List.iter print_endline (Report.csv_rows report)
        end
        else Format.fprintf ppf "%a@." Report.pp report;
        (match trace_out with
        | None -> ()
        | Some file ->
          let label = Printf.sprintf "%s/%s" mechanism problem in
          let profile =
            Sync_trace.Profile.of_events
              ~dropped:(Sync_trace.Probe.dropped ()) events
          in
          Format.fprintf ppf "@.%a@." Sync_trace.Profile.pp profile;
          Sync_trace.Chrome.write_file file [ (label, events) ];
          Format.fprintf ppf "wrote %s (%d events)@." file
            (List.length events));
        (match json with
        | None -> ()
        | Some file ->
          Report.write_json file report;
          Format.fprintf ppf "wrote %s@." file)
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(const run $ mechanism $ problem $ domains $ duration_ms $ warmup_ms
          $ mode_arg $ rate $ arrival_arg $ backend_arg $ seed $ capacity
          $ work $ read_pct $ tracks $ hot_pct $ think_us_arg $ sweep
          $ tier_arg $ json $ csv $ trace_out)

let hierarchy_cmd =
  let doc =
    "Score the hardware-primitive hierarchy (experiment E25): rebuild every \
     mechanism x problem load target with the platform's mutexes and \
     semaphores constructed from one restricted atomic class — read/write \
     registers (bakery), CAS, fetch-and-add (ticket), emulated LL/SC — \
     drive each supported cell with the E20 workload engine, and record \
     typed unsupported reasons for the rest."
  in
  let list_arg name ~doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"LIST" ~doc)
  in
  let classes_arg =
    list_arg "classes"
      ~doc:"comma-separated atomic classes to run (rw, cas, faa, llsc, \
            native); default all five"
  in
  let problems_arg =
    list_arg "problems"
      ~doc:"comma-separated problems (default bounded-buffer,fcfs,\
            readers-writers)"
  in
  let mechanisms_arg =
    list_arg "mechanisms"
      ~doc:"comma-separated mechanisms (default: every mechanism the \
            workload engine offers for each problem)"
  in
  let domains_arg =
    list_arg "domains"
      ~doc:"comma-separated worker domain counts (default 1,4)"
  in
  let duration_ms =
    Arg.(value & opt (some int) None
         & info [ "duration" ] ~docv:"MS"
             ~doc:"steady-state window per cell (default $(b,SYNC_LOAD_MS) \
                   or 100)")
  in
  let warmup_ms =
    Arg.(value & opt int 30
         & info [ "warmup" ] ~docv:"MS" ~doc:"warmup window per cell")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"workload seed")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"also write the scorecard grid as a JSON document (the \
                   committed BENCH_E25.json shape)")
  in
  let fail msg =
    Format.fprintf ppf "%s@." msg;
    exit 2
  in
  let split = function
    | None -> None
    | Some s ->
      Some
        (List.filter (fun x -> x <> "")
           (List.map String.trim (String.split_on_char ',' s)))
  in
  let run classes problems mechanisms domains duration_ms warmup_ms seed json
      =
    let module H = Sync_eval.Hierarchy_axis in
    let dflt = H.default_spec () in
    let classes =
      match split classes with
      | None -> dflt.H.classes
      | Some cs ->
        List.map
          (fun s ->
            match Sync_prims.Prims.cls_of_string s with
            | Some c -> c
            | None ->
              fail
                (Printf.sprintf
                   "unknown class %S (rw | cas | faa | llsc | native)" s))
          cs
    in
    let domains =
      match split domains with
      | None -> dflt.H.domains
      | Some ds ->
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some d when d >= 1 -> d
            | _ -> fail (Printf.sprintf "bad domain count %S" s))
          ds
    in
    let spec =
      { H.classes;
        problems = Option.value (split problems) ~default:dflt.H.problems;
        mechanisms = split mechanisms;
        domains;
        duration_ms =
          (match duration_ms with
          | Some ms -> ms
          | None -> dflt.H.duration_ms);
        warmup_ms; seed }
    in
    let progress (r : H.row) =
      Format.fprintf ppf "%-6s %-16s %-12s d=%-2d %s@."
        (Sync_prims.Prims.cls_name r.H.cls)
        r.H.problem r.H.mechanism r.H.domains
        (H.status_string r.H.status)
    in
    let rows = H.run ~progress spec in
    Format.fprintf ppf "@.%a" H.pp rows;
    (match json with
    | None -> ()
    | Some file ->
      Sync_metrics.Emit.write_file file (H.to_json spec rows);
      Format.fprintf ppf "wrote %s@." file);
    if not (H.all_ok rows) then exit 1
  in
  Cmd.v (Cmd.info "hierarchy" ~doc)
    Term.(const run $ classes_arg $ problems_arg $ mechanisms_arg
          $ domains_arg $ duration_ms $ warmup_ms $ seed $ json)

let scaling_cmd =
  let doc =
    "Score the scalable-lock tier (experiment E23): rebuild mechanism x \
     problem load targets with every platform mutex a local-spin queue \
     lock (MCS, CLH, proportional-backoff ticket) and measure each cell; \
     absent pairs become typed unsupported rows. Then drive the \
     readers-writers database on the epoch read-mostly path at increasing \
     domain counts with closed-loop think time and report whether read \
     throughput scales monotonically."
  in
  let list_arg name ~doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"LIST" ~doc)
  in
  let kinds_arg =
    list_arg "kinds"
      ~doc:"comma-separated queue-lock kinds (mcs, clh, ticket); default \
            all three"
  in
  let problems_arg =
    list_arg "problems"
      ~doc:"comma-separated problems (default bounded-buffer,\
            readers-writers)"
  in
  let mechanisms_arg =
    list_arg "mechanisms"
      ~doc:"comma-separated mechanisms for the queue grid (default \
            semaphore,monitor,ccr,eventcount,epoch; absent pairs yield \
            typed rows)"
  in
  let domains_arg =
    list_arg "domains"
      ~doc:"comma-separated worker domain counts for the queue grid \
            (default 1,4)"
  in
  let epoch_domains_arg =
    list_arg "epoch-domains"
      ~doc:"comma-separated domain counts for the epoch scaling rows \
            (default 1,2,4)"
  in
  let think_us =
    Arg.(value & opt (some int) None
         & info [ "think-us" ] ~docv:"US"
             ~doc:"closed-loop think time for the epoch rows (default 500)")
  in
  let duration_ms =
    Arg.(value & opt (some int) None
         & info [ "duration" ] ~docv:"MS"
             ~doc:"steady-state window per cell (default $(b,SYNC_LOAD_MS) \
                   or 150)")
  in
  let warmup_ms =
    Arg.(value & opt int 50
         & info [ "warmup" ] ~docv:"MS" ~doc:"warmup window per cell")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"workload seed")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"also write the grids as a JSON document (the committed \
                   BENCH_E23.json shape)")
  in
  let fail msg =
    Format.fprintf ppf "%s@." msg;
    exit 2
  in
  let split = function
    | None -> None
    | Some s ->
      Some
        (List.filter (fun x -> x <> "")
           (List.map String.trim (String.split_on_char ',' s)))
  in
  let run kinds problems mechanisms domains epoch_domains think_us duration_ms
      warmup_ms seed json =
    let module S = Sync_eval.Scaling_axis in
    let dflt = S.default_spec () in
    let kinds =
      match split kinds with
      | None -> dflt.S.kinds
      | Some ks ->
        List.map
          (fun s ->
            match Sync_prims.Queuelock.kind_of_string s with
            | Some k -> k
            | None ->
              fail (Printf.sprintf "unknown kind %S (mcs | clh | ticket)" s))
          ks
    in
    let ints name dflt = function
      | None -> dflt
      | Some ds ->
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some d when d >= 1 -> d
            | _ -> fail (Printf.sprintf "bad %s count %S" name s))
          ds
    in
    let spec =
      { S.kinds;
        problems = Option.value (split problems) ~default:dflt.S.problems;
        mechanisms =
          Option.value (split mechanisms) ~default:dflt.S.mechanisms;
        domains = ints "domain" dflt.S.domains (split domains);
        epoch_mechanisms = dflt.S.epoch_mechanisms;
        epoch_domains =
          ints "domain" dflt.S.epoch_domains (split epoch_domains);
        think_us = Option.value think_us ~default:dflt.S.think_us;
        read_pct = dflt.S.read_pct;
        duration_ms =
          (match duration_ms with
          | Some ms -> ms
          | None -> dflt.S.duration_ms);
        warmup_ms; seed }
    in
    let progress_queue (r : S.queue_row) =
      Format.fprintf ppf "%-7s %-16s %-12s d=%-2d %s@."
        (Sync_prims.Queuelock.kind_name r.S.kind)
        r.S.problem r.S.mechanism r.S.domains
        (S.status_string r.S.status)
    in
    let progress_epoch (r : S.epoch_row) =
      Format.fprintf ppf "epoch   %-12s d=%-2d %s@." r.S.e_mechanism
        r.S.e_domains
        (S.status_string r.S.e_status)
    in
    let t = S.run ~progress_queue ~progress_epoch spec in
    Format.fprintf ppf "@.%a" S.pp t;
    (match json with
    | None -> ()
    | Some file ->
      Sync_metrics.Emit.write_file file (S.to_json spec t);
      Format.fprintf ppf "wrote %s@." file);
    if not (S.all_ok t) then exit 1
  in
  Cmd.v (Cmd.info "scaling" ~doc)
    Term.(const run $ kinds_arg $ problems_arg $ mechanisms_arg $ domains_arg
          $ epoch_domains_arg $ think_us $ duration_ms $ warmup_ms $ seed
          $ json)

let adapt_cmd =
  let doc =
    "Score the self-tuning tier (experiment E27): run each problem x \
     arrival-process x domain cell on every static platform tier and on \
     the adaptive tier, where a feedback controller retiers hot-swappable \
     mutex sites live from the contention probes. Probe tracing is on for \
     every row so tier-to-tier ratios stay honest. Reports whether the \
     adaptive rows ever fall below the worst static tier and how often \
     they match the best."
  in
  let list_arg name ~doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"LIST" ~doc)
  in
  let cells_arg =
    list_arg "cells"
      ~doc:"comma-separated problem:mechanism cells (default \
            bounded-buffer:semaphore,readers-writers:monitor,\
            alarm-clock:wheel)"
  in
  let arrivals_arg =
    list_arg "arrivals"
      ~doc:"comma-separated arrival processes (poisson, uniform, diurnal, \
            bursty); default poisson,diurnal,bursty"
  in
  let domains_arg =
    list_arg "domains"
      ~doc:"comma-separated worker domain counts (default 4)"
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"OPS_PER_S"
             ~doc:"open-loop aggregate arrival rate (default 20000)")
  in
  let duration_ms =
    Arg.(value & opt (some int) None
         & info [ "duration" ] ~docv:"MS"
             ~doc:"steady-state window per cell (default $(b,SYNC_LOAD_MS) \
                   or 150)")
  in
  let warmup_ms =
    Arg.(value & opt int 50
         & info [ "warmup" ] ~docv:"MS" ~doc:"warmup window per cell")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"workload seed")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"also write the grid as a JSON document (the E27 \
                   experiment envelope)")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"exit 1 unless the adaptive rows held the \
                   never-below-worst-static claim (the CI sanity gate)")
  in
  let fail msg =
    Format.fprintf ppf "%s@." msg;
    exit 2
  in
  let split = function
    | None -> None
    | Some s ->
      Some
        (List.filter (fun x -> x <> "")
           (List.map String.trim (String.split_on_char ',' s)))
  in
  let run cells arrivals domains rate duration_ms warmup_ms seed json strict =
    let module A = Sync_eval.Adaptive_axis in
    let dflt = A.default_spec () in
    let cells =
      match split cells with
      | None -> dflt.A.cells
      | Some cs ->
        List.map
          (fun s ->
            match String.split_on_char ':' s with
            | [ p; m ] -> (p, m)
            | _ -> fail (Printf.sprintf "bad cell %S (problem:mechanism)" s))
          cs
    in
    let arrivals =
      match split arrivals with
      | None -> dflt.A.arrivals
      | Some xs ->
        List.map
          (fun s ->
            match Sync_workload.Loadgen.arrival_of_string s with
            | Some a -> a
            | None ->
              fail
                (Printf.sprintf
                   "unknown arrival %S (poisson | uniform | diurnal | \
                    bursty)"
                   s))
          xs
    in
    let domains =
      match split domains with
      | None -> dflt.A.domains
      | Some ds ->
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some d when d >= 1 -> d
            | _ -> fail (Printf.sprintf "bad domain count %S" s))
          ds
    in
    let spec =
      { dflt with
        A.cells; arrivals; domains;
        rate_per_s = Option.value rate ~default:dflt.A.rate_per_s;
        duration_ms =
          (match duration_ms with
          | Some ms -> ms
          | None -> dflt.A.duration_ms);
        warmup_ms; seed }
    in
    let progress (r : A.row) =
      Format.fprintf ppf "%-16s %-10s %-8s d=%-2d %-9s %s@." r.A.problem
        r.A.mechanism
        (Sync_workload.Loadgen.arrival_name r.A.arrival)
        r.A.domains r.A.tier
        (A.status_string r.A.status)
    in
    let t = A.run ~progress spec in
    Format.fprintf ppf "@.%a" A.pp t;
    (match json with
    | None -> ()
    | Some file ->
      Sync_metrics.Emit.write_file file (A.to_json spec t);
      Format.fprintf ppf "wrote %s@." file);
    if not (A.all_ok t) then exit 1;
    if strict && not (A.never_worst ~slack:spec.A.never_worst_slack t) then begin
      Format.fprintf ppf
        "adaptive fell below the worst static tier on some cell@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "adapt" ~doc)
    Term.(const run $ cells_arg $ arrivals_arg $ domains_arg $ rate
          $ duration_ms $ warmup_ms $ seed $ json $ strict)

let anomaly_cmd =
  let doc =
    "Reproduce footnote 3 (experiment E1): in the Figure 1 path solution a \
     second writer overtakes a waiting reader; the monitor, serializer, \
     baton-semaphore and CSP readers-priority solutions hand the resource \
     to the reader in the identical staging."
  in
  let run () =
    let show name m =
      let outcome = Sync_problems.Rw_harness.scenario_writer_handoff m in
      Format.fprintf ppf "%-34s -> %s@." name
        (Sync_problems.Rw_harness.outcome_to_string outcome)
    in
    Format.fprintf ppf
      "Staging: W1 mid-write; W2 then R queue up; W1 releases.@.";
    Format.fprintf ppf
      "Correct readers-priority hands over to R (reader-first).@.@.";
    show "pathexpr fig1 (paper Figure 1)" (module Sync_problems.Rw_path.Fig1);
    show "monitor readers-priority" (module Sync_problems.Rw_mon.Readers_prio);
    show "serializer readers-priority"
      (module Sync_problems.Rw_ser.Readers_prio);
    show "semaphore baton readers-priority"
      (module Sync_problems.Rw_sem.Readers_prio_baton);
    show "semaphore Courtois problem 1"
      (module Sync_problems.Rw_sem.Readers_prio);
    show "csp readers-priority" (module Sync_problems.Rw_csp.Readers_prio)
  in
  Cmd.v (Cmd.info "anomaly" ~doc) Term.(const run $ const ())

let trace_cmd =
  let doc =
    "Two modes. With $(b,--out FILE): run a short traced contended load on \
     every registered mechanism (experiment E21) and write the combined \
     structured event trace as Chrome trace_event JSON — load it in \
     chrome://tracing or Perfetto; one process lane per mechanism. \
     Without $(b,--out): print the annotated event trace of the \
     footnote-3 staging (E1) for a readers-writers solution (pids 200/201 \
     are the writers, pid 1 the reader)."
  in
  let which =
    Arg.(value & pos 0 string "fig1" & info [] ~docv:"SOLUTION"
           ~doc:"E1 mode: fig1 | monitor | serializer | baton | courtois | \
                 csp | ccr")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"E21 mode: write the all-mechanism Chrome trace here")
  in
  let duration_ms =
    Arg.(value & opt int 25 & info [ "duration-ms" ] ~docv:"MS"
           ~doc:"E21 mode: traced steady-state window per mechanism")
  in
  let timeline =
    Arg.(value & flag
         & info [ "timeline" ]
             ~doc:"E21 mode: also print each mechanism's compact text \
                   timeline (first 40 events)")
  in
  let run_traced out duration_ms timeline =
    let traced =
      Sync_eval.Observability.run_traced ~duration_ms ()
    in
    let rows = List.map (fun t -> t.Sync_eval.Observability.row) traced in
    Sync_eval.Observability.pp ppf rows;
    List.iter
      (fun (t : Sync_eval.Observability.traced) ->
        Format.fprintf ppf "@.-- %s --@.%a"
          t.Sync_eval.Observability.row.Sync_eval.Observability.mechanism
          Sync_trace.Profile.pp t.Sync_eval.Observability.profile;
        if timeline then begin
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          Sync_trace.Timeline.pp ppf (take 40 t.Sync_eval.Observability.events)
        end)
      traced;
    let groups =
      List.map
        (fun (t : Sync_eval.Observability.traced) ->
          ( t.Sync_eval.Observability.row.Sync_eval.Observability.mechanism,
            t.Sync_eval.Observability.events ))
        traced
    in
    Sync_trace.Chrome.write_file out groups;
    Format.fprintf ppf "@.wrote %s (%d mechanisms)@." out (List.length groups);
    if not (Sync_eval.Observability.all_ok rows) then exit 1
  in
  let run which out duration_ms timeline =
    match out with
    | Some out -> run_traced out duration_ms timeline
    | None ->
    let m =
      match which with
      | "fig1" -> Some (module Sync_problems.Rw_path.Fig1 : Sync_problems.Rw_intf.S)
      | "monitor" -> Some (module Sync_problems.Rw_mon.Readers_prio)
      | "serializer" -> Some (module Sync_problems.Rw_ser.Readers_prio)
      | "baton" -> Some (module Sync_problems.Rw_sem.Readers_prio_baton)
      | "courtois" -> Some (module Sync_problems.Rw_sem.Readers_prio)
      | "csp" -> Some (module Sync_problems.Rw_csp.Readers_prio)
      | "ccr" -> Some (module Sync_problems.Rw_ccr.Readers_prio)
      | _ -> None
    in
    match m with
    | None ->
      Format.fprintf ppf "unknown solution %S@." which;
      exit 2
    | Some m ->
      let outcome, events =
        Sync_problems.Rw_harness.scenario_writer_handoff_trace m
      in
      List.iter
        (fun e -> Format.fprintf ppf "%a@." Sync_platform.Trace.pp_event e)
        events;
      Format.fprintf ppf "outcome: %s@."
        (Sync_problems.Rw_harness.outcome_to_string outcome)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ which $ out $ duration_ms $ timeline)

let run_cmd =
  let doc = "Run one solution's conformance checks." in
  let problem =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROBLEM")
  in
  let mechanism =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"MECHANISM")
  in
  let variant =
    Arg.(value & opt string "default" & info [ "variant" ] ~docv:"VARIANT")
  in
  let run problem mechanism variant =
    match Sync_eval.Registry.find ~problem ~variant ~mechanism with
    | None ->
      Format.fprintf ppf "unknown solution %s/%s@%s (try 'list')@." problem
        variant mechanism;
      exit 2
    | Some e -> (
      match e.verify () with
      | Ok () -> Format.fprintf ppf "pass@."
      | Error msg ->
        Format.fprintf ppf "FAIL: %s@." msg;
        if e.expect_conformant then exit 1
        else Format.fprintf ppf "(expected: documented anomaly)@.")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ problem $ mechanism $ variant)

let paths_cmd =
  let doc = "Parse a path-expression spec and echo its AST rendering." in
  let src = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let run src =
    match Sync_pathexpr.Parser.parse src with
    | spec ->
      Format.fprintf ppf "%s@.operations: %s@."
        (Sync_pathexpr.Ast.to_string spec)
        (String.concat ", " (Sync_pathexpr.Ast.ops spec))
    | exception Sync_pathexpr.Parser.Syntax_error msg ->
      Format.fprintf ppf "syntax error: %s@." msg;
      exit 1
  in
  Cmd.v (Cmd.info "paths" ~doc) Term.(const run $ src)

let model_cmd =
  let doc =
    "Exhaustively model-check the staged scenarios over ALL interleavings      (experiment E17): the Figure 1 anomaly is unavoidable; the monitor      readers-priority handoff is schedule-independent; flipping the      release-site signal provably flips the outcome."
  in
  let run () =
    let ok = ref true in
    List.iter
      (fun (name, v) ->
        if not v.Sync_model.Scenarios.holds then ok := false;
        Format.fprintf ppf "%-28s states=%-5d %s@." name
          v.Sync_model.Scenarios.states v.Sync_model.Scenarios.detail)
      (Sync_model.Scenarios.all ());
    if not !ok then exit 1
  in
  Cmd.v (Cmd.info "model" ~doc) Term.(const run $ const ())

let nested_cmd =
  let doc =
    "Demonstrate the nested-monitor-call problem (experiment E11): the \
     naive structure deadlocks, the paper's Section-2 structure does not."
  in
  let run () =
    let open Sync_monitor in
    let open Sync_platform in
    let demo ~structure access_fn =
      let outer = Monitor.create () in
      let inner = Monitor.create () in
      let cond = Monitor.Cond.create inner in
      let l = Latch.create 2 in
      let consumer =
        Process.spawn ~backend:`Thread (fun () ->
            access_fn outer (fun () ->
                Monitor.with_monitor inner (fun () -> Monitor.Cond.wait cond));
            Latch.arrive l)
      in
      ignore consumer;
      Thread.delay 0.1;
      let producer =
        Process.spawn ~backend:`Thread (fun () ->
            access_fn outer (fun () ->
                Monitor.with_monitor inner (fun () ->
                    Monitor.Cond.signal cond));
            Latch.arrive l)
      in
      ignore producer;
      let finished = Latch.wait_timeout l ~timeout_ns:500_000_000L in
      Format.fprintf ppf "%-28s -> %s@." structure
        (if finished then "completes" else "DEADLOCK (detected by timeout)")
    in
    demo ~structure:"resource inside monitor" (fun m f ->
        Protected.access_inside m f);
    demo ~structure:"paper's Section-2 structure" (fun m f ->
        Protected.access m ~before:(fun () -> ()) ~after:(fun () -> ()) f)
  in
  Cmd.v (Cmd.info "nested" ~doc) Term.(const run $ const ())

let explore_cmd =
  let doc =
    "Explore deterministic schedules of a scenario (E18): run the real      mechanism implementation under controlled interleavings with a seeded      random walk, PCT priority fuzzing, or bounded exhaustive DFS. Failing      schedules print their seed and schedule string and shrink to a minimal      counterexample; with no SCENARIO, lists the catalog."
  in
  let open Sync_detsched in
  let scenario_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCENARIO"
           ~doc:"Scenario name from the catalog (try with no argument).")
  in
  let strategy =
    Arg.(value & opt string "random" & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:"random | pct | dfs | dpor")
  in
  let dpor_flag =
    Arg.(value & flag & info [ "dpor" ]
           ~doc:"Shorthand for --strategy dpor (dynamic partial-order \
                 reduction: complete coverage of the dependency-equivalence \
                 classes within the schedule budget).")
  in
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
           ~doc:"Domains for dpor: partitions the top-level backtrack \
                 frontier. Keep 1 for scenarios using the process-global \
                 fault registry (the storm-* entries).")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Base seed for random/pct.")
  in
  let runs =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N"
           ~doc:"Seeds to try for random/pct.")
  in
  let max_schedules =
    Arg.(value & opt int 10_000 & info [ "max-schedules" ] ~docv:"N"
           ~doc:"Schedule budget for dfs.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"SCHEDULE"
             ~doc:"Replay one recorded schedule string (as printed by a \
                   failing run) under event tracing and print the compact \
                   timeline of what every task did, instead of exploring.")
  in
  let list_catalog () =
    List.iter
      (fun (e : Scenarios.entry) ->
        Format.fprintf ppf "%-16s %s  [%s]@." e.scen.Detsched.name
          e.scen.Detsched.descr
          (match e.expect with
          | Scenarios.Pass -> "expected: pass"
          | Scenarios.Fail -> "expected: failing schedules exist"))
      Scenarios.all
  in
  let report_failure sc seed v =
    Format.fprintf ppf "FAIL seed=%d: %s@." seed (Detsched.verdict_message v);
    Format.fprintf ppf "  schedule: %s@."
      (Detsched.Schedule.to_string v.Detsched.outcome.Detsched.schedule);
    let s = Detsched.shrink sc v.Detsched.outcome.Detsched.schedule in
    Format.fprintf ppf "  shrunk (%d replays): %s@." s.Detsched.attempts
      (Detsched.Schedule.to_string s.Detsched.shrunk);
    Format.fprintf ppf "  %s@." s.Detsched.message
  in
  let replay_traced sc sched_str =
    let sched =
      try Detsched.Schedule.of_string sched_str
      with _ ->
        Format.fprintf ppf "unparseable schedule %S@." sched_str;
        exit 2
    in
    let v, events =
      Sync_trace.Probe.with_tracing (fun () -> Detsched.replay sc sched)
    in
    Sync_trace.Timeline.pp ppf events;
    if Detsched.verdict_ok v then Format.fprintf ppf "verdict: ok@."
    else begin
      Format.fprintf ppf "verdict: %s@." (Detsched.verdict_message v);
      exit 1
    end
  in
  let run name strategy dpor_flag workers seed runs max_schedules replay =
    let strategy = if dpor_flag then "dpor" else strategy in
    match name with
    | None -> list_catalog ()
    | Some name -> (
      match Scenarios.find name with
      | None ->
        Format.fprintf ppf "unknown scenario %S; catalog:@." name;
        list_catalog ();
        exit 2
      | Some e -> (
        let sc = e.Scenarios.scen in
        match replay with
        | Some sched_str -> replay_traced sc sched_str
        | None -> (
        match strategy with
        | "random" | "pct" -> (
          let strat = if strategy = "pct" then `Pct else `Random in
          let r =
            Detsched.sample ~runs ~base_seed:seed ~strategy:strat sc
          in
          match r.Detsched.failure with
          | None ->
            Format.fprintf ppf "%s: %d %s runs ok (seeds %d..%d)@." name
              r.Detsched.runs strategy seed (seed + runs - 1)
          | Some (bad_seed, v) ->
            report_failure sc bad_seed v;
            exit 1)
        | "dfs" -> (
          let r = Detsched.explore_dfs ~max_schedules sc in
          Format.fprintf ppf
            "%s: %d schedules explored (%s), deepest %d decisions@." name
            r.Detsched.explored
            (if r.Detsched.complete then "complete" else "budget hit")
            r.Detsched.deepest;
          match r.Detsched.failures with
          | [] -> Format.fprintf ppf "no failing schedule@."
          | fs ->
            Format.fprintf ppf "%d failing schedule(s), first:@."
              (List.length fs);
            let sched, msg = List.hd fs in
            Format.fprintf ppf "  %s@.  %s@."
              (Detsched.Schedule.to_string sched)
              msg;
            exit 1)
        | "dpor" -> (
          let r = Detsched.explore_dpor ~max_schedules ~workers sc in
          Format.fprintf ppf
            "%s: %d schedules explored (%s), deepest %d decisions, %d \
             races, %d workers, %.0f sched/s@."
            name r.Detsched.explored
            (if r.Detsched.complete then "complete: every equivalence class"
             else "budget hit")
            r.Detsched.deepest r.Detsched.races r.Detsched.workers
            r.Detsched.per_sec;
          match r.Detsched.failures with
          | [] -> Format.fprintf ppf "no failing schedule@."
          | fs ->
            Format.fprintf ppf "%d failing schedule(s), first:@."
              (List.length fs);
            let sched, msg = List.hd fs in
            Format.fprintf ppf "  %s@.  %s@."
              (Detsched.Schedule.to_string sched)
              msg;
            exit 1)
        | s ->
          Format.fprintf ppf
            "unknown strategy %S (random | pct | dfs | dpor)@." s;
          exit 2)))
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ scenario_arg $ strategy $ dpor_flag $ workers $ seed
          $ runs $ max_schedules $ replay_arg)

let exploration_cmd =
  let doc =
    "Run the exploration axis (experiment E26): naive bounded DFS vs \
     dynamic partial-order reduction over the scenario catalog at a shared \
     schedule budget per row. Rows where DFS completes cross-check the two \
     engines (identical failure modes, DPOR explores no more); rows where \
     only DPOR completes verify every dependency-equivalence class of \
     trees DFS cannot finish. Exits non-zero if any ground-truth row \
     disagrees."
  in
  let deep =
    Arg.(value & flag & info [ "deep" ]
           ~doc:"Add the frontier shapes (larger instances and budgets; \
                 used by the non-blocking dpor-deep CI job).")
  in
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
           ~doc:"Domains per DPOR run (storm rows stay on 1).")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the rows as a JSON document.")
  in
  let run deep workers json =
    let progress (r : Sync_eval.Exploration.row) =
      Format.fprintf ppf "  [%s] dfs %d%s  dpor %d%s@." r.scenario
        r.dfs.Sync_eval.Exploration.explored
        (if r.dfs.Sync_eval.Exploration.complete then " (complete)" else "")
        r.dpor.Sync_eval.Exploration.explored
        (if r.dpor.Sync_eval.Exploration.complete then " (complete)" else "")
    in
    let rows = Sync_eval.Exploration.run ~deep ~workers ~progress () in
    Format.fprintf ppf "@.";
    Sync_eval.Exploration.pp ppf rows;
    (match json with
    | None -> ()
    | Some file ->
      Sync_metrics.Emit.write_file file (Sync_eval.Exploration.to_json rows);
      Format.fprintf ppf "@.rows written to %s@." file);
    if Sync_eval.Exploration.sound rows then
      Format.fprintf ppf "@.all ground-truth rows agree@."
    else begin
      Format.fprintf ppf "@.EXPLORATION DISAGREEMENT — see rows above@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "exploration" ~doc) Term.(const run $ deep $ workers $ json)

let faults_cmd =
  let doc =
    "Run the robustness matrix (experiment E19): every mechanism x {bounded \
     buffer, readers-writers, FCFS} under injected aborts (threaded, \
     deterministic fault plans) and cancellation/timeout storms \
     (deterministic runtime: seeded random schedules + bounded DFS). Exits \
     non-zero unless every run recovered with its invariants intact."
  in
  let storm_runs =
    Arg.(value & opt int 8 & info [ "storm-runs" ] ~docv:"N"
           ~doc:"Random-schedule seeds per storm scenario.")
  in
  let run storm_runs =
    Format.fprintf ppf
      "fault plans seeded (mixed-prob seed 42, storm plan seed 7); storm \
       schedules use seeds 1..%d — failing rows name the seed or DFS \
       schedule to replay@.@."
      storm_runs;
    let progress r =
      Format.fprintf ppf "  [%s/%s %s] %d/%d  %s@."
        r.Sync_eval.Robustness.mechanism r.Sync_eval.Robustness.problem
        r.Sync_eval.Robustness.scenario r.Sync_eval.Robustness.recovered
        r.Sync_eval.Robustness.runs r.Sync_eval.Robustness.detail
    in
    let rows = Sync_eval.Robustness.run ~storm_runs ~progress () in
    Format.fprintf ppf "@.";
    Sync_eval.Robustness.pp ppf rows;
    if Sync_eval.Robustness.all_recovered rows then
      Format.fprintf ppf "@.all runs recovered@."
    else begin
      Format.fprintf ppf "@.ROBUSTNESS FAILURE(S) — see rows above@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const run $ storm_runs)

let serve_cmd =
  let doc =
    "Run the service-tier robustness scenarios (experiment E24): spawn real \
     bloom_serve daemons and check the load, chaos and crash-recovery \
     stories end to end — typed outcomes only, zero hung connections, \
     clean SIGTERM drains. Exits non-zero unless every scenario passed."
  in
  let run () =
    let progress (r : Sync_eval.Service_axis.row) =
      Format.fprintf ppf "  [%s] %s@." r.Sync_eval.Service_axis.scenario
        r.Sync_eval.Service_axis.detail
    in
    let rows = Sync_eval.Service_axis.run ~progress () in
    Format.fprintf ppf "@.";
    Sync_eval.Service_axis.pp ppf rows;
    if Sync_eval.Service_axis.all_ok rows then
      Format.fprintf ppf "@.every scenario recovered@."
    else begin
      Format.fprintf ppf "@.SERVICE FAILURE(S) — see rows above@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "serve" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "Mechanized evaluation of synchronization mechanisms (Bloom, SOSP'79)"
  in
  let info = Cmd.info "bloom-eval" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; matrix_cmd; independence_cmd; modularity_cmd;
            conformance_cmd; scorecard_cmd; anomaly_cmd; run_cmd; paths_cmd;
            trace_cmd; model_cmd; nested_cmd; explore_cmd; exploration_cmd;
            faults_cmd; load_cmd; hierarchy_cmd; scaling_cmd; adapt_cmd;
            serve_cmd ]))
