(** Bounded buffer with semaphores — Dijkstra's classic three-semaphore
    solution: [empty] counts free slots, [full] counts items, [mutex]
    serializes buffer access. *)

open Sync_platform
open Sync_taxonomy

type t = {
  empty : Semaphore.Counting.t;
  full : Semaphore.Counting.t;
  mutex : Semaphore.Counting.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "semaphore"

let create ~capacity ~put ~get =
  { empty = Semaphore.Counting.create capacity;
    full = Semaphore.Counting.create 0;
    mutex = Semaphore.Counting.create 1;
    res_put = put;
    res_get = get }

(* Abort safety: if the resource operation (or a P after the first) raises,
   every token already claimed is returned — [mutex] unconditionally, and
   the slot/item token to the side it was taken from, since the transfer
   did not happen. Without this a single body exception wedges the buffer
   (a lost [mutex]) or leaks capacity (a lost [empty]/[full]). *)

let put t ~pid v =
  Semaphore.Counting.p t.empty;
  match
    Semaphore.Counting.p t.mutex;
    (match t.res_put ~pid v with
    | () -> Semaphore.Counting.v t.mutex
    | exception e ->
      Semaphore.Counting.v t.mutex;
      raise e)
  with
  | () -> Semaphore.Counting.v t.full
  | exception e ->
    Semaphore.Counting.v t.empty;
    raise e

let get t ~pid =
  Semaphore.Counting.p t.full;
  match
    Semaphore.Counting.p t.mutex;
    (match t.res_get ~pid with
    | v ->
      Semaphore.Counting.v t.mutex;
      v
    | exception e ->
      Semaphore.Counting.v t.mutex;
      raise e)
  with
  | v ->
    Semaphore.Counting.v t.empty;
    v
  | exception e ->
    Semaphore.Counting.v t.full;
    raise e

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "P(empty)"; "V(empty)" ]);
        ("bb-no-underflow", [ "P(full)"; "V(full)" ]);
        ("bb-access-exclusion", [ "P(mutex)"; "V(mutex)" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "empty/full token counts mirror buffer occupancy" ]
    ~separation:Meta.Separated ()
