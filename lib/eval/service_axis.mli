(** The service robustness axis (E24): does the multi-process tier keep
    its promises end to end?

    Three scenarios, each against a real [bloom_serve] daemon spawned as
    a child process and driven over the wire protocol:

    - {b load}: plain open-loop load, then SIGTERM. Passes when every
      request reached a typed outcome (zero hung connections) and the
      daemon drained within its grace period.
    - {b chaos}: the same with the connection-chaos layer on (seeded
      drop / delay / truncate / reset). Passes on the same invariants —
      byte-level faults must surface as typed retries/timeouts, never
      as a stuck client.
    - {b crash}: the kill -9 drill — crash the daemon mid-load, restart
      it, keep driving. Passes when clients recover onto the restarted
      daemon ([recovered] > 0), nothing hangs, and the survivor drains
      clean.

    Windows scale with [SYNC_LOAD_MS] like every other live axis. *)

type row = {
  scenario : string;  (** ["load"], ["chaos"] or ["crash"] *)
  problem : string;  (** served problem mix driven at the daemon *)
  ok : int;  (** requests answered [Ok] *)
  deadline : int;  (** typed deadline/timeout outcomes *)
  overloaded : int;  (** terminal overload outcomes *)
  conn_failed : int;  (** terminal connection failures *)
  hung : int;  (** client actors that failed to terminate — must be 0 *)
  recovered : int;  (** crash scenario: [Ok] replies after the restart *)
  drain_clean : bool;  (** the (last) daemon drained on SIGTERM *)
  passed : bool;
  detail : string;  (** failure explanation, or a summary when clean *)
}

val find_exe : unit -> (string, string) result
(** Locate the [bloom_serve] executable: [$SERVE_EXE] when set,
    otherwise next to the running executable, otherwise the usual
    [_build] layout relative to the working directory. *)

val run : ?progress:(row -> unit) -> unit -> row list
(** Execute all three scenarios (a failure to locate or boot the daemon
    yields a single failed row rather than an exception). *)

val all_ok : row list -> bool

val pp : Format.formatter -> row list -> unit

val to_json : row list -> Sync_metrics.Emit.t
