lib/eval/expressiveness.ml: Format Info List Meta Printf Registry Sync_taxonomy
