lib/eval/independence.ml: Format Hashtbl List Meta Option Registry Sync_taxonomy
