open Sync_platform

type discipline = [ `Hoare | `Mesa ]

(* One low-level lock protects all queues and the [busy] flag. Waking a
   thread parked on [entry] or [urgent] transfers monitor ownership to it
   ([busy] stays true). Waking a thread parked on a condition transfers
   ownership under the Hoare discipline only; under Mesa the woken thread
   re-acquires through the entry path. *)
type t = {
  lock : Mutex.t;
  disc : discipline;
  mutable busy : bool;
  entry : unit Waitq.t;
  urgent : unit Waitq.t;
}

let create ?(discipline = `Hoare) () =
  { lock = Mutex.create (); disc = discipline; busy = false;
    entry = Waitq.create (); urgent = Waitq.create () }

let discipline t = t.disc

(* Must hold t.lock. Urgent waiters (parked signallers) beat the entry
   queue, per Hoare'74. *)
let grant t =
  if Waitq.wake_first t.urgent then ()
  else if Waitq.wake_first t.entry then ()
  else t.busy <- false

let enter t =
  Mutex.lock t.lock;
  if t.busy then Waitq.wait t.entry ~lock:t.lock ()
  else t.busy <- true;
  Mutex.unlock t.lock

let exit t =
  Mutex.lock t.lock;
  grant t;
  Mutex.unlock t.lock

let with_monitor t f =
  enter t;
  match f () with
  | v ->
    exit t;
    v
  | exception e ->
    exit t;
    raise e

let entry_waiters t =
  Mutex.lock t.lock;
  let n = Waitq.length t.entry in
  Mutex.unlock t.lock;
  n

module Cond = struct
  type monitor = t

  type t = { mon : monitor; q : int Waitq.t }

  let create mon = { mon; q = Waitq.create () }

  let rank_cmp = (compare : int -> int -> int)

  let wait_pri c rank =
    let m = c.mon in
    Mutex.lock m.lock;
    grant m;
    Waitq.wait c.q ~lock:m.lock rank;
    (match m.disc with
    | `Hoare -> () (* ownership was transferred by the signaller *)
    | `Mesa ->
      (* Signal-and-continue: compete for the monitor again. *)
      if m.busy then Waitq.wait m.entry ~lock:m.lock ()
      else m.busy <- true);
    Mutex.unlock m.lock

  let wait c = wait_pri c 0

  let signal c =
    let m = c.mon in
    Mutex.lock m.lock;
    if not (Waitq.is_empty c.q) then begin
      match m.disc with
      | `Hoare ->
        (* Transfer the monitor to the chosen waiter; park on urgent. *)
        ignore (Waitq.wake_min c.q ~cmp:rank_cmp);
        Waitq.wait m.urgent ~lock:m.lock ()
      | `Mesa -> ignore (Waitq.wake_min c.q ~cmp:rank_cmp)
    end;
    Mutex.unlock m.lock

  let broadcast c =
    let m = c.mon in
    match m.disc with
    | `Mesa ->
      Mutex.lock m.lock;
      ignore (Waitq.wake_all c.q);
      Mutex.unlock m.lock
    | `Hoare ->
      (* Cascade of signal-and-waits through the waiters present NOW: a
         woken waiter that re-waits gets a fresh (younger) queue position,
         so waking the oldest [n] times reaches exactly the original
         waiters and the cascade terminates even if they all re-wait. *)
      Mutex.lock m.lock;
      let n = Waitq.length c.q in
      Mutex.unlock m.lock;
      for _ = 1 to n do
        Mutex.lock m.lock;
        if not (Waitq.is_empty c.q) then begin
          ignore (Waitq.wake_min c.q ~cmp:rank_cmp);
          Waitq.wait m.urgent ~lock:m.lock ()
        end;
        Mutex.unlock m.lock
      done

  let queue c =
    let m = c.mon in
    Mutex.lock m.lock;
    let b = not (Waitq.is_empty c.q) in
    Mutex.unlock m.lock;
    b

  let count c =
    let m = c.mon in
    Mutex.lock m.lock;
    let n = Waitq.length c.q in
    Mutex.unlock m.lock;
    n

  let min_rank c =
    let m = c.mon in
    Mutex.lock m.lock;
    let r = Waitq.min_tag c.q ~cmp:rank_cmp in
    Mutex.unlock m.lock;
    r
end
