lib/monitor/monitor.ml: Mutex Sync_platform Waitq
