open Sync_taxonomy

type pairing = {
  mechanism : string;
  problem : string;
  variant_a : string;
  variant_b : string;
  constraint_id : string;
  similarity : float;
}

let jaccard a b =
  if a = [] && b = [] then 1.0
  else begin
    let count tokens =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun tok ->
          Hashtbl.replace tbl tok
            (1 + Option.value (Hashtbl.find_opt tbl tok) ~default:0))
        tokens;
      tbl
    in
    let ca = count a and cb = count b in
    let keys = Hashtbl.create 16 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) ca;
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) cb;
    let inter = ref 0 and union = ref 0 in
    Hashtbl.iter
      (fun k () ->
        let na = Option.value (Hashtbl.find_opt ca k) ~default:0 in
        let nb = Option.value (Hashtbl.find_opt cb k) ~default:0 in
        inter := !inter + min na nb;
        union := !union + max na nb)
      keys;
    float_of_int !inter /. float_of_int !union
  end

let analyze entries =
  let rec pairs acc = function
    | [] -> List.rev acc
    | (a : Registry.entry) :: rest ->
      let mates =
        List.filter
          (fun (b : Registry.entry) ->
            b.meta.Meta.mechanism = a.meta.Meta.mechanism
            && b.meta.Meta.problem = a.meta.Meta.problem
            && b.meta.Meta.variant <> a.meta.Meta.variant)
          rest
      in
      let acc =
        List.fold_left
          (fun acc (b : Registry.entry) ->
            List.fold_left
              (fun acc (cid, frag_a) ->
                match List.assoc_opt cid b.meta.Meta.fragments with
                | None -> acc
                | Some frag_b ->
                  { mechanism = a.meta.Meta.mechanism;
                    problem = a.meta.Meta.problem;
                    variant_a = a.meta.Meta.variant;
                    variant_b = b.meta.Meta.variant;
                    constraint_id = cid;
                    similarity = jaccard frag_a frag_b }
                  :: acc)
              acc a.meta.Meta.fragments)
          acc mates
      in
      pairs acc rest
  in
  pairs [] entries

let shared_constraint_reuse pairings =
  (* Exclusion constraints are identifiable by id prefix-free lookup via
     the registry; to keep this function pure over pairings we rely on the
     convention that priority constraints carry the id "rw-priority" (the
     only shared-variant problem family). *)
  let exclusion =
    List.filter (fun p -> p.constraint_id <> "rw-priority") pairings
  in
  List.filter_map
    (fun mech ->
      let mine = List.filter (fun p -> p.mechanism = mech) exclusion in
      match mine with
      | [] -> None
      | _ ->
        let sum = List.fold_left (fun s p -> s +. p.similarity) 0.0 mine in
        Some (mech, sum /. float_of_int (List.length mine)))
    Registry.mechanisms

let pp ppf pairings =
  List.iter
    (fun p ->
      Format.fprintf ppf "%-11s %-16s %-28s %-28s %-14s %.2f@." p.mechanism
        p.problem p.variant_a p.variant_b p.constraint_id p.similarity)
    pairings

let pp_summary ppf summary =
  Format.fprintf ppf "%-12s %s@." "mechanism"
    "shared-exclusion-constraint reuse";
  List.iter
    (fun (mech, score) -> Format.fprintf ppf "%-12s %.0f%%@." mech (100.0 *. score))
    summary
