lib/problems/fcfs_path.ml: Info Meta Sync_pathexpr Sync_taxonomy
