lib/problems/slot_csp.ml: Csp Info Meta Sync_csp Sync_platform Sync_taxonomy
