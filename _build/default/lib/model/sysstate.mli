(** Pure model state for the exhaustive-interleaving checker.

    The concrete mechanisms in this repository run on real threads, so
    their tests can only sample schedules. This module gives the same
    semantics a {e pure} form — strong semaphores and Hoare monitors as
    immutable values inside one composite state — so {!Explore} can
    enumerate {b every} interleaving of a small scenario and decide
    properties like "the Figure 1 anomaly is unavoidable" rather than
    "was observed".

    Modeling notes (documented divergences from the thread code, both
    harmless for the scenarios checked):
    - a blocked semaphore/monitor acquisition is one guarded atomic
      action (waiters re-test instead of parking in a queue), except that
      strong semaphores keep an explicit FIFO queue so fairness claims
      stay checkable;
    - the counter idiom of path-expression bursts is fused with its
      mutex into a single atomic action, which the real implementation's
      per-counter mutex guarantees anyway. *)

type sem = {
  value : int;
  queue : string list;    (** parked process names, FIFO *)
  granted : string list;  (** handed a unit, not yet resumed *)
}

type mon = {
  owner : string option;
  entry : string list;
  urgent : string list;
  conds : (string * string list) list;
  mgranted : string list; (** handed ownership, not yet resumed *)
}

type ser = {
  possessed : bool;
  sgranted : string list;  (** handed possession, not yet resumed *)
  sentry : string list;    (** FIFO entry queue *)
  queues : (string * (string * int) list) list;
      (** event queues: (process, global arrival seq), FIFO *)
  crowds : (string * int) list;
  next_seq : int;
}

type t = {
  sems : (string * sem) list;
  mons : (string * mon) list;
  sers : (string * ser) list;
  ints : (string * int) list;
  log : string list;  (** ghost event log, most recent first *)
}

val init :
  ?sems:(string * int) list -> ?mons:string list ->
  ?conds:(string * string list) list ->
  ?sers:(string * string list * string list) list ->
  ?ints:(string * int) list -> unit -> t
(** [sems] are (name, initial value); [mons] monitor names; [conds] maps
    a monitor name to its condition names; [sers] are (name, queue names,
    crowd names); [ints] ghost counters. *)

val sem : t -> string -> sem

val mon : t -> string -> mon

val ser : t -> string -> ser

val int_of : t -> string -> int

val set_int : t -> string -> int -> t

val logged : t -> string list
(** Ghost events, oldest first. *)

val log_event : t -> string -> t

(** Atomic action builders. Each returns [(label, guard, apply)] triples
    consumed by {!Explore}. *)

type action = { label : string; guard : t -> bool; apply : t -> t }

val act : string -> ?guard:(t -> bool) -> (t -> t) -> action
(** A plain atomic action (guard defaults to always-enabled). *)

(** Strong counting semaphore operations, matching
    {!Sync_platform.Semaphore.Counting} with [`Strong] fairness. *)
module Sem : sig
  val request : string -> me:string -> action
  (** Take a unit if free and nobody queues, else join the FIFO queue. *)

  val acquire : string -> me:string -> action
  (** Blocks (guard false) until a unit has been handed to [me]. *)

  val p : string -> me:string -> action list
  (** [request] then [acquire]. *)

  val v : string -> action
  (** Hand the unit to the queue head, or increment. *)

  val available : t -> string -> bool
  (** Is a unit immediately takeable (used by fused path-burst actions)? *)

  val take : t -> string -> t
  (** Unconditionally consume a unit (guard with {!available}). *)
end

(** Hoare monitor operations, matching {!Sync_monitor.Monitor}. *)
module Mon : sig
  val enter : string -> me:string -> action list

  val exit : string -> me:string -> action

  val wait : string -> cond:string -> me:string -> action list
  (** Release (urgent first) and park on the condition; resumes once
      ownership is transferred back by a signal. *)

  val signal : string -> cond:string -> me:string -> action list
  (** Hoare semantics: transfer to the longest-waiting waiter and park on
      the urgent queue; no-op when the condition is empty. *)

  val signal_priority :
    string -> first:string -> otherwise:string -> me:string -> action list
  (** A release-site policy choice: signal [first] if it has waiters,
      [otherwise] otherwise — the single line the paper says carries a
      monitor solution's priority constraint. *)

  val queue_nonempty : t -> string -> cond:string -> bool

  val waiting_on : t -> string -> cond:string -> string -> bool
  (** Is the named process parked on the condition? (Used by staging
      guards.) *)
end

(** Serializer operations, matching {!Sync_serializer.Serializer}:
    possession with automatic signalling. Guards are referenced by id and
    resolved through the [guards] table passed to every release point, so
    the state stays purely structural (hashable). Only the head of a
    queue is eligible; among eligible heads the longest-waiting wins. *)
module Ser : sig
  type guards = (string * (t -> bool)) list
  (** queue name -> its guard (one guard per queue, as in the RW
      solutions). *)

  val acquire : string -> me:string -> action list
  (** Gain possession (FIFO behind other entrants). *)

  val release : string -> guards:guards -> me:string -> action
  (** Release possession, re-evaluating queue-head guards (automatic
      signalling). *)

  val enqueue : string -> q:string -> me:string -> guards:guards -> action list
  (** Park on the queue and release; resumes with possession once the
      guard held at a release point. Caller must hold possession. *)

  val join_crowd : string -> crowd:string -> me:string -> guards:guards -> action
  (** Enter the crowd and release possession (the body then runs outside
      the serializer). *)

  val leave_crowd : string -> crowd:string -> me:string -> action list
  (** Re-gain possession and leave the crowd. *)

  val waiting_in : t -> string -> q:string -> string -> bool
  (** Is the named process parked on the queue? (Staging guards.) *)
end
