lib/problems/rw_sem.ml: Info Meta Rw_intf Semaphore Sync_platform Sync_taxonomy
