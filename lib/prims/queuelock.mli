(** Queue locks with local spinning — the E23 scalable-lock tier.

    Three API-compatible mutual-exclusion protocols whose contended
    handoff cost stays flat as waiters grow: MCS and CLH spin on a
    private cache-line-padded register per waiter and grant FIFO, and a
    ticket lock meters its polling by queue distance (proportional
    backoff). All are functors over {!Regs.FULL}, so the identical
    protocol code runs on SC atomics in production and on {!Detrt}
    recorded registers under DPOR (the E25 certification idiom).

    Kind selection is a creation-scope property ({!with_kind}), and the
    platform mutex consults {!selected} at creation time with precedence
    Det > Prim > Queue > Fast > Sys. MCS/CLH assign each thread a
    per-lock slot (at most 64 distinct threads per lock); none of the
    locks are reentrant. *)

val pad_words : int
(** Spacer words allocated after each protocol register (the Fastring
    padding idiom — OCaml 5.1 has no [Atomic.make_contended]). *)

module Make (R : Regs.FULL) : sig
  (** Mellor-Crummey/Scott: implicit queue through a [tail] register;
      each waiter spins on its own [locked] flag, the releaser writes
      exactly one waiter's flag. *)
  module Mcs : sig
    type t

    val create : ?slots:int -> unit -> t
    (** [slots] (default 64) bounds the distinct concurrent slots. *)

    val lock : t -> slot:int -> unit

    val try_lock : t -> slot:int -> bool
    (** Non-blocking: fails without publishing a queue node, so a
        timed-out caller never leaves a stale waiter behind. *)

    val unlock : t -> slot:int -> unit
  end

  (** Craig/Landin/Hagersten: waiters spin on their predecessor's node
      and adopt it on release, so [slots + 1] nodes circulate forever. *)
  module Clh : sig
    type t

    val create : ?slots:int -> unit -> t

    val lock : t -> slot:int -> unit

    val try_lock : t -> slot:int -> bool

    val unlock : t -> slot:int -> unit
  end

  (** Ticket lock with proportional backoff: FIFO by fetch-and-add
      arrival order; the wait burns a delay proportional to the
      waiter's queue distance between bounded polls, then parks in
      [R.await]. *)
  module Ticket : sig
    type t

    val create : unit -> t

    val lock : t -> unit

    val try_lock : t -> bool
    (** CAS-based (can decline): a true non-blocking attempt, unlike
        the FAA-class {!Faalock} try that must commit a ticket. *)

    val unlock : t -> unit
  end
end

(** {1 Kind selection and production instances} *)

type kind = MCS | CLH | Ticket

val kind_name : kind -> string
(** ["mcs"] / ["clh"] / ["ticket"] — also the tier labels in reports. *)

val kind_of_string : string -> kind option

val all : kind list

val selected : unit -> kind option
(** The kind selected for the current creation scope, if any. *)

val with_kind : kind -> (unit -> 'a) -> 'a
(** [with_kind k f] runs [f] with queue-lock kind [k] selected, saving
    and restoring the previous selection (exactly like
    {!Prims.with_class}). Affects primitives {e created} inside [f]. *)

type lock = {
  qk_kind : kind;
  qk_lock : unit -> unit;
  qk_try : unit -> bool;
  qk_unlock : unit -> unit;
}
(** One closure record regardless of kind, so the platform mutex
    carries a single [Queue] representation. *)

val make_lock : kind -> lock
(** A fresh production lock (over SC atomics) of the given kind, with
    the per-lock thread-to-slot registry already attached for the
    slot-indexed kinds. *)
