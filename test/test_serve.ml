(* Tier-1 tests for the E24 service tier: the wire codec (property
   tested — the deadline-offset bug class must stay dead), framing
   against real sockets, the seeded chaos layer's byte-for-byte replay
   contract, the token-bucket admission gate, an in-process
   client/server round trip with deadline propagation, and the kill -9
   crash drill against the real bloom_serve binary. *)

open Sync_serve

let show_req = function
  | Wire.Ping -> "Ping"
  | Wire.Q_put s -> Printf.sprintf "Q_put %S" s
  | Wire.Q_get -> "Q_get"
  | Wire.S_seek t -> Printf.sprintf "S_seek %d" t
  | Wire.T_sleep t -> Printf.sprintf "T_sleep %d" t
  | Wire.K_get k -> Printf.sprintf "K_get %S" k
  | Wire.K_put (k, v) -> Printf.sprintf "K_put (%S, %S)" k v

let show_reply = function
  | Wire.Ok s -> Printf.sprintf "Ok %S" s
  | Wire.Overloaded { retry_after_ms } ->
    Printf.sprintf "Overloaded %dms" retry_after_ms
  | Wire.Deadline_exceeded -> "Deadline_exceeded"
  | Wire.Bad_request m -> Printf.sprintf "Bad_request %S" m
  | Wire.Shutting_down -> "Shutting_down"

let reply_t =
  Alcotest.testable (fun ppf r -> Format.pp_print_string ppf (show_reply r)) ( = )

(* -- wire codec: properties ---------------------------------------- *)

let gen_req =
  QCheck.Gen.(
    let str n = string_size ~gen:printable (0 -- n) in
    oneof
      [ return Wire.Ping;
        map (fun s -> Wire.Q_put s) (str 300);
        return Wire.Q_get;
        map (fun t -> Wire.S_seek t) (int_range 0 100_000);
        map (fun t -> Wire.T_sleep t) (int_range 0 100_000);
        map (fun k -> Wire.K_get k) (str 100);
        map2 (fun k v -> Wire.K_put (k, v)) (str 60) (str 300) ])

(* Deadlines cover the edges that bit us live: 0 (use server default),
   tiny, realistic, and extreme values whose top byte is nonzero — a
   header-offset slip shows up immediately on those. *)
let gen_deadline =
  QCheck.Gen.(
    oneof
      [ oneofl
          [ 0L; 1L; 50_000_000L; 0x0102030405060708L; Int64.max_int;
            Int64.min_int; -1L ];
        map Int64.of_int int ])

let arb_request =
  QCheck.make
    ~print:(fun (d, r) -> Printf.sprintf "(deadline=%Ld, %s)" d (show_req r))
    QCheck.Gen.(pair gen_deadline gen_req)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round-trips" ~count:500
    arb_request (fun (deadline_ns, req) ->
      match Wire.decode_request (Wire.encode_request ~deadline_ns req) with
      | Ok (d, r) -> d = deadline_ns && r = req
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let gen_reply =
  QCheck.Gen.(
    let str n = string_size ~gen:printable (0 -- n) in
    oneof
      [ map (fun s -> Wire.Ok s) (str 300);
        map
          (fun n -> Wire.Overloaded { retry_after_ms = n })
          (int_range 0 1_000_000);
        return Wire.Deadline_exceeded;
        map (fun m -> Wire.Bad_request m) (str 100);
        return Wire.Shutting_down ])

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply encode/decode round-trips" ~count:500
    (QCheck.make ~print:show_reply gen_reply) (fun reply ->
      match Wire.decode_reply (Wire.encode_reply reply) with
      | Ok r -> r = reply
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* Decoding never raises on junk — it answers Ok or Error. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decode_request is total on junk" ~count:500
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s ->
      (match Wire.decode_request s with Ok _ | Error _ -> true)
      && match Wire.decode_reply s with Ok _ | Error _ -> true)

(* The header layout, pinned byte by byte: version at 0, opcode at 1,
   deadline big-endian at 2. A decoder reading the deadline at offset 1
   folds the opcode into the top byte — the exact bug this regression
   test exists for. *)
let test_header_layout () =
  let deadline_ns = 0x1122334455667788L in
  let s = Wire.encode_request ~deadline_ns (Wire.S_seek 7) in
  Alcotest.(check int) "version byte" 1 (Char.code s.[0]);
  Alcotest.(check int) "opcode byte" 3 (Char.code s.[1]);
  Alcotest.(check int64) "deadline at offset 2" deadline_ns
    (String.get_int64_be s 2);
  match Wire.decode_request s with
  | Ok (d, Wire.S_seek 7) ->
    Alcotest.(check int64) "decoded deadline unpolluted by opcode" deadline_ns d
  | Ok (d, r) -> Alcotest.failf "wrong decode: (%Ld, %s)" d (show_req r)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_decode_rejects () =
  let bad s =
    match Wire.decode_request s with
    | Error _ -> ()
    | Ok (d, r) ->
      Alcotest.failf "accepted junk as (%Ld, %s)" d (show_req r)
  in
  bad "";
  bad "\001\000";
  (* short header *)
  bad ("\002\000" ^ String.make 8 '\000');
  (* wrong version *)
  bad ("\001\099" ^ String.make 8 '\000');
  (* unknown opcode *)
  bad ("\001\000" ^ String.make 8 '\000' ^ "x");
  (* ping with trailing bytes *)
  bad ("\001\003" ^ String.make 8 '\000' ^ "xy");
  (* seek body must be 4 bytes *)
  (* kv.put whose declared key length exceeds the payload *)
  bad ("\001\006" ^ String.make 8 '\000' ^ "\255\255ab")

(* -- framing over a real socket pair ------------------------------- *)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let read_err_t =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Wire.read_error_to_string e))
    ( = )

let check_read_error msg expected = function
  | Result.Ok payload -> Alcotest.failf "%s: got a frame (%S)" msg payload
  | Error e -> Alcotest.check read_err_t msg expected e

let test_frame_roundtrip () =
  with_pair (fun a b ->
      Wire.write_frame a "hello";
      (match Wire.read_frame b with
      | Result.Ok p -> Alcotest.(check string) "payload" "hello" p
      | Error e -> Alcotest.failf "read failed: %s" (Wire.read_error_to_string e));
      Wire.write_frame a "";
      match Wire.read_frame b with
      | Result.Ok p -> Alcotest.(check string) "empty payload" "" p
      | Error e -> Alcotest.failf "read failed: %s" (Wire.read_error_to_string e))

let test_frame_oversized () =
  with_pair (fun a b ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame + 1));
      write_all a (Bytes.to_string hdr);
      check_read_error "oversized advertisement"
        (Wire.Oversized (Wire.max_frame + 1))
        (Wire.read_frame b));
  with_pair (fun a b ->
      (* A negative advertised length is oversized too, never an alloc. *)
      write_all a "\255\255\255\255";
      match Wire.read_frame b with
      | Error (Wire.Oversized _) -> ()
      | Result.Ok p -> Alcotest.failf "accepted negative length (%S)" p
      | Error e ->
        Alcotest.failf "wrong error: %s" (Wire.read_error_to_string e))

let test_frame_truncated () =
  with_pair (fun a b ->
      (* Header promises 10 bytes; only 3 arrive before the close. *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 10l;
      write_all a (Bytes.to_string hdr);
      write_all a "abc";
      Unix.close a;
      check_read_error "mid-payload close" Wire.Truncated (Wire.read_frame b));
  with_pair (fun a b ->
      write_all a "\000\000";
      Unix.close a;
      check_read_error "mid-header close" Wire.Truncated (Wire.read_frame b))

let test_frame_eof_and_timeout () =
  with_pair (fun a b ->
      Unix.close a;
      check_read_error "close at boundary" Wire.Eof (Wire.read_frame b));
  with_pair (fun _a b ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      check_read_error "receive timeout" Wire.Timeout (Wire.read_frame b))

let test_write_frame_limit () =
  with_pair (fun a _b ->
      Alcotest.check_raises "payload above max_frame"
        (Invalid_argument
           (Printf.sprintf "Wire.write_frame: %d > max_frame"
              (Wire.max_frame + 1)))
        (fun () -> Wire.write_frame a (String.make (Wire.max_frame + 1) 'x')))

(* -- chaos: seeded, replayable by (seed, conn_id) ------------------- *)

let lively_chaos seed =
  { Chaos.seed; drop = 0.15; delay = 0.1; delay_ms = 1; truncate = 0.1;
    reset = 0.1 }

(* Alternate read/write sites until the chaos layer kills the
   connection (or the step budget runs out) and return the action
   trace. Identical (seed, conn_id) must reproduce it byte for byte. *)
let drive_chaos cfg ~conn_id ~steps =
  with_pair (fun a _b ->
      let chaos = Chaos.create cfg ~conn_id in
      (try
         for i = 1 to steps do
           if i mod 2 = 0 then Chaos.on_write chaos a "ok"
           else ignore (Chaos.on_read chaos (fun () -> ()))
         done
       with Chaos.Injected_reset _ -> ());
      Chaos.trace chaos)

let test_chaos_replay () =
  let cfg = lively_chaos 7 in
  let t1 = drive_chaos cfg ~conn_id:3 ~steps:200 in
  let t2 = drive_chaos cfg ~conn_id:3 ~steps:200 in
  Alcotest.(check (list string)) "same (seed, conn) replays identically" t1 t2;
  Alcotest.(check bool) "chaos actually acted" true
    (List.exists (fun s -> s <> "r:pass" && s <> "w:pass") t1);
  let other_conn = drive_chaos cfg ~conn_id:4 ~steps:200 in
  Alcotest.(check bool) "different conn_id draws a different stream" false
    (t1 = other_conn);
  let other_seed = drive_chaos (lively_chaos 8) ~conn_id:3 ~steps:200 in
  Alcotest.(check bool) "different seed draws a different stream" false
    (t1 = other_seed)

let test_chaos_disabled () =
  with_pair (fun a b ->
      Chaos.on_write Chaos.disabled a "plain";
      (match Wire.read_frame b with
      | Result.Ok p -> Alcotest.(check string) "passthrough write" "plain" p
      | Error e -> Alcotest.failf "read failed: %s" (Wire.read_error_to_string e));
      match Chaos.on_read Chaos.disabled (fun () -> 42) with
      | `Data n -> Alcotest.(check int) "passthrough read" 42 n
      | `Dropped -> Alcotest.fail "disabled chaos dropped a read");
  Alcotest.(check (list string)) "no trace when disabled" []
    (Chaos.trace Chaos.disabled)

(* The E19 registry gets first refusal: a planned injection forces a
   reset at an exact site hit without shifting the seeded stream. *)
let test_chaos_fault_plan () =
  let quiet =
    { Chaos.seed = 0; drop = 0.0; delay = 0.0; delay_ms = 0; truncate = 0.0;
      reset = 0.0 }
  in
  let trace =
    Sync_platform.Fault.with_plan
      (Sync_platform.Fault.plan
         [ ("serve.conn.write", Sync_platform.Fault.Nth 2) ])
      (fun () -> drive_chaos quiet ~conn_id:0 ~steps:10)
  in
  Alcotest.(check (list string)) "reset forced at exactly the 2nd write"
    [ "r:pass"; "w:pass"; "r:pass"; "w:reset" ]
    trace

(* -- token-bucket admission ---------------------------------------- *)

let test_bucket () =
  (* A glacial refill makes the burst boundary deterministic. *)
  let b = Bucket.create ~rate_per_s:0.001 ~burst:2 in
  Alcotest.(check bool) "1st token" true (Bucket.try_take b);
  Alcotest.(check bool) "2nd token" true (Bucket.try_take b);
  Alcotest.(check bool) "burst exhausted" false (Bucket.try_take b);
  Alcotest.(check bool) "retry hint >= 1ms when empty" true
    (Bucket.retry_after_ms b >= 1);
  let full = Bucket.create ~rate_per_s:1000.0 ~burst:1 in
  Alcotest.(check int) "no hint while a token exists" 0
    (Bucket.retry_after_ms full);
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Bucket.create: rate must be positive") (fun () ->
      ignore (Bucket.create ~rate_per_s:0.0 ~burst:1));
  Alcotest.check_raises "zero burst rejected"
    (Invalid_argument "Bucket.create: burst must be >= 1") (fun () ->
      ignore (Bucket.create ~rate_per_s:1.0 ~burst:0))

(* -- in-process server round trip ---------------------------------- *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bloom-t1-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let with_server ?chaos f =
  let cfg =
    { (Server.default_config (Server.Unix_sock (fresh_sock ()))) with
      Server.workers = 2;
      chaos }
  in
  let server = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> ignore (Server.drain server))
    (fun () -> f server)

let request_exn client ~deadline_ns req =
  match Client.request client ~deadline_ns req with
  | Ok reply -> reply
  | Error e ->
    Alcotest.failf "%s failed: %s" (Wire.op_name req) (Client.error_to_string e)

let test_server_roundtrip () =
  with_server (fun server ->
      match Client.connect (Server.sockaddr server) with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            let ask = request_exn c ~deadline_ns:500_000_000L in
            Alcotest.check reply_t "ping" (Wire.Ok "pong") (ask Wire.Ping);
            Alcotest.check reply_t "enqueue" (Wire.Ok "")
              (ask (Wire.Q_put "job-1"));
            Alcotest.check reply_t "dequeue returns the item" (Wire.Ok "job-1")
              (ask Wire.Q_get);
            Alcotest.check reply_t "kv write" (Wire.Ok "")
              (ask (Wire.K_put ("k", "v")));
            Alcotest.check reply_t "kv read" (Wire.Ok "v")
              (ask (Wire.K_get "k"));
            Alcotest.check reply_t "kv miss is empty" (Wire.Ok "")
              (ask (Wire.K_get "absent"));
            (match ask (Wire.S_seek 10) with
            | Wire.Ok _ -> ()
            | r -> Alcotest.failf "seek: %s" (show_reply r));
            (match ask (Wire.S_seek 100_000) with
            | Wire.Bad_request _ -> ()
            | r -> Alcotest.failf "out-of-range seek: %s" (show_reply r));
            Alcotest.check reply_t "zero-tick sleep" (Wire.Ok "0")
              (ask (Wire.T_sleep 0)));
        let stats = Server.stats server in
        Alcotest.(check bool) "requests were counted" true (stats.served >= 9))

(* Deadline propagation end to end: a Q_get against an empty queue can
   only end as a typed Deadline_exceeded — and an already-spent budget
   fast-rejects without waiting. *)
let test_server_deadline () =
  with_server (fun server ->
      match Client.connect (Server.sockaddr server) with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            let t0 = Sync_platform.Clock.now_ns () in
            Alcotest.check reply_t "blocked get times out"
              Wire.Deadline_exceeded
              (request_exn c ~deadline_ns:30_000_000L Wire.Q_get);
            Alcotest.check reply_t "1ns budget fast-rejects"
              Wire.Deadline_exceeded
              (request_exn c ~deadline_ns:1L Wire.Q_get);
            let elapsed_ms =
              Int64.to_int
                (Int64.div
                   (Int64.sub (Sync_platform.Clock.now_ns ()) t0)
                   1_000_000L)
            in
            Alcotest.(check bool)
              (Printf.sprintf "both bounded by their budgets (%dms)" elapsed_ms)
              true (elapsed_ms < 2_000)))

let test_server_rejects_oversized () =
  with_server (fun server ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Server.sockaddr server);
          let hdr = Bytes.create 4 in
          Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame + 100));
          write_all fd (Bytes.to_string hdr);
          (match Wire.read_frame fd with
          | Result.Ok payload -> (
            match Wire.decode_reply payload with
            | Ok (Wire.Bad_request _) -> ()
            | Ok r -> Alcotest.failf "wrong reply: %s" (show_reply r)
            | Error e -> Alcotest.failf "undecodable reply: %s" e)
          | Error e ->
            Alcotest.failf "no typed refusal: %s" (Wire.read_error_to_string e));
          (* ... and the stream is dead afterwards. *)
          match Wire.read_frame fd with
          | Error (Wire.Eof | Wire.Truncated) -> ()
          | Result.Ok _ -> Alcotest.fail "server kept a poisoned stream open"
          | Error e ->
            Alcotest.failf "unexpected error: %s" (Wire.read_error_to_string e)))

let test_server_drain_idempotent () =
  let cfg = Server.default_config (Server.Unix_sock (fresh_sock ())) in
  let server = Server.start cfg in
  Alcotest.(check bool) "first drain clean" true (Server.drain server);
  Alcotest.(check bool) "repeat drain still true" true (Server.drain server);
  match Client.connect (Server.sockaddr server) with
  | Error _ -> ()
  | Ok c ->
    (* The listener is gone; at best a stale connect surfaces a typed
       failure on first use. *)
    Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
        match Client.request c ~deadline_ns:50_000_000L Wire.Ping with
        | Ok Wire.Shutting_down | Error _ -> ()
        | Ok r -> Alcotest.failf "drained server answered: %s" (show_reply r))

(* A chaotic in-process run must still terminate every request: typed
   outcomes only, zero hung client actors, clean drain. *)
let test_server_chaos_run () =
  with_server ~chaos:(Chaos.default_config ~seed:7 ()) (fun server ->
      let cfg =
        { Sync_workload.Serve_driver.default_config with
          connections = 2;
          rate_per_s = 100.0;
          duration_ms = 300;
          warmup_ms = 50;
          problem = `Mix;
          churn_every = 8 }
      in
      let _report, outcome =
        Sync_workload.Serve_driver.run ~sockaddr:(Server.sockaddr server) cfg
      in
      Alcotest.(check int) "no hung client actors" 0 outcome.hung;
      Alcotest.(check bool) "some requests succeeded" true (outcome.ok > 0))

(* -- the kill -9 drill against the real binary --------------------- *)

let serve_exe () =
  let cand =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/bloom_serve.exe"
  in
  if Sys.file_exists cand then Some cand else None

let test_kill9_drill () =
  match serve_exe () with
  | None -> print_string "  [skip] bloom_serve.exe not built\n"
  | Some exe ->
    let cfg =
      { Sync_workload.Serve_driver.default_config with
        connections = 3;
        rate_per_s = 150.0;
        duration_ms = 500;
        warmup_ms = 50;
        seed = 11;
        problem = `Mix;
        churn_every = 16 }
    in
    (match
       Sync_workload.Serve_driver.drill ~exe ~sock:(fresh_sock ())
         ~kill_at_ms:150 ~restart_after_ms:50 cfg
     with
    | Error msg -> Alcotest.failf "drill: %s" msg
    | Ok d ->
      Alcotest.(check int) "zero hung connections across the crash" 0
        d.outcome.hung;
      Alcotest.(check bool) "restarted daemon served requests" true
        (d.ok_after_restart > 0);
      Alcotest.(check bool) "survivor drained clean on SIGTERM" true
        d.drain_clean)

let () =
  Alcotest.run "serve"
    [ ( "wire",
        [ Testutil.qcheck_case prop_request_roundtrip;
          Testutil.qcheck_case prop_reply_roundtrip;
          Testutil.qcheck_case prop_decode_total;
          Alcotest.test_case "header layout pinned" `Quick test_header_layout;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_decode_rejects ] );
      ( "framing",
        [ Alcotest.test_case "round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized;
          Alcotest.test_case "truncated detected" `Quick test_frame_truncated;
          Alcotest.test_case "eof and timeout typed" `Quick
            test_frame_eof_and_timeout;
          Alcotest.test_case "write_frame bounds" `Quick test_write_frame_limit
        ] );
      ( "chaos",
        [ Alcotest.test_case "seeded replay byte-for-byte" `Quick
            test_chaos_replay;
          Alcotest.test_case "disabled is a no-op" `Quick test_chaos_disabled;
          Alcotest.test_case "fault plan forces exact resets" `Quick
            test_chaos_fault_plan ] );
      ("bucket", [ Alcotest.test_case "admission edges" `Quick test_bucket ]);
      ( "server",
        [ Alcotest.test_case "request round trip" `Quick test_server_roundtrip;
          Alcotest.test_case "deadline propagation" `Quick test_server_deadline;
          Alcotest.test_case "oversized frame refused" `Quick
            test_server_rejects_oversized;
          Alcotest.test_case "drain idempotent" `Quick
            test_server_drain_idempotent;
          Alcotest.test_case "chaotic run terminates" `Quick
            test_server_chaos_run ] );
      ( "drill",
        [ Alcotest.test_case "kill -9 recovery" `Quick test_kill9_drill ] ) ]
