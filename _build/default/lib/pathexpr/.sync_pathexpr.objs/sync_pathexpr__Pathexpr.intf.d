lib/pathexpr/pathexpr.mli: Ast
