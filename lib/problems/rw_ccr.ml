(** Readers-writers with conditional critical regions.

    CCR wakeup is guard-driven (broadcast + re-check), so — unlike
    semaphore queues — the {e guards themselves} decide priorities at a
    release point, deterministically: putting "no waiting readers" in the
    writer's guard yields strict readers-priority without any queue
    machinery. The cost is that every policy ingredient (waiting counts,
    tickets) is auxiliary state in the shared variable. *)

open Sync_taxonomy

module Readers_prio = struct
  type shared = {
    mutable readers : int;
    mutable writing : bool;
    mutable waiting_readers : int;
  }

  type t = {
    v : shared Sync_ccr.Ccr.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "ccr"

  let policy = Rw_intf.Readers_priority

  let create ~read ~write =
    { v =
        Sync_ccr.Ccr.create
          { readers = 0; writing = false; waiting_readers = 0 };
      res_read = read; res_write = write }

  (* Abort safety: interest/occupancy counts are published in one region
     and retired in another, so an abort in between must retire them
     itself — the un-guarded compensation regions contain no injection
     site, so they cannot abort in turn. *)
  let read t ~pid =
    (* Announce interest first, so the writer guard sees us even while a
       write is in progress. *)
    Sync_ccr.Ccr.region t.v (fun s ->
        s.waiting_readers <- s.waiting_readers + 1);
    (match
       Sync_ccr.Ccr.region t.v
         ~when_:(fun s -> not s.writing)
         (fun s ->
           s.waiting_readers <- s.waiting_readers - 1;
           s.readers <- s.readers + 1)
     with
    | () -> ()
    | exception e ->
      Sync_ccr.Ccr.region t.v (fun s ->
          s.waiting_readers <- s.waiting_readers - 1);
      raise e);
    let retire () =
      Sync_ccr.Ccr.region t.v (fun s -> s.readers <- s.readers - 1)
    in
    match t.res_read ~pid with
    | v ->
      retire ();
      v
    | exception e ->
      retire ();
      raise e

  let write t ~pid =
    Sync_ccr.Ccr.region t.v
      ~when_:(fun s ->
        (not s.writing) && s.readers = 0 && s.waiting_readers = 0)
      (fun s -> s.writing <- true);
    let retire () =
      Sync_ccr.Ccr.region t.v (fun s -> s.writing <- false)
    in
    match t.res_write ~pid with
    | () -> retire ()
    | exception e ->
      retire ();
      raise e

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "when not writing"; "when readers=0"; "readers"; "writing" ]);
          ("rw-priority", [ "waiting_readers"; "in"; "writer"; "guard" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect)
        ]
      ~aux_state:
        [ "readers count"; "writing flag"; "waiting_readers count" ]
      ~separation:Meta.Separated ()
end

module Writers_prio = struct
  type shared = {
    mutable readers : int;
    mutable writing : bool;
    mutable waiting_writers : int;
  }

  type t = {
    v : shared Sync_ccr.Ccr.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "ccr"

  let policy = Rw_intf.Writers_priority

  let create ~read ~write =
    { v =
        Sync_ccr.Ccr.create
          { readers = 0; writing = false; waiting_writers = 0 };
      res_read = read; res_write = write }

  let read t ~pid =
    Sync_ccr.Ccr.region t.v
      ~when_:(fun s -> (not s.writing) && s.waiting_writers = 0)
      (fun s -> s.readers <- s.readers + 1);
    let v = t.res_read ~pid in
    Sync_ccr.Ccr.region t.v (fun s -> s.readers <- s.readers - 1);
    v

  let write t ~pid =
    Sync_ccr.Ccr.region t.v (fun s ->
        s.waiting_writers <- s.waiting_writers + 1);
    Sync_ccr.Ccr.region t.v
      ~when_:(fun s -> (not s.writing) && s.readers = 0)
      (fun s ->
        s.waiting_writers <- s.waiting_writers - 1;
        s.writing <- true);
    t.res_write ~pid;
    Sync_ccr.Ccr.region t.v (fun s -> s.writing <- false)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "when not writing"; "when readers=0"; "readers"; "writing" ]);
          ("rw-priority", [ "waiting_writers"; "in"; "reader"; "guard" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect)
        ]
      ~aux_state:
        [ "readers count"; "writing flag"; "waiting_writers count" ]
      ~separation:Meta.Separated ()
end

module Fcfs = struct
  type shared = {
    mutable next : int;
    mutable serving : int;
    mutable readers : int;
    mutable writing : bool;
  }

  type t = {
    v : shared Sync_ccr.Ccr.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "ccr"

  let policy = Rw_intf.Fcfs

  let create ~read ~write =
    { v =
        Sync_ccr.Ccr.create
          { next = 0; serving = 0; readers = 0; writing = false };
      res_read = read; res_write = write }

  let take_ticket t =
    Sync_ccr.Ccr.region t.v (fun s ->
        let n = s.next in
        s.next <- n + 1;
        n)

  let read t ~pid =
    let ticket = take_ticket t in
    Sync_ccr.Ccr.region t.v
      ~when_:(fun s -> s.serving = ticket && not s.writing)
      (fun s ->
        s.serving <- s.serving + 1;
        s.readers <- s.readers + 1);
    let v = t.res_read ~pid in
    Sync_ccr.Ccr.region t.v (fun s -> s.readers <- s.readers - 1);
    v

  let write t ~pid =
    let ticket = take_ticket t in
    Sync_ccr.Ccr.region t.v
      ~when_:(fun s ->
        s.serving = ticket && (not s.writing) && s.readers = 0)
      (fun s ->
        s.serving <- s.serving + 1;
        s.writing <- true);
    t.res_write ~pid;
    Sync_ccr.Ccr.region t.v (fun s -> s.writing <- false)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "when not writing"; "when readers=0"; "readers"; "writing" ]);
          ("rw-priority", [ "ticket"; "serving"; "when serving=ticket" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect);
          (Info.Request_time, Meta.Indirect) ]
      ~aux_state:
        [ "readers count"; "writing flag"; "ticket dispenser";
          "serving counter" ]
      ~separation:Meta.Separated ()
end
