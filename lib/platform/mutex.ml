type t = Sys of Stdlib.Mutex.t | Det of Detrt.mutex

let create () =
  if Detrt.active () then Det (Detrt.mutex ())
  else Sys (Stdlib.Mutex.create ())

let lock = function
  | Sys m -> Stdlib.Mutex.lock m
  | Det m -> Detrt.mutex_lock m

let unlock = function
  | Sys m -> Stdlib.Mutex.unlock m
  | Det m -> Detrt.mutex_unlock m

let try_lock = function
  | Sys m -> Stdlib.Mutex.try_lock m
  | Det _ -> failwith "Mutex.try_lock: unsupported under Detrt"

let protect m f =
  lock m;
  match f () with
  | v ->
    unlock m;
    v
  | exception e ->
    unlock m;
    raise e
